GO ?= go

.PHONY: all build test race vet bench bench-telemetry bench-cache bench-backend bench-trend clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark suite (paper figures + pipeline microbenchmarks).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Interpreter overhead with telemetry detached vs attached-but-idle;
# the two ns/op figures should be within a couple percent.
bench-telemetry:
	$(GO) test -bench=BenchmarkInterpreterTelemetry -count=5 -run=^$$ .

# Paired cached/uncached study benchmark (golden-run memoization);
# see scripts/bench-cache.sh for knobs (INPUTS, COUNT, MIN_SPEEDUP...).
bench-cache:
	scripts/bench-cache.sh

# Paired tree/vm backend benchmark; MIN_SPEEDUP=auto gates against the
# committed BENCH_7.json floor (see scripts/bench-backend.sh for knobs).
bench-backend:
	scripts/bench-backend.sh

# Render the committed BENCH_*.json series into one exp/s trend table
# (text + bench-out/bench-trend.csv). Pure rendering, runs no benchmarks.
bench-trend:
	scripts/bench-trend.sh

clean:
	$(GO) clean ./...
