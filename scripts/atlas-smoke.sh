#!/usr/bin/env bash
# Resiliency-atlas smoke test: run one tiny study twice with per-site
# attribution and the history store enabled, assert the heatmap renders
# self-contained HTML, the history lists both runs, and the regression
# gate passes on identical runs (`vulfi diff` exit 0) while a
# detector-disabled candidate against a detector-enabled baseline fails
# it naming the detection regression.
set -euo pipefail

OUT=${1:-atlas-out}
BIN=$(mktemp -d)/vulfi

cleanup() { rm -rf "$(dirname "$BIN")"; }
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/vulfi
mkdir -p "$OUT"
HIST=$OUT/history.jsonl
rm -f "$HIST"

run() { # run EXTRA_FLAGS... — one tiny control-category study
  "$BIN" -benchmark VectorCopy -isa AVX -category control \
    -experiments 20 -campaigns 2 -seed 7 -history "$HIST" "$@"
}

echo "== two identical runs with atlas + history =="
run -atlas "$OUT/heatmap.html" >"$OUT/study-1.txt"
run -atlas "$OUT/heatmap-2.html" >"$OUT/study-2.txt"

grep -q "<table" "$OUT/heatmap.html" || die "heatmap has no table"
grep -q "resiliency atlas" "$OUT/study-1.txt" || die "study text has no atlas section"
if grep -Eq 'https?://|src="|<link' "$OUT/heatmap.html"; then
  die "heatmap references external assets"
fi

echo "== history =="
"$BIN" history -file "$HIST" list | tee "$OUT/history.txt"
[ "$("$BIN" history -file "$HIST" list | grep -c VectorCopy)" -eq 2 ] \
  || die "history does not list both runs"

echo "== gate: identical runs must pass =="
"$BIN" diff -file "$HIST" 1 2 | tee "$OUT/diff-identical.txt" \
  || die "vulfi diff on identical runs exited non-zero"

echo "== gate: detector-disabled candidate must fail =="
run -detectors >/dev/null   # entry 3: baseline with detectors
run >/dev/null              # entry 4: same study, detectors off
if "$BIN" diff -file "$HIST" 3 4 >"$OUT/diff-regression.txt"; then
  die "gate passed a detector-disabled candidate"
fi
grep -q "detected" "$OUT/diff-regression.txt" \
  || die "gate failure does not name the detected class"

echo "PASS: atlas smoke (artifacts in $OUT/)"
