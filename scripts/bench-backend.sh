#!/usr/bin/env bash
# bench-backend.sh — paired tree/vm backend benchmark.
#
# Runs BenchmarkStudyThroughput under both execution backends — the
# reference tree-walker and the compiled bytecode VM — interleaving the
# repetitions so slow machine-load drift hits both arms equally, then
# reports the speedup and, when benchstat is on PATH, a statistical
# comparison. Writes a BENCH_7.json-shaped summary into the out dir.
#
#   scripts/bench-backend.sh [outdir]
#
# Environment:
#   COUNT        interleaved repetitions per backend   (default 5)
#   BENCHTIME    -benchtime per repetition             (default 1s)
#   INPUTS       input-pool size for both arms         (default 0)
#   MIN_SPEEDUP  fail if vm/tree is below this; "auto" derives the
#                floor from the committed BENCH_7.json (70% of the
#                recorded speedup, absorbing runner noise while still
#                catching real backend regressions). Default 0: report
#                only.
set -euo pipefail

cd "$(dirname "$0")/.."
outdir=${1:-bench-out}
COUNT=${COUNT:-5}
BENCHTIME=${BENCHTIME:-1s}
INPUTS=${INPUTS:-0}
MIN_SPEEDUP=${MIN_SPEEDUP:-0}
mkdir -p "$outdir"

: > "$outdir/tree.txt"
: > "$outdir/vm.txt"
for _ in $(seq "$COUNT"); do
  VULFI_BENCH_INPUTS=$INPUTS VULFI_BENCH_BACKEND=tree go test -run '^$' \
    -bench StudyThroughput -count 1 -benchtime "$BENCHTIME" \
    ./internal/campaign/ | tee -a "$outdir/tree.txt"
  VULFI_BENCH_INPUTS=$INPUTS VULFI_BENCH_BACKEND=vm go test -run '^$' \
    -bench StudyThroughput -count 1 -benchtime "$BENCHTIME" \
    ./internal/campaign/ | tee -a "$outdir/vm.txt"
done

# median ns/op over the repetitions of one backend.
median_ns() {
  awk '/^BenchmarkStudyThroughput/ {print $3}' "$1" | sort -n |
    awk '{a[NR]=$1} END {print (NR%2 ? a[(NR+1)/2] : (a[NR/2]+a[NR/2+1])/2)}'
}

tree=$(median_ns "$outdir/tree.txt")
vm=$(median_ns "$outdir/vm.txt")
speedup=$(awk -v t="$tree" -v v="$vm" 'BEGIN {printf "%.2f", t/v}')
echo "median ns/op: tree=$tree vm=$vm  speedup=${speedup}x"

cat > "$outdir/bench-backend.json" <<EOF
{
  "benchmark": "BenchmarkStudyThroughput",
  "cell": "VectorCopy/AVX/pure-data (default scale)",
  "inputs": $INPUTS,
  "count": $COUNT,
  "benchtime": "$BENCHTIME",
  "tree_ns_per_study": $tree,
  "vm_ns_per_study": $vm,
  "speedup": $speedup,
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF

if command -v benchstat >/dev/null 2>&1; then
  benchstat "$outdir/tree.txt" "$outdir/vm.txt" | tee "$outdir/benchstat.txt"
else
  echo "benchstat not installed; skipping statistical comparison" >&2
fi

if [ "$MIN_SPEEDUP" = auto ]; then
  committed=$(awk -F: '/"speedup"/ {gsub(/[ ,]/, "", $2); print $2}' BENCH_7.json)
  MIN_SPEEDUP=$(awk -v c="$committed" 'BEGIN {printf "%.2f", c * 0.70}')
  echo "floor from BENCH_7.json: committed ${committed}x -> require >= ${MIN_SPEEDUP}x"
fi
if [ "$MIN_SPEEDUP" != 0 ]; then
  awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN {exit !(s >= m)}' || {
    echo "FAIL: vm speedup ${speedup}x below required ${MIN_SPEEDUP}x" >&2
    exit 1
  }
fi
