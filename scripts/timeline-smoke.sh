#!/usr/bin/env bash
# timeline-smoke.sh — span tracing end to end, from the CLI down.
#
# Runs one small traced study via `vulfi -timeline`, then validates the
# exports with python3:
#   - the Chrome trace-event JSON parses, with exactly one study root
#     span, one compile span, and one experiment span per scheduled
#     experiment (each with a golden child; faulty/compare pair up);
#   - every span nests inside the study root's window, and the root
#     itself fits the timeline wall recorded in the JSONL header —
#     i.e. span totals reconcile with the study's wall time, including
#     the workers x wall ceiling on summed experiment spans;
#   - the JSONL sidecar is line-oriented: header plus one valid JSON
#     span per line, span count agreeing with the trace export.
#
#   scripts/timeline-smoke.sh [outdir]     (default timeline-out)
#
# Environment: EXPERIMENTS (default 10), CAMPAIGNS (2), WORKERS (2).
set -euo pipefail
cd "$(dirname "$0")/.."
outdir=${1:-timeline-out}
EXPERIMENTS=${EXPERIMENTS:-10}
CAMPAIGNS=${CAMPAIGNS:-2}
WORKERS=${WORKERS:-2}
mkdir -p "$outdir"

echo "== traced study (${CAMPAIGNS}x${EXPERIMENTS} experiments, $WORKERS workers) =="
go run ./cmd/vulfi -benchmark VectorCopy -isa AVX -category pure-data \
  -experiments "$EXPERIMENTS" -campaigns "$CAMPAIGNS" -seed 1 \
  -workers "$WORKERS" -timeline "$outdir/trace.json" -json \
  > "$outdir/study.json"

echo "== validating $outdir/trace.json =="
python3 - "$outdir/trace.json" "$((EXPERIMENTS * CAMPAIGNS))" "$WORKERS" <<'EOF'
import json, sys

path, total, workers = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
trace = json.load(open(path))
spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
by = {}
for e in spans:
    by.setdefault(e["name"], []).append(e)

assert len(by.get("study", [])) == 1, f"want 1 study span, got {by.get('study', [])}"
assert len(by.get("compile", [])) == 1, "want 1 compile span"
exps = by.get("experiment", [])
assert len(exps) == total, f"want {total} experiment spans, got {len(exps)}"
# With no input pool every experiment runs its own golden; faulty and
# compare pair up (a pre-injection trap can skip both, never one).
assert len(by.get("golden", [])) == total, "want one golden span per experiment"
assert len(by.get("faulty", [])) == len(by.get("compare", [])), \
    "faulty/compare spans must pair up"

# The timeline is anchored at the prepare epoch: the compile span sits
# at offset 0 and must finish before the study span opens; every other
# span nests inside the study window.
root = by["study"][0]
lo, hi = root["ts"], root["ts"] + root["dur"]
slack = 1.0  # us; ns->us rounding
compile_span = by["compile"][0]
assert compile_span["ts"] + compile_span["dur"] <= lo + slack, \
    "compile span overlaps the study span"
for e in spans:
    if e["name"] == "compile":
        continue
    end = e["ts"] + e.get("dur", 0)
    assert e["ts"] >= lo - slack and end <= hi + slack, \
        f"{e['name']} span [{e['ts']:.1f},{end:.1f}]us outside study window [{lo:.1f},{hi:.1f}]us"

# Header reconciliation: the JSONL sidecar's wall covers the root span,
# its span count matches the trace export, and summed experiment time
# cannot exceed what the worker pool could have delivered.
with open(path + ".jsonl") as f:
    lines = f.read().splitlines()
header = json.loads(lines[0])
assert header["kind"] == "timeline", header
assert header["spans"] == len(lines) - 1 == len(spans), \
    f"header says {header['spans']} spans, jsonl has {len(lines)-1}, trace has {len(spans)}"
for line in lines[1:]:
    json.loads(line)  # every span line is complete JSON
wall_us = header["wall_ns"] / 1e3
assert root["dur"] <= wall_us + slack, \
    f"study span {root['dur']:.1f}us exceeds timeline wall {wall_us:.1f}us"
exp_sum = sum(e["dur"] for e in exps)
assert exp_sum <= workers * wall_us + slack, \
    f"sum(experiment)={exp_sum:.1f}us exceeds {workers} workers x wall {wall_us:.1f}us"

print(f"OK: {len(spans)} spans, {total} experiments, "
      f"study {root['dur']/1e3:.1f}ms within wall {wall_us/1e3:.1f}ms, "
      f"experiment occupancy {100*exp_sum/(workers*wall_us):.0f}% of {workers} lanes")
EOF

echo "OK: timeline smoke passed (artifacts in $outdir/)"
