#!/usr/bin/env bash
# vulfid crash/resume smoke test: start the daemon, submit a study,
# SIGTERM it mid-run, restart over the same journal, and assert the job
# resumes from its checkpoints and completes. Exercises the same journal
# replay a hard crash would (DESIGN.md §9). Needs curl + jq.
set -euo pipefail

ADDR=127.0.0.1:${VULFID_PORT:-8666}
BASE=http://$ADDR
JDIR=$(mktemp -d)
BIN=$(mktemp -d)/vulfid
PID=

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$JDIR" "$(dirname "$BIN")"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

start_daemon() {
  "$BIN" -addr "$ADDR" -journal "$JDIR" &
  PID=$!
  for _ in $(seq 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return
    sleep 0.1
  done
  die "daemon did not come up on $ADDR"
}

go build -o "$BIN" ./cmd/vulfid
start_daemon

# 1000 experiments on one worker: slow enough to interrupt mid-run.
ID=$(curl -sf -XPOST "$BASE/v1/jobs" -d '{
  "benchmark":"Blackscholes","isa":"AVX","category":"control",
  "experiments":50,"campaigns":20,"seed":9,"workers":1}' | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || die "submit returned no job id"
echo "submitted job $ID"

# Wait for the first checkpoints, then pull the plug.
for _ in $(seq 200); do
  DONE=$(curl -sf "$BASE/v1/jobs/$ID" | jq -r .done)
  [ "$DONE" -gt 0 ] && break
  sleep 0.05
done
[ "$DONE" -gt 0 ] || die "no experiments completed before timeout"
STATE=$(curl -sf "$BASE/v1/jobs/$ID" | jq -r .state)
[ "$STATE" = running ] || die "job is $STATE at $DONE experiments, cannot interrupt"
echo "SIGTERM at $DONE completed experiments"
kill -TERM "$PID"
wait "$PID" || die "daemon did not drain cleanly"
PID=

LAST=$(jq -rs '[.[] | select(.t=="state")] | last.state' "$JDIR/$ID.jsonl")
[ "$LAST" = interrupted ] || die "journal ends in state $LAST, want interrupted"
CKPTS=$(jq -rs '[.[] | select(.t=="exp")] | length' "$JDIR/$ID.jsonl")
echo "journal holds $CKPTS checkpointed experiments"
[ "$CKPTS" -gt 0 ] || die "no experiment checkpoints journaled"

# Restart over the same journal: the job must resume and complete.
start_daemon
for _ in $(seq 600); do
  STATE=$(curl -sf "$BASE/v1/jobs/$ID" | jq -r .state || true)
  [ "$STATE" = done ] && break
  case "$STATE" in failed|cancelled) die "resumed job ended $STATE";; esac
  sleep 0.2
done
[ "$STATE" = done ] || die "resumed job never completed (state $STATE)"

FINAL=$(curl -sf "$BASE/v1/jobs/$ID")
jq -e '.resumed == true' <<<"$FINAL" >/dev/null || die "job not marked resumed"
jq -e '.done == .total' <<<"$FINAL" >/dev/null || die "resumed job incomplete"
jq -e '.result.sdc + .result.benign + .result.crash == .total' <<<"$FINAL" \
  >/dev/null || die "study outcomes do not cover all experiments"
echo "resumed job completed: $(jq -c \
  '{done, total, sdc: .result.sdc, benign: .result.benign, crash: .result.crash,
    moe: .result.margin_of_error_95}' <<<"$FINAL")"

# The acceptance bar: the interrupted-then-resumed study must be
# statistically identical to the same seed run uninterrupted. Wall-clock
# fields and the build stamp are the only legitimate differences (the
# daemon is a VCS-stamped `go build` binary; the reference arm runs via
# `go run`, which does not stamp).
STRIP='del(.wall_total_ns, .wall_min_ns, .wall_mean_ns, .wall_max_ns, .build)'
REF=$(go run ./cmd/vulfi -json -benchmark Blackscholes -category control \
  -isa AVX -experiments 50 -campaigns 20 -seed 9 | jq -S "$STRIP")
GOT=$(jq -S ".result | $STRIP" <<<"$FINAL")
[ "$REF" = "$GOT" ] || {
  diff <(echo "$REF") <(echo "$GOT") >&2 || true
  die "resumed study differs from uninterrupted run"
}
echo "resumed study matches the uninterrupted run field-for-field"

kill -TERM "$PID"
wait "$PID" || true
PID=
echo "PASS: vulfid resumed $ID from $CKPTS checkpoints and completed"
