#!/usr/bin/env bash
# bench-cache.sh — paired cached/uncached campaign benchmark.
#
# Runs BenchmarkStudyThroughput twice — once with no input pool
# (VULFI_BENCH_INPUTS=0, every experiment re-executes its golden run)
# and once with a pool (golden runs memoized) — then reports the
# speedup and, when benchstat is on PATH, a statistical comparison.
#
#   scripts/bench-cache.sh [outdir]
#
# Environment:
#   INPUTS       pool size for the cached run          (default 4)
#   COUNT        benchmark repetitions per mode        (default 5)
#   BENCHTIME    -benchtime per repetition             (default 1s)
#   MIN_SPEEDUP  fail if cached/uncached is below this (default 0: report only)
#   BASELINE_REF git ref; when set, the uncached path is also benchmarked
#                at that ref and a >10% ns/op regression fails the script
set -euo pipefail

cd "$(dirname "$0")/.."
outdir=${1:-bench-out}
INPUTS=${INPUTS:-4}
COUNT=${COUNT:-5}
BENCHTIME=${BENCHTIME:-1s}
MIN_SPEEDUP=${MIN_SPEEDUP:-0}
mkdir -p "$outdir"

bench() { # bench <inputs> <outfile>
  VULFI_BENCH_INPUTS=$1 go test -run '^$' -bench StudyThroughput \
    -count "$COUNT" -benchtime "$BENCHTIME" ./internal/campaign/ | tee "$2"
}

# median ns/op over the repetitions of one mode.
median_ns() {
  awk '/^BenchmarkStudyThroughput/ {print $3}' "$1" | sort -n |
    awk '{a[NR]=$1} END {print (NR%2 ? a[(NR+1)/2] : (a[NR/2]+a[NR/2+1])/2)}'
}

echo "== uncached (inputs=0) =="
bench 0 "$outdir/uncached.txt"
echo "== cached (inputs=$INPUTS) =="
bench "$INPUTS" "$outdir/cached.txt"

un=$(median_ns "$outdir/uncached.txt")
ca=$(median_ns "$outdir/cached.txt")
speedup=$(awk -v u="$un" -v c="$ca" 'BEGIN {printf "%.2f", u/c}')
echo "median ns/op: uncached=$un cached=$ca  speedup=${speedup}x"

cat > "$outdir/bench.json" <<EOF
{
  "benchmark": "BenchmarkStudyThroughput",
  "cell": "VectorCopy/AVX/pure-data (default scale)",
  "inputs": $INPUTS,
  "count": $COUNT,
  "benchtime": "$BENCHTIME",
  "uncached_ns_per_study": $un,
  "cached_ns_per_study": $ca,
  "speedup": $speedup,
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
}
EOF

if command -v benchstat >/dev/null 2>&1; then
  benchstat "$outdir/uncached.txt" "$outdir/cached.txt" | tee "$outdir/benchstat.txt"
else
  echo "benchstat not installed; skipping statistical comparison" >&2
fi

if [ "$MIN_SPEEDUP" != 0 ]; then
  awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN {exit !(s >= m)}' || {
    echo "FAIL: cached speedup ${speedup}x below required ${MIN_SPEEDUP}x" >&2
    exit 1
  }
fi

if [ -n "${BASELINE_REF:-}" ]; then
  echo "== uncached baseline at $BASELINE_REF =="
  wt=$(mktemp -d)
  trap 'git worktree remove --force "$wt" 2>/dev/null || true' EXIT
  git worktree add --detach "$wt" "$BASELINE_REF" >/dev/null
  (cd "$wt" && VULFI_BENCH_INPUTS=0 go test -run '^$' -bench 'StudyThroughput|CampaignThroughput/untraced' \
    -count "$COUNT" -benchtime "$BENCHTIME" ./internal/campaign/) | tee "$outdir/baseline.txt"
  base=$(median_ns "$outdir/baseline.txt")
  if [ -z "$base" ]; then
    # The baseline predates BenchmarkStudyThroughput; fall back to the
    # per-experiment benchmark for a coarse check, or pass vacuously.
    echo "baseline has no StudyThroughput benchmark; skipping regression gate" >&2
  else
    ratio=$(awk -v b="$base" -v u="$un" 'BEGIN {printf "%.3f", u/b}')
    echo "uncached ns/op: baseline=$base current=$un  ratio=$ratio"
    awk -v r="$ratio" 'BEGIN {exit !(r <= 1.10)}' || {
      echo "FAIL: uncached path regressed ${ratio}x vs $BASELINE_REF (>10%)" >&2
      exit 1
    }
  fi
fi
