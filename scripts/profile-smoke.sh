#!/usr/bin/env bash
# Execution-profiler smoke test: run one small profiled study end to
# end with `vulfi -profile`, then assert the whole observability
# surface came out — the text report names hot opcodes and at least one
# hot site, the folded-stack file is well-formed (4 frames per line,
# phase root, numeric values), and the flame-graph HTML is
# self-contained with the profile data inlined.
set -euo pipefail

OUT=${1:-profile-out}
BIN=$(mktemp -d)/vulfi

cleanup() { rm -rf "$(dirname "$BIN")"; }
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/vulfi
mkdir -p "$OUT"

echo "== profiled study =="
"$BIN" -benchmark VectorCopy -isa AVX -category pure-data \
  -experiments 20 -campaigns 2 -seed 7 \
  -profile "$OUT/profile.folded" | tee "$OUT/study.txt"

echo "== text report =="
grep -q "execution profile:" "$OUT/study.txt" || die "study text has no profile section"
grep -q "hot opcodes:" "$OUT/study.txt" || die "profile names no hot opcodes"
grep -q "hot sites:" "$OUT/study.txt" || die "profile names zero hot sites"
grep -Eq "^ +1\. @" <(sed -n '/hot sites:/,/^[^ ]/p' "$OUT/study.txt") \
  || die "hottest site does not use the @func/block site-key spelling"

echo "== folded stacks =="
[ -s "$OUT/profile.folded" ] || die "folded-stack file is empty"
awk '
  { sp = match($0, / [0-9]+$/); if (!sp) { exit 1 } }
  { n = split(substr($0, 1, sp - 1), frames, ";"); if (n != 4) exit 1 }
' "$OUT/profile.folded" || die "folded lines are not 'phase;func;block;instr count'"
grep -q "^golden;" "$OUT/profile.folded" || die "no golden-phase stacks"
grep -q "^faulty;" "$OUT/profile.folded" || die "no faulty-phase stacks"

echo "== flame graph =="
FLAME=$OUT/profile.folded.html
[ -s "$FLAME" ] || die "flame-graph HTML missing"
grep -q "<!DOCTYPE html>" "$FLAME" || die "flame graph is not an HTML page"
grep -q '"stacks"' "$FLAME" || die "flame graph carries no stack data"
if grep -Eq 'https?://|src="|<link' "$FLAME"; then
  die "flame graph references external assets"
fi

echo "PASS: profile smoke (artifacts in $OUT/)"
