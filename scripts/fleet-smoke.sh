#!/usr/bin/env bash
# Fleet observatory smoke test: start a coordinator and two worker
# vulfids, run a sharded study with -timeline and -profile through
# `vulfi -remote`, and assert (DESIGN.md §17):
#
#   1. the merged Perfetto trace has a coordinator lane plus one lane
#      group per worker, and its shard study roots parent under the
#      coordinator's shard dispatch spans (joinable by span ID);
#   2. the merged hot profile's per-opcode counts and grand totals are
#      byte-identical to the same study run single-node;
#   3. GET /v1/fleet credits both workers with harvested experiments;
#   4. the triple statistics still match single-node field for field.
#
# Needs curl + jq.
#
# Usage: fleet-smoke.sh [out-dir] — when out-dir is given, the merged
# trace, profile artifacts, fleet view, and daemon logs are copied
# there for CI artifacts.
set -euo pipefail

OUT=${1:-}

CADDR=127.0.0.1:${VULFID_PORT:-8677}
W1ADDR=127.0.0.1:$((${VULFID_PORT:-8677} + 1))
W2ADDR=127.0.0.1:$((${VULFID_PORT:-8677} + 2))
CBASE=http://$CADDR
WORK=$(mktemp -d)
CPID= W1PID= W2PID=

cleanup() {
  for pid in "$CPID" "$W1PID" "$W2PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  if [ -n "$OUT" ]; then # keep artifacts around even when an assertion fails
    mkdir -p "$OUT"
    cp "$WORK"/fleet-trace.json "$WORK"/fleet-trace.json.jsonl \
      "$WORK"/fleet-profile.folded "$WORK"/fleet-profile.folded.html \
      "$WORK"/sharded.json "$WORK"/fleet.json "$WORK"/*.log "$OUT/" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

start_daemon() { # addr journal extra-args... -> pid on stdout
  local addr=$1 journal=$2
  shift 2
  "$WORK/vulfid" -addr "$addr" -journal "$journal" "$@" \
    >"$WORK/$(basename "$journal").log" 2>&1 &
  local pid=$!
  for _ in $(seq 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && { echo "$pid"; return; }
    sleep 0.1
  done
  die "daemon did not come up on $addr"
}

go build -o "$WORK/vulfid" ./cmd/vulfid
go build -o "$WORK/vulfi" ./cmd/vulfi

CPID=$(start_daemon "$CADDR" "$WORK/coord" -coordinator)
W1PID=$(start_daemon "$W1ADDR" "$WORK/w1" -join "$CADDR" -name w1)
W2PID=$(start_daemon "$W2ADDR" "$WORK/w2" -join "$CADDR" -name w2)

for _ in $(seq 100); do
  FLEET=$(curl -sf "$CBASE/v1/workers" | jq '.workers | length')
  [ "$FLEET" = 2 ] && break
  sleep 0.1
done
[ "$FLEET" = 2 ] || die "fleet has $FLEET workers, want 2"
echo "coordinator sees $FLEET workers"

# -inputs stays at its default (0): with a shared input pool each shard
# would fill its own golden cache and the merged profile counts would
# legitimately exceed single-node (DESIGN.md §17).
SPEC=(-benchmark Blackscholes -category control -isa AVX
  -experiments 30 -campaigns 10 -seed 11 -workers 1)

"$WORK/vulfi" -remote "$CADDR" -shards 2 -json "${SPEC[@]}" \
  -timeline "$WORK/fleet-trace.json" -profile "$WORK/fleet-profile.folded" \
  >"$WORK/sharded.json" 2>"$WORK/vulfi.log" \
  || { cat "$WORK/vulfi.log" >&2; die "sharded observability study failed"; }

for f in fleet-trace.json fleet-trace.json.jsonl fleet-profile.folded fleet-profile.folded.html; do
  [ -s "$WORK/$f" ] || die "client artifact $f missing or empty"
done

# --- 1. Fleet trace shape -------------------------------------------------
# Thread-name metadata events carry the merged lane names: the client's
# own lane (vulfi -remote merges via traceparent), "coordinator", and
# one "<worker> <lane>" group per fleet worker.
LANES=$(jq -r '[.traceEvents[] | select(.ph == "M" and .name == "thread_name")
  | .args.name] | join("\n")' "$WORK/fleet-trace.json")
echo "$LANES" | grep -qx 'coordinator' || die "merged trace lacks the coordinator lane"
for w in w1 w2; do
  echo "$LANES" | grep -q "^$w " || die "merged trace has no lane group for $w"
done
LANEGROUPS=$(echo "$LANES" | grep -v '^coordinator' | grep -vx 'client' \
  | awk '{print $1}' | sort -u | wc -l)
[ "$LANEGROUPS" = 2 ] || die "merged trace has $LANEGROUPS worker lane groups, want 2"
echo "fleet trace: coordinator lane + $LANEGROUPS worker lane groups"

# Joinability: every shard study root's parent is a coordinator
# shard[...) span present in the same trace.
BADROOTS=$(jq '[.traceEvents[] | select(.ph == "X")] as $spans
  | [$spans[] | select(.name | startswith("shard[")) | .args.id] as $shards
  | [$spans[] | select(.name | startswith("study[")) | .args.parent]
  | map(select(. as $p | ($shards | index($p)) == null)) | length' \
  "$WORK/fleet-trace.json")
[ "$BADROOTS" = 0 ] || die "$BADROOTS shard study roots not parented under a shard span"
echo "fleet trace: all shard study roots join the coordinator's dispatch spans"

# --- 2. Profile equality --------------------------------------------------
STRIP='del(.wall_total_ns, .wall_min_ns, .wall_mean_ns, .wall_max_ns, .build)'
go run ./cmd/vulfi -json "${SPEC[@]}" -profile "$WORK/single-profile.folded" \
  >"$WORK/single.json" 2>/dev/null

PROFCOUNTS='.hot_profile | {runs, experiments, total_dyn, total_vector,
  ops: [.ops[] | {op, count, vector}], sites: [.sites[] | {site, count}]}'
REFPROF=$(jq -S "$PROFCOUNTS" "$WORK/single.json")
GOTPROF=$(jq -S "$PROFCOUNTS" "$WORK/sharded.json")
[ "$REFPROF" = "$GOTPROF" ] || {
  diff <(echo "$REFPROF") <(echo "$GOTPROF") >&2 || true
  die "merged fleet profile counts differ from the single-node run"
}
echo "fleet profile: per-opcode counts and totals equal single-node"

# The folded-stacks artifact agrees with the profile total.
FOLDSUM=$(awk '{s += $NF} END {print s}' "$WORK/fleet-profile.folded")
TOTALDYN=$(jq -r '.hot_profile.total_dyn' "$WORK/sharded.json")
[ "$FOLDSUM" = "$TOTALDYN" ] || die "folded stacks sum to $FOLDSUM, profile says $TOTALDYN"

# --- 3. Fleet metrics -----------------------------------------------------
curl -sf "$CBASE/v1/fleet" >"$WORK/fleet.json"
for w in w1 w2; do
  HARVESTED=$(jq -r --arg w "$w" \
    '.workers[] | select(.worker == $w) | .harvested' "$WORK/fleet.json")
  [ -n "$HARVESTED" ] && [ "$HARVESTED" -gt 0 ] \
    || die "/v1/fleet credits $w with ${HARVESTED:-no} harvested experiments"
done
echo "fleet metrics: both workers credited with harvested experiments"

# --- 4. Triple statistics -------------------------------------------------
# Observability artifacts aside (their wall-clock content legitimately
# differs), the merged study matches single-node field for field.
OBSSTRIP="$STRIP | del(.timeline, .hot_profile)"
REF=$(jq -S "$OBSSTRIP" "$WORK/single.json")
GOT=$(jq -S "$OBSSTRIP" "$WORK/sharded.json")
[ "$REF" = "$GOT" ] || {
  diff <(echo "$REF") <(echo "$GOT") >&2 || true
  die "sharded study statistics differ from the single-node run"
}
echo "triple statistics match the single-node run field-for-field"

echo "PASS: fleet observatory merged timeline, profile, and metrics check out"
