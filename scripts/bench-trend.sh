#!/usr/bin/env bash
# bench-trend.sh — the whole perf story in one table.
#
# Renders every committed BENCH_*.json (the paired study-throughput
# measurement each perf PR records) into a single exp/s trend table:
# text to stdout, CSV to $outdir/bench-trend.csv. Pure rendering — no
# benchmarks run, so this is safe anywhere, including CI artifacts.
#
# Each BENCH file pins one paired measurement (baseline arm vs
# optimized arm) taken on one machine on one date. Within-file speedups
# are meaningful; raw ns across files are not (different dates, and
# later PRs also sped up the shared path), which is why the table shows
# each era's own baseline next to its optimized arm instead of chaining
# absolute numbers across eras.
#
#   scripts/bench-trend.sh [outdir]     (default bench-out)
set -euo pipefail
cd "$(dirname "$0")/.."
outdir=${1:-bench-out}
mkdir -p "$outdir"
csv="$outdir/bench-trend.csv"

# Experiments per study in BenchmarkStudyThroughput, parsed from the
# benchmark source so the ns/study -> exp/s conversion cannot drift
# from the code.
dims=$(sed -n 's/.*Experiments: *\([0-9]*\), *Campaigns: *\([0-9]*\).*/\1 \2/p' \
  internal/campaign/bench_test.go | head -1)
[ -n "$dims" ] || { echo "cannot find study dimensions in internal/campaign/bench_test.go" >&2; exit 2; }
set -- $dims
exps=$(($1 * $2))

files=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
[ -n "$files" ] || { echo "no committed BENCH_*.json files" >&2; exit 2; }

echo "file,date,cell,inputs,baseline,baseline_ns_per_study,baseline_exp_per_s,optimized,optimized_ns_per_study,optimized_exp_per_s,speedup" > "$csv"

echo "== vulfi study-throughput trend (committed BENCH_*.json) =="
echo "exp/s derived from BenchmarkStudyThroughput: $exps experiments per study"
echo
printf "%-13s %-11s %-20s %-20s %11s %9s\n" \
  "era" "date" "baseline" "optimized" "exp/s(opt)" "speedup"
for f in $files; do
  awk -v file="$f" -v exps="$exps" -v csv="$csv" '
    # Each committed BENCH file is flat JSON, one "key": value per line.
    match($0, /"[a-z_0-9]+"/) {
      key = substr($0, RSTART + 1, RLENGTH - 2)
      rest = substr($0, RSTART + RLENGTH)
      sub(/^[: ]+/, "", rest)
      gsub(/[",]/, "", rest)
      sub(/ +$/, "", rest)
      v[key] = rest
      if (key ~ /_ns_per_study$/) nskeys[++n] = key
    }
    END {
      if (n != 2) {
        printf "%s: want exactly 2 *_ns_per_study keys, got %d\n", file, n > "/dev/stderr"
        exit 2
      }
      # The slower arm is the era baseline (uncached, tree), the faster
      # one its optimization (cached, vm).
      base = nskeys[1]; opt = nskeys[2]
      if (v[base] + 0 < v[opt] + 0) { t = base; base = opt; opt = t }
      bl = base; sub(/_ns_per_study$/, "", bl)
      ol = opt;  sub(/_ns_per_study$/, "", ol)
      bexp = exps * 1e9 / v[base]
      oexp = exps * 1e9 / v[opt]
      printf "%-13s %-11s %-8s %9.2fms  %-8s %9.2fms %11.0f %8.2fx\n", \
        file, substr(v["date"], 1, 10), bl, v[base] / 1e6, ol, v[opt] / 1e6, oexp, v["speedup"]
      printf "%s,%s,\"%s\",%s,%s,%s,%.0f,%s,%s,%.0f,%s\n", \
        file, v["date"], v["cell"], v["inputs"], bl, v[base], bexp, ol, v[opt], oexp, v["speedup"] >> csv
    }
  ' "$f"
done

echo
awk -F, 'NR > 1 { s = s sprintf(" -> %sx (%s: %s)", $11, $1, $8) }
         END    { print "speedup trajectory: 1.00x baseline" s }' "$csv"
echo "csv written to $csv"
