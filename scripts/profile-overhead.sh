#!/usr/bin/env bash
# profile-overhead.sh — assert the profiler's disabled cost is nil.
#
# The execution profiler hangs off the interpreter's account() path
# behind a single nil check, so with Config.Profile unset a study must
# run exactly as fast as before the profiler existed. This script
# re-measures BenchmarkStudyThroughput (profiling disabled — the
# benchmark never sets Profile) and fails if the best ns/study over the
# repetitions regresses more than TOLERANCE_PCT against the committed
# baseline median. The minimum is the noise-robust estimator: load
# spikes only ever slow a repetition down, while a real hot-path
# regression shifts the whole distribution, minimum included.
#
# The span-tracing subsystem (internal/obs) hangs off the same seams
# behind Config.Timeline/Config.Heartbeat, which the benchmark never
# sets either — so this gate doubles as the obs-disabled cost gate: the
# timeline-smoke CI job runs it at TOLERANCE_PCT=1.
#
#   scripts/profile-overhead.sh [outdir]
#
# Environment:
#   BASELINE_FILE  committed baseline JSON            (default BENCH_6.json)
#   COUNT          benchmark repetitions              (default 7)
#   BENCHTIME      -benchtime per repetition          (default 1s)
#   TOLERANCE_PCT  max allowed regression in percent  (default 2)
#
# The committed baseline was recorded on one machine; on different
# hardware, raise TOLERANCE_PCT or re-record the baseline with
# scripts/bench-cache.sh rather than chasing cross-machine noise.
set -euo pipefail

cd "$(dirname "$0")/.."
outdir=${1:-bench-out}
BASELINE_FILE=${BASELINE_FILE:-BENCH_6.json}
COUNT=${COUNT:-9}
BENCHTIME=${BENCHTIME:-1s}
TOLERANCE_PCT=${TOLERANCE_PCT:-2}
mkdir -p "$outdir"

[ -f "$BASELINE_FILE" ] || { echo "baseline $BASELINE_FILE not found" >&2; exit 2; }

# best (minimum) ns/op over the repetitions of one run.
min_ns() {
  awk '/^BenchmarkStudyThroughput/ {print $3}' "$1" | sort -n | head -1
}

baseline=$(awk -F'[:,]' '/"uncached_ns_per_study"/ {gsub(/ /,"",$2); print $2}' "$BASELINE_FILE")
[ -n "$baseline" ] || { echo "no uncached_ns_per_study in $BASELINE_FILE" >&2; exit 2; }

echo "== profiling-disabled study throughput (inputs=0) =="
VULFI_BENCH_INPUTS=0 go test -run '^$' -bench StudyThroughput \
  -count "$COUNT" -benchtime "$BENCHTIME" ./internal/campaign/ |
  tee "$outdir/profile-off.txt"

now=$(min_ns "$outdir/profile-off.txt")
delta=$(awk -v b="$baseline" -v n="$now" 'BEGIN {printf "%.2f", 100*(n-b)/b}')
echo "ns/study: baseline(median)=$baseline now(min)=$now  delta=${delta}%  (tolerance ${TOLERANCE_PCT}%)"

if awk -v d="$delta" -v t="$TOLERANCE_PCT" 'BEGIN {exit !(d > t)}'; then
  echo "FAIL: profiling-disabled throughput regressed ${delta}% > ${TOLERANCE_PCT}% vs $BASELINE_FILE" >&2
  exit 1
fi
echo "OK: disabled-profiler cost within tolerance"
