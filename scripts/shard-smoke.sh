#!/usr/bin/env bash
# Distributed-campaign smoke test: start a coordinator and two worker
# vulfids, run a sharded study through `vulfi -remote -shards`, SIGKILL
# one worker mid-study, and assert the merged result is byte-identical
# (wall clocks and build stamp aside) to the same study run single-node
# (DESIGN.md §16). Needs curl + jq.
#
# Usage: shard-smoke.sh [out-dir] — when out-dir is given, the merged
# study JSON, the fleet view, and the daemon logs are copied there for
# CI artifacts.
set -euo pipefail

OUT=${1:-}

CADDR=127.0.0.1:${VULFID_PORT:-8667}
W1ADDR=127.0.0.1:$((${VULFID_PORT:-8667} + 1))
W2ADDR=127.0.0.1:$((${VULFID_PORT:-8667} + 2))
CBASE=http://$CADDR
WORK=$(mktemp -d)
CPID= W1PID= W2PID=

cleanup() {
  for pid in "$CPID" "$W1PID" "$W2PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

start_daemon() { # addr journal extra-args... -> pid on stdout
  local addr=$1 journal=$2
  shift 2
  "$WORK/vulfid" -addr "$addr" -journal "$journal" "$@" \
    >"$WORK/$(basename "$journal").log" 2>&1 &
  local pid=$!
  for _ in $(seq 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && { echo "$pid"; return; }
    sleep 0.1
  done
  die "daemon did not come up on $addr"
}

go build -o "$WORK/vulfid" ./cmd/vulfid
go build -o "$WORK/vulfi" ./cmd/vulfi

CPID=$(start_daemon "$CADDR" "$WORK/coord" -coordinator)
W1PID=$(start_daemon "$W1ADDR" "$WORK/w1" -join "$CADDR" -name w1)
W2PID=$(start_daemon "$W2ADDR" "$WORK/w2" -join "$CADDR" -name w2)

# The -join heartbeat registers each worker; wait until the coordinator
# sees both.
for _ in $(seq 100); do
  FLEET=$(curl -sf "$CBASE/v1/workers" | jq '.workers | length')
  [ "$FLEET" = 2 ] && break
  sleep 0.1
done
[ "$FLEET" = 2 ] || die "fleet has $FLEET workers, want 2"
echo "coordinator sees $FLEET workers"

# 1000 experiments on single-worker shards: slow enough that killing a
# worker lands mid-study and forces a shard reassignment.
SPEC=(-benchmark Blackscholes -category control -isa AVX
  -experiments 50 -campaigns 20 -seed 9 -workers 1)
"$WORK/vulfi" -remote "$CADDR" -shards 4 -json "${SPEC[@]}" \
  >"$WORK/sharded.json" 2>"$WORK/vulfi.log" &
VPID=$!

# Wait for the sharded job to make progress, then pull the plug on w2.
for _ in $(seq 200); do
  DONE=$(curl -sf "$CBASE/v1/jobs" | jq -r '.jobs[0].done // 0')
  [ "$DONE" -gt 0 ] && break
  sleep 0.1
done
[ "$DONE" -gt 0 ] || die "no sharded experiments completed before timeout"
echo "SIGKILL worker w2 at $DONE harvested experiments"
kill -KILL "$W2PID"
W2PID=

wait "$VPID" || { cat "$WORK/vulfi.log" >&2; die "sharded study failed"; }

STATE=$(curl -sf "$CBASE/v1/jobs" | jq -r '.jobs[0].state')
[ "$STATE" = done ] || die "sharded job ended $STATE, want done"

# The acceptance bar: the merged sharded study must match the same seed
# run single-node field for field. Wall-clock fields and the build
# stamp are the only legitimate differences (the reference arm runs via
# `go run`, which does not stamp the binary).
STRIP='del(.wall_total_ns, .wall_min_ns, .wall_mean_ns, .wall_max_ns, .build)'
REF=$(go run ./cmd/vulfi -json "${SPEC[@]}" | jq -S "$STRIP")
GOT=$(jq -S "$STRIP" "$WORK/sharded.json")
[ "$REF" = "$GOT" ] || {
  diff <(echo "$REF") <(echo "$GOT") >&2 || true
  die "sharded study differs from the single-node run"
}
echo "sharded study matches the single-node run field-for-field"

# The dead worker must still be visible in the fleet view, not
# silently dropped.
curl -sf "$CBASE/v1/workers" >"$WORK/fleet.json"
W2STATE=$(jq -r '.workers[] | select(.name == "w2") | .state' "$WORK/fleet.json")
[ -n "$W2STATE" ] || die "killed worker vanished from the fleet view"
echo "fleet view: w2 is $W2STATE after SIGKILL"

if [ -n "$OUT" ]; then
  mkdir -p "$OUT"
  cp "$WORK/sharded.json" "$WORK/fleet.json" "$WORK"/*.log "$OUT/"
fi

echo "PASS: sharded study survived a killed worker and merged byte-identically"
