package vulfi_test

import (
	"strings"
	"testing"

	vulfi "vulfi"
	"vulfi/internal/benchmarks"
)

// TestFacadeWorkflow walks the documented public-API workflow end to end.
func TestFacadeWorkflow(t *testing.T) {
	const src = `
export void twice(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		a[i] = a[i] * 2.0;
	}
}
`
	res, err := vulfi.CompileSource(src, vulfi.AVX, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if res.VL != 8 {
		t.Fatalf("AVX gang = %d", res.VL)
	}
	sites := vulfi.EnumerateSites(res.Module, nil)
	if len(sites) == 0 {
		t.Fatal("no sites")
	}
	ctrl := vulfi.SelectSites(sites, vulfi.Control)
	if len(ctrl) == 0 || len(ctrl) >= len(sites) {
		t.Fatalf("control selection wrong: %d of %d", len(ctrl), len(sites))
	}
	inst, err := vulfi.Instrument(res.Module, sites)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.LaneSites) <= len(sites) {
		t.Fatal("vector sites should expand to more lane sites")
	}

	x, err := vulfi.NewInstance(res, vulfi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &vulfi.Plan{Mode: vulfi.CountOnly}
	vulfi.AttachInjection(x, plan)
	vulfi.AttachDetectors(x)
	addr, _ := x.AllocF32([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if _, tr := x.CallExport("twice", vulfi.PtrArgF32(addr), vulfi.I32Arg(9)); tr != nil {
		t.Fatal(tr)
	}
	if plan.DynSites == 0 {
		t.Fatal("golden run counted no dynamic sites")
	}
}

func TestFacadeBenchmarkRegistry(t *testing.T) {
	if len(vulfi.Benchmarks()) != 9 {
		t.Fatalf("study benchmarks = %d, want 9 (Table I)", len(vulfi.Benchmarks()))
	}
	if len(vulfi.MicroBenchmarks()) != 3 {
		t.Fatalf("micro benchmarks = %d, want 3 (§IV-E)", len(vulfi.MicroBenchmarks()))
	}
	if vulfi.BenchmarkByName("Blackscholes") == nil {
		t.Fatal("Blackscholes missing")
	}
	if vulfi.BenchmarkByName("nope") != nil {
		t.Fatal("unknown benchmark should be nil")
	}
	// Table I order: PARVEC, ISPC, SCL.
	var suites []string
	for _, b := range vulfi.Benchmarks() {
		if len(suites) == 0 || suites[len(suites)-1] != b.Suite {
			suites = append(suites, b.Suite)
		}
	}
	if strings.Join(suites, ",") != "Parvec,ISPC,SCL" {
		t.Fatalf("suite order %v", suites)
	}
}

func TestFacadeStudy(t *testing.T) {
	sr, err := vulfi.RunStudy(vulfi.Config{
		Benchmark:   vulfi.BenchmarkByName("DotProduct"),
		ISA:         vulfi.SSE,
		Category:    vulfi.PureData,
		Scale:       benchmarks.ScaleTest,
		Experiments: 8,
		Campaigns:   2,
		Seed:        5,
		Detectors:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Totals.Experiments != 16 {
		t.Fatalf("experiments = %d", sr.Totals.Experiments)
	}
	if got := sr.Totals.SDC + sr.Totals.Benign + sr.Totals.Crash; got != 16 {
		t.Fatalf("outcomes do not partition: %d", got)
	}
	// §IV-E hypothesis at the facade level: pure-data faults cannot trip
	// the foreach-invariant detector.
	if sr.Totals.Detected != 0 {
		t.Fatal("pure-data faults fired the detector")
	}
}
