module vulfi

go 1.22
