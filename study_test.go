package vulfi

import (
	"context"
	"testing"
)

// TestNewStudyMatchesClassicAPI: a study built from functional options
// must run the exact same schedule as the deprecated Config-struct
// entry point.
func TestNewStudyMatchesClassicAPI(t *testing.T) {
	study, err := NewStudy(
		WithBenchmarkName("VectorCopy"),
		WithISA(AVX),
		WithCategory(PureData),
		WithScale(ScaleTest),
		WithExperiments(10),
		WithCampaigns(2),
		WithSeed(7),
		WithInputs(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg := study.Config()
	want, err := RunStudyContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gt, wt := got.Totals, want.Totals
	gt.WallTotal, gt.WallMin, gt.WallMax = 0, 0, 0
	wt.WallTotal, wt.WallMin, wt.WallMax = 0, 0, 0
	if gt != wt {
		t.Fatalf("options API diverged from classic API:\noptions: %+v\nclassic: %+v", gt, wt)
	}
}

// TestNewStudyValidation: option and validation failures surface at
// construction, before any compilation.
func TestNewStudyValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []StudyOption
	}{
		{"unknown benchmark", []StudyOption{WithBenchmarkName("NoSuchKernel"), WithISA(AVX)}},
		{"nil benchmark", []StudyOption{WithBenchmark(nil), WithISA(AVX)}},
		{"nil isa", []StudyOption{WithBenchmarkName("VectorCopy"), WithISA(nil)}},
		{"unknown isa", []StudyOption{WithBenchmarkName("VectorCopy"), WithISAName("MMX")}},
		{"missing isa", []StudyOption{WithBenchmarkName("VectorCopy")}},
		{"negative inputs", []StudyOption{
			WithBenchmarkName("VectorCopy"), WithISA(AVX), WithInputs(-1)}},
		{"negative experiments", []StudyOption{
			WithBenchmarkName("VectorCopy"), WithISA(AVX), WithExperiments(-3)}},
	}
	for _, tc := range cases {
		if _, err := NewStudy(tc.opts...); err == nil {
			t.Errorf("%s: NewStudy accepted the configuration", tc.name)
		}
	}
}

// TestNewStudyDefaults: zero counts normalize to the paper's 100×20 at
// construction, and the escape hatch reaches raw Config fields.
func TestNewStudyDefaults(t *testing.T) {
	var sawHook bool
	study, err := NewStudy(
		WithBenchmarkName("VectorCopy"),
		WithISAName("SSE"),
		WithConfig(func(c *Config) { sawHook = true }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !sawHook {
		t.Fatal("WithConfig hook did not run")
	}
	cfg := study.Config()
	if cfg.Experiments != 100 || cfg.Campaigns != 20 {
		t.Fatalf("defaults = %d×%d, want 100×20", cfg.Experiments, cfg.Campaigns)
	}
	if cfg.ISA != SSE {
		t.Fatalf("ISA = %v, want SSE", cfg.ISA)
	}
}
