// Sitebrowser example: explore how VULFI classifies the fault sites of a
// kernel — the Figure 2 taxonomy and the paper's foo() walkthrough —
// by dumping every site with its forward-slice classification.
package main

import (
	"fmt"
	"log"

	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/isa"
)

// The paper's Figure 3 example: i is both a control site and an address
// site; s is a pure-data site.
const fooSrc = `
export void foo(uniform int a[], uniform int n, uniform int x) {
	uniform int s = x;
	for (uniform int i = 0; i < n; i++) {
		a[i] = a[i] * s;
		s = s + i;
	}
}
`

func main() {
	res, err := codegen.CompileSource(fooSrc, isa.AVX, "foo")
	if err != nil {
		log.Fatal(err)
	}
	sites := core.EnumerateSites(res.Module, nil)

	fmt.Println("fault sites of foo() with forward-slice classification")
	fmt.Println("(the paper's Figure 3: i is control+address, s is pure-data)")
	fmt.Println()
	for _, s := range sites {
		cats := ""
		if s.Flags.Control {
			cats += " control"
		}
		if s.Flags.Address {
			cats += " address"
		}
		if cats == "" {
			cats = " pure-data"
		}
		target := "L-value"
		if s.ValueOperand >= 0 {
			target = fmt.Sprintf("operand %d", s.ValueOperand)
		}
		masked := ""
		if s.MaskOperand >= 0 {
			masked = " [masked]"
		}
		fmt.Printf("site %3d: %-60s target=%s lanes=%d%s ->%s\n",
			s.ID, s.Instr.String(), target, s.Lanes(), masked, cats)
	}

	// Aggregate: the Figure 2 Venn relation.
	var pure, ctrl, addr, both int
	for _, s := range sites {
		switch {
		case s.Flags.Control && s.Flags.Address:
			both++
		case s.Flags.Control:
			ctrl++
		case s.Flags.Address:
			addr++
		default:
			pure++
		}
	}
	fmt.Printf("\nFigure 2 relation: pure-data=%d  control-only=%d  address-only=%d  control∩address=%d\n",
		pure, ctrl, addr, both)
	fmt.Println("pure-data is disjoint from control and address by construction;")
	fmt.Println("control and address overlap (loop iterators used as array indices).")
}
