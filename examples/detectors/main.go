// Detectors example: synthesize the paper's §III-A foreach-invariant
// detector (and the §III-B uniform-broadcast checker) for the vector-copy
// kernel, then demonstrate a control fault being caught on loop exit.
package main

import (
	"context"
	"fmt"
	"log"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

func main() {
	// Run the §IV-E style detector study on vector copy, per category.
	for _, cat := range passes.AllCategories {
		sr, err := campaign.RunStudy(context.Background(), campaign.Config{
			Benchmark:   benchmarks.VectorCopy,
			ISA:         isa.AVX,
			Category:    cat,
			Scale:       benchmarks.ScaleDefault,
			Experiments: 200,
			Campaigns:   1,
			Seed:        99,
			Detectors:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		t := sr.Totals
		fmt.Printf("%-10s SDC %5.1f%%  Crash %5.1f%%  detector fired %3d times, SDC detection rate %5.1f%%\n",
			cat, 100*t.SDCRate(), 100*t.CrashRate(), t.Detected,
			100*t.SDCDetectionRate())
	}

	// The paper's hypothesis (§IV-E): the loop invariants depend on the
	// IR-level loop iterator, so pure-data faults can never trip them.
	fmt.Println("\nexpected: pure-data row never fires the detector;")
	fmt.Println("control faults produce the highest SDC and detection rates.")

	// Overhead of the detector block, measured the paper's way (§IV-E):
	// instrumented binary with vs without the detector block.
	oh, err := campaign.MeasureOverhead(benchmarks.VectorCopy, isa.AVX,
		benchmarks.ScaleDefault, passes.Control, false, 7, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetector overhead: %.2f%% dynamic instructions, %.2f%% wall clock (paper: ~8%%)\n",
		100*oh.DynOverhead(), 100*oh.WallOverhead())
}
