// Extensions example: the studies that go beyond the paper's evaluation —
// the §III-B uniform-broadcast detector (the paper's future work) and the
// AVX512 target demonstrating the "multiple vector formats" claim.
package main

import (
	"log"
	"os"

	"vulfi/internal/benchmarks"
	"vulfi/internal/report"
)

func main() {
	o := report.Defaults()
	o.MicroExperiments = 200
	o.Scale = benchmarks.ScaleDefault
	if err := report.Extension(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}
