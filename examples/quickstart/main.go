// Quickstart: compile a VSPC kernel, enumerate its fault sites, inject a
// single bit flip into one dynamic site, and classify the outcome — the
// whole VULFI workflow in one file.
package main

import (
	"fmt"
	"log"

	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
)

const kernel = `
export void saxpy(uniform float a, uniform float x[], uniform float y[],
		uniform int n) {
	foreach (i = 0 ... n) {
		y[i] = a * x[i] + y[i];
	}
}
`

func main() {
	// 1. Compile for AVX (gang of 8 32-bit lanes).
	res, err := codegen.CompileSource(kernel, isa.AVX, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Lowered IR (foreach full body + masked partial body) ===")
	fmt.Println(res.Module.Func("saxpy"))

	// 2. Enumerate and classify fault sites (pure-data / control / address).
	sites := core.EnumerateSites(res.Module, nil)
	fmt.Printf("=== %d fault sites ===\n", len(sites))
	for _, row := range core.Census(sites) {
		fmt.Printf("  %-10s %3d sites (%.0f%% vector instructions)\n",
			row.Category, row.Total(), 100*row.VectorFraction())
	}

	// 3. Instrument every site: each lane of each vector L-value becomes
	// an injectFault* call site.
	inst, err := core.Instrument(res.Module, sites)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstrumented %d lane sites\n", len(inst.LaneSites))

	run := func(plan *core.Plan) ([]float32, *interp.Trap) {
		x, err := exec.NewInstance(res, interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		core.AttachRuntime(x.It, plan)
		xs := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
		ys := make([]float32, len(xs))
		for i := range ys {
			ys[i] = 0.5
		}
		ax, _ := x.AllocF32(xs)
		ay, _ := x.AllocF32(ys)
		if _, tr := x.CallExport("saxpy", exec.F32Arg(2),
			exec.PtrArgF32(ax), exec.PtrArgF32(ay),
			exec.I32Arg(int64(len(xs)))); tr != nil {
			return nil, tr
		}
		out, _ := x.ReadF32(ay, len(xs))
		return out, nil
	}

	// 4. Golden run: count the dynamic fault sites.
	golden := &core.Plan{Mode: core.CountOnly}
	want, tr := run(golden)
	if tr != nil {
		log.Fatalf("golden run trapped: %v", tr)
	}
	fmt.Printf("golden output: %v\n", want)
	fmt.Printf("dynamic fault sites N = %d\n\n", golden.DynSites)

	// 5. Faulty runs: flip one bit at a few different dynamic sites.
	for _, target := range []uint64{1, golden.DynSites / 2, golden.DynSites} {
		plan := &core.Plan{Mode: core.InjectOnce, TargetDyn: target, BitSeed: 30}
		got, tr := run(plan)
		switch {
		case tr != nil:
			fmt.Printf("site %3d: CRASH (%v)\n", target, tr)
		case !equal(want, got):
			fmt.Printf("site %3d: SDC    (injected %s) -> %v\n",
				target, plan.Record, got)
		default:
			fmt.Printf("site %3d: BENIGN (injected %s)\n", target, plan.Record)
		}
	}
}

func equal(a, b []float32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
