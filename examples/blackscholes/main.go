// Blackscholes example: a full AVX-vs-SSE resiliency comparison on the
// Black-Scholes benchmark — the Figure 11 study for one column pair.
package main

import (
	"context"
	"fmt"
	"log"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

func main() {
	fmt.Println("Black-Scholes fault-injection study (AVX vs SSE, all categories)")
	fmt.Println()
	fmt.Printf("%-5s %-10s %8s %8s %8s %10s\n",
		"ISA", "category", "SDC", "Benign", "Crash", "±MoE(SDC)")
	for _, target := range isa.All {
		for _, cat := range passes.AllCategories {
			sr, err := campaign.RunStudy(context.Background(), campaign.Config{
				Benchmark:   benchmarks.Blackscholes,
				ISA:         target,
				Category:    cat,
				Scale:       benchmarks.ScaleDefault,
				Experiments: 100,
				Campaigns:   5,
				Seed:        2016,
			})
			if err != nil {
				log.Fatal(err)
			}
			t := sr.Totals
			fmt.Printf("%-5s %-10s %7.1f%% %7.1f%% %7.1f%%   ±%5.2f%%\n",
				target.Name, cat, 100*t.SDCRate(), 100*t.BenignRate(),
				100*t.CrashRate(), 100*sr.MarginOfError)
		}
	}
	fmt.Println()
	fmt.Println("expected shape (paper §IV-D): Blackscholes is among the highest-SDC")
	fmt.Println("benchmarks; address faults produce the most crashes; AVX and SSE")
	fmt.Println("rates are similar because the kernel is identical modulo gang size.")
}
