// Command vulfid is the long-lived campaign service: it accepts study
// specs over an HTTP/JSON API, queues them with backpressure, runs them
// on the campaign worker pool, and checkpoints every completed
// experiment to a JSONL journal so a killed daemon resumes incomplete
// jobs on restart with identical statistics.
//
//	vulfid -addr :8666 -journal /var/lib/vulfid
//
//	curl -XPOST localhost:8666/v1/jobs -d '{"benchmark":"Blackscholes","isa":"AVX","category":"control"}'
//	curl localhost:8666/v1/jobs/<id>
//	curl -N localhost:8666/v1/jobs/<id>/events
//	curl -XDELETE localhost:8666/v1/jobs/<id>
//
// SIGINT/SIGTERM drain gracefully: in-flight experiments finish and are
// journaled, running studies stop between experiments, and queued jobs
// stay journaled for the next daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vulfi/internal/cliutil"
	"vulfi/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8666", "HTTP listen address")
		journal = flag.String("journal", "vulfid-journal", "job journal directory (checkpoint/resume state)")
		queue   = flag.Int("queue", 64, "max queued jobs before 429 backpressure")
		runners = flag.Int("runners", 1, "concurrently executing jobs (each parallelizes internally)")
		fsync   = flag.Bool("fsync", false, "fdatasync every journal record (power-loss durability)")
		grace   = flag.Duration("grace", 2*time.Minute, "drain budget for in-flight experiments on shutdown")
		history = flag.String("history", "", "study-history JSONL store (default JOURNAL/history.jsonl; \"none\" disables)")
		version = cliutil.Version(flag.CommandLine)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "vulfid")
		return
	}
	log.SetPrefix("vulfid: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	s, err := server.New(server.Options{
		JournalDir: *journal, QueueSize: *queue, Runners: *runners,
		Fsync: *fsync, Logf: log.Printf, HistoryPath: *history,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv, bound, err := s.Serve(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (journal %s, queue %d, runners %d)",
		bound, *journal, *queue, *runners)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default signal behavior: a second signal kills hard
	log.Printf("signal received, draining (budget %s)", *grace)

	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if shutdownErr != nil {
		log.Printf("http shutdown: %v", shutdownErr)
	}
	fmt.Fprintln(os.Stderr, "vulfid: drained cleanly")
}
