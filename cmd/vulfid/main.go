// Command vulfid is the long-lived campaign service: it accepts study
// specs over an HTTP/JSON API, queues them with backpressure, runs them
// on the campaign worker pool, and checkpoints every completed
// experiment to a JSONL journal so a killed daemon resumes incomplete
// jobs on restart with identical statistics.
//
//	vulfid -addr :8666 -journal /var/lib/vulfid
//
//	curl -XPOST localhost:8666/v1/jobs -d '{"benchmark":"Blackscholes","isa":"AVX","category":"control"}'
//	curl localhost:8666/v1/jobs/<id>
//	curl -N localhost:8666/v1/jobs/<id>/events
//	curl -XDELETE localhost:8666/v1/jobs/<id>
//
// SIGINT/SIGTERM drain gracefully: in-flight experiments finish and are
// journaled, running studies stop between experiments, and queued jobs
// stay journaled for the next daemon.
//
// # Scaling out
//
// A vulfid started with -coordinator accepts jobs with "shards": N and
// spreads them over worker vulfids instead of running them itself.
// Workers are plain vulfids that register with the coordinator:
//
//	vulfid -addr :8666 -journal c-journal -coordinator        # coordinator
//	vulfid -addr :8701 -journal w1-journal -join :8666        # worker 1
//	vulfid -addr :8702 -journal w2-journal -join :8666        # worker 2
//
// -join re-registers on a timer, doubling as the heartbeat the
// coordinator's fleet view is built from; -advertise overrides the URL
// the coordinator should dial back (needed when the bind address is
// not reachable from the coordinator's side).
//
// Sharded jobs submitted with "timeline" or "profile" stay observable:
// the coordinator harvests each shard's span tree and profile snapshot
// from its workers and serves the fleet-wide merge on the job's usual
// /timeline and /profile sub-resources, and GET /v1/fleet (also shown
// on /dashboard) aggregates per-worker harvest throughput, lag, and
// reassignment/loss counters — journaled alongside the experiment
// checkpoints, so a restarted coordinator keeps the history.
//
// # Multi-tenant access
//
// -api-key KEY[=TENANT] (repeatable as a comma list) puts every /v1
// route behind authentication: requests must present a configured key
// (Authorization: Bearer, X-Api-Key, or ?key= for EventSource) or get
// a 401. Submissions are attributed to the key's tenant and
// -tenant-quota bounds each tenant's queued-plus-running jobs (429 +
// Retry-After beyond it). -fleet-key is the key a coordinator presents
// to its workers when those run with -api-key themselves.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/client"
	"vulfi/internal/cliutil"
	"vulfi/internal/server"
)

// parseAPIKeys parses the -api-key list: "KEY" or "KEY=TENANT", comma
// separated. A bare key maps to the "default" tenant.
func parseAPIKeys(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, tenant, found := strings.Cut(part, "=")
		if key == "" || (found && tenant == "") {
			return nil, fmt.Errorf("bad -api-key entry %q (want KEY or KEY=TENANT)", part)
		}
		if !found {
			tenant = "default"
		}
		out[key] = tenant
	}
	return out, nil
}

// advertiseURL derives the URL a coordinator should dial back from the
// bound listen address: an unspecified host (":8701", "0.0.0.0:...",
// "[::]:...") is rewritten to 127.0.0.1, which is right for single-host
// fleets; multi-host setups pass -advertise explicitly.
func advertiseURL(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// joinLoop registers this vulfid with a coordinator and keeps
// re-registering on a timer — registration is idempotent, so the same
// call is the heartbeat that keeps the worker schedulable. Errors are
// logged on state change only (a coordinator restart should not flood
// the log at the heartbeat rate).
func joinLoop(ctx context.Context, coord, selfURL, name, key string) {
	cl := client.New(coord, client.WithAPIKey(key))
	reg := api.WorkerRegistration{URL: selfURL, Name: name}
	wasErr := false
	beat := func() {
		bctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		_, err := cl.RegisterWorker(bctx, reg)
		switch {
		case err != nil && !wasErr:
			log.Printf("join: cannot reach coordinator %s: %v (retrying)", coord, err)
		case err == nil && wasErr:
			log.Printf("join: registered with coordinator %s as %s", coord, selfURL)
		}
		wasErr = err != nil
	}
	log.Printf("join: registering with coordinator %s as %s", coord, selfURL)
	beat()
	t := time.NewTicker(5 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}

func main() {
	var (
		addr    = flag.String("addr", ":8666", "HTTP listen address")
		journal = flag.String("journal", "vulfid-journal", "job journal directory (checkpoint/resume state)")
		queue   = flag.Int("queue", 64, "max queued jobs before 429 backpressure")
		runners = flag.Int("runners", 1, "concurrently executing jobs (each parallelizes internally)")
		fsync   = flag.Bool("fsync", false, "fdatasync every journal record (power-loss durability)")
		grace   = flag.Duration("grace", 2*time.Minute, "drain budget for in-flight experiments on shutdown")
		history = flag.String("history", "", "study-history JSONL store (default JOURNAL/history.jsonl; \"none\" disables)")

		coordinator = flag.Bool("coordinator", false, "accept sharded jobs (\"shards\": N) and spread them over registered workers")
		join        = flag.String("join", "", "register as a worker with the coordinator at this address (repeats as the heartbeat)")
		advertise   = flag.String("advertise", "", "URL the coordinator should dial back (default: the bound address, with unspecified hosts rewritten to 127.0.0.1)")
		name        = flag.String("name", "", "worker display name shown in the coordinator's fleet view")
		apiKeys     = flag.String("api-key", "", "comma-separated accepted API keys, each KEY or KEY=TENANT; non-empty puts /v1 behind authentication")
		fleetKey    = flag.String("fleet-key", "", "API key this coordinator presents to its workers")
		quota       = flag.Int("tenant-quota", 0, "max queued-plus-running jobs per tenant (0 = unlimited)")

		version = cliutil.Version(flag.CommandLine)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "vulfid")
		return
	}
	log.SetPrefix("vulfid: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	keys, err := parseAPIKeys(*apiKeys)
	if err != nil {
		log.Fatal(err)
	}
	s, err := server.New(server.Options{
		JournalDir: *journal, QueueSize: *queue, Runners: *runners,
		Fsync: *fsync, Logf: log.Printf, HistoryPath: *history,
		Coordinator: *coordinator, FleetKey: *fleetKey,
		APIKeys: keys, TenantQuota: *quota,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv, bound, err := s.Serve(*addr)
	if err != nil {
		log.Fatal(err)
	}
	role := "worker pool"
	if *coordinator {
		role = "coordinator"
	}
	log.Printf("serving on %s (%s, journal %s, queue %d, runners %d)",
		bound, role, *journal, *queue, *runners)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		self := *advertise
		if self == "" {
			self = advertiseURL(bound)
		}
		go joinLoop(ctx, *join, self, *name, *fleetKey)
	}

	<-ctx.Done()
	stop() // restore default signal behavior: a second signal kills hard
	log.Printf("signal received, draining (budget %s)", *grace)

	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if shutdownErr != nil {
		log.Printf("http shutdown: %v", shutdownErr)
	}
	fmt.Fprintln(os.Stderr, "vulfid: drained cleanly")
}
