package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"vulfi/internal/atlas"
	"vulfi/internal/campaign"
	"vulfi/internal/report"
	"vulfi/internal/stats"
)

// defaultHistory is where -history and the subcommands look when no
// -file is given; vulfid keeps its own store under the journal dir.
const defaultHistory = "vulfi-history.jsonl"

// writeHeatmap renders the study's per-site atlas as a self-contained
// HTML heatmap.
func writeHeatmap(path string, sr *campaign.StudyResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := atlas.New(sr).WriteHTML(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("atlas heatmap: %w", err)
	}
	return f.Close()
}

// readHistoryStrict loads a history store for commands that need
// entries to exist. Unlike atlas.ReadHistory — which treats a missing
// file as an empty store so recording can bootstrap it — this reports a
// missing or empty file as an error naming the file, so a typoed -file
// or never-recorded store fails loudly instead of reading as a
// zero-entry gate pass.
func readHistoryStrict(path string) ([]atlas.Entry, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil, fmt.Errorf("history file %s does not exist (run a study with -history %s to record one)",
			path, path)
	}
	entries, err := atlas.ReadHistory(path)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("history file %s exists but records no studies (run a study with -history %s first)",
			path, path)
	}
	return entries, nil
}

// historyCmd implements `vulfi history [-file F] list|show N`.
func historyCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vulfi history", flag.ExitOnError)
	file := fs.String("file", defaultHistory, "history store to read")
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vulfi history [-file F] list|show N")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	entries, err := atlas.ReadHistory(*file)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	verb := "list"
	if fs.NArg() > 0 {
		verb = fs.Arg(0)
	}
	switch verb {
	case "list":
		if len(entries) == 0 {
			fmt.Fprintf(stdout, "no recorded studies in %s\n", *file)
			return 0
		}
		report.WriteHistory(stdout, entries)
		return 0
	case "show":
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "usage: vulfi history show N  (1-based entry index)")
			return 2
		}
		e, ok := entryAt(entries, fs.Arg(1))
		if !ok {
			fmt.Fprintf(stderr, "entry %q out of range: %s has %d entries\n",
				fs.Arg(1), *file, len(entries))
			return 2
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(e); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	default:
		fs.Usage()
		return 2
	}
}

// diffCmd implements `vulfi diff [-file F] [-z Z] BASELINE [CANDIDATE]`:
// the regression gate between two recorded studies. Indices are 1-based;
// the candidate defaults to the newest entry. Exit status: 0 no
// significant regression, 1 regression(s), 2 usage error.
func diffCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vulfi diff", flag.ExitOnError)
	file := fs.String("file", defaultHistory, "history store to read")
	z := fs.Float64("z", stats.Z95, "two-proportion z threshold for significance")
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vulfi diff [-file F] [-z Z] BASELINE [CANDIDATE]  (1-based history entries; candidate defaults to the newest)")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		return 2
	}
	entries, err := readHistoryStrict(*file)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	baseline, ok := entryAt(entries, fs.Arg(0))
	if !ok {
		fmt.Fprintf(stderr, "baseline %q out of range: %s has %d entries\n",
			fs.Arg(0), *file, len(entries))
		return 2
	}
	candidate := &entries[len(entries)-1]
	if fs.NArg() == 2 {
		if candidate, ok = entryAt(entries, fs.Arg(1)); !ok {
			fmt.Fprintf(stderr, "candidate %q out of range: %s has %d entries\n",
				fs.Arg(1), *file, len(entries))
			return 2
		}
	}

	d := atlas.Compare(baseline, candidate, *z)
	report.WriteDiff(stdout, d)
	if len(d.Regressions()) > 0 {
		return 1
	}
	return 0
}

// entryAt resolves a 1-based history index argument.
func entryAt(entries []atlas.Entry, arg string) (*atlas.Entry, bool) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 || n > len(entries) {
		return nil, false
	}
	return &entries[n-1], true
}
