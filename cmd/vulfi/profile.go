package main

import (
	"fmt"
	"os"

	"vulfi/internal/campaign"
	"vulfi/internal/profile"
)

// writeProfileFiles serializes the study's execution profile: folded
// stacks (flamegraph.pl-compatible) to path, and the self-contained
// HTML flame graph to path+".html".
func writeProfileFiles(path, title string, sr *campaign.StudyResult) error {
	p := sr.HotProfile
	if p == nil {
		return fmt.Errorf("study carries no execution profile")
	}
	folded, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := profile.WriteFolded(folded, p); err != nil {
		folded.Close()
		return err
	}
	if err := folded.Close(); err != nil {
		return err
	}
	html, err := os.Create(path + ".html")
	if err != nil {
		return err
	}
	if err := p.WriteFlameHTML(html, title); err != nil {
		html.Close()
		return err
	}
	return html.Close()
}
