package main

import (
	"fmt"
	"os"

	"vulfi/internal/campaign"
	"vulfi/internal/profile"
)

// writeProfileFiles serializes the study's execution profile: folded
// stacks (flamegraph.pl-compatible) to path, and the self-contained
// HTML flame graph to path+".html".
func writeProfileFiles(path, title string, sr *campaign.StudyResult) error {
	if sr.HotProfile == nil {
		return fmt.Errorf("study carries no execution profile")
	}
	return writeProfileArtifacts(path, title, sr.HotProfile)
}

// writeProfileArtifacts is the profile-value form, shared with the
// remote path (which fetches the daemon's — possibly fleet-merged —
// profile over the API rather than out of a local StudyResult).
func writeProfileArtifacts(path, title string, p *profile.Profile) error {
	folded, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := profile.WriteFolded(folded, p); err != nil {
		folded.Close()
		return err
	}
	if err := folded.Close(); err != nil {
		return err
	}
	html, err := os.Create(path + ".html")
	if err != nil {
		return err
	}
	if err := p.WriteFlameHTML(html, title); err != nil {
		html.Close()
		return err
	}
	return html.Close()
}
