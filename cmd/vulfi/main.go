// Command vulfi runs a fault-injection campaign for one benchmark:
//
//	vulfi -benchmark Blackscholes -isa AVX -category control \
//	      -experiments 100 -campaigns 20 -detectors
//
// It prints per-campaign and aggregate SDC/Benign/Crash rates with the
// paper's 95%-confidence margin of error, and a sample of injection
// records in verbose mode.
//
// With -remote ADDR the study is not run in-process: the same flags are
// submitted to a vulfid daemon as a job, live progress is tailed over
// the job's SSE stream, and the daemon's final result is printed.
// Ctrl-C cancels the job on the daemon before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/cliutil"
	"vulfi/internal/report"
	"vulfi/internal/server"
	"vulfi/internal/telemetry"
)

func main() {
	fs := flag.CommandLine
	var (
		benchName            = cliutil.Benchmark(fs, "VectorCopy")
		isaName              = cliutil.ISA(fs, "AVX")
		catName              = cliutil.Category(fs)
		exps                 = cliutil.Experiments(fs)
		camps                = cliutil.Campaigns(fs)
		seed                 = cliutil.Seed(fs, 1)
		workers              = cliutil.Workers(fs)
		inputs               = cliutil.Inputs(fs)
		detectors, broadcast = cliutil.Detectors(fs)
		large                = cliutil.Large(fs)
		tel                  = cliutil.TelemetryFlags(fs)

		list      = flag.Bool("list", false, "list benchmarks and exit")
		verbose   = flag.Bool("v", false, "print per-campaign rows and sample injections")
		jsonOut   = flag.Bool("json", false, "emit the study as JSON instead of text")
		csvOut    = flag.Bool("csv", false, "emit the study as a CSV row (with header)")
		remote    = flag.String("remote", "", "submit to a vulfid daemon at this address instead of running locally")
		traceRuns = flag.Bool("trace", false, "record golden/faulty divergence traces and print the propagation profile")
		explain   = flag.Int("explain", -1, "run only the experiment at this index of the seed schedule, with tracing, and print its fault→divergence→outcome explanation")
	)
	flag.Parse()

	if *list {
		for _, b := range benchmarks.All() {
			fmt.Printf("%-18s %-7s entry=%s  %s\n", b.Name, b.Suite, b.Entry, b.InputDesc)
		}
		return
	}

	scaleName := "default"
	if *large {
		scaleName = "large"
	}
	spec := server.Spec{
		Benchmark: *benchName, ISA: strings.ToUpper(*isaName),
		Category: *catName, Scale: scaleName,
		Experiments: *exps, Campaigns: *camps, Seed: *seed, Workers: *workers,
		Inputs:    *inputs,
		Detectors: *detectors, BroadcastDetector: *broadcast,
		Trace: *traceRuns || *explain >= 0,
	}
	cfg, err := spec.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Ctrl-C cancels the study cooperatively (and, in remote mode, asks
	// the daemon to cancel the job).
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *explain >= 0 {
		if *remote != "" {
			fmt.Fprintln(os.Stderr, "-explain runs locally; against a daemon use GET /v1/jobs/{id}/explain?index=N")
			os.Exit(2)
		}
		r, err := campaign.ExplainExperiment(ctx, cfg, *explain)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{
				"index": *explain, "seed": cfg.ExperimentSeed(*explain),
				"outcome": r.Outcome.String(), "detected": r.Detected,
				"input": r.InputLabel, "explanation": r.Explanation,
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("VULFI explain: %s  experiment %d (seed %d)\n",
			cfg, *explain, cfg.ExperimentSeed(*explain))
		report.WriteExplanation(os.Stdout, r)
		return
	}

	if *remote != "" {
		if err := runRemote(ctx, *remote, spec, *jsonOut, *tel.Progress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ew, telStop, err := tel.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer telStop()
	cfg.Events = ew
	if *tel.Progress {
		pr := telemetry.NewProgress(os.Stderr, cfg.String(), *camps**exps)
		cfg.OnExperiment = func(r *campaign.ExperimentResult) {
			pr.Observe(r.Outcome.String(), r.Detected)
		}
		defer pr.Finish()
	}
	if !*jsonOut && !*csvOut {
		fmt.Printf("VULFI study: %s  (%d campaigns x %d experiments)\n",
			cfg, *camps, *exps)
	}

	sr, err := campaign.RunStudy(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *jsonOut:
		if err := sr.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case *csvOut:
		if err := campaign.WriteCSVHeader(os.Stdout); err == nil {
			err = sr.WriteCSVRow(os.Stdout)
		}
		return
	}

	if *verbose {
		for i, c := range sr.Campaigns {
			fmt.Printf("  campaign %2d: SDC %5.1f%%  Benign %5.1f%%  Crash %5.1f%%  detected %d\n",
				i+1, 100*c.SDCRate(), 100*c.BenignRate(), 100*c.CrashRate(), c.Detected)
		}
	}
	t := sr.Totals
	fmt.Printf("static sites: %d (%d lane sites)\n", sr.StaticSites, sr.LaneSites)
	fmt.Printf("mean golden dynamic instructions: %.0f\n", sr.MeanGoldenDynInstrs)
	fmt.Printf("SDC    %6.2f%%  (±%.2f%% at 95%%, near-normal=%v)\n",
		100*sr.MeanSDC, 100*sr.MarginOfError, sr.NearNormal)
	fmt.Printf("Benign %6.2f%%\n", 100*t.BenignRate())
	fmt.Printf("Crash  %6.2f%%  (%d hangs)\n", 100*t.CrashRate(), t.Hang)
	if *detectors {
		fmt.Printf("detector fired in %d experiments; SDC detection rate %.2f%%\n",
			t.Detected, 100*t.SDCDetectionRate())
	}
	if sr.Propagation != nil {
		report.WritePropagation(os.Stdout, sr)
	}
}
