// Command vulfi runs a fault-injection campaign for one benchmark:
//
//	vulfi -benchmark Blackscholes -isa AVX -category control \
//	      -experiments 100 -campaigns 20 -detectors
//
// It prints per-campaign and aggregate SDC/Benign/Crash rates with the
// paper's 95%-confidence margin of error, and a sample of injection
// records in verbose mode.
//
// With -remote ADDR the study is not run in-process: the same flags are
// submitted to a vulfid daemon as a job, live progress is tailed over
// the job's SSE stream, and the daemon's final result is printed.
// Ctrl-C cancels the job on the daemon before exiting.
//
// With -atlas FILE the study additionally attributes every outcome to
// its static fault site and renders a self-contained HTML heatmap to
// FILE; -history FILE appends the finished study to a JSONL history
// store that the subcommands read:
//
//	vulfi history list              # recorded studies, newest last
//	vulfi history show N            # full JSON of entry N (1-based)
//	vulfi diff BASELINE [CANDIDATE] # regression gate between two entries
//
// `vulfi diff` exits non-zero when the candidate significantly regresses
// the baseline (SDC or crash rate up, detection rate down), so it can
// gate CI.
//
// With -timeline FILE the study records hierarchical wall-time spans
// (study → experiment → golden/faulty/compare) and writes them to FILE
// as Chrome trace-event JSON — load it in Perfetto or chrome://tracing
// for one lane per worker — plus the raw span list to FILE.jsonl.
// Combined with -remote, the client generates a W3C traceparent, the
// daemon's spans nest under the client's root span, and FILE holds the
// single merged trace. Both -timeline and -profile also combine with
// -shards: the coordinator harvests each shard's span tree and profile
// from its workers and serves the fleet-wide merge, so the written
// trace shows one lane group per worker under the coordinator's
// dispatch lane, and the profile's counts equal a single-node run's.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vulfi/internal/atlas"
	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/cliutil"
	"vulfi/internal/report"
	"vulfi/internal/server"
	"vulfi/internal/telemetry"
)

func main() {
	// Subcommands operate on the history store and take their own flags;
	// everything else is the classic flag-driven study runner.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "history":
			os.Exit(historyCmd(os.Args[2:], os.Stdout, os.Stderr))
		case "diff":
			os.Exit(diffCmd(os.Args[2:], os.Stdout, os.Stderr))
		}
	}

	fs := flag.CommandLine
	var (
		benchName            = cliutil.Benchmark(fs, "VectorCopy")
		isaName              = cliutil.ISA(fs, "AVX")
		catName              = cliutil.Category(fs)
		exps                 = cliutil.Experiments(fs)
		camps                = cliutil.Campaigns(fs)
		seed                 = cliutil.Seed(fs, 1)
		workers              = cliutil.Workers(fs)
		inputs               = cliutil.Inputs(fs)
		backend              = cliutil.Backend(fs)
		timelineOut          = cliutil.Timeline(fs)
		detectors, broadcast = cliutil.Detectors(fs)
		large                = cliutil.Large(fs)
		tel                  = cliutil.TelemetryFlags(fs)

		list      = flag.Bool("list", false, "list benchmarks and exit")
		verbose   = flag.Bool("v", false, "print per-campaign rows and sample injections")
		jsonOut   = flag.Bool("json", false, "emit the study as JSON instead of text")
		csvOut    = flag.Bool("csv", false, "emit the study as a CSV row (with header)")
		remote    = flag.String("remote", "", "submit to a vulfid daemon at this address instead of running locally")
		shards    = cliutil.Shards(fs)
		apiKey    = cliutil.APIKey(fs)
		traceRuns = flag.Bool("trace", false, "record golden/faulty divergence traces and print the propagation profile")
		explain   = flag.Int("explain", -1, "run only the experiment at this index of the seed schedule, with tracing, and print its fault→divergence→outcome explanation")
		atlasOut  = flag.String("atlas", "", "attribute outcomes to static fault sites and write the HTML heatmap to this file")
		profOut   = flag.String("profile", "", "profile interpreter execution: write folded stacks to this file, a flame graph to FILE.html, and print the hot-opcode table")
		histOut   = flag.String("history", "", "append the finished study to this JSONL history store (see 'vulfi history', 'vulfi diff')")
		version   = cliutil.Version(fs)
	)
	flag.Parse()

	if *version {
		cliutil.PrintVersion(os.Stdout, "vulfi")
		return
	}
	if *list {
		for _, b := range benchmarks.All() {
			fmt.Printf("%-18s %-7s entry=%s  %s\n", b.Name, b.Suite, b.Entry, b.InputDesc)
		}
		return
	}

	// Flag combinations that cannot work together fail fast, with one
	// shared message shape (cliutil) instead of per-combination prose.
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *remote != "" {
		switch {
		case *explain >= 0:
			fail(cliutil.MutuallyExclusive("explain", "remote",
				"-explain runs locally; against a daemon use GET /v1/jobs/{id}/explain?index=N"))
		case *atlasOut != "" || *histOut != "":
			fail(cliutil.MutuallyExclusive("atlas/-history", "remote",
				"these run locally; a vulfid daemon records its own history (GET /v1/history)"))
		}
	}
	if *shards > 0 {
		switch {
		case *remote == "":
			fail(cliutil.Requires("shards", "remote",
				"sharding is scheduled by a vulfid coordinator"))
		case *traceRuns:
			fail(cliutil.MutuallyExclusive("shards", "trace",
				"traces attach to fresh local executions, not harvested shard results"))
		}
	}
	remoteAPIKey = *apiKey

	scaleName := "default"
	if *large {
		scaleName = "large"
	}
	spec := server.Spec{
		Benchmark: *benchName, ISA: strings.ToUpper(*isaName),
		Category: *catName, Scale: scaleName,
		Experiments: *exps, Campaigns: *camps, Seed: *seed, Workers: *workers,
		Inputs:    *inputs,
		Backend:   *backend,
		Detectors: *detectors, BroadcastDetector: *broadcast,
		Trace:    *traceRuns || *explain >= 0,
		Atlas:    *atlasOut != "" || *histOut != "",
		Profile:  *profOut != "",
		Timeline: *timelineOut != "",
		Shards:   *shards,
	}
	cfg, err := spec.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Ctrl-C cancels the study cooperatively (and, in remote mode, asks
	// the daemon to cancel the job).
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *explain >= 0 {
		r, err := campaign.ExplainExperiment(ctx, cfg, *explain)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{
				"index": *explain, "seed": cfg.ExperimentSeed(*explain),
				"outcome": r.Outcome.String(), "detected": r.Detected,
				"input": r.InputLabel, "explanation": r.Explanation,
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("VULFI explain: %s  experiment %d (seed %d)\n",
			cfg, *explain, cfg.ExperimentSeed(*explain))
		report.WriteExplanation(os.Stdout, r)
		return
	}

	if *remote != "" {
		if err := runRemote(ctx, *remote, spec, *jsonOut, *tel.Progress, *timelineOut, *profOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ew, telStop, err := tel.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer telStop()
	cfg.Events = ew
	if *tel.Progress {
		pr := telemetry.NewProgress(os.Stderr, cfg.String(), *camps**exps)
		cfg.OnExperiment = func(r *campaign.ExperimentResult) {
			pr.Observe(r.Outcome.String(), r.Detected)
		}
		defer pr.Finish()
	}
	if !*jsonOut && !*csvOut {
		fmt.Printf("VULFI study: %s  (%d campaigns x %d experiments)\n",
			cfg, *camps, *exps)
	}

	sr, err := campaign.RunStudy(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *atlasOut != "" {
		if err := writeHeatmap(*atlasOut, sr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*jsonOut && !*csvOut {
			fmt.Printf("atlas heatmap written to %s\n", *atlasOut)
		}
	}
	if *histOut != "" {
		if err := atlas.AppendEntry(*histOut, atlas.NewEntry(sr, time.Now())); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *profOut != "" {
		if err := writeProfileFiles(*profOut, cfg.String(), sr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*jsonOut && !*csvOut {
			fmt.Printf("folded stacks written to %s, flame graph to %s.html\n",
				*profOut, *profOut)
		}
	}
	if *timelineOut != "" {
		if err := writeTimelineFiles(*timelineOut, sr.Timeline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !*jsonOut && !*csvOut {
			fmt.Printf("trace events written to %s (load in Perfetto), spans to %s.jsonl\n",
				*timelineOut, *timelineOut)
			report.WriteTimeline(os.Stdout, sr.Timeline)
		}
	}

	switch {
	case *jsonOut:
		if err := sr.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case *csvOut:
		if err := campaign.WriteCSVHeader(os.Stdout); err == nil {
			err = sr.WriteCSVRow(os.Stdout)
		}
		return
	}

	report.WriteStudy(os.Stdout, sr, *verbose)
}
