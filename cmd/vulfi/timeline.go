package main

import (
	"fmt"

	"os"

	"vulfi/internal/obs"
)

// writeTimelineFiles exports a study timeline: Chrome trace-event JSON
// to path (Perfetto, chrome://tracing) and the raw span list to
// path.jsonl (one span per line, greppable).
func writeTimelineFiles(path string, tl *obs.Timeline) error {
	if tl == nil {
		return fmt.Errorf("timeline: study produced no timeline")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteTraceEvents(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fj, err := os.Create(path + ".jsonl")
	if err != nil {
		return err
	}
	if err := tl.WriteJSONL(fj); err != nil {
		fj.Close()
		return err
	}
	return fj.Close()
}
