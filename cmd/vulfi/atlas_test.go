package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vulfi/internal/atlas"
	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// testEntry is a minimal recorded study for exercising the diff gate.
func testEntry(t *testing.T, sdc int) atlas.Entry {
	t.Helper()
	sr := &campaign.StudyResult{}
	sr.Cfg.Benchmark = benchmarks.VectorCopy
	sr.Cfg.ISA = isa.AVX
	sr.Cfg.Category = passes.PureData
	sr.Totals = campaign.CampaignResult{Experiments: 100, SDC: sdc,
		Benign: 100 - sdc}
	return atlas.NewEntry(sr, time.Unix(0, 0).UTC())
}

// TestDiffMissingHistory: `vulfi diff` against a history file that does
// not exist must fail with an error naming the file, not report a
// zero-entry store as a gate pass.
func TestDiffMissingHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.jsonl")
	var out, errOut bytes.Buffer
	if code := diffCmd([]string{"-file", path, "1"}, &out, &errOut); code != 2 {
		t.Fatalf("diff on missing history: exit %d, want 2\nstderr: %s",
			code, errOut.String())
	}
	msg := errOut.String()
	if !strings.Contains(msg, path) || !strings.Contains(msg, "does not exist") {
		t.Fatalf("error must name the missing file %s: %q", path, msg)
	}
}

// TestDiffEmptyHistory: an existing but entry-less history file is a
// distinct, equally loud failure.
func TestDiffEmptyHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := diffCmd([]string{"-file", path, "1"}, &out, &errOut); code != 2 {
		t.Fatalf("diff on empty history: exit %d, want 2\nstderr: %s",
			code, errOut.String())
	}
	msg := errOut.String()
	if !strings.Contains(msg, path) || !strings.Contains(msg, "records no studies") {
		t.Fatalf("error must name the empty file %s: %q", path, msg)
	}
}

// TestDiffRecordedHistory: with real entries the gate still works —
// exit 0 on no regression, 1 when the candidate regresses.
func TestDiffRecordedHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	for _, sdc := range []int{10, 10, 60} {
		if err := atlas.AppendEntry(path, testEntry(t, sdc)); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut bytes.Buffer
	if code := diffCmd([]string{"-file", path, "1", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("identical entries: exit %d, want 0\nstderr: %s", code, errOut.String())
	}
	out.Reset()
	if code := diffCmd([]string{"-file", path, "1"}, &out, &errOut); code != 1 {
		t.Fatalf("regressed candidate: exit %d, want 1\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") &&
		!strings.Contains(strings.ToLower(out.String()), "regress") {
		t.Fatalf("diff output does not flag the regression: %s", out.String())
	}
}
