package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"vulfi/internal/client"
	"vulfi/internal/obs"
	"vulfi/internal/profile"
	"vulfi/internal/server"
)

// remoteAPIKey is the -api-key flag value, presented to the daemon on
// every request (the runRemote signature itself is part of the test
// surface and stays key-free).
var remoteAPIKey string

// runRemote submits the spec to a vulfid daemon through the typed
// client package, tails the job's SSE event stream until it reaches a
// terminal state, and prints the final result. When ctx is cancelled
// (Ctrl-C) the job is cancelled on the daemon before returning. Queue
// backpressure (429 + Retry-After) is retried inside client.Submit.
//
// With timelineOut set the client opens its own root span, propagates
// it to the daemon as a W3C traceparent, and — once the job finishes —
// merges the daemon's timeline under that root span into one
// Perfetto-loadable trace: the client lane shows the whole
// submit-to-result window, the server lanes the per-worker experiment
// spans inside it. On a sharded job the daemon's timeline is already
// the coordinator's fleet merge, so the same fetch yields one lane
// group per worker.
//
// With profileOut set the finished job's execution profile (the fleet
// merge, for sharded jobs) is fetched and written as folded stacks plus
// an HTML flame graph, exactly like a local -profile run.
func runRemote(ctx context.Context, addr string, spec server.Spec,
	jsonOut, progress bool, timelineOut, profileOut string) error {

	notify := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	cl := client.New(addr,
		client.WithAPIKey(remoteAPIKey), client.WithNotify(notify))

	var clientSpan string
	clientStart := time.Now()
	if timelineOut != "" {
		// Deterministic client identity: same spec, same trace — matching
		// the campaign layer's schedule-derived span IDs.
		tid := obs.DeriveTraceID(fmt.Sprintf("vulfi-remote %s/%s/%s seed=%d",
			spec.Benchmark, spec.ISA, spec.Category, spec.Seed))
		clientSpan = obs.DeriveSpanID(tid, "vulfi-remote", spec.Seed)
		spec.TraceParent = obs.FormatTraceparent(tid, clientSpan)
	}

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "submitted job %s (%d experiments) to %s\n",
		st.ID, st.Total, cl.Base())

	// Cancel the remote job if our context dies while tailing.
	defer func() {
		if ctx.Err() == nil {
			return
		}
		cctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if _, err := cl.Cancel(cctx, st.ID); err == nil {
			fmt.Fprintf(os.Stderr, "cancelled job %s\n", st.ID)
		}
	}()

	final, err := cl.Tail(ctx, st.ID, func(event string, data json.RawMessage) {
		if !progress || event != "experiment" {
			return
		}
		var ev struct {
			Done    int    `json:"done"`
			Total   int    `json:"total"`
			Outcome string `json:"outcome"`
		}
		if json.Unmarshal(data, &ev) == nil {
			fmt.Fprintf(os.Stderr, "\r%d/%d experiments (last: %s)   ",
				ev.Done, ev.Total, ev.Outcome)
		}
	})
	if err != nil {
		return err
	}
	if progress {
		fmt.Fprintln(os.Stderr)
	}
	if timelineOut != "" && final.State == server.StateDone {
		if err := fetchMergedTimeline(ctx, cl, st.ID, clientSpan,
			clientStart, timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "timeline: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "merged trace written to %s (load in Perfetto), spans to %s.jsonl\n",
				timelineOut, timelineOut)
		}
	}
	if profileOut != "" && final.State == server.StateDone {
		if err := fetchProfile(ctx, cl, st.ID, spec, profileOut); err != nil {
			fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "folded stacks written to %s, flame graph to %s.html\n",
				profileOut, profileOut)
		}
	}
	return printRemoteResult(final, jsonOut)
}

// fetchProfile pulls the finished job's execution profile from the
// daemon and writes the same artifacts a local -profile run produces.
func fetchProfile(ctx context.Context, cl *client.Client, id string,
	spec server.Spec, path string) error {

	raw, err := cl.Profile(ctx, id)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("job %s has no execution profile in its result", id)
	}
	var p profile.Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		return err
	}
	title := fmt.Sprintf("%s/%s/%s seed=%d",
		spec.Benchmark, spec.ISA, spec.Category, spec.Seed)
	return writeProfileArtifacts(path, title, &p)
}

// fetchMergedTimeline pulls the finished job's timeline from the daemon
// and nests it under the client's root span — the submit-to-result
// window measured on this side of the HTTP boundary.
func fetchMergedTimeline(ctx context.Context, cl *client.Client, id, clientSpan string,
	clientStart time.Time, path string) error {

	tl, err := cl.Timeline(ctx, id)
	if err != nil {
		return err
	}
	if tl == nil {
		return fmt.Errorf("job %s has no timeline in its result", id)
	}
	root := obs.Span{
		Name: "vulfi-remote", ID: clientSpan,
		DurNS: time.Since(clientStart).Nanoseconds(),
		Attrs: map[string]string{"job": id, "daemon": cl.Base()},
	}
	return writeTimelineFiles(path, obs.MergeRemote(root, clientStart, tl))
}

// remoteStudy mirrors the studyJSON fields the text summary needs.
type remoteStudy struct {
	StaticSites int     `json:"static_sites"`
	LaneSites   int     `json:"lane_sites"`
	MeanDyn     float64 `json:"mean_golden_dyn_instrs"`
	SDC         int     `json:"sdc"`
	Benign      int     `json:"benign"`
	Crash       int     `json:"crash"`
	Hang        int     `json:"hang"`
	Detected    int     `json:"detected"`
	SDCDetected int     `json:"sdc_detected"`
	MeanSDC     float64 `json:"mean_sdc_rate"`
	MoE         float64 `json:"margin_of_error_95"`
	NearNormal  bool    `json:"near_normal"`
	Experiments int     `json:"experiments_per_campaign"`
	Campaigns   int     `json:"campaigns"`
}

func printRemoteResult(st *server.Status, jsonOut bool) error {
	switch st.State {
	case server.StateCancelled:
		return fmt.Errorf("job %s was cancelled after %d/%d experiments",
			st.ID, st.Done, st.Total)
	case server.StateFailed:
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	if jsonOut {
		var indented bytes.Buffer
		if err := json.Indent(&indented, st.Result, "", "  "); err != nil {
			return err
		}
		fmt.Println(indented.String())
		return nil
	}
	var sr remoteStudy
	if err := json.Unmarshal(st.Result, &sr); err != nil {
		return fmt.Errorf("job %s: bad result payload: %w", st.ID, err)
	}
	total := float64(sr.SDC + sr.Benign + sr.Crash)
	pct := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / total
	}
	fmt.Printf("job %s: done (%d campaigns x %d experiments)\n",
		st.ID, sr.Campaigns, sr.Experiments)
	fmt.Printf("static sites: %d (%d lane sites)\n", sr.StaticSites, sr.LaneSites)
	fmt.Printf("mean golden dynamic instructions: %.0f\n", sr.MeanDyn)
	fmt.Printf("SDC    %6.2f%%  (±%.2f%% at 95%%, near-normal=%v)\n",
		100*sr.MeanSDC, 100*sr.MoE, sr.NearNormal)
	fmt.Printf("Benign %6.2f%%\n", pct(sr.Benign))
	fmt.Printf("Crash  %6.2f%%  (%d hangs)\n", pct(sr.Crash), sr.Hang)
	if sr.Detected > 0 && sr.SDC > 0 {
		fmt.Printf("detector fired in %d experiments; SDC detection rate %.2f%%\n",
			sr.Detected, 100*float64(sr.SDCDetected)/float64(sr.SDC))
	}
	return nil
}
