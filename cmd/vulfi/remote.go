package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"vulfi/internal/obs"
	"vulfi/internal/server"
)

// runRemote submits the spec to a vulfid daemon, tails the job's SSE
// event stream until it reaches a terminal state, and prints the final
// result. When ctx is cancelled (Ctrl-C) the job is cancelled on the
// daemon before returning.
//
// With timelineOut set the client opens its own root span, propagates
// it to the daemon as a W3C traceparent, and — once the job finishes —
// merges the daemon's timeline under that root span into one
// Perfetto-loadable trace: the client lane shows the whole
// submit-to-result window, the server lanes the per-worker experiment
// spans inside it.
func runRemote(ctx context.Context, addr string, spec server.Spec,
	jsonOut, progress bool, timelineOut string) error {

	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	var clientSpan string
	clientStart := time.Now()
	if timelineOut != "" {
		// Deterministic client identity: same spec, same trace — matching
		// the campaign layer's schedule-derived span IDs.
		tid := obs.DeriveTraceID(fmt.Sprintf("vulfi-remote %s/%s/%s seed=%d",
			spec.Benchmark, spec.ISA, spec.Category, spec.Seed))
		clientSpan = obs.DeriveSpanID(tid, "vulfi-remote", spec.Seed)
		spec.TraceParent = obs.FormatTraceparent(tid, clientSpan)
	}

	st, err := submitJob(ctx, base, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted job %s (%d experiments) to %s\n",
		st.ID, st.Total, base)

	// Cancel the remote job if our context dies while tailing.
	defer func() {
		if ctx.Err() == nil {
			return
		}
		req, err := http.NewRequest(http.MethodDelete,
			base+"/v1/jobs/"+st.ID, nil)
		if err == nil {
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
				fmt.Fprintf(os.Stderr, "cancelled job %s\n", st.ID)
			}
		}
	}()

	final, err := tailJob(ctx, base, st.ID, progress)
	if err != nil {
		return err
	}
	if timelineOut != "" && final.State == server.StateDone {
		if err := fetchMergedTimeline(ctx, base, st.ID, clientSpan,
			clientStart, timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "timeline: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "merged trace written to %s (load in Perfetto), spans to %s.jsonl\n",
				timelineOut, timelineOut)
		}
	}
	return printRemoteResult(final, jsonOut)
}

// fetchMergedTimeline pulls the finished job's timeline from the daemon
// and nests it under the client's root span — the submit-to-result
// window measured on this side of the HTTP boundary.
func fetchMergedTimeline(ctx context.Context, base, id, clientSpan string,
	clientStart time.Time, path string) error {

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/jobs/"+id+"/timeline", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var body struct {
		Timeline *obs.Timeline `json:"timeline"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return err
	}
	if body.Timeline == nil {
		return fmt.Errorf("job %s has no timeline in its result", id)
	}
	client := obs.Span{
		Name: "vulfi-remote", ID: clientSpan,
		DurNS: time.Since(clientStart).Nanoseconds(),
		Attrs: map[string]string{"job": id, "daemon": base},
	}
	return writeTimelineFiles(path, obs.MergeRemote(client, clientStart, body.Timeline))
}

func submitJob(ctx context.Context, base string, spec server.Spec) (*server.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure: honor Retry-After and resubmit.
			delay := 5 * time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if d, err := time.ParseDuration(ra + "s"); err == nil {
					delay = d
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "queue full, retrying in %s\n", delay)
			select {
			case <-time.After(delay):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(raw))
		}
		var st server.Status
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, fmt.Errorf("submit: bad response: %w", err)
		}
		return &st, nil
	}
}

// tailJob follows the job's SSE stream until a terminal state event,
// reconnecting on dropped connections (the daemon may restart mid-job;
// the journal makes that invisible apart from the reconnect).
func tailJob(ctx context.Context, base, id string, progress bool) (*server.Status, error) {
	for {
		st, err := tailOnce(ctx, base, id, progress)
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		fmt.Fprintf(os.Stderr, "event stream dropped (%v), reconnecting\n", err)
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func tailOnce(ctx context.Context, base, id string, progress bool) (*server.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("events: %s: %s", resp.Status, bytes.TrimSpace(raw))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var eventType string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch eventType {
			case "experiment":
				if progress {
					var ev struct {
						Done    int    `json:"done"`
						Total   int    `json:"total"`
						Outcome string `json:"outcome"`
					}
					if json.Unmarshal([]byte(data), &ev) == nil {
						fmt.Fprintf(os.Stderr, "\r%d/%d experiments (last: %s)   ",
							ev.Done, ev.Total, ev.Outcome)
					}
				}
			case "state":
				var st server.Status
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return nil, fmt.Errorf("bad state event: %w", err)
				}
				switch st.State {
				case server.StateDone, server.StateFailed, server.StateCancelled:
					if progress {
						fmt.Fprintln(os.Stderr)
					}
					return &st, nil
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("event stream ended without a terminal state")
}

// remoteStudy mirrors the studyJSON fields the text summary needs.
type remoteStudy struct {
	StaticSites int     `json:"static_sites"`
	LaneSites   int     `json:"lane_sites"`
	MeanDyn     float64 `json:"mean_golden_dyn_instrs"`
	SDC         int     `json:"sdc"`
	Benign      int     `json:"benign"`
	Crash       int     `json:"crash"`
	Hang        int     `json:"hang"`
	Detected    int     `json:"detected"`
	SDCDetected int     `json:"sdc_detected"`
	MeanSDC     float64 `json:"mean_sdc_rate"`
	MoE         float64 `json:"margin_of_error_95"`
	NearNormal  bool    `json:"near_normal"`
	Experiments int     `json:"experiments_per_campaign"`
	Campaigns   int     `json:"campaigns"`
}

func printRemoteResult(st *server.Status, jsonOut bool) error {
	switch st.State {
	case server.StateCancelled:
		return fmt.Errorf("job %s was cancelled after %d/%d experiments",
			st.ID, st.Done, st.Total)
	case server.StateFailed:
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	if jsonOut {
		var indented bytes.Buffer
		if err := json.Indent(&indented, st.Result, "", "  "); err != nil {
			return err
		}
		fmt.Println(indented.String())
		return nil
	}
	var sr remoteStudy
	if err := json.Unmarshal(st.Result, &sr); err != nil {
		return fmt.Errorf("job %s: bad result payload: %w", st.ID, err)
	}
	total := float64(sr.SDC + sr.Benign + sr.Crash)
	pct := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / total
	}
	fmt.Printf("job %s: done (%d campaigns x %d experiments)\n",
		st.ID, sr.Campaigns, sr.Experiments)
	fmt.Printf("static sites: %d (%d lane sites)\n", sr.StaticSites, sr.LaneSites)
	fmt.Printf("mean golden dynamic instructions: %.0f\n", sr.MeanDyn)
	fmt.Printf("SDC    %6.2f%%  (±%.2f%% at 95%%, near-normal=%v)\n",
		100*sr.MeanSDC, 100*sr.MoE, sr.NearNormal)
	fmt.Printf("Benign %6.2f%%\n", pct(sr.Benign))
	fmt.Printf("Crash  %6.2f%%  (%d hangs)\n", pct(sr.Crash), sr.Hang)
	if sr.Detected > 0 && sr.SDC > 0 {
		fmt.Printf("detector fired in %d experiments; SDC detection rate %.2f%%\n",
			sr.Detected, 100*float64(sr.SDCDetected)/float64(sr.SDC))
	}
	return nil
}
