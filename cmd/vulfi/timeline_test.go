package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vulfi/internal/obs"
	"vulfi/internal/server"
)

// TestRemoteMergedTimeline drives the full remote tracing path the CLI
// exposes: runRemote against a real in-process daemon with -timeline
// set must leave ONE merged trace on disk whose client root span (lane
// "client") parents the daemon's study span, with the trace-event
// export loadable as JSON.
func TestRemoteMergedTimeline(t *testing.T) {
	s, err := server.New(server.Options{
		JournalDir: t.TempDir(),
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "trace.json")
	spec := server.Spec{
		Benchmark: "VectorCopy", ISA: "AVX", Category: "pure-data",
		Scale: "test", Experiments: 4, Campaigns: 2, Seed: 1,
		Timeline: true,
	}

	// Silence the CLI's stdout result dump for the test log.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	err = runRemote(context.Background(), ts.URL, spec, true, false, out, "")
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The JSONL sidecar carries the merged timeline's identity header.
	raw, err := os.ReadFile(out + ".jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var header struct {
		Kind    string `json:"kind"`
		TraceID string `json:"trace_id"`
		Root    string `json:"root"`
		Lanes   []string
	}
	first := raw
	if i := bytes.IndexByte(first, '\n'); i >= 0 {
		first = first[:i]
	}
	if err := json.Unmarshal(first, &header); err != nil {
		t.Fatalf("bad JSONL header: %v", err)
	}

	// The trace-event file parses, and its span set forms one tree: the
	// client root span exists and the study span is its child.
	tr, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string            `json:"ph"`
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &tf); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}

	var clientID string
	spans := map[string]string{} // id -> parent
	names := map[string]string{} // id -> name
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans[ev.Args["id"]] = ev.Args["parent"]
		names[ev.Args["id"]] = ev.Name
		if ev.Name == "vulfi-remote" {
			clientID = ev.Args["id"]
		}
	}
	if clientID == "" {
		t.Fatal("merged trace has no client root span")
	}
	if header.Root != clientID {
		t.Fatalf("timeline root %s is not the client span %s", header.Root, clientID)
	}
	study := ""
	for id, parent := range spans {
		if names[id] == "study" {
			study = id
			if parent != clientID {
				t.Fatalf("study span parented to %q, want client span %s",
					parent, clientID)
			}
		}
	}
	if study == "" {
		t.Fatal("merged trace has no server-side study span")
	}
	experiments := 0
	for id, parent := range spans {
		if names[id] == "experiment" {
			experiments++
			if parent != study {
				t.Fatalf("experiment %s parented to %q, want study %s",
					id, parent, study)
			}
		}
	}
	if want := spec.Total(); experiments != want {
		t.Fatalf("merged trace has %d experiment spans, want %d", experiments, want)
	}

	// Both sides agree on the trace identity (the traceparent the client
	// derived is what the server adopted).
	wantTrace := obs.DeriveTraceID(
		"vulfi-remote VectorCopy/AVX/pure-data seed=1")
	if header.TraceID != wantTrace {
		t.Fatalf("merged trace ID %s, want derived %s", header.TraceID, wantTrace)
	}
}
