// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -table1            # Table I
//	experiments -fig10             # Figure 10 instruction mix
//	experiments -fig11             # Figure 11 outcome rates
//	experiments -fig12             # Figure 12 detector study
//	experiments -ablations         # DESIGN.md ablations
//	experiments -all               # everything
//	experiments -all -full         # paper-scale counts (108,000 experiments)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/cliutil"
	"vulfi/internal/isa"
	"vulfi/internal/report"
	"vulfi/internal/server"
	"vulfi/internal/telemetry"
)

func main() {
	fs := flag.CommandLine
	var (
		table1    = flag.Bool("table1", false, "regenerate Table I")
		fig10     = flag.Bool("fig10", false, "regenerate Figure 10")
		fig11     = flag.Bool("fig11", false, "regenerate Figure 11")
		fig12     = flag.Bool("fig12", false, "regenerate Figure 12")
		ablations = flag.Bool("ablations", false, "run the design ablations")
		ext       = flag.Bool("extensions", false, "run the beyond-the-paper studies")
		all       = flag.Bool("all", false, "regenerate everything")
		full      = flag.Bool("full", false, "paper-scale experiment counts")
		benchList = flag.String("benchmarks", "", "comma-separated benchmark filter")

		seed    = cliutil.Seed(fs, 20160516)
		workers = cliutil.Workers(fs)
		inputs  = cliutil.Inputs(fs)
		backend = cliutil.Backend(fs)
		isaName = cliutil.ISA(fs, "") // empty = both targets
		large   = cliutil.Large(fs)
		tel     = cliutil.TelemetryFlags(fs)
		version = cliutil.Version(fs)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "experiments")
		return
	}

	opts := report.Defaults()
	if *full {
		opts = report.Full()
	}
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Inputs = *inputs
	be, err := server.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts.Backend = be
	if *large {
		opts.Scale = benchmarks.ScaleLarge
	}
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}
	if *isaName != "" {
		a := isa.ByName(strings.ToUpper(*isaName))
		if a == nil {
			fmt.Fprintf(os.Stderr, "unknown ISA %q\n", *isaName)
			os.Exit(2)
		}
		opts.ISAs = []*isa.ISA{a}
	}
	if *tel.Progress {
		opts.Progress = os.Stderr
	}
	ew, telStop, err := tel.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer telStop()
	opts.Events = ew

	if !(*table1 || *fig10 || *fig11 || *fig12 || *ablations || *ext || *all) {
		flag.Usage()
		os.Exit(2)
	}

	type section struct {
		on  bool
		fn  func() error
		tag string
	}
	sections := []section{
		{*all || *table1, func() error { return report.Table1(os.Stdout, opts) }, "table1"},
		{*all || *fig10, func() error { return report.Fig10(os.Stdout, opts) }, "fig10"},
		{*all || *fig11, func() error { return report.Fig11(os.Stdout, opts) }, "fig11"},
		{*all || *fig12, func() error { return report.Fig12(os.Stdout, opts) }, "fig12"},
		{*all || *ablations, func() error { return report.Ablations(os.Stdout, opts) }, "ablations"},
		{*all || *ext, func() error { return report.Extension(os.Stdout, opts) }, "extensions"},
	}
	expCounter := telemetry.Default().Counter("campaign.experiments")
	for _, s := range sections {
		if !s.on {
			continue
		}
		start, before := time.Now(), expCounter.Value()
		if err := s.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.tag, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if ran := expCounter.Value() - before; ran > 0 {
			fmt.Printf("\n[%s done in %v — %d experiments, %.1f exp/s]\n\n",
				s.tag, elapsed.Round(time.Millisecond), ran,
				float64(ran)/elapsed.Seconds())
		} else {
			fmt.Printf("\n[%s done in %v]\n\n", s.tag, elapsed.Round(time.Millisecond))
		}
	}
}
