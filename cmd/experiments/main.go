// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -table1            # Table I
//	experiments -fig10             # Figure 10 instruction mix
//	experiments -fig11             # Figure 11 outcome rates
//	experiments -fig12             # Figure 12 detector study
//	experiments -ablations         # DESIGN.md ablations
//	experiments -all               # everything
//	experiments -all -full         # paper-scale counts (108,000 experiments)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/isa"
	"vulfi/internal/report"
	"vulfi/internal/telemetry"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table I")
		fig10     = flag.Bool("fig10", false, "regenerate Figure 10")
		fig11     = flag.Bool("fig11", false, "regenerate Figure 11")
		fig12     = flag.Bool("fig12", false, "regenerate Figure 12")
		ablations = flag.Bool("ablations", false, "run the design ablations")
		ext       = flag.Bool("extensions", false, "run the beyond-the-paper studies")
		all       = flag.Bool("all", false, "regenerate everything")
		full      = flag.Bool("full", false, "paper-scale experiment counts")
		seed      = flag.Int64("seed", 20160516, "study seed")
		workers   = flag.Int("workers", 0, "experiment parallelism (0 = NumCPU)")
		benchList = flag.String("benchmarks", "", "comma-separated benchmark filter")
		isaName   = flag.String("isa", "", "restrict to one ISA (AVX or SSE)")
		large     = flag.Bool("large", false, "use large inputs")
		progress  = flag.Bool("progress", false, "render live per-cell progress on stderr")
		events    = flag.String("events", "", "write structured JSONL spans to this file")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	opts := report.Defaults()
	if *full {
		opts = report.Full()
	}
	opts.Seed = *seed
	opts.Workers = *workers
	if *large {
		opts.Scale = benchmarks.ScaleLarge
	}
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}
	if *isaName != "" {
		a := isa.ByName(strings.ToUpper(*isaName))
		if a == nil {
			fmt.Fprintf(os.Stderr, "unknown ISA %q\n", *isaName)
			os.Exit(2)
		}
		opts.ISAs = []*isa.ISA{a}
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ew := telemetry.NewEventWriter(f)
		defer func() {
			if err := ew.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
			}
		}()
		opts.Events = ew
	}
	if *httpAddr != "" {
		_, url, err := telemetry.Serve(*httpAddr, telemetry.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry on %s/metrics (also /debug/vars, /debug/pprof)\n", url)
	}

	if !(*table1 || *fig10 || *fig11 || *fig12 || *ablations || *ext || *all) {
		flag.Usage()
		os.Exit(2)
	}

	type section struct {
		on  bool
		fn  func() error
		tag string
	}
	sections := []section{
		{*all || *table1, func() error { return report.Table1(os.Stdout, opts) }, "table1"},
		{*all || *fig10, func() error { return report.Fig10(os.Stdout, opts) }, "fig10"},
		{*all || *fig11, func() error { return report.Fig11(os.Stdout, opts) }, "fig11"},
		{*all || *fig12, func() error { return report.Fig12(os.Stdout, opts) }, "fig12"},
		{*all || *ablations, func() error { return report.Ablations(os.Stdout, opts) }, "ablations"},
		{*all || *ext, func() error { return report.Extension(os.Stdout, opts) }, "extensions"},
	}
	expCounter := telemetry.Default().Counter("campaign.experiments")
	for _, s := range sections {
		if !s.on {
			continue
		}
		start, before := time.Now(), expCounter.Value()
		if err := s.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.tag, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if ran := expCounter.Value() - before; ran > 0 {
			fmt.Printf("\n[%s done in %v — %d experiments, %.1f exp/s]\n\n",
				s.tag, elapsed.Round(time.Millisecond), ran,
				float64(ran)/elapsed.Seconds())
		} else {
			fmt.Printf("\n[%s done in %v]\n\n", s.tag, elapsed.Round(time.Millisecond))
		}
	}
}
