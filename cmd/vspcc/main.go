// Command vspcc is the VSPC compiler driver: it compiles a .vspc source
// file (or a named built-in benchmark) to vector IR and prints the IR,
// the foreach CFG summary, or the fault-site census.
//
//	vspcc -isa AVX kernel.vspc            # print lowered IR
//	vspcc -benchmark Blackscholes -sites  # fault-site census
//	vspcc -benchmark Stencil -detectors   # IR with detector blocks
//	vspcc -benchmark VectorCopy -instrument control  # instrumented IR
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vulfi/internal/benchmarks"
	"vulfi/internal/cliutil"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/detect"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/lang"
	"vulfi/internal/passes"
)

func main() {
	var (
		benchName  = cliutil.Benchmark(flag.CommandLine, "") // empty = compile the file argument
		isaName    = cliutil.ISA(flag.CommandLine, "AVX")
		sites      = flag.Bool("sites", false, "print the fault-site census instead of IR")
		fnFilter   = flag.String("func", "", "restrict site enumeration to one function")
		detectors  = flag.Bool("detectors", false, "insert the foreach-invariant detector blocks")
		broadcast  = flag.Bool("broadcast-detector", false, "insert the uniform-broadcast checker")
		instrument = flag.String("instrument", "", "instrument the given category (pure-data, control, address)")
		cfg        = flag.Bool("cfg", false, "print the CFG block summary")
		dot        = flag.String("dot", "", "emit the named function's CFG as Graphviz DOT")
		format     = flag.Bool("fmt", false, "pretty-print the parsed source and exit")
		version    = cliutil.Version(flag.CommandLine)
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "vspcc")
		return
	}

	target := isa.ByName(strings.ToUpper(*isaName))
	if target == nil {
		fmt.Fprintf(os.Stderr, "unknown ISA %q\n", *isaName)
		os.Exit(2)
	}

	var src, name string
	switch {
	case *benchName != "":
		b := benchmarks.ByName(*benchName)
		if b == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchName)
			os.Exit(2)
		}
		src, name = b.Source, b.Name
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: vspcc [-benchmark NAME | file.vspc] [flags]")
		os.Exit(2)
	}

	if *format {
		parsed, err := lang.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(lang.Format(parsed))
		return
	}

	res, err := codegen.CompileSource(src, target, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pm := &passes.Manager{Verify: true}
	if *detectors {
		pm.Add(&detect.ForeachInvariantPass{})
	}
	if *broadcast {
		pm.Add(&detect.UniformBroadcastPass{})
	}
	if *instrument != "" {
		var cat passes.Category
		switch strings.ToLower(*instrument) {
		case "pure-data", "puredata", "data":
			cat = passes.PureData
		case "control", "ctrl":
			cat = passes.Control
		case "address", "addr":
			cat = passes.Address
		default:
			fmt.Fprintf(os.Stderr, "unknown category %q\n", *instrument)
			os.Exit(2)
		}
		pm.Add(&core.InstrumentPass{Category: cat})
	}
	if err := pm.Run(res.Module); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *dot != "":
		f := res.Module.Func(*dot)
		if f == nil {
			fmt.Fprintf(os.Stderr, "no function %q\n", *dot)
			os.Exit(1)
		}
		if err := passes.WriteDOT(os.Stdout, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *sites:
		var funcs []*ir.Func
		if *fnFilter != "" {
			f := res.Module.Func(*fnFilter)
			if f == nil || f.IsDecl {
				fmt.Fprintf(os.Stderr, "no function definition %q\n", *fnFilter)
				os.Exit(1)
			}
			funcs = []*ir.Func{f}
		}
		all := core.EnumerateSites(res.Module, funcs)
		fmt.Printf("%d instruction-level fault sites (gang size %d, %s)\n",
			len(all), res.VL, target.Name)
		for _, row := range core.Census(all) {
			fmt.Printf("  %-10s %4d sites (%4d scalar, %4d vector; %.1f%% vector)\n",
				row.Category, row.Total(), row.ScalarSites, row.VectorSites,
				100*row.VectorFraction())
		}
	case *cfg:
		for _, f := range res.Module.Funcs {
			if f.IsDecl {
				continue
			}
			fmt.Printf("@%s:\n", f.Nam)
			for _, b := range f.Blocks {
				var succ []string
				for _, s := range b.Succs() {
					succ = append(succ, s.Nam)
				}
				fmt.Printf("  %-40s %3d instrs -> %s\n",
					b.Nam, len(b.Instrs), strings.Join(succ, ", "))
			}
		}
	default:
		fmt.Print(res.Module)
	}
}
