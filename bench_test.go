package vulfi_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	vulfi "vulfi"
	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/detect"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
	"vulfi/internal/lang"
	"vulfi/internal/passes"
	"vulfi/internal/telemetry"
)

// Each benchmark below regenerates the data behind one table or figure of
// the paper; cmd/experiments prints the full formatted versions.

// BenchmarkTable1DynamicCounts drives one clean (uninstrumented)
// execution per iteration for every Table I benchmark × ISA and reports
// the dynamic instruction count — the Table I metric.
func BenchmarkTable1DynamicCounts(b *testing.B) {
	for _, bench := range benchmarks.Study() {
		for _, target := range isa.All {
			b.Run(bench.Name+"/"+target.Name, func(b *testing.B) {
				res, err := codegen.CompileSource(bench.Source, target, bench.Name)
				if err != nil {
					b.Fatal(err)
				}
				var dyn float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x, err := exec.NewInstance(res, interp.Options{})
					if err != nil {
						b.Fatal(err)
					}
					spec, err := bench.Setup(x, rand.New(rand.NewSource(int64(i))),
						benchmarks.ScaleDefault)
					if err != nil {
						b.Fatal(err)
					}
					if _, tr := x.CallExport(bench.Entry, spec.Args...); tr != nil {
						b.Fatal(tr)
					}
					dyn += float64(x.It.DynInstrs)
				}
				b.ReportMetric(dyn/float64(b.N), "dyn-instrs/op")
			})
		}
	}
}

// BenchmarkFig10Composition compiles each benchmark and computes the
// scalar/vector fault-site census — the Figure 10 data — reporting the
// vector fraction per category.
func BenchmarkFig10Composition(b *testing.B) {
	for _, target := range isa.All {
		b.Run(target.Name, func(b *testing.B) {
			var vecPct [3]float64
			for i := 0; i < b.N; i++ {
				var agg [3]struct{ vec, tot int }
				for _, bench := range benchmarks.Study() {
					prog, err := lang.Compile(bench.Source)
					if err != nil {
						b.Fatal(err)
					}
					res, err := codegen.Compile(prog, target, bench.Name)
					if err != nil {
						b.Fatal(err)
					}
					for ci, row := range core.Census(core.EnumerateSites(res.Module, nil)) {
						agg[ci].vec += row.VectorSites
						agg[ci].tot += row.Total()
					}
				}
				for ci := range agg {
					if agg[ci].tot > 0 {
						vecPct[ci] = 100 * float64(agg[ci].vec) / float64(agg[ci].tot)
					}
				}
			}
			b.ReportMetric(vecPct[0], "puredata-vec-%")
			b.ReportMetric(vecPct[1], "control-vec-%")
			b.ReportMetric(vecPct[2], "address-vec-%")
		})
	}
}

// BenchmarkFig11Campaign runs paired fault-injection experiments (one per
// iteration) for every benchmark × category on AVX and reports the
// observed SDC/crash percentages — the Figure 11 series.
func BenchmarkFig11Campaign(b *testing.B) {
	for _, bench := range benchmarks.Study() {
		for _, cat := range passes.AllCategories {
			b.Run(fmt.Sprintf("%s/%s", bench.Name, cat), func(b *testing.B) {
				p, err := campaign.Prepare(campaign.Config{
					Benchmark: bench, ISA: isa.AVX, Category: cat,
					Scale: benchmarks.ScaleTest, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				var sdc, crash int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := p.RunExperiment(context.Background(), int64(i))
					if err != nil {
						b.Fatal(err)
					}
					switch r.Outcome {
					case campaign.OutcomeSDC:
						sdc++
					case campaign.OutcomeCrash:
						crash++
					}
				}
				b.ReportMetric(100*float64(sdc)/float64(b.N), "SDC-%")
				b.ReportMetric(100*float64(crash)/float64(b.N), "crash-%")
			})
		}
	}
}

// BenchmarkFig12Detectors runs the §IV-E detector study: experiments on
// the micro-benchmarks with the foreach-invariant detectors inserted,
// reporting SDC and SDC-detection percentages.
func BenchmarkFig12Detectors(b *testing.B) {
	for _, bench := range benchmarks.Micro() {
		for _, cat := range passes.AllCategories {
			b.Run(fmt.Sprintf("%s/%s", bench.Name, cat), func(b *testing.B) {
				p, err := campaign.Prepare(campaign.Config{
					Benchmark: bench, ISA: isa.AVX, Category: cat,
					Scale: benchmarks.ScaleTest, Seed: 2, Detectors: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				var sdc, sdcDetected int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := p.RunExperiment(context.Background(), int64(i))
					if err != nil {
						b.Fatal(err)
					}
					if r.Outcome == campaign.OutcomeSDC {
						sdc++
						if r.Detected {
							sdcDetected++
						}
					}
				}
				b.ReportMetric(100*float64(sdc)/float64(b.N), "SDC-%")
				if sdc > 0 {
					b.ReportMetric(100*float64(sdcDetected)/float64(sdc), "SDC-detect-%")
				}
			})
		}
	}
}

// BenchmarkFig12Overhead measures the detector-block cost the paper's way
// (instrumented run with vs without the detector block): the wall time of
// this benchmark pair is the overhead comparison.
func BenchmarkFig12Overhead(b *testing.B) {
	for _, withDet := range []bool{false, true} {
		name := "base"
		if withDet {
			name = "with-detector"
		}
		b.Run(name, func(b *testing.B) {
			bench := benchmarks.VectorCopy
			res, err := codegen.CompileSource(bench.Source, isa.AVX, bench.Name)
			if err != nil {
				b.Fatal(err)
			}
			pm := &passes.Manager{}
			if withDet {
				pm.Add(&detect.ForeachInvariantPass{})
			}
			inst := &core.Instrumentation{}
			pm.Add(&core.InstrumentPass{Category: passes.Control, Out: inst})
			if err := pm.Run(res.Module); err != nil {
				b.Fatal(err)
			}
			var dyn float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, err := exec.NewInstance(res, interp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				core.AttachRuntime(x.It, &core.Plan{Mode: core.CountOnly})
				detect.AttachRuntime(x.It)
				spec, err := bench.Setup(x, rand.New(rand.NewSource(9)),
					benchmarks.ScaleDefault)
				if err != nil {
					b.Fatal(err)
				}
				if _, tr := x.CallExport(bench.Entry, spec.Args...); tr != nil {
					b.Fatal(tr)
				}
				dyn += float64(x.It.DynInstrs)
			}
			b.ReportMetric(dyn/float64(b.N), "dyn-instrs/op")
		})
	}
}

// BenchmarkAblationSiteGranularity compares the paper's per-lane site
// model against whole-register sites (DESIGN.md ablation a).
func BenchmarkAblationSiteGranularity(b *testing.B) {
	for _, whole := range []bool{false, true} {
		name := "per-lane"
		if whole {
			name = "whole-register"
		}
		b.Run(name, func(b *testing.B) {
			p, err := campaign.Prepare(campaign.Config{
				Benchmark: benchmarks.VectorCopy, ISA: isa.AVX,
				Category: passes.PureData, Scale: benchmarks.ScaleTest,
				Seed: 3, WholeRegisterSites: whole,
			})
			if err != nil {
				b.Fatal(err)
			}
			var sdc int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := p.RunExperiment(context.Background(), int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if r.Outcome == campaign.OutcomeSDC {
					sdc++
				}
			}
			b.ReportMetric(float64(len(p.Inst.LaneSites)), "lane-sites")
			b.ReportMetric(100*float64(sdc)/float64(b.N), "SDC-%")
		})
	}
}

// BenchmarkAblationMaskAccounting compares mask-aware dynamic-site
// accounting against a mask-oblivious injector (DESIGN.md ablation b):
// the oblivious variant sees more dynamic sites at array tails.
func BenchmarkAblationMaskAccounting(b *testing.B) {
	for _, obl := range []bool{false, true} {
		name := "mask-aware"
		if obl {
			name = "mask-oblivious"
		}
		b.Run(name, func(b *testing.B) {
			p, err := campaign.Prepare(campaign.Config{
				Benchmark: benchmarks.VectorCopy, ISA: isa.AVX,
				Category: passes.PureData, Scale: benchmarks.ScaleTest,
				Seed: 4, MaskOblivious: obl,
			})
			if err != nil {
				b.Fatal(err)
			}
			var sites float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := p.RunExperiment(context.Background(), int64(i))
				if err != nil {
					b.Fatal(err)
				}
				sites += float64(r.DynSites)
			}
			b.ReportMetric(sites/float64(b.N), "dyn-sites/op")
		})
	}
}

// BenchmarkCompile measures the full VSPC pipeline (parse, check,
// vectorize, verify) on the largest benchmark source.
func BenchmarkCompile(b *testing.B) {
	src := benchmarks.ConjugateGradient.Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.CompileSource(src, isa.AVX, "cg"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrument measures the VULFI instrumentation rewrite itself.
func BenchmarkInstrument(b *testing.B) {
	prog, err := lang.Compile(benchmarks.ConjugateGradient.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := codegen.Compile(prog, isa.AVX, "cg")
		if err != nil {
			b.Fatal(err)
		}
		sites := core.EnumerateSites(res.Module, nil)
		if _, err := core.Instrument(res.Module, sites); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures raw interpreter throughput on the
// stencil kernel (instructions per second appear as dyn-instrs / ns).
func BenchmarkInterpreter(b *testing.B) {
	bench := benchmarks.Stencil
	res, err := codegen.CompileSource(bench.Source, isa.AVX, bench.Name)
	if err != nil {
		b.Fatal(err)
	}
	var dyn float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := exec.NewInstance(res, interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		spec, err := bench.Setup(x, rand.New(rand.NewSource(1)), benchmarks.ScaleDefault)
		if err != nil {
			b.Fatal(err)
		}
		if _, tr := x.CallExport(bench.Entry, spec.Args...); tr != nil {
			b.Fatal(tr)
		}
		dyn += float64(x.It.DynInstrs)
	}
	b.ReportMetric(dyn/float64(b.N), "dyn-instrs/op")
}

// BenchmarkInterpreterTelemetry pairs the stencil kernel with telemetry
// detached vs attached-but-idle. Counters flush as deltas at top-level
// call return, so the attached run's hot loop pays only a nil check —
// compare ns/op between the two sub-benchmarks to see the idle cost.
func BenchmarkInterpreterTelemetry(b *testing.B) {
	bench := benchmarks.Stencil
	res, err := codegen.CompileSource(bench.Source, isa.AVX, bench.Name)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, m *interp.Metrics) {
		var dyn float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, err := exec.NewInstance(res, interp.Options{})
			if err != nil {
				b.Fatal(err)
			}
			x.It.SetMetrics(m)
			spec, err := bench.Setup(x, rand.New(rand.NewSource(1)), benchmarks.ScaleDefault)
			if err != nil {
				b.Fatal(err)
			}
			if _, tr := x.CallExport(bench.Entry, spec.Args...); tr != nil {
				b.Fatal(tr)
			}
			dyn += float64(x.It.DynInstrs)
		}
		b.ReportMetric(dyn/float64(b.N), "dyn-instrs/op")
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled-idle", func(b *testing.B) {
		run(b, interp.NewMetrics(telemetry.NewRegistry()))
	})
}

// BenchmarkFacadeStudy exercises the public facade end to end (guards
// the exported API against drift).
func BenchmarkFacadeStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := vulfi.RunStudy(vulfi.Config{
			Benchmark:   vulfi.BenchmarkByName("VectorCopy"),
			ISA:         vulfi.AVX,
			Category:    vulfi.Control,
			Scale:       benchmarks.ScaleTest,
			Experiments: 5,
			Campaigns:   1,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if sr.Totals.Experiments != 5 {
			b.Fatal("unexpected experiment count")
		}
	}
}
