// Package vulfi is a Go reproduction of "Towards Resiliency Evaluation
// of Vector Programs" (Sharma, Gopalakrishnan, Krishnamoorthy; DPDNS/IPDPSW
// 2016): VULFI, a vector-oriented LLVM-level fault injector, together with
// every substrate the paper's study needs — an LLVM-like vector IR, an
// architectural interpreter, AVX/SSE ISA models, an ISPC-like SPMD
// compiler (VSPC), compilation-aware error-detector synthesis, the nine
// evaluation benchmarks, and the statistical campaign methodology.
//
// This package is the public facade: it re-exports the types and entry
// points a downstream user needs for the common workflows.
//
// Compile a kernel and study it:
//
//	res, _ := vulfi.CompileSource(src, vulfi.AVX, "demo")
//	sites := vulfi.EnumerateSites(res.Module, nil)
//	inst, _ := vulfi.Instrument(res.Module, sites)
//
// Run a full statistical campaign on a built-in benchmark:
//
//	study, _ := vulfi.NewStudy(
//		vulfi.WithBenchmarkName("Blackscholes"),
//		vulfi.WithISA(vulfi.AVX),
//		vulfi.WithCategory(vulfi.Control),
//		vulfi.WithInputs(8), // pool 8 inputs; golden runs are memoized
//	)
//	result, _ := study.Run(context.Background())
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory and the paper-experiment index.
package vulfi

import (
	"context"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/detect"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/lang"
	"vulfi/internal/passes"
)

// Compilation.
type (
	// Module is the LLVM-like IR translation unit.
	Module = ir.Module
	// CompileResult is a compiled VSPC module plus its metadata.
	CompileResult = codegen.Result
	// Program is a checked VSPC compilation unit.
	Program = lang.Program
	// ISA describes a target vector instruction set.
	ISA = isa.ISA
)

// Targets.
var (
	// AVX is the 256-bit target (gang of 8 32-bit lanes).
	AVX = isa.AVX
	// SSE is the 128-bit target (gang of 4 32-bit lanes).
	SSE = isa.SSE
)

// CompileSource parses, checks and compiles VSPC source for a target ISA.
func CompileSource(src string, target *ISA, name string) (*CompileResult, error) {
	return codegen.CompileSource(src, target, name)
}

// ParseAndCheck front-ends VSPC source without generating code.
func ParseAndCheck(src string) (*Program, error) { return lang.Compile(src) }

// Fault injection (VULFI proper).
type (
	// Site is one instruction-level fault-injection target.
	Site = core.Site
	// Instrumentation is the lane-site table of an instrumented module.
	Instrumentation = core.Instrumentation
	// Plan is the per-execution single-bit-flip fault plan.
	Plan = core.Plan
	// Category is a fault-site category (pure-data / control / address).
	Category = passes.Category
)

// Fault-site categories (paper §II-C, Figure 2).
const (
	PureData = passes.PureData
	Control  = passes.Control
	Address  = passes.Address
)

// Plan modes.
const (
	CountOnly  = core.CountOnly
	InjectOnce = core.InjectOnce
)

// EnumerateSites builds the instruction-level fault-site list of a
// module (all definitions when funcs is nil).
func EnumerateSites(m *Module, funcs []*ir.Func) []*Site {
	return core.EnumerateSites(m, funcs)
}

// SelectSites filters sites by category.
func SelectSites(sites []*Site, c Category) []*Site {
	return core.SelectSites(sites, c)
}

// Instrument rewrites the module so every lane of every selected site
// flows through the injectFault* runtime API (the Figure 4/5 workflow).
func Instrument(m *Module, sites []*Site) (*Instrumentation, error) {
	return core.Instrument(m, sites)
}

// Execution.
type (
	// Instance is an executable instantiation of a compiled module.
	Instance = exec.Instance
	// Options configure the interpreter (budgets, memory limits).
	Options = interp.Options
	// Value is a runtime value (bit-pattern backed lanes).
	Value = interp.Value
	// Trap is a simulated hardware/OS trap.
	Trap = interp.Trap
)

// NewInstance creates an interpreter for a compiled module with the ISA
// intrinsics bound.
func NewInstance(res *CompileResult, opts Options) (*Instance, error) {
	return exec.NewInstance(res, opts)
}

// Argument constructors for CallExport.
var (
	// I32Arg builds a scalar i32 argument.
	I32Arg = exec.I32Arg
	// F32Arg builds a scalar float argument.
	F32Arg = exec.F32Arg
	// PtrArgF32 builds a float* argument.
	PtrArgF32 = exec.PtrArgF32
	// PtrArgI32 builds an int* argument.
	PtrArgI32 = exec.PtrArgI32
)

// AttachInjection registers the fault-injection runtime bound to plan.
func AttachInjection(x *Instance, plan *Plan) { core.AttachRuntime(x.It, plan) }

// AttachDetectors registers the error-detector runtime API.
func AttachDetectors(x *Instance) { detect.AttachRuntime(x.It) }

// Detector synthesis.
type (
	// ForeachInvariantPass inserts the §III-A foreach-invariant checks.
	ForeachInvariantPass = detect.ForeachInvariantPass
	// UniformBroadcastPass inserts the §III-B lane-equality checks.
	UniformBroadcastPass = detect.UniformBroadcastPass
	// MaskMonotonicityPass inserts the mask-loop monotonicity checks
	// (an extension in the paper's anticipated possibility-space).
	MaskMonotonicityPass = detect.MaskMonotonicityPass
	// PassManager runs module pass pipelines.
	PassManager = passes.Manager
)

// Campaigns.
type (
	// Config describes one study cell (benchmark × ISA × category).
	Config = campaign.Config
	// StudyResult is a statistically qualified study.
	StudyResult = campaign.StudyResult
	// ExperimentResult is one golden/faulty pair outcome.
	ExperimentResult = campaign.ExperimentResult
	// Outcome classifies an experiment (SDC / Benign / Crash).
	Outcome = campaign.Outcome
	// Benchmark is one evaluation workload.
	Benchmark = benchmarks.Benchmark
	// Scale is an input-size regime (test / default / large).
	Scale = benchmarks.Scale
)

// Input-size regimes.
const (
	ScaleTest    = benchmarks.ScaleTest
	ScaleDefault = benchmarks.ScaleDefault
	ScaleLarge   = benchmarks.ScaleLarge
)

// Outcomes.
const (
	Benign = campaign.OutcomeBenign
	SDC    = campaign.OutcomeSDC
	Crash  = campaign.OutcomeCrash
)

// RunStudy prepares a study cell and runs its campaigns in parallel.
//
// Deprecated: build studies with NewStudy and the With* options, which
// validate the configuration before any compilation. RunStudy remains a
// thin shim over the same engine.
func RunStudy(cfg Config) (*StudyResult, error) {
	return campaign.RunStudy(context.Background(), cfg)
}

// RunStudyContext is RunStudy under a context: cancelling ctx stops the
// study cooperatively between experiments.
//
// Deprecated: use NewStudy(...) followed by Study.Run(ctx).
func RunStudyContext(ctx context.Context, cfg Config) (*StudyResult, error) {
	return campaign.RunStudy(ctx, cfg)
}

// PrepareStudy compiles+instruments a cell for manual experiment control.
//
// Deprecated: use NewStudy(...) followed by Study.Prepare.
func PrepareStudy(cfg Config) (*campaign.Prepared, error) {
	return campaign.Prepare(cfg)
}

// Benchmarks returns the paper's Table I benchmarks.
func Benchmarks() []*Benchmark { return benchmarks.Study() }

// MicroBenchmarks returns the §IV-E micro-benchmarks.
func MicroBenchmarks() []*Benchmark { return benchmarks.Micro() }

// BenchmarkByName returns a benchmark by name, or nil.
func BenchmarkByName(name string) *Benchmark { return benchmarks.ByName(name) }
