package vulfi

import (
	"context"
	"fmt"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
)

// Study is a validated, ready-to-run study cell built by NewStudy. The
// configuration is frozen at construction: Run can be called multiple
// times (and concurrently) and each call executes the same
// deterministic schedule.
type Study struct {
	cfg campaign.Config
}

// StudyOption configures one aspect of a study. Options are applied in
// order; the last write to a field wins.
type StudyOption func(*campaign.Config) error

// NewStudy builds a study from functional options and validates the
// result through campaign.Config.Validate — the same gate the CLIs and
// the vulfid service use — so an invalid combination fails here, before
// any compilation:
//
//	study, err := vulfi.NewStudy(
//		vulfi.WithBenchmarkName("Blackscholes"),
//		vulfi.WithISA(vulfi.AVX),
//		vulfi.WithCategory(vulfi.Control),
//		vulfi.WithInputs(8),
//	)
//	sr, err := study.Run(context.Background())
func NewStudy(opts ...StudyOption) (*Study, error) {
	var cfg campaign.Config
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Study{cfg: cfg}, nil
}

// Config returns a copy of the study's validated configuration.
func (s *Study) Config() Config { return s.cfg }

// Run executes the study's campaigns on a worker pool; cancelling ctx
// stops it cooperatively between experiments.
func (s *Study) Run(ctx context.Context) (*StudyResult, error) {
	return campaign.RunStudy(ctx, s.cfg)
}

// Prepare compiles and instruments the cell for manual experiment
// control (single experiments, custom schedules).
func (s *Study) Prepare() (*campaign.Prepared, error) {
	return campaign.Prepare(s.cfg)
}

// WithBenchmark selects the workload to study.
func WithBenchmark(b *Benchmark) StudyOption {
	return func(c *campaign.Config) error {
		if b == nil {
			return fmt.Errorf("vulfi: WithBenchmark(nil)")
		}
		c.Benchmark = b
		return nil
	}
}

// WithBenchmarkName selects the workload by its Table I name.
func WithBenchmarkName(name string) StudyOption {
	return func(c *campaign.Config) error {
		b := benchmarks.ByName(name)
		if b == nil {
			return fmt.Errorf("vulfi: unknown benchmark %q", name)
		}
		c.Benchmark = b
		return nil
	}
}

// WithISA selects the target vector ISA (vulfi.AVX or vulfi.SSE).
func WithISA(target *ISA) StudyOption {
	return func(c *campaign.Config) error {
		if target == nil {
			return fmt.Errorf("vulfi: WithISA(nil)")
		}
		c.ISA = target
		return nil
	}
}

// WithISAName selects the target ISA by name ("AVX", "SSE").
func WithISAName(name string) StudyOption {
	return func(c *campaign.Config) error {
		target := isa.ByName(name)
		if target == nil {
			return fmt.Errorf("vulfi: unknown ISA %q (AVX, SSE)", name)
		}
		c.ISA = target
		return nil
	}
}

// WithCategory selects the fault-site category (§II-C).
func WithCategory(cat Category) StudyOption {
	return func(c *campaign.Config) error { c.Category = cat; return nil }
}

// WithScale selects the input-size regime.
func WithScale(s Scale) StudyOption {
	return func(c *campaign.Config) error { c.Scale = s; return nil }
}

// WithExperiments sets the experiments per campaign (paper: 100).
func WithExperiments(n int) StudyOption {
	return func(c *campaign.Config) error { c.Experiments = n; return nil }
}

// WithCampaigns sets the campaign count (paper: 20).
func WithCampaigns(n int) StudyOption {
	return func(c *campaign.Config) error { c.Campaigns = n; return nil }
}

// WithSeed makes the whole study deterministic under one seed.
func WithSeed(seed int64) StudyOption {
	return func(c *campaign.Config) error { c.Seed = seed; return nil }
}

// WithWorkers bounds experiment parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) StudyOption {
	return func(c *campaign.Config) error { c.Workers = n; return nil }
}

// WithInputs sets the input-pool size K: experiment i draws its input
// from a pool of K seeds (i mod K), enabling golden-run memoization.
// K = 1 is the paper-faithful fixed-input mode; 0 (the default) draws a
// fresh input per experiment and disables the cache.
func WithInputs(k int) StudyOption {
	return func(c *campaign.Config) error { c.Inputs = k; return nil }
}

// WithDetectors inserts the §III foreach-invariant detectors.
func WithDetectors() StudyOption {
	return func(c *campaign.Config) error { c.Detectors = true; return nil }
}

// WithDetectorEveryIteration moves the foreach check into the loop
// latch (ablation; the paper places it at the exit).
func WithDetectorEveryIteration() StudyOption {
	return func(c *campaign.Config) error { c.DetectorEveryIteration = true; return nil }
}

// WithBroadcastDetector additionally inserts the §III-B checker.
func WithBroadcastDetector() StudyOption {
	return func(c *campaign.Config) error { c.BroadcastDetector = true; return nil }
}

// WithMaskLoopDetector additionally inserts the mask-monotonicity
// checker on varying-while loops.
func WithMaskLoopDetector() StudyOption {
	return func(c *campaign.Config) error { c.MaskLoopDetector = true; return nil }
}

// WithWholeRegisterSites treats a vector L-value as one fault site
// instead of per-lane sites (ablation).
func WithWholeRegisterSites() StudyOption {
	return func(c *campaign.Config) error { c.WholeRegisterSites = true; return nil }
}

// WithMaskOblivious counts masked-off lanes as live fault sites
// (ablation).
func WithMaskOblivious() StudyOption {
	return func(c *campaign.Config) error { c.MaskOblivious = true; return nil }
}

// WithTrace enables golden-vs-faulty divergence tracing (bypasses the
// golden-run cache). cap bounds each trace ring in entries (0 = the
// trace package default).
func WithTrace(cap int) StudyOption {
	return func(c *campaign.Config) error {
		c.Trace = true
		c.TraceCap = cap
		return nil
	}
}

// WithAtlas attributes every outcome to its static fault site: the
// study result carries a per-site tally table (StudyResult.Sites) with
// activation counts and outcome splits, ready for atlas.New.
func WithAtlas() StudyOption {
	return func(c *campaign.Config) error { c.Atlas = true; return nil }
}

// WithBackend selects the execution backend: "tree" (or "") is the
// reference tree-walking interpreter, "vm" compiles the prepared cell
// to the internal/vm bytecode form. The backends are observably
// equivalent — identical outcomes, counts, traps and study JSON — so
// the choice only affects throughput. Validation happens in NewStudy.
func WithBackend(name string) StudyOption {
	return func(c *campaign.Config) error { c.Backend = name; return nil }
}

// WithProfile enables the execution profiler: the study result carries
// a hot-path profile (hot opcodes, opcode pairs, hot sites, phase
// breakdown, exp/s timeline). Profiling timestamps every interpreted
// instruction, so profiled wall times are not comparable to unprofiled
// runs.
func WithProfile() StudyOption {
	return func(c *campaign.Config) error { c.Profile = true; return nil }
}

// WithTimeline enables hierarchical span tracing: the study result
// carries an obs.Timeline (study → experiment → golden/faulty/compare
// spans, one lane per worker) exportable as Chrome trace-event JSON.
func WithTimeline() StudyOption {
	return func(c *campaign.Config) error { c.Timeline = true; return nil }
}

// WithTraceParent nests the study's timeline under an existing W3C
// trace-context span: tp is a traceparent header value
// ("00-<32hex>-<16hex>-01") whose trace ID the study adopts and whose
// span ID parents the study's root span. Malformed values are rejected
// by NewStudy's validation.
func WithTraceParent(tp string) StudyOption {
	return func(c *campaign.Config) error { c.TraceParent = tp; return nil }
}

// WithShardRange restricts execution to experiment indices in the
// half-open range [start, end) of the deterministic schedule — one
// shard of the study. Out-of-range indices neither execute nor
// aggregate, so the shard's result covers only its range; a
// coordinator merges shards by replaying their checkpointed triples
// through the Completed map of an unsharded configuration, which
// reproduces the single-node aggregation exactly. end must be positive
// and within the schedule; NewStudy validates the range.
func WithShardRange(start, end int) StudyOption {
	return func(c *campaign.Config) error {
		c.ShardStart, c.ShardEnd = start, end
		return nil
	}
}

// WithConfig applies fn to the underlying configuration — the escape
// hatch for fields without a dedicated option (telemetry sinks,
// checkpoint hooks, replay maps).
func WithConfig(fn func(*Config)) StudyOption {
	return func(c *campaign.Config) error {
		if fn != nil {
			fn(c)
		}
		return nil
	}
}
