// Package vm is the compiled execution backend: it lowers verified SSA
// functions to a flat, pre-resolved bytecode form — operand slots and
// branch targets resolved at compile time, phi nodes eliminated into
// parallel moves on edges, and fused superinstructions for the hot
// digram patterns surfaced by the execution profiler (lane address
// computation + load/store, scalar mask test + branch) — and executes
// that form as a dense dispatch loop over recycled register frames.
//
// The backend is attached to an interpreter through the interp.Engine
// hook and executes against the interpreter's own observable state, so
// the full tree-walker contract is preserved exactly: identical
// outcomes, identical DynInstrs/DynVector accounting (phis and
// terminators included), the identical budget-check schedule, identical
// trap kinds/messages/provenance, and identical Recorder, Profiler and
// Tracer event streams. Injection semantics are inherited for free: the
// instrumentation chain calls the injectFault* externs through the
// shared call protocol, so LaneSiteID attribution, dynamic site
// counting and bit flips behave byte-identically. A function the
// compiler cannot lower is simply declined at call time and tree-walked
// instead.
//
// The speedup comes from dispatch, not semantics: dense register frames
// replace the tree-walker's per-frame value map, operands are fetched
// by precomputed slot index instead of interface type switches, branch
// targets are program-counter jumps, and all arithmetic routes through
// the interp package's exported operation kernels so the two backends
// cannot drift bit-wise.
package vm

import (
	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// Program is an immutable compiled module: one bytecode body per
// lowerable defined function. A Program is safe for concurrent use by
// any number of Machines (campaign cells compile once and share the
// program across their worker instances).
type Program struct {
	fns map[*ir.Func]*fnCode

	// declIx assigns each declaration callee a dense index, so a Machine
	// can cache resolved extern implementations in a flat slice instead
	// of re-resolving through the interpreter's maps on every call.
	declIx map[*ir.Func]int32

	// fused counts emitted superinstructions per kind (compile-time
	// statistics, surfaced for tests and reporting).
	fused map[string]int
}

// Compile lowers every defined function of mod that the backend
// supports. Functions it cannot lower (malformed blocks that only the
// tree-walker's runtime traps can describe) are skipped and fall back
// to tree-walking at call time, so Compile never fails.
func Compile(mod *ir.Module) *Program {
	p := &Program{
		fns:    map[*ir.Func]*fnCode{},
		declIx: map[*ir.Func]int32{},
		fused:  map[string]int{},
	}
	for _, f := range mod.Funcs {
		if f.IsDecl {
			continue
		}
		if code, ok := compileFunc(f, p.fused, p.declIx); ok {
			p.fns[f] = code
		}
	}
	return p
}

// Compiled reports whether f was lowered to bytecode.
func (p *Program) Compiled(f *ir.Func) bool { return p.fns[f] != nil }

// NumCompiled returns the number of lowered functions.
func (p *Program) NumCompiled() int { return len(p.fns) }

// Fused returns the number of fused superinstructions emitted for the
// named pattern ("gep+load", "gep+store", "cmp+br").
func (p *Program) Fused(pattern string) int { return p.fused[pattern] }

// Machine executes one Program against one interpreter instance. It
// implements interp.Engine and owns the register-frame recycling pools,
// so a Machine must not be shared between concurrently running
// interpreters — attach one Machine per instance (the Program behind it
// is shared freely).
type Machine struct {
	prog  *Program
	regs  [][]interp.Value
	argvs [][]interp.Value
	arena bitsArena

	// ext caches resolved extern implementations by the program's dense
	// declaration index, valid for one interpreter registration epoch.
	ext      []interp.ExternFn
	extEpoch uint64
}

// externFor returns the cached extern implementation for the dense decl
// index ix, resolving through it on a miss and invalidating the whole
// cache when the interpreter's registration epoch moved. Returns nil
// for unresolvable callees (the caller falls back to it.Call, whose
// trap carries the authoritative diagnostic).
func (m *Machine) externFor(it *interp.Interp, ix int32, f *ir.Func) interp.ExternFn {
	if ep := it.ExternEpoch(); ep != m.extEpoch || m.ext == nil {
		if m.ext == nil {
			m.ext = make([]interp.ExternFn, len(m.prog.declIx))
		} else {
			clear(m.ext)
		}
		m.extEpoch = ep
	}
	if fn := m.ext[ix]; fn != nil {
		return fn
	}
	fn, ok := it.ResolveExtern(f)
	if !ok {
		return nil
	}
	m.ext[ix] = fn
	return fn
}

// arenaChunk is the bump-allocator chunk size in lane words (64 KiB).
const arenaChunk = 8192

// bitsArena bump-allocates lane-word storage for register-resident
// result values. A frame marks the arena on entry and releases to that
// mark on exit: every value the frame produced is dead by then (the
// return value is cloned out first, memory stores copy bytes, and the
// recorder/tracer — the only sinks that retain values — disable arena
// mode entirely), so the storage is recycled instead of feeding the
// garbage collector one allocation per executed instruction.
type bitsArena struct {
	cur []uint64
	off int
}

// arenaMark is a rewind point: the chunk and offset at frame entry.
type arenaMark struct {
	cur []uint64
	off int
}

func (a *bitsArena) alloc(n int) []uint64 {
	if a.off+n > len(a.cur) {
		sz := arenaChunk
		if n > sz {
			sz = n
		}
		a.cur, a.off = make([]uint64, sz), 0
	}
	s := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

func (a *bitsArena) mark() arenaMark { return arenaMark{a.cur, a.off} }

// release rewinds to mk. A nil mark chunk (the machine's very first
// frame) keeps the current chunk and just resets the offset.
func (a *bitsArena) release(mk arenaMark) {
	if mk.cur != nil {
		a.cur, a.off = mk.cur, mk.off
	} else {
		a.off = 0
	}
}

// NewMachine returns a Machine executing prog.
func NewMachine(prog *Program) *Machine { return &Machine{prog: prog} }

// Attach compiles-and-wires in one step for callers outside the
// campaign layer: it attaches a fresh Machine over prog to it.
func Attach(it *interp.Interp, prog *Program) { it.SetEngine(NewMachine(prog)) }

func (m *Machine) getRegs(n int) []interp.Value {
	if k := len(m.regs); k > 0 {
		buf := m.regs[k-1]
		m.regs[k-1] = nil
		m.regs = m.regs[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]interp.Value, n)
}

func (m *Machine) putRegs(buf []interp.Value) {
	for i := range buf {
		buf[i] = interp.Value{}
	}
	m.regs = append(m.regs, buf[:0])
}

func (m *Machine) getArgs(n int) []interp.Value {
	if k := len(m.argvs); k > 0 {
		buf := m.argvs[k-1]
		m.argvs[k-1] = nil
		m.argvs = m.argvs[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]interp.Value, n)
}

func (m *Machine) putArgs(buf []interp.Value) {
	for i := range buf {
		buf[i] = interp.Value{}
	}
	m.argvs = append(m.argvs, buf[:0])
}
