package vm

import (
	"fmt"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// getOperand resolves an operand ref against the frame: registers for
// non-negative refs, the constant pool for negative ones.
// sx sign-extends an index payload by its precomputed shift (see
// vinstr.idxSh); identical to ir.SignExtend at the operand's width.
func sx(bits uint64, sh uint8) int64 { return int64(bits<<sh) >> sh }

func getOperand(regs, consts []interp.Value, ref int32) interp.Value {
	if ref >= 0 {
		return regs[ref]
	}
	return consts[^ref]
}

// CallCompiled implements interp.Engine: it executes f's bytecode body
// against it's observable state, or declines (ok == false) when f was
// not lowered so the interpreter tree-walks it.
//
// The loop replays the tree-walker's exact observable schedule. Every
// instruction — phis and terminators included — bumps DynInstrs (and
// DynVector when vectoring) before it executes; non-phi instructions
// check the budget when DynInstrs crosses a 1024 boundary; phi blocks
// check it once, unconditionally, located at the first phi. Traps are
// stamped with provenance through LocateTrap at the same instruction
// the tree-walker would stamp.
//
// Values are immutable once published (the interp package's producers
// all build fresh results; bit flips clone before flipping), so the
// frame never clones constants or operands. When no recorder or tracer
// watches the value stream, result lane storage comes from the
// machine's frame arena — marked at entry, released at exit — and every
// operation routes through the interp package's Into kernels, which
// write all lanes of the recycled storage. The return value is cloned
// out of the arena before release; everything else the frame produced
// is dead at exit (memory stores copy bytes, externs consume arguments
// eagerly).
func (m *Machine) CallCompiled(it *interp.Interp, f *ir.Func, args []interp.Value) (interp.Value, *interp.Trap, bool) {
	code := m.prog.fns[f]
	if code == nil {
		return interp.Value{}, nil, false
	}

	regs := m.getRegs(code.nregs)
	defer m.putRegs(regs)
	copy(regs, args)
	for _, gs := range code.globals {
		// Global addresses are per-instance (Reset reallocates), so they
		// materialize at frame entry rather than living in the const pool.
		regs[gs.reg] = interp.PtrValue(gs.ty, it.GlobalAddr(gs.g))
	}

	consts := code.consts
	rec := it.Recorder()
	prof := it.Profiler()
	hasTracer := it.HasTracer()
	fprof, _ := prof.(interp.FusedProfiler)
	// fastFused: fused superinstructions may account in bulk only when
	// nobody observes the per-instruction schedule (no recorder, no
	// tracer) and the profiler — if any — understands fused groups.
	fastFused := rec == nil && !hasTracer && (prof == nil || fprof != nil)
	// useArena: the recorder and tracer are the only sinks that may
	// retain result values beyond the frame; without them, results live
	// at most until the frame returns and the arena recycles their
	// storage wholesale.
	useArena := rec == nil && !hasTracer
	// watched: at least one per-instruction retirement sink is attached;
	// hoisted so the hot loop skips the finish call entirely otherwise.
	watched := rec != nil || hasTracer
	ar := &m.arena
	if useArena {
		mk := ar.mark()
		defer ar.release(mk)
	}
	// alloc returns result storage for one value: recycled arena words
	// in arena mode (the Into kernels overwrite every lane), a fresh
	// zeroed heap value otherwise.
	alloc := func(ty *ir.Type, nw int32) interp.Value {
		if useArena {
			return interp.Value{Ty: ty, Bits: ar.alloc(int(nw))}
		}
		return interp.Zero(ty)
	}

	// step accounts one non-phi instruction and runs the tree-walker's
	// boundary budget check, returning a located trap when over budget.
	step := func(in *ir.Instr, vec bool) *interp.Trap {
		it.DynInstrs++
		if vec {
			it.DynVector++
		}
		if prof != nil {
			prof.Account(in)
		}
		if it.DynInstrs&1023 == 0 {
			if tr := it.CheckBudget(); tr != nil {
				return it.LocateTrap(tr, in)
			}
		}
		return nil
	}
	// finish emits the retirement events of a non-terminator instruction.
	finish := func(in *ir.Instr, val interp.Value) {
		if hasTracer {
			it.TraceInstr(in, val)
		}
		if rec != nil {
			rec.Retire(in, it.DynInstrs, val)
		}
	}
	// runMoves executes a sequenced edge bundle (the eliminated phis'
	// parallel copy for the taken edge).
	runMoves := func(moves []move) {
		for _, mv := range moves {
			if mv.src >= 0 {
				regs[mv.dst] = regs[mv.src]
			} else {
				regs[mv.dst] = consts[^mv.src]
			}
		}
	}

	pc := int32(0)
	for {
		v := &code.code[pc]
		switch v.op {

		case vPhiGroup:
			// The parallel copy already ran on the incoming edge; this
			// replays the tree-walker's per-phi accounting and retirement,
			// then its single unconditional budget check at the first phi.
			for i := range v.phis {
				p := &v.phis[i]
				it.DynInstrs++
				if p.vec {
					it.DynVector++
				}
				if prof != nil {
					prof.Account(p.in)
				}
				if rec != nil {
					rec.Retire(p.in, it.DynInstrs, regs[p.reg])
				}
			}
			if tr := it.CheckBudget(); tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.phis[0].in), true
			}
			pc++

		case vIntBin:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := alloc(v.ty, v.nw)
			if tr := interp.IntBinInto(r, v.irop,
				getOperand(regs, consts, v.a), getOperand(regs, consts, v.b)); tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vFloatBin:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := alloc(v.ty, v.nw)
			interp.FloatBinInto(r, v.irop,
				getOperand(regs, consts, v.a), getOperand(regs, consts, v.b))
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vCmp:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := alloc(v.ty, v.nw)
			interp.CompareInto(r, v.irop, v.pred,
				getOperand(regs, consts, v.a), getOperand(regs, consts, v.b))
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vSelect:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := alloc(v.ty, v.nw)
			interp.SelectInto(r, getOperand(regs, consts, v.a),
				getOperand(regs, consts, v.b), getOperand(regs, consts, v.c))
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vCast:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := alloc(v.ty, v.nw)
			interp.CastInto(r, v.irop, getOperand(regs, consts, v.a), v.ty)
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vAlloca:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			addr, tr := it.Mem.Alloc(v.elem)
			if tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			r := alloc(v.ty, 1)
			r.Bits[0] = addr
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vLoad:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := alloc(v.ty, v.nw)
			if tr := it.Mem.LoadInto(r, getOperand(regs, consts, v.a).Uint()); tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vStore:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			tr := it.Mem.Store(getOperand(regs, consts, v.a),
				getOperand(regs, consts, v.b).Uint())
			if tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			if watched {
				finish(v.in, interp.Value{})
			}
			pc++

		case vGEP:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			addr := getOperand(regs, consts, v.a).Uint() +
				uint64(sx(getOperand(regs, consts, v.b).Bits[0], v.idxSh))*v.elem
			r := alloc(v.ty, 1)
			r.Bits[0] = addr
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vExtract:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			vec := getOperand(regs, consts, v.a)
			idx := int(sx(getOperand(regs, consts, v.b).Bits[0], v.idxSh))
			if idx < 0 || idx >= len(vec.Bits) {
				tr := &interp.Trap{Kind: interp.TrapBadIndex,
					Msg: fmt.Sprintf("extractelement lane %d of %d", idx, len(vec.Bits))}
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			r := alloc(v.ty, 1)
			r.Bits[0] = vec.Bits[idx]
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vInsert:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			vec := getOperand(regs, consts, v.a)
			elem := getOperand(regs, consts, v.b)
			idx := int(sx(getOperand(regs, consts, v.c).Bits[0], v.idxSh))
			if idx < 0 || idx >= len(vec.Bits) {
				tr := &interp.Trap{Kind: interp.TrapBadIndex,
					Msg: fmt.Sprintf("insertelement lane %d of %d", idx, len(vec.Bits))}
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			r := alloc(v.ty, v.nw)
			copy(r.Bits, vec.Bits)
			r.Bits[idx] = elem.Bits[0]
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vShuffle:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			a := getOperand(regs, consts, v.a)
			b := getOperand(regs, consts, v.b)
			n := a.Lanes()
			r := alloc(v.ty, v.nw)
			for i, mi := range v.mask {
				switch {
				case mi < 0:
					r.Bits[i] = 0 // undef lane
				case mi < n:
					r.Bits[i] = a.Bits[mi]
				default:
					r.Bits[i] = b.Bits[mi-n]
				}
			}
			regs[v.dst] = r
			if watched {
				finish(v.in, r)
			}
			pc++

		case vCall:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			argv := m.getArgs(len(v.args))
			for i, ref := range v.args {
				// Shared, not cloned: callees never mutate argument
				// payloads (injection clones before flipping, externs map
				// lanes into fresh results).
				argv[i] = getOperand(regs, consts, ref)
			}
			var r interp.Value
			var tr *interp.Trap
			if v.c >= 0 {
				// Declaration callee: dispatch through the machine's dense
				// resolved-extern cache, skipping Call's map lookups. A nil
				// resolution falls back to Call for its diagnostic trap.
				if fn := m.externFor(it, v.c, v.callee); fn != nil {
					r, tr = fn(it, argv)
				} else {
					r, tr = it.Call(v.callee, argv)
				}
			} else {
				r, tr = it.Call(v.callee, argv)
			}
			m.putArgs(argv)
			if tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in), true
			}
			if v.dst >= 0 {
				regs[v.dst] = r
			}
			if watched {
				finish(v.in, r)
			}
			pc++

		case vBr:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			runMoves(v.m0)
			pc = v.t0

		case vCondBr:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			if getOperand(regs, consts, v.a).Bool() {
				runMoves(v.m0)
				pc = v.t0
			} else {
				runMoves(v.m1)
				pc = v.t1
			}

		case vRet:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			r := getOperand(regs, consts, v.a)
			if useArena && v.a >= 0 {
				// The only value that outlives the frame: clone it off the
				// arena before the deferred release recycles its storage.
				r = r.Clone()
			}
			return r, nil, true

		case vRetVoid:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			return interp.Value{}, nil, true

		case vUnreachable:
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			tr := &interp.Trap{Kind: interp.TrapHalt,
				Msg: fmt.Sprintf("reached unreachable in @%s", f.Nam)}
			return interp.Value{}, it.LocateTrap(tr, v.in), true

		case vGEPLoad:
			// Fused lane-address + load. The fast path accounts both
			// constituents in bulk; it is legal only away from a budget
			// boundary (neither increment may skip a boundary check) and
			// when no recorder/tracer watches the per-instruction stream.
			if fastFused && it.DynInstrs&1023 < 1022 {
				it.DynInstrs += 2
				if v.vec {
					it.DynVector++
				}
				if v.vec2 {
					it.DynVector++
				}
				if fprof != nil {
					fprof.AccountFused(v.group)
				}
				addr := getOperand(regs, consts, v.a).Uint() +
					uint64(sx(getOperand(regs, consts, v.b).Bits[0], v.idxSh))*v.elem
				r := alloc(v.ty, v.nw)
				if tr := it.Mem.LoadInto(r, addr); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in2), true
				}
				regs[v.dst] = r
				pc++
				break
			}
			// Full-fidelity path: replay both constituents exactly.
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			addr := getOperand(regs, consts, v.a).Uint() +
				uint64(sx(getOperand(regs, consts, v.b).Bits[0], v.idxSh))*v.elem
			if watched {
				pv := interp.PtrValue(v.in.Ty, addr)
				regs[v.c] = pv
				finish(v.in, pv)
			}
			if tr := step(v.in2, v.vec2); tr != nil {
				return interp.Value{}, tr, true
			}
			r := alloc(v.ty, v.nw)
			if tr := it.Mem.LoadInto(r, addr); tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in2), true
			}
			regs[v.dst] = r
			if watched {
				finish(v.in2, r)
			}
			pc++

		case vGEPStore:
			if fastFused && it.DynInstrs&1023 < 1022 {
				it.DynInstrs += 2
				if v.vec {
					it.DynVector++
				}
				if v.vec2 {
					it.DynVector++
				}
				if fprof != nil {
					fprof.AccountFused(v.group)
				}
				addr := getOperand(regs, consts, v.a).Uint() +
					uint64(sx(getOperand(regs, consts, v.b).Bits[0], v.idxSh))*v.elem
				if tr := it.Mem.Store(getOperand(regs, consts, v.c), addr); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in2), true
				}
				pc++
				break
			}
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			addr := getOperand(regs, consts, v.a).Uint() +
				uint64(sx(getOperand(regs, consts, v.b).Bits[0], v.idxSh))*v.elem
			if watched {
				pv := interp.PtrValue(v.ty, addr)
				regs[v.dst] = pv
				finish(v.in, pv)
			}
			if tr := step(v.in2, v.vec2); tr != nil {
				return interp.Value{}, tr, true
			}
			if tr := it.Mem.Store(getOperand(regs, consts, v.c), addr); tr != nil {
				return interp.Value{}, it.LocateTrap(tr, v.in2), true
			}
			if watched {
				finish(v.in2, interp.Value{})
			}
			pc++

		case vCmpBr:
			// Fused scalar mask-test + branch.
			if fastFused && it.DynInstrs&1023 < 1022 {
				it.DynInstrs += 2
				if v.vec {
					it.DynVector++
				}
				if v.vec2 {
					it.DynVector++
				}
				if fprof != nil {
					fprof.AccountFused(v.group)
				}
				cond := alloc(v.ty, 1)
				interp.CompareInto(cond, v.irop, v.pred,
					getOperand(regs, consts, v.a), getOperand(regs, consts, v.b))
				if cond.Bool() {
					runMoves(v.m0)
					pc = v.t0
				} else {
					runMoves(v.m1)
					pc = v.t1
				}
				break
			}
			it.DynInstrs++
			if v.vec {
				it.DynVector++
			}
			if prof != nil {
				prof.Account(v.in)
			}
			if it.DynInstrs&1023 == 0 {
				if tr := it.CheckBudget(); tr != nil {
					return interp.Value{}, it.LocateTrap(tr, v.in), true
				}
			}
			cond := interp.CompareOp(v.irop, v.pred,
				getOperand(regs, consts, v.a), getOperand(regs, consts, v.b))
			if watched {
				finish(v.in, cond)
			}
			if tr := step(v.in2, v.vec2); tr != nil {
				return interp.Value{}, tr, true
			}
			if cond.Bool() {
				runMoves(v.m0)
				pc = v.t0
			} else {
				runMoves(v.m1)
				pc = v.t1
			}

		default:
			// Unknown opcode: compiler bug. Decline defensively so the
			// tree-walker provides the authoritative behavior.
			return interp.Value{}, nil, false
		}
	}
}
