package vm

import (
	"bytes"
	"fmt"
	"testing"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// runOutcome captures everything observable about one execution.
type runOutcome struct {
	val    string
	trap   *interp.Trap
	dyn    uint64
	vec    uint64
	output string
}

func execute(t *testing.T, mod *ir.Module, opts interp.Options, compiled bool,
	hook func(it *interp.Interp), fn string, args ...interp.Value) runOutcome {
	t.Helper()
	it, err := interp.New(mod, opts)
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	if compiled {
		prog := Compile(mod)
		if !prog.Compiled(mod.Func(fn)) {
			t.Fatalf("function @%s did not compile", fn)
		}
		Attach(it, prog)
	}
	if hook != nil {
		hook(it)
	}
	v, tr := it.Run(fn, args...)
	vs := ""
	if v.Ty != nil {
		vs = v.String()
	}
	return runOutcome{
		val: vs, trap: tr,
		dyn: it.DynInstrs, vec: it.DynVector,
		output: it.Output.String(),
	}
}

// differential runs fn on both backends and asserts every observable is
// identical, returning the (shared) outcome.
func differential(t *testing.T, mod *ir.Module, opts interp.Options,
	fn string, args ...interp.Value) runOutcome {
	t.Helper()
	for _, f := range mod.Funcs {
		if !f.IsDecl {
			if err := f.Verify(); err != nil {
				t.Fatalf("verify @%s: %v", f.Nam, err)
			}
		}
	}
	tree := execute(t, mod, opts, false, nil, fn, args...)
	comp := execute(t, mod, opts, true, nil, fn, args...)
	assertSameOutcome(t, tree, comp)
	return comp
}

func assertSameOutcome(t *testing.T, tree, comp runOutcome) {
	t.Helper()
	if tree.val != comp.val {
		t.Errorf("result: tree %s, vm %s", tree.val, comp.val)
	}
	if (tree.trap == nil) != (comp.trap == nil) {
		t.Fatalf("trap presence: tree %v, vm %v", tree.trap, comp.trap)
	}
	if tree.trap != nil && *tree.trap != *comp.trap {
		t.Errorf("trap: tree %+v, vm %+v", *tree.trap, *comp.trap)
	}
	if tree.dyn != comp.dyn {
		t.Errorf("DynInstrs: tree %d, vm %d", tree.dyn, comp.dyn)
	}
	if tree.vec != comp.vec {
		t.Errorf("DynVector: tree %d, vm %d", tree.vec, comp.vec)
	}
	if tree.output != comp.output {
		t.Errorf("output: tree %q, vm %q", tree.output, comp.output)
	}
}

// countLoop builds: for (i = 0; i < n; i++) acc += i*2; return acc.
func countLoop(n int64) *ir.Module {
	mod := ir.NewModule("loop")
	f := ir.NewFunc("main", ir.I32, nil, nil)
	mod.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	ir.NewBuilder(entry).Br(loop)

	b := ir.NewBuilder(loop)
	i := b.Phi(ir.I32, "i")
	acc := b.Phi(ir.I32, "acc")
	tw := b.Mul(i, ir.ConstInt(ir.I32, 2), "tw")
	accN := b.Add(acc, tw, "accn")
	iN := b.Add(i, ir.ConstInt(ir.I32, 1), "in")
	c := b.ICmp(ir.IntSLT, iN, ir.ConstInt(ir.I32, n), "c")
	b.CondBr(c, loop, exit)
	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, iN, loop)
	ir.AddIncoming(acc, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(acc, accN, loop)

	ir.NewBuilder(exit).Ret(acc)
	return mod
}

func TestDifferentialScalarLoop(t *testing.T) {
	out := differential(t, countLoop(100), interp.Options{}, "main")
	if out.trap != nil {
		t.Fatalf("unexpected trap: %v", out.trap)
	}
}

// TestPhiSwap pins the swap problem: two phis exchanging values every
// iteration across a critical edge (the loop latch both re-enters the
// loop and exits). A naive sequential copy would collapse both phis to
// one value; the sequenced edge moves must break the cycle through the
// scratch register.
func TestPhiSwap(t *testing.T) {
	mod := ir.NewModule("swap")
	f := ir.NewFunc("main", ir.I32, nil, nil)
	mod.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	ir.NewBuilder(entry).Br(loop)

	b := ir.NewBuilder(loop)
	a := b.Phi(ir.I32, "a")
	bb := b.Phi(ir.I32, "b")
	i := b.Phi(ir.I32, "i")
	iN := b.Add(i, ir.ConstInt(ir.I32, 1), "in")
	c := b.ICmp(ir.IntSLT, iN, ir.ConstInt(ir.I32, 5), "c")
	b.CondBr(c, loop, exit)
	ir.AddIncoming(a, ir.ConstInt(ir.I32, 1), entry)
	ir.AddIncoming(a, bb, loop) // a and b swap on the back edge
	ir.AddIncoming(bb, ir.ConstInt(ir.I32, 2), entry)
	ir.AddIncoming(bb, a, loop)
	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, iN, loop)

	be := ir.NewBuilder(exit)
	hi := be.Mul(a, ir.ConstInt(ir.I32, 10), "hi")
	r := be.Add(hi, bb, "r")
	be.Ret(r)

	out := differential(t, mod, interp.Options{}, "main")
	// 5 iterations: (a,b) goes 1,2 -> 2,1 -> 1,2 -> 2,1 -> 1,2; the
	// final loop body observes a=1, b=2, so a*10+b = 12.
	if out.val != "12" {
		t.Fatalf("swap result = %s, want 12", out.val)
	}
}

// TestPhiRotate3 extends the cycle to length three (a<-b<-c<-a), which
// still needs exactly one scratch parking per round.
func TestPhiRotate3(t *testing.T) {
	mod := ir.NewModule("rot3")
	f := ir.NewFunc("main", ir.I32, nil, nil)
	mod.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	ir.NewBuilder(entry).Br(loop)

	b := ir.NewBuilder(loop)
	a := b.Phi(ir.I32, "a")
	b2 := b.Phi(ir.I32, "b")
	c3 := b.Phi(ir.I32, "c")
	i := b.Phi(ir.I32, "i")
	iN := b.Add(i, ir.ConstInt(ir.I32, 1), "in")
	cc := b.ICmp(ir.IntSLT, iN, ir.ConstInt(ir.I32, 4), "cc")
	b.CondBr(cc, loop, exit)
	ir.AddIncoming(a, ir.ConstInt(ir.I32, 1), entry)
	ir.AddIncoming(a, b2, loop)
	ir.AddIncoming(b2, ir.ConstInt(ir.I32, 2), entry)
	ir.AddIncoming(b2, c3, loop)
	ir.AddIncoming(c3, ir.ConstInt(ir.I32, 3), entry)
	ir.AddIncoming(c3, a, loop)
	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, iN, loop)

	be := ir.NewBuilder(exit)
	t1 := be.Mul(a, ir.ConstInt(ir.I32, 100), "t1")
	t2 := be.Mul(b2, ir.ConstInt(ir.I32, 10), "t2")
	t3 := be.Add(t1, t2, "t3")
	r := be.Add(t3, c3, "r")
	be.Ret(r)

	out := differential(t, mod, interp.Options{}, "main")
	// 4 iterations rotate (1,2,3) -> (2,3,1) -> (3,1,2) -> (1,2,3);
	// final body observes (1,2,3): 100*1 + 10*2 + 3 = 123.
	if out.val != "123" {
		t.Fatalf("rotate result = %s, want 123", out.val)
	}
}

// TestPhiLostCopy pins the lost-copy problem: the phi's pre-update value
// is consumed after the loop. Moves placed naively at the end of the
// latch block (instead of on the taken edge) would clobber %x with %xn
// before the exit path reads it.
func TestPhiLostCopy(t *testing.T) {
	mod := ir.NewModule("lostcopy")
	f := ir.NewFunc("main", ir.I32, nil, nil)
	mod.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	ir.NewBuilder(entry).Br(loop)

	b := ir.NewBuilder(loop)
	x := b.Phi(ir.I32, "x")
	xN := b.Add(x, ir.ConstInt(ir.I32, 1), "xn")
	c := b.ICmp(ir.IntSLT, xN, ir.ConstInt(ir.I32, 7), "c")
	b.CondBr(c, loop, exit)
	ir.AddIncoming(x, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(x, xN, loop)

	ir.NewBuilder(exit).Ret(x) // the OLD x, not xn
	out := differential(t, mod, interp.Options{}, "main")
	// Exits when xn == 7; x still holds 6 on the exit edge.
	if out.val != "6" {
		t.Fatalf("lost-copy result = %s, want 6", out.val)
	}
}

// vecKernel builds a vector loop over a global array: load <4 x i32>
// lanes via gep, double them, store back, then checksum — exercising
// gep+load / gep+store fusion, vector accounting, and extractelement.
func vecKernel() *ir.Module {
	mod := ir.NewModule("vec")
	v4 := ir.Vec(ir.I32, 4)
	g := &ir.Global{Nam: "data", Elem: v4, Count: 8}
	mod.AddGlobal(g)

	f := ir.NewFunc("main", ir.I32, nil, nil)
	mod.AddFunc(f)
	entry := f.NewBlock("entry")
	initB := f.NewBlock("init")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	ir.NewBuilder(entry).Br(initB)

	// init: seed data[j] = <j, j+1, j+2, j+3>
	bi := ir.NewBuilder(initB)
	j := bi.Phi(ir.I32, "j")
	lanes := bi.Broadcast(j, 4, "seed")
	step := ir.ConstVec(v4, []uint64{0, 1, 2, 3})
	seeded := bi.Add(lanes, step, "seeded")
	pj := bi.GEP(g, j, "pj")
	bi.Store(seeded, pj)
	jN := bi.Add(j, ir.ConstInt(ir.I32, 1), "jn")
	cj := bi.ICmp(ir.IntSLT, jN, ir.ConstInt(ir.I32, 8), "cj")
	bi.CondBr(cj, initB, loop)
	ir.AddIncoming(j, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(j, jN, initB)

	// loop: data[i] *= 2, acc += lane0
	b := ir.NewBuilder(loop)
	i := b.Phi(ir.I32, "i")
	acc := b.Phi(ir.I32, "acc")
	p := b.GEP(g, i, "p")
	ld := b.Load(p, "ld")
	dbl := b.Add(ld, ld, "dbl")
	p2 := b.GEP(g, i, "p2")
	b.Store(dbl, p2)
	lane := b.ExtractElement(dbl, ir.ConstInt(ir.I32, 0), "lane")
	accN := b.Add(acc, lane, "accn")
	iN := b.Add(i, ir.ConstInt(ir.I32, 1), "in")
	c := b.ICmp(ir.IntSLT, iN, ir.ConstInt(ir.I32, 8), "c")
	b.CondBr(c, loop, exit)
	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), initB)
	ir.AddIncoming(i, iN, loop)
	ir.AddIncoming(acc, ir.ConstInt(ir.I32, 0), initB)
	ir.AddIncoming(acc, accN, loop)

	ir.NewBuilder(exit).Ret(acc)
	return mod
}

func TestDifferentialVectorKernel(t *testing.T) {
	out := differential(t, vecKernel(), interp.Options{}, "main")
	if out.trap != nil {
		t.Fatalf("unexpected trap: %v", out.trap)
	}
	if out.vec == 0 {
		t.Fatal("vector kernel accounted no vector instructions")
	}
	// The returned value is the acc *phi* (live-out of the loop), which
	// lags the final iteration's update: sum of 2*i for i = 0..6 = 42.
	if out.val != "42" {
		t.Fatalf("checksum = %s, want 42", out.val)
	}
}

func TestFusionEmitted(t *testing.T) {
	prog := Compile(vecKernel())
	if n := prog.Fused("gep+load"); n == 0 {
		t.Error("no gep+load superinstruction emitted")
	}
	if n := prog.Fused("gep+store"); n == 0 {
		t.Error("no gep+store superinstruction emitted")
	}
	if n := prog.Fused("cmp+br"); n == 0 {
		t.Error("no cmp+br superinstruction emitted")
	}
}

// Trap differentials: kind, message, provenance and dynamic index must
// all match the tree-walker exactly.

func TestDifferentialDivZeroTrap(t *testing.T) {
	mod := ir.NewModule("div")
	f := ir.NewFunc("main", ir.I32, []*ir.Type{ir.I32}, []string{"d"})
	mod.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	q := b.SDiv(ir.ConstInt(ir.I32, 42), f.Params[0], "q")
	b.Ret(q)

	out := differential(t, mod, interp.Options{}, "main", interp.IntValue(ir.I32, 0))
	if out.trap == nil || out.trap.Kind != interp.TrapDivZero {
		t.Fatalf("want div-zero trap, got %v", out.trap)
	}
	if out.trap.Func != "main" || out.trap.Block != "entry" {
		t.Fatalf("trap provenance = %q/%q", out.trap.Func, out.trap.Block)
	}
}

func TestDifferentialExtractOOBTrap(t *testing.T) {
	mod := ir.NewModule("oob")
	v4 := ir.Vec(ir.I32, 4)
	f := ir.NewFunc("main", ir.I32, []*ir.Type{ir.I32}, []string{"idx"})
	mod.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	vec := ir.ConstVec(v4, []uint64{10, 20, 30, 40})
	e := b.ExtractElement(vec, f.Params[0], "e")
	b.Ret(e)

	out := differential(t, mod, interp.Options{}, "main", interp.IntValue(ir.I32, 9))
	if out.trap == nil || out.trap.Kind != interp.TrapBadIndex {
		t.Fatalf("want bad-index trap, got %v", out.trap)
	}
}

func TestDifferentialUnreachableTrap(t *testing.T) {
	mod := ir.NewModule("unreach")
	f := ir.NewFunc("main", ir.Void, nil, nil)
	mod.AddFunc(f)
	ir.NewBuilder(f.NewBlock("entry")).Unreachable()

	out := differential(t, mod, interp.Options{}, "main")
	if out.trap == nil || out.trap.Kind != interp.TrapHalt {
		t.Fatalf("want halt trap, got %v", out.trap)
	}
	if out.trap.Msg != "reached unreachable in @main" {
		t.Fatalf("trap msg = %q", out.trap.Msg)
	}
}

// TestDifferentialBudgetTrap pins the budget-check schedule: both
// backends must stop at the identical dynamic instruction index with the
// identical message, which only happens when the VM checks on the exact
// 1024-boundary-and-phi schedule of the tree-walker.
func TestDifferentialBudgetTrap(t *testing.T) {
	out := differential(t, countLoop(1_000_000), interp.Options{Budget: 5000}, "main")
	if out.trap == nil || out.trap.Kind != interp.TrapBudget {
		t.Fatalf("want budget trap, got %v", out.trap)
	}
}

func TestDifferentialCalls(t *testing.T) {
	mod := ir.NewModule("calls")
	fib := ir.NewFunc("fib", ir.I32, []*ir.Type{ir.I32}, []string{"n"})
	mod.AddFunc(fib)
	entry := fib.NewBlock("entry")
	rec := fib.NewBlock("rec")
	base := fib.NewBlock("base")
	b := ir.NewBuilder(entry)
	c := b.ICmp(ir.IntSLT, fib.Params[0], ir.ConstInt(ir.I32, 2), "c")
	b.CondBr(c, base, rec)
	ir.NewBuilder(base).Ret(fib.Params[0])
	br := ir.NewBuilder(rec)
	n1 := br.Sub(fib.Params[0], ir.ConstInt(ir.I32, 1), "n1")
	f1 := br.Call(fib, "f1", n1)
	n2 := br.Sub(fib.Params[0], ir.ConstInt(ir.I32, 2), "n2")
	f2 := br.Call(fib, "f2", n2)
	s := br.Add(f1, f2, "s")
	br.Ret(s)

	main := ir.NewFunc("main", ir.I32, nil, nil)
	mod.AddFunc(main)
	bm := ir.NewBuilder(main.NewBlock("entry"))
	r := bm.Call(fib, "r", ir.ConstInt(ir.I32, 12))
	bm.Ret(r)

	out := differential(t, mod, interp.Options{}, "main")
	if out.val != "144" {
		t.Fatalf("fib(12) = %s, want 144", out.val)
	}
}

func TestDifferentialStackTrap(t *testing.T) {
	mod := ir.NewModule("deep")
	f := ir.NewFunc("main", ir.Void, nil, nil)
	mod.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Call(f, "")
	b.Ret(nil)

	out := differential(t, mod, interp.Options{MaxDepth: 64}, "main")
	if out.trap == nil || out.trap.Kind != interp.TrapStack {
		t.Fatalf("want stack trap, got %v", out.trap)
	}
}

// capRecorder captures the retirement stream as comparable strings.
type capRecorder struct{ events []string }

func (r *capRecorder) Retire(in *ir.Instr, dyn uint64, v interp.Value) {
	vs := "void"
	if v.Ty != nil {
		vs = v.String()
	}
	r.events = append(r.events, fmt.Sprintf("%s@%d=%s", in.Ident(), dyn, vs))
}

// TestRecorderAndTracerStreams asserts the hook event streams are
// identical between backends — including through fused
// superinstructions, which must fall back to full-fidelity accounting
// when a recorder or tracer is attached.
func TestRecorderAndTracerStreams(t *testing.T) {
	mod := vecKernel()
	var treeRec, vmRec capRecorder
	var treeTrace, vmTrace bytes.Buffer

	tree := execute(t, mod, interp.Options{}, false, func(it *interp.Interp) {
		it.SetRecorder(&treeRec)
		it.SetTracer(&interp.Tracer{W: &treeTrace})
	}, "main")
	comp := execute(t, mod, interp.Options{}, true, func(it *interp.Interp) {
		it.SetRecorder(&vmRec)
		it.SetTracer(&interp.Tracer{W: &vmTrace})
	}, "main")
	assertSameOutcome(t, tree, comp)

	if len(treeRec.events) != len(vmRec.events) {
		t.Fatalf("recorder stream length: tree %d, vm %d",
			len(treeRec.events), len(vmRec.events))
	}
	for i := range treeRec.events {
		if treeRec.events[i] != vmRec.events[i] {
			t.Fatalf("recorder event %d: tree %q, vm %q",
				i, treeRec.events[i], vmRec.events[i])
		}
	}
	if treeTrace.String() != vmTrace.String() {
		t.Fatalf("trace streams differ:\ntree:\n%s\nvm:\n%s",
			treeTrace.String(), vmTrace.String())
	}
}

// TestDeclineFallsBackToTree: a block without a terminator is refused by
// the compiler, and the tree-walker's runtime diagnostic must surface
// unchanged through the attached (declining) engine.
func TestDeclineFallsBackToTree(t *testing.T) {
	mod := ir.NewModule("fallthrough")
	f := ir.NewFunc("main", ir.Void, nil, nil)
	mod.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Add(ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 2), "x")
	// no terminator

	prog := Compile(mod)
	if prog.Compiled(mod.Func("main")) {
		t.Fatal("unterminated function should not compile")
	}

	it, err := interp.New(mod, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	Attach(it, prog)
	_, tr := it.Run("main")
	if tr == nil || tr.Kind != interp.TrapHalt || tr.Msg != "block entry fell through" {
		t.Fatalf("want fell-through trap, got %v", tr)
	}
}

// TestEngineSurvivesReset: campaign pools Reset-and-reuse instances; the
// engine must stay attached and produce identical counts on the rerun.
func TestEngineSurvivesReset(t *testing.T) {
	mod := countLoop(50)
	it, err := interp.New(mod, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	Attach(it, Compile(mod))
	v1, tr1 := it.Run("main")
	if tr1 != nil {
		t.Fatal(tr1)
	}
	dyn1 := it.DynInstrs
	if it.Engine() == nil {
		t.Fatal("engine missing before reset")
	}
	if tr := it.Reset(interp.Options{}); tr != nil {
		t.Fatal(tr)
	}
	if it.Engine() == nil {
		t.Fatal("engine dropped by Reset")
	}
	v2, tr2 := it.Run("main")
	if tr2 != nil {
		t.Fatal(tr2)
	}
	if v1.String() != v2.String() || dyn1 != it.DynInstrs {
		t.Fatalf("rerun after reset diverged: %s/%d vs %s/%d",
			v1, dyn1, v2, it.DynInstrs)
	}
}

// TestDifferentialExterns: extern dispatch happens before the engine is
// offered, so runtime-API calls (the injection hooks ride this path)
// behave identically.
func TestDifferentialExterns(t *testing.T) {
	mod := ir.NewModule("ext")
	decl := ir.NewDecl("emit", ir.Void, ir.I32)
	mod.AddFunc(decl)
	f := ir.NewFunc("main", ir.Void, nil, nil)
	mod.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Call(decl, "", ir.ConstInt(ir.I32, 7))
	b.Call(decl, "", ir.ConstInt(ir.I32, 8))
	b.Ret(nil)

	hook := func(it *interp.Interp) {
		it.RegisterExtern("emit", func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
			fmt.Fprintf(&it.Output, "emit(%d)\n", args[0].Int())
			return interp.Value{}, nil
		})
	}
	tree := execute(t, mod, interp.Options{}, false, hook, "main")
	comp := execute(t, mod, interp.Options{}, true, hook, "main")
	assertSameOutcome(t, tree, comp)
	if comp.output != "emit(7)\nemit(8)\n" {
		t.Fatalf("extern output = %q", comp.output)
	}
}

// TestDifferentialOps sweeps the remaining opcode families (select,
// casts, shuffle, insert, float arithmetic, srem/urem edge) on both
// backends.
func TestDifferentialOps(t *testing.T) {
	mod := ir.NewModule("ops")
	v4 := ir.Vec(ir.F32, 4)
	f := ir.NewFunc("main", ir.F64, []*ir.Type{ir.I32}, []string{"k"})
	mod.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	k := f.Params[0]

	wide := b.Cast(ir.OpSExt, k, ir.I64, "wide")
	back := b.Cast(ir.OpTrunc, wide, ir.I32, "back")
	fk := b.Cast(ir.OpSIToFP, back, ir.F32, "fk")
	spread := b.Broadcast(fk, 4, "spread")
	bump := b.FAdd(spread, ir.ConstVec(v4, []uint64{
		floatBits32(0.5), floatBits32(1.5), floatBits32(2.5), floatBits32(3.5),
	}), "bump")
	rev := b.ShuffleVector(bump, bump, []int{3, 2, 1, 0}, "rev")
	one := b.Cast(ir.OpFPTrunc, ir.ConstFloat(ir.F64, 9.25), ir.F32, "one")
	ins := b.InsertElement(rev, one, ir.ConstInt(ir.I32, 2), "ins")
	l0 := b.ExtractElement(ins, ir.ConstInt(ir.I32, 0), "l0")
	l2 := b.ExtractElement(ins, ir.ConstInt(ir.I32, 2), "l2")
	cond := b.FCmp(ir.FloatOGT, l0, l2, "cond")
	sel := b.Select(cond, l0, l2, "sel")
	out := b.Cast(ir.OpFPExt, sel, ir.F64, "out")
	b.Ret(out)

	differential(t, mod, interp.Options{}, "main", interp.IntValue(ir.I32, 4))
	differential(t, mod, interp.Options{}, "main", interp.IntValue(ir.I32, 11))
}

func floatBits32(f float32) uint64 {
	return uint64(interp.FloatValue(ir.F32, float64(f)).Bits[0])
}
