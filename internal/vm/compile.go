package vm

import (
	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// vop enumerates bytecode opcodes. The lowered form trades the
// tree-walker's per-instruction interface dispatch for a dense switch:
// generic opcodes carry the original ir.Op and route through the interp
// package's exported operation kernels, fused opcodes execute a whole
// profiler digram in one dispatch.
type vop uint8

const (
	vInvalid vop = iota
	vIntBin
	vFloatBin
	vCmp
	vSelect
	vCast
	vAlloca
	vLoad
	vStore
	vGEP
	vExtract
	vInsert
	vShuffle
	vCall
	vBr
	vCondBr
	vRet
	vRetVoid
	vUnreachable
	// vPhiGroup accounts a block's phi nodes. The parallel copy itself
	// has already happened on the incoming edge (vBr/vCondBr move
	// bundles); this opcode replays the tree-walker's observable phi
	// schedule: per-phi DynInstrs accounting and Retire in block order,
	// then one unconditional budget check located at the first phi.
	vPhiGroup
	// Fused superinstructions (see fusion in lower).
	vGEPLoad  // gep + load  : dst = mem[base + idx*elem]
	vGEPStore // gep + store : mem[base + idx*elem] = value
	vCmpBr    // scalar cmp + condbr : branch on compare without a visit
)

// A move copies one value into a register: the phi-elimination parallel
// copy, sequenced at compile time (lost-copy and swap safe — cycles are
// broken through the function's scratch register). src is an operand
// ref; values are immutable once published (every producer builds a
// fresh result, bit flips clone first), so constant sources are shared
// rather than cloned.
type move struct {
	dst int32
	src int32
}

// phiSlot is one phi of a vPhiGroup: the original instruction for
// accounting/retire, its register, and its precomputed vector flag.
type phiSlot struct {
	in  *ir.Instr
	reg int32
	vec bool
}

// vinstr is one lowered instruction. Operand refs (a, b, c, args,
// move.src) address the register frame when >= 0 and the constant pool
// when negative (ref < 0 denotes consts[^ref]).
type vinstr struct {
	op   vop
	irop ir.Op
	pred ir.Pred

	dst     int32 // result register; -1 when void. vGEPStore: the gep's register.
	a, b, c int32 // operand refs

	ty   *ir.Type
	nw   int32  // result lane words (len(Bits) of the result value)
	elem uint64 // gep element byte size; alloca total bytes
	// idxSh sign-extends the statically-typed index operand (gep index,
	// extract/insert lane) without re-deriving its scalar width per
	// execution: int64(bits<<idxSh)>>idxSh == ir.SignExtend(bits, w).
	idxSh uint8

	in  *ir.Instr // original instruction: accounting, traps, trace, retire
	vec bool      // precomputed in.IsVectorInstr()

	// Fused second constituent and the two-element accounting group
	// handed to interp.FusedProfiler implementations.
	in2   *ir.Instr
	vec2  bool
	group []*ir.Instr

	// Branch targets (bytecode pcs) and their edge move bundles.
	t0, t1 int32
	m0, m1 []move

	phis []phiSlot

	callee *ir.Func
	args   []int32

	mask []int
}

// fnCode is one compiled function body.
type fnCode struct {
	fn      *ir.Func
	nregs   int
	consts  []interp.Value
	globals []globalSlot
	code    []vinstr
}

// globalSlot materializes one module global's address into a register
// at frame entry. Global addresses are per-interpreter state (they are
// reallocated on Reset), so they cannot live in the constant pool of a
// program shared across instances.
type globalSlot struct {
	reg int32
	g   *ir.Global
	ty  *ir.Type
}

// compiler carries the per-function lowering state.
type compiler struct {
	f       *ir.Func
	code    fnCode
	nreg    int32
	regOf   map[*ir.Instr]int32
	scratch int32
	constIx map[*ir.Const]int32
	globIx  map[*ir.Global]int32
	starts  map[*ir.Block]int32
	fixups  []fixup
	fused   map[string]int
	declIx  map[*ir.Func]int32 // program-wide dense extern-callee index
}

// fixup patches a branch target once every block's start pc is known.
type fixup struct {
	pc     int
	second bool // patch t1 instead of t0
	blk    *ir.Block
}

// compileFunc lowers f, reporting ok == false for shapes only the
// tree-walker's runtime diagnostics can describe faithfully: blocks
// without terminators ("block fell through"), phis outside the block
// head or in the entry block, and phis lacking an incoming for a
// predecessor. Those fall back to tree-walking.
func compileFunc(f *ir.Func, fused map[string]int, declIx map[*ir.Func]int32) (*fnCode, bool) {
	c := &compiler{
		f:       f,
		regOf:   map[*ir.Instr]int32{},
		constIx: map[*ir.Const]int32{},
		globIx:  map[*ir.Global]int32{},
		starts:  map[*ir.Block]int32{},
		fused:   fused,
		declIx:  declIx,
	}
	c.code.fn = f
	if len(f.Blocks) == 0 {
		return nil, false
	}

	// Register layout: parameters first (slot == Param.Index), then one
	// slot per value-producing instruction, then the move scratch, then
	// any globals the body references.
	c.nreg = int32(len(f.Params))
	for _, b := range f.Blocks {
		sawNonPhi := false
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && (sawNonPhi || b == f.Entry()) {
				return nil, false
			}
			if in.Op != ir.OpPhi {
				sawNonPhi = true
			}
			if !in.Ty.IsVoid() {
				c.regOf[in] = c.nreg
				c.nreg++
			}
		}
	}
	c.scratch = c.nreg
	c.nreg++

	for _, b := range f.Blocks {
		c.starts[b] = int32(len(c.code.code))
		if !c.lowerBlock(b) {
			return nil, false
		}
	}
	for _, fx := range c.fixups {
		target, ok := c.starts[fx.blk]
		if !ok {
			return nil, false
		}
		if fx.second {
			c.code.code[fx.pc].t1 = target
		} else {
			c.code.code[fx.pc].t0 = target
		}
	}
	c.code.nregs = int(c.nreg)
	return &c.code, true
}

// ref resolves an operand to its slot: register for params and
// instruction results, pool index (encoded negative) for constants,
// and a frame-entry-materialized register for globals.
func (c *compiler) ref(v ir.Value) (int32, bool) {
	switch x := v.(type) {
	case *ir.Const:
		ix, ok := c.constIx[x]
		if !ok {
			ix = int32(len(c.code.consts))
			c.code.consts = append(c.code.consts, interp.ConstValue(x))
			c.constIx[x] = ix
		}
		return ^ix, true
	case *ir.Param:
		return int32(x.Index), true
	case *ir.Instr:
		r, ok := c.regOf[x]
		return r, ok
	case *ir.Global:
		r, ok := c.globIx[x]
		if !ok {
			r = c.nreg
			c.nreg++
			c.globIx[x] = r
			c.code.globals = append(c.code.globals,
				globalSlot{reg: r, g: x, ty: x.Type()})
		}
		return r, true
	}
	return 0, false
}

func (c *compiler) emit(v vinstr) int {
	c.code.code = append(c.code.code, v)
	return len(c.code.code) - 1
}

// lowerBlock lowers one basic block: the phi accounting group, the
// straight-line body with digram fusion, and the terminator with its
// per-edge parallel-move bundles. Lowering stops at the first
// terminator — anything after it is unreachable under the tree-walker
// too.
func (c *compiler) lowerBlock(b *ir.Block) bool {
	phis := b.Phis()
	if len(phis) > 0 {
		g := vinstr{op: vPhiGroup}
		for _, phi := range phis {
			g.phis = append(g.phis, phiSlot{
				in: phi, reg: c.regOf[phi], vec: phi.IsVectorInstr(),
			})
		}
		c.emit(g)
	}

	body := b.Instrs[len(phis):]
	for i := 0; i < len(body); i++ {
		in := body[i]
		if in.Op.IsTerminator() {
			return c.lowerTerminator(b, in)
		}
		var next *ir.Instr
		if i+1 < len(body) {
			next = body[i+1]
		}
		used, ok := c.lowerInstr(b, in, next)
		if !ok {
			return false
		}
		if used {
			i++ // fused with next
			if next.Op.IsTerminator() {
				return true // the fused opcode carried the terminator
			}
		}
	}
	return false // no terminator: tree-walker's "block fell through"
}

// lowerInstr lowers one non-terminator instruction, fusing it with next
// when the pair matches a superinstruction pattern. Returns whether
// next was consumed.
func (c *compiler) lowerInstr(b *ir.Block, in, next *ir.Instr) (bool, bool) {
	v := vinstr{
		irop: in.Op, pred: in.Pred, ty: in.Ty,
		in: in, vec: in.IsVectorInstr(), dst: -1,
	}
	if r, ok := c.regOf[in]; ok {
		v.dst = r
		v.nw = int32(in.Ty.Lanes())
	}

	// Digram fusion: adjacent single-use producer/consumer pairs from
	// the profiler's superinstruction candidate list. Fusing never
	// reorders accounting — the fused opcodes replay both constituents'
	// DynInstrs/budget/trace/retire schedule.
	if next != nil && in.NumUses() == 1 {
		switch {
		case in.Op == ir.OpGEP && next.Op == ir.OpLoad && next.Operand(0) == in:
			if ok := c.fuseGEP(&v, in, next, vGEPLoad); ok {
				c.fused["gep+load"]++
				c.emit(v)
				return true, true
			}
		case in.Op == ir.OpGEP && next.Op == ir.OpStore && next.Operand(1) == in:
			if ok := c.fuseGEP(&v, in, next, vGEPStore); ok {
				c.fused["gep+store"]++
				c.emit(v)
				return true, true
			}
		case (in.Op == ir.OpICmp || in.Op == ir.OpFCmp) && in.Ty == ir.I1 &&
			next.Op == ir.OpCondBr && next.Operand(0) == in:
			if ok := c.fuseCmpBr(b, &v, in, next); ok {
				c.fused["cmp+br"]++
				c.emit(v)
				return true, true
			}
		}
	}

	ok := c.lowerPlain(&v, in)
	if !ok {
		return false, false
	}
	c.emit(v)
	return false, true
}

// lowerPlain fills v for a single unfused instruction.
func (c *compiler) lowerPlain(v *vinstr, in *ir.Instr) bool {
	setABC := func(n int) bool {
		refs := [3]*int32{&v.a, &v.b, &v.c}
		for i := 0; i < n; i++ {
			r, ok := c.ref(in.Operand(i))
			if !ok {
				return false
			}
			*refs[i] = r
		}
		return true
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem, ir.OpUDiv,
		ir.OpURem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		v.op = vIntBin
		return setABC(2)
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFRem:
		v.op = vFloatBin
		return setABC(2)
	case ir.OpICmp, ir.OpFCmp:
		v.op = vCmp
		return setABC(2)
	case ir.OpSelect:
		v.op = vSelect
		return setABC(3)
	case ir.OpAlloca:
		v.op = vAlloca
		v.elem = uint64(in.AllocElem.ByteSize() * in.AllocCount)
		return true
	case ir.OpLoad:
		v.op = vLoad
		return setABC(1)
	case ir.OpStore:
		v.op = vStore
		return setABC(2)
	case ir.OpGEP:
		v.op = vGEP
		v.elem = uint64(in.Ty.Elem.ByteSize())
		v.idxSh = idxShift(in.Operand(1))
		return setABC(2)
	case ir.OpExtractElement:
		v.op = vExtract
		v.idxSh = idxShift(in.Operand(1))
		return setABC(2)
	case ir.OpInsertElement:
		v.op = vInsert
		v.idxSh = idxShift(in.Operand(2))
		return setABC(3)
	case ir.OpShuffleVector:
		v.op = vShuffle
		v.mask = in.ShuffleMask
		return setABC(2)
	case ir.OpCall:
		v.op = vCall
		v.callee = in.Callee
		if v.callee == nil {
			return false
		}
		// c is repurposed as the dense extern index for declaration
		// callees (-1 for defined functions, which route through Call).
		v.c = -1
		if v.callee.IsDecl {
			ix, ok := c.declIx[v.callee]
			if !ok {
				ix = int32(len(c.declIx))
				c.declIx[v.callee] = ix
			}
			v.c = ix
		}
		n := in.NumOperands()
		v.args = make([]int32, n)
		for i := 0; i < n; i++ {
			r, ok := c.ref(in.Operand(i))
			if !ok {
				return false
			}
			v.args[i] = r
		}
		return true
	default:
		if in.Op.IsCast() {
			v.op = vCast
			return setABC(1)
		}
		return false
	}
}

// fuseGEP fills v as a fused gep+load / gep+store superinstruction.
func (c *compiler) fuseGEP(v *vinstr, gep, mem *ir.Instr, op vop) bool {
	base, ok1 := c.ref(gep.Operand(0))
	idx, ok2 := c.ref(gep.Operand(1))
	if !ok1 || !ok2 {
		return false
	}
	v.op = op
	v.a, v.b = base, idx
	v.elem = uint64(gep.Ty.Elem.ByteSize())
	v.idxSh = idxShift(gep.Operand(1))
	v.in2, v.vec2 = mem, mem.IsVectorInstr()
	v.group = []*ir.Instr{gep, mem}
	if op == vGEPLoad {
		v.ty = mem.Ty
		v.nw = int32(mem.Ty.Lanes())
		v.c = c.regOf[gep] // materialized only when a recorder/tracer watches
		v.dst = c.regOf[mem]
	} else {
		val, ok := c.ref(mem.Operand(0))
		if !ok {
			return false
		}
		v.ty = gep.Ty
		v.c = val
		v.dst = c.regOf[gep]
	}
	return true
}

// idxShift returns the sign-extension shift for v's scalar bit width
// (0 for 64-bit-or-wider payloads, where no extension is needed).
func idxShift(v ir.Value) uint8 {
	b := v.Type().Scalar().Bits
	if b <= 0 || b >= 64 {
		return 0
	}
	return uint8(64 - b)
}

// fuseCmpBr fills v as a fused scalar-compare + conditional-branch
// superinstruction (the profiler's "mask test + branch" digram).
func (c *compiler) fuseCmpBr(b *ir.Block, v *vinstr, cmp, br *ir.Instr) bool {
	a, ok1 := c.ref(cmp.Operand(0))
	bb, ok2 := c.ref(cmp.Operand(1))
	if !ok1 || !ok2 {
		return false
	}
	m0, ok3 := c.edgeMoves(b, br.Succs[0])
	m1, ok4 := c.edgeMoves(b, br.Succs[1])
	if !ok3 || !ok4 {
		return false
	}
	v.op = vCmpBr
	v.a, v.b = a, bb
	v.in2, v.vec2 = br, br.IsVectorInstr()
	v.group = []*ir.Instr{cmp, br}
	v.m0, v.m1 = m0, m1
	c.fixups = append(c.fixups,
		fixup{pc: len(c.code.code), blk: br.Succs[0]},
		fixup{pc: len(c.code.code), second: true, blk: br.Succs[1]})
	return true
}

// lowerTerminator lowers the block's terminator with its edge bundles.
func (c *compiler) lowerTerminator(b *ir.Block, in *ir.Instr) bool {
	v := vinstr{
		irop: in.Op, ty: in.Ty, in: in, vec: in.IsVectorInstr(), dst: -1,
	}
	switch in.Op {
	case ir.OpBr:
		moves, ok := c.edgeMoves(b, in.Succs[0])
		if !ok {
			return false
		}
		v.op = vBr
		v.m0 = moves
		c.fixups = append(c.fixups, fixup{pc: len(c.code.code), blk: in.Succs[0]})
	case ir.OpCondBr:
		cond, ok := c.ref(in.Operand(0))
		if !ok {
			return false
		}
		m0, ok1 := c.edgeMoves(b, in.Succs[0])
		m1, ok2 := c.edgeMoves(b, in.Succs[1])
		if !ok1 || !ok2 {
			return false
		}
		v.op = vCondBr
		v.a = cond
		v.m0, v.m1 = m0, m1
		c.fixups = append(c.fixups,
			fixup{pc: len(c.code.code), blk: in.Succs[0]},
			fixup{pc: len(c.code.code), second: true, blk: in.Succs[1]})
	case ir.OpRet:
		if len(in.Operands()) == 0 {
			v.op = vRetVoid
		} else {
			r, ok := c.ref(in.Operand(0))
			if !ok {
				return false
			}
			v.op = vRet
			v.a = r
		}
	case ir.OpUnreachable:
		v.op = vUnreachable
	default:
		return false
	}
	c.emit(v)
	return true
}

// edgeMoves builds the sequenced parallel-move bundle for the edge
// b -> succ: one move per phi of succ, from the incoming value b
// contributes. The bundle runs after the branch decision and before
// control transfers, which makes critical edges safe without block
// splitting. Sequencing emits a move only once no other pending move
// still reads its destination; cycles (the swap problem) are broken by
// parking one destination in the scratch register (the lost-copy
// problem cannot arise: destinations are written exactly once).
func (c *compiler) edgeMoves(b *ir.Block, succ *ir.Block) ([]move, bool) {
	phis := succ.Phis()
	if len(phis) == 0 {
		return nil, true
	}
	pending := make([]move, 0, len(phis))
	for _, phi := range phis {
		src := int32(0)
		found := false
		for i, pred := range phi.Succs {
			if pred == b {
				r, ok := c.ref(phi.Operand(i))
				if !ok {
					return nil, false
				}
				src, found = r, true
				break
			}
		}
		if !found {
			return nil, false // tree-walker traps "no incoming" at runtime
		}
		dst := c.regOf[phi]
		if src == dst {
			continue // self-move: the loop-carried value is already home
		}
		pending = append(pending, move{dst: dst, src: src})
	}

	var out []move
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); {
			mv := pending[i]
			blocked := false
			for j, other := range pending {
				if j != i && other.src == mv.dst {
					blocked = true
					break
				}
			}
			if blocked {
				i++
				continue
			}
			out = append(out, mv)
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
		}
		if !progress {
			// Every pending destination is still read by another move: a
			// cycle. Park one destination in scratch and retarget its
			// readers.
			parked := pending[0].dst
			out = append(out, move{dst: c.scratch, src: parked})
			for j := range pending {
				if pending[j].src == parked {
					pending[j].src = c.scratch
				}
			}
		}
	}
	return out, true
}
