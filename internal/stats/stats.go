// Package stats implements the statistical machinery of the paper's
// evaluation methodology (§IV-D): sample mean/deviation, Student-t
// critical values for 95% confidence, the margin-of-error rule used to
// decide how many fault-injection campaigns to run, and a normality
// diagnostic for the campaign-rate sample distribution.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// tTable95 holds two-sided 95% Student-t critical values for df = 1..30.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (normal approximation beyond the table).
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// MarginOfError95 returns the paper's ±margin at 95% confidence for the
// sample of campaign rates: t(df) × stderr.
func MarginOfError95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.Inf(1)
	}
	return TCritical95(len(xs)-1) * StdErr(xs)
}

// Skewness returns the sample skewness (0 for degenerate samples).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the sample excess kurtosis (0 for degenerate samples).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// JarqueBera returns the Jarque–Bera normality statistic; under
// normality it is χ²(2)-distributed.
func JarqueBera(xs []float64) float64 {
	n := float64(len(xs))
	s := Skewness(xs)
	k := Kurtosis(xs)
	return n / 6 * (s*s + k*k/4)
}

// NearNormal applies the paper's "normal or near normal" criterion using
// the Jarque–Bera statistic at the χ²(2) 95% cut-off (5.991). Degenerate
// (zero-variance) samples count as near normal.
func NearNormal(xs []float64) bool {
	if Variance(xs) == 0 {
		return true
	}
	return JarqueBera(xs) < 5.991
}

// Z95 is the two-sided 95% standard-normal critical value, the default
// significance threshold of the atlas regression gate.
const Z95 = 1.959963984540054

// NormalCDF returns Φ(z), the standard normal cumulative distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion of successes out of n trials at critical value z
// (z = Z95 for 95% confidence). Unlike the Wald interval it stays inside
// [0,1] and behaves sensibly at the extremes (0 or n successes), which
// per-site tallies hit constantly — a site injected 3 times with 3 SDCs
// gets a wide interval instead of the overconfident [1,1]. With n == 0
// there is no information and the interval is the whole of [0,1].
func WilsonInterval(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := p + z2/(2*nn)
	spread := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo = (center - spread) / denom
	hi = (center + spread) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// TwoProportionZ returns the pooled two-proportion z statistic comparing
// x1/n1 against x2/n2 — positive when the second proportion is larger.
// It is the atlas regression test: |z| ≥ Z95 rejects "the two studies
// have the same underlying rate" at 95% confidence. Degenerate inputs
// (an empty sample, or a pooled rate of exactly 0 or 1, under which the
// two samples cannot differ) return 0.
func TwoProportionZ(x1, n1, x2, n2 int) float64 {
	if n1 <= 0 || n2 <= 0 {
		return 0
	}
	p1 := float64(x1) / float64(n1)
	p2 := float64(x2) / float64(n2)
	pool := float64(x1+x2) / float64(n1+n2)
	se := math.Sqrt(pool * (1 - pool) * (1/float64(n1) + 1/float64(n2)))
	if se == 0 {
		return 0
	}
	return (p2 - p1) / se
}
