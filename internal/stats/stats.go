// Package stats implements the statistical machinery of the paper's
// evaluation methodology (§IV-D): sample mean/deviation, Student-t
// critical values for 95% confidence, the margin-of-error rule used to
// decide how many fault-injection campaigns to run, and a normality
// diagnostic for the campaign-rate sample distribution.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// tTable95 holds two-sided 95% Student-t critical values for df = 1..30.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (normal approximation beyond the table).
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// MarginOfError95 returns the paper's ±margin at 95% confidence for the
// sample of campaign rates: t(df) × stderr.
func MarginOfError95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.Inf(1)
	}
	return TCritical95(len(xs)-1) * StdErr(xs)
}

// Skewness returns the sample skewness (0 for degenerate samples).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the sample excess kurtosis (0 for degenerate samples).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// JarqueBera returns the Jarque–Bera normality statistic; under
// normality it is χ²(2)-distributed.
func JarqueBera(xs []float64) float64 {
	n := float64(len(xs))
	s := Skewness(xs)
	k := Kurtosis(xs)
	return n / 6 * (s*s + k*k/4)
}

// NearNormal applies the paper's "normal or near normal" criterion using
// the Jarque–Bera statistic at the χ²(2) 95% cut-off (5.991). Degenerate
// (zero-variance) samples count as near normal.
func NearNormal(xs []float64) bool {
	if Variance(xs) == 0 {
		return true
	}
	return JarqueBera(xs) < 5.991
}
