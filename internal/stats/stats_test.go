package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if !almost(Variance(xs), 32.0/7, 1e-12) {
		t.Errorf("variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("stddev = %v", StdDev(xs))
	}
	if !almost(StdErr(xs), math.Sqrt(32.0/7)/math.Sqrt(8), 1e-12) {
		t.Errorf("stderr = %v", StdErr(xs))
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Error("empty sample should yield zeros")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if !math.IsInf(MarginOfError95([]float64{1}), 1) {
		t.Error("MoE of singleton should be +Inf")
	}
}

func TestTCritical(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {5, 2.571}, {19, 2.093}, {30, 2.042},
		{35, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("t(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("t(0) should be +Inf")
	}
}

// TestPaperMarginRule reproduces the §IV-D setup: 20 campaign SDC rates;
// the margin of error uses t(19) = 2.093.
func TestPaperMarginRule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 0.5 + rng.NormFloat64()*0.02
	}
	moe := MarginOfError95(xs)
	want := 2.093 * StdErr(xs)
	if !almost(moe, want, 1e-12) {
		t.Errorf("moe = %v, want %v", moe, want)
	}
	// With σ≈2% over 20 campaigns, the margin lands within the paper's
	// ±3% target.
	if moe > 0.03 {
		t.Errorf("margin %v exceeds the paper's ±3%% regime", moe)
	}
}

// Property: mean is shift-equivariant and variance shift-invariant.
func TestShiftProperties(t *testing.T) {
	prop := func(raw []float64, shift float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp wild quick-generated values to keep FP error bounded.
			xs[i] = math.Mod(v, 1000)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		shift = math.Mod(shift, 1000)
		if math.IsNaN(shift) {
			shift = 0
		}
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] + shift
		}
		return almost(Mean(ys), Mean(xs)+shift, 1e-6) &&
			almost(Variance(ys), Variance(xs), 1e-5*(1+Variance(xs)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// Symmetric sample: zero skewness.
	sym := []float64{-2, -1, 0, 1, 2}
	if !almost(Skewness(sym), 0, 1e-12) {
		t.Errorf("symmetric skewness = %v", Skewness(sym))
	}
	// Right-skewed sample: positive skewness.
	skew := []float64{1, 1, 1, 1, 10}
	if Skewness(skew) <= 0 {
		t.Errorf("right-skewed sample has skewness %v", Skewness(skew))
	}
	if Skewness([]float64{3, 3, 3}) != 0 {
		t.Error("degenerate skewness should be 0")
	}
}

func TestNearNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	normal := make([]float64, 200)
	for i := range normal {
		normal[i] = rng.NormFloat64()
	}
	if !NearNormal(normal) {
		t.Errorf("gaussian sample rejected (JB=%v)", JarqueBera(normal))
	}
	// A heavily skewed sample must be rejected.
	skewed := make([]float64, 200)
	for i := range skewed {
		skewed[i] = math.Exp(rng.NormFloat64() * 2)
	}
	if NearNormal(skewed) {
		t.Errorf("lognormal sample accepted (JB=%v)", JarqueBera(skewed))
	}
	// Constant samples count as near normal (degenerate distributions).
	if !NearNormal([]float64{1, 1, 1, 1}) {
		t.Error("constant sample should pass")
	}
}

func TestWilsonInterval(t *testing.T) {
	cases := []struct {
		x, n   int
		lo, hi float64 // expected bounds (reference values, 1e-6)
	}{
		{0, 0, 0, 1},          // no trials: no information
		{0, 10, 0, 0.277535},  // zero successes still gets hi > 0
		{10, 10, 0.722465, 1}, // all successes still gets lo < 1
		{5, 10, 0.236593, 0.763407},
		{50, 100, 0.403832, 0.596168},
	}
	for _, c := range cases {
		lo, hi := WilsonInterval(c.x, c.n, Z95)
		if math.Abs(lo-c.lo) > 1e-5 || math.Abs(hi-c.hi) > 1e-5 {
			t.Errorf("WilsonInterval(%d,%d) = [%v,%v], want [%v,%v]",
				c.x, c.n, lo, hi, c.lo, c.hi)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("WilsonInterval(%d,%d) = [%v,%v] not a sane interval",
				c.x, c.n, lo, hi)
		}
		p := float64(0)
		if c.n > 0 {
			p = float64(c.x) / float64(c.n)
		} else {
			p = lo // vacuous containment for the n==0 row
		}
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Errorf("WilsonInterval(%d,%d) = [%v,%v] excludes p=%v",
				c.x, c.n, lo, hi, p)
		}
	}
}

func TestTwoProportionZ(t *testing.T) {
	// Identical samples: z must be exactly 0.
	if z := TwoProportionZ(30, 100, 30, 100); z != 0 {
		t.Errorf("identical proportions: z = %v, want 0", z)
	}
	// Degenerate inputs return 0, never NaN.
	for _, z := range []float64{
		TwoProportionZ(0, 0, 5, 10),
		TwoProportionZ(5, 10, 0, 0),
		TwoProportionZ(0, 50, 0, 50),   // pooled rate 0
		TwoProportionZ(50, 50, 50, 50), // pooled rate 1
	} {
		if z != 0 || math.IsNaN(z) {
			t.Errorf("degenerate input: z = %v, want 0", z)
		}
	}
	// A textbook case: 20/100 vs 35/100 → z ≈ 2.3754 (second larger →
	// positive), antisymmetric under swapping the samples.
	z := TwoProportionZ(20, 100, 35, 100)
	if math.Abs(z-2.375423) > 1e-5 {
		t.Errorf("TwoProportionZ(20/100, 35/100) = %v, want ~2.375423", z)
	}
	if zr := TwoProportionZ(35, 100, 20, 100); math.Abs(z+zr) > 1e-12 {
		t.Errorf("z not antisymmetric: %v vs %v", z, zr)
	}
	if z < Z95 {
		t.Errorf("z = %v should exceed Z95 = %v", z, Z95)
	}
	// NormalCDF sanity: Φ(0) = 0.5, Φ(Z95) ≈ 0.975.
	if c := NormalCDF(0); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("NormalCDF(0) = %v", c)
	}
	if c := NormalCDF(Z95); math.Abs(c-0.975) > 1e-9 {
		t.Errorf("NormalCDF(Z95) = %v, want 0.975", c)
	}
}
