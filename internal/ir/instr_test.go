package ir

import "testing"

// buildSimple creates a function with an add whose result feeds a mul and
// a store.
func buildSimple() (*Func, *Instr, *Instr, *Instr) {
	f := NewFunc("f", Void, []*Type{I32, Ptr(I32)}, []string{"x", "p"})
	b := f.NewBlock("entry")
	bu := NewBuilder(b)
	add := bu.Add(f.Params[0], ConstInt(I32, 1), "add")
	mul := bu.Mul(add, add, "mul")
	st := bu.Store(mul, f.Params[1])
	bu.Ret(nil)
	return f, add, mul, st
}

func TestUseLists(t *testing.T) {
	_, add, mul, st := buildSimple()
	if add.NumUses() != 2 {
		t.Fatalf("add has %d uses, want 2 (both mul operands)", add.NumUses())
	}
	if mul.NumUses() != 1 {
		t.Fatalf("mul has %d uses, want 1 (store)", mul.NumUses())
	}
	uses := add.Uses()
	for _, u := range uses {
		if u.User != mul {
			t.Fatalf("unexpected user %v", u.User)
		}
	}
	if st.NumUses() != 0 {
		t.Fatal("store should have no uses")
	}
}

func TestSetOperandMaintainsUses(t *testing.T) {
	_, add, mul, _ := buildSimple()
	c := ConstInt(I32, 9)
	mul.SetOperand(0, c)
	if add.NumUses() != 1 {
		t.Fatalf("add should have 1 use after replacement, has %d", add.NumUses())
	}
	if mul.Operand(0) != Value(c) {
		t.Fatal("operand not replaced")
	}
}

func TestReplaceAllUsesWith(t *testing.T) {
	_, add, mul, st := buildSimple()
	c := ConstInt(I32, 7)
	add.ReplaceAllUsesWith(c)
	if add.NumUses() != 0 {
		t.Fatal("add still has uses")
	}
	if mul.Operand(0) != Value(c) || mul.Operand(1) != Value(c) {
		t.Fatal("mul operands not redirected")
	}
	_ = st
}

func TestReplaceUsesExcept(t *testing.T) {
	_, add, mul, st := buildSimple()
	c := ConstInt(I32, 7)
	add.ReplaceUsesExcept(c, map[*Instr]bool{mul: true})
	if mul.Operand(0) != Value(add) {
		t.Fatal("skipped user was redirected")
	}
	_ = st
	// Now replace for real.
	add.ReplaceUsesExcept(c, nil)
	if mul.Operand(0) != Value(c) {
		t.Fatal("unskipped user not redirected")
	}
}

func TestParamUses(t *testing.T) {
	f, add, _, _ := buildSimple()
	x := f.Params[0]
	if len(x.Uses()) != 1 || x.Uses()[0].User != add {
		t.Fatal("param use tracking wrong")
	}
}

func TestInsertBeforeAfterRemove(t *testing.T) {
	f, add, mul, _ := buildSimple()
	b := f.Entry()

	sub := newInstr(OpSub, I32, "sub", add, ConstInt(I32, 2))
	b.InsertAfter(sub, add)
	if b.Instrs[1] != sub {
		t.Fatal("InsertAfter misplaced")
	}
	xor := newInstr(OpXor, I32, "xor", sub, sub)
	b.InsertBefore(xor, mul)
	idx := b.indexOf(mul)
	if b.Instrs[idx-1] != xor {
		t.Fatal("InsertBefore misplaced")
	}
	// Removing xor must drop its operand uses on sub.
	if sub.NumUses() != 2 {
		t.Fatalf("sub uses = %d, want 2", sub.NumUses())
	}
	b.Remove(xor)
	if sub.NumUses() != 0 {
		t.Fatal("Remove did not drop operand uses")
	}
	for _, in := range b.Instrs {
		if in == xor {
			t.Fatal("xor still in block")
		}
	}
}

func TestPositionedBuilders(t *testing.T) {
	f, add, mul, _ := buildSimple()
	b := f.Entry()

	bu := NewBuilderAfter(add)
	a1 := bu.Add(add, ConstInt(I32, 1), "a1")
	a2 := bu.Add(a1, ConstInt(I32, 2), "a2")
	// Emission order preserved: add, a1, a2, mul...
	if b.Instrs[1] != a1 || b.Instrs[2] != a2 {
		t.Fatalf("insert-after chain out of order: %v", b.Instrs)
	}

	bu2 := NewBuilderBefore(mul)
	p1 := bu2.Add(a2, ConstInt(I32, 3), "p1")
	idx := b.indexOf(mul)
	if b.Instrs[idx-1] != p1 {
		t.Fatal("insert-before misplaced")
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpBr.IsTerminator() || !OpRet.IsTerminator() || !OpCondBr.IsTerminator() {
		t.Error("terminator predicates wrong")
	}
	if OpAdd.IsTerminator() || OpCall.IsTerminator() {
		t.Error("non-terminators misclassified")
	}
	for _, op := range []Op{OpTrunc, OpZExt, OpSExt, OpFPExt, OpFPTrunc,
		OpSIToFP, OpFPToSI, OpBitcast, OpPtrToInt, OpIntToPtr} {
		if !op.IsCast() {
			t.Errorf("%s should be a cast", op)
		}
	}
	if OpAdd.IsCast() || OpLoad.IsCast() {
		t.Error("non-casts misclassified")
	}
}

func TestIsVectorInstr(t *testing.T) {
	f := NewFunc("g", Void, []*Type{Vec(I32, 4), I32}, []string{"v", "s"})
	b := f.NewBlock("entry")
	bu := NewBuilder(b)
	vadd := bu.Add(f.Params[0], f.Params[0], "vadd")
	sadd := bu.Add(f.Params[1], f.Params[1], "sadd")
	ext := bu.ExtractElement(vadd, ConstInt(I32, 0), "ext")
	bu.Ret(nil)
	if !vadd.IsVectorInstr() {
		t.Error("vector add not classified as vector instruction")
	}
	if sadd.IsVectorInstr() {
		t.Error("scalar add misclassified")
	}
	// extractelement has a vector operand, so it is a vector instruction
	// even though its result is scalar (paper definition).
	if !ext.IsVectorInstr() {
		t.Error("extractelement should be a vector instruction")
	}
}

func TestUniqueNames(t *testing.T) {
	f := NewFunc("h", Void, nil, nil)
	b := f.NewBlock("entry")
	bu := NewBuilder(b)
	a := bu.Add(ConstInt(I32, 1), ConstInt(I32, 2), "x")
	c := bu.Add(ConstInt(I32, 1), ConstInt(I32, 2), "x")
	if a.Nam != "x" || c.Nam == "x" {
		t.Errorf("name collision not resolved: %q vs %q", a.Nam, c.Nam)
	}
}
