package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstInt(t *testing.T) {
	cases := []struct {
		ty   *Type
		v    int64
		want int64
	}{
		{I32, 42, 42},
		{I32, -1, -1},
		{I32, 1 << 40, 0}, // truncated
		{I8, 200, -56},    // wraps to signed
		{I1, 1, 1},
		{I1, 3, 1},
		{I64, math.MinInt64, math.MinInt64},
	}
	for _, c := range cases {
		got := ConstInt(c.ty, c.v)
		if got.Int() != c.want {
			t.Errorf("ConstInt(%s, %d).Int() = %d, want %d", c.ty, c.v, got.Int(), c.want)
		}
	}
}

func TestConstFloat(t *testing.T) {
	f := ConstFloat(F32, 1.5)
	if f.Float() != 1.5 {
		t.Errorf("F32 roundtrip: %v", f.Float())
	}
	d := ConstFloat(F64, math.Pi)
	if d.Float() != math.Pi {
		t.Errorf("F64 roundtrip: %v", d.Float())
	}
	// F32 rounds to float32 precision.
	p := ConstFloat(F32, math.Pi)
	if p.Float() != float64(float32(math.Pi)) {
		t.Errorf("F32 should round to float32: %v", p.Float())
	}
}

func TestConstVecAndSplat(t *testing.T) {
	v := ConstVec(Vec(I32, 4), []uint64{1, 2, 3, 4})
	if v.Ty.Len != 4 || v.Bits[2] != 3 {
		t.Error("ConstVec payload wrong")
	}
	s := ConstSplat(8, ConstInt(I32, 7))
	if s.Ty != Vec(I32, 8) {
		t.Error("splat type wrong")
	}
	for _, b := range s.Bits {
		if b != 7 {
			t.Error("splat lanes wrong")
		}
	}
	z := ConstZero(Vec(F32, 8))
	for _, b := range z.Bits {
		if b != 0 {
			t.Error("zero not zero")
		}
	}
}

func TestConstIdent(t *testing.T) {
	cases := []struct {
		c    *Const
		want string
	}{
		{ConstInt(I32, -5), "-5"},
		{ConstBool(true), "true"},
		{ConstBool(false), "false"},
		{ConstFloat(F32, 2.5), "2.5"},
		{ConstZero(Vec(I32, 4)), "zeroinitializer"},
		{UndefValue(Vec(F32, 4)), "undef"},
		{ConstVec(Vec(I32, 2), []uint64{1, 2}), "<i32 1, i32 2>"},
	}
	for _, c := range cases {
		if got := c.c.Ident(); got != c.want {
			t.Errorf("Ident() = %q, want %q", got, c.want)
		}
	}
}

// Property: SignExtend(TruncateToWidth(x, w), w) preserves values that fit
// in w bits and always produces a value congruent to x mod 2^w.
func TestSignExtendTruncateProperty(t *testing.T) {
	prop := func(x int64, wSel uint8) bool {
		widths := []int{1, 8, 16, 32, 64}
		w := widths[int(wSel)%len(widths)]
		tr := TruncateToWidth(uint64(x), w)
		se := SignExtend(tr, w)
		// Congruence mod 2^w.
		if TruncateToWidth(uint64(se), w) != tr {
			return false
		}
		// Range of a w-bit signed integer.
		if w < 64 {
			lo, hi := -(int64(1) << uint(w-1)), int64(1)<<uint(w-1)-1
			if se < lo || se > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: values that already fit in w bits are fixed points.
func TestSignExtendIdentityProperty(t *testing.T) {
	prop := func(x int32) bool {
		return SignExtend(TruncateToWidth(uint64(int64(x)), 32), 32) == int64(x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParamAndGlobalValues(t *testing.T) {
	p := &Param{Nam: "x", Ty: Vec(F32, 8), Index: 1}
	if p.Type() != Vec(F32, 8) || p.Ident() != "%x" {
		t.Error("param value interface wrong")
	}
	g := &Global{Nam: "buf", Elem: F32, Count: 16}
	if g.Type() != Ptr(F32) || g.Ident() != "@buf" {
		t.Error("global value interface wrong")
	}
}
