package ir

import (
	"fmt"
	"strings"
)

// String prints the whole module in LLVM-like textual form.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "@%s = global [%d x %s]\n", g.Nam, g.Count, g.Elem)
	}
	if len(m.Globals) > 0 {
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// String prints the function in LLVM-like textual form.
func (f *Func) String() string {
	var sb strings.Builder
	kw := "define"
	if f.IsDecl {
		kw = "declare"
	}
	fmt.Fprintf(&sb, "%s %s @%s(", kw, f.RetType(), f.Nam)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%s", p.Ty, p.Nam)
	}
	sb.WriteString(")")
	if f.IsDecl {
		sb.WriteString("\n")
		return sb.String()
	}
	sb.WriteString(" {\n")
	for i, b := range f.Blocks {
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "%s:\n", b.Nam)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func typedOperand(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return v.Type().String() + " " + v.Ident()
}

// String prints a single instruction in LLVM-like form.
func (in *Instr) String() string {
	lhs := ""
	if in.Ty != nil && !in.Ty.IsVoid() {
		lhs = "%" + in.Nam + " = "
	}
	op := func(i int) Value { return in.ops[i] }
	switch in.Op {
	case OpICmp, OpFCmp:
		return fmt.Sprintf("%s%s %s %s %s, %s", lhs, in.Op, in.Pred,
			op(0).Type(), op(0).Ident(), op(1).Ident())
	case OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", lhs,
			typedOperand(op(0)), typedOperand(op(1)), typedOperand(op(2)))
	case OpAlloca:
		return fmt.Sprintf("%salloca %s, i32 %d", lhs, in.AllocElem, in.AllocCount)
	case OpLoad:
		return fmt.Sprintf("%sload %s %s", lhs, op(0).Type(), op(0).Ident())
	case OpStore:
		return fmt.Sprintf("store %s, %s", typedOperand(op(0)), typedOperand(op(1)))
	case OpGEP:
		return fmt.Sprintf("%sgetelementptr %s %s, %s", lhs,
			op(0).Type(), op(0).Ident(), typedOperand(op(1)))
	case OpExtractElement:
		return fmt.Sprintf("%sextractelement %s, %s", lhs,
			typedOperand(op(0)), typedOperand(op(1)))
	case OpInsertElement:
		return fmt.Sprintf("%sinsertelement %s, %s, %s", lhs,
			typedOperand(op(0)), typedOperand(op(1)), typedOperand(op(2)))
	case OpShuffleVector:
		var mask []string
		for _, mi := range in.ShuffleMask {
			if mi < 0 {
				mask = append(mask, "i32 undef")
			} else {
				mask = append(mask, fmt.Sprintf("i32 %d", mi))
			}
		}
		return fmt.Sprintf("%sshufflevector %s, %s, <%d x i32> <%s>", lhs,
			typedOperand(op(0)), typedOperand(op(1)), len(in.ShuffleMask),
			strings.Join(mask, ", "))
	case OpPhi:
		var inc []string
		for i := range in.ops {
			inc = append(inc, fmt.Sprintf("[ %s, %%%s ]",
				in.ops[i].Ident(), in.Succs[i].Nam))
		}
		return fmt.Sprintf("%sphi %s %s", lhs, in.Ty, strings.Join(inc, ", "))
	case OpCall:
		var args []string
		for _, a := range in.ops {
			args = append(args, typedOperand(a))
		}
		return fmt.Sprintf("%scall %s @%s(%s)", lhs, in.Callee.RetType(),
			in.Callee.Nam, strings.Join(args, ", "))
	case OpBr:
		return fmt.Sprintf("br label %%%s", in.Succs[0].Nam)
	case OpCondBr:
		return fmt.Sprintf("br i1 %s, label %%%s, label %%%s",
			op(0).Ident(), in.Succs[0].Nam, in.Succs[1].Nam)
	case OpRet:
		if len(in.ops) == 0 {
			return "ret void"
		}
		return "ret " + typedOperand(op(0))
	case OpUnreachable:
		return "unreachable"
	default:
		if in.Op.IsCast() {
			return fmt.Sprintf("%s%s %s to %s", lhs, in.Op, typedOperand(op(0)), in.Ty)
		}
		// Binary ops.
		return fmt.Sprintf("%s%s %s %s, %s", lhs, in.Op, op(0).Type(),
			op(0).Ident(), op(1).Ident())
	}
}
