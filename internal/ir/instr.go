package ir

import "fmt"

// Op enumerates instruction opcodes. The set mirrors the LLVM 3.2
// instructions the VULFI paper manipulates, plus the casts and intrinsic
// call machinery the code generator needs.
type Op int

// Opcodes.
const (
	OpInvalid Op = iota

	// Integer arithmetic / bitwise.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFRem

	// Comparisons and selection.
	OpICmp
	OpFCmp
	OpSelect

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP

	// Vector element manipulation.
	OpExtractElement
	OpInsertElement
	OpShuffleVector

	// Casts.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpSIToFP
	OpFPToSI
	OpBitcast
	OpPtrToInt
	OpIntToPtr

	// Control flow and calls.
	OpPhi
	OpCall
	OpBr
	OpCondBr
	OpRet
	OpUnreachable

	// NumOps is one past the largest opcode: the length of a dense
	// per-opcode table indexed by Op (profilers, dispatch tables).
	NumOps
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpUDiv: "udiv", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFRem: "frem",
	OpICmp: "icmp", OpFCmp: "fcmp", OpSelect: "select",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpExtractElement: "extractelement", OpInsertElement: "insertelement",
	OpShuffleVector: "shufflevector",
	OpTrunc:         "trunc", OpZExt: "zext", OpSExt: "sext", OpFPTrunc: "fptrunc",
	OpFPExt: "fpext", OpSIToFP: "sitofp", OpFPToSI: "fptosi", OpBitcast: "bitcast",
	OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr",
	OpPhi: "phi", OpCall: "call", OpBr: "br", OpCondBr: "br", OpRet: "ret",
	OpUnreachable: "unreachable",
}

// String returns the LLVM mnemonic of the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the opcode terminates a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// IsCast reports whether the opcode is a cast.
func (o Op) IsCast() bool {
	switch o {
	case OpTrunc, OpZExt, OpSExt, OpFPTrunc, OpFPExt, OpSIToFP, OpFPToSI,
		OpBitcast, OpPtrToInt, OpIntToPtr:
		return true
	}
	return false
}

// Pred is a comparison predicate shared by icmp and fcmp.
type Pred int

// Comparison predicates. Integer predicates are signed unless prefixed U;
// float predicates are "ordered" (NaN compares false except for UNE).
const (
	PredInvalid Pred = iota
	IntEQ
	IntNE
	IntSLT
	IntSLE
	IntSGT
	IntSGE
	IntULT
	IntULE
	IntUGT
	IntUGE
	FloatOEQ
	FloatONE
	FloatOLT
	FloatOLE
	FloatOGT
	FloatOGE
	FloatUNE
)

var predNames = map[Pred]string{
	IntEQ: "eq", IntNE: "ne", IntSLT: "slt", IntSLE: "sle", IntSGT: "sgt",
	IntSGE: "sge", IntULT: "ult", IntULE: "ule", IntUGT: "ugt", IntUGE: "uge",
	FloatOEQ: "oeq", FloatONE: "one", FloatOLT: "olt", FloatOLE: "ole",
	FloatOGT: "ogt", FloatOGE: "oge", FloatUNE: "une",
}

// String returns the LLVM spelling of the predicate.
func (p Pred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// Use records a single use of a value: operand Index of instruction User.
type Use struct {
	User  *Instr
	Index int
}

// Instr is a single IR instruction. An instruction with a non-void type is
// itself the SSA value it defines (its "L-value" in the paper's terms).
type Instr struct {
	Op  Op
	Ty  *Type // result type; Void for store/br/ret/...
	Nam string

	ops  []Value
	uses []Use

	Parent *Block

	// Pred is the predicate for icmp/fcmp.
	Pred Pred
	// Callee is the called function for OpCall.
	Callee *Func
	// Succs are the successor blocks for br/condbr, or the incoming blocks
	// for phi (parallel to the operand list).
	Succs []*Block
	// AllocElem/AllocCount describe an alloca's storage.
	AllocElem  *Type
	AllocCount int
	// ShuffleMask is the constant lane mask of a shufflevector; -1 = undef.
	ShuffleMask []int
}

// Type implements Value.
func (in *Instr) Type() *Type { return in.Ty }

// Ident implements Value.
func (in *Instr) Ident() string { return "%" + in.Nam }

// NumOperands returns the operand count.
func (in *Instr) NumOperands() int { return len(in.ops) }

// Operand returns the i-th operand.
func (in *Instr) Operand(i int) Value { return in.ops[i] }

// Operands returns a copy of the operand list.
func (in *Instr) Operands() []Value {
	out := make([]Value, len(in.ops))
	copy(out, in.ops)
	return out
}

// AddOperand appends an operand, maintaining use lists.
func (in *Instr) AddOperand(v Value) {
	in.ops = append(in.ops, v)
	addUse(v, Use{in, len(in.ops) - 1})
}

// SetOperand replaces the i-th operand, maintaining use lists.
func (in *Instr) SetOperand(i int, v Value) {
	if old := in.ops[i]; old != nil {
		removeUse(old, Use{in, i})
	}
	in.ops[i] = v
	addUse(v, Use{in, i})
}

// Uses returns a copy of the list of uses of this instruction's result.
func (in *Instr) Uses() []Use {
	out := make([]Use, len(in.uses))
	copy(out, in.uses)
	return out
}

// NumUses returns the number of recorded uses of this instruction's result.
func (in *Instr) NumUses() int { return len(in.uses) }

func (in *Instr) addUse(u Use)    { in.uses = append(in.uses, u) }
func (in *Instr) removeUse(u Use) { in.uses = deleteUse(in.uses, u) }

// useTracked is implemented by values that record their uses.
type useTracked interface {
	addUse(Use)
	removeUse(Use)
}

func addUse(v Value, u Use) {
	if t, ok := v.(useTracked); ok {
		t.addUse(u)
	}
}

func removeUse(v Value, u Use) {
	if t, ok := v.(useTracked); ok {
		t.removeUse(u)
	}
}

func deleteUse(uses []Use, u Use) []Use {
	for i, x := range uses {
		if x == u {
			return append(uses[:i], uses[i+1:]...)
		}
	}
	return uses
}

// ReplaceAllUsesWith redirects every use of this instruction's result to nv.
// This is the rewrite step of VULFI's instrumentation workflow (Figure 4:
// "replaces the original vector register with its new cloned and
// instrumented version, redirecting all the users").
func (in *Instr) ReplaceAllUsesWith(nv Value) {
	for len(in.uses) > 0 {
		u := in.uses[len(in.uses)-1]
		u.User.SetOperand(u.Index, nv)
	}
}

// ReplaceUsesExcept redirects uses of this instruction to nv, skipping uses
// by instructions in the skip set (used so the instrumentation chain itself
// keeps reading the original value).
func (in *Instr) ReplaceUsesExcept(nv Value, skip map[*Instr]bool) {
	pending := in.Uses()
	for _, u := range pending {
		if skip[u.User] {
			continue
		}
		u.User.SetOperand(u.Index, nv)
	}
}

// dropAllOperandUses removes this instruction's entries from its operands'
// use lists; called when the instruction is removed from a block.
func (in *Instr) dropAllOperandUses() {
	for i, op := range in.ops {
		if op != nil {
			removeUse(op, Use{in, i})
		}
	}
}

// IsVectorInstr reports whether the instruction has at least one operand of
// vector type or produces a vector (the paper's definition of a "vector
// instruction": at least one vector type operand).
func (in *Instr) IsVectorInstr() bool {
	if in.Ty != nil && in.Ty.IsVector() {
		return true
	}
	for _, op := range in.ops {
		if op != nil && op.Type().IsVector() {
			return true
		}
	}
	return false
}

// Parameters also participate in the use-def graph so that forward slices
// can start at parameter values.

func (p *Param) addUse(u Use)    { p.uses = append(p.uses, u) }
func (p *Param) removeUse(u Use) { p.uses = deleteUse(p.uses, u) }

// Uses returns the recorded uses of a parameter.
func (p *Param) Uses() []Use {
	out := make([]Use, len(p.uses))
	copy(out, p.uses)
	return out
}
