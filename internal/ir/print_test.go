package ir

import (
	"strings"
	"testing"
)

func TestPrintInstructions(t *testing.T) {
	f := NewFunc("p", Void, []*Type{Vec(F32, 4), Ptr(F32), I32},
		[]string{"v", "p", "n"})
	b := f.NewBlock("entry")
	bu := NewBuilder(b)

	cases := []struct {
		in   *Instr
		want string
	}{
		{bu.FAdd(f.Params[0], f.Params[0], "s"),
			"%s = fadd <4 x float> %v, %v"},
		{bu.ICmp(IntSLT, f.Params[2], ConstInt(I32, 8), "c"),
			"%c = icmp slt i32 %n, 8"},
		{bu.GEP(f.Params[1], f.Params[2], "a"),
			"%a = getelementptr float* %p, i32 %n"},
		{bu.Load(f.Params[1], "l"),
			"%l = load float* %p"},
		{bu.ExtractElement(f.Params[0], ConstInt(I32, 2), "e"),
			"%e = extractelement <4 x float> %v, i32 2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}

	st := bu.Store(ConstFloat(F32, 1), f.Params[1])
	if got := st.String(); got != "store float 1, float* %p" {
		t.Errorf("store prints %q", got)
	}
	sh := bu.ShuffleVector(f.Params[0], UndefValue(Vec(F32, 4)), []int{0, 0, 0, 0}, "b")
	if !strings.Contains(sh.String(), "shufflevector <4 x float> %v, <4 x float> undef") {
		t.Errorf("shuffle prints %q", sh.String())
	}
	bu.Ret(nil)

	text := f.String()
	for _, frag := range []string{
		"define void @p(<4 x float> %v, float* %p, i32 %n) {",
		"entry:", "ret void",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("function print missing %q:\n%s", frag, text)
		}
	}
}

func TestPrintModuleAndDecl(t *testing.T) {
	m := NewModule("pm")
	m.AddGlobal(&Global{Nam: "buf", Elem: F32, Count: 8})
	d := NewDecl("llvm.sqrt.v4f32", Vec(F32, 4), Vec(F32, 4))
	m.AddFunc(d)
	text := m.String()
	for _, frag := range []string{
		"; module pm",
		"@buf = global [8 x float]",
		"declare <4 x float> @llvm.sqrt.v4f32(<4 x float> %arg0)",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("module print missing %q:\n%s", frag, text)
		}
	}
	if !d.Intrinsic {
		t.Error("llvm.* decl not marked intrinsic")
	}
}

func TestPrintPhiAndBranches(t *testing.T) {
	m := validFunc()
	text := m.String()
	for _, frag := range []string{
		"%i = phi i32 [ 0, %entry ], [ %i2, %loop ]",
		"br i1 %c, label %loop, label %exit",
		"br label %loop",
		"ret i32 %i2",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("missing %q in:\n%s", frag, text)
		}
	}
}
