package ir

// CloneModule deep-copies a module: new functions, blocks and
// instructions with all internal references (operands, phi incomings,
// branch targets, callees) remapped into the clone. Declarations are
// cloned shallowly (they have no bodies). Globals are shared — they
// describe storage shape, not state.
//
// Cloning lets a caller instrument several site categories from one
// compile, or mutate a module per experiment without recompiling.
func CloneModule(m *Module) *Module {
	out := NewModule(m.Name)
	out.Globals = append(out.Globals, m.Globals...)

	funcMap := map[*Func]*Func{}
	for _, f := range m.Funcs {
		nf := &Func{
			Nam: f.Nam, Sig: f.Sig, IsDecl: f.IsDecl, Intrinsic: f.Intrinsic,
		}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, &Param{Nam: p.Nam, Ty: p.Ty, Index: p.Index})
		}
		funcMap[f] = nf
		out.AddFunc(nf)
	}

	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		cloneFuncBody(f, funcMap[f], funcMap)
	}
	return out
}

// cloneFuncBody copies f's blocks and instructions into nf.
func cloneFuncBody(f, nf *Func, funcMap map[*Func]*Func) {
	blockMap := map[*Block]*Block{}
	for _, b := range f.Blocks {
		blockMap[b] = nf.NewBlock(b.Nam)
	}
	instrMap := map[*Instr]*Instr{}

	// First pass: create instructions without operands.
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Ty: in.Ty, Nam: in.Nam, Pred: in.Pred,
				AllocElem: in.AllocElem, AllocCount: in.AllocCount,
			}
			if in.ShuffleMask != nil {
				ni.ShuffleMask = append([]int(nil), in.ShuffleMask...)
			}
			if in.Callee != nil {
				ni.Callee = funcMap[in.Callee]
			}
			for _, s := range in.Succs {
				ni.Succs = append(ni.Succs, blockMap[s])
			}
			instrMap[in] = ni
			nb.Append(ni)
		}
	}

	remap := func(v Value) Value {
		switch x := v.(type) {
		case *Instr:
			return instrMap[x]
		case *Param:
			return nf.Params[x.Index]
		case *Func:
			return funcMap[x]
		case *Block:
			return blockMap[x]
		default:
			return v // constants and globals are shared
		}
	}

	// Second pass: wire operands through the maps (maintains use lists).
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ni := instrMap[in]
			for i := 0; i < in.NumOperands(); i++ {
				ni.AddOperand(remap(in.Operand(i)))
			}
		}
	}
}
