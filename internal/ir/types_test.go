package ir

import "testing"

func TestTypeInterning(t *testing.T) {
	if Ptr(F32) != Ptr(F32) {
		t.Error("pointer types are not interned")
	}
	if Vec(I32, 8) != Vec(I32, 8) {
		t.Error("vector types are not interned")
	}
	if Vec(I32, 8) == Vec(I32, 4) {
		t.Error("distinct lane counts must be distinct types")
	}
	if Vec(I32, 8) == Vec(F32, 8) {
		t.Error("distinct lane types must be distinct types")
	}
	if FuncOf(Void, I32, F32) != FuncOf(Void, I32, F32) {
		t.Error("function types are not interned")
	}
	if FuncOf(Void, I32) == FuncOf(I32, I32) {
		t.Error("return type must distinguish function types")
	}
}

func TestTypeSpelling(t *testing.T) {
	cases := []struct {
		ty   *Type
		want string
	}{
		{I1, "i1"},
		{I8, "i8"},
		{I32, "i32"},
		{I64, "i64"},
		{F32, "float"},
		{F64, "double"},
		{Void, "void"},
		{Ptr(F32), "float*"},
		{Vec(F32, 8), "<8 x float>"},
		{Vec(I32, 4), "<4 x i32>"},
		{Ptr(Vec(I32, 8)), "<8 x i32>*"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestByteSize(t *testing.T) {
	cases := []struct {
		ty   *Type
		want int
	}{
		{I1, 1}, {I8, 1}, {I16, 2}, {I32, 4}, {I64, 8},
		{F32, 4}, {F64, 8},
		{Ptr(I32), 8},
		{Vec(F32, 8), 32},
		{Vec(I32, 4), 16},
		{Vec(F64, 8), 64},
	}
	for _, c := range cases {
		if got := c.ty.ByteSize(); got != c.want {
			t.Errorf("%s.ByteSize() = %d, want %d", c.ty, got, c.want)
		}
	}
}

func TestScalarAndLanes(t *testing.T) {
	v := Vec(F32, 8)
	if v.Scalar() != F32 || v.Lanes() != 8 {
		t.Errorf("vector Scalar/Lanes wrong: %s %d", v.Scalar(), v.Lanes())
	}
	if I32.Scalar() != I32 || I32.Lanes() != 1 {
		t.Error("scalar Scalar/Lanes wrong")
	}
	if Vec(I64, 8).ScalarBits() != 64 || Ptr(I8).ScalarBits() != 64 {
		t.Error("ScalarBits wrong")
	}
}

func TestTypePredicates(t *testing.T) {
	if !I32.IsInt() || I32.IsFloat() || I32.IsVector() || I32.IsPointer() {
		t.Error("I32 predicates wrong")
	}
	if !F64.IsFloat() || F64.IsInt() {
		t.Error("F64 predicates wrong")
	}
	if !Ptr(I8).IsPointer() || !Vec(I8, 16).IsVector() || !Void.IsVoid() {
		t.Error("ptr/vec/void predicates wrong")
	}
}

func TestVecPanicsOnBadInput(t *testing.T) {
	mustPanic(t, func() { Vec(I32, 0) })
	mustPanic(t, func() { Vec(Void, 4) })
	mustPanic(t, func() { Vec(Vec(I32, 2), 4) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
