// Package ir implements a typed, SSA-form intermediate representation
// modeled on LLVM IR. It provides the structural substrate VULFI operates
// on: integer/float/pointer/vector types, LLVM-shaped instructions
// (including getelementptr, extractelement, insertelement, shufflevector
// and intrinsic calls), an explicit use-def graph, a builder, a verifier
// and a textual printer.
//
// The representation is deliberately close to LLVM 3.2-era IR, which is
// what the VULFI paper targets: fault-site classification and the
// instrumentation rewrite depend only on instruction kinds, operand types
// and use-def edges, all of which are reproduced here.
package ir

import (
	"fmt"
	"strings"
	"sync"
)

// TypeKind discriminates the Type variants.
type TypeKind int

// Type kinds.
const (
	VoidKind TypeKind = iota
	IntKind
	FloatKind
	PointerKind
	VectorKind
	FuncKind
	LabelKind
)

// Type describes an IR type. Types are immutable and interned: equal types
// are pointer-identical, so == is a valid equality test.
type Type struct {
	Kind     TypeKind
	Bits     int     // IntKind: 1/8/16/32/64; FloatKind: 32/64
	Elem     *Type   // PointerKind: pointee; VectorKind: lane type
	Len      int     // VectorKind: lane count
	Ret      *Type   // FuncKind
	Params   []*Type // FuncKind
	Variadic bool    // FuncKind
	name     string
}

// Interned primitive types.
var (
	Void  = &Type{Kind: VoidKind, name: "void"}
	I1    = &Type{Kind: IntKind, Bits: 1, name: "i1"}
	I8    = &Type{Kind: IntKind, Bits: 8, name: "i8"}
	I16   = &Type{Kind: IntKind, Bits: 16, name: "i16"}
	I32   = &Type{Kind: IntKind, Bits: 32, name: "i32"}
	I64   = &Type{Kind: IntKind, Bits: 64, name: "i64"}
	F32   = &Type{Kind: FloatKind, Bits: 32, name: "float"}
	F64   = &Type{Kind: FloatKind, Bits: 64, name: "double"}
	Label = &Type{Kind: LabelKind, name: "label"}
)

var (
	internMu  sync.Mutex
	ptrCache  = map[*Type]*Type{}
	vecCache  = map[vecKey]*Type{}
	funcCache = map[string]*Type{}
)

type vecKey struct {
	elem *Type
	n    int
}

// Ptr returns the pointer type to elem.
func Ptr(elem *Type) *Type {
	internMu.Lock()
	defer internMu.Unlock()
	if t, ok := ptrCache[elem]; ok {
		return t
	}
	t := &Type{Kind: PointerKind, Elem: elem, name: elem.String() + "*"}
	ptrCache[elem] = t
	return t
}

// Vec returns the vector type <n x elem>. Lane type must be int, float or
// pointer; n must be positive.
func Vec(elem *Type, n int) *Type {
	if n <= 0 {
		panic(fmt.Sprintf("ir.Vec: invalid lane count %d", n))
	}
	switch elem.Kind {
	case IntKind, FloatKind, PointerKind:
	default:
		panic("ir.Vec: lane type must be int, float or pointer, got " + elem.String())
	}
	k := vecKey{elem, n}
	internMu.Lock()
	defer internMu.Unlock()
	if t, ok := vecCache[k]; ok {
		return t
	}
	t := &Type{Kind: VectorKind, Elem: elem, Len: n,
		name: fmt.Sprintf("<%d x %s>", n, elem.String())}
	vecCache[k] = t
	return t
}

// FuncOf returns the function type ret(params...).
func FuncOf(ret *Type, params ...*Type) *Type {
	var sb strings.Builder
	sb.WriteString(ret.String())
	sb.WriteString(" (")
	for i, p := range params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(")")
	key := sb.String()
	internMu.Lock()
	defer internMu.Unlock()
	if t, ok := funcCache[key]; ok {
		return t
	}
	t := &Type{Kind: FuncKind, Ret: ret, Params: params, name: key}
	funcCache[key] = t
	return t
}

// String returns the LLVM-style spelling of the type.
func (t *Type) String() string { return t.name }

// IsInt reports whether t is a (scalar) integer type.
func (t *Type) IsInt() bool { return t.Kind == IntKind }

// IsFloat reports whether t is a (scalar) floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == FloatKind }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == PointerKind }

// IsVector reports whether t is a vector type.
func (t *Type) IsVector() bool { return t.Kind == VectorKind }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t.Kind == VoidKind }

// Scalar returns the lane type for vectors and t itself otherwise.
func (t *Type) Scalar() *Type {
	if t.Kind == VectorKind {
		return t.Elem
	}
	return t
}

// Lanes returns the lane count for vectors and 1 otherwise.
func (t *Type) Lanes() int {
	if t.Kind == VectorKind {
		return t.Len
	}
	return 1
}

// ScalarBits returns the significant bit width of a lane of t. Pointers
// are 64-bit in this IR's model.
func (t *Type) ScalarBits() int {
	s := t.Scalar()
	switch s.Kind {
	case IntKind, FloatKind:
		return s.Bits
	case PointerKind:
		return 64
	}
	panic("ir: ScalarBits on non-scalar type " + t.String())
}

// ByteSize returns the in-memory size of a value of type t in bytes.
// i1 occupies one byte, matching LLVM's memory layout for i1 loads/stores.
func (t *Type) ByteSize() int {
	switch t.Kind {
	case IntKind:
		if t.Bits == 1 {
			return 1
		}
		return t.Bits / 8
	case FloatKind:
		return t.Bits / 8
	case PointerKind:
		return 8
	case VectorKind:
		return t.Elem.ByteSize() * t.Len
	}
	panic("ir: ByteSize of unsized type " + t.String())
}
