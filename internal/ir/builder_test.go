package ir

import "testing"

func newTestBuilder() (*Func, *Builder) {
	f := NewFunc("t", Void, []*Type{I32, F32, Ptr(I32), Vec(F32, 4)},
		[]string{"i", "f", "p", "v"})
	return f, NewBuilder(f.NewBlock("entry"))
}

func TestBuilderTypePanics(t *testing.T) {
	f, bu := newTestBuilder()
	i, fl, p, v := f.Params[0], f.Params[1], f.Params[2], f.Params[3]

	mustPanic(t, func() { bu.Add(i, fl, "") })               // mixed types
	mustPanic(t, func() { bu.Load(i, "") })                  // non-pointer load
	mustPanic(t, func() { bu.Store(fl, p) })                 // float into i32*
	mustPanic(t, func() { bu.GEP(i, i, "") })                // non-pointer base
	mustPanic(t, func() { bu.GEP(p, fl, "") })               // float index
	mustPanic(t, func() { bu.ExtractElement(i, i, "") })     // non-vector
	mustPanic(t, func() { bu.InsertElement(v, i, i, "") })   // wrong elem type
	mustPanic(t, func() { bu.ShuffleVector(v, i, nil, "") }) // mismatched
	mustPanic(t, func() { bu.CondBr(i, nil, nil) })          // non-i1 cond
	mustPanic(t, func() { bu.Cast(OpAdd, i, I64, "") })      // not a cast op
	mustPanic(t, func() { bu.Select(i, fl, fl, "") })        // arm/cond mix is ok? cond i32
}

func TestBuilderSelectArmMismatchPanics(t *testing.T) {
	f, bu := newTestBuilder()
	cond := bu.ICmp(IntEQ, f.Params[0], f.Params[0], "c")
	mustPanic(t, func() { bu.Select(cond, f.Params[0], f.Params[1], "") })
}

func TestBuilderVoidCallHasNoName(t *testing.T) {
	m := NewModule("t")
	decl := NewDecl("ext", Void, I32)
	m.AddFunc(decl)
	f, bu := newTestBuilder()
	m.AddFunc(f)
	call := bu.Call(decl, "ignored", f.Params[0])
	if call.Nam != "" {
		t.Fatalf("void call should not get a result name, got %q", call.Nam)
	}
}

func TestAddIncomingPanicsOnNonPhi(t *testing.T) {
	f, bu := newTestBuilder()
	a := bu.Add(f.Params[0], f.Params[0], "a")
	mustPanic(t, func() { AddIncoming(a, f.Params[0], f.Entry()) })
}

func TestModuleDuplicateFunctionPanics(t *testing.T) {
	m := NewModule("t")
	m.AddFunc(NewDecl("f", Void))
	mustPanic(t, func() { m.AddFunc(NewDecl("f", Void)) })
}

func TestBlockHelpers(t *testing.T) {
	f, bu := newTestBuilder()
	entry := f.Entry()
	next := f.NewBlock("next")
	bu.Br(next)
	bu.SetBlock(next)
	phi := bu.Phi(I32, "p")
	AddIncoming(phi, ConstInt(I32, 1), entry)
	bu.Add(phi, phi, "a")
	bu.Ret(nil)

	if got := entry.Succs(); len(got) != 1 || got[0] != next {
		t.Fatal("Succs wrong")
	}
	if ph := next.Phis(); len(ph) != 1 || ph[0] != phi {
		t.Fatal("Phis wrong")
	}
	if entry.Terminator() == nil || entry.Terminator().Op != OpBr {
		t.Fatal("Terminator wrong")
	}
	if f.BlockByName("next") != next || f.BlockByName("nope") != nil {
		t.Fatal("BlockByName wrong")
	}
	if len(f.Instrs()) != 4 {
		t.Fatalf("Instrs count = %d", len(f.Instrs()))
	}
}
