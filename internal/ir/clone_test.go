package ir

import (
	"strings"
	"testing"
)

func TestCloneModulePrintsIdentically(t *testing.T) {
	m := validFunc() // the counted-loop module from verify_test
	c := CloneModule(m)
	if err := c.Verify(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if m.String() != c.String() {
		t.Fatalf("clone prints differently:\n--- original\n%s\n--- clone\n%s", m, c)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := validFunc()
	c := CloneModule(m)
	// Mutating the clone must not touch the original.
	cf := c.Func("f")
	var add *Instr
	for _, in := range cf.Instrs() {
		if in.Op == OpAdd {
			add = in
		}
	}
	add.SetOperand(1, ConstInt(I32, 99))
	if strings.Contains(m.String(), "99") {
		t.Fatal("mutating the clone leaked into the original")
	}
	if !strings.Contains(c.String(), "99") {
		t.Fatal("clone mutation lost")
	}
}

func TestCloneRemapsEverything(t *testing.T) {
	m := validFunc()
	c := CloneModule(m)
	orig := map[*Instr]bool{}
	for _, f := range m.Funcs {
		for _, in := range f.Instrs() {
			orig[in] = true
		}
	}
	for _, f := range c.Funcs {
		if f.IsDecl {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if orig[in] {
					t.Fatal("clone shares an instruction with the original")
				}
				for i := 0; i < in.NumOperands(); i++ {
					if op, ok := in.Operand(i).(*Instr); ok && orig[op] {
						t.Fatalf("clone instruction %s references original operand", in)
					}
				}
				for _, s := range in.Succs {
					if s.Func != f {
						t.Fatal("clone branch targets foreign block")
					}
				}
			}
		}
	}
}

func TestCloneCallsRemapCallee(t *testing.T) {
	m := NewModule("t")
	callee := NewFunc("g", I32, []*Type{I32}, []string{"x"})
	m.AddFunc(callee)
	gb := NewBuilder(callee.NewBlock("entry"))
	gb.Ret(callee.Params[0])

	caller := NewFunc("f", I32, []*Type{I32}, []string{"x"})
	m.AddFunc(caller)
	fb := NewBuilder(caller.NewBlock("entry"))
	r := fb.Call(callee, "r", caller.Params[0])
	fb.Ret(r)

	c := CloneModule(m)
	var call *Instr
	for _, in := range c.Func("f").Instrs() {
		if in.Op == OpCall {
			call = in
		}
	}
	if call.Callee != c.Func("g") {
		t.Fatal("clone call still targets the original callee")
	}
}
