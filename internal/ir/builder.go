package ir

import "fmt"

// Builder constructs instructions at the end of a block, or — for
// instrumentation passes — at a fixed position inside one.
type Builder struct {
	blk *Block
	// before, when set, makes emits insert before that instruction.
	before *Instr
	// last tracks the previously emitted instruction for insert-after
	// chains.
	last *Instr
	// inserting marks position mode (before/after) rather than append.
	inserting bool
}

// NewBuilder returns a builder positioned at the end of b.
func NewBuilder(b *Block) *Builder { return &Builder{blk: b} }

// NewBuilderBefore returns a builder that inserts instructions
// immediately before pos (in emission order).
func NewBuilderBefore(pos *Instr) *Builder {
	return &Builder{blk: pos.Parent, before: pos, inserting: true}
}

// NewBuilderAfter returns a builder that inserts instructions immediately
// after pos (in emission order).
func NewBuilderAfter(pos *Instr) *Builder {
	return &Builder{blk: pos.Parent, last: pos, inserting: true}
}

// SetBlock repositions the builder at the end of b.
func (bu *Builder) SetBlock(b *Block) {
	bu.blk = b
	bu.before, bu.last, bu.inserting = nil, nil, false
}

// Block returns the builder's current block.
func (bu *Builder) Block() *Block { return bu.blk }

func (bu *Builder) name(hint string) string {
	if hint != "" {
		return bu.blk.Func.uniqueName(hint)
	}
	return bu.blk.Func.nextName("t")
}

func (bu *Builder) emit(in *Instr) *Instr {
	switch {
	case !bu.inserting:
		bu.blk.Append(in)
	case bu.before != nil:
		bu.blk.InsertBefore(in, bu.before)
	default:
		bu.blk.InsertAfter(in, bu.last)
		bu.last = in
	}
	return in
}

func newInstr(op Op, ty *Type, name string, ops ...Value) *Instr {
	in := &Instr{Op: op, Ty: ty, Nam: name}
	for _, v := range ops {
		in.AddOperand(v)
	}
	return in
}

// Bin emits a binary arithmetic/bitwise instruction. Operand types must
// match; the result has the operand type.
func (bu *Builder) Bin(op Op, x, y Value, name string) *Instr {
	if x.Type() != y.Type() {
		panic(fmt.Sprintf("ir.Bin %s: operand type mismatch %s vs %s",
			op, x.Type(), y.Type()))
	}
	return bu.emit(newInstr(op, x.Type(), bu.name(name), x, y))
}

// Convenience binary emitters.
func (bu *Builder) Add(x, y Value, name string) *Instr  { return bu.Bin(OpAdd, x, y, name) }
func (bu *Builder) Sub(x, y Value, name string) *Instr  { return bu.Bin(OpSub, x, y, name) }
func (bu *Builder) Mul(x, y Value, name string) *Instr  { return bu.Bin(OpMul, x, y, name) }
func (bu *Builder) SDiv(x, y Value, name string) *Instr { return bu.Bin(OpSDiv, x, y, name) }
func (bu *Builder) SRem(x, y Value, name string) *Instr { return bu.Bin(OpSRem, x, y, name) }
func (bu *Builder) And(x, y Value, name string) *Instr  { return bu.Bin(OpAnd, x, y, name) }
func (bu *Builder) Or(x, y Value, name string) *Instr   { return bu.Bin(OpOr, x, y, name) }
func (bu *Builder) Xor(x, y Value, name string) *Instr  { return bu.Bin(OpXor, x, y, name) }
func (bu *Builder) Shl(x, y Value, name string) *Instr  { return bu.Bin(OpShl, x, y, name) }
func (bu *Builder) LShr(x, y Value, name string) *Instr { return bu.Bin(OpLShr, x, y, name) }
func (bu *Builder) AShr(x, y Value, name string) *Instr { return bu.Bin(OpAShr, x, y, name) }
func (bu *Builder) FAdd(x, y Value, name string) *Instr { return bu.Bin(OpFAdd, x, y, name) }
func (bu *Builder) FSub(x, y Value, name string) *Instr { return bu.Bin(OpFSub, x, y, name) }
func (bu *Builder) FMul(x, y Value, name string) *Instr { return bu.Bin(OpFMul, x, y, name) }
func (bu *Builder) FDiv(x, y Value, name string) *Instr { return bu.Bin(OpFDiv, x, y, name) }

// ICmp emits an integer comparison; the result is i1 (or a vector of i1
// for vector operands).
func (bu *Builder) ICmp(pred Pred, x, y Value, name string) *Instr {
	rt := I1
	if x.Type().IsVector() {
		rt = Vec(I1, x.Type().Len)
	}
	in := newInstr(OpICmp, rt, bu.name(name), x, y)
	in.Pred = pred
	return bu.emit(in)
}

// FCmp emits a float comparison (i1 / vector-of-i1 result).
func (bu *Builder) FCmp(pred Pred, x, y Value, name string) *Instr {
	rt := I1
	if x.Type().IsVector() {
		rt = Vec(I1, x.Type().Len)
	}
	in := newInstr(OpFCmp, rt, bu.name(name), x, y)
	in.Pred = pred
	return bu.emit(in)
}

// Select emits select cond, t, f. cond is i1 or a vector of i1 matching
// the value lane count (lane-wise blend).
func (bu *Builder) Select(cond, t, f Value, name string) *Instr {
	if t.Type() != f.Type() {
		panic("ir.Select: arm type mismatch")
	}
	ct := cond.Type()
	if ct != I1 && !(ct.IsVector() && ct.Elem == I1) {
		panic("ir.Select: condition must be i1 or a vector of i1, got " + ct.String())
	}
	return bu.emit(newInstr(OpSelect, t.Type(), bu.name(name), cond, t, f))
}

// Alloca emits stack storage for count cells of type elem; the result is
// a pointer to elem.
func (bu *Builder) Alloca(elem *Type, count int, name string) *Instr {
	in := newInstr(OpAlloca, Ptr(elem), bu.name(name))
	in.AllocElem = elem
	in.AllocCount = count
	return bu.emit(in)
}

// Load emits a load through ptr; the result type is the pointee type.
func (bu *Builder) Load(ptr Value, name string) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic("ir.Load: operand is not a pointer: " + pt.String())
	}
	return bu.emit(newInstr(OpLoad, pt.Elem, bu.name(name), ptr))
}

// Store emits a store of val through ptr. Stores have no L-value; per the
// paper's fault model the *stored value* operand is the injection target.
func (bu *Builder) Store(val, ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() || pt.Elem != val.Type() {
		panic(fmt.Sprintf("ir.Store: type mismatch storing %s through %s",
			val.Type(), pt))
	}
	return bu.emit(newInstr(OpStore, Void, "", val, ptr))
}

// GEP emits getelementptr: base pointer plus element index (scaled by the
// pointee size). The result has the same pointer type as base.
func (bu *Builder) GEP(base, index Value, name string) *Instr {
	if !base.Type().IsPointer() {
		panic("ir.GEP: base is not a pointer")
	}
	if !index.Type().IsInt() {
		panic("ir.GEP: index is not an integer")
	}
	return bu.emit(newInstr(OpGEP, base.Type(), bu.name(name), base, index))
}

// ExtractElement emits extraction of the idx-th lane of vec.
func (bu *Builder) ExtractElement(vec, idx Value, name string) *Instr {
	vt := vec.Type()
	if !vt.IsVector() {
		panic("ir.ExtractElement: operand is not a vector")
	}
	return bu.emit(newInstr(OpExtractElement, vt.Elem, bu.name(name), vec, idx))
}

// InsertElement emits insertion of elt at lane idx of vec.
func (bu *Builder) InsertElement(vec, elt, idx Value, name string) *Instr {
	vt := vec.Type()
	if !vt.IsVector() || vt.Elem != elt.Type() {
		panic("ir.InsertElement: type mismatch")
	}
	return bu.emit(newInstr(OpInsertElement, vt, bu.name(name), vec, elt, idx))
}

// ShuffleVector emits a shuffle of v1/v2 with a constant lane mask
// (-1 lanes produce undef).
func (bu *Builder) ShuffleVector(v1, v2 Value, mask []int, name string) *Instr {
	vt := v1.Type()
	if !vt.IsVector() || v2.Type() != vt {
		panic("ir.ShuffleVector: operands must be vectors of the same type")
	}
	in := newInstr(OpShuffleVector, Vec(vt.Elem, len(mask)), bu.name(name), v1, v2)
	in.ShuffleMask = append([]int(nil), mask...)
	return bu.emit(in)
}

// Broadcast emits the uniform-variable broadcast pattern of the paper's
// Figure 9: insertelement into lane 0 of undef, then shufflevector with a
// zeroinitializer mask. Returns the broadcast vector.
func (bu *Builder) Broadcast(scalar Value, lanes int, name string) *Instr {
	if name == "" {
		name = bu.blk.Func.nextName("t")
	}
	vt := Vec(scalar.Type(), lanes)
	init := bu.InsertElement(UndefValue(vt), scalar, ConstInt(I32, 0),
		name+"_broadcast_init")
	mask := make([]int, lanes)
	return bu.ShuffleVector(init, UndefValue(vt), mask, name+"_broadcast")
}

// Cast emits a cast instruction of the given opcode to type to.
func (bu *Builder) Cast(op Op, v Value, to *Type, name string) *Instr {
	if !op.IsCast() {
		panic("ir.Cast: not a cast opcode: " + op.String())
	}
	return bu.emit(newInstr(op, to, bu.name(name), v))
}

// Phi emits an empty phi of type ty; use AddIncoming to populate it.
func (bu *Builder) Phi(ty *Type, name string) *Instr {
	return bu.emit(newInstr(OpPhi, ty, bu.name(name)))
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir.AddIncoming: not a phi")
	}
	phi.AddOperand(v)
	phi.Succs = append(phi.Succs, pred)
}

// Call emits a call to fn with args.
func (bu *Builder) Call(fn *Func, name string, args ...Value) *Instr {
	nm := ""
	if !fn.RetType().IsVoid() {
		nm = bu.name(name)
	}
	in := newInstr(OpCall, fn.RetType(), nm, args...)
	in.Callee = fn
	return bu.emit(in)
}

// Br emits an unconditional branch.
func (bu *Builder) Br(target *Block) *Instr {
	in := newInstr(OpBr, Void, "")
	in.Succs = []*Block{target}
	return bu.emit(in)
}

// CondBr emits a conditional branch on an i1 condition.
func (bu *Builder) CondBr(cond Value, then, els *Block) *Instr {
	if cond.Type() != I1 {
		panic("ir.CondBr: condition must be i1")
	}
	in := newInstr(OpCondBr, Void, "", cond)
	in.Succs = []*Block{then, els}
	return bu.emit(in)
}

// Ret emits a return; v is nil for void functions.
func (bu *Builder) Ret(v Value) *Instr {
	if v == nil {
		return bu.emit(newInstr(OpRet, Void, ""))
	}
	return bu.emit(newInstr(OpRet, Void, "", v))
}

// Unreachable emits an unreachable terminator.
func (bu *Builder) Unreachable() *Instr {
	return bu.emit(newInstr(OpUnreachable, Void, ""))
}
