package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural and type well-formedness of the module:
// terminated blocks, per-opcode operand typing, phi/predecessor agreement
// and call-signature agreement. It returns all violations found.
func (m *Module) Verify() error {
	var errs []error
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		if err := f.Verify(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Verify checks a single function definition.
func (f *Func) Verify() error {
	var errs []error
	bad := func(in *Instr, format string, args ...any) {
		where := fmt.Sprintf("@%s", f.Nam)
		if in != nil && in.Parent != nil {
			where = fmt.Sprintf("@%s/%s: %s", f.Nam, in.Parent.Nam, in)
		}
		errs = append(errs, fmt.Errorf("%s: %s", where, fmt.Sprintf(format, args...)))
	}

	if len(f.Blocks) == 0 {
		return fmt.Errorf("@%s: function definition has no blocks", f.Nam)
	}

	preds := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}

	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			bad(nil, "block %s is not terminated", b.Nam)
			continue
		}
		seenNonPhi := false
		for idx, in := range b.Instrs {
			if in.Op == OpPhi {
				if seenNonPhi {
					bad(in, "phi after non-phi instruction")
				}
			} else {
				seenNonPhi = true
			}
			if in.Op.IsTerminator() && idx != len(b.Instrs)-1 {
				bad(in, "terminator in the middle of block")
			}
			for i, opv := range in.ops {
				if opv == nil {
					bad(in, "nil operand %d", i)
				}
			}
			verifyInstr(in, preds, bad, f)
		}
	}
	return errors.Join(errs...)
}

func verifyInstr(in *Instr, preds map[*Block][]*Block,
	bad func(*Instr, string, ...any), f *Func) {
	op := func(i int) Value { return in.ops[i] }
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpUDiv, OpURem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		if len(in.ops) != 2 {
			bad(in, "binary op needs 2 operands")
			return
		}
		if op(0).Type() != op(1).Type() || op(0).Type() != in.Ty {
			bad(in, "integer binary type mismatch")
		}
		if !in.Ty.Scalar().IsInt() {
			bad(in, "integer op on non-integer type %s", in.Ty)
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFRem:
		if len(in.ops) != 2 {
			bad(in, "binary op needs 2 operands")
			return
		}
		if op(0).Type() != op(1).Type() || op(0).Type() != in.Ty {
			bad(in, "float binary type mismatch")
		}
		if !in.Ty.Scalar().IsFloat() {
			bad(in, "float op on non-float type %s", in.Ty)
		}
	case OpICmp:
		if !op(0).Type().Scalar().IsInt() && !op(0).Type().Scalar().IsPointer() {
			bad(in, "icmp on non-integer %s", op(0).Type())
		}
		checkCmp(in, bad)
	case OpFCmp:
		if !op(0).Type().Scalar().IsFloat() {
			bad(in, "fcmp on non-float %s", op(0).Type())
		}
		checkCmp(in, bad)
	case OpSelect:
		ct := op(0).Type()
		if ct != I1 && !(ct.IsVector() && ct.Elem == I1 && in.Ty.IsVector() && ct.Len == in.Ty.Len) {
			bad(in, "select condition type %s invalid for %s", ct, in.Ty)
		}
		if op(1).Type() != in.Ty || op(2).Type() != in.Ty {
			bad(in, "select arm type mismatch")
		}
	case OpAlloca:
		if in.AllocElem == nil || in.AllocCount <= 0 {
			bad(in, "alloca without element type or count")
		}
	case OpLoad:
		if !op(0).Type().IsPointer() || op(0).Type().Elem != in.Ty {
			bad(in, "load type mismatch")
		}
	case OpStore:
		if !op(1).Type().IsPointer() || op(1).Type().Elem != op(0).Type() {
			bad(in, "store type mismatch")
		}
	case OpGEP:
		if !op(0).Type().IsPointer() || in.Ty != op(0).Type() {
			bad(in, "gep type mismatch")
		}
		if !op(1).Type().IsInt() {
			bad(in, "gep index must be scalar integer")
		}
	case OpExtractElement:
		if !op(0).Type().IsVector() || op(0).Type().Elem != in.Ty {
			bad(in, "extractelement type mismatch")
		}
		if !op(1).Type().IsInt() {
			bad(in, "extractelement index must be integer")
		}
	case OpInsertElement:
		if !in.Ty.IsVector() || op(0).Type() != in.Ty || op(1).Type() != in.Ty.Elem {
			bad(in, "insertelement type mismatch")
		}
	case OpShuffleVector:
		vt := op(0).Type()
		if !vt.IsVector() || op(1).Type() != vt {
			bad(in, "shufflevector operand mismatch")
			return
		}
		if in.Ty != Vec(vt.Elem, len(in.ShuffleMask)) {
			bad(in, "shufflevector result type mismatch")
		}
		for _, mi := range in.ShuffleMask {
			if mi >= 2*vt.Len {
				bad(in, "shuffle mask index %d out of range", mi)
			}
		}
	case OpPhi:
		if len(in.ops) != len(in.Succs) {
			bad(in, "phi value/block count mismatch")
			return
		}
		for i := range in.ops {
			if in.ops[i].Type() != in.Ty {
				bad(in, "phi incoming %d type mismatch", i)
			}
		}
		want := preds[in.Parent]
		if len(in.ops) != len(want) {
			bad(in, "phi has %d incomings, block has %d predecessors",
				len(in.ops), len(want))
		} else {
			for _, p := range want {
				found := false
				for _, s := range in.Succs {
					if s == p {
						found = true
						break
					}
				}
				if !found {
					bad(in, "phi missing incoming for predecessor %s", p.Nam)
				}
			}
		}
	case OpCall:
		sig := in.Callee.Sig
		if !sig.Variadic && len(in.ops) != len(sig.Params) {
			bad(in, "call arg count %d != %d", len(in.ops), len(sig.Params))
			return
		}
		for i := range sig.Params {
			if i < len(in.ops) && in.ops[i].Type() != sig.Params[i] {
				bad(in, "call arg %d type %s != %s", i, in.ops[i].Type(), sig.Params[i])
			}
		}
		if in.Ty != sig.Ret {
			bad(in, "call result type mismatch")
		}
	case OpBr:
		if len(in.Succs) != 1 {
			bad(in, "br needs one target")
		}
	case OpCondBr:
		if op(0).Type() != I1 {
			bad(in, "condbr condition must be i1")
		}
		if len(in.Succs) != 2 {
			bad(in, "condbr needs two targets")
		}
	case OpRet:
		rt := f.RetType()
		if rt.IsVoid() {
			if len(in.ops) != 0 {
				bad(in, "ret with value in void function")
			}
		} else if len(in.ops) != 1 || op(0).Type() != rt {
			bad(in, "ret type mismatch")
		}
	case OpUnreachable:
	default:
		if in.Op.IsCast() {
			verifyCast(in, bad)
			return
		}
		bad(in, "unknown opcode")
	}
}

func checkCmp(in *Instr, bad func(*Instr, string, ...any)) {
	op0, op1 := in.ops[0], in.ops[1]
	if op0.Type() != op1.Type() {
		bad(in, "cmp operand type mismatch")
	}
	want := I1
	if op0.Type().IsVector() {
		want = Vec(I1, op0.Type().Len)
	}
	if in.Ty != want {
		bad(in, "cmp result type must be %s", want)
	}
	if in.Pred == PredInvalid {
		bad(in, "cmp without predicate")
	}
}

func verifyCast(in *Instr, bad func(*Instr, string, ...any)) {
	from, to := in.ops[0].Type(), in.Ty
	if from.Lanes() != to.Lanes() {
		bad(in, "cast lane count mismatch %s -> %s", from, to)
		return
	}
	fs, ts := from.Scalar(), to.Scalar()
	switch in.Op {
	case OpTrunc:
		if !fs.IsInt() || !ts.IsInt() || fs.Bits <= ts.Bits {
			bad(in, "invalid trunc %s -> %s", from, to)
		}
	case OpZExt, OpSExt:
		if !fs.IsInt() || !ts.IsInt() || fs.Bits >= ts.Bits {
			bad(in, "invalid ext %s -> %s", from, to)
		}
	case OpFPTrunc:
		if fs != F64 || ts != F32 {
			bad(in, "invalid fptrunc %s -> %s", from, to)
		}
	case OpFPExt:
		if fs != F32 || ts != F64 {
			bad(in, "invalid fpext %s -> %s", from, to)
		}
	case OpSIToFP:
		if !fs.IsInt() || !ts.IsFloat() {
			bad(in, "invalid sitofp %s -> %s", from, to)
		}
	case OpFPToSI:
		if !fs.IsFloat() || !ts.IsInt() {
			bad(in, "invalid fptosi %s -> %s", from, to)
		}
	case OpBitcast:
		if fs.ScalarBits() != ts.ScalarBits() {
			bad(in, "invalid bitcast %s -> %s", from, to)
		}
	case OpPtrToInt:
		if !fs.IsPointer() || !ts.IsInt() {
			bad(in, "invalid ptrtoint %s -> %s", from, to)
		}
	case OpIntToPtr:
		if !fs.IsInt() || !ts.IsPointer() {
			bad(in, "invalid inttoptr %s -> %s", from, to)
		}
	}
}
