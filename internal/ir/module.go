package ir

import "fmt"

// Module is a translation unit: a set of functions and globals.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	funcByName map[string]*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcByName: map[string]*Func{}}
}

// AddFunc adds f to the module. Function names must be unique.
func (m *Module) AddFunc(f *Func) {
	if m.funcByName == nil {
		m.funcByName = map[string]*Func{}
	}
	if _, dup := m.funcByName[f.Nam]; dup {
		panic("ir: duplicate function " + f.Nam)
	}
	f.Module = m
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.Nam] = f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	return m.funcByName[name]
}

// AddGlobal registers a global storage object.
func (m *Module) AddGlobal(g *Global) {
	m.Globals = append(m.Globals, g)
}

// Func is a function definition or declaration.
type Func struct {
	Nam    string
	Sig    *Type // FuncKind
	Params []*Param
	Blocks []*Block
	Module *Module

	// IsDecl marks external declarations (intrinsics, runtime API) that
	// have no body and are dispatched by the interpreter.
	IsDecl bool
	// Intrinsic marks LLVM-style intrinsics (name starts with "llvm.").
	Intrinsic bool

	nameSeq   int
	nameCount map[string]int
}

// NewFunc creates a function with fresh parameters named after names.
func NewFunc(name string, ret *Type, paramTypes []*Type, paramNames []string) *Func {
	f := &Func{Nam: name, Sig: FuncOf(ret, paramTypes...)}
	for i, pt := range paramTypes {
		pn := fmt.Sprintf("arg%d", i)
		if i < len(paramNames) && paramNames[i] != "" {
			pn = paramNames[i]
		}
		f.Params = append(f.Params, &Param{Nam: pn, Ty: pt, Index: i})
	}
	return f
}

// NewDecl creates an external declaration (no body).
func NewDecl(name string, ret *Type, paramTypes ...*Type) *Func {
	f := NewFunc(name, ret, paramTypes, nil)
	f.IsDecl = true
	if len(name) > 5 && name[:5] == "llvm." {
		f.Intrinsic = true
	}
	return f
}

// Type implements Value.
func (f *Func) Type() *Type { return f.Sig }

// Ident implements Value.
func (f *Func) Ident() string { return "@" + f.Nam }

// RetType returns the function's return type.
func (f *Func) RetType() *Type { return f.Sig.Ret }

// Entry returns the entry block (first block), or nil for declarations.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new basic block with the given name to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Nam: name, Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// BlockByName returns the block with the given name, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Nam == name {
			return b
		}
	}
	return nil
}

// nextName returns a fresh auto-generated value name.
func (f *Func) nextName(prefix string) string {
	f.nameSeq++
	return fmt.Sprintf("%s%d", prefix, f.nameSeq)
}

// uniqueName reserves hint as a value name: the first use is returned
// verbatim, repeats get a ".N" suffix.
func (f *Func) uniqueName(hint string) string {
	if f.nameCount == nil {
		f.nameCount = map[string]int{}
	}
	f.nameCount[hint]++
	if n := f.nameCount[hint]; n > 1 {
		return fmt.Sprintf("%s.%d", hint, n)
	}
	return hint
}

// Instrs returns all instructions of the function in block order.
func (f *Func) Instrs() []*Instr {
	var out []*Instr
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// Block is a basic block: a straight-line instruction list ending in a
// terminator.
type Block struct {
	Nam    string
	Instrs []*Instr
	Func   *Func
}

// Type implements Value (blocks appear as branch targets).
func (b *Block) Type() *Type { return Label }

// Ident implements Value.
func (b *Block) Ident() string { return "%" + b.Nam }

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
}

// InsertBefore inserts in immediately before pos within the block.
// It panics if pos is not in the block.
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	idx := b.indexOf(pos)
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// InsertAfter inserts in immediately after pos within the block.
func (b *Block) InsertAfter(in *Instr, pos *Instr) {
	idx := b.indexOf(pos)
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+2:], b.Instrs[idx+1:])
	b.Instrs[idx+1] = in
}

// Remove deletes in from the block and drops its operand uses.
func (b *Block) Remove(in *Instr) {
	idx := b.indexOf(in)
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
	in.dropAllOperandUses()
	in.Parent = nil
}

func (b *Block) indexOf(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	panic(fmt.Sprintf("ir: instruction %%%s not in block %s", in.Nam, b.Nam))
}

// Terminator returns the block's terminator instruction, or nil if the
// block is not yet terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Succs
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instr {
	var out []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		out = append(out, in)
	}
	return out
}
