package ir

import (
	"fmt"
	"math"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, instructions (their L-values), globals, functions
// and basic-block labels.
type Value interface {
	Type() *Type
	// Ident returns the printed identifier of the value ("%x", "@f", or a
	// literal for constants).
	Ident() string
}

// Const is a constant scalar or vector value. Lane payloads are stored as
// raw bit patterns (one uint64 per lane): integers are kept
// zero-extended-by-width, float32 as Float32bits, float64 as Float64bits.
// The bit-pattern representation is what makes single-bit-flip fault
// injection uniform across all types.
type Const struct {
	Ty    *Type
	Bits  []uint64 // one entry per lane; len 1 for scalars
	Undef bool
}

// ConstInt returns an integer constant of type ty with value v (truncated
// to the type's width).
func ConstInt(ty *Type, v int64) *Const {
	if !ty.IsInt() {
		panic("ir.ConstInt: not an integer type: " + ty.String())
	}
	return &Const{Ty: ty, Bits: []uint64{TruncateToWidth(uint64(v), ty.Bits)}}
}

// ConstBool returns an i1 constant.
func ConstBool(b bool) *Const {
	if b {
		return ConstInt(I1, 1)
	}
	return ConstInt(I1, 0)
}

// ConstFloat returns a floating constant of type ty (F32 or F64).
func ConstFloat(ty *Type, v float64) *Const {
	switch ty {
	case F32:
		return &Const{Ty: ty, Bits: []uint64{uint64(math.Float32bits(float32(v)))}}
	case F64:
		return &Const{Ty: ty, Bits: []uint64{math.Float64bits(v)}}
	}
	panic("ir.ConstFloat: not a float type: " + ty.String())
}

// ConstVec returns a vector constant whose lanes all come from lanes
// (len(lanes) must equal the vector length).
func ConstVec(ty *Type, lanes []uint64) *Const {
	if !ty.IsVector() || len(lanes) != ty.Len {
		panic("ir.ConstVec: type/lane mismatch")
	}
	b := make([]uint64, len(lanes))
	copy(b, lanes)
	return &Const{Ty: ty, Bits: b}
}

// ConstSplat returns a vector constant with every lane equal to the scalar
// constant c.
func ConstSplat(n int, c *Const) *Const {
	vt := Vec(c.Ty, n)
	b := make([]uint64, n)
	for i := range b {
		b[i] = c.Bits[0]
	}
	return &Const{Ty: vt, Bits: b}
}

// ConstZero returns the zero value of ty (zeroinitializer for vectors).
func ConstZero(ty *Type) *Const {
	return &Const{Ty: ty, Bits: make([]uint64, ty.Lanes())}
}

// Undef returns an undef value of type ty.
func UndefValue(ty *Type) *Const {
	return &Const{Ty: ty, Bits: make([]uint64, ty.Lanes()), Undef: true}
}

// Type implements Value.
func (c *Const) Type() *Type { return c.Ty }

// Int returns the lane-0 payload sign-extended to int64 (integer types).
// i1 yields 0/1 rather than 0/-1.
func (c *Const) Int() int64 {
	if c.Ty.Scalar().Bits == 1 {
		return int64(c.Bits[0] & 1)
	}
	return SignExtend(c.Bits[0], c.Ty.Scalar().Bits)
}

// Float returns the lane-0 payload as a float64 (float types).
func (c *Const) Float() float64 {
	if c.Ty.Scalar() == F32 {
		return float64(math.Float32frombits(uint32(c.Bits[0])))
	}
	return math.Float64frombits(c.Bits[0])
}

// Ident implements Value.
func (c *Const) Ident() string {
	if c.Undef {
		return "undef"
	}
	s := c.Ty.Scalar()
	one := func(bits uint64) string {
		switch s.Kind {
		case IntKind:
			if s.Bits == 1 {
				if bits&1 != 0 {
					return "true"
				}
				return "false"
			}
			return fmt.Sprintf("%d", SignExtend(bits, s.Bits))
		case FloatKind:
			if s == F32 {
				return fmt.Sprintf("%g", math.Float32frombits(uint32(bits)))
			}
			return fmt.Sprintf("%g", math.Float64frombits(bits))
		case PointerKind:
			if bits == 0 {
				return "null"
			}
			return fmt.Sprintf("ptr:%#x", bits)
		}
		return "?"
	}
	if !c.Ty.IsVector() {
		return one(c.Bits[0])
	}
	allZero := true
	for _, b := range c.Bits {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return "zeroinitializer"
	}
	out := "<"
	for i, b := range c.Bits {
		if i > 0 {
			out += ", "
		}
		out += s.String() + " " + one(b)
	}
	return out + ">"
}

// Param is a function parameter.
type Param struct {
	Nam string
	Ty  *Type
	// Index is the position within the parent function's parameter list.
	Index int

	uses []Use
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Ty }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Nam }

// Global is a module-level named memory object (array/scalar storage).
// Its value is a pointer to the storage.
type Global struct {
	Nam   string
	Elem  *Type // pointee type
	Count int   // number of Elem cells (array length; 1 for scalars)
}

// Type implements Value: a global evaluates to a pointer to its element
// type.
func (g *Global) Type() *Type { return Ptr(g.Elem) }

// Ident implements Value.
func (g *Global) Ident() string { return "@" + g.Nam }

// TruncateToWidth masks v to the low `bits` bits.
func TruncateToWidth(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & ((1 << uint(bits)) - 1)
}

// SignExtend interprets the low `bits` bits of v as a signed integer and
// sign-extends to int64.
func SignExtend(v uint64, bits int) int64 {
	if bits >= 64 {
		return int64(v)
	}
	v = TruncateToWidth(v, bits)
	sign := uint64(1) << uint(bits-1)
	if v&sign != 0 {
		return int64(v | ^((1 << uint(bits)) - 1))
	}
	return int64(v)
}
