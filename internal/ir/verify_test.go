package ir

import (
	"strings"
	"testing"
)

// validFunc builds a small well-formed function: a counted loop.
func validFunc() *Module {
	m := NewModule("valid")
	f := NewFunc("f", I32, []*Type{I32}, []string{"n"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	bu := NewBuilder(entry)
	bu.Br(loop)
	bu.SetBlock(loop)
	i := bu.Phi(I32, "i")
	AddIncoming(i, ConstInt(I32, 0), entry)
	i2 := bu.Add(i, ConstInt(I32, 1), "i2")
	AddIncoming(i, i2, loop)
	c := bu.ICmp(IntSLT, i2, f.Params[0], "c")
	bu.CondBr(c, loop, exit)
	bu.SetBlock(exit)
	bu.Ret(i2)
	return m
}

func TestVerifyValid(t *testing.T) {
	if err := validFunc().Verify(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func expectVerifyError(t *testing.T, m *Module, frag string) {
	t.Helper()
	err := m.Verify()
	if err == nil {
		t.Fatalf("expected verifier error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func oneBlockFunc(m *Module) (*Func, *Builder) {
	f := NewFunc("f", Void, []*Type{I32, F32, Ptr(I32)}, []string{"x", "y", "p"})
	m.AddFunc(f)
	b := f.NewBlock("entry")
	return f, NewBuilder(b)
}

func TestVerifyUnterminatedBlock(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	bu.Add(f.Params[0], ConstInt(I32, 1), "a")
	expectVerifyError(t, m, "not terminated")
}

func TestVerifyBinaryTypeMismatch(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	// Hand-build a bad add: i32 + float.
	bad := newInstr(OpAdd, I32, "bad", f.Params[0], f.Params[1])
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "type mismatch")
}

func TestVerifyFloatOpOnInt(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	bad := newInstr(OpFAdd, I32, "bad", f.Params[0], f.Params[0])
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "float op on non-float")
}

func TestVerifyStoreTypeMismatch(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	bad := newInstr(OpStore, Void, "", f.Params[1], f.Params[2]) // float into i32*
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "store type mismatch")
}

func TestVerifyLoadTypeMismatch(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	bad := newInstr(OpLoad, F32, "bad", f.Params[2]) // i32* loaded as float
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "load type mismatch")
}

func TestVerifyCondBrNonBool(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	other := f.NewBlock("other")
	bad := newInstr(OpCondBr, Void, "", f.Params[0])
	bad.Succs = []*Block{other, other}
	bu.Block().Append(bad)
	NewBuilder(other).Ret(nil)
	expectVerifyError(t, m, "condition must be i1")
}

func TestVerifyPhiPredecessorMismatch(t *testing.T) {
	m := NewModule("t")
	f := NewFunc("f", Void, nil, nil)
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	bu := NewBuilder(entry)
	bu.Br(next)
	bu.SetBlock(next)
	phi := bu.Phi(I32, "phi")
	// Incoming from a block that is not a predecessor.
	AddIncoming(phi, ConstInt(I32, 0), next)
	bu.Ret(nil)
	expectVerifyError(t, m, "phi")
}

func TestVerifyPhiAfterNonPhi(t *testing.T) {
	m := NewModule("t")
	f := NewFunc("f", Void, nil, nil)
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	bu := NewBuilder(entry)
	bu.Br(next)
	bu.SetBlock(next)
	bu.Add(ConstInt(I32, 1), ConstInt(I32, 2), "a")
	phi := bu.Phi(I32, "phi")
	AddIncoming(phi, ConstInt(I32, 0), entry)
	bu.Ret(nil)
	expectVerifyError(t, m, "phi after non-phi")
}

func TestVerifyCallArgMismatch(t *testing.T) {
	m := NewModule("t")
	callee := NewDecl("g", Void, I32)
	m.AddFunc(callee)
	f, bu := oneBlockFunc(m)
	bad := newInstr(OpCall, Void, "", f.Params[1]) // float arg for i32 param
	bad.Callee = callee
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "call arg")
}

func TestVerifyRetMismatch(t *testing.T) {
	m := NewModule("t")
	f := NewFunc("f", I32, nil, nil)
	m.AddFunc(f)
	bu := NewBuilder(f.NewBlock("entry"))
	bad := newInstr(OpRet, Void, "", ConstFloat(F32, 1))
	bu.Block().Append(bad)
	expectVerifyError(t, m, "ret type mismatch")
}

func TestVerifyTerminatorInMiddle(t *testing.T) {
	m := NewModule("t")
	f := NewFunc("f", Void, nil, nil)
	m.AddFunc(f)
	b := f.NewBlock("entry")
	bu := NewBuilder(b)
	bu.Ret(nil)
	bu.Ret(nil)
	expectVerifyError(t, m, "terminator in the middle")
}

func TestVerifyShuffleMaskRange(t *testing.T) {
	m := NewModule("t")
	f := NewFunc("f", Void, []*Type{Vec(I32, 4)}, []string{"v"})
	m.AddFunc(f)
	bu := NewBuilder(f.NewBlock("entry"))
	bad := newInstr(OpShuffleVector, Vec(I32, 4), "bad", f.Params[0], f.Params[0])
	bad.ShuffleMask = []int{0, 1, 2, 9} // 9 out of range for 2x4 lanes
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "out of range")
}

func TestVerifyCasts(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	bad := newInstr(OpTrunc, I64, "bad", f.Params[0]) // trunc i32 -> i64
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "invalid trunc")
}

func TestVerifySelectArmMismatch(t *testing.T) {
	m := NewModule("t")
	f, bu := oneBlockFunc(m)
	cond := bu.ICmp(IntEQ, f.Params[0], f.Params[0], "c")
	bad := newInstr(OpSelect, I32, "bad", cond, f.Params[0], f.Params[1])
	bu.Block().Append(bad)
	bu.Ret(nil)
	expectVerifyError(t, m, "select")
}
