package api

import (
	"strings"

	"vulfi"
	"vulfi/internal/campaign"
)

// The knob table below is the single source of truth tying the wire
// schema to the study configuration: every JSON field of Spec has
// exactly one entry, and each entry says how that field reaches a
// study — as functional options on the vulfi.NewStudy path (the same
// path library users take), or as routing metadata the coordinator
// consumes before any study exists. A new knob is declared once (the
// Spec field plus its table entry); the mapping test asserts the table
// and SpecFields never drift apart, and the cliutil drift test asserts
// CLI flags spell the knobs identically.

// knob maps one Spec JSON field onto the study path. options returns
// the study options the field contributes for a given spec (nil when
// its zero value needs none); routing marks fields consumed by the
// coordinator's shard scheduler rather than the study itself.
type knob struct {
	name    string
	routing bool
	options func(Spec) ([]vulfi.StudyOption, error)
}

func one(o vulfi.StudyOption) ([]vulfi.StudyOption, error) {
	return []vulfi.StudyOption{o}, nil
}

var knobs = []knob{
	{name: "benchmark", options: func(s Spec) ([]vulfi.StudyOption, error) {
		return one(vulfi.WithBenchmarkName(s.Benchmark))
	}},
	{name: "isa", options: func(s Spec) ([]vulfi.StudyOption, error) {
		// The wire accepts lowercase spellings; the registry is uppercase.
		return one(vulfi.WithISAName(strings.ToUpper(s.ISA)))
	}},
	{name: "category", options: func(s Spec) ([]vulfi.StudyOption, error) {
		cat, err := ParseCategory(s.Category)
		if err != nil {
			return nil, err
		}
		return one(vulfi.WithCategory(cat))
	}},
	{name: "scale", options: func(s Spec) ([]vulfi.StudyOption, error) {
		sc, err := ParseScale(s.Scale)
		if err != nil {
			return nil, err
		}
		return one(vulfi.WithScale(sc))
	}},
	{name: "experiments", options: func(s Spec) ([]vulfi.StudyOption, error) {
		return one(vulfi.WithExperiments(s.Experiments))
	}},
	{name: "campaigns", options: func(s Spec) ([]vulfi.StudyOption, error) {
		return one(vulfi.WithCampaigns(s.Campaigns))
	}},
	{name: "seed", options: func(s Spec) ([]vulfi.StudyOption, error) {
		return one(vulfi.WithSeed(s.Seed))
	}},
	{name: "workers", options: func(s Spec) ([]vulfi.StudyOption, error) {
		return one(vulfi.WithWorkers(s.Workers))
	}},
	{name: "inputs", options: func(s Spec) ([]vulfi.StudyOption, error) {
		return one(vulfi.WithInputs(s.Inputs))
	}},
	{name: "detectors", options: boolKnob(func(s Spec) bool { return s.Detectors },
		vulfi.WithDetectors)},
	{name: "detector_every_iteration", options: boolKnob(
		func(s Spec) bool { return s.DetectorEveryIteration },
		vulfi.WithDetectorEveryIteration)},
	{name: "broadcast_detector", options: boolKnob(
		func(s Spec) bool { return s.BroadcastDetector },
		vulfi.WithBroadcastDetector)},
	{name: "mask_loop_detector", options: boolKnob(
		func(s Spec) bool { return s.MaskLoopDetector },
		vulfi.WithMaskLoopDetector)},
	{name: "whole_register_sites", options: boolKnob(
		func(s Spec) bool { return s.WholeRegisterSites },
		vulfi.WithWholeRegisterSites)},
	{name: "mask_oblivious", options: boolKnob(
		func(s Spec) bool { return s.MaskOblivious },
		vulfi.WithMaskOblivious)},
	{name: "trace", options: boolKnob(func(s Spec) bool { return s.Trace },
		func() vulfi.StudyOption { return vulfi.WithTrace(0) })},
	{name: "atlas", options: boolKnob(func(s Spec) bool { return s.Atlas },
		vulfi.WithAtlas)},
	{name: "profile", options: boolKnob(func(s Spec) bool { return s.Profile },
		vulfi.WithProfile)},
	{name: "backend", options: func(s Spec) ([]vulfi.StudyOption, error) {
		be, err := ParseBackend(s.Backend)
		if err != nil {
			return nil, err
		}
		return one(vulfi.WithBackend(be))
	}},
	{name: "timeline", options: boolKnob(func(s Spec) bool { return s.Timeline },
		vulfi.WithTimeline)},
	{name: "trace_parent", options: func(s Spec) ([]vulfi.StudyOption, error) {
		if s.TraceParent == "" {
			return nil, nil
		}
		return one(vulfi.WithTraceParent(s.TraceParent))
	}},
	// "shards" never reaches a study: the coordinator consumes it to
	// plan shard ranges, then dispatches specs with shards cleared.
	{name: "shards", routing: true},
	// The shard range is one logical knob spanning two fields; the
	// shard_end entry applies both so the pair stays atomic.
	{name: "shard_start"},
	{name: "shard_end", options: func(s Spec) ([]vulfi.StudyOption, error) {
		if s.ShardStart == 0 && s.ShardEnd == 0 {
			return nil, nil
		}
		return one(vulfi.WithShardRange(s.ShardStart, s.ShardEnd))
	}},
}

// boolKnob builds the option mapping for a plain boolean knob: emit
// the option when set, nothing otherwise.
func boolKnob(get func(Spec) bool, opt func() vulfi.StudyOption) func(Spec) ([]vulfi.StudyOption, error) {
	return func(s Spec) ([]vulfi.StudyOption, error) {
		if !get(s) {
			return nil, nil
		}
		return one(opt())
	}
}

// MappedKnobs returns the knob-table field names in declaration order.
// The mapping test asserts this equals SpecFields — i.e. the table
// covers the wire schema exhaustively.
func MappedKnobs() []string {
	out := make([]string, 0, len(knobs))
	for _, k := range knobs {
		out = append(out, k.name)
	}
	return out
}

// Options translates the spec into the functional options a library
// user would pass to vulfi.NewStudy, via the knob table.
func (s Spec) Options() ([]vulfi.StudyOption, error) {
	var opts []vulfi.StudyOption
	for _, k := range knobs {
		if k.options == nil {
			continue
		}
		o, err := k.options(s)
		if err != nil {
			return nil, err
		}
		opts = append(opts, o...)
	}
	return opts, nil
}

// Config resolves the spec through vulfi.NewStudy — the exact gate
// library users go through, so a spec rejected on the wire is rejected
// identically in code — and returns the validated, normalized study
// configuration (telemetry sinks and checkpoint hooks unset).
func (s Spec) Config() (campaign.Config, error) {
	opts, err := s.Options()
	if err != nil {
		return campaign.Config{}, err
	}
	study, err := vulfi.NewStudy(opts...)
	if err != nil {
		return campaign.Config{}, err
	}
	return study.Config(), nil
}
