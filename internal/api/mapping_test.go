package api

import (
	"reflect"
	"strings"
	"testing"
)

// TestMappingCoversSpec: the knob table translates every wire field, in
// wire order — adding a Spec field without a mapping entry (or vice
// versa) fails here before it can ship as a silently ignored knob.
func TestMappingCoversSpec(t *testing.T) {
	got, want := MappedKnobs(), SpecFields()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MappedKnobs() = %v\nSpecFields() = %v", got, want)
	}
}

// fullSpec carries a non-default value for every knob, so the mapping
// must touch every campaign.Config field it claims to own.
func fullSpec() Spec {
	return Spec{
		Benchmark: "Blackscholes", ISA: "avx", Category: "control",
		Scale: "large", Experiments: 7, Campaigns: 3, Seed: 42,
		Workers: 2, Inputs: 2,
		Detectors: true, DetectorEveryIteration: true, BroadcastDetector: true,
		MaskLoopDetector: true, WholeRegisterSites: true, MaskOblivious: true,
		Trace: true, Atlas: true, Profile: true, Backend: "vm",
		Timeline:    true,
		TraceParent: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		Shards:      4, ShardStart: 1, ShardEnd: 2,
	}
}

// TestSpecConfigExhaustive: a fully valued spec produces a Config whose
// every field is set, except the runtime hooks the server wires itself
// and the routing knobs that never reach a campaign. Reflection keeps
// the check honest when Config grows a field: either the mapping sets
// it or this allowlist names it deliberately.
func TestSpecConfigExhaustive(t *testing.T) {
	// Runtime wiring the server owns (hooks, registries, checkpoint
	// replay) plus defaults the spec deliberately leaves alone.
	runtime := map[string]bool{
		"Metrics": true, "Events": true, "OnExperiment": true,
		"OnStart": true, "Heartbeat": true, "OnResult": true,
		"Completed": true, "TraceCap": true,
	}
	cfg, err := fullSpec().Config()
	if err != nil {
		t.Fatal(err)
	}
	v := reflect.ValueOf(cfg)
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		if runtime[name] {
			continue
		}
		if v.Field(i).IsZero() {
			t.Errorf("Config.%s is zero after mapping a fully valued spec", name)
		}
	}
	if cfg.ISA == nil || cfg.ISA.Name != "AVX" {
		t.Errorf("ISA %q was not normalized to AVX", "avx")
	}
	if cfg.ShardStart != 1 || cfg.ShardEnd != 2 {
		t.Errorf("shard range = [%d,%d), want [1,2)", cfg.ShardStart, cfg.ShardEnd)
	}
}

// TestSpecConfigParseErrors: enum knobs fail with errors naming the
// accepted spellings, not silent defaults.
func TestSpecConfigParseErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Spec)
		want   string
	}{
		{func(s *Spec) { s.Category = "bogus" }, "category"},
		{func(s *Spec) { s.Scale = "bogus" }, "scale"},
		{func(s *Spec) { s.Backend = "bogus" }, "backend"},
		{func(s *Spec) { s.ISA = "bogus" }, "ISA"},
		{func(s *Spec) { s.Benchmark = "bogus" }, "benchmark"},
	}
	for _, tc := range cases {
		spec := fullSpec()
		tc.mutate(&spec)
		_, err := spec.Config()
		if err == nil {
			t.Errorf("%s: no error for bogus value", tc.want)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
			t.Errorf("error %q does not mention %s", err, tc.want)
		}
	}
}

// TestSpecTotals: Total respects an explicit shard range;
// ScheduleTotal never does (it is the coordinator's full schedule).
func TestSpecTotals(t *testing.T) {
	s := Spec{Experiments: 10, Campaigns: 3}
	if got := s.Total(); got != 30 {
		t.Errorf("Total() = %d, want 30", got)
	}
	if got := s.ScheduleTotal(); got != 30 {
		t.Errorf("ScheduleTotal() = %d, want 30", got)
	}
	s.ShardStart, s.ShardEnd = 5, 12
	if got := s.Total(); got != 7 {
		t.Errorf("sharded Total() = %d, want 7", got)
	}
	if got := s.ScheduleTotal(); got != 30 {
		t.Errorf("sharded ScheduleTotal() = %d, want 30", got)
	}
	// Zero counts default like the campaign layer (100 x 20).
	if got := (Spec{}).ScheduleTotal(); got != 2000 {
		t.Errorf("defaulted ScheduleTotal() = %d, want 2000", got)
	}
}
