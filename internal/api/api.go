// Package api is the versioned wire schema of the vulfid HTTP/JSON
// API: the job spec, job status and lifecycle states, the worker-fleet
// registration types, and the single declarative mapping that turns a
// wire spec into a validated study configuration through the root
// package's functional options (mapping.go). It is the one vocabulary
// shared by the server (internal/server), the typed client
// (internal/client) and the CLIs — a wire knob is declared exactly
// once, here, and every consumer sees the same name, default and
// validation.
package api

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/passes"
)

// APIVersion identifies the wire schema of the /v1 API. Every response
// carries it in the Vulfid-Api-Version header, so clients can detect
// schema drift without parsing bodies. Bumped when the request or
// response schema changes in a way a client could observe (1.1 added
// the "inputs" pool knob and the version header itself; 1.2 added the
// "atlas" spec knob, GET /v1/history, GET /dashboard and the
// Vulfid-Build header; 1.3 added the "profile" spec knob and
// GET /v1/jobs/{id}/profile; 1.4 added the "backend" spec knob; 1.5
// added the "timeline" and "trace_parent" spec knobs — the latter also
// accepted as a W3C traceparent request header on POST /v1/jobs —
// GET /v1/jobs/{id}/timeline and the watchdog "stall" SSE event; 1.6
// added the "shards", "shard_start" and "shard_end" knobs, API-key
// auth with 401 and per-tenant quota 429 responses, the "tenant"
// status field, worker-fleet registration via POST/GET /v1/workers,
// GET /v1/jobs/{id}/experiments and the coordinator's "shard" SSE
// event; 1.7 accepted "timeline" and "profile" on sharded jobs — the
// coordinator harvests each shard's span tree and profile snapshot and
// serves the fleet-wide merge on the usual /timeline and /profile
// sub-resources — and added the fleet metrics view GET /v1/fleet plus
// the coordinator's "fleet" SSE event for worker loss and shard
// reassignment).
const APIVersion = "1.7"

// Job lifecycle states. A job moves queued → running → {done, failed,
// cancelled}; cancellation can also hit a queued job directly. A
// drained daemon leaves its unfinished jobs journaled as "interrupted"
// (non-terminal) and the next daemon re-queues them with the completed
// experiments replayed.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// TerminalState reports whether a job in this state has finished for
// good (done, failed or cancelled — "interrupted" resumes on restart).
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is the wire form of one study cell: the JSON body of POST
// /v1/jobs. Zero-valued counts inherit the paper's defaults (100
// experiments × 20 campaigns).
//
// # Request schema (POST /v1/jobs)
//
// Unknown fields are rejected with a descriptive 400, so typos never
// silently run a default study. All fields below are optional except
// benchmark, isa and category:
//
//	{
//	  "benchmark": "Blackscholes",      // required; see `vulfi -list`
//	  "isa": "AVX",                     // required; "AVX" or "SSE"
//	  "category": "pure-data",          // required; "pure-data", "control", "address"
//	  "scale": "default",               // "test", "default", "large"
//	  "experiments": 100,               // per campaign; 0 = paper default 100
//	  "campaigns": 20,                  // 0 = paper default 20
//	  "seed": 1,                        // study seed (deterministic schedule)
//	  "workers": 0,                     // experiment parallelism; 0 = GOMAXPROCS
//	  "inputs": 0,                      // input-pool size K; see Spec.Inputs
//	  "detectors": false,               // §III foreach-invariant detectors
//	  "detector_every_iteration": false,
//	  "broadcast_detector": false,
//	  "mask_loop_detector": false,
//	  "whole_register_sites": false,
//	  "mask_oblivious": false,
//	  "trace": false,                   // divergence tracing (disables golden cache)
//	  "atlas": false,                   // per-static-site outcome attribution
//	  "profile": false,                 // execution profiler (hot_profile in the result)
//	  "backend": "tree",                // execution backend: "tree" or "vm"
//	  "timeline": false,                // span tracing (timeline in the result)
//	  "trace_parent": "",               // W3C traceparent to nest the study under
//	  "shards": 0,                      // coordinator: split across N workers
//	  "shard_start": 0,                 // worker: run indices [shard_start,
//	  "shard_end": 0                    //   shard_end) of the schedule only
//	}
//
// # Response schema
//
// Every /v1 response is JSON, stamped with the Vulfid-Api-Version
// header. Errors are {"error": "..."} with a 4xx/5xx status. POST
// /v1/jobs answers 202 with the job status (429 + Retry-After when the
// queue — or the tenant's quota — is full; 401 when the daemon
// requires an API key and none matched):
//
//	{
//	  "id": "j0123456789ab",
//	  "state": "queued",                // queued|running|done|failed|cancelled
//	  "spec": { ... },                  // the submitted spec, echoed
//	  "tenant": "team-a",               // authenticated tenant, if any
//	  "total": 2000,                    // experiments after defaults
//	  "completed": 0,                   // experiments finished so far
//	  "error": "...",                   // failed jobs only
//	  "result": { ... }                 // finished jobs: the exported study JSON
//	}
//
// GET /v1/jobs lists {"jobs": [status...]} without results; GET
// /v1/jobs/{id} returns one full status; DELETE cancels; the /events,
// /metrics, /explain, /profile, /timeline and /experiments
// sub-resources are documented on their handlers.
type Spec struct {
	Benchmark string `json:"benchmark"`
	ISA       string `json:"isa"`
	Category  string `json:"category"`
	// Scale is "test", "default" (empty) or "large".
	Scale       string `json:"scale,omitempty"`
	Experiments int    `json:"experiments,omitempty"`
	Campaigns   int    `json:"campaigns,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	// Workers bounds the job's experiment parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Inputs is the input-pool size K: experiment i draws its program
	// input from a pool of K seeds (i mod K), enabling golden-run
	// memoization. 0 = a fresh input per experiment (no cache); 1 = the
	// paper-faithful fixed-input mode. Rides through the journal, so
	// resumed jobs keep their pool.
	Inputs int `json:"inputs,omitempty"`

	Detectors              bool `json:"detectors,omitempty"`
	DetectorEveryIteration bool `json:"detector_every_iteration,omitempty"`
	BroadcastDetector      bool `json:"broadcast_detector,omitempty"`
	MaskLoopDetector       bool `json:"mask_loop_detector,omitempty"`
	WholeRegisterSites     bool `json:"whole_register_sites,omitempty"`
	MaskOblivious          bool `json:"mask_oblivious,omitempty"`

	// Trace enables golden-vs-faulty divergence tracing: the finished
	// study carries a propagation profile (GET /v1/jobs/{id}/explain) and
	// the per-job registry gains trace.* metrics. Tracing bypasses the
	// golden-run cache (divergence analysis needs a live golden ring).
	Trace bool `json:"trace,omitempty"`

	// Atlas enables per-static-site outcome attribution: the finished
	// study's JSON carries a "sites" tally table, and the job's history
	// entry records it for longitudinal comparison (vulfi diff).
	Atlas bool `json:"atlas,omitempty"`

	// Profile enables the execution profiler: the finished study's JSON
	// carries a "hot_profile" object (hot opcodes, opcode pairs, hot
	// sites, phase breakdown, exp/s timeline), also served standalone at
	// GET /v1/jobs/{id}/profile. Profiling timestamps every interpreted
	// instruction, so profiled wall times are not comparable to
	// unprofiled runs. On a sharded job the coordinator harvests each
	// shard's profile and serves the merged fleet profile, whose counts
	// equal the single-node run's.
	Profile bool `json:"profile,omitempty"`

	// Backend selects the execution backend: "tree" (or empty) runs the
	// reference tree-walking interpreter, "vm" the compiled bytecode
	// backend. The backends produce byte-identical results (the
	// differential suite pins outcomes, counts, traps and study JSON),
	// so the knob only affects throughput. Rides through the journal,
	// so resumed jobs keep their backend.
	Backend string `json:"backend,omitempty"`

	// Timeline enables hierarchical span tracing: the finished study's
	// JSON carries a "timeline" object (per-worker span lanes, Chrome
	// trace-event exportable), served at GET /v1/jobs/{id}/timeline.
	// Rides through the journal, so resumed jobs keep tracing — and a
	// resumed study's timeline spans only its freshly executed tail. On
	// a sharded job the coordinator harvests each shard's span tree and
	// serves one fleet-wide timeline with a lane group per worker.
	Timeline bool `json:"timeline,omitempty"`

	// TraceParent, when set, is a W3C trace-context traceparent header
	// value ("00-<32hex>-<16hex>-01"): the study adopts its trace ID and
	// nests its root span under the given span, so a remote client's
	// trace parents the server-side spans. POST /v1/jobs also accepts a
	// "traceparent" request header, copied here when this field is
	// empty. Malformed values are rejected with a descriptive 400.
	TraceParent string `json:"trace_parent,omitempty"`

	// Shards asks a coordinator daemon (vulfid -coordinator) to split
	// the study into about this many experiment-index range shards and
	// run them across its registered worker fleet, merging the results
	// into a study byte-identical to a single-node run. 0 or 1 runs the
	// job locally; daemons not started as coordinators reject Shards > 1
	// with a descriptive 400.
	Shards int `json:"shards,omitempty"`

	// ShardStart/ShardEnd restrict execution to experiment indices in
	// the half-open range [ShardStart, ShardEnd) of the deterministic
	// schedule — the wire form of one shard, set by the coordinator on
	// the specs it dispatches to workers. ShardEnd == 0 means the whole
	// schedule.
	ShardStart int `json:"shard_start,omitempty"`
	ShardEnd   int `json:"shard_end,omitempty"`
}

// SpecFields returns the spec's JSON field names in declaration order —
// the accepted request schema, quoted back to clients that send an
// unknown field.
func SpecFields() []string {
	t := reflect.TypeOf(Spec{})
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			out = append(out, name)
		}
	}
	return out
}

// ParseCategory resolves the CLI/API spelling of a fault-site category.
func ParseCategory(name string) (passes.Category, error) {
	switch strings.ToLower(name) {
	case "pure-data", "puredata", "data":
		return passes.PureData, nil
	case "control", "ctrl":
		return passes.Control, nil
	case "address", "addr":
		return passes.Address, nil
	}
	return 0, fmt.Errorf("unknown category %q (pure-data, control, address)", name)
}

// ParseScale resolves the wire spelling of an input-size regime.
func ParseScale(name string) (benchmarks.Scale, error) {
	switch strings.ToLower(name) {
	case "", "default":
		return benchmarks.ScaleDefault, nil
	case "test", "small":
		return benchmarks.ScaleTest, nil
	case "large":
		return benchmarks.ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test, default, large)", name)
}

// ParseBackend resolves the CLI/API spelling of an execution backend.
func ParseBackend(name string) (string, error) {
	switch strings.ToLower(name) {
	case "", "tree", "interp", "interpreter":
		if name == "" {
			return "", nil
		}
		return "tree", nil
	case "vm", "bytecode":
		return "vm", nil
	}
	return "", fmt.Errorf("unknown backend %q (tree, vm)", name)
}

// Total returns the job's experiment count after applying the paper
// defaults RunStudy would apply; for a shard spec it is the shard's
// range size, since only those indices execute.
func (s Spec) Total() int {
	if s.ShardEnd > 0 {
		return s.ShardEnd - s.ShardStart
	}
	e, c := s.Experiments, s.Campaigns
	if e <= 0 {
		e = 100
	}
	if c <= 0 {
		c = 20
	}
	return e * c
}

// ScheduleTotal returns the full schedule size Campaigns × Experiments
// after defaults, ignoring any shard range — the index space a
// coordinator plans shards over.
func (s Spec) ScheduleTotal() int {
	e, c := s.Experiments, s.Campaigns
	if e <= 0 {
		e = 100
	}
	if c <= 0 {
		c = 20
	}
	return e * c
}

// Status is the wire form of a job's state (GET /v1/jobs/{id}).
type Status struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Resumed bool   `json:"resumed,omitempty"`
	Spec    Spec   `json:"spec"`
	// Tenant is the authenticated tenant that submitted the job (empty
	// when the daemon runs without API keys).
	Tenant string `json:"tenant,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	Done     int `json:"done"`
	Total    int `json:"total"`
	SDC      int `json:"sdc"`
	Benign   int `json:"benign"`
	Crash    int `json:"crash"`
	Detected int `json:"detected"`

	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// ExperimentEvent is the SSE payload for one completed experiment
// ("experiment" events on GET /v1/jobs/{id}/events).
type ExperimentEvent struct {
	Index    int    `json:"index"`
	Seed     int64  `json:"seed"`
	Outcome  string `json:"outcome"`
	Detected bool   `json:"detected"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
}

// ShardEvent is the SSE payload of the coordinator's "shard" events:
// one per shard lifecycle transition, merged into the job's stream next
// to the per-experiment progress harvested from the workers.
type ShardEvent struct {
	// Lo/Hi delimit the shard's half-open experiment-index range.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Worker is the worker's URL, or "local" when the coordinator ran
	// the shard itself (no live workers).
	Worker string `json:"worker"`
	// State is "assigned", "done" or "failed" (failed shards are
	// re-planned from their unharvested remainder and reassigned).
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// FleetEvent is the SSE payload of the coordinator's "fleet" events:
// fleet-level incidents on a sharded job's stream — a worker going
// unreachable mid-shard, and the shard's unharvested remainder being
// put back on the pending list for reassignment.
type FleetEvent struct {
	// Type is "worker_lost" (a dispatched worker stopped answering) or
	// "reassigned" (a failed shard's remainder went back on the pending
	// list).
	Type string `json:"type"`
	// Worker is the worker's URL ("local" for an in-process shard).
	Worker string `json:"worker"`
	// Lo/Hi delimit the affected experiment-index range, when one is.
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// Error carries the failure detail, when there is one.
	Error string `json:"error,omitempty"`
}

// FleetWorkerStats is one worker's aggregated harvest observability in
// the coordinator's fleet metrics view (GET /v1/fleet). The counters
// accumulate across jobs and — because every harvest is journaled with
// the experiment checkpoints — across coordinator restarts.
type FleetWorkerStats struct {
	// Worker is the display identity: the registered name when one was
	// given, the URL otherwise, "local" for in-process shards.
	Worker string `json:"worker"`
	URL    string `json:"url,omitempty"`
	// State mirrors the registry view ("alive"/"lost"; empty for the
	// coordinator's local lane, which is not a registered worker).
	State string `json:"state,omitempty"`
	// Harvested counts experiment triples pulled from this worker.
	Harvested int `json:"harvested"`
	// ExpPerSec is the observed harvest throughput: triples over the
	// wall time the worker spent producing them — the signal adaptive
	// shard sizing needs.
	ExpPerSec float64 `json:"exp_per_sec"`
	// HarvestLagNS is the time since the last successful harvest from
	// this worker (0 when it never delivered).
	HarvestLagNS int64 `json:"harvest_lag_ns,omitempty"`
	// Assigned/Completed/Failures mirror the registry's shard counters.
	Assigned  int `json:"assigned,omitempty"`
	Completed int `json:"completed,omitempty"`
	Failures  int `json:"failures,omitempty"`
}

// FleetResponse is the body of GET /v1/fleet: the coordinator's fleet
// metrics — per-worker harvest throughput plus the incident counters
// the "fleet" SSE events increment.
type FleetResponse struct {
	Coordinator bool `json:"coordinator"`
	// Reassigned counts shard ranges re-planned after a failure;
	// WorkersLost counts workers that went unreachable mid-shard.
	Reassigned  int64 `json:"reassigned"`
	WorkersLost int64 `json:"workers_lost"`
	// Stalls counts experiments the per-job watchdogs have flagged as
	// stalled, summed over every known job.
	Stalls  int64              `json:"stalls"`
	Workers []FleetWorkerStats `json:"workers"`
}

// ExperimentRecord is one checkpointed (index, seed, result) triple, as
// served by GET /v1/jobs/{id}/experiments — the coordinator's harvest
// feed. The field names match the journal's "exp" records.
type ExperimentRecord struct {
	Index  int                        `json:"i"`
	Seed   int64                      `json:"seed"`
	Result *campaign.ExperimentResult `json:"r"`
}

// ExperimentsResponse is the body of GET /v1/jobs/{id}/experiments.
type ExperimentsResponse struct {
	ID          string             `json:"id"`
	Experiments []ExperimentRecord `json:"experiments"`
}

// WorkerRegistration is the body of POST /v1/workers: a worker vulfid
// announcing itself to a coordinator. Re-posting the same URL is the
// heartbeat — registration and liveness are one idempotent call.
type WorkerRegistration struct {
	// URL is the base address the coordinator should reach the worker
	// at (e.g. "http://10.0.0.7:8666"). Required; it keys the registry.
	URL string `json:"url"`
	// Name is an optional human label shown in the fleet view.
	Name string `json:"name,omitempty"`
}

// Worker is one registered worker in the coordinator's fleet view
// (GET /v1/workers).
type Worker struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Name string `json:"name,omitempty"`
	// State is "alive" (heartbeat within the TTL) or "lost" (TTL
	// expired, or the last shard dispatched to it failed; a fresh
	// heartbeat revives it).
	State string `json:"state"`
	// Busy marks a worker currently running a shard for this
	// coordinator.
	Busy       bool      `json:"busy,omitempty"`
	Registered time.Time `json:"registered"`
	LastSeen   time.Time `json:"last_seen"`
	// Beats counts heartbeats since registration — the same
	// beat-counter liveness idiom the experiment watchdog uses.
	Beats int `json:"beats"`
	// Assigned/Completed/Failures count shards dispatched to, finished
	// by, and failed on this worker.
	Assigned  int `json:"assigned"`
	Completed int `json:"completed"`
	Failures  int `json:"failures,omitempty"`
}

// WorkersResponse is the body of GET /v1/workers.
type WorkersResponse struct {
	Coordinator bool     `json:"coordinator"`
	Workers     []Worker `json:"workers"`
}
