package passes

import "vulfi/internal/ir"

// ConstFold performs the scalar-integer constant folding and identity
// simplification an -O3 pipeline would have done before VULFI sees the
// IR: constant arithmetic collapses to constants, and x+0 / x-0 / x*1
// style identities disappear. (Floating-point folding is deliberately
// omitted: x+0.0 is not an identity for -0.0, and the code generator
// does not emit foldable float constants anyway.)
//
// Folding matters for fidelity: `foreach (i = 0 ... n)` lowers with
// span = n - 0, and after folding the entry block computes
// `%nextras = srem i32 %n, 8` — the exact instruction the paper's
// Figure 7 shows.
type ConstFold struct {
	// Folded counts simplified instructions after Run.
	Folded int
}

// Name implements Pass.
func (p *ConstFold) Name() string { return "constfold" }

// Run implements Pass.
func (p *ConstFold) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		p.Folded += foldFunc(f)
	}
	return nil
}

func foldFunc(f *ir.Func) int {
	folded := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if nv := foldInstr(in); nv != nil {
					in.ReplaceAllUsesWith(nv)
					b.Remove(in)
					folded++
					changed = true
					break // the instruction list was mutated; restart block
				}
			}
		}
	}
	return folded
}

// foldInstr returns the replacement value if in can be simplified.
func foldInstr(in *ir.Instr) ir.Value {
	if in.Ty == nil || in.Ty.IsVoid() || in.Ty.IsVector() || in.NumUses() == 0 {
		return nil
	}
	switch {
	case in.Op.IsCast():
		return foldCast(in)
	case in.Op == ir.OpICmp:
		return foldICmp(in)
	case in.Op == ir.OpSelect:
		if c, ok := in.Operand(0).(*ir.Const); ok && !c.Undef {
			if c.Int() != 0 {
				return in.Operand(1)
			}
			return in.Operand(2)
		}
		return nil
	}
	if !in.Ty.IsInt() || in.NumOperands() != 2 {
		return nil
	}
	x, y := in.Operand(0), in.Operand(1)
	cx, xOK := constOf(x)
	cy, yOK := constOf(y)

	// Identity simplifications.
	switch in.Op {
	case ir.OpAdd:
		if yOK && cy == 0 {
			return x
		}
		if xOK && cx == 0 {
			return y
		}
	case ir.OpSub:
		if yOK && cy == 0 {
			return x
		}
	case ir.OpMul:
		if yOK && cy == 1 {
			return x
		}
		if xOK && cx == 1 {
			return y
		}
		if (yOK && cy == 0) || (xOK && cx == 0) {
			return ir.ConstInt(in.Ty, 0)
		}
	case ir.OpAnd:
		if (yOK && cy == 0) || (xOK && cx == 0) {
			return ir.ConstInt(in.Ty, 0)
		}
	case ir.OpOr, ir.OpXor:
		if yOK && cy == 0 {
			return x
		}
		if xOK && cx == 0 {
			return y
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if yOK && cy == 0 {
			return x
		}
	}

	if !xOK || !yOK {
		return nil
	}
	bits := in.Ty.Bits
	ux := ir.TruncateToWidth(uint64(cx), bits)
	uy := ir.TruncateToWidth(uint64(cy), bits)
	var r uint64
	switch in.Op {
	case ir.OpAdd:
		r = ux + uy
	case ir.OpSub:
		r = ux - uy
	case ir.OpMul:
		r = ux * uy
	case ir.OpAnd:
		r = ux & uy
	case ir.OpOr:
		r = ux | uy
	case ir.OpXor:
		r = ux ^ uy
	case ir.OpShl:
		r = ux << (uy % uint64(bits))
	case ir.OpLShr:
		r = ux >> (uy % uint64(bits))
	case ir.OpAShr:
		r = uint64(ir.SignExtend(ux, bits) >> (uy % uint64(bits)))
	default:
		return nil // division family folds are skipped (trap semantics)
	}
	return ir.ConstInt(in.Ty, int64(r))
}

func constOf(v ir.Value) (int64, bool) {
	c, ok := v.(*ir.Const)
	if !ok || c.Undef || !c.Ty.IsInt() || c.Ty.IsVector() {
		return 0, false
	}
	return c.Int(), true
}

func foldCast(in *ir.Instr) ir.Value {
	c, ok := in.Operand(0).(*ir.Const)
	if !ok || c.Undef || !in.Ty.IsInt() || !c.Ty.IsInt() {
		return nil
	}
	switch in.Op {
	case ir.OpTrunc, ir.OpZExt:
		return ir.ConstInt(in.Ty, int64(ir.TruncateToWidth(c.Bits[0], in.Ty.Bits)))
	case ir.OpSExt:
		return ir.ConstInt(in.Ty, ir.SignExtend(c.Bits[0], c.Ty.Bits))
	}
	return nil
}

func foldICmp(in *ir.Instr) ir.Value {
	if in.Ty != ir.I1 {
		return nil
	}
	cx, okX := constOf(in.Operand(0))
	cy, okY := constOf(in.Operand(1))
	if !okX || !okY {
		return nil
	}
	bits := in.Operand(0).Type().Bits
	sx, sy := ir.SignExtend(uint64(cx), bits), ir.SignExtend(uint64(cy), bits)
	ux := ir.TruncateToWidth(uint64(cx), bits)
	uy := ir.TruncateToWidth(uint64(cy), bits)
	var r bool
	switch in.Pred {
	case ir.IntEQ:
		r = ux == uy
	case ir.IntNE:
		r = ux != uy
	case ir.IntSLT:
		r = sx < sy
	case ir.IntSLE:
		r = sx <= sy
	case ir.IntSGT:
		r = sx > sy
	case ir.IntSGE:
		r = sx >= sy
	case ir.IntULT:
		r = ux < uy
	case ir.IntULE:
		r = ux <= uy
	case ir.IntUGT:
		r = ux > uy
	case ir.IntUGE:
		r = ux >= uy
	default:
		return nil
	}
	return ir.ConstBool(r)
}
