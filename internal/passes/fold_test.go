package passes

import (
	"strings"
	"testing"

	"vulfi/internal/ir"
)

func foldModule(t *testing.T, build func(f *ir.Func, bu *ir.Builder)) (*ir.Module, *ConstFold) {
	t.Helper()
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.I32, ir.Ptr(ir.I32)},
		[]string{"x", "p"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	build(f, bu)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	p := &ConstFold{}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid after folding: %v", err)
	}
	return m, p
}

func TestFoldConstantArithmetic(t *testing.T) {
	m, p := foldModule(t, func(f *ir.Func, bu *ir.Builder) {
		a := bu.Add(ir.ConstInt(ir.I32, 6), ir.ConstInt(ir.I32, 7), "a")
		b := bu.Mul(a, ir.ConstInt(ir.I32, 2), "b")
		r := bu.Add(f.Params[0], b, "r") // x + 26
		bu.Ret(r)
	})
	if p.Folded < 2 {
		t.Fatalf("folded %d, want >= 2", p.Folded)
	}
	text := m.String()
	if !strings.Contains(text, "%r = add i32 %x, 26") {
		t.Fatalf("constants not folded:\n%s", text)
	}
}

func TestFoldIdentities(t *testing.T) {
	m, _ := foldModule(t, func(f *ir.Func, bu *ir.Builder) {
		a := bu.Sub(f.Params[0], ir.ConstInt(ir.I32, 0), "a") // x - 0 -> x
		b := bu.Mul(a, ir.ConstInt(ir.I32, 1), "b")           // x * 1 -> x
		c := bu.Add(b, ir.ConstInt(ir.I32, 0), "c")           // x + 0 -> x
		bu.Store(c, f.Params[1])
		bu.Ret(c)
	})
	text := m.String()
	if !strings.Contains(text, "store i32 %x") || !strings.Contains(text, "ret i32 %x") {
		t.Fatalf("identities not simplified:\n%s", text)
	}
}

func TestFoldICmpAndSelect(t *testing.T) {
	m, _ := foldModule(t, func(f *ir.Func, bu *ir.Builder) {
		c := bu.ICmp(ir.IntSLT, ir.ConstInt(ir.I32, 3), ir.ConstInt(ir.I32, 5), "c")
		s := bu.Select(c, f.Params[0], ir.ConstInt(ir.I32, 99), "s")
		bu.Ret(s)
	})
	text := m.String()
	if !strings.Contains(text, "ret i32 %x") {
		t.Fatalf("icmp/select chain not folded:\n%s", text)
	}
}

func TestFoldCasts(t *testing.T) {
	m, _ := foldModule(t, func(f *ir.Func, bu *ir.Builder) {
		w := bu.Cast(ir.OpSExt, ir.ConstInt(ir.I8, -3), ir.I32, "w")
		r := bu.Add(f.Params[0], w, "r")
		bu.Ret(r)
	})
	if !strings.Contains(m.String(), "%r = add i32 %x, -3") {
		t.Fatalf("sext of constant not folded:\n%s", m)
	}
}

func TestFoldDoesNotTouchDivision(t *testing.T) {
	_, p := foldModule(t, func(f *ir.Func, bu *ir.Builder) {
		// 1/0 must stay (it traps at runtime; folding would hide that).
		d := bu.SDiv(ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 0), "d")
		bu.Ret(d)
	})
	if p.Folded != 0 {
		t.Fatal("division folded")
	}
}

func TestFoldSkipsVectorsAndFloats(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.F32, nil, nil)
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	a := bu.FAdd(ir.ConstFloat(ir.F32, 1), ir.ConstFloat(ir.F32, 2), "a")
	bu.Ret(a)
	p := &ConstFold{}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	if p.Folded != 0 {
		t.Fatal("float arithmetic folded (policy: leave floats alone)")
	}
}
