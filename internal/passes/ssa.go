package passes

import (
	"errors"
	"fmt"

	"vulfi/internal/ir"
)

// VerifySSA checks the dominance property of SSA form: every use of an
// instruction's value must be dominated by its definition (for phi
// incomings, the definition must dominate the end of the incoming block).
// The module verifier checks types and structure; this pass checks the
// deeper value-flow invariant the interpreter relies on.
func VerifySSA(f *ir.Func) error {
	if f.IsDecl {
		return nil
	}
	idom := Dominators(f)
	var errs []error
	blockIndex := map[*ir.Block]map[*ir.Instr]int{}
	for _, b := range f.Blocks {
		m := make(map[*ir.Instr]int, len(b.Instrs))
		for i, in := range b.Instrs {
			m[in] = i
		}
		blockIndex[b] = m
	}

	dominatesUse := func(def *ir.Instr, user *ir.Instr, opIdx int) bool {
		defB := def.Parent
		if user.Op == ir.OpPhi {
			// The def must dominate the end of the incoming block.
			inc := user.Succs[opIdx]
			return Dominates(idom, defB, inc)
		}
		useB := user.Parent
		if defB == useB {
			bi := blockIndex[defB]
			// Within a block, definition must precede use; phis at block
			// entry are all "simultaneous", so a phi may use another phi
			// of the same block (the previous iteration's value).
			if def.Op == ir.OpPhi && user.Op == ir.OpPhi {
				return true
			}
			return bi[def] < bi[user]
		}
		return Dominates(idom, defB, useB)
	}

	for _, b := range f.Blocks {
		if _, reachable := idom[b]; !reachable && b != f.Entry() {
			continue // unreachable code is not subject to dominance
		}
		for _, in := range b.Instrs {
			for i := 0; i < in.NumOperands(); i++ {
				def, ok := in.Operand(i).(*ir.Instr)
				if !ok {
					continue
				}
				if def.Parent == nil {
					errs = append(errs, fmt.Errorf(
						"@%s: %s uses detached instruction %%%s",
						f.Nam, in, def.Nam))
					continue
				}
				if !dominatesUse(def, in, i) {
					errs = append(errs, fmt.Errorf(
						"@%s/%s: use of %%%s in %q not dominated by its definition in %s",
						f.Nam, b.Nam, def.Nam, in.String(), def.Parent.Nam))
				}
			}
		}
	}
	return errors.Join(errs...)
}

// VerifySSAModule runs VerifySSA over every definition.
func VerifySSAModule(m *ir.Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if err := VerifySSA(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
