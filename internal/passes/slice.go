// Package passes provides the IR analyses VULFI's fault-site selection is
// built on: forward-slice computation over the use-def graph and the
// classification of fault sites into the paper's three categories
// (pure-data, control, address — §II-C, Figure 2).
package passes

import (
	"time"

	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/telemetry"
)

// sliceHist accumulates per-slice analysis wall time; fault-site
// enumeration runs one forward slice per candidate site, so this is the
// site-selection cost profile.
var sliceHist = telemetry.Default().Histogram("passes.forward_slice")

// SliceFlags summarizes what a forward slice reaches.
type SliceFlags struct {
	// Control is set when the slice reaches a control-flow decision: a
	// conditional branch condition or the execution mask of a masked
	// vector intrinsic (which gates per-lane execution).
	Control bool
	// Address is set when the slice reaches address computation: a
	// getelementptr operand, the pointer operand of a load/store, or the
	// base/index operands of a gather/scatter/masked memory intrinsic.
	Address bool
}

// ForwardSlice walks the transitive uses of value v and reports what the
// slice reaches. The walk follows SSA edges only (it does not track
// data flow through memory), matching IR-level slicing practice.
func ForwardSlice(v ir.Value) SliceFlags {
	defer sliceHist.Since(time.Now())
	var flags SliceFlags
	seen := map[*ir.Instr]bool{}
	var visit func(uses []ir.Use)
	visit = func(uses []ir.Use) {
		for _, u := range uses {
			in := u.User
			classifyUse(in, u.Index, &flags)
			if seen[in] {
				continue
			}
			seen[in] = true
			// Propagate through the user's own L-value if it has one.
			if in.Ty != nil && !in.Ty.IsVoid() {
				visit(in.Uses())
			}
		}
	}
	switch x := v.(type) {
	case *ir.Instr:
		visit(x.Uses())
	case *ir.Param:
		visit(x.Uses())
	}
	return flags
}

// classifyUse updates flags for a single use edge (user, operand index).
func classifyUse(in *ir.Instr, opIdx int, flags *SliceFlags) {
	switch in.Op {
	case ir.OpCondBr:
		flags.Control = true
	case ir.OpGEP:
		flags.Address = true
	case ir.OpLoad:
		if opIdx == 0 {
			flags.Address = true
		}
	case ir.OpStore:
		if opIdx == 1 {
			flags.Address = true
		}
	case ir.OpCall:
		name := in.Callee.Nam
		if mi, ok := isa.MaskedOpInfo(name); ok {
			switch {
			case opIdx == mi.MaskOperand:
				flags.Control = true
			case opIdx == 0:
				flags.Address = true // base pointer
			case opIdx == 1 && isGatherScatter(name):
				flags.Address = true // index vector
			}
		}
	}
}

func isGatherScatter(name string) bool {
	mi, ok := isa.MaskedOpInfo(name)
	if !ok {
		return false
	}
	return mi.MaskOperand == 2 // gather/scatter carry mask at operand 2
}

// Category is a paper fault-site category.
type Category int

// Fault-site categories (§II-C). A site can be both Control and Address
// (Figure 2); PureData is disjoint from both.
const (
	PureData Category = iota
	Control
	Address
)

var categoryNames = map[Category]string{
	PureData: "pure-data", Control: "control", Address: "address",
}

// String returns the category name used in the paper's figures.
func (c Category) String() string { return categoryNames[c] }

// AllCategories lists the categories in the paper's presentation order.
var AllCategories = []Category{PureData, Control, Address}

// Matches reports whether a slice with the given flags belongs to c.
func (f SliceFlags) Matches(c Category) bool {
	switch c {
	case PureData:
		return !f.Control && !f.Address
	case Control:
		return f.Control
	case Address:
		return f.Address
	}
	return false
}
