package passes

import (
	"strings"
	"testing"

	"vulfi/internal/ir"
)

// buildDiamondLoop builds:
//
//	entry -> header -> {then, else} -> latch -> header | exit
func buildDiamondLoop() (*ir.Func, map[string]*ir.Block) {
	f := ir.NewFunc("f", ir.Void, []*ir.Type{ir.I32}, []string{"n"})
	blocks := map[string]*ir.Block{}
	for _, nm := range []string{"entry", "header", "then", "else", "latch", "exit"} {
		blocks[nm] = f.NewBlock(nm)
	}
	bu := ir.NewBuilder(blocks["entry"])
	bu.Br(blocks["header"])

	bu.SetBlock(blocks["header"])
	i := bu.Phi(ir.I32, "i")
	c := bu.ICmp(ir.IntSLT, i, f.Params[0], "c")
	bu.CondBr(c, blocks["then"], blocks["exit"])

	bu.SetBlock(blocks["then"])
	odd := bu.And(i, ir.ConstInt(ir.I32, 1), "odd")
	oc := bu.ICmp(ir.IntNE, odd, ir.ConstInt(ir.I32, 0), "oc")
	bu.CondBr(oc, blocks["else"], blocks["latch"])

	bu.SetBlock(blocks["else"])
	bu.Br(blocks["latch"])

	bu.SetBlock(blocks["latch"])
	i2 := bu.Add(i, ir.ConstInt(ir.I32, 1), "i2")
	bu.Br(blocks["header"])

	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), blocks["entry"])
	ir.AddIncoming(i, i2, blocks["latch"])

	bu.SetBlock(blocks["exit"])
	bu.Ret(nil)
	return f, blocks
}

func TestPreds(t *testing.T) {
	f, b := buildDiamondLoop()
	p := Preds(f)
	if len(p[b["header"]]) != 2 {
		t.Fatalf("header should have 2 preds, got %d", len(p[b["header"]]))
	}
	if len(p[b["latch"]]) != 2 {
		t.Fatalf("latch should have 2 preds (then, else), got %d", len(p[b["latch"]]))
	}
	if len(p[b["entry"]]) != 0 {
		t.Fatal("entry should have no preds")
	}
}

func TestReversePostOrder(t *testing.T) {
	f, b := buildDiamondLoop()
	rpo := ReversePostOrder(f)
	if len(rpo) != 6 {
		t.Fatalf("RPO visits %d blocks, want 6", len(rpo))
	}
	pos := map[*ir.Block]int{}
	for i, blk := range rpo {
		pos[blk] = i
	}
	if pos[b["entry"]] != 0 {
		t.Fatal("entry must come first")
	}
	if pos[b["header"]] > pos[b["then"]] || pos[b["then"]] > pos[b["latch"]] {
		t.Fatal("RPO order violates forward edges")
	}
}

func TestDominators(t *testing.T) {
	f, b := buildDiamondLoop()
	idom := Dominators(f)
	cases := []struct{ blk, dom string }{
		{"header", "entry"},
		{"then", "header"},
		{"else", "then"},
		{"latch", "then"},
		{"exit", "header"},
	}
	for _, c := range cases {
		if idom[b[c.blk]] != b[c.dom] {
			t.Errorf("idom(%s) = %v, want %s", c.blk, idom[b[c.blk]], c.dom)
		}
	}
	if !Dominates(idom, b["entry"], b["exit"]) {
		t.Error("entry should dominate exit")
	}
	if !Dominates(idom, b["header"], b["latch"]) {
		t.Error("header should dominate latch")
	}
	if Dominates(idom, b["else"], b["latch"]) {
		t.Error("else must not dominate latch (then-path bypasses it)")
	}
	if !Dominates(idom, b["exit"], b["exit"]) {
		t.Error("a block dominates itself")
	}
}

func TestDominatorsIgnoreUnreachable(t *testing.T) {
	f, _ := buildDiamondLoop()
	dead := f.NewBlock("dead")
	ir.NewBuilder(dead).Ret(nil)
	idom := Dominators(f)
	if _, ok := idom[dead]; ok {
		t.Error("unreachable block should have no idom entry")
	}
}

func TestWriteDOT(t *testing.T) {
	f, _ := buildDiamondLoop()
	var sb strings.Builder
	if err := WriteDOT(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		`digraph "f"`, `"entry" -> "header"`,
		`"header" -> "then" [label="T"]`, `"header" -> "exit" [label="F"]`,
		`"latch" -> "header"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, out)
		}
	}
	decl := ir.NewDecl("d", ir.Void)
	if err := WriteDOT(&sb, decl); err == nil {
		t.Error("rendering a declaration should fail")
	}
}
