package passes

import (
	"testing"

	"vulfi/internal/ir"
)

func TestDCERemovesDeadChains(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.I32, ir.Ptr(ir.I32)},
		[]string{"x", "p"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	live := bu.Add(f.Params[0], ir.ConstInt(ir.I32, 1), "live")
	// A dead three-instruction chain.
	d1 := bu.Mul(f.Params[0], f.Params[0], "d1")
	d2 := bu.Add(d1, d1, "d2")
	bu.Xor(d2, d2, "d3")
	// A store is a side effect and must survive even though unused.
	bu.Store(live, f.Params[1])
	bu.Ret(live)

	p := &DeadCodeElim{}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	if p.Removed != 3 {
		t.Fatalf("removed %d instructions, want 3", p.Removed)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("module invalid after DCE: %v", err)
	}
	for _, in := range f.Entry().Instrs {
		switch in.Nam {
		case "d1", "d2", "d3":
			t.Fatalf("%s not removed", in.Nam)
		}
	}
}

func TestDCEKeepsCallsAndStores(t *testing.T) {
	m := ir.NewModule("t")
	ext := ir.NewDecl("llvm.sqrt.f32", ir.F32, ir.F32)
	m.AddFunc(ext)
	f := ir.NewFunc("f", ir.Void, []*ir.Type{ir.F32}, []string{"x"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	bu.Call(ext, "unusedCall", f.Params[0])
	bu.Ret(nil)
	p := &DeadCodeElim{}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	if p.Removed != 0 {
		t.Fatal("DCE removed a call (calls may have side effects)")
	}
}

func TestDCERemovesDeadPhis(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.Void, []*ir.Type{ir.I32}, []string{"n"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	bu := ir.NewBuilder(entry)
	bu.Br(loop)
	bu.SetBlock(loop)
	i := bu.Phi(ir.I32, "i")
	dead := bu.Phi(ir.I32, "dead") // self-carried, never otherwise used
	i2 := bu.Add(i, ir.ConstInt(ir.I32, 1), "i2")
	c := bu.ICmp(ir.IntSLT, i2, f.Params[0], "c")
	bu.CondBr(c, loop, exit)
	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, i2, loop)
	ir.AddIncoming(dead, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(dead, dead, loop)
	bu.SetBlock(exit)
	bu.Ret(nil)

	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	p := &DeadCodeElim{}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	for _, in := range loop.Instrs {
		if in.Nam == "dead" {
			t.Fatal("self-referential dead phi not removed")
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid after DCE: %v", err)
	}
}
