package passes

import "vulfi/internal/ir"

// DeadCodeElim removes instructions whose results are unused and which
// have no side effects, iterating to a fixpoint. The code generator runs
// it before fault-site enumeration so the site population matches the
// paper's post-O3 IR: a dead value would absorb injections benignly and
// bias every outcome rate.
type DeadCodeElim struct {
	// Removed counts eliminated instructions after Run.
	Removed int
}

// Name implements Pass.
func (p *DeadCodeElim) Name() string { return "dce" }

// hasSideEffects reports whether an instruction must be kept regardless
// of uses.
func hasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCall:
		return true
	}
	return in.Op.IsTerminator()
}

// Run implements Pass.
func (p *DeadCodeElim) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		p.Removed += RunDCE(f)
	}
	return nil
}

// isDead reports whether an instruction's result is unused. A phi whose
// only user is itself (a self-carried loop value) is also dead.
func isDead(in *ir.Instr) bool {
	if in.NumUses() == 0 {
		return true
	}
	if in.Op != ir.OpPhi {
		return false
	}
	for _, u := range in.Uses() {
		if u.User != in {
			return false
		}
	}
	return true
}

// RunDCE eliminates dead instructions in one function and returns the
// number removed.
func RunDCE(f *ir.Func) int {
	removed := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			// Walk backwards so chains die in one sweep.
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if hasSideEffects(in) || in.Ty.IsVoid() {
					continue
				}
				if isDead(in) {
					b.Remove(in)
					removed++
					changed = true
				}
			}
		}
	}
	return removed
}
