package passes

import (
	"testing"
	"testing/quick"

	"vulfi/internal/ir"
)

// buildFooIR hand-builds the paper's Figure 3 foo() loop:
//
//	for (i = 0; i < n; i++) { a[i] = a[i] * s; s = s + i; }
//
// i must classify as control AND address; s as pure-data.
func buildFooIR() (*ir.Module, *ir.Instr, *ir.Instr) {
	m := ir.NewModule("foo")
	f := ir.NewFunc("foo", ir.Void, []*ir.Type{ir.Ptr(ir.I32), ir.I32, ir.I32},
		[]string{"a", "n", "x"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	bu := ir.NewBuilder(entry)
	bu.Br(loop)

	bu.SetBlock(loop)
	i := bu.Phi(ir.I32, "i")
	s := bu.Phi(ir.I32, "s")
	cond := bu.ICmp(ir.IntSLT, i, f.Params[1], "cond")
	bu.CondBr(cond, body, exit)

	bu.SetBlock(body)
	p := bu.GEP(f.Params[0], i, "p")
	v := bu.Load(p, "v")
	mul := bu.Mul(v, s, "mul")
	bu.Store(mul, p)
	s2 := bu.Add(s, i, "s2")
	i2 := bu.Add(i, ir.ConstInt(ir.I32, 1), "i2")
	bu.Br(loop)

	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, f.Params[2], entry)
	ir.AddIncoming(s, s2, body)

	bu.SetBlock(exit)
	bu.Ret(nil)
	return m, i, s
}

func TestFigure3Classification(t *testing.T) {
	m, i, s := buildFooIR()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	fi := ForwardSlice(i)
	if !fi.Control || !fi.Address {
		t.Fatalf("i should be control+address (paper Figure 3), got %+v", fi)
	}
	fs := ForwardSlice(s)
	if fs.Control || fs.Address {
		t.Fatalf("s should be pure-data (paper Figure 3), got %+v", fs)
	}
	if !fs.Matches(PureData) || fs.Matches(Control) || fs.Matches(Address) {
		t.Fatal("pure-data matching wrong")
	}
	if !fi.Matches(Control) || !fi.Matches(Address) || fi.Matches(PureData) {
		t.Fatal("control/address matching wrong")
	}
}

func TestSliceFollowsTransitiveUses(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.Void, []*ir.Type{ir.Ptr(ir.F32), ir.I32},
		[]string{"a", "x"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	// x -> y -> z -> gep index: x is an address site transitively.
	y := bu.Add(f.Params[1], ir.ConstInt(ir.I32, 1), "y")
	z := bu.Mul(y, ir.ConstInt(ir.I32, 2), "z")
	p := bu.GEP(f.Params[0], z, "p")
	bu.Store(ir.ConstFloat(ir.F32, 0), p)
	bu.Ret(nil)

	fl := ForwardSlice(f.Params[1])
	if !fl.Address {
		t.Fatal("transitive address use not found")
	}
	if ForwardSlice(y).Address != true {
		t.Fatal("intermediate value should be address too")
	}
}

func TestSlicePointerOperandsAreAddress(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.F32, []*ir.Type{ir.Ptr(ir.F32)}, []string{"p"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	l := bu.Load(f.Params[0], "l")
	bu.Ret(l)
	if !ForwardSlice(f.Params[0]).Address {
		t.Fatal("load pointer operand should mark address")
	}
	// The loaded value itself is pure-data (only flows to ret).
	if fl := ForwardSlice(l); fl.Address || fl.Control {
		t.Fatal("loaded value misclassified")
	}
}

func TestSliceMaskOperandIsControl(t *testing.T) {
	m := ir.NewModule("t")
	mask := ir.NewDecl("llvm.x86.avx.maskload.ps.256",
		ir.Vec(ir.F32, 8), ir.Ptr(ir.F32), ir.Vec(ir.I32, 8))
	m.AddFunc(mask)
	f := ir.NewFunc("f", ir.Vec(ir.F32, 8),
		[]*ir.Type{ir.Ptr(ir.F32), ir.Vec(ir.I1, 8)}, []string{"p", "m"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	im := bu.Cast(ir.OpSExt, f.Params[1], ir.Vec(ir.I32, 8), "im")
	ld := bu.Call(mask, "ld", f.Params[0], im)
	bu.Ret(ld)

	if fl := ForwardSlice(im); !fl.Control {
		t.Fatal("masked-intrinsic mask operand should be control")
	}
	if fl := ForwardSlice(f.Params[0]); !fl.Address {
		t.Fatal("masked-intrinsic pointer operand should be address")
	}
}

func TestSliceStopsAtStores(t *testing.T) {
	// Data flow through memory is not tracked (SSA slicing).
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.I32}, []string{"x"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	slot := bu.Alloca(ir.I32, 1, "slot")
	bu.Store(f.Params[0], slot)
	back := bu.Load(slot, "back")
	p2 := bu.GEP(slot, back, "p2")
	l2 := bu.Load(p2, "l2")
	bu.Ret(l2)
	// x reaches only the store's value operand: pure-data.
	if fl := ForwardSlice(f.Params[0]); fl.Address || fl.Control {
		t.Fatalf("value stored to memory should classify pure-data, got %+v", fl)
	}
	// back feeds a GEP: address.
	if !ForwardSlice(back).Address {
		t.Fatal("reloaded value feeding GEP should be address")
	}
}

// Property (Figure 2): for arbitrary flag combinations, PureData matches
// exactly the complement of Control ∪ Address.
func TestCategoryPartitionProperty(t *testing.T) {
	prop := func(control, address bool) bool {
		fl := SliceFlags{Control: control, Address: address}
		pure := fl.Matches(PureData)
		if pure != (!control && !address) {
			return false
		}
		// Every site matches at least one category.
		return pure || fl.Matches(Control) || fl.Matches(Address)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCategoryNames(t *testing.T) {
	if PureData.String() != "pure-data" || Control.String() != "control" ||
		Address.String() != "address" {
		t.Error("category names wrong")
	}
	if len(AllCategories) != 3 {
		t.Error("AllCategories wrong")
	}
}
