package passes

import (
	"time"

	"vulfi/internal/ir"
	"vulfi/internal/telemetry"
)

// Pass is a module transformation or analysis, in the style of LLVM
// module passes. VULFI's instrumentor and the detector-synthesis
// transforms are implemented as passes.
type Pass interface {
	Name() string
	Run(m *ir.Module) error
}

// Manager runs a pipeline of passes, verifying the module after each
// transformation when Verify is set.
type Manager struct {
	Verify bool
	passes []Pass
}

// Add appends passes to the pipeline.
func (pm *Manager) Add(p ...Pass) { pm.passes = append(pm.passes, p...) }

// Run executes the pipeline, recording each pass's wall time in the
// default telemetry registry under "passes.<name>".
func (pm *Manager) Run(m *ir.Module) error {
	for _, p := range pm.passes {
		start := time.Now()
		if err := p.Run(m); err != nil {
			return &PassError{Pass: p.Name(), Err: err}
		}
		telemetry.Default().Histogram("passes." + p.Name()).Since(start)
		if pm.Verify {
			if err := m.Verify(); err != nil {
				return &PassError{Pass: p.Name(), Err: err}
			}
		}
	}
	return nil
}

// PassError wraps a failure with the responsible pass name.
type PassError struct {
	Pass string
	Err  error
}

// Error implements error.
func (e *PassError) Error() string { return "pass " + e.Pass + ": " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *PassError) Unwrap() error { return e.Err }
