package passes

import (
	"fmt"
	"io"
	"strings"

	"vulfi/internal/ir"
)

// WriteDOT renders a function's CFG in Graphviz DOT form, one record node
// per basic block with its instructions — the format used to produce
// CFG figures like the paper's Figure 7.
func WriteDOT(w io.Writer, f *ir.Func) error {
	if f.IsDecl {
		return fmt.Errorf("passes: cannot render declaration @%s", f.Nam)
	}
	fmt.Fprintf(w, "digraph %q {\n", f.Nam)
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\", fontsize=9];")
	for _, b := range f.Blocks {
		var lines []string
		lines = append(lines, b.Nam+":")
		for _, in := range b.Instrs {
			lines = append(lines, "  "+in.String())
		}
		label := strings.Join(lines, "\\l") + "\\l"
		label = strings.ReplaceAll(label, `"`, `\"`)
		fmt.Fprintf(w, "  %q [label=\"%s\"];\n", b.Nam, label)
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for i, s := range b.Succs() {
			attr := ""
			if t.Op == ir.OpCondBr {
				if i == 0 {
					attr = " [label=\"T\"]"
				} else {
					attr = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(w, "  %q -> %q%s;\n", b.Nam, s.Nam, attr)
		}
	}
	fmt.Fprintln(w, "}")
	return nil
}
