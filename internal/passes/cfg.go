package passes

import "vulfi/internal/ir"

// Preds returns the predecessor map of a function's CFG.
func Preds(f *ir.Func) map[*ir.Block][]*ir.Block {
	out := map[*ir.Block][]*ir.Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			out[s] = append(out[s], b)
		}
	}
	return out
}

// ReversePostOrder returns the blocks reachable from entry in reverse
// post-order (a topological-ish order for reducible CFGs).
func ReversePostOrder(f *ir.Func) []*ir.Block {
	var post []*ir.Block
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if f.Entry() != nil {
		dfs(f.Entry())
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator map using the
// Cooper–Harvey–Kennedy iterative algorithm. The entry block's idom is
// itself.
func Dominators(f *ir.Func) map[*ir.Block]*ir.Block {
	rpo := ReversePostOrder(f)
	index := map[*ir.Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	preds := Preds(f)
	idom := map[*ir.Block]*ir.Block{}
	entry := f.Entry()
	if entry == nil {
		return idom
	}
	idom[entry] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range preds[b] {
				if idom[p] == nil {
					continue // not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}
