package interp

import (
	"strings"
	"testing"

	"vulfi/internal/ir"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntValue(ir.I32, -7), "-7"},
		{FloatValue(ir.F32, 2.5), "2.5"},
		{PtrValue(ir.Ptr(ir.F32), 0x1000), "0x1000"},
		{Value{Ty: ir.Vec(ir.I32, 3), Bits: []uint64{1, 2, 3}}, "<1, 2, 3>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTrapError(t *testing.T) {
	tr := trapf(TrapOOB, "access at %#x", 0x42)
	msg := tr.Error()
	if !strings.Contains(msg, "out-of-bounds") || !strings.Contains(msg, "0x42") {
		t.Errorf("trap message %q", msg)
	}
	if trapf(TrapBudget, "x").Error() == trapf(TrapNull, "x").Error() {
		t.Error("distinct trap kinds print identically")
	}
}

func TestDumpState(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.Void, nil, nil)
	m.AddFunc(f)
	ir.NewBuilder(f.NewBlock("entry")).Ret(nil)
	it, _ := New(m, Options{})
	if _, tr := it.Run("f"); tr != nil {
		t.Fatal(tr)
	}
	s := it.DumpState()
	if !strings.Contains(s, "dyn=1") {
		t.Errorf("DumpState = %q", s)
	}
}

func TestConstValueRoundtrip(t *testing.T) {
	c := ir.ConstVec(ir.Vec(ir.I32, 4), []uint64{9, 8, 7, 6})
	v := ConstValue(c)
	// Mutating the runtime value must not corrupt the shared constant.
	v.Bits[0] = 99
	if c.Bits[0] != 9 {
		t.Fatal("ConstValue aliases the constant's payload")
	}
}
