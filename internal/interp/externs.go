package interp

import (
	"fmt"
	"math"
	"strings"
)

// RegisterBuiltins installs the language runtime builtins every program
// can use: the output functions (whose accumulated stream is the
// program's comparable output) and an abort hook.
func RegisterBuiltins(it *Interp) {
	out := func(format string) ExternFn {
		return func(it *Interp, args []Value) (Value, *Trap) {
			v := args[0]
			if v.Ty.Scalar().IsFloat() {
				for i := range v.Bits {
					fmt.Fprintf(&it.Output, format, v.LaneFloat(i))
				}
			} else {
				for i := range v.Bits {
					fmt.Fprintf(&it.Output, format, v.LaneInt(i))
				}
			}
			return Value{}, nil
		}
	}
	it.RegisterExtern("vulfi.out.i32", out("%d\n"))
	it.RegisterExtern("vulfi.out.i64", out("%d\n"))
	it.RegisterExtern("vulfi.out.f32", out("%.5g\n"))
	it.RegisterExtern("vulfi.out.f64", out("%.9g\n"))
	it.RegisterExtern("vulfi.abort", func(it *Interp, args []Value) (Value, *Trap) {
		return Value{}, trapf(TrapHalt, "program abort")
	})
}

// mathUnary maps intrinsic base names to per-lane float implementations.
var mathUnary = map[string]func(float64) float64{
	"sqrt":  math.Sqrt,
	"sin":   math.Sin,
	"cos":   math.Cos,
	"tan":   math.Tan,
	"exp":   math.Exp,
	"log":   math.Log,
	"fabs":  math.Abs,
	"floor": math.Floor,
	"ceil":  math.Ceil,
	"round": math.Round,
	"rcp":   func(x float64) float64 { return 1 / x },
	"rsqrt": func(x float64) float64 { return 1 / math.Sqrt(x) },
}

// mathBinary maps intrinsic base names to per-lane binary implementations.
var mathBinary = map[string]func(float64, float64) float64{
	"pow":    math.Pow,
	"minnum": math.Min,
	"maxnum": math.Max,
	"atan2":  math.Atan2,
}

// intrinsicBase extracts the operation name from an LLVM-style intrinsic
// name: "llvm.sqrt.v8f32" -> "sqrt".
func intrinsicBase(name string) string {
	if !strings.HasPrefix(name, "llvm.") {
		return ""
	}
	rest := name[len("llvm."):]
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// genericIntrinsic resolves per-lane math intrinsics by base name,
// covering every type suffix (.f32, .v4f32, .v8f32, ...), plus the typed
// vulfi.out.* output family.
func genericIntrinsic(name string) (ExternFn, bool) {
	if strings.HasPrefix(name, "vulfi.out.") {
		return outImpl, true
	}
	base := intrinsicBase(name)
	if fn, ok := mathUnary[base]; ok {
		return func(it *Interp, args []Value) (Value, *Trap) {
			return mapLanes1(args[0], fn), nil
		}, true
	}
	if fn, ok := mathBinary[base]; ok {
		return func(it *Interp, args []Value) (Value, *Trap) {
			return mapLanes2(args[0], args[1], fn), nil
		}, true
	}
	return nil, false
}

// outImpl appends each lane of the argument to the program output stream.
func outImpl(it *Interp, args []Value) (Value, *Trap) {
	v := args[0]
	if v.Ty.Scalar().IsFloat() {
		for i := range v.Bits {
			fmt.Fprintf(&it.Output, "%.5g\n", v.LaneFloat(i))
		}
	} else {
		for i := range v.Bits {
			fmt.Fprintf(&it.Output, "%d\n", v.LaneInt(i))
		}
	}
	return Value{}, nil
}

func mapLanes1(v Value, fn func(float64) float64) Value {
	out := Zero(v.Ty)
	for i := range v.Bits {
		out.SetLaneFloat(i, fn(v.LaneFloat(i)))
	}
	return out
}

func mapLanes2(a, b Value, fn func(float64, float64) float64) Value {
	out := Zero(a.Ty)
	for i := range a.Bits {
		out.SetLaneFloat(i, fn(a.LaneFloat(i), b.LaneFloat(i)))
	}
	return out
}
