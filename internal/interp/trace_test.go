package interp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vulfi/internal/ir"
	"vulfi/internal/telemetry"
)

// runTraced executes the buildSum loop under a tracer and returns it.
func runTraced(t *testing.T, tr *Tracer) {
	t.Helper()
	m := ir.NewModule("t")
	buildSum(m)
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	it.SetTracer(tr)
	addr, trap := it.Mem.Alloc(10 * 4)
	if trap != nil {
		t.Fatal(trap)
	}
	if _, trap := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr),
		IntValue(ir.I32, 10)); trap != nil {
		t.Fatal(trap)
	}
}

// TestTracerLimitExact: emission must stop exactly at Limit, with the
// remainder observable through Skipped (previously `seen` was
// unobservable from outside the package).
func TestTracerLimitExact(t *testing.T) {
	// Unlimited run first, to know the total event count.
	var all bytes.Buffer
	full := &Tracer{W: &all}
	runTraced(t, full)
	total := full.Seen()
	if total < 10 {
		t.Fatalf("loop traced only %d events; test needs more", total)
	}
	if full.Skipped() != 0 {
		t.Fatalf("unlimited tracer skipped %d", full.Skipped())
	}

	const limit = 5
	var buf bytes.Buffer
	tr := &Tracer{W: &buf, Limit: limit}
	runTraced(t, tr)
	if tr.Seen() != limit {
		t.Fatalf("Seen = %d, want exactly %d", tr.Seen(), limit)
	}
	if want := total - limit; tr.Skipped() != want {
		t.Fatalf("Skipped = %d, want %d", tr.Skipped(), want)
	}
	if got := strings.Count(buf.String(), "\n"); got != limit {
		t.Fatalf("emitted %d lines, want %d", got, limit)
	}
}

// TestTracerEventSink: with an EventWriter attached the tracer emits
// structured "trace" events in the shared telemetry schema.
func TestTracerEventSink(t *testing.T) {
	var buf bytes.Buffer
	ew := telemetry.NewEventWriter(&buf)
	tr := &Tracer{Events: ew, Limit: 4}
	runTraced(t, tr)
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	for _, line := range lines {
		var e telemetry.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if e.Type != "trace" || !strings.HasPrefix(e.Name, "sum/") {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}
