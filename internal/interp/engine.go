package interp

import "vulfi/internal/ir"

// Engine is an alternate execution backend for function bodies. An
// attached engine is offered every call to a defined (non-declaration)
// function after the interpreter has performed the shared call protocol
// — extern dispatch, depth accounting, argument-count checking — and
// may execute the body against the interpreter's own observable state
// (DynInstrs/DynVector, memory, output, detections, tracer, recorder,
// profiler, metrics). Returning ok == false declines the function and
// the interpreter tree-walks it instead, so an engine may compile only
// the subset of functions it supports.
//
// The contract is strict equivalence: an engine must reproduce the
// tree-walker's observable behavior exactly — identical DynInstrs
// accounting (including phis and terminators), identical budget-check
// schedule, identical trap kinds/messages/provenance, and identical
// Recorder/Profiler/Tracer event streams. The differential tests in
// internal/vm and internal/campaign pin this contract.
//
// Like registered externs and attached metrics, the engine survives
// Reset: campaign instance pools reset-and-reuse interpreters without
// re-attaching their backend.
type Engine interface {
	CallCompiled(it *Interp, f *ir.Func, args []Value) (Value, *Trap, bool)
}

// SetEngine attaches (or, with nil, detaches) an execution engine.
func (it *Interp) SetEngine(e Engine) { it.engine = e }

// Engine returns the attached execution engine, or nil.
func (it *Interp) Engine() Engine { return it.engine }

// FusedProfiler is optionally implemented by profilers that can account
// a fused superinstruction group in one call: one timestamp for the
// whole group instead of one per constituent, with counts and pair
// digrams identical to sequential Account calls. Backends that execute
// fused superinstructions use it so wall-time attribution stays fair
// (the group's execution time is split across its constituents) while
// profile totals still structurally equal DynInstrs.
type FusedProfiler interface {
	Profiler
	AccountFused(ins []*ir.Instr)
}

// The methods below export exactly the hooks an Engine needs to
// replicate the tree-walker's observable contract without duplicating
// its semantics: budget checks, trap provenance, the hook sinks and the
// scalar/vector operation kernels. Engines must use these rather than
// re-implement them, so the two backends cannot drift.

// CheckBudget reports a TrapBudget when the executed-instruction count
// has exceeded the configured budget, with the tree-walker's exact
// message. Engines call it on the same schedule as the interpreter:
// after every phi block, and after accounting a non-phi instruction
// whenever DynInstrs is a multiple of 1024.
func (it *Interp) CheckBudget() *Trap { return it.checkBudget() }

// LocateTrap stamps tr with the provenance of in (innermost frame
// wins), exactly as the tree-walker does before unwinding a trap.
func (it *Interp) LocateTrap(tr *Trap, in *ir.Instr) *Trap { return it.locate(tr, in) }

// Recorder returns the attached execution recorder, or nil.
func (it *Interp) Recorder() Recorder { return it.rec }

// Profiler returns the attached execution profiler, or nil.
func (it *Interp) Profiler() Profiler { return it.prof }

// HasTracer reports whether a debug tracer is attached.
func (it *Interp) HasTracer() bool { return it.tracer != nil }

// TraceInstr emits one tracer event for a retired non-terminator
// instruction, in the tree-walker's exact format. No-op without a
// tracer.
func (it *Interp) TraceInstr(in *ir.Instr, result Value) { it.trace(in, result) }

// ResolveExtern resolves a declaration to the implementation Call would
// dispatch to (registered extern, then generic intrinsic). Engines that
// cache the result must key the cache on ExternEpoch.
func (it *Interp) ResolveExtern(f *ir.Func) (ExternFn, bool) { return it.resolveExtern(f) }

// ExternEpoch returns a counter bumped by every RegisterExtern, so a
// resolved-extern cache can detect re-registration and invalidate.
func (it *Interp) ExternEpoch() uint64 { return it.externEpoch }

// Exported operation kernels. These are the tree-walker's own
// implementations (execInstr dispatches to the same functions), so a
// backend that routes its arithmetic through them shares bit-exact
// semantics by construction.

// IntBinOp applies an integer binary opcode lane-wise.
func IntBinOp(op ir.Op, a, b Value) (Value, *Trap) { return intBin(op, a, b) }

// FloatBinOp applies a float binary opcode lane-wise.
func FloatBinOp(op ir.Op, a, b Value) Value { return floatBin(op, a, b) }

// CompareOp applies an icmp/fcmp predicate lane-wise (i1 result).
func CompareOp(op ir.Op, pred ir.Pred, a, b Value) Value { return compare(op, pred, a, b) }

// SelectOp applies select (scalar condition or lane-wise blend).
func SelectOp(c, t, f Value) Value { return selectVal(c, t, f) }

// CastOp applies a cast opcode to v, producing type to.
func CastOp(op ir.Op, v Value, to *ir.Type) Value { return castVal(op, v, to) }

// The Into variants compute the same kernels into a caller-provided
// result value whose Bits already hold one word per lane. Every lane is
// written on the success path, so the storage may be recycled (e.g. a
// frame arena) without stale data leaking between instructions. They
// share the exact lane loops with the allocating forms above.

// IntBinInto applies an integer binary opcode lane-wise into out.
func IntBinInto(out Value, op ir.Op, a, b Value) *Trap { return intBinInto(out, op, a, b) }

// FloatBinInto applies a float binary opcode lane-wise into out.
func FloatBinInto(out Value, op ir.Op, a, b Value) { floatBinInto(out, op, a, b) }

// CompareInto applies an icmp/fcmp predicate lane-wise into out (i1 lanes).
func CompareInto(out Value, op ir.Op, pred ir.Pred, a, b Value) { compareInto(out, op, pred, a, b) }

// SelectInto applies select into out.
func SelectInto(out Value, c, t, f Value) { selectInto(out, c, t, f) }

// CastInto applies a cast opcode into out, producing type to.
func CastInto(out Value, op ir.Op, v Value, to *ir.Type) { castInto(out, op, v, to) }
