package interp

import "fmt"

// TrapKind classifies simulated hardware/OS traps. Any trap terminates the
// program; the campaign driver classifies a trapped faulty run as a Crash
// (the paper's "system failure, program crash, or any other issue that
// could easily be detected by the end user").
type TrapKind int

// Trap kinds.
const (
	// TrapOOB is an access outside any allocated segment (segfault).
	TrapOOB TrapKind = iota
	// TrapNull is a null-pointer dereference.
	TrapNull
	// TrapDivZero is integer division/remainder by zero (SIGFPE).
	TrapDivZero
	// TrapDivOverflow is INT_MIN / -1 (SIGFPE on x86).
	TrapDivOverflow
	// TrapBadIndex is an out-of-range extractelement/insertelement index.
	TrapBadIndex
	// TrapBudget means the dynamic-instruction budget was exceeded: the
	// faulty run hangs. Reported as Crash, tracked separately.
	TrapBudget
	// TrapStack is call-stack exhaustion.
	TrapStack
	// TrapOOM is arena exhaustion.
	TrapOOM
	// TrapHalt is an explicit abort requested by a runtime function.
	TrapHalt
)

var trapNames = map[TrapKind]string{
	TrapOOB: "out-of-bounds access", TrapNull: "null dereference",
	TrapDivZero: "integer division by zero", TrapDivOverflow: "division overflow",
	TrapBadIndex: "vector index out of range", TrapBudget: "instruction budget exceeded (hang)",
	TrapStack: "stack overflow", TrapOOM: "out of memory", TrapHalt: "halted",
}

// Trap describes a fatal runtime event.
type Trap struct {
	Kind TrapKind
	Msg  string
}

// Error implements error.
func (t *Trap) Error() string {
	return fmt.Sprintf("trap: %s: %s", trapNames[t.Kind], t.Msg)
}

func trapf(kind TrapKind, format string, args ...any) *Trap {
	return &Trap{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}
