package interp

import "fmt"

// TrapKind classifies simulated hardware/OS traps. Any trap terminates the
// program; the campaign driver classifies a trapped faulty run as a Crash
// (the paper's "system failure, program crash, or any other issue that
// could easily be detected by the end user").
type TrapKind int

// Trap kinds.
const (
	// TrapOOB is an access outside any allocated segment (segfault).
	TrapOOB TrapKind = iota
	// TrapNull is a null-pointer dereference.
	TrapNull
	// TrapDivZero is integer division/remainder by zero (SIGFPE).
	TrapDivZero
	// TrapDivOverflow is INT_MIN / -1 (SIGFPE on x86).
	TrapDivOverflow
	// TrapBadIndex is an out-of-range extractelement/insertelement index.
	TrapBadIndex
	// TrapBudget means the dynamic-instruction budget was exceeded: the
	// faulty run hangs. Reported as Crash, tracked separately.
	TrapBudget
	// TrapStack is call-stack exhaustion.
	TrapStack
	// TrapOOM is arena exhaustion.
	TrapOOM
	// TrapHalt is an explicit abort requested by a runtime function.
	TrapHalt
)

var trapNames = map[TrapKind]string{
	TrapOOB: "out-of-bounds access", TrapNull: "null dereference",
	TrapDivZero: "integer division by zero", TrapDivOverflow: "division overflow",
	TrapBadIndex: "vector index out of range", TrapBudget: "instruction budget exceeded (hang)",
	TrapStack: "stack overflow", TrapOOM: "out of memory", TrapHalt: "halted",
}

// String names the trap kind ("out-of-bounds access", ...).
func (k TrapKind) String() string { return trapNames[k] }

// Trap describes a fatal runtime event.
type Trap struct {
	Kind TrapKind
	Msg  string

	// Provenance of the trapping instruction, stamped by the interpreter
	// at the innermost frame (empty Func when unknown): the enclosing
	// function and block, the instruction's printed form, and the dynamic
	// instruction index at which the trap fired. Campaigns carry this
	// through to reports so a Crash outcome names its crash site.
	Func  string
	Block string
	Instr string
	Dyn   uint64
}

// Error implements error. The message deliberately excludes provenance
// so it stays stable whether or not the trap was located.
func (t *Trap) Error() string {
	return fmt.Sprintf("trap: %s: %s", trapNames[t.Kind], t.Msg)
}

// At formats the trap location as "@func/block: instr", or "" when the
// trap was never located.
func (t *Trap) At() string {
	if t.Func == "" {
		return ""
	}
	return fmt.Sprintf("@%s/%s: %s", t.Func, t.Block, t.Instr)
}

func trapf(kind TrapKind, format string, args ...any) *Trap {
	return &Trap{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}
