package interp

import (
	"testing"
	"testing/quick"

	"vulfi/internal/ir"
)

func TestMemoryAllocAndRoundtrip(t *testing.T) {
	m := NewMemory(0)
	addr, tr := m.Alloc(64)
	if tr != nil {
		t.Fatal(tr)
	}
	if addr < memBase {
		t.Fatalf("allocation below memBase: %#x", addr)
	}
	if addr%16 != 0 {
		t.Fatalf("allocation not 16-aligned: %#x", addr)
	}
	if tr := m.StoreScalar(ir.I32, addr+4, 0xDEADBEEF); tr != nil {
		t.Fatal(tr)
	}
	v, tr := m.LoadScalar(ir.I32, addr+4)
	if tr != nil || v != 0xDEADBEEF {
		t.Fatalf("roundtrip failed: %#x %v", v, tr)
	}
}

func TestMemoryTraps(t *testing.T) {
	m := NewMemory(0)
	addr, _ := m.Alloc(32)

	// Null page.
	if _, tr := m.LoadScalar(ir.I32, 0); tr == nil || tr.Kind != TrapNull {
		t.Errorf("null load trap = %v", tr)
	}
	if _, tr := m.LoadScalar(ir.I32, 8); tr == nil || tr.Kind != TrapNull {
		t.Errorf("near-null load trap = %v", tr)
	}
	// Past the end of the segment (guard gap).
	if _, tr := m.LoadScalar(ir.I32, addr+32); tr == nil || tr.Kind != TrapOOB {
		t.Errorf("OOB load trap = %v", tr)
	}
	// Straddling the end.
	if _, tr := m.LoadScalar(ir.I64, addr+28); tr == nil || tr.Kind != TrapOOB {
		t.Errorf("straddling load trap = %v", tr)
	}
	// Store traps identically.
	if tr := m.StoreScalar(ir.I32, addr+32, 1); tr == nil || tr.Kind != TrapOOB {
		t.Errorf("OOB store trap = %v", tr)
	}
	// Unallocated space far away.
	if _, tr := m.LoadScalar(ir.I32, 1<<40); tr == nil || tr.Kind != TrapOOB {
		t.Errorf("wild load trap = %v", tr)
	}
}

func TestMemoryGuardGapBetweenSegments(t *testing.T) {
	m := NewMemory(0)
	a, _ := m.Alloc(16)
	b, _ := m.Alloc(16)
	if b <= a+16 {
		t.Fatalf("segments not separated: %#x %#x", a, b)
	}
	// The gap must be unmapped.
	if _, tr := m.LoadScalar(ir.I8, a+16); tr == nil {
		t.Error("guard gap readable")
	}
}

func TestMemoryArenaLimit(t *testing.T) {
	m := NewMemory(256)
	if _, tr := m.Alloc(128); tr != nil {
		t.Fatal(tr)
	}
	if _, tr := m.Alloc(1 << 20); tr == nil || tr.Kind != TrapOOM {
		t.Errorf("arena limit trap = %v", tr)
	}
}

func TestVectorLoadStore(t *testing.T) {
	m := NewMemory(0)
	vt := ir.Vec(ir.F32, 8)
	addr, _ := m.Alloc(32)
	v := Zero(vt)
	for i := range v.Bits {
		v.SetLaneFloat(i, float64(i)+0.5)
	}
	if tr := m.Store(v, addr); tr != nil {
		t.Fatal(tr)
	}
	got, tr := m.Load(vt, addr)
	if tr != nil {
		t.Fatal(tr)
	}
	for i := range got.Bits {
		if got.LaneFloat(i) != float64(i)+0.5 {
			t.Fatalf("lane %d = %v", i, got.LaneFloat(i))
		}
	}
	// Scalar view of lane 2 matches the vector layout.
	s, _ := m.LoadScalar(ir.F32, addr+8)
	if Scalar(ir.F32, s).Float() != 2.5 {
		t.Fatal("vector layout not lane-contiguous")
	}
}

// Property: scalar store/load roundtrips for every width.
func TestScalarRoundtripProperty(t *testing.T) {
	m := NewMemory(0)
	addr, _ := m.Alloc(64)
	types := []*ir.Type{ir.I8, ir.I16, ir.I32, ir.I64, ir.F32, ir.F64}
	prop := func(bits uint64, tySel uint8, off8 uint8) bool {
		ty := types[int(tySel)%len(types)]
		off := uint64(off8 % 16)
		want := ir.TruncateToWidth(bits, ty.ScalarBits())
		if tr := m.StoreScalar(ty, addr+off, bits); tr != nil {
			return false
		}
		got, tr := m.LoadScalar(ty, addr+off)
		return tr == nil && got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := NewMemory(0)
	addr, _ := m.Alloc(16)
	if tr := m.WriteBytes(addr, []byte{1, 2, 3, 4}); tr != nil {
		t.Fatal(tr)
	}
	got, tr := m.ReadBytes(addr, 4)
	if tr != nil || got[0] != 1 || got[3] != 4 {
		t.Fatalf("byte roundtrip: %v %v", got, tr)
	}
	if tr := m.WriteBytes(addr+14, []byte{1, 2, 3, 4}); tr == nil {
		t.Fatal("straddling write should trap")
	}
}
