package interp

import (
	"fmt"
	"io"

	"vulfi/internal/ir"
)

// Tracer receives an event per executed instruction (debugging aid; used
// by cmd/vspcc -trace). Nil disables tracing with zero overhead on the
// hot path beyond a pointer check.
type Tracer struct {
	W io.Writer
	// Limit stops tracing after this many events (0 = unlimited).
	Limit uint64
	seen  uint64
}

// SetTracer installs a tracer on the interpreter.
func (it *Interp) SetTracer(tr *Tracer) { it.tracer = tr }

func (it *Interp) trace(in *ir.Instr, result Value) {
	tr := it.tracer
	if tr == nil || (tr.Limit > 0 && tr.seen >= tr.Limit) {
		return
	}
	tr.seen++
	where := "?"
	if in.Parent != nil {
		where = in.Parent.Func.Nam + "/" + in.Parent.Nam
	}
	if in.Ty != nil && !in.Ty.IsVoid() {
		fmt.Fprintf(tr.W, "[%8d] %-28s %s = %s\n", it.DynInstrs, where,
			in.Ident(), result)
	} else {
		fmt.Fprintf(tr.W, "[%8d] %-28s %s\n", it.DynInstrs, where, in)
	}
}
