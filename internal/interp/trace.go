package interp

import (
	"fmt"
	"io"

	"vulfi/internal/ir"
	"vulfi/internal/telemetry"
)

// Tracer receives an event per executed instruction (debugging aid; used
// by cmd/vspcc -trace). Nil disables tracing with zero overhead on the
// hot path beyond a pointer check.
//
// Events go to W as text lines, or — when Events is set — to the
// structured JSONL sink as telemetry events of type "trace", sharing
// the campaign layer's event schema.
type Tracer struct {
	W io.Writer
	// Limit stops tracing after this many events (0 = unlimited).
	Limit uint64
	// Events, when non-nil, receives structured events instead of text.
	Events  *telemetry.EventWriter
	seen    uint64
	skipped uint64
}

// Seen returns the number of events emitted so far (at most Limit when
// a limit is set).
func (tr *Tracer) Seen() uint64 { return tr.seen }

// Skipped returns the number of events suppressed after Limit was
// reached.
func (tr *Tracer) Skipped() uint64 { return tr.skipped }

// SetTracer installs a tracer on the interpreter.
func (it *Interp) SetTracer(tr *Tracer) { it.tracer = tr }

func (it *Interp) trace(in *ir.Instr, result Value) {
	tr := it.tracer
	if tr == nil {
		return
	}
	if tr.Limit > 0 && tr.seen >= tr.Limit {
		tr.skipped++
		return
	}
	tr.seen++
	where := "?"
	if in.Parent != nil {
		where = in.Parent.Func.Nam + "/" + in.Parent.Nam
	}
	hasResult := in.Ty != nil && !in.Ty.IsVoid()
	if tr.Events != nil {
		fields := map[string]any{
			"dyn":   it.DynInstrs,
			"instr": in.String(),
		}
		if hasResult {
			fields["instr"] = in.Ident()
			fields["value"] = result.String()
		}
		tr.Events.Emit(telemetry.Event{Type: "trace", Name: where, Fields: fields})
		return
	}
	if hasResult {
		fmt.Fprintf(tr.W, "[%8d] %-28s %s = %s\n", it.DynInstrs, where,
			in.Ident(), result)
	} else {
		fmt.Fprintf(tr.W, "[%8d] %-28s %s\n", it.DynInstrs, where, in)
	}
}
