// Package interp executes vulfi IR with architectural semantics: a flat
// byte-addressable memory with bounds checking, hardware-like traps
// (out-of-bounds, null dereference, division by zero), per-lane vector
// arithmetic, and dynamic-instruction accounting.
//
// The interpreter stands in for native execution of the instrumented
// binary in the paper's experiments: fault-injection outcomes
// (SDC/Benign/Crash) depend on the architectural semantics of the IR, and
// the interpreter makes those semantics deterministic and observable.
package interp

import (
	"fmt"
	"math"

	"vulfi/internal/ir"
)

// Value is a runtime value: a type plus one raw 64-bit payload per lane.
// Integers are stored truncated to their width; float32 as Float32bits;
// float64 as Float64bits; pointers as 64-bit addresses. Storing raw bit
// patterns makes single-bit-flip injection uniform across all types.
type Value struct {
	Ty   *ir.Type
	Bits []uint64
}

// Scalar constructs a one-lane value from a raw payload.
func Scalar(ty *ir.Type, bits uint64) Value {
	return Value{Ty: ty, Bits: []uint64{bits}}
}

// IntValue constructs an integer value of type ty from v.
func IntValue(ty *ir.Type, v int64) Value {
	return Scalar(ty, ir.TruncateToWidth(uint64(v), ty.Bits))
}

// BoolValue constructs an i1 value.
func BoolValue(b bool) Value {
	if b {
		return Scalar(ir.I1, 1)
	}
	return Scalar(ir.I1, 0)
}

// FloatValue constructs a float value of type ty (F32/F64) from v.
func FloatValue(ty *ir.Type, v float64) Value {
	if ty == ir.F32 {
		return Scalar(ty, uint64(math.Float32bits(float32(v))))
	}
	return Scalar(ty, math.Float64bits(v))
}

// PtrValue constructs a pointer value with the given address.
func PtrValue(ty *ir.Type, addr uint64) Value { return Scalar(ty, addr) }

// Zero returns the zero value of ty.
func Zero(ty *ir.Type) Value {
	return Value{Ty: ty, Bits: make([]uint64, ty.Lanes())}
}

// Lanes returns the lane count.
func (v Value) Lanes() int { return len(v.Bits) }

// Int returns lane 0 sign-extended (integer types).
func (v Value) Int() int64 { return v.LaneInt(0) }

// LaneInt returns lane i sign-extended to int64.
func (v Value) LaneInt(i int) int64 {
	return ir.SignExtend(v.Bits[i], v.Ty.Scalar().Bits)
}

// Uint returns lane 0 as an unsigned payload.
func (v Value) Uint() uint64 { return v.Bits[0] }

// Float returns lane 0 as float64 (float types).
func (v Value) Float() float64 { return v.LaneFloat(0) }

// LaneFloat returns lane i as a float64.
func (v Value) LaneFloat(i int) float64 {
	if v.Ty.Scalar() == ir.F32 {
		return float64(math.Float32frombits(uint32(v.Bits[i])))
	}
	return math.Float64frombits(v.Bits[i])
}

// SetLaneFloat stores f into lane i, respecting the lane width.
func (v Value) SetLaneFloat(i int, f float64) {
	if v.Ty.Scalar() == ir.F32 {
		v.Bits[i] = uint64(math.Float32bits(float32(f)))
	} else {
		v.Bits[i] = math.Float64bits(f)
	}
}

// SetLaneInt stores x into lane i, truncating to the lane width.
func (v Value) SetLaneInt(i int, x int64) {
	v.Bits[i] = ir.TruncateToWidth(uint64(x), v.Ty.Scalar().Bits)
}

// Bool reports lane 0 of an i1 value.
func (v Value) Bool() bool { return v.Bits[0]&1 != 0 }

// Clone returns a deep copy of v.
func (v Value) Clone() Value {
	b := make([]uint64, len(v.Bits))
	copy(b, v.Bits)
	return Value{Ty: v.Ty, Bits: b}
}

// FlipBit flips bit `bit` of lane `lane`, truncating the result to the
// lane's significant width. This is the paper's single-bit-flip primitive.
func (v Value) FlipBit(lane, bit int) Value {
	out := v.Clone()
	w := v.Ty.ScalarBits()
	out.Bits[lane] ^= 1 << uint(bit%w)
	out.Bits[lane] = ir.TruncateToWidth(out.Bits[lane], w)
	return out
}

// String formats the value for diagnostics.
func (v Value) String() string {
	s := v.Ty.Scalar()
	one := func(i int) string {
		switch {
		case s.IsFloat():
			return fmt.Sprintf("%g", v.LaneFloat(i))
		case s.IsPointer():
			return fmt.Sprintf("%#x", v.Bits[i])
		default:
			return fmt.Sprintf("%d", v.LaneInt(i))
		}
	}
	if !v.Ty.IsVector() {
		return one(0)
	}
	out := "<"
	for i := range v.Bits {
		if i > 0 {
			out += ", "
		}
		out += one(i)
	}
	return out + ">"
}

// ConstValue converts an ir constant into a runtime value.
func ConstValue(c *ir.Const) Value {
	b := make([]uint64, len(c.Bits))
	copy(b, c.Bits)
	return Value{Ty: c.Ty, Bits: b}
}
