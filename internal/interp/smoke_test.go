package interp

import (
	"testing"

	"vulfi/internal/ir"
)

// buildSum builds: define i32 @sum(i32* a, i32 n) — a scalar loop summing
// n array elements.
func buildSum(m *ir.Module) *ir.Func {
	f := ir.NewFunc("sum", ir.I32, []*ir.Type{ir.Ptr(ir.I32), ir.I32},
		[]string{"a", "n"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b := ir.NewBuilder(entry)
	b.Br(loop)

	b.SetBlock(loop)
	i := b.Phi(ir.I32, "i")
	s := b.Phi(ir.I32, "s")
	cond := b.ICmp(ir.IntSLT, i, f.Params[1], "cond")
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	p := b.GEP(f.Params[0], i, "p")
	v := b.Load(p, "v")
	s2 := b.Add(s, v, "s2")
	i2 := b.Add(i, ir.ConstInt(ir.I32, 1), "i2")
	b.Br(loop)

	ir.AddIncoming(i, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, ir.ConstInt(ir.I32, 0), entry)
	ir.AddIncoming(s, s2, body)

	b.SetBlock(exit)
	b.Ret(s)
	return f
}

func TestScalarLoopSum(t *testing.T) {
	m := ir.NewModule("t")
	buildSum(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr, tr := it.Mem.Alloc(10 * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	want := int64(0)
	for i := 0; i < 10; i++ {
		if tr := it.Mem.StoreScalar(ir.I32, addr+uint64(i)*4, uint64(i*i)); tr != nil {
			t.Fatal(tr)
		}
		want += int64(i * i)
	}
	got, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr), IntValue(ir.I32, 10))
	if tr != nil {
		t.Fatalf("run: %v", tr)
	}
	if got.Int() != want {
		t.Fatalf("sum = %d, want %d", got.Int(), want)
	}
}
