package interp

import (
	"encoding/binary"
	"sort"

	"vulfi/internal/ir"
)

// memBase is the lowest valid address; [0, memBase) is the unmapped null
// page, so small corrupted pointers fault like they would on hardware.
const memBase = 0x1000

// guardGap is the unmapped slack between segments, so off-by-small-K
// corrupted addresses land in a hole and trap rather than silently hitting
// the neighbouring allocation.
const guardGap = 64

// Memory is a flat byte-addressable memory made of allocated segments with
// unmapped guard gaps. Accesses that do not fall entirely inside one live
// segment trap.
type Memory struct {
	segs  []segment
	next  uint64
	limit uint64
	data  map[uint64][]byte // segment start -> storage
	// free recycles segment storage across Reset by (aligned) size class;
	// recycled buffers are re-zeroed on reuse so a reset memory is
	// indistinguishable from a fresh one.
	free map[uint64][][]byte
}

type segment struct {
	start uint64
	size  uint64
}

// NewMemory returns a memory with the given total allocation limit in
// bytes (0 means a 1 GiB default).
func NewMemory(limit uint64) *Memory {
	if limit == 0 {
		limit = 1 << 30
	}
	return &Memory{next: memBase, limit: limit, data: map[uint64][]byte{}}
}

// Reset returns the memory to its freshly-constructed state while
// keeping segment storage for recycling: subsequent Allocs of the same
// sizes reuse (and re-zero) the old backing arrays instead of growing
// the heap. The address sequence after Reset is identical to a fresh
// Memory's, so a deterministic program sees the same pointers either
// way.
func (m *Memory) Reset(limit uint64) {
	if limit == 0 {
		limit = 1 << 30
	}
	if m.free == nil {
		m.free = map[uint64][][]byte{}
	}
	for start, buf := range m.data {
		m.free[uint64(len(buf))] = append(m.free[uint64(len(buf))], buf)
		delete(m.data, start)
	}
	m.segs = m.segs[:0]
	m.next = memBase
	m.limit = limit
}

// Alloc reserves size bytes and returns the segment base address.
func (m *Memory) Alloc(size uint64) (uint64, *Trap) {
	if size == 0 {
		size = 1
	}
	// 16-byte align every segment (vector friendly).
	size = (size + 15) &^ 15
	if m.next+size > m.limit+memBase {
		return 0, trapf(TrapOOM, "arena limit %d exceeded", m.limit)
	}
	addr := m.next
	m.segs = append(m.segs, segment{start: addr, size: size})
	var store []byte
	if bufs := m.free[size]; len(bufs) > 0 {
		store = bufs[len(bufs)-1]
		bufs[len(bufs)-1] = nil
		m.free[size] = bufs[:len(bufs)-1]
		clear(store)
	} else {
		store = make([]byte, size)
	}
	m.data[addr] = store
	m.next = addr + size + guardGap
	return addr, nil
}

// Allocated returns the total number of live segments (diagnostics).
func (m *Memory) Allocated() int { return len(m.segs) }

// find returns the segment wholly containing [addr, addr+size), or nil.
func (m *Memory) find(addr, size uint64) *segment {
	// Segments are appended in increasing address order.
	i := sort.Search(len(m.segs), func(i int) bool {
		return m.segs[i].start+m.segs[i].size > addr
	})
	if i == len(m.segs) {
		return nil
	}
	s := &m.segs[i]
	if addr >= s.start && addr+size <= s.start+s.size {
		return s
	}
	return nil
}

func (m *Memory) check(addr, size uint64) ([]byte, uint64, *Trap) {
	if addr < memBase {
		return nil, 0, trapf(TrapNull, "access at %#x", addr)
	}
	s := m.find(addr, size)
	if s == nil {
		return nil, 0, trapf(TrapOOB, "access of %d bytes at %#x", size, addr)
	}
	return m.data[s.start], addr - s.start, nil
}

// ReadBytes copies size bytes at addr into a fresh slice.
func (m *Memory) ReadBytes(addr, size uint64) ([]byte, *Trap) {
	buf, off, tr := m.check(addr, size)
	if tr != nil {
		return nil, tr
	}
	out := make([]byte, size)
	copy(out, buf[off:off+size])
	return out, nil
}

// WriteBytes stores b at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) *Trap {
	buf, off, tr := m.check(addr, uint64(len(b)))
	if tr != nil {
		return tr
	}
	copy(buf[off:], b)
	return nil
}

// LoadScalar reads one scalar of type ty at addr.
func (m *Memory) LoadScalar(ty *ir.Type, addr uint64) (uint64, *Trap) {
	size := uint64(ty.ByteSize())
	buf, off, tr := m.check(addr, size)
	if tr != nil {
		return 0, tr
	}
	return readLE(buf[off:], int(size)), nil
}

// StoreScalar writes one scalar payload of type ty at addr.
func (m *Memory) StoreScalar(ty *ir.Type, addr uint64, bits uint64) *Trap {
	size := uint64(ty.ByteSize())
	buf, off, tr := m.check(addr, size)
	if tr != nil {
		return tr
	}
	writeLE(buf[off:], int(size), bits)
	return nil
}

// Load reads a value of type ty (scalar or vector, lanes contiguous) at
// addr.
func (m *Memory) Load(ty *ir.Type, addr uint64) (Value, *Trap) {
	lanes := ty.Lanes()
	es := uint64(ty.Scalar().ByteSize())
	buf, off, tr := m.check(addr, es*uint64(lanes))
	if tr != nil {
		return Value{}, tr
	}
	v := Zero(ty)
	for i := 0; i < lanes; i++ {
		v.Bits[i] = readLE(buf[off+uint64(i)*es:], int(es))
	}
	return v, nil
}

// LoadInto reads a value of out's type at addr into out's existing
// lane storage — the allocation-free variant of Load for engines that
// recycle result storage. Every lane is written on success.
func (m *Memory) LoadInto(out Value, addr uint64) *Trap {
	lanes := len(out.Bits)
	es := uint64(out.Ty.Scalar().ByteSize())
	buf, off, tr := m.check(addr, es*uint64(lanes))
	if tr != nil {
		return tr
	}
	for i := 0; i < lanes; i++ {
		out.Bits[i] = readLE(buf[off+uint64(i)*es:], int(es))
	}
	return nil
}

// Store writes v (scalar or vector, lanes contiguous) at addr.
func (m *Memory) Store(v Value, addr uint64) *Trap {
	es := uint64(v.Ty.Scalar().ByteSize())
	buf, off, tr := m.check(addr, es*uint64(len(v.Bits)))
	if tr != nil {
		return tr
	}
	for i, b := range v.Bits {
		writeLE(buf[off+uint64(i)*es:], int(es), b)
	}
	return nil
}

func readLE(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic("interp: bad scalar size")
}

func writeLE(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		panic("interp: bad scalar size")
	}
}
