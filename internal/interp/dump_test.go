package interp

import (
	"strings"
	"testing"

	"vulfi/internal/ir"
)

// buildStoreInc builds: define void @inc() — bumps @ctr[0] by one.
func buildStoreInc(m *ir.Module, ctr *ir.Global) {
	f := ir.NewFunc("inc", ir.Void, nil, nil)
	m.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	v := b.Load(ctr, "v")
	v2 := b.Add(v, ir.ConstInt(ir.I32, 1), "v2")
	b.Store(v2, ctr)
	b.Ret(nil)
}

func TestDumpStateDeterministic(t *testing.T) {
	build := func() *Interp {
		m := ir.NewModule("t")
		// Deliberately register globals out of lexical order.
		zg := &ir.Global{Nam: "zeta", Elem: ir.I32, Count: 4}
		ag := &ir.Global{Nam: "alpha", Elem: ir.I32, Count: 2}
		mg := &ir.Global{Nam: "mid", Elem: ir.I32, Count: 1}
		m.AddGlobal(zg)
		m.AddGlobal(ag)
		m.AddGlobal(mg)
		buildStoreInc(m, mg)
		if err := m.Verify(); err != nil {
			t.Fatalf("verify: %v", err)
		}
		it, err := New(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, tr := it.Run("inc"); tr != nil {
				t.Fatalf("run: %v", tr)
			}
		}
		return it
	}
	a, b := build().DumpState(), build().DumpState()
	if a != b {
		t.Fatalf("DumpState not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	// Globals must appear sorted by name, with contents.
	ia := strings.Index(a, "@alpha")
	im := strings.Index(a, "@mid")
	iz := strings.Index(a, "@zeta")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("globals not sorted by name in dump:\n%s", a)
	}
	// @mid holds 3 after three increments (little-endian hex contents).
	if !strings.Contains(a, "@mid i32 x1") {
		t.Fatalf("missing @mid descriptor in dump:\n%s", a)
	}
	if !strings.Contains(a, "= 03000000") {
		t.Fatalf("missing @mid contents 03000000 in dump:\n%s", a)
	}
}

func TestTrapProvenance(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("div", ir.I32, []*ir.Type{ir.I32, ir.I32}, []string{"a", "b"})
	m.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	q := b.SDiv(f.Params[0], f.Params[1], "q")
	b.Ret(q)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, tr := it.Run("div", IntValue(ir.I32, 1), IntValue(ir.I32, 0))
	if tr == nil || tr.Kind != TrapDivZero {
		t.Fatalf("trap = %v, want div-zero", tr)
	}
	if tr.Func != "div" || tr.Block != "entry" {
		t.Fatalf("trap provenance = %q/%q, want div/entry", tr.Func, tr.Block)
	}
	if !strings.Contains(tr.Instr, "%q = sdiv") {
		t.Fatalf("trap instr = %q, want the sdiv", tr.Instr)
	}
	if tr.Dyn == 0 {
		t.Fatalf("trap dyn index not stamped")
	}
	want := "@div/entry: " + tr.Instr
	if tr.At() != want {
		t.Fatalf("At() = %q, want %q", tr.At(), want)
	}
	// Error() stays free of provenance (stable message).
	if strings.Contains(tr.Error(), "entry") {
		t.Fatalf("Error() leaked provenance: %q", tr.Error())
	}
}

// collectRecorder is a test Recorder that keeps every retirement.
type collectRecorder struct {
	instrs []*ir.Instr
	dyns   []uint64
}

func (c *collectRecorder) Retire(in *ir.Instr, dyn uint64, v Value) {
	c.instrs = append(c.instrs, in)
	c.dyns = append(c.dyns, dyn)
}

func TestRecorderObservesRetirements(t *testing.T) {
	m := ir.NewModule("t")
	buildSum(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr, tr := it.Mem.Alloc(8 * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	rec := &collectRecorder{}
	it.SetRecorder(rec)
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr), IntValue(ir.I32, 8)); tr != nil {
		t.Fatalf("run: %v", tr)
	}
	if len(rec.instrs) == 0 {
		t.Fatal("recorder saw no retirements")
	}
	var sawPhi bool
	for i, in := range rec.instrs {
		switch in.Op {
		case ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpUnreachable:
			t.Fatalf("terminator %s retired through the recorder", in.Op)
		case ir.OpPhi:
			sawPhi = true
		}
		if i > 0 && rec.dyns[i] <= rec.dyns[i-1] {
			t.Fatalf("dyn indices not strictly increasing at %d: %d then %d",
				i, rec.dyns[i-1], rec.dyns[i])
		}
	}
	if !sawPhi {
		t.Fatal("phi retirements not recorded")
	}
	if max := rec.dyns[len(rec.dyns)-1]; max > it.DynInstrs {
		t.Fatalf("recorded dyn %d exceeds DynInstrs %d", max, it.DynInstrs)
	}

	// Detaching stops recording.
	it.SetRecorder(nil)
	n := len(rec.instrs)
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr), IntValue(ir.I32, 8)); tr != nil {
		t.Fatalf("rerun: %v", tr)
	}
	if len(rec.instrs) != n {
		t.Fatal("recorder still attached after SetRecorder(nil)")
	}
}
