package interp

import (
	"testing"

	"vulfi/internal/ir"
)

// countingProfiler is the minimal Profiler: it mirrors what DynInstrs
// counts, so the structural equality the profile package relies on is
// pinned here, next to the hook.
type countingProfiler struct {
	n      uint64
	vector uint64
}

func (c *countingProfiler) Account(in *ir.Instr) {
	c.n++
	if in.IsVectorInstr() {
		c.vector++
	}
}

// TestProfilerSeesEveryAccountedInstr: Account must fire for exactly
// the instruction stream behind DynInstrs — phis and terminators
// included, which the Recorder hook deliberately skips.
func TestProfilerSeesEveryAccountedInstr(t *testing.T) {
	m := ir.NewModule("t")
	buildSum(m)
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := &countingProfiler{}
	it.SetProfiler(cp)
	addr, tr := it.Mem.Alloc(10 * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr),
		IntValue(ir.I32, 10)); tr != nil {
		t.Fatal(tr)
	}
	if cp.n != it.DynInstrs {
		t.Fatalf("profiler saw %d instrs, interpreter counted %d", cp.n, it.DynInstrs)
	}
	if cp.vector != it.DynVector {
		t.Fatalf("profiler saw %d vector instrs, interpreter counted %d",
			cp.vector, it.DynVector)
	}

	// Reset detaches the profiler like it detaches tracer and recorder.
	if tr := it.Reset(Options{}); tr != nil {
		t.Fatal(tr)
	}
	addr, tr = it.Mem.Alloc(10 * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	before := cp.n
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr),
		IntValue(ir.I32, 10)); tr != nil {
		t.Fatal(tr)
	}
	if cp.n != before {
		t.Fatal("profiler survived Reset")
	}
}
