package interp

import (
	"math"
	"testing"
	"testing/quick"

	"vulfi/internal/ir"
)

// evalBinOp builds a one-instruction function and runs it.
func evalBinOp(t *testing.T, op ir.Op, ty *ir.Type, a, b Value) (Value, *Trap) {
	t.Helper()
	m := ir.NewModule("ops")
	f := ir.NewFunc("f", ty, []*ir.Type{ty, ty}, []string{"a", "b"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	r := bu.Bin(op, f.Params[0], f.Params[1], "r")
	bu.Ret(r)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return it.Run("f", a, b)
}

func TestIntArithWraps(t *testing.T) {
	got, tr := evalBinOp(t, ir.OpAdd, ir.I32,
		IntValue(ir.I32, math.MaxInt32), IntValue(ir.I32, 1))
	if tr != nil {
		t.Fatal(tr)
	}
	if got.Int() != math.MinInt32 {
		t.Fatalf("i32 add should wrap: %d", got.Int())
	}
	got, _ = evalBinOp(t, ir.OpMul, ir.I8, IntValue(ir.I8, 100), IntValue(ir.I8, 3))
	if got.Int() != int64(int8(44)) { // 300 mod 256 = 44
		t.Fatalf("i8 mul wrap wrong: %d", got.Int())
	}
}

// Property: i32 add/sub/mul match Go's int32 arithmetic.
func TestIntBinPropertyVsGo(t *testing.T) {
	m := ir.NewModule("p")
	type tc struct {
		op ir.Op
		fn func(a, b int32) int32
	}
	_ = m
	cases := []tc{
		{ir.OpAdd, func(a, b int32) int32 { return a + b }},
		{ir.OpSub, func(a, b int32) int32 { return a - b }},
		{ir.OpMul, func(a, b int32) int32 { return a * b }},
		{ir.OpAnd, func(a, b int32) int32 { return a & b }},
		{ir.OpOr, func(a, b int32) int32 { return a | b }},
		{ir.OpXor, func(a, b int32) int32 { return a ^ b }},
	}
	for _, c := range cases {
		c := c
		prop := func(a, b int32) bool {
			got, tr := intBin(c.op, IntValue(ir.I32, int64(a)), IntValue(ir.I32, int64(b)))
			return tr == nil && int32(got.Int()) == c.fn(a, b)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", c.op, err)
		}
	}
}

// Property: sdiv/srem match Go semantics and trap exactly on the x86
// fault conditions.
func TestDivRemProperty(t *testing.T) {
	prop := func(a, b int32) bool {
		q, trQ := intBin(ir.OpSDiv, IntValue(ir.I32, int64(a)), IntValue(ir.I32, int64(b)))
		r, trR := intBin(ir.OpSRem, IntValue(ir.I32, int64(a)), IntValue(ir.I32, int64(b)))
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return trQ != nil && trR != nil
		}
		return trQ == nil && trR == nil &&
			int32(q.Int()) == a/b && int32(r.Int()) == a%b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDivTrapKinds(t *testing.T) {
	_, tr := evalBinOp(t, ir.OpSDiv, ir.I32, IntValue(ir.I32, 5), IntValue(ir.I32, 0))
	if tr == nil || tr.Kind != TrapDivZero {
		t.Fatalf("div by zero trap = %v", tr)
	}
	_, tr = evalBinOp(t, ir.OpSDiv, ir.I32,
		IntValue(ir.I32, math.MinInt32), IntValue(ir.I32, -1))
	if tr == nil || tr.Kind != TrapDivOverflow {
		t.Fatalf("div overflow trap = %v", tr)
	}
	_, tr = evalBinOp(t, ir.OpUDiv, ir.I32, IntValue(ir.I32, 5), IntValue(ir.I32, 0))
	if tr == nil || tr.Kind != TrapDivZero {
		t.Fatalf("udiv by zero trap = %v", tr)
	}
}

func TestShiftsMaskAmount(t *testing.T) {
	// x86 semantics: the shift amount is taken modulo the width.
	got, _ := intBin(ir.OpShl, IntValue(ir.I32, 1), IntValue(ir.I32, 33))
	if got.Int() != 2 {
		t.Fatalf("shl by 33 on i32 should shift by 1: %d", got.Int())
	}
	got, _ = intBin(ir.OpAShr, IntValue(ir.I32, -8), IntValue(ir.I32, 1))
	if got.Int() != -4 {
		t.Fatalf("ashr sign extension wrong: %d", got.Int())
	}
	got, _ = intBin(ir.OpLShr, IntValue(ir.I32, -8), IntValue(ir.I32, 1))
	if got.Int() != int64(uint32(0xFFFFFFF8)>>1) {
		t.Fatalf("lshr wrong: %d", got.Int())
	}
}

// Property: float ops on F32 round through float32 exactly like Go.
func TestFloatBinProperty(t *testing.T) {
	prop := func(a, b float32) bool {
		add := floatBin(ir.OpFAdd, FloatValue(ir.F32, float64(a)), FloatValue(ir.F32, float64(b)))
		mul := floatBin(ir.OpFMul, FloatValue(ir.F32, float64(a)), FloatValue(ir.F32, float64(b)))
		wa, wm := a+b, a*b
		ga, gm := float32(add.Float()), float32(mul.Float())
		eq := func(x, y float32) bool {
			return x == y || (x != x && y != y) // NaN == NaN for comparison
		}
		return eq(ga, wa) && eq(gm, wm)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatDivNoTrap(t *testing.T) {
	got := floatBin(ir.OpFDiv, FloatValue(ir.F32, 1), FloatValue(ir.F32, 0))
	if !math.IsInf(got.Float(), 1) {
		t.Fatalf("1/0 should be +Inf, got %v", got.Float())
	}
	got = floatBin(ir.OpFDiv, FloatValue(ir.F32, 0), FloatValue(ir.F32, 0))
	if !math.IsNaN(got.Float()) {
		t.Fatalf("0/0 should be NaN, got %v", got.Float())
	}
}

func TestCompares(t *testing.T) {
	c := compare(ir.OpICmp, ir.IntSLT, IntValue(ir.I32, -1), IntValue(ir.I32, 1))
	if !c.Bool() {
		t.Error("-1 slt 1 should hold")
	}
	c = compare(ir.OpICmp, ir.IntULT, IntValue(ir.I32, -1), IntValue(ir.I32, 1))
	if c.Bool() {
		t.Error("-1 ult 1 must be false (unsigned)")
	}
	nan := FloatValue(ir.F32, math.NaN())
	if compare(ir.OpFCmp, ir.FloatOEQ, nan, nan).Bool() {
		t.Error("NaN oeq NaN must be false")
	}
	if !compare(ir.OpFCmp, ir.FloatUNE, nan, nan).Bool() {
		t.Error("NaN une NaN must be true")
	}
}

func TestVectorLanewise(t *testing.T) {
	vt := ir.Vec(ir.I32, 4)
	a := Value{Ty: vt, Bits: []uint64{1, 2, 3, 4}}
	b := Value{Ty: vt, Bits: []uint64{10, 20, 30, 40}}
	got, tr := intBin(ir.OpAdd, a, b)
	if tr != nil {
		t.Fatal(tr)
	}
	for i, want := range []int64{11, 22, 33, 44} {
		if got.LaneInt(i) != want {
			t.Fatalf("lane %d = %d, want %d", i, got.LaneInt(i), want)
		}
	}
	c := compare(ir.OpICmp, ir.IntSGT, a, Value{Ty: vt, Bits: []uint64{2, 2, 2, 2}})
	if c.Ty != ir.Vec(ir.I1, 4) {
		t.Fatal("vector compare result type wrong")
	}
	if c.Bits[0] != 0 || c.Bits[3] != 1 {
		t.Fatalf("vector compare lanes wrong: %v", c.Bits)
	}
}

func TestSelectScalarAndVector(t *testing.T) {
	a := IntValue(ir.I32, 1)
	b := IntValue(ir.I32, 2)
	if selectVal(BoolValue(true), a, b).Int() != 1 {
		t.Error("scalar select true")
	}
	if selectVal(BoolValue(false), a, b).Int() != 2 {
		t.Error("scalar select false")
	}
	vt := ir.Vec(ir.I32, 4)
	cond := Value{Ty: ir.Vec(ir.I1, 4), Bits: []uint64{1, 0, 1, 0}}
	va := Value{Ty: vt, Bits: []uint64{1, 1, 1, 1}}
	vb := Value{Ty: vt, Bits: []uint64{2, 2, 2, 2}}
	got := selectVal(cond, va, vb)
	want := []uint64{1, 2, 1, 2}
	for i := range want {
		if got.Bits[i] != want[i] {
			t.Fatalf("blend lane %d = %d", i, got.Bits[i])
		}
	}
}

func TestCasts(t *testing.T) {
	cases := []struct {
		op   ir.Op
		in   Value
		to   *ir.Type
		want func(Value) bool
	}{
		{ir.OpSExt, IntValue(ir.I8, -5), ir.I32,
			func(v Value) bool { return v.Int() == -5 }},
		{ir.OpZExt, IntValue(ir.I8, -5), ir.I32,
			func(v Value) bool { return v.Int() == 251 }},
		{ir.OpTrunc, IntValue(ir.I32, 0x1FF), ir.I8,
			func(v Value) bool { return v.Int() == -1 }},
		{ir.OpSIToFP, IntValue(ir.I32, -3), ir.F32,
			func(v Value) bool { return v.Float() == -3 }},
		{ir.OpFPToSI, FloatValue(ir.F32, 2.9), ir.I32,
			func(v Value) bool { return v.Int() == 2 }},
		{ir.OpFPToSI, FloatValue(ir.F32, -2.9), ir.I32,
			func(v Value) bool { return v.Int() == -2 }},
		{ir.OpFPExt, FloatValue(ir.F32, 1.5), ir.F64,
			func(v Value) bool { return v.Float() == 1.5 }},
		{ir.OpFPTrunc, FloatValue(ir.F64, math.Pi), ir.F32,
			func(v Value) bool { return float32(v.Float()) == float32(math.Pi) }},
	}
	for _, c := range cases {
		got := castVal(c.op, c.in, c.to)
		if got.Ty != c.to || !c.want(got) {
			t.Errorf("%s(%v) -> %v wrong", c.op, c.in, got)
		}
	}
	// NaN/overflow conversions clamp like cvttss2si rather than UB.
	nan := castVal(ir.OpFPToSI, FloatValue(ir.F32, math.NaN()), ir.I64)
	if nan.Int() != math.MinInt64 {
		t.Errorf("NaN fptosi = %d", nan.Int())
	}
}

func TestFlipBit(t *testing.T) {
	v := FloatValue(ir.F32, 1.0)
	f := v.FlipBit(0, 31) // sign bit
	if f.LaneFloat(0) != -1.0 {
		t.Fatalf("sign flip: %v", f.LaneFloat(0))
	}
	// Flip is an involution.
	if f.FlipBit(0, 31).Bits[0] != v.Bits[0] {
		t.Fatal("double flip should restore")
	}
	// i1 flip stays within width.
	b := BoolValue(true).FlipBit(0, 5)
	if b.Bits[0] != 0 {
		t.Fatalf("i1 flip out of width: %v", b.Bits)
	}
}

// Property: FlipBit always changes exactly the value's own lane and is an
// involution.
func TestFlipBitProperty(t *testing.T) {
	prop := func(x uint32, lane8 uint8, bit8 uint8) bool {
		vt := ir.Vec(ir.I32, 8)
		v := Zero(vt)
		for i := range v.Bits {
			v.Bits[i] = uint64(x) + uint64(i)
		}
		lane := int(lane8) % 8
		bit := int(bit8) % 32
		f := v.FlipBit(lane, bit)
		for i := range v.Bits {
			if i == lane {
				if f.Bits[i] == v.Bits[i] {
					return false
				}
			} else if f.Bits[i] != v.Bits[i] {
				return false
			}
		}
		return f.FlipBit(lane, bit).Bits[lane] == v.Bits[lane]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
