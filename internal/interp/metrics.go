package interp

import "vulfi/internal/telemetry"

// Metrics exports interpreter execution counters into a telemetry
// registry. All fields are optional (nil fields are skipped). Attach
// with SetMetrics; when no Metrics is attached the execution hot path
// pays only a nil pointer test, and even when attached the dynamic
// counts are batched — flushed once per top-level call rather than per
// instruction — so the per-instruction loop is unchanged.
//
// One Metrics value may be shared by many interpreter instances (the
// counters are atomic); per-instance flush bookkeeping lives on the
// Interp.
type Metrics struct {
	// Instrs receives the dynamic instruction count; VectorInstrs the
	// vector subset.
	Instrs       *telemetry.Counter
	VectorInstrs *telemetry.Counter
	// SiteVisits counts live dynamic fault-site visits (the injection
	// runtime calls CountSiteVisit once per unmasked lane visit). Like
	// the dynamic counts it is batched: published on flush, not per
	// visit.
	SiteVisits *telemetry.Counter
	// Traps counts top-level executions that ended in a trap.
	Traps *telemetry.Counter
}

// NewMetrics builds the interpreter's standard counter set on a
// registry.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Instrs:       r.Counter("interp.instrs"),
		VectorInstrs: r.Counter("interp.vector_instrs"),
		SiteVisits:   r.Counter("interp.site_visits"),
		Traps:        r.Counter("interp.traps"),
	}
}

// SetMetrics attaches (or, with nil, detaches) telemetry counters.
func (it *Interp) SetMetrics(m *Metrics) { it.metrics = m }

// CountSiteVisit records one live dynamic fault-site visit. The
// injection runtime calls it once per unmasked lane visit; the count is
// batched locally and published to the attached counter on flush, so
// the per-site cost is one non-atomic increment.
func (it *Interp) CountSiteVisit() { it.siteVisits++ }

// FlushMetrics publishes the not-yet-reported portion of the dynamic
// instruction counters. Called automatically when a top-level Call
// returns; exposed for callers that read counters mid-execution.
func (it *Interp) FlushMetrics() {
	m := it.metrics
	if m == nil {
		return
	}
	if m.Instrs != nil && it.DynInstrs > it.flushedInstrs {
		m.Instrs.Add(it.DynInstrs - it.flushedInstrs)
	}
	if m.VectorInstrs != nil && it.DynVector > it.flushedVector {
		m.VectorInstrs.Add(it.DynVector - it.flushedVector)
	}
	if m.SiteVisits != nil && it.siteVisits > it.flushedVisits {
		m.SiteVisits.Add(it.siteVisits - it.flushedVisits)
	}
	it.flushedInstrs, it.flushedVector = it.DynInstrs, it.DynVector
	it.flushedVisits = it.siteVisits
}
