package interp

import (
	"testing"

	"vulfi/internal/ir"
	"vulfi/internal/telemetry"
)

// TestMetricsFlushOnReturn: counters must match the interpreter's own
// dynamic counts after a top-level call, without per-instruction cost.
func TestMetricsFlushOnReturn(t *testing.T) {
	m := ir.NewModule("t")
	buildSum(m)
	it, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	it.SetMetrics(NewMetrics(reg))
	addr, tr := it.Mem.Alloc(10 * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr),
		IntValue(ir.I32, 10)); tr != nil {
		t.Fatal(tr)
	}
	if got := reg.Counter("interp.instrs").Value(); got != it.DynInstrs {
		t.Fatalf("instrs counter = %d, interpreter counted %d", got, it.DynInstrs)
	}
	if got := reg.Counter("interp.vector_instrs").Value(); got != it.DynVector {
		t.Fatalf("vector counter = %d, want %d", got, it.DynVector)
	}
	if got := reg.Counter("interp.traps").Value(); got != 0 {
		t.Fatalf("trap counter = %d on clean run", got)
	}

	// A second run on the same instance must add only the delta.
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr),
		IntValue(ir.I32, 10)); tr != nil {
		t.Fatal(tr)
	}
	if got := reg.Counter("interp.instrs").Value(); got != it.DynInstrs {
		t.Fatalf("after rerun: counter = %d, want %d", got, it.DynInstrs)
	}
}

// TestMetricsTrapCounting: a trapped top-level call increments the trap
// counter exactly once even though the trap propagates through nested
// frames.
func TestMetricsTrapCounting(t *testing.T) {
	m := ir.NewModule("t")
	buildSum(m)
	it, err := New(m, Options{Budget: 10}) // guarantees a budget trap
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	it.SetMetrics(NewMetrics(reg))
	addr, tr := it.Mem.Alloc(10 * 4)
	if tr != nil {
		t.Fatal(tr)
	}
	if _, tr := it.Run("sum", PtrValue(ir.Ptr(ir.I32), addr),
		IntValue(ir.I32, 10)); tr == nil {
		t.Fatal("expected budget trap")
	}
	if got := reg.Counter("interp.traps").Value(); got != 1 {
		t.Fatalf("trap counter = %d, want 1", got)
	}
}
