package interp

import "vulfi/internal/ir"

// Profiler receives every accounted instruction — the exact stream
// behind DynInstrs, so a profiler that counts Account calls totals
// DynInstrs structurally. Unlike Recorder (which skips terminators and
// never sees result-free control flow), Account fires for phis,
// terminators and void instructions alike, before the instruction
// executes. Implementations must be cheap: Account sits on the
// interpreter's innermost loop. The interp package deliberately defines
// the interface rather than importing a concrete profiler, keeping the
// dependency arrow pointing outward (internal/profile imports trace,
// trace imports interp).
type Profiler interface {
	Account(in *ir.Instr)
}

// SetProfiler installs (or, with nil, removes) an execution profiler.
// Disabled profiling costs one nil check per accounted instruction —
// the same pattern (and the same bound) as SetRecorder.
func (it *Interp) SetProfiler(p Profiler) { it.prof = p }
