package interp

// SetHeartbeat installs (or, with nil, removes) a liveness callback.
// The heartbeat fires on the interpreter's budget-check schedule —
// after every phi block and after every 1024th accounted instruction —
// with the current DynInstrs, so a watchdog can distinguish an
// alive-but-slow run from a wedged one without touching the per-
// instruction hot path. Both backends share the schedule: the bytecode
// VM routes its budget checks through CheckBudget, so an attached
// heartbeat beats identically under either backend. Detached it costs
// one nil check per budget check, the SetRecorder/SetProfiler bound.
//
// The callback runs on the executing goroutine and must be cheap and
// non-blocking (an atomic store is the intended shape).
func (it *Interp) SetHeartbeat(fn func(dynInstrs uint64)) { it.hb = fn }
