package interp

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"

	"vulfi/internal/ir"
)

// ExternFn implements an external function (LLVM intrinsic or runtime API
// call). It receives the interpreter so it can touch memory and counters.
type ExternFn func(it *Interp, args []Value) (Value, *Trap)

// Options configure an interpreter instance.
type Options struct {
	// Budget bounds the number of executed IR instructions; exceeding it
	// traps with TrapBudget (models a hung faulty run). 0 = 200M.
	Budget uint64
	// MemLimit bounds total allocation in bytes. 0 = 1 GiB.
	MemLimit uint64
	// MaxDepth bounds call nesting. 0 = 512.
	MaxDepth int
}

// Interp executes functions of one module instance.
type Interp struct {
	Mod *ir.Module
	Mem *Memory

	// Output accumulates program output (the vspc print/out builtins);
	// campaigns compare it between golden and faulty runs.
	Output bytes.Buffer

	// DynInstrs counts executed IR instructions; DynVector the subset that
	// are vector instructions (≥1 vector operand).
	DynInstrs uint64
	DynVector uint64

	// Detections accumulates messages from synthesized error detectors
	// (the checkInvariants* runtime API). DetectionDyns records, parallel
	// to Detections, the dynamic-instruction index at which each detector
	// fired (the time-to-detection input for propagation tracing).
	Detections    []string
	DetectionDyns []uint64

	externs map[string]ExternFn
	// externBy memoizes name-based extern resolution per declaration
	// node, turning the per-call string-map lookup (hash of the symbol
	// name) into a pointer-keyed one. RegisterExtern invalidates it, so
	// replacement keeps its install-over semantics.
	externBy map[*ir.Func]ExternFn
	// externEpoch counts RegisterExtern calls; engines key their own
	// resolved-extern caches on it (see ExternEpoch).
	externEpoch uint64
	budget      uint64
	maxDepth    int
	depth       int
	globals     map[*ir.Global]uint64
	tracer      *Tracer
	rec         Recorder
	prof        Profiler
	// hb, when attached, receives the current DynInstrs on every budget
	// check (after each phi block and every 1024th accounted
	// instruction) — a liveness pulse for watchdogs, costing one nil
	// check per budget check when detached. Cleared by Reset like the
	// recorder and profiler (see SetHeartbeat).
	hb func(uint64)
	// engine, when attached, executes compiled function bodies against
	// this interpreter's state; nil tree-walks everything. Like externs
	// and metrics it survives Reset (see SetEngine).
	engine Engine

	// frames and ops recycle call frames and operand buffers across
	// calls (and across Reset), so the steady state of a long campaign
	// allocates neither on the execution hot path.
	frames []*frame
	ops    [][]Value

	// metrics, when attached, receives batched execution counters; nil
	// keeps the hot path to a single pointer test (see SetMetrics).
	metrics       *Metrics
	flushedInstrs uint64
	flushedVector uint64
	siteVisits    uint64
	flushedVisits uint64
}

// New creates an interpreter for mod, allocating storage for its globals.
func New(mod *ir.Module, opts Options) (*Interp, error) {
	it := &Interp{
		Mod:     mod,
		Mem:     NewMemory(opts.MemLimit),
		externs: map[string]ExternFn{},
		globals: map[*ir.Global]uint64{},
	}
	if tr := it.Reset(opts); tr != nil {
		return nil, tr
	}
	RegisterBuiltins(it)
	return it, nil
}

// Reset returns the interpreter to its post-New state under new options,
// keeping registered externs, attached metrics and the recycling pools
// but dropping all execution state: output, counters, detections,
// recorder/tracer, call depth and the entire memory image. Globals are
// reallocated in module order on the recycled memory, so they land at
// exactly the addresses a fresh interpreter would use — a deterministic
// program behaves identically on a reset and on a fresh instance.
// Campaign hot paths reset-and-reuse instances instead of rebuilding
// every frame, buffer and segment per experiment.
func (it *Interp) Reset(opts Options) *Trap {
	if opts.Budget == 0 {
		opts.Budget = 200_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 512
	}
	it.Mem.Reset(opts.MemLimit)
	it.Output.Reset()
	it.DynInstrs, it.DynVector = 0, 0
	it.Detections = it.Detections[:0]
	it.DetectionDyns = it.DetectionDyns[:0]
	it.budget = opts.Budget
	it.maxDepth = opts.MaxDepth
	it.depth = 0
	it.tracer = nil
	it.rec = nil
	it.prof = nil
	it.hb = nil
	it.flushedInstrs, it.flushedVector = 0, 0
	it.siteVisits, it.flushedVisits = 0, 0
	clear(it.globals)
	for _, g := range it.Mod.Globals {
		addr, tr := it.Mem.Alloc(uint64(g.Elem.ByteSize() * g.Count))
		if tr != nil {
			return tr
		}
		it.globals[g] = addr
	}
	return nil
}

// RegisterExtern installs (or replaces) the implementation of an external
// function.
func (it *Interp) RegisterExtern(name string, fn ExternFn) {
	it.externs[name] = fn
	clear(it.externBy)
	it.externEpoch++
}

// resolveExtern resolves a declaration to its implementation —
// registered extern first, generic intrinsic fallback — memoizing the
// name lookup per declaration node in externBy.
func (it *Interp) resolveExtern(f *ir.Func) (ExternFn, bool) {
	if fn, ok := it.externBy[f]; ok {
		return fn, true
	}
	fn, ok := it.externs[f.Nam]
	if !ok {
		fn, ok = genericIntrinsic(f.Nam)
	}
	if !ok {
		return nil, false
	}
	if it.externBy == nil {
		it.externBy = map[*ir.Func]ExternFn{}
	}
	it.externBy[f] = fn
	return fn, true
}

// HasExtern reports whether name has a registered implementation.
func (it *Interp) HasExtern(name string) bool {
	_, ok := it.externs[name]
	return ok
}

// GlobalAddr returns the base address of a module global.
func (it *Interp) GlobalAddr(g *ir.Global) uint64 { return it.globals[g] }

// GlobalAddrByName returns the base address of the named global.
func (it *Interp) GlobalAddrByName(name string) (uint64, bool) {
	for g, a := range it.globals {
		if g.Nam == name {
			return a, true
		}
	}
	return 0, false
}

// Run executes the named function with args and returns its result.
func (it *Interp) Run(name string, args ...Value) (Value, *Trap) {
	f := it.Mod.Func(name)
	if f == nil {
		return Value{}, trapf(TrapHalt, "no such function @%s", name)
	}
	return it.Call(f, args)
}

// Call executes f with args.
func (it *Interp) Call(f *ir.Func, args []Value) (ret Value, tr *Trap) {
	if f.IsDecl {
		fn, ok := it.resolveExtern(f)
		if !ok {
			return Value{}, trapf(TrapHalt, "unresolved external @%s", f.Nam)
		}
		return fn(it, args)
	}
	if it.depth++; it.depth > it.maxDepth {
		it.depth--
		return Value{}, trapf(TrapStack, "call depth %d at @%s", it.depth, f.Nam)
	}
	var fr *frame
	defer func() {
		it.depth--
		if fr != nil {
			it.putFrame(fr)
		}
		// Top-level return: publish batched counters and record a trap
		// outcome, so attached telemetry costs nothing per instruction.
		if it.depth == 0 && it.metrics != nil {
			it.FlushMetrics()
			if tr != nil && it.metrics.Traps != nil {
				it.metrics.Traps.Inc()
			}
		}
	}()

	if len(args) != len(f.Params) {
		return Value{}, trapf(TrapHalt, "@%s: got %d args, want %d",
			f.Nam, len(args), len(f.Params))
	}
	if it.engine != nil {
		if v, etr, ok := it.engine.CallCompiled(it, f, args); ok {
			return v, etr
		}
	}
	fr = it.getFrame(args)

	cur := f.Entry()
	var prev *ir.Block
	for {
		// Evaluate phis as a parallel copy.
		phis := cur.Phis()
		if len(phis) > 0 {
			tmp := it.getOps(len(phis))
			for i, phi := range phis {
				v, tr := it.phiIncoming(fr, phi, prev)
				if tr != nil {
					it.putOps(tmp)
					return Value{}, it.locate(tr, phi)
				}
				tmp[i] = v
			}
			for i, phi := range phis {
				fr.vals[phi] = tmp[i]
				it.account(phi)
				if it.rec != nil {
					it.rec.Retire(phi, it.DynInstrs, tmp[i])
				}
			}
			it.putOps(tmp)
			if tr := it.checkBudget(); tr != nil {
				return Value{}, it.locate(tr, phis[0])
			}
		}

		for _, in := range cur.Instrs[len(phis):] {
			it.account(in)
			if it.DynInstrs&1023 == 0 {
				if tr := it.checkBudget(); tr != nil {
					return Value{}, it.locate(tr, in)
				}
			}
			switch in.Op {
			case ir.OpBr:
				prev, cur = cur, in.Succs[0]
				goto nextBlock
			case ir.OpCondBr:
				c, tr := it.eval(fr, in.Operand(0))
				if tr != nil {
					return Value{}, it.locate(tr, in)
				}
				if c.Bool() {
					prev, cur = cur, in.Succs[0]
				} else {
					prev, cur = cur, in.Succs[1]
				}
				goto nextBlock
			case ir.OpRet:
				if len(in.Operands()) == 0 {
					return Value{}, nil
				}
				v, tr := it.eval(fr, in.Operand(0))
				return v, it.locate(tr, in)
			case ir.OpUnreachable:
				return Value{}, it.locate(trapf(TrapHalt, "reached unreachable in @%s", f.Nam), in)
			default:
				v, tr := it.execInstr(fr, in)
				if tr != nil {
					return Value{}, it.locate(tr, in)
				}
				if !in.Ty.IsVoid() {
					fr.vals[in] = v
				}
				if it.tracer != nil {
					it.trace(in, v)
				}
				if it.rec != nil {
					it.rec.Retire(in, it.DynInstrs, v)
				}
			}
		}
		return Value{}, trapf(TrapHalt, "block %s fell through", cur.Nam)
	nextBlock:
	}
}

type frame struct {
	vals   map[*ir.Instr]Value
	params []Value
}

// getFrame pops a recycled call frame (or builds one) with args copied
// into its params.
func (it *Interp) getFrame(args []Value) *frame {
	var fr *frame
	if n := len(it.frames); n > 0 {
		fr = it.frames[n-1]
		it.frames[n-1] = nil
		it.frames = it.frames[:n-1]
	} else {
		fr = &frame{vals: make(map[*ir.Instr]Value, 64)}
	}
	fr.params = append(fr.params[:0], args...)
	return fr
}

// putFrame drops a frame's value references and returns it to the pool.
func (it *Interp) putFrame(fr *frame) {
	clear(fr.vals)
	for i := range fr.params {
		fr.params[i] = Value{}
	}
	fr.params = fr.params[:0]
	it.frames = append(it.frames, fr)
}

// getOps pops a recycled operand buffer of length n. The buffers are
// scratch for one instruction: every execInstr path must return them
// with putOps once the result value has been built (results never alias
// the buffer itself, only the Bits payloads of live values).
func (it *Interp) getOps(n int) []Value {
	if m := len(it.ops); m > 0 {
		buf := it.ops[m-1]
		it.ops[m-1] = nil
		it.ops = it.ops[:m-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	if n < 4 {
		return make([]Value, n, 4)
	}
	return make([]Value, n)
}

// putOps drops the buffer's value references and returns it to the pool.
func (it *Interp) putOps(ops []Value) {
	for i := range ops {
		ops[i] = Value{}
	}
	it.ops = append(it.ops, ops[:0])
}

// locate stamps tr with the provenance of the instruction that was
// retiring when it fired. The innermost frame wins: once Func is set,
// outer frames unwinding the same trap leave it untouched.
func (it *Interp) locate(tr *Trap, in *ir.Instr) *Trap {
	if tr == nil || tr.Func != "" || in == nil || in.Parent == nil {
		return tr
	}
	tr.Func = in.Parent.Func.Nam
	tr.Block = in.Parent.Nam
	tr.Instr = in.String()
	tr.Dyn = it.DynInstrs
	return tr
}

// Detect records a detector firing, stamped with the current dynamic
// instruction count. Detector runtimes must use this rather than append
// to Detections directly so propagation tracing can compute
// time-to-detection.
func (it *Interp) Detect(msg string) {
	it.Detections = append(it.Detections, msg)
	it.DetectionDyns = append(it.DetectionDyns, it.DynInstrs)
}

func (it *Interp) account(in *ir.Instr) {
	it.DynInstrs++
	if in.IsVectorInstr() {
		it.DynVector++
	}
	if it.prof != nil {
		it.prof.Account(in)
	}
}

func (it *Interp) checkBudget() *Trap {
	if it.hb != nil {
		it.hb(it.DynInstrs)
	}
	if it.DynInstrs > it.budget {
		return trapf(TrapBudget, "executed %d instructions", it.DynInstrs)
	}
	return nil
}

func (it *Interp) phiIncoming(fr *frame, phi *ir.Instr, prev *ir.Block) (Value, *Trap) {
	for i, b := range phi.Succs {
		if b == prev {
			return it.eval(fr, phi.Operand(i))
		}
	}
	return Value{}, trapf(TrapHalt, "phi %%%s: no incoming for block %v", phi.Nam, prev)
}

// eval resolves an operand to its runtime value.
func (it *Interp) eval(fr *frame, v ir.Value) (Value, *Trap) {
	switch x := v.(type) {
	case *ir.Const:
		return ConstValue(x), nil
	case *ir.Param:
		return fr.params[x.Index], nil
	case *ir.Instr:
		val, ok := fr.vals[x]
		if !ok {
			return Value{}, trapf(TrapHalt, "use of undefined value %%%s", x.Nam)
		}
		return val, nil
	case *ir.Global:
		return PtrValue(x.Type(), it.globals[x]), nil
	}
	return Value{}, trapf(TrapHalt, "unsupported operand %T", v)
}

func (it *Interp) evalN(fr *frame, in *ir.Instr) ([]Value, *Trap) {
	out := it.getOps(in.NumOperands())
	for i := 0; i < in.NumOperands(); i++ {
		v, tr := it.eval(fr, in.Operand(i))
		if tr != nil {
			it.putOps(out)
			return nil, tr
		}
		out[i] = v
	}
	return out, nil
}

func (it *Interp) execInstr(fr *frame, in *ir.Instr) (Value, *Trap) {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem, ir.OpUDiv,
		ir.OpURem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		v, tr := intBin(in.Op, ops[0], ops[1])
		it.putOps(ops)
		return v, tr
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFRem:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		v := floatBin(in.Op, ops[0], ops[1])
		it.putOps(ops)
		return v, nil
	case ir.OpICmp, ir.OpFCmp:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		v := compare(in.Op, in.Pred, ops[0], ops[1])
		it.putOps(ops)
		return v, nil
	case ir.OpSelect:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		v := selectVal(ops[0], ops[1], ops[2])
		it.putOps(ops)
		return v, nil
	case ir.OpAlloca:
		addr, tr := it.Mem.Alloc(uint64(in.AllocElem.ByteSize() * in.AllocCount))
		if tr != nil {
			return Value{}, tr
		}
		return PtrValue(in.Ty, addr), nil
	case ir.OpLoad:
		p, tr := it.eval(fr, in.Operand(0))
		if tr != nil {
			return Value{}, tr
		}
		return it.Mem.Load(in.Ty, p.Uint())
	case ir.OpStore:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		str := it.Mem.Store(ops[0], ops[1].Uint())
		it.putOps(ops)
		return Value{}, str
	case ir.OpGEP:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		elem := in.Ty.Elem
		addr := ops[0].Uint() + uint64(ops[1].Int())*uint64(elem.ByteSize())
		it.putOps(ops)
		return PtrValue(in.Ty, addr), nil
	case ir.OpExtractElement:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		idx := int(ops[1].Int())
		if idx < 0 || idx >= len(ops[0].Bits) {
			return Value{}, trapf(TrapBadIndex, "extractelement lane %d of %d",
				idx, len(ops[0].Bits))
		}
		v := Scalar(in.Ty, ops[0].Bits[idx])
		it.putOps(ops)
		return v, nil
	case ir.OpInsertElement:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		idx := int(ops[2].Int())
		if idx < 0 || idx >= len(ops[0].Bits) {
			return Value{}, trapf(TrapBadIndex, "insertelement lane %d of %d",
				idx, len(ops[0].Bits))
		}
		out := ops[0].Clone()
		out.Bits[idx] = ops[1].Bits[0]
		it.putOps(ops)
		return out, nil
	case ir.OpShuffleVector:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		n := ops[0].Lanes()
		out := Zero(in.Ty)
		for i, mi := range in.ShuffleMask {
			switch {
			case mi < 0:
				out.Bits[i] = 0 // undef lane
			case mi < n:
				out.Bits[i] = ops[0].Bits[mi]
			default:
				out.Bits[i] = ops[1].Bits[mi-n]
			}
		}
		it.putOps(ops)
		return out, nil
	case ir.OpPhi:
		return Value{}, trapf(TrapHalt, "phi executed outside block entry")
	case ir.OpCall:
		ops, tr := it.evalN(fr, in)
		if tr != nil {
			return Value{}, tr
		}
		v, tr := it.Call(in.Callee, ops)
		it.putOps(ops)
		return v, tr
	default:
		if in.Op.IsCast() {
			v, tr := it.eval(fr, in.Operand(0))
			if tr != nil {
				return Value{}, tr
			}
			return castVal(in.Op, v, in.Ty), nil
		}
		return Value{}, trapf(TrapHalt, "unimplemented opcode %s", in.Op)
	}
}

func intBin(op ir.Op, a, b Value) (Value, *Trap) {
	out := Zero(a.Ty)
	if tr := intBinInto(out, op, a, b); tr != nil {
		return Value{}, tr
	}
	return out, nil
}

// intBinInto computes a lane-wise integer binary op into out, whose
// Bits must already hold one word per lane. Every lane is written (no
// stale data survives), so out may come from recycled storage.
func intBinInto(out Value, op ir.Op, a, b Value) *Trap {
	bits := a.Ty.ScalarBits()
	for i := range a.Bits {
		x, y := a.Bits[i], b.Bits[i]
		sx, sy := ir.SignExtend(x, bits), ir.SignExtend(y, bits)
		var r uint64
		switch op {
		case ir.OpAdd:
			r = x + y
		case ir.OpSub:
			r = x - y
		case ir.OpMul:
			r = x * y
		case ir.OpSDiv, ir.OpSRem:
			if sy == 0 {
				return trapf(TrapDivZero, "%s by zero", op)
			}
			if sx == minIntFor(bits) && sy == -1 {
				return trapf(TrapDivOverflow, "%d %s -1", sx, op)
			}
			if op == ir.OpSDiv {
				r = uint64(sx / sy)
			} else {
				r = uint64(sx % sy)
			}
		case ir.OpUDiv, ir.OpURem:
			if y == 0 {
				return trapf(TrapDivZero, "%s by zero", op)
			}
			if op == ir.OpUDiv {
				r = x / y
			} else {
				r = x % y
			}
		case ir.OpAnd:
			r = x & y
		case ir.OpOr:
			r = x | y
		case ir.OpXor:
			r = x ^ y
		case ir.OpShl:
			r = x << (y % uint64(bits))
		case ir.OpLShr:
			r = x >> (y % uint64(bits))
		case ir.OpAShr:
			r = uint64(sx >> (y % uint64(bits)))
		}
		out.Bits[i] = ir.TruncateToWidth(r, bits)
	}
	return nil
}

func minIntFor(bits int) int64 {
	if bits >= 64 {
		return math.MinInt64
	}
	return -(1 << uint(bits-1))
}

func floatBin(op ir.Op, a, b Value) Value {
	out := Zero(a.Ty)
	floatBinInto(out, op, a, b)
	return out
}

// floatBinInto computes a lane-wise float binary op into out; every
// lane is written.
func floatBinInto(out Value, op ir.Op, a, b Value) {
	for i := range a.Bits {
		x, y := a.LaneFloat(i), b.LaneFloat(i)
		var r float64
		switch op {
		case ir.OpFAdd:
			r = x + y
		case ir.OpFSub:
			r = x - y
		case ir.OpFMul:
			r = x * y
		case ir.OpFDiv:
			r = x / y // IEEE: ±Inf/NaN, no trap
		case ir.OpFRem:
			r = math.Mod(x, y)
		}
		if a.Ty.Scalar() == ir.F32 {
			r = float64(float32(r))
		}
		out.SetLaneFloat(i, r)
	}
}

func compare(op ir.Op, pred ir.Pred, a, b Value) Value {
	n := a.Lanes()
	var ty *ir.Type = ir.I1
	if a.Ty.IsVector() {
		ty = ir.Vec(ir.I1, n)
	}
	out := Zero(ty)
	compareInto(out, op, pred, a, b)
	return out
}

// compareInto computes a lane-wise icmp/fcmp into out (i1 lanes); every
// lane is written.
func compareInto(out Value, op ir.Op, pred ir.Pred, a, b Value) {
	n := a.Lanes()
	bits := a.Ty.ScalarBits()
	for i := 0; i < n; i++ {
		var res bool
		if op == ir.OpICmp {
			sx, sy := ir.SignExtend(a.Bits[i], bits), ir.SignExtend(b.Bits[i], bits)
			ux, uy := a.Bits[i], b.Bits[i]
			switch pred {
			case ir.IntEQ:
				res = ux == uy
			case ir.IntNE:
				res = ux != uy
			case ir.IntSLT:
				res = sx < sy
			case ir.IntSLE:
				res = sx <= sy
			case ir.IntSGT:
				res = sx > sy
			case ir.IntSGE:
				res = sx >= sy
			case ir.IntULT:
				res = ux < uy
			case ir.IntULE:
				res = ux <= uy
			case ir.IntUGT:
				res = ux > uy
			case ir.IntUGE:
				res = ux >= uy
			}
		} else {
			x, y := a.LaneFloat(i), b.LaneFloat(i)
			switch pred {
			case ir.FloatOEQ:
				res = x == y
			case ir.FloatONE:
				res = x != y && !math.IsNaN(x) && !math.IsNaN(y)
			case ir.FloatUNE:
				res = x != y
			case ir.FloatOLT:
				res = x < y
			case ir.FloatOLE:
				res = x <= y
			case ir.FloatOGT:
				res = x > y
			case ir.FloatOGE:
				res = x >= y
			}
		}
		if res {
			out.Bits[i] = 1
		} else {
			out.Bits[i] = 0
		}
	}
}

func selectVal(c, t, f Value) Value {
	if c.Ty == ir.I1 {
		if c.Bool() {
			return t.Clone()
		}
		return f.Clone()
	}
	out := Zero(t.Ty)
	selectInto(out, c, t, f)
	return out
}

// selectInto computes select into out (scalar condition copies the
// chosen side; vector condition blends lane-wise); every lane is
// written.
func selectInto(out Value, c, t, f Value) {
	if c.Ty == ir.I1 {
		if c.Bool() {
			copy(out.Bits, t.Bits)
		} else {
			copy(out.Bits, f.Bits)
		}
		return
	}
	for i := range out.Bits {
		if c.Bits[i]&1 != 0 {
			out.Bits[i] = t.Bits[i]
		} else {
			out.Bits[i] = f.Bits[i]
		}
	}
}

func castVal(op ir.Op, v Value, to *ir.Type) Value {
	out := Zero(to)
	castInto(out, op, v, to)
	return out
}

// castInto computes a cast into out; every lane is written.
func castInto(out Value, op ir.Op, v Value, to *ir.Type) {
	fromS, toS := v.Ty.Scalar(), to.Scalar()
	for i := range v.Bits {
		switch op {
		case ir.OpTrunc:
			out.Bits[i] = ir.TruncateToWidth(v.Bits[i], toS.Bits)
		case ir.OpZExt:
			out.Bits[i] = v.Bits[i]
		case ir.OpSExt:
			out.Bits[i] = ir.TruncateToWidth(uint64(ir.SignExtend(v.Bits[i], fromS.Bits)), toS.Bits)
		case ir.OpFPTrunc:
			out.Bits[i] = uint64(math.Float32bits(float32(math.Float64frombits(v.Bits[i]))))
		case ir.OpFPExt:
			out.Bits[i] = math.Float64bits(float64(math.Float32frombits(uint32(v.Bits[i]))))
		case ir.OpSIToFP:
			f := float64(ir.SignExtend(v.Bits[i], fromS.Bits))
			if toS == ir.F32 {
				out.Bits[i] = uint64(math.Float32bits(float32(f)))
			} else {
				out.Bits[i] = math.Float64bits(f)
			}
		case ir.OpFPToSI:
			var f float64
			if fromS == ir.F32 {
				f = float64(math.Float32frombits(uint32(v.Bits[i])))
			} else {
				f = math.Float64frombits(v.Bits[i])
			}
			out.Bits[i] = ir.TruncateToWidth(uint64(clampToInt(f)), toS.Bits)
		case ir.OpBitcast, ir.OpPtrToInt, ir.OpIntToPtr:
			out.Bits[i] = ir.TruncateToWidth(v.Bits[i], toS.ScalarBits())
		}
	}
}

// clampToInt converts like x86 cvttss2si: NaN/overflow produce the
// "integer indefinite" value (min int64) rather than UB.
func clampToInt(f float64) int64 {
	if math.IsNaN(f) {
		return math.MinInt64
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

// DumpState formats a deterministic execution summary: the headline
// counters on the first line, then one line per module global sorted by
// name with its address and leading memory contents. Two interpreters
// that executed identically produce byte-identical dumps, so trace-diff
// tests can compare them directly.
func (it *Interp) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dyn=%d vec=%d depth=%d segments=%d out=%dB detections=%d\n",
		it.DynInstrs, it.DynVector, it.depth, it.Mem.Allocated(),
		it.Output.Len(), len(it.Detections))

	globals := make([]*ir.Global, 0, len(it.globals))
	for g := range it.globals {
		globals = append(globals, g)
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i].Nam < globals[j].Nam })

	const maxDump = 64 // bytes of contents shown per global
	for _, g := range globals {
		addr := it.globals[g]
		size := uint64(g.Elem.ByteSize() * g.Count)
		fmt.Fprintf(&b, "global @%s %s x%d @%#x = ", g.Nam, g.Elem, g.Count, addr)
		n := size
		if n > maxDump {
			n = maxDump
		}
		if data, tr := it.Mem.ReadBytes(addr, n); tr == nil {
			fmt.Fprintf(&b, "%x", data)
		} else {
			b.WriteString("<unreadable>")
		}
		if size > maxDump {
			fmt.Fprintf(&b, "... (%d bytes)", size)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
