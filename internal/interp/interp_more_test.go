package interp

import (
	"strings"
	"testing"

	"vulfi/internal/ir"
)

// buildRecursive builds f(n) = n == 0 ? 0 : f(n-1), which recurses n deep.
func buildRecursive(m *ir.Module) *ir.Func {
	f := ir.NewFunc("rec", ir.I32, []*ir.Type{ir.I32}, []string{"n"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	base := f.NewBlock("base")
	rec := f.NewBlock("rec")
	bu := ir.NewBuilder(entry)
	c := bu.ICmp(ir.IntEQ, f.Params[0], ir.ConstInt(ir.I32, 0), "c")
	bu.CondBr(c, base, rec)
	bu.SetBlock(base)
	bu.Ret(ir.ConstInt(ir.I32, 0))
	bu.SetBlock(rec)
	n1 := bu.Sub(f.Params[0], ir.ConstInt(ir.I32, 1), "n1")
	r := bu.Call(f, "r", n1)
	bu.Ret(r)
	return f
}

func TestCallDepthTrap(t *testing.T) {
	m := ir.NewModule("t")
	buildRecursive(m)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	it, _ := New(m, Options{MaxDepth: 64})
	if _, tr := it.Run("rec", IntValue(ir.I32, 10)); tr != nil {
		t.Fatalf("shallow recursion trapped: %v", tr)
	}
	it2, _ := New(m, Options{MaxDepth: 64})
	_, tr := it2.Run("rec", IntValue(ir.I32, 1000))
	if tr == nil || tr.Kind != TrapStack {
		t.Fatalf("deep recursion trap = %v", tr)
	}
}

func TestBudgetTrap(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("spin", ir.Void, nil, nil)
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	bu := ir.NewBuilder(entry)
	bu.Br(loop)
	bu.SetBlock(loop)
	bu.Br(loop) // infinite loop
	it, _ := New(m, Options{Budget: 10_000})
	_, tr := it.Run("spin")
	if tr == nil || tr.Kind != TrapBudget {
		t.Fatalf("hang trap = %v", tr)
	}
}

func TestUnresolvedExtern(t *testing.T) {
	m := ir.NewModule("t")
	d := ir.NewDecl("mystery.fn", ir.I32, ir.I32)
	m.AddFunc(d)
	f := ir.NewFunc("f", ir.I32, nil, nil)
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	r := bu.Call(d, "r", ir.ConstInt(ir.I32, 1))
	bu.Ret(r)
	it, _ := New(m, Options{})
	_, tr := it.Run("f")
	if tr == nil || !strings.Contains(tr.Msg, "mystery.fn") {
		t.Fatalf("unresolved extern trap = %v", tr)
	}
}

func TestGenericMathIntrinsics(t *testing.T) {
	m := ir.NewModule("t")
	sqrt := ir.NewDecl("llvm.sqrt.v4f32", ir.Vec(ir.F32, 4), ir.Vec(ir.F32, 4))
	m.AddFunc(sqrt)
	pow := ir.NewDecl("llvm.pow.f32", ir.F32, ir.F32, ir.F32)
	m.AddFunc(pow)
	f := ir.NewFunc("f", ir.F32, []*ir.Type{ir.Vec(ir.F32, 4)}, []string{"v"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	s := bu.Call(sqrt, "s", f.Params[0])
	e0 := bu.ExtractElement(s, ir.ConstInt(ir.I32, 0), "e0")
	p := bu.Call(pow, "p", e0, ir.ConstFloat(ir.F32, 2))
	bu.Ret(p)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	it, _ := New(m, Options{})
	v := Zero(ir.Vec(ir.F32, 4))
	for i := range v.Bits {
		v.SetLaneFloat(i, 9)
	}
	got, tr := it.Run("f", v)
	if tr != nil {
		t.Fatal(tr)
	}
	// sqrt(9)^2 == 9
	if got.Float() != 9 {
		t.Fatalf("sqrt/pow chain = %v", got.Float())
	}
}

func TestOutputBuiltins(t *testing.T) {
	m := ir.NewModule("t")
	outI := ir.NewDecl("vulfi.out.i32", ir.Void, ir.I32)
	m.AddFunc(outI)
	outV := ir.NewDecl("vulfi.out.v4f32", ir.Void, ir.Vec(ir.F32, 4))
	m.AddFunc(outV)
	f := ir.NewFunc("f", ir.Void, nil, nil)
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	bu.Call(outI, "", ir.ConstInt(ir.I32, -7))
	vec := ir.ConstVec(ir.Vec(ir.F32, 4), []uint64{
		FloatValue(ir.F32, 1).Bits[0], FloatValue(ir.F32, 2).Bits[0],
		FloatValue(ir.F32, 3).Bits[0], FloatValue(ir.F32, 4).Bits[0],
	})
	bu.Call(outV, "", vec)
	bu.Ret(nil)
	it, _ := New(m, Options{})
	if _, tr := it.Run("f"); tr != nil {
		t.Fatal(tr)
	}
	want := "-7\n1\n2\n3\n4\n"
	if it.Output.String() != want {
		t.Fatalf("output = %q, want %q", it.Output.String(), want)
	}
}

func TestShuffleAndInsertExtract(t *testing.T) {
	m := ir.NewModule("t")
	vt := ir.Vec(ir.I32, 4)
	f := ir.NewFunc("f", vt, []*ir.Type{vt}, []string{"v"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	// Reverse the vector with a shuffle.
	rev := bu.ShuffleVector(f.Params[0], ir.UndefValue(vt), []int{3, 2, 1, 0}, "rev")
	// Then put 99 into lane 1.
	ins := bu.InsertElement(rev, ir.ConstInt(ir.I32, 99), ir.ConstInt(ir.I32, 1), "ins")
	bu.Ret(ins)
	it, _ := New(m, Options{})
	in := Value{Ty: vt, Bits: []uint64{10, 20, 30, 40}}
	got, tr := it.Run("f", in)
	if tr != nil {
		t.Fatal(tr)
	}
	want := []int64{40, 99, 20, 10}
	for i, w := range want {
		if got.LaneInt(i) != w {
			t.Fatalf("lane %d = %d, want %d", i, got.LaneInt(i), w)
		}
	}
}

func TestExtractBadIndexTraps(t *testing.T) {
	m := ir.NewModule("t")
	vt := ir.Vec(ir.I32, 4)
	f := ir.NewFunc("f", ir.I32, []*ir.Type{vt, ir.I32}, []string{"v", "i"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	e := bu.ExtractElement(f.Params[0], f.Params[1], "e")
	bu.Ret(e)
	it, _ := New(m, Options{})
	in := Value{Ty: vt, Bits: []uint64{1, 2, 3, 4}}
	_, tr := it.Run("f", in, IntValue(ir.I32, 9))
	if tr == nil || tr.Kind != TrapBadIndex {
		t.Fatalf("bad index trap = %v", tr)
	}
}

func TestGlobalsAllocatedAndAddressable(t *testing.T) {
	m := ir.NewModule("t")
	g := &ir.Global{Nam: "table", Elem: ir.I32, Count: 4}
	m.AddGlobal(g)
	f := ir.NewFunc("f", ir.I32, nil, nil)
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	p := bu.GEP(g, ir.ConstInt(ir.I32, 2), "p")
	bu.Store(ir.ConstInt(ir.I32, 123), p)
	l := bu.Load(p, "l")
	bu.Ret(l)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	it, _ := New(m, Options{})
	got, tr := it.Run("f")
	if tr != nil || got.Int() != 123 {
		t.Fatalf("global store/load = %v %v", got, tr)
	}
	if _, ok := it.GlobalAddrByName("table"); !ok {
		t.Fatal("global address not registered")
	}
}

func TestAccounting(t *testing.T) {
	m := ir.NewModule("t")
	vt := ir.Vec(ir.I32, 4)
	f := ir.NewFunc("f", vt, []*ir.Type{vt}, []string{"v"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	a := bu.Add(f.Params[0], f.Params[0], "a") // vector
	e := bu.ExtractElement(a, ir.ConstInt(ir.I32, 0), "e")
	_ = bu.Add(e, e, "s") // scalar — kept alive by nothing; still executed
	bu.Ret(a)
	it, _ := New(m, Options{})
	if _, tr := it.Run("f", Zero(vt)); tr != nil {
		t.Fatal(tr)
	}
	// 4 instructions executed: add, extract, add, ret.
	if it.DynInstrs != 4 {
		t.Fatalf("DynInstrs = %d, want 4", it.DynInstrs)
	}
	// Vector instructions: the vector add, the extractelement, and the
	// ret (it has a vector operand — the paper's definition counts it).
	if it.DynVector != 3 {
		t.Fatalf("DynVector = %d, want 3", it.DynVector)
	}
}

func TestTracer(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.I32}, []string{"x"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	a := bu.Add(f.Params[0], ir.ConstInt(ir.I32, 1), "a")
	b := bu.Mul(a, a, "b")
	bu.Ret(b)
	it, _ := New(m, Options{})
	var buf strings.Builder
	it.SetTracer(&Tracer{W: &buf, Limit: 10})
	if _, tr := it.Run("f", IntValue(ir.I32, 4)); tr != nil {
		t.Fatal(tr)
	}
	out := buf.String()
	for _, frag := range []string{"f/entry", "%a = 5", "%b = 25"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("trace missing %q:\n%s", frag, out)
		}
	}
}
