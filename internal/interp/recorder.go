package interp

import "vulfi/internal/ir"

// Recorder receives every retired instruction together with its result
// value. It is the structured hot-path hook the trace package's ring
// buffer attaches to (the Tracer, by contrast, is a human-facing debug
// stream). Implementations must be cheap and must not retain v or its
// Bits slice beyond the call — copy what they keep. Phi nodes are
// retired with their post-parallel-copy value; void instructions
// (stores, void calls) are retired with a zero Value; terminators
// (br/condbr/ret/unreachable) are not retired, control flow is implied
// by the instruction sequence.
type Recorder interface {
	Retire(in *ir.Instr, dyn uint64, v Value)
}

// SetRecorder installs (or, with nil, removes) an execution recorder.
// Disabled recording costs one nil check per retired instruction.
func (it *Interp) SetRecorder(r Recorder) { it.rec = r }
