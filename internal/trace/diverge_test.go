package trace

import (
	"encoding/json"
	"testing"

	"vulfi/internal/ir"
)

// divergeFixture builds a function whose instructions exercise every
// dynamic classification path:
//
//	%a   = add i32 %x, 1          ; pure data
//	%c   = icmp slt i32 %a, 10    ; feeds the condbr (control use)
//	%p   = gep i32* %buf, %a      ; %a also feeds an address use
//	store i32 %a, i32* %p
//	condbr %c, then, done
type divergeFixture struct {
	a, c, p, st *ir.Instr
}

func buildDivergeFixture(t *testing.T) *divergeFixture {
	t.Helper()
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.Void, []*ir.Type{ir.I32, ir.Ptr(ir.I32)},
		[]string{"x", "buf"})
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	done := f.NewBlock("done")

	b := ir.NewBuilder(entry)
	a := b.Add(f.Params[0], ir.ConstInt(ir.I32, 1), "a")
	c := b.ICmp(ir.IntSLT, a, ir.ConstInt(ir.I32, 10), "c")
	p := b.GEP(f.Params[1], a, "p")
	st := b.Store(a, p)
	b.CondBr(c, then, done)
	ir.NewBuilder(then).Br(done)
	ir.NewBuilder(done).Ret(nil)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return &divergeFixture{a: a, c: c, p: p, st: st}
}

func TestAnalyzeIdentical(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	for _, r := range []*Ring{g, f} {
		r.Retire(fx.a, 1, v32(5))
		r.Retire(fx.c, 2, v32(1))
	}
	e := Analyze(g, f)
	if e.Diverged || e.Depth != 0 || e.First != nil || e.ControlDivergence {
		t.Fatalf("identical rings produced divergence: %+v", e)
	}
	if e.SliceClass() != "data" {
		t.Fatalf("SliceClass = %q, want data", e.SliceClass())
	}
}

func TestAnalyzeValueDivergence(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	g.Retire(fx.a, 1, v32(5))
	f.Retire(fx.a, 1, v32(7)) // corrupted: %a feeds condbr (via %c), gep, store
	g.Retire(fx.c, 2, v32(1))
	f.Retire(fx.c, 2, v32(1)) // compare result happens to match
	e := Analyze(g, f)
	if !e.Diverged || e.First == nil {
		t.Fatalf("no divergence found: %+v", e)
	}
	if e.First.Dyn != 1 || e.First.Func != "f" || e.First.Block != "entry" {
		t.Fatalf("First = %+v, want dyn 1 at f/entry", e.First)
	}
	if len(e.FirstLanes) != 1 || e.FirstLanes[0] != 0 {
		t.Fatalf("FirstLanes = %v, want [0]", e.FirstLanes)
	}
	if e.Depth != 1 || e.MaxLaneSpread != 1 {
		t.Fatalf("depth=%d spread=%d, want 1/1", e.Depth, e.MaxLaneSpread)
	}
	// %a is used by the gep (address) and by the store value operand
	// (not address); its icmp use carries no flag, so control stays off.
	if !e.CrossedAddress {
		t.Fatal("gep use of corrupted a-value must set CrossedAddress")
	}
	if e.CrossedControl {
		t.Fatal("no control use of the a-value itself; CrossedControl must stay off")
	}
	if e.SliceClass() != "address" {
		t.Fatalf("SliceClass = %q, want address", e.SliceClass())
	}
	if len(e.Chain) != 1 || e.Chain[0].Golden == e.Chain[0].Faulty {
		t.Fatalf("chain = %+v", e.Chain)
	}
}

func TestAnalyzeControlUse(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	g.Retire(fx.a, 1, v32(5))
	f.Retire(fx.a, 1, v32(5))
	g.Retire(fx.c, 2, v32(1))
	f.Retire(fx.c, 2, v32(0)) // corrupted compare feeds the condbr
	e := Analyze(g, f)
	if !e.CrossedControl {
		t.Fatal("condbr use of corrupted compare must set CrossedControl")
	}
	if e.SliceClass() != "control" {
		t.Fatalf("SliceClass = %q, want control", e.SliceClass())
	}
}

func TestAnalyzeVectorLaneSpread(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	g.Retire(fx.a, 1, v32(1, 2, 3, 4))
	f.Retire(fx.a, 1, v32(1, 9, 3, 8))
	e := Analyze(g, f)
	if e.MaxLaneSpread != 2 {
		t.Fatalf("MaxLaneSpread = %d, want 2", e.MaxLaneSpread)
	}
	if len(e.FirstLanes) != 2 || e.FirstLanes[0] != 1 || e.FirstLanes[1] != 3 {
		t.Fatalf("FirstLanes = %v, want [1 3]", e.FirstLanes)
	}
}

func TestAnalyzeControlDivergence(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	g.Retire(fx.a, 1, v32(5))
	f.Retire(fx.a, 1, v32(5))
	g.Retire(fx.c, 2, v32(1))
	f.Retire(fx.p, 2, v32(64)) // different instruction stream from here
	g.Retire(fx.p, 3, v32(64))
	f.Retire(fx.c, 3, v32(1))
	e := Analyze(g, f)
	if !e.ControlDivergence || !e.Diverged {
		t.Fatalf("instruction-stream mismatch not flagged: %+v", e)
	}
	if e.ControlDivergedAt == nil || e.ControlDivergedAt.Dyn != 2 {
		t.Fatalf("ControlDivergedAt = %+v, want dyn 2", e.ControlDivergedAt)
	}
	if e.First == nil {
		t.Fatal("First must fall back to the control divergence point")
	}
	if e.PostDivergence != 2 {
		t.Fatalf("PostDivergence = %d, want 2", e.PostDivergence)
	}
	if e.SliceClass() != "control" {
		t.Fatalf("SliceClass = %q, want control", e.SliceClass())
	}
}

func TestAnalyzeEarlyTermination(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	g.Retire(fx.a, 1, v32(5))
	g.Retire(fx.c, 2, v32(1))
	f.Retire(fx.a, 1, v32(5)) // faulty run crashed after one instruction
	e := Analyze(g, f)
	if !e.ControlDivergence {
		t.Fatal("early faulty termination must count as control divergence")
	}
	if e.GoldenRetired != 2 || e.FaultyRetired != 1 {
		t.Fatalf("retired = %d/%d, want 2/1", e.GoldenRetired, e.FaultyRetired)
	}
}

func TestAnalyzeTruncated(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(2), NewRing(2)
	for i := 0; i < 5; i++ {
		g.Retire(fx.a, uint64(i+1), v32(uint64(i)))
		f.Retire(fx.a, uint64(i+1), v32(uint64(i)))
	}
	if e := Analyze(g, f); !e.Truncated {
		t.Fatal("dropped entries must mark the explanation truncated")
	}
}

func TestNoteDetection(t *testing.T) {
	e := &Explanation{TimeToDetection: -1,
		First: &InstrRef{Dyn: 100}, Diverged: true}
	e.NoteDetection(140)
	if e.TimeToDetection != 40 || e.DetectionDyn != 140 {
		t.Fatalf("ttd=%d dyn=%d, want 40/140", e.TimeToDetection, e.DetectionDyn)
	}
}

func TestExplanationJSONRoundTrip(t *testing.T) {
	fx := buildDivergeFixture(t)
	g, f := NewRing(0), NewRing(0)
	g.Retire(fx.a, 1, v32(5))
	f.Retire(fx.a, 1, v32(7))
	e := Analyze(g, f)
	e.Outcome = "SDC"
	e.FaultSite = &SiteRef{SiteID: 3, Lane: 1, Func: "f", Block: "entry",
		Instr: "%a = add i32 %x, 1", Category: "pure-data"}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Explanation
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Outcome != "SDC" || back.First == nil ||
		back.First.Dyn != e.First.Dyn || back.FaultSite.SiteID != 3 ||
		back.Depth != e.Depth {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
