package trace

import (
	"sort"
	"sync"
	"time"

	"vulfi/internal/telemetry"
)

// Histogram names registered on the study registry. The telemetry
// histograms are duration-typed, so integer magnitudes are encoded as
// microseconds (ObserveCount): bucket b then holds values of bit-length
// b, a log2 histogram exported through the existing /metrics and
// /debug/vars expositions unchanged.
const (
	HistDepth  = "trace.depth"
	HistSpread = "trace.lane_spread"
	HistTTD    = "trace.time_to_detection"
)

// ObserveCount records the integer n on a duration histogram using the
// count-as-microseconds encoding.
func ObserveCount(h *telemetry.Histogram, n uint64) {
	h.Observe(time.Duration(n) * time.Microsecond)
}

// SiteKey returns the canonical static-site key "@func/block: instr".
// It is the ONE spelling of a static fault site's identity: the blame
// ranking, the campaign's per-site tallies and the atlas all key on it,
// so a site aggregated by two subsystems can never land under two keys.
func SiteKey(fn, block, instr string) string {
	return "@" + fn + "/" + block + ": " + instr
}

// Key returns the site's canonical static key (see SiteKey). Lane is
// deliberately excluded: attribution is per static site, with lanes
// folded together.
func (s *SiteRef) Key() string { return SiteKey(s.Func, s.Block, s.Instr) }

// BlameEntry is one static fault site's outcome tally in the blame
// ranking.
type BlameEntry struct {
	Site        string `json:"site"`
	Experiments int    `json:"experiments"`
	SDC         int    `json:"sdc"`
	Crash       int    `json:"crash"`
	Benign      int    `json:"benign"`
	Detected    int    `json:"detected"`
}

// SDCRate returns the fraction of this site's experiments that ended in
// silent data corruption.
func (b *BlameEntry) SDCRate() float64 {
	if b.Experiments == 0 {
		return 0
	}
	return float64(b.SDC) / float64(b.Experiments)
}

// Profile aggregates explanations across a study into the
// PropagationProfile: depth/spread/time-to-detection histograms on the
// study's telemetry registry, crossing counters, and the per-static-site
// blame table. Add is safe to call from campaign worker goroutines.
type Profile struct {
	depthH  *telemetry.Histogram
	spreadH *telemetry.Histogram
	ttdH    *telemetry.Histogram

	traced         *telemetry.Counter
	diverged       *telemetry.Counter
	controlDiv     *telemetry.Counter
	crossedControl *telemetry.Counter
	crossedAddress *telemetry.Counter

	mu        sync.Mutex
	n         int
	nDiverged int
	nCtrlDiv  int
	nCtrl     int
	nAddr     int
	depthSum  uint64
	depthMax  int
	spreadSum uint64
	spreadMax int
	ttdSum    uint64
	ttdN      int
	truncated int
	blame     map[string]*BlameEntry
}

// NewProfile creates a profile whose histograms and counters live on
// reg (pass the study's registry so per-job metrics surface on the
// service's /metrics endpoint for free).
func NewProfile(reg *telemetry.Registry) *Profile {
	return &Profile{
		depthH:         reg.Histogram(HistDepth),
		spreadH:        reg.Histogram(HistSpread),
		ttdH:           reg.Histogram(HistTTD),
		traced:         reg.Counter("trace.experiments"),
		diverged:       reg.Counter("trace.diverged"),
		controlDiv:     reg.Counter("trace.control_divergence"),
		crossedControl: reg.Counter("trace.crossed_control"),
		crossedAddress: reg.Counter("trace.crossed_address"),
		blame:          map[string]*BlameEntry{},
	}
}

// Add folds one explained experiment into the profile.
func (p *Profile) Add(e *Explanation) {
	if e == nil {
		return
	}
	p.traced.Inc()
	if e.Diverged {
		p.diverged.Inc()
		ObserveCount(p.depthH, uint64(e.Depth))
		ObserveCount(p.spreadH, uint64(e.MaxLaneSpread))
	}
	if e.ControlDivergence {
		p.controlDiv.Inc()
	}
	if e.CrossedControl {
		p.crossedControl.Inc()
	}
	if e.CrossedAddress {
		p.crossedAddress.Inc()
	}
	if e.TimeToDetection >= 0 {
		ObserveCount(p.ttdH, uint64(e.TimeToDetection))
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	if e.Diverged {
		p.nDiverged++
		p.depthSum += uint64(e.Depth)
		if e.Depth > p.depthMax {
			p.depthMax = e.Depth
		}
		p.spreadSum += uint64(e.MaxLaneSpread)
		if e.MaxLaneSpread > p.spreadMax {
			p.spreadMax = e.MaxLaneSpread
		}
	}
	if e.ControlDivergence {
		p.nCtrlDiv++
	}
	if e.CrossedControl {
		p.nCtrl++
	}
	if e.CrossedAddress {
		p.nAddr++
	}
	if e.TimeToDetection >= 0 {
		p.ttdSum += uint64(e.TimeToDetection)
		p.ttdN++
	}
	if e.Truncated {
		p.truncated++
	}
	if s := e.FaultSite; s != nil {
		key := s.Key()
		b := p.blame[key]
		if b == nil {
			b = &BlameEntry{Site: key}
			p.blame[key] = b
		}
		b.Experiments++
		switch e.Outcome {
		case "SDC":
			b.SDC++
		case "Crash":
			b.Crash++
		default:
			b.Benign++
		}
		if e.Detected {
			b.Detected++
		}
	}
}

// Summary is the JSON-exported PropagationProfile of a study.
type Summary struct {
	Traced            int `json:"traced"`
	Diverged          int `json:"diverged"`
	ControlDivergence int `json:"control_divergence"`
	CrossedControl    int `json:"crossed_control"`
	CrossedAddress    int `json:"crossed_address"`
	Truncated         int `json:"truncated,omitempty"`

	MeanDepth      float64 `json:"mean_depth"`
	MaxDepth       int     `json:"max_depth"`
	MeanLaneSpread float64 `json:"mean_lane_spread"`
	MaxLaneSpread  int     `json:"max_lane_spread"`

	Detections          int     `json:"detections"`
	MeanTimeToDetection float64 `json:"mean_time_to_detection"`

	// Blame ranks static fault sites by SDC count (then crashes, then
	// site name): the sites to harden or instrument first.
	Blame []BlameEntry `json:"blame"`
}

// Summary snapshots the profile, with the blame table ranked most
// SDC-prone first.
func (p *Profile) Summary() *Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Summary{
		Traced:            p.n,
		Diverged:          p.nDiverged,
		ControlDivergence: p.nCtrlDiv,
		CrossedControl:    p.nCtrl,
		CrossedAddress:    p.nAddr,
		Truncated:         p.truncated,
		MaxDepth:          p.depthMax,
		MaxLaneSpread:     p.spreadMax,
		Detections:        p.ttdN,
	}
	if p.nDiverged > 0 {
		s.MeanDepth = float64(p.depthSum) / float64(p.nDiverged)
		s.MeanLaneSpread = float64(p.spreadSum) / float64(p.nDiverged)
	}
	if p.ttdN > 0 {
		s.MeanTimeToDetection = float64(p.ttdSum) / float64(p.ttdN)
	}
	s.Blame = make([]BlameEntry, 0, len(p.blame))
	for _, b := range p.blame {
		s.Blame = append(s.Blame, *b)
	}
	sort.Slice(s.Blame, func(i, j int) bool {
		a, b := &s.Blame[i], &s.Blame[j]
		if a.SDC != b.SDC {
			return a.SDC > b.SDC
		}
		if a.Crash != b.Crash {
			return a.Crash > b.Crash
		}
		return a.Site < b.Site
	})
	return s
}
