package trace

import (
	"vulfi/internal/interp"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
)

// maxChain bounds how many corruption-chain links an Explanation keeps
// verbatim; Depth still counts them all.
const maxChain = 8

// InstrRef locates one dynamic instruction. All fields are plain
// strings/ints so an Explanation survives the JSON round trip through
// the service journal.
type InstrRef struct {
	Func  string `json:"func"`
	Block string `json:"block"`
	Instr string `json:"instr"`
	Dyn   uint64 `json:"dyn"`
}

// SiteRef identifies the instrumented fault site of an experiment,
// together with the static slice classification it was enumerated under
// (the paper's Figure 2 taxonomy).
type SiteRef struct {
	SiteID   int    `json:"site_id"`
	Lane     int    `json:"lane"`
	Func     string `json:"func"`
	Block    string `json:"block"`
	Instr    string `json:"instr"`
	Category string `json:"category,omitempty"` // category the study enumerated under

	// StaticControl/StaticAddress are the site's forward-slice flags.
	StaticControl bool `json:"static_control"`
	StaticAddress bool `json:"static_address"`
}

// TrapRef is the JSON-safe crash provenance of a trapped faulty run.
type TrapRef struct {
	Kind  string `json:"kind"`
	Msg   string `json:"msg"`
	Func  string `json:"func,omitempty"`
	Block string `json:"block,omitempty"`
	Instr string `json:"instr,omitempty"`
	Dyn   uint64 `json:"dyn,omitempty"`
}

// ChainLink is one corrupted value on the divergence chain: where it
// retired, which lanes differ, and both runs' formatted values.
type ChainLink struct {
	Ref    InstrRef `json:"ref"`
	Lanes  []int    `json:"lanes"`
	Golden string   `json:"golden"`
	Faulty string   `json:"faulty"`
}

// Explanation explains one experiment: fault site → divergence chain →
// outcome. It is attached to campaign results when tracing is enabled
// and must stay JSON-round-trippable (no IR pointers).
type Explanation struct {
	Outcome   string   `json:"outcome,omitempty"`
	Detected  bool     `json:"detected,omitempty"`
	FaultSite *SiteRef `json:"fault_site,omitempty"`

	// Diverged reports whether the two recordings differ at all; First is
	// the earliest entry whose value (or instruction identity) differs.
	Diverged   bool      `json:"diverged"`
	First      *InstrRef `json:"first_divergence,omitempty"`
	FirstLanes []int     `json:"first_divergence_lanes,omitempty"`

	// Depth counts corrupted dynamic values in the lockstep-aligned
	// window (the dynamic propagation depth through the def-use chain);
	// MaxLaneSpread is the most simultaneously corrupted lanes seen in
	// any single value.
	Depth         int         `json:"depth"`
	MaxLaneSpread int         `json:"max_lane_spread"`
	Chain         []ChainLink `json:"chain,omitempty"`

	// ControlDivergence reports that the two runs retired different
	// instruction sequences (a corrupted branch, or one run terminating
	// early); lockstep comparison stops there.
	ControlDivergence bool      `json:"control_divergence"`
	ControlDivergedAt *InstrRef `json:"control_diverged_at,omitempty"`

	// CrossedControl/CrossedAddress report that some corrupted value is
	// statically used as a branch/select condition or masked-op mask
	// (control) or as a pointer/index operand (address) — the dynamic
	// confirmation of the paper's Figure 2 categories.
	CrossedControl bool `json:"crossed_control"`
	CrossedAddress bool `json:"crossed_address"`

	// GoldenRetired/FaultyRetired are total recorded instruction counts;
	// PostDivergence counts faulty entries past the aligned window.
	GoldenRetired  uint64 `json:"golden_retired"`
	FaultyRetired  uint64 `json:"faulty_retired"`
	PostDivergence uint64 `json:"post_divergence_retired,omitempty"`

	// DetectionDyn is the dynamic index of the faulty run's first
	// detector firing; TimeToDetection is its distance in retired
	// instructions from the first divergence (-1: no detection).
	DetectionDyn    uint64   `json:"detection_dyn,omitempty"`
	TimeToDetection int64    `json:"time_to_detection"`
	Trap            *TrapRef `json:"trap,omitempty"`

	// Truncated means at least one ring dropped old entries, so the
	// analysis may have missed the true first divergence.
	Truncated bool `json:"truncated,omitempty"`
}

// SliceClass names the dynamic slice class the corruption was observed
// to cross into before surfacing: "data", "control", "address", or
// "control+address". Control divergence itself counts as a control
// crossing.
func (e *Explanation) SliceClass() string {
	ctrl := e.CrossedControl || e.ControlDivergence
	switch {
	case ctrl && e.CrossedAddress:
		return "control+address"
	case ctrl:
		return "control"
	case e.CrossedAddress:
		return "address"
	default:
		return "data"
	}
}

// NoteDetection records the faulty run's first detector firing and
// derives time-to-detection from the first divergence.
func (e *Explanation) NoteDetection(dyn uint64) {
	e.DetectionDyn = dyn
	if e.First != nil && dyn >= e.First.Dyn {
		e.TimeToDetection = int64(dyn - e.First.Dyn)
	}
}

// Analyze replays two recordings in lockstep and derives the divergence
// explanation. Both rings must come from runs of the same instrumented
// module (golden in count-only mode), so the instruction streams align
// entry-for-entry until a control divergence.
func Analyze(golden, faulty *Ring) *Explanation {
	e := &Explanation{
		GoldenRetired:   golden.Retired(),
		FaultyRetired:   faulty.Retired(),
		Truncated:       golden.Dropped() > 0 || faulty.Dropped() > 0,
		TimeToDetection: -1,
	}
	n := golden.Len()
	if faulty.Len() < n {
		n = faulty.Len()
	}
	aligned := n
	for i := 0; i < n; i++ {
		g, f := golden.At(i), faulty.At(i)
		if g.Instr != f.Instr {
			// The runs retired different instructions: a corrupted branch
			// redirected control flow. Lockstep value comparison is
			// meaningless from here on.
			e.ControlDivergence = true
			ref := f.Ref()
			e.ControlDivergedAt = &ref
			aligned = i
			break
		}
		lanes := diffLanes(g.Bits, f.Bits)
		if len(lanes) == 0 {
			continue
		}
		e.Depth++
		if len(lanes) > e.MaxLaneSpread {
			e.MaxLaneSpread = len(lanes)
		}
		if e.First == nil {
			e.Diverged = true
			ref := f.Ref()
			e.First = &ref
			e.FirstLanes = lanes
		}
		if len(e.Chain) < maxChain {
			e.Chain = append(e.Chain, ChainLink{
				Ref:    f.Ref(),
				Lanes:  lanes,
				Golden: laneString(g),
				Faulty: laneString(f),
			})
		}
		classifyUses(f.Instr, e)
	}
	// A length mismatch with no instruction mismatch means one run ended
	// early (crash, hang, or an early return) — also a control event.
	if !e.ControlDivergence && golden.Len() != faulty.Len() {
		e.ControlDivergence = true
		if faulty.Len() > aligned {
			ref := faulty.At(aligned).Ref()
			e.ControlDivergedAt = &ref
		}
	}
	if faulty.Len() > aligned {
		e.PostDivergence = uint64(faulty.Len() - aligned)
	}
	if e.ControlDivergence {
		e.Diverged = true
		if e.First == nil {
			e.First = e.ControlDivergedAt
		}
	}
	return e
}

// diffLanes returns the lane indices at which the two payloads differ.
func diffLanes(g, f []uint64) []int {
	n := len(g)
	if len(f) < n {
		n = len(f)
	}
	var lanes []int
	for i := 0; i < n; i++ {
		if g[i] != f[i] {
			lanes = append(lanes, i)
		}
	}
	return lanes
}

// classifyUses folds the static uses of a corrupted instruction into the
// explanation's crossing flags. The cases mirror passes.classifyUse so
// the dynamic classification is comparable with the static Figure 2
// taxonomy; the select condition is additionally treated as control
// (dynamically a corrupted condition steers lane selection even though
// the static slicer does not walk it).
func classifyUses(in *ir.Instr, e *Explanation) {
	for _, u := range in.Uses() {
		switch u.User.Op {
		case ir.OpCondBr:
			e.CrossedControl = true
		case ir.OpSelect:
			if u.Index == 0 {
				e.CrossedControl = true
			}
		case ir.OpGEP:
			e.CrossedAddress = true
		case ir.OpLoad:
			if u.Index == 0 {
				e.CrossedAddress = true
			}
		case ir.OpStore:
			if u.Index == 1 {
				e.CrossedAddress = true
			}
		case ir.OpCall:
			name := u.User.Callee.Nam
			if mi, ok := isa.MaskedOpInfo(name); ok {
				switch {
				case u.Index == mi.MaskOperand:
					e.CrossedControl = true
				case u.Index == 0:
					e.CrossedAddress = true // base pointer
				case u.Index == 1 && mi.MaskOperand == 2:
					e.CrossedAddress = true // gather/scatter index vector
				}
			}
		}
	}
}

// laneString formats an entry's value with its static result type.
func laneString(e Entry) string {
	if len(e.Bits) == 0 {
		return "void"
	}
	return interp.Value{Ty: e.Instr.Ty, Bits: e.Bits}.String()
}
