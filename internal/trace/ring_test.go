package trace

import (
	"testing"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

func v32(lanes ...uint64) interp.Value {
	if len(lanes) == 1 {
		return interp.Value{Ty: ir.I32, Bits: lanes}
	}
	return interp.Value{Ty: ir.Vec(ir.I32, len(lanes)), Bits: lanes}
}

func TestRingBounded(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.I32}, []string{"x"})
	m.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	add := b.Add(f.Params[0], ir.ConstInt(ir.I32, 1), "a")
	b.Ret(add)

	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Retire(add, uint64(i+1), v32(uint64(i)))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	if r.Retired() != 10 {
		t.Fatalf("Retired = %d, want 10", r.Retired())
	}
	// Oldest retained entry is the 7th retirement (dyn 7, value 6).
	for i := 0; i < 4; i++ {
		e := r.At(i)
		if e.Dyn != uint64(7+i) || e.Bits[0] != uint64(6+i) {
			t.Fatalf("At(%d) = dyn %d bits %v, want dyn %d bits [%d]",
				i, e.Dyn, e.Bits, 7+i, 6+i)
		}
	}
}

func TestRingCopiesBits(t *testing.T) {
	m := ir.NewModule("t")
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.I32}, []string{"x"})
	m.AddFunc(f)
	b := ir.NewBuilder(f.NewBlock("entry"))
	add := b.Add(f.Params[0], ir.ConstInt(ir.I32, 1), "a")
	b.Ret(add)

	r := NewRing(8)
	val := v32(1, 2, 3, 4)
	r.Retire(add, 1, val)
	val.Bits[0] = 99 // the interpreter may reuse the backing array
	if got := r.At(0).Bits[0]; got != 1 {
		t.Fatalf("ring aliased the value's bits: got %d, want 1", got)
	}
}

func TestRingDefaultCap(t *testing.T) {
	if NewRing(0).Cap() != DefaultCap {
		t.Fatalf("zero capacity should select DefaultCap")
	}
	if NewRing(-5).Cap() != DefaultCap {
		t.Fatalf("negative capacity should select DefaultCap")
	}
}
