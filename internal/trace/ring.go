// Package trace is the fault-propagation observability layer: a bounded
// execution-trace recorder for the interpreter (Ring), a divergence
// engine that compares a golden and a faulty recording in lockstep to
// explain each experiment outcome (Analyze/Explanation — first
// divergence, propagation depth and lane spread, control/address slice
// crossings, time to detection), and the per-study aggregation with its
// per-site SDC blame ranking (Profile).
package trace

import (
	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// A Ring is an interp.Recorder.
var _ interp.Recorder = (*Ring)(nil)

// DefaultCap bounds auto-sized rings, in entries. At ~3 words plus the
// lane payload per entry this caps a ring in the low tens of MB while
// covering every built-in benchmark's default-scale run without drops.
const DefaultCap = 1 << 20

// Entry is one retired instruction: the static instruction, the dynamic
// instruction index at which it retired, and a snapshot of its per-lane
// result bits (nil for void results such as stores).
type Entry struct {
	Instr *ir.Instr
	Dyn   uint64
	Bits  []uint64
}

// Ref locates the entry as a JSON-safe instruction reference.
func (e Entry) Ref() InstrRef {
	r := InstrRef{Instr: e.Instr.String(), Dyn: e.Dyn}
	if b := e.Instr.Parent; b != nil {
		r.Block = b.Nam
		if b.Func != nil {
			r.Func = b.Func.Nam
		}
	}
	return r
}

// Ring is a bounded execution-trace recorder implementing
// interp.Recorder. It grows to at most its capacity and then evicts the
// oldest entries (counted by Dropped), bounding memory for arbitrarily
// long runs while keeping the most recent window for crash forensics.
// A Ring belongs to one interpreter instance and is not safe for
// concurrent use.
type Ring struct {
	buf     []Entry
	cap     int
	start   int // index of the logically first entry once full
	dropped uint64
}

// NewRing returns a ring holding at most capacity entries (<=0 selects
// DefaultCap). Storage grows on demand rather than being preallocated.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Ring{cap: capacity}
}

// Retire implements interp.Recorder: it appends the retired instruction,
// copying the value's lane payload (the interpreter may reuse it).
func (r *Ring) Retire(in *ir.Instr, dyn uint64, v interp.Value) {
	var bits []uint64
	if len(v.Bits) > 0 {
		bits = make([]uint64, len(v.Bits))
		copy(bits, v.Bits)
	}
	e := Entry{Instr: in, Dyn: dyn, Bits: bits}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.start] = e
	r.start++
	if r.start == len(r.buf) {
		r.start = 0
	}
	r.dropped++
}

// Len returns the number of retained entries.
func (r *Ring) Len() int { return len(r.buf) }

// At returns the i-th retained entry in retirement order (0 = oldest
// retained).
func (r *Ring) At(i int) Entry { return r.buf[(r.start+i)%len(r.buf)] }

// Dropped returns how many old entries were evicted to stay within
// capacity.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Cap returns the ring's capacity in entries.
func (r *Ring) Cap() int { return r.cap }

// Retired returns the total number of instructions ever recorded,
// including evicted ones.
func (r *Ring) Retired() uint64 { return uint64(len(r.buf)) + r.dropped }
