package trace

import (
	"sync"
	"testing"

	"vulfi/internal/telemetry"
)

// TestConcurrentProfile exercises the study-time concurrency shape under
// the race detector: each worker owns a pair of rings (one experiment),
// analyzes them, and folds the explanation into one shared Profile while
// another goroutine snapshots summaries.
func TestConcurrentProfile(t *testing.T) {
	fx := buildDivergeFixture(t)
	reg := telemetry.NewRegistry()
	p := NewProfile(reg)

	const workers = 8
	const experiments = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < experiments; i++ {
				g, f := NewRing(64), NewRing(64)
				g.Retire(fx.a, 1, v32(5))
				if i%2 == 0 {
					f.Retire(fx.a, 1, v32(uint64(6+w)))
				} else {
					f.Retire(fx.a, 1, v32(5))
				}
				g.Retire(fx.c, 2, v32(1))
				f.Retire(fx.c, 2, v32(1))
				e := Analyze(g, f)
				e.Outcome = "SDC"
				e.FaultSite = &SiteRef{SiteID: w, Func: "f", Block: "entry",
					Instr: "%a = add i32 %x, 1"}
				if i%3 == 0 {
					e.NoteDetection(10)
				}
				p.Add(e)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = p.Summary()
		}
	}()
	wg.Wait()
	<-done

	s := p.Summary()
	if s.Traced != workers*experiments {
		t.Fatalf("Traced = %d, want %d", s.Traced, workers*experiments)
	}
	if s.Diverged != workers*experiments/2 {
		t.Fatalf("Diverged = %d, want %d", s.Diverged, workers*experiments/2)
	}
	if len(s.Blame) != 1 {
		t.Fatalf("blame sites = %d, want 1 (same static site)", len(s.Blame))
	}
	if s.Blame[0].SDC != workers*experiments {
		t.Fatalf("blame SDC = %d, want %d", s.Blame[0].SDC, workers*experiments)
	}
}

// TestConcurrentRings checks that independent rings retiring in parallel
// share no state (each experiment's interpreter owns its ring).
func TestConcurrentRings(t *testing.T) {
	fx := buildDivergeFixture(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRing(16)
			for i := 0; i < 100; i++ {
				r.Retire(fx.a, uint64(i+1), v32(uint64(w*1000+i)))
			}
			if r.Retired() != 100 || r.Len() != 16 {
				t.Errorf("worker %d: retired=%d len=%d", w, r.Retired(), r.Len())
			}
			if last := r.At(r.Len() - 1); last.Bits[0] != uint64(w*1000+99) {
				t.Errorf("worker %d: tail entry %v", w, last.Bits)
			}
		}(w)
	}
	wg.Wait()
}
