package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestProgressLineMode: a non-terminal writer must get whole lines (no
// carriage-return repainting), roughly one per 10% plus the final one.
func TestProgressLineMode(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "VectorCopy/AVX/control", 50)
	for i := 0; i < 50; i++ {
		out := "Benign"
		switch {
		case i%10 == 0:
			out = "SDC"
		case i%7 == 0:
			out = "Crash"
		}
		p.Observe(out, i%25 == 0)
	}
	p.Finish()

	out := buf.String()
	if strings.Contains(out, "\r") {
		t.Fatalf("line mode used carriage returns:\n%q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 || len(lines) > 15 {
		t.Fatalf("expected throttled line output, got %d lines:\n%s", len(lines), out)
	}
	last := lines[len(lines)-1]
	for _, want := range []string{"VectorCopy/AVX/control", "50/50",
		"SDC 5", "Crash 7", "Benign 38", "exp/s"} {
		if !strings.Contains(last, want) {
			t.Errorf("final line missing %q: %q", want, last)
		}
	}
}

// TestProgressFinishIdempotent: Finish after a final Observe must not
// duplicate the summary line.
func TestProgressFinishIdempotent(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "cell", 2)
	p.Observe("Benign", false)
	p.Observe("Benign", false)
	n := strings.Count(buf.String(), "2/2")
	p.Finish()
	p.Finish()
	if got := strings.Count(buf.String(), "2/2"); got != n || n != 1 {
		t.Fatalf("final line printed %d times (pre-Finish %d)", got, n)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Observe("SDC", true)
	p.Finish()
}
