package telemetry

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// promName sanitizes an instrument name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], mapping '.' and '-' (our namespace separators)
// to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4): counters as *_total, gauges as-is, and histograms as
// classic cumulative-bucket histograms in seconds. Output is sorted by
// name, so identical registry states expose byte-identical text.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	return s.WriteProm(w)
}

// WriteProm writes a previously captured snapshot (see Registry.WriteProm).
func (s Snapshot) WriteProm(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n",
			n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHist(w, promName(name)+"_seconds",
			s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, n string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
		return err
	}
	// Emit cumulative buckets up to the last non-empty one, then +Inf.
	last := -1
	for b := 0; b < HistBuckets; b++ {
		if h.Buckets[b] > 0 {
			last = b
		}
	}
	var cum uint64
	for b := 0; b <= last; b++ {
		cum += h.Buckets[b]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			n, formatSeconds(BucketUpper(b)), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		n, h.Count, n, formatSeconds(h.Sum), n, h.Count)
	return err
}

// formatSeconds renders a duration as decimal seconds without float
// round-off (durations are integer nanoseconds).
func formatSeconds(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%09d", ns/1e9, ns%1e9)
}
