package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// PromHandler serves the registry in Prometheus text exposition format.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// DebugVars returns a compact expvar-friendly view of the registry:
// counters and gauges verbatim, histograms summarized as count/sum and
// deterministic p50/p95/p99 estimates.
func (r *Registry) DebugVars() any {
	s := r.Snapshot()
	hists := make(map[string]map[string]any, len(s.Histograms))
	for name, h := range s.Histograms {
		hists[name] = map[string]any{
			"count":  h.Count,
			"sum_ns": int64(h.Sum),
			"min_ns": int64(h.Min),
			"max_ns": int64(h.Max),
			"p50_ns": int64(h.Quantile(0.50)),
			"p95_ns": int64(h.Quantile(0.95)),
			"p99_ns": int64(h.Quantile(0.99)),
		}
	}
	return map[string]any{
		"counters":   s.Counters,
		"gauges":     s.Gauges,
		"histograms": hists,
	}
}

var expvarPublished sync.Map

// PublishExpvar exposes the registry's DebugVars under the given expvar
// name. Safe to call repeatedly; only the first call per name publishes
// (expvar.Publish panics on duplicates).
func PublishExpvar(name string, r *Registry) {
	if _, dup := expvarPublished.LoadOrStore(name, true); dup {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.DebugVars() }))
}

// Handler builds the full observability mux for a registry: /metrics
// (Prometheus text), /debug/vars (expvar JSON, including the registry
// bridge), and the net/http/pprof profiling endpoints.
func Handler(r *Registry) http.Handler {
	PublishExpvar("vulfi", r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", PromHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":6060") and
// returns the running server plus its bound address (useful with
// ":0"). The server runs until Close/Shutdown.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
