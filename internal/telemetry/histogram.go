package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of every duration histogram.
// Bucket 0 holds sub-microsecond observations; bucket b (b ≥ 1) holds
// durations whose whole-microsecond value has bit-length b, i.e. the
// range (2^(b-1)-1, 2^b-1] µs. The last bucket absorbs everything
// longer (≈ 2^38 µs ≈ 3.2 days), so no observation is ever dropped.
const HistBuckets = 40

// histShards spreads concurrent Observe calls over independent atomic
// count arrays to avoid cache-line contention on hot histograms.
const histShards = 8

type histShard struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Int64
	// pad the shard to its own cache lines so neighboring shards do not
	// false-share.
	_ [64]byte
}

// Histogram is a lock-free duration histogram with fixed logarithmic
// buckets. Because bucket boundaries are fixed at compile time, two
// histograms that observed the same multiset of durations snapshot
// identically, independent of observation order or concurrency.
type Histogram struct {
	shards [histShards]histShard
	minNS  atomic.Int64
	maxNS  atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minNS.Store(math.MaxInt64)
	return h
}

// bucketOf quantizes a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	us := uint64(d) / uint64(time.Microsecond)
	b := bits.Len64(us) // 0 when d < 1µs
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i — the value
// quantile estimation reports for samples landing in that bucket.
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration((uint64(1)<<i)-1) * time.Microsecond
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	// Shard selection hashes the observed value: cheap, deterministic,
	// and spreads distinct durations across shards. Snapshot sums all
	// shards, so placement never affects results. The shift keeps the
	// top log2(histShards) bits of the mix.
	s := &h.shards[(uint64(d)*0x9E3779B97F4A7C15)>>(64-3)]
	s.counts[bucketOf(d)].Add(1)
	s.sum.Add(int64(d))
	for {
		cur := h.minNS.Load()
		if int64(d) >= cur || h.minNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Since observes the time elapsed from t0. Designed for
// defer-at-function-entry: defer h.Since(time.Now()).
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0)) }

// HistogramSnapshot is a consistent-enough copy of one histogram (each
// bucket is read atomically; a snapshot taken while observers run may
// split a concurrent observation across Count and Sum, but quiescent
// snapshots are exact).
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"` // zero when Count == 0
	Max   time.Duration `json:"max_ns"` // zero when Count == 0
	// Buckets are the per-bucket observation counts (see HistBuckets for
	// the quantization scheme).
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Snapshot sums the shards into one snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < HistBuckets; b++ {
			s.Buckets[b] += sh.counts[b].Load()
		}
		s.Sum += time.Duration(sh.sum.Load())
	}
	for b := 0; b < HistBuckets; b++ {
		s.Count += s.Buckets[b]
	}
	if s.Count > 0 {
		s.Min = time.Duration(h.minNS.Load())
		s.Max = time.Duration(h.maxNS.Load())
	}
	return s
}

// QuantileEmpty is the sentinel Quantile returns for a histogram with
// no observations. It is negative — a value no real observation can
// produce (Observe clamps negatives to zero) — so "no data" is never
// confusable with "everything was sub-microsecond" (bucket 0's upper
// bound). Exporters pass it through verbatim: a -1 ns p50 in
// /debug/vars means the histogram is empty.
const QuantileEmpty = time.Duration(-1)

// Quantile estimates the q-quantile as the upper bound of the bucket
// containing the ceil(q·Count)-th observation. q is clamped into (0, 1]:
// q ≤ 0 degrades to the minimum bucket, q > 1 to the maximum.
// Deterministic given the same observations; an empty histogram returns
// the documented QuantileEmpty sentinel rather than a fabricated zero.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return QuantileEmpty
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for b := 0; b < HistBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			return BucketUpper(b)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Mean returns the exact average of the observed durations.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
