package telemetry

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != QuantileEmpty {
			t.Fatalf("Quantile(%v) on empty = %v, want QuantileEmpty", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("Mean on empty = %v", s.Mean())
	}
}

// TestHistogramQuantileTable pins the empty-histogram sentinel contract
// alongside the degenerate shapes that used to be confusable with it:
// a single sample and a pile of identical samples must report their
// bucket's upper bound at every quantile, while an empty histogram must
// report QuantileEmpty — a negative value no real observation produces.
func TestHistogramQuantileTable(t *testing.T) {
	cases := []struct {
		name string
		obs  []time.Duration
		want time.Duration
	}{
		{"empty", nil, QuantileEmpty},
		{"single-sample", []time.Duration{5 * time.Microsecond}, 7 * time.Microsecond},
		{"all-equal", []time.Duration{
			2 * time.Microsecond, 2 * time.Microsecond, 2 * time.Microsecond,
			2 * time.Microsecond, 2 * time.Microsecond,
		}, 3 * time.Microsecond},
		{"all-zero", []time.Duration{0, 0, 0}, time.Microsecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram()
			for _, d := range c.obs {
				h.Observe(d)
			}
			s := h.Snapshot()
			for _, q := range []float64{0, 0.01, 0.5, 0.95, 0.99, 1} {
				if got := s.Quantile(q); got != c.want {
					t.Fatalf("Quantile(%v) = %v, want %v", q, got, c.want)
				}
			}
		})
	}
	if QuantileEmpty >= 0 {
		t.Fatal("QuantileEmpty must be negative so no real observation can collide with it")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram()
	h.Observe(5 * time.Microsecond) // bucket 3: (3µs, 7µs]
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 5*time.Microsecond || s.Max != 5*time.Microsecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Sum != 5*time.Microsecond {
		t.Fatalf("sum = %v", s.Sum)
	}
	// Every quantile of a single sample is its bucket's upper bound.
	want := 7 * time.Microsecond
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-time.Second, 0},          // clamps to 0 in Observe; bucketOf(0)=0
		{999 * time.Nanosecond, 0}, // sub-microsecond
		{time.Microsecond, 1},      // us=1, bit-length 1
		{1999 * time.Nanosecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{7 * time.Microsecond, 3},
		{8 * time.Microsecond, 4},
		{time.Hour, 32}, // 3.6e9 µs has bit length 32
		{1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0
		}
		if got := bucketOf(d); got != c.bucket {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.bucket)
		}
	}
	// Upper bounds must be inclusive: an observation exactly at a bucket
	// boundary quantizes to a quantile equal to itself when the bound is
	// of the form 2^b-1 µs.
	h := newHistogram()
	h.Observe(3 * time.Microsecond) // upper bound of bucket 2 is exactly 3µs
	s := h.Snapshot()
	if got := s.Quantile(1); got != 3*time.Microsecond {
		t.Fatalf("boundary quantile = %v, want 3µs", got)
	}
}

func TestHistogramQuantileRanks(t *testing.T) {
	h := newHistogram()
	// 90 fast observations and 10 slow ones: p50 lands in the fast
	// bucket, p95/p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond) // bucket 2, upper 3µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond) // bucket 7, upper 127µs
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.50); got != 3*time.Microsecond {
		t.Fatalf("p50 = %v, want 3µs", got)
	}
	if got := s.Quantile(0.90); got != 3*time.Microsecond {
		t.Fatalf("p90 = %v, want 3µs (rank 90 is the last fast sample)", got)
	}
	if got := s.Quantile(0.95); got != 127*time.Microsecond {
		t.Fatalf("p95 = %v, want 127µs", got)
	}
	if got := s.Quantile(0.99); got != 127*time.Microsecond {
		t.Fatalf("p99 = %v, want 127µs", got)
	}
	wantMean := (90*2*time.Microsecond + 10*100*time.Microsecond) / 100
	if got := s.Mean(); got != wantMean {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
}

// TestHistogramOrderIndependence: fixed quantization means the snapshot
// is a pure function of the observed multiset.
func TestHistogramOrderIndependence(t *testing.T) {
	ds := []time.Duration{
		time.Nanosecond, time.Microsecond, 5 * time.Microsecond,
		33 * time.Microsecond, time.Millisecond, 17 * time.Millisecond,
		time.Second,
	}
	a, b := newHistogram(), newHistogram()
	for _, d := range ds {
		a.Observe(d)
	}
	for i := len(ds) - 1; i >= 0; i-- {
		b.Observe(ds[i])
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a.Snapshot(), b.Snapshot())
	}
}
