package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEventWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.Emit(Event{Type: "study", Name: "Blackscholes/AVX/control",
		Fields: map[string]any{"seed": 1, "campaigns": 2}})
	ew.Emit(Event{Type: "experiment", DurNS: 1500,
		Fields: map[string]any{"outcome": "SDC"}})
	ew.Emit(Event{Type: "trace"})
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	if ew.Count() != 3 {
		t.Fatalf("count = %d", ew.Count())
	}

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines int
	for sc.Scan() {
		lines++
		var e struct {
			Type   string         `json:"type"`
			Time   time.Time      `json:"time"`
			Fields map[string]any `json:"fields"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if e.Type == "" {
			t.Fatalf("line %d missing type", lines)
		}
		if e.Time.IsZero() {
			t.Fatalf("line %d not timestamped", lines)
		}
	}
	if lines != 3 {
		t.Fatalf("lines = %d, want 3", lines)
	}
}

func TestEventWriterNilSafe(t *testing.T) {
	var ew *EventWriter
	ew.Emit(Event{Type: "x"}) // must not panic
	if ew.Count() != 0 || ew.Err() != nil || ew.Flush() != nil || ew.Close() != nil {
		t.Fatal("nil EventWriter is not a clean no-op")
	}
}

func TestEventWriterPreservesExplicitTime(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ts := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	ew.Emit(Event{Type: "study", Time: ts})
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if !e.Time.Equal(ts) {
		t.Fatalf("time = %v, want %v", e.Time, ts)
	}
}
