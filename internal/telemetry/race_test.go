package telemetry

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from GOMAXPROCS goroutines; run under -race this doubles as the data
// race check, and the totals check catches lost updates either way.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave creation and use: lookups must be safe too.
			c := r.Counter("hammer.count")
			g := r.Gauge("hammer.gauge")
			h := r.Histogram("hammer.hist")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
				if i%64 == 0 {
					// Snapshots must be safe concurrently with writers.
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * perWorker)
	if got := r.Counter("hammer.count").Value(); got != total {
		t.Fatalf("counter lost updates: %d, want %d", got, total)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != int64(total) {
		t.Fatalf("gauge lost updates: %d, want %d", got, total)
	}
	s := r.Histogram("hammer.hist").Snapshot()
	if s.Count != total {
		t.Fatalf("histogram lost observations: %d, want %d", s.Count, total)
	}
	if s.Min != 0 {
		t.Fatalf("min = %v, want 0", s.Min)
	}
	wantMax := time.Duration(workers*perWorker-1) * time.Microsecond
	if s.Max != wantMax {
		t.Fatalf("max = %v, want %v", s.Max, wantMax)
	}
}

// TestConcurrentEventWriter checks the JSONL writer under concurrent
// emitters: every event lands and the count matches.
func TestConcurrentEventWriter(t *testing.T) {
	var sink lockedBuffer
	ew := NewEventWriter(&sink)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ew.Emit(Event{Type: "experiment", Fields: map[string]any{"w": w, "i": i}})
			}
		}(w)
	}
	wg.Wait()
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := ew.Count(); got != uint64(workers*perWorker) {
		t.Fatalf("event count = %d, want %d", got, workers*perWorker)
	}
}

// lockedBuffer is a minimal concurrent-safe writer (the EventWriter
// serializes, but the buffer must not race with test readers).
type lockedBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}
