package telemetry

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from GOMAXPROCS goroutines; run under -race this doubles as the data
// race check, and the totals check catches lost updates either way.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave creation and use: lookups must be safe too.
			c := r.Counter("hammer.count")
			g := r.Gauge("hammer.gauge")
			h := r.Histogram("hammer.hist")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
				if i%64 == 0 {
					// Snapshots must be safe concurrently with writers.
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * perWorker)
	if got := r.Counter("hammer.count").Value(); got != total {
		t.Fatalf("counter lost updates: %d, want %d", got, total)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != int64(total) {
		t.Fatalf("gauge lost updates: %d, want %d", got, total)
	}
	s := r.Histogram("hammer.hist").Snapshot()
	if s.Count != total {
		t.Fatalf("histogram lost observations: %d, want %d", s.Count, total)
	}
	if s.Min != 0 {
		t.Fatalf("min = %v, want 0", s.Min)
	}
	wantMax := time.Duration(workers*perWorker-1) * time.Microsecond
	if s.Max != wantMax {
		t.Fatalf("max = %v, want %v", s.Max, wantMax)
	}
}

// TestConcurrentEventWriter checks the JSONL sink under concurrent
// emitters. Run with -race it doubles as the data-race check; the
// structural checks hold either way: every line of the output must
// parse as one complete JSON event, and every (worker, i) payload must
// land exactly once — i.e. no torn, interleaved, duplicated, or
// dropped lines, the contract that makes a study log greppable while
// workers are still writing it.
func TestConcurrentEventWriter(t *testing.T) {
	var sink lockedBuffer
	ew := NewEventWriter(&sink)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ew.Emit(Event{Type: "experiment", Fields: map[string]any{"w": w, "i": i}})
			}
		}(w)
	}
	wg.Wait()
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	total := workers * perWorker
	if got := ew.Count(); got != uint64(total) {
		t.Fatalf("event count = %d, want %d", got, total)
	}

	lines := bytes.Split(bytes.TrimRight(sink.buf, "\n"), []byte("\n"))
	if len(lines) != total {
		t.Fatalf("sink holds %d lines, want %d", len(lines), total)
	}
	seen := make(map[[2]int]bool, total)
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("torn JSONL line %q: %v", line, err)
		}
		if e.Type != "experiment" || e.Time.IsZero() {
			t.Fatalf("malformed event on line %q", line)
		}
		w, okW := e.Fields["w"].(float64)
		i, okI := e.Fields["i"].(float64)
		if !okW || !okI {
			t.Fatalf("event lost its payload: %q", line)
		}
		key := [2]int{int(w), int(i)}
		if seen[key] {
			t.Fatalf("event (w=%d, i=%d) written twice", key[0], key[1])
		}
		seen[key] = true
	}
	if len(seen) != total {
		t.Fatalf("%d distinct (worker, i) events, want %d", len(seen), total)
	}
}

// lockedBuffer is a minimal concurrent-safe writer (the EventWriter
// serializes, but the buffer must not race with test readers).
type lockedBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}
