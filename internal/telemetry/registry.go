// Package telemetry is the campaign observability substrate: atomic
// counters and gauges, lock-free-sharded duration histograms with fixed
// bucket quantization, a structured JSONL event writer, Prometheus/expvar
// exposition, and a terminal progress reporter.
//
// The package depends only on the standard library so every layer of the
// system (interpreter, codegen, passes, campaign, commands) can record
// into it without import cycles. A process-wide default registry serves
// commands and package-level instrumentation; studies that must not
// interleave (e.g. concurrent campaigns) get their own registry via
// NewRegistry.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry names and owns a set of instruments. Instrument lookups
// get-or-create; the returned pointers are stable and safe for
// concurrent use without further synchronization.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Package-level
// instrumentation (codegen, passes) and the commands record here;
// campaigns use it unless a per-study registry is configured.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Two registries that observed the same values produce equal snapshots
// regardless of observation order or concurrency (histogram buckets are
// fixed, so quantiles are deterministic too).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// sortedKeys returns the map's keys in lexical order (deterministic
// exposition).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
