package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured telemetry record: a completed span (DurNS > 0)
// or a point event. Events serialize as one JSON object per line
// (JSONL), so a study log is greppable and jq-able:
//
//	jq 'select(.type=="experiment") | .fields.outcome' out.jsonl
//
// The type doubles as the shared event schema between the campaign
// layer (study/campaign/experiment spans) and the interpreter's Tracer
// (per-instruction trace events), so one sink can absorb both.
type Event struct {
	// Type names the event class: "study", "campaign", "experiment",
	// "trace", "section", ...
	Type string `json:"type"`
	// Name identifies the subject (e.g. a study cell "Blackscholes/AVX/control").
	Name string `json:"name,omitempty"`
	// Time is the wall-clock emission time in RFC3339Nano; Emit stamps
	// it when zero.
	Time time.Time `json:"time"`
	// DurNS is the span duration in nanoseconds (0 for point events).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Fields carries event-specific payload; map keys serialize sorted,
	// so identical payloads produce identical lines.
	Fields map[string]any `json:"fields,omitempty"`
}

// EventWriter serializes events to an io.Writer as JSONL, safe for
// concurrent emitters. A nil *EventWriter is a valid no-op sink, so
// call sites need no nil checks.
type EventWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	w   io.Writer
	n   uint64
	err error
}

// NewEventWriter wraps w (buffered; call Flush or Close when done).
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{bw: bufio.NewWriter(w), w: w}
}

// Emit writes one event as a single JSON line, stamping Time if unset.
// Emission errors are sticky and reported by Err; Emit itself never
// fails loudly so instrumentation cannot break a campaign.
func (ew *EventWriter) Emit(e Event) {
	if ew == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	line, err := json.Marshal(e)
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if err != nil {
		if ew.err == nil {
			ew.err = err
		}
		return
	}
	if ew.err != nil {
		return
	}
	if _, err := ew.bw.Write(append(line, '\n')); err != nil {
		ew.err = err
		return
	}
	ew.n++
}

// Count returns the number of events written so far.
func (ew *EventWriter) Count() uint64 {
	if ew == nil {
		return 0
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.n
}

// Err returns the first emission error, if any.
func (ew *EventWriter) Err() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.err
}

// Flush drains the internal buffer to the underlying writer.
func (ew *EventWriter) Flush() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if err := ew.bw.Flush(); err != nil && ew.err == nil {
		ew.err = err
	}
	return ew.err
}

// Close flushes and, when the underlying writer is an io.Closer,
// closes it.
func (ew *EventWriter) Close() error {
	if ew == nil {
		return nil
	}
	err := ew.Flush()
	if c, ok := ew.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
