package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObservabilityHandler(t *testing.T) {
	r := NewRegistry()
	populate(r)
	h := Handler(r)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	rec := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "campaign_experiments_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = get("/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["vulfi"]; !ok {
		t.Fatalf("/debug/vars missing registry bridge: %v", vars)
	}

	rec = get("/debug/pprof/cmdline")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", rec.Code)
	}
}
