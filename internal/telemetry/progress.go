package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Progress renders live campaign progress: completed/total experiments,
// throughput, an ETA for the current cell, and running outcome tallies.
// On a terminal it repaints one status line in place; on a pipe or file
// it degrades to occasional full lines, so logs stay readable.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	tty   bool

	start       time.Time
	done        int
	sdc         int
	benign      int
	crash       int
	detected    int
	lastRender  time.Time
	lastPercent int
	finalShown  bool // the done==total line has already been printed
}

// NewProgress creates a reporter for total experiments labelled label
// (typically the study-cell name). Rendering starts with the first
// Observe call.
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{
		w: w, label: label, total: total,
		tty: isTerminal(w), start: time.Now(), lastPercent: -1,
	}
}

// isTerminal reports whether w is an interactive terminal (a character
// device). Anything else — pipes, files, buffers — gets line output.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// Observe records one completed experiment. outcome is the paper's
// outcome name ("SDC", "Benign", "Crash"); detected marks a fired
// detector. Safe for concurrent use from worker goroutines.
func (p *Progress) Observe(outcome string, detected bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	switch outcome {
	case "SDC":
		p.sdc++
	case "Benign":
		p.benign++
	case "Crash":
		p.crash++
	}
	if detected {
		p.detected++
	}
	now := time.Now()
	if p.tty {
		// Repaint at most every 100ms, plus always on the last one.
		if p.done < p.total && now.Sub(p.lastRender) < 100*time.Millisecond {
			return
		}
	} else {
		// Line mode: a line every 10% of the cell and at completion.
		pct := -1
		if p.total > 0 {
			pct = p.done * 10 / p.total
		}
		if p.done < p.total && pct == p.lastPercent {
			return
		}
		p.lastPercent = pct
	}
	p.lastRender = now
	p.render(now)
}

func (p *Progress) render(now time.Time) {
	line := p.line(now)
	if p.done >= p.total {
		p.finalShown = true
	}
	if p.tty && p.done < p.total {
		fmt.Fprintf(p.w, "\r\x1b[K%s", line)
	} else if p.tty {
		fmt.Fprintf(p.w, "\r\x1b[K%s\n", line)
	} else {
		fmt.Fprintln(p.w, line)
	}
}

func (p *Progress) line(now time.Time) string {
	elapsed := now.Sub(p.start)
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %6d/%-6d", p.label, p.done, p.total)
	if p.total > 0 {
		fmt.Fprintf(&b, " %5.1f%%", 100*float64(p.done)/float64(p.total))
	}
	if elapsed > 0 && p.done > 0 {
		rate := float64(p.done) / elapsed.Seconds()
		fmt.Fprintf(&b, "  %7.1f exp/s", rate)
		if p.done < p.total {
			eta := time.Duration(float64(p.total-p.done)/rate) * time.Second
			fmt.Fprintf(&b, "  ETA %-8s", eta.Round(time.Second))
		} else {
			fmt.Fprintf(&b, "  in %-8s", elapsed.Round(time.Millisecond))
		}
	}
	fmt.Fprintf(&b, "  SDC %d Benign %d Crash %d", p.sdc, p.benign, p.crash)
	if p.detected > 0 {
		fmt.Fprintf(&b, " Detected %d", p.detected)
	}
	return b.String()
}

// Finish paints the final state (once) and, on a terminal, terminates
// the in-place status line. Call when the cell completes; safe even if
// the last Observe already printed the done==total line.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finalShown {
		return
	}
	p.finalShown = true
	line := p.line(time.Now())
	if p.tty {
		fmt.Fprintf(p.w, "\r\x1b[K%s\n", line)
	} else {
		fmt.Fprintln(p.w, line)
	}
}
