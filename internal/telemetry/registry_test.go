package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("counter lookup is not stable")
	}
	c1.Inc()
	c1.Add(4)
	if c2.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c2.Value())
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if r.Gauge("g").Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram lookup is not stable")
	}
}

// populate drives a fixed workload into a registry.
func populate(r *Registry) {
	r.Counter("campaign.experiments").Add(42)
	r.Counter("interp.traps").Add(3)
	r.Gauge("workers").Set(8)
	h := r.Histogram("campaign.golden")
	for i := 0; i < 10; i++ {
		h.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
}

// TestSnapshotDeterminism: identical workloads produce byte-identical
// Prometheus exposition, regardless of which registry instance ran them.
func TestSnapshotDeterminism(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a)
	populate(b)
	var wa, wb bytes.Buffer
	if err := a.WriteProm(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteProm(&wb); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatalf("exposition differs:\n%s\n---\n%s", wa.String(), wb.String())
	}
	if wa.Len() == 0 {
		t.Fatal("empty exposition")
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	populate(r)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE campaign_experiments_total counter\ncampaign_experiments_total 42\n",
		"# TYPE interp_traps_total counter\ninterp_traps_total 3\n",
		"# TYPE workers gauge\nworkers 8\n",
		"# TYPE campaign_golden_seconds histogram\n",
		"campaign_golden_seconds_bucket{le=\"+Inf\"} 10\n",
		"campaign_golden_seconds_count 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every line must be a comment or name{...} value.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"campaign.outcome.sdc": "campaign_outcome_sdc",
		"foreach-invariant":    "foreach_invariant",
		"9lives":               "_lives", // leading digit is invalid
		"ok_name:x":            "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDebugVars(t *testing.T) {
	r := NewRegistry()
	populate(r)
	v, ok := r.DebugVars().(map[string]any)
	if !ok {
		t.Fatalf("DebugVars type %T", r.DebugVars())
	}
	counters := v["counters"].(map[string]uint64)
	if counters["campaign.experiments"] != 42 {
		t.Fatalf("counters = %v", counters)
	}
	hists := v["histograms"].(map[string]map[string]any)
	if hists["campaign.golden"]["count"].(uint64) != 10 {
		t.Fatalf("histograms = %v", hists)
	}
}
