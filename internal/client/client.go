// Package client is the typed HTTP client for the vulfid /v1 API —
// the ONLY code in the module that issues raw HTTP against /v1. Both
// `vulfi -remote` and the coordinator's worker dispatch go through it,
// so wire-level concerns live in exactly one place: API-key auth,
// Retry-After backpressure with capped jittered backoff, typed error
// values carrying the HTTP status and the server's message,
// Vulfid-Api-Version drift detection, and SSE stream parsing with
// reconnect.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/atlas"
	"vulfi/internal/obs"
)

// Error is a non-2xx API response: the HTTP status code plus the
// server's {"error": "..."} message, and — for 429 backpressure — the
// parsed Retry-After hint.
type Error struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("vulfid: HTTP %d", e.StatusCode)
	}
	return fmt.Sprintf("vulfid: HTTP %d: %s", e.StatusCode, e.Message)
}

// VersionMismatchError reports a daemon speaking an incompatible major
// version of the /v1 wire schema. Minor drift (1.5 vs 1.6) is
// compatible by construction — the schema only grows — and is surfaced
// once through the notify hook instead.
type VersionMismatchError struct {
	Client, Server string
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("vulfid: API version mismatch: daemon speaks %s, this client %s",
		e.Server, e.Client)
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey sends the key as a Bearer token on every request (and as
// ?key= on SSE streams, where EventSource clients cannot set headers).
func WithAPIKey(key string) Option {
	return func(c *Client) { c.key = key }
}

// WithHTTPClient substitutes the transport (tests, custom timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithNotify receives human-facing advisories — backoff waits, stream
// reconnects, minor version drift. Default: silently dropped.
func WithNotify(f func(format string, args ...any)) Option {
	return func(c *Client) { c.notify = f }
}

// WithMaxBackoff caps the wait between 429 retries (default 30s).
func WithMaxBackoff(d time.Duration) Option {
	return func(c *Client) { c.maxBackoff = d }
}

// Client talks to one vulfid daemon.
type Client struct {
	base       string
	key        string
	hc         *http.Client
	notify     func(format string, args ...any)
	maxBackoff time.Duration
	warnOnce   sync.Once
}

// New builds a client for the daemon at addr. A bare host:port gets
// http:// prepended, trailing slashes are trimmed — the same
// normalization `vulfi -remote` always applied.
func New(addr string, opts ...Option) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	c := &Client{
		base:       base,
		hc:         http.DefaultClient,
		notify:     func(string, ...any) {},
		maxBackoff: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the normalized base URL.
func (c *Client) Base() string { return c.base }

func major(v string) string {
	maj, _, _ := strings.Cut(v, ".")
	return maj
}

// checkVersion inspects the Vulfid-Api-Version header: major drift is
// a hard error, minor drift a one-time advisory, absence (a non-vulfid
// endpoint, or pre-1.1 daemon) is let through for the status check to
// produce a more useful error.
func (c *Client) checkVersion(resp *http.Response) error {
	v := resp.Header.Get("Vulfid-Api-Version")
	if v == "" {
		return nil
	}
	if major(v) != major(api.APIVersion) {
		return &VersionMismatchError{Client: api.APIVersion, Server: v}
	}
	if v != api.APIVersion {
		c.warnOnce.Do(func() {
			c.notify("daemon speaks API %s, this client %s (compatible)", v, api.APIVersion)
		})
	}
	return nil
}

func apiError(resp *http.Response, raw []byte) *Error {
	msg := strings.TrimSpace(string(raw))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		msg = body.Error
	}
	e := &Error{StatusCode: resp.StatusCode, Message: msg}
	// Retry-After is integer seconds (the only form vulfid emits).
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil && n >= 0 {
			e.RetryAfter = time.Duration(n) * time.Second
		}
	}
	return e
}

func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	return req, nil
}

// do issues one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses become *Error; incompatible daemons
// become *VersionMismatchError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := c.checkVersion(resp); err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("vulfid: %s %s: bad response: %w", method, path, err)
		}
	}
	return nil
}

// Submit posts a spec (POST /v1/jobs) and returns the accepted job's
// status. 429 backpressure — a full queue or an exhausted tenant
// quota — is retried automatically: the server's Retry-After is
// honored when present, otherwise an exponential backoff applies, both
// capped by WithMaxBackoff and jittered ±20% so a fleet of clients
// doesn't stampede the daemon in lockstep.
func (c *Client) Submit(ctx context.Context, spec api.Spec) (*api.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	backoff := time.Second
	for {
		var st api.Status
		err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &st)
		if err == nil {
			return &st, nil
		}
		var ae *Error
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
			return nil, err
		}
		delay := ae.RetryAfter
		if delay <= 0 {
			delay = backoff
			backoff *= 2
		}
		if delay > c.maxBackoff {
			delay = c.maxBackoff
		}
		// ±20% jitter, never below 80% of the hinted delay — the server's
		// hint is a floor estimate of when capacity frees up.
		delay += time.Duration(rand.Int63n(int64(delay/5) + 1))
		c.notify("queue full, retrying in %s", delay.Round(time.Millisecond))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Status fetches one job (GET /v1/jobs/{id}).
func (c *Client) Status(ctx context.Context, id string) (*api.Status, error) {
	var st api.Status
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the daemon knows, without results
// (GET /v1/jobs).
func (c *Client) Jobs(ctx context.Context) ([]api.Status, error) {
	var body struct {
		Jobs []api.Status `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// Cancel asks the daemon to stop a job (DELETE /v1/jobs/{id});
// cancellation is cooperative, between experiments.
func (c *Client) Cancel(ctx context.Context, id string) (*api.Status, error) {
	var st api.Status
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Explain fetches a job's propagation profile, or — with index >= 0 —
// deterministically re-runs that single experiment of the job's seed
// schedule with tracing and returns the full explanation
// (GET /v1/jobs/{id}/explain[?index=N]).
func (c *Client) Explain(ctx context.Context, id string, index int) (json.RawMessage, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/explain"
	if index >= 0 {
		path += "?index=" + strconv.Itoa(index)
	}
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, path, nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Profile fetches a finished job's execution profile
// (GET /v1/jobs/{id}/profile).
func (c *Client) Profile(ctx context.Context, id string) (json.RawMessage, error) {
	var body struct {
		HotProfile json.RawMessage `json:"hot_profile"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/profile", nil, &body); err != nil {
		return nil, err
	}
	return body.HotProfile, nil
}

// Timeline fetches a finished job's span timeline
// (GET /v1/jobs/{id}/timeline). Returns nil when the job has no
// timeline (yet).
func (c *Client) Timeline(ctx context.Context, id string) (*obs.Timeline, error) {
	var body struct {
		Timeline *obs.Timeline `json:"timeline"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/timeline", nil, &body); err != nil {
		return nil, err
	}
	return body.Timeline, nil
}

// History fetches the daemon's study-history store (GET /v1/history).
// limit > 0 returns only the newest entries; sites keeps the per-site
// tallies (stripped by default to keep the payload light).
func (c *Client) History(ctx context.Context, limit int, sites bool) ([]atlas.Entry, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if sites {
		q.Set("sites", "1")
	}
	path := "/v1/history"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var body struct {
		Entries []atlas.Entry `json:"entries"`
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &body); err != nil {
		return nil, err
	}
	return body.Entries, nil
}

// Experiments fetches a job's checkpointed (index, seed, result)
// triples, optionally restricted to the half-open index range
// [from, to) (to == 0 means no upper bound) — the coordinator's shard
// harvest (GET /v1/jobs/{id}/experiments).
func (c *Client) Experiments(ctx context.Context, id string, from, to int) ([]api.ExperimentRecord, error) {
	q := url.Values{}
	if from > 0 {
		q.Set("from", strconv.Itoa(from))
	}
	if to > 0 {
		q.Set("to", strconv.Itoa(to))
	}
	path := "/v1/jobs/" + url.PathEscape(id) + "/experiments"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var body api.ExperimentsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &body); err != nil {
		return nil, err
	}
	return body.Experiments, nil
}

// RegisterWorker announces a worker to a coordinator (POST
// /v1/workers). Re-posting the same URL refreshes the heartbeat, so a
// worker's registration loop is one idempotent call on a ticker.
func (c *Client) RegisterWorker(ctx context.Context, reg api.WorkerRegistration) (*api.Worker, error) {
	body, err := json.Marshal(reg)
	if err != nil {
		return nil, err
	}
	var w api.Worker
	if err := c.do(ctx, http.MethodPost, "/v1/workers", body, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// Workers fetches the coordinator's fleet view (GET /v1/workers).
func (c *Client) Workers(ctx context.Context) (*api.WorkersResponse, error) {
	var body api.WorkersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &body); err != nil {
		return nil, err
	}
	return &body, nil
}

// Fleet fetches the coordinator's fleet metrics view (GET /v1/fleet):
// per-worker harvest throughput and lag, plus the reassignment,
// worker-loss and stall counters.
func (c *Client) Fleet(ctx context.Context) (*api.FleetResponse, error) {
	var body api.FleetResponse
	if err := c.do(ctx, http.MethodGet, "/v1/fleet", nil, &body); err != nil {
		return nil, err
	}
	return &body, nil
}

// errTailDone is the sentinel an Events callback returns to end the
// stream cleanly.
var errTailDone = errors.New("client: tail done")

// Events follows the job's SSE stream (GET /v1/jobs/{id}/events),
// invoking fn for every event until the stream ends (nil), fn returns
// an error (returned verbatim, except errTailDone → nil), or the
// transport fails. Keep-alive comments are skipped.
func (c *Client) Events(ctx context.Context, id string, fn func(event string, data json.RawMessage) error) error {
	req, err := c.newRequest(ctx, http.MethodGet,
		"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := c.checkVersion(resp); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return apiError(resp, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var eventType string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if err := fn(eventType, json.RawMessage(data)); err != nil {
				if errors.Is(err, errTailDone) {
					return nil
				}
				return err
			}
		}
	}
	return sc.Err()
}

// Tail follows a job to its terminal state: it consumes the SSE stream,
// invokes onEvent (may be nil) for every event, and reconnects on
// dropped connections — a daemon restart mid-job is invisible apart
// from the reconnect, since the journal resumes the job. It returns
// the terminal status. Hard API errors (404, 401, version mismatch)
// are returned instead of retried.
func (c *Client) Tail(ctx context.Context, id string, onEvent func(event string, data json.RawMessage)) (*api.Status, error) {
	for {
		var final *api.Status
		err := c.Events(ctx, id, func(event string, data json.RawMessage) error {
			if onEvent != nil {
				onEvent(event, data)
			}
			if event != "state" {
				return nil
			}
			var st api.Status
			if err := json.Unmarshal(data, &st); err != nil {
				return fmt.Errorf("bad state event: %w", err)
			}
			if api.TerminalState(st.State) {
				final = &st
				return errTailDone
			}
			return nil
		})
		if final != nil {
			return final, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var ae *Error
		var vm *VersionMismatchError
		if errors.As(err, &ae) || errors.As(err, &vm) {
			return nil, err
		}
		// Transport drop, or the stream ended without a terminal state (a
		// draining daemon closes its subscribers): reconnect.
		if err == nil {
			err = errors.New("event stream ended without a terminal state")
		}
		c.notify("event stream dropped (%v), reconnecting", err)
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
