package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vulfi/internal/api"
)

// stamped wraps a handler with the version header a real vulfid always
// sends, so the client's drift check sees a current daemon.
func stamped(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Vulfid-Api-Version", api.APIVersion)
		h(w, r)
	})
}

func TestBaseNormalization(t *testing.T) {
	for addr, want := range map[string]string{
		"localhost:8666":          "http://localhost:8666",
		"http://localhost:8666/":  "http://localhost:8666",
		"https://vulfid.internal": "https://vulfid.internal",
	} {
		if got := New(addr).Base(); got != want {
			t.Errorf("New(%q).Base() = %q, want %q", addr, got, want)
		}
	}
}

// TestSubmitHonorsRetryAfter: a 429 with Retry-After: 1 must hold the
// resubmission for at least ~the hinted second (80% floor under
// jitter), then succeed.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(stamped(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full, retry later"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.Status{ID: "j1", State: api.StateQueued})
	}))
	defer ts.Close()

	notified := false
	cl := New(ts.URL, WithNotify(func(string, ...any) { notified = true }))
	start := time.Now()
	st, err := cl.Submit(context.Background(), api.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" {
		t.Fatalf("submitted job %q, want j1", st.ID)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d submissions, want 2", got)
	}
	if waited := time.Since(start); waited < 800*time.Millisecond {
		t.Fatalf("resubmitted after %s, want >= ~1s per Retry-After", waited)
	}
	if !notified {
		t.Error("backoff wait was not surfaced through notify")
	}
}

// TestSubmitBackoffCancellable: a client stuck in backoff must honor
// context cancellation instead of sleeping out the delay.
func TestSubmitBackoffCancellable(t *testing.T) {
	ts := httptest.NewServer(stamped(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL).Submit(ctx, api.Spec{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestTypedError: non-2xx responses surface as *Error carrying the
// HTTP status and the server's {"error"} message verbatim.
func TestTypedError(t *testing.T) {
	ts := httptest.NewServer(stamped(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job \"j404\""}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Status(context.Background(), "j404")
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T (%v), want *Error", err, err)
	}
	if ae.StatusCode != http.StatusNotFound || !strings.Contains(ae.Message, "j404") {
		t.Fatalf("error = %+v, want 404 naming the job", ae)
	}
	if !strings.Contains(ae.Error(), "404") {
		t.Errorf("Error() = %q, want the status code in the text", ae.Error())
	}
}

// TestVersionMismatch: a daemon announcing a different major version is
// a hard *VersionMismatchError naming both sides; minor drift is let
// through with a one-time notify.
func TestVersionMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Vulfid-Api-Version", "2.0")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Status(context.Background(), "j1")
	var vme *VersionMismatchError
	if !errors.As(err, &vme) {
		t.Fatalf("err = %T (%v), want *VersionMismatchError", err, err)
	}
	if vme.Server != "2.0" || vme.Client != api.APIVersion {
		t.Fatalf("mismatch = %+v, want server 2.0 / client %s", vme, api.APIVersion)
	}

	// Minor drift: compatible, but surfaced once.
	minor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Vulfid-Api-Version", major(api.APIVersion)+".0")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"id":"j1"}`)
	}))
	defer minor.Close()
	warned := 0
	cl := New(minor.URL, WithNotify(func(string, ...any) { warned++ }))
	for i := 0; i < 3; i++ {
		if _, err := cl.Status(context.Background(), "j1"); err != nil {
			t.Fatal(err)
		}
	}
	if warned != 1 {
		t.Fatalf("minor drift warned %d times, want exactly once", warned)
	}
}

// TestAPIKeySent: the configured key rides every request as a Bearer
// token.
func TestAPIKeySent(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(stamped(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		fmt.Fprint(w, `{"id":"j1"}`)
	}))
	defer ts.Close()

	cl := New(ts.URL, WithAPIKey("sesame"))
	if _, err := cl.Status(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer sesame" {
		t.Fatalf("Authorization = %q, want Bearer sesame", got.Load())
	}
}

// TestTailTerminal: Tail follows the SSE stream and returns the final
// status once a terminal state event arrives, relaying experiment
// events on the way.
func TestTailTerminal(t *testing.T) {
	ts := httptest.NewServer(stamped(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/events") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: experiment\ndata: {\"i\":0,\"done\":1,\"total\":2}\n\n")
		fmt.Fprint(w, "event: state\ndata: {\"id\":\"j1\",\"state\":\"done\",\"done\":2,\"total\":2}\n\n")
	}))
	defer ts.Close()

	var experiments int
	st, err := New(ts.URL).Tail(context.Background(), "j1",
		func(event string, data json.RawMessage) {
			if event == "experiment" {
				experiments++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Done != 2 {
		t.Fatalf("final status = %+v, want done 2/2", st)
	}
	if experiments != 1 {
		t.Fatalf("saw %d experiment events, want 1", experiments)
	}
}
