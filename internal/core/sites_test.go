package core

import (
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

const vcopySrc = `
export void vcopy(uniform int a1[], uniform int a2[], uniform int n) {
	foreach (i = 0 ... n) {
		a2[i] = a1[i];
	}
}
`

func compileVCopy(t *testing.T) *codegen.Result {
	t.Helper()
	res, err := codegen.CompileSource(vcopySrc, isa.AVX, "vcopy")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnumerateSitesBasics(t *testing.T) {
	res := compileVCopy(t)
	sites := EnumerateSites(res.Module, nil)
	if len(sites) == 0 {
		t.Fatal("no sites found")
	}
	// IDs are dense and in enumeration order.
	for i, s := range sites {
		if s.ID != i {
			t.Fatalf("site %d has ID %d", i, s.ID)
		}
	}
	// The unmasked full-body vector store contributes an operand-target
	// site; the masked partial store contributes a masked one.
	var plainStoreSites, maskedValueSites, maskedLValueSites int
	for _, s := range sites {
		switch {
		case s.Instr.Op == ir.OpStore && s.ValueOperand == 0:
			plainStoreSites++
		case s.ValueOperand >= 0 && s.MaskOperand >= 0:
			maskedValueSites++
		case s.ValueOperand < 0 && s.MaskOperand >= 0:
			maskedLValueSites++
		}
	}
	if plainStoreSites == 0 {
		t.Error("missing plain store value-operand site")
	}
	if maskedValueSites == 0 {
		t.Error("missing masked store value-operand site")
	}
	if maskedLValueSites == 0 {
		t.Error("missing masked load L-value site")
	}
}

func TestSiteLanes(t *testing.T) {
	res := compileVCopy(t)
	for _, s := range EnumerateSites(res.Module, nil) {
		ty := s.Value().Type()
		if ty.IsVector() && s.Lanes() != 8 {
			t.Fatalf("vector site lanes = %d, want 8 (AVX)", s.Lanes())
		}
		if !ty.IsVector() && s.Lanes() != 1 {
			t.Fatalf("scalar site lanes = %d", s.Lanes())
		}
	}
}

func TestRuntimeCallsAreNotSites(t *testing.T) {
	res := compileVCopy(t)
	sites := EnumerateSites(res.Module, nil)
	inst, err := Instrument(res.Module, sites)
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	// Re-enumerating after instrumentation must not pick up the inject
	// calls themselves (but will see the new extract/insert plumbing).
	for _, s := range EnumerateSites(res.Module, nil) {
		if s.Instr.Op == ir.OpCall && s.Instr.Callee != nil {
			name := s.Instr.Callee.Nam
			if len(name) >= 11 && name[:11] == "injectFault" {
				t.Fatalf("inject call enumerated as site: %s", name)
			}
		}
	}
}

func TestSelectSitesPartition(t *testing.T) {
	res := compileVCopy(t)
	sites := EnumerateSites(res.Module, nil)
	pure := SelectSites(sites, passes.PureData)
	ctrl := SelectSites(sites, passes.Control)
	addr := SelectSites(sites, passes.Address)
	// Figure 2: pure-data is disjoint from the others; every site is in
	// at least one category; control and address may overlap.
	seen := map[*Site]bool{}
	for _, s := range pure {
		seen[s] = true
	}
	for _, s := range ctrl {
		if seen[s] {
			t.Fatal("pure-data site also in control")
		}
	}
	for _, s := range addr {
		if s.Matches(passes.PureData) {
			t.Fatal("pure-data site also in address")
		}
	}
	covered := map[*Site]bool{}
	for _, set := range [][]*Site{pure, ctrl, addr} {
		for _, s := range set {
			covered[s] = true
		}
	}
	if len(covered) != len(sites) {
		t.Fatalf("categories cover %d of %d sites", len(covered), len(sites))
	}
}

func TestCensus(t *testing.T) {
	res := compileVCopy(t)
	rows := Census(EnumerateSites(res.Module, nil))
	if len(rows) != 3 {
		t.Fatal("census must have one row per category")
	}
	for _, r := range rows {
		if r.Total() != r.ScalarSites+r.VectorSites {
			t.Fatal("census totals inconsistent")
		}
		if f := r.VectorFraction(); f < 0 || f > 1 {
			t.Fatalf("vector fraction out of range: %v", f)
		}
	}
	// vcopy's pure-data sites are all vector (the copied data).
	if rows[0].Category != passes.PureData || rows[0].VectorFraction() != 1 {
		t.Errorf("vcopy pure-data should be 100%% vector: %+v", rows[0])
	}
	// Address sites (GEP chains) are scalar — the paper's Figure 10
	// "grain of salt" observation.
	if rows[2].Category != passes.Address || rows[2].VectorSites != 0 {
		t.Errorf("vcopy address sites should be scalar: %+v", rows[2])
	}
}
