package core

import (
	"strings"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// TestFigure5Shape instruments a masked vector load/store pair and checks
// the rewrite matches the paper's Figure 5: per-lane extractelement,
// extractelement of the mask, injectFault call, insertelement, and the
// masked store consuming the instrumented clone.
func TestFigure5Shape(t *testing.T) {
	res := compileVCopy(t)
	f := res.Module.Func("vcopy")
	sites := EnumerateSites(res.Module, nil)

	// Pick the masked-load L-value site from the partial body.
	var maskedLoad *Site
	for _, s := range sites {
		if s.MaskOperand >= 0 && s.ValueOperand < 0 {
			maskedLoad = s
		}
	}
	if maskedLoad == nil {
		t.Fatal("no masked load site")
	}
	inst, err := Instrument(res.Module, []*Site{maskedLoad})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.LaneSites) != 8 {
		t.Fatalf("masked vector site expanded to %d lane sites, want 8",
			len(inst.LaneSites))
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
	text := f.String()
	for _, frag := range []string{
		"%ext0 = extractelement <8 x i32>",
		"%extmask0 = extractelement <8 x i32> %floatmask",
		"call i32 @injectFaultIntTy(i32 %ext0",
		"%ins0 = insertelement <8 x i32>",
		"%ext7 = extractelement <8 x i32> %ins6",
		"%ins7 = insertelement <8 x i32> %ins6",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("Figure 5 shape missing %q in:\n%s", frag, text)
		}
	}
	// The masked store must consume the instrumented clone (%ins7), not
	// the original load.
	if !strings.Contains(text, "maskstore.d.256(i32* %a2_str_addr.2, <8 x i32> %floatmask.2, <8 x i32> %ins7)") {
		t.Errorf("users not redirected to instrumented clone:\n%s", text)
	}
}

// TestInstrumentationIsSemanticallyTransparent: with a CountOnly plan the
// instrumented module must compute exactly what the original computes.
func TestInstrumentationTransparent(t *testing.T) {
	run := func(instrument bool) []int32 {
		res := compileVCopy(t)
		if instrument {
			if _, err := Instrument(res.Module, EnumerateSites(res.Module, nil)); err != nil {
				t.Fatal(err)
			}
		}
		x, err := exec.NewInstance(res, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		AttachRuntime(x.It, &Plan{Mode: CountOnly})
		in := make([]int32, 13)
		for i := range in {
			in[i] = int32(i*3 - 7)
		}
		a1, _ := x.AllocI32(in)
		a2, _ := x.AllocI32(make([]int32, len(in)))
		if _, tr := x.CallExport("vcopy", exec.PtrArgI32(a1), exec.PtrArgI32(a2),
			exec.I32Arg(int64(len(in)))); tr != nil {
			t.Fatal(tr)
		}
		out, _ := x.ReadI32(a2, len(in))
		return out
	}
	plain := run(false)
	instrumented := run(true)
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("instrumentation changed semantics at %d: %d vs %d",
				i, plain[i], instrumented[i])
		}
	}
}

// TestMaskedLaneNotASite: dynamic site counting must skip masked-off
// lanes (§II: the mask decides whether to target a lane).
func TestMaskedLaneNotASite(t *testing.T) {
	countDynSites := func(n int64) uint64 {
		res := compileVCopy(t)
		sites := EnumerateSites(res.Module, nil)
		// Only masked sites, to isolate the effect.
		var masked []*Site
		for _, s := range sites {
			if s.MaskOperand >= 0 {
				masked = append(masked, s)
			}
		}
		if _, err := Instrument(res.Module, masked); err != nil {
			t.Fatal(err)
		}
		x, err := exec.NewInstance(res, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plan := &Plan{Mode: CountOnly}
		AttachRuntime(x.It, plan)
		a1, _ := x.AllocI32(make([]int32, 16))
		a2, _ := x.AllocI32(make([]int32, 16))
		if _, tr := x.CallExport("vcopy", exec.PtrArgI32(a1), exec.PtrArgI32(a2),
			exec.I32Arg(n)); tr != nil {
			t.Fatal(tr)
		}
		return plan.DynSites
	}
	// n=11: partial body covers lanes for elements 8..10 → 3 active lanes
	// on the load site + 3 on the store site = 6 dynamic sites.
	if got := countDynSites(11); got != 6 {
		t.Fatalf("n=11 masked dynamic sites = %d, want 6", got)
	}
	// n=16: no remainder → the partial body never runs → 0 masked sites.
	if got := countDynSites(16); got != 0 {
		t.Fatalf("n=16 masked dynamic sites = %d, want 0", got)
	}
}

func TestWholeRegisterAblation(t *testing.T) {
	res := compileVCopy(t)
	ip := &InstrumentPass{Category: passes.PureData, WholeRegister: true,
		Out: &Instrumentation{}}
	if err := ip.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	// Whole-register mode: one lane site per instruction-level site.
	if len(ip.Out.LaneSites) != len(ip.Out.Sites) {
		t.Fatalf("whole-register mode: %d lane sites for %d sites",
			len(ip.Out.LaneSites), len(ip.Out.Sites))
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatal(err)
	}
	// The vector inject runtime must be declared.
	found := false
	for _, f := range res.Module.Funcs {
		if strings.HasPrefix(f.Nam, "injectFaultVecTy.") {
			found = true
		}
	}
	if !found {
		t.Error("vector inject runtime not declared")
	}
}

func TestInstrumentScalarAndStoreSites(t *testing.T) {
	// A scalar-only function: sites target L-values and the store operand.
	src := `
export void g(uniform int a[], uniform int n) {
	uniform int x = n * 3 + 1;
	a[0] = x;
}
`
	res, err := codegen.CompileSource(src, isa.AVX, "g")
	if err != nil {
		t.Fatal(err)
	}
	sites := EnumerateSites(res.Module, nil)
	inst, err := Instrument(res.Module, sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatal(err)
	}
	text := res.Module.Func("g").String()
	if !strings.Contains(text, "@injectFaultIntTy(") {
		t.Errorf("scalar instrumentation missing:\n%s", text)
	}
	// Each scalar site yields exactly one lane site.
	for _, ls := range inst.LaneSites {
		if ls.Lane != 0 {
			t.Fatal("scalar lane site with lane != 0")
		}
	}
}

func TestInjectNameMapping(t *testing.T) {
	cases := []struct {
		ty   *ir.Type
		want string
	}{
		{ir.F32, "injectFaultFloatTy"},
		{ir.F64, "injectFaultDoubleTy"},
		{ir.I32, "injectFaultIntTy"},
		{ir.I64, "injectFaultLongTy"},
		{ir.I1, "injectFaultBoolTy"},
		{ir.Ptr(ir.F32), "injectFaultPtrTy.float"},
		{ir.Vec(ir.I32, 8), "injectFaultVecTy.v8i32"},
	}
	for _, c := range cases {
		if got := injectName(c.ty); got != c.want {
			t.Errorf("injectName(%s) = %q, want %q", c.ty, got, c.want)
		}
	}
}
