package core

import (
	"testing"
	"testing/quick"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

func TestPlanCounting(t *testing.T) {
	p := &Plan{Mode: CountOnly}
	v := interp.FloatValue(ir.F32, 1.5)
	for i := 0; i < 5; i++ {
		out := p.handle(v, 1, int64(i))
		if out.Bits[0] != v.Bits[0] {
			t.Fatal("CountOnly must not modify values")
		}
	}
	if p.DynSites != 5 {
		t.Fatalf("DynSites = %d, want 5", p.DynSites)
	}
	// Inactive lanes are not counted.
	p.handle(v, 0, 9)
	if p.DynSites != 5 {
		t.Fatal("inactive lane counted")
	}
}

func TestPlanInjectsExactlyOnce(t *testing.T) {
	p := &Plan{Mode: InjectOnce, TargetDyn: 3, BitSeed: 7}
	v := interp.IntValue(ir.I32, 100)
	var changed int
	for i := 0; i < 10; i++ {
		out := p.handle(v, 1, int64(i))
		if out.Bits[0] != v.Bits[0] {
			changed++
			if p.DynSites != 3 {
				t.Fatalf("flip happened at dynamic site %d, want 3", p.DynSites)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("flipped %d times, want exactly 1", changed)
	}
	if !p.Injected || p.Record.Bit != 7 || p.Record.Width != 32 {
		t.Fatalf("record wrong: %+v", p.Record)
	}
	if p.Record.Before == p.Record.After {
		t.Fatal("record shows no change")
	}
}

func TestPlanBitWithinWidth(t *testing.T) {
	// BitSeed larger than the width must still land inside the value.
	p := &Plan{Mode: InjectOnce, TargetDyn: 1, BitSeed: 1000003}
	v := interp.IntValue(ir.I8, 1)
	out := p.handle(v, 1, 0)
	if p.Record.Bit < 0 || p.Record.Bit >= 8 {
		t.Fatalf("bit %d outside i8", p.Record.Bit)
	}
	if out.Bits[0]&^0xFF != 0 {
		t.Fatal("flip escaped the i8 width")
	}
}

// Property: an injection flips exactly one bit of the value.
func TestPlanSingleBitProperty(t *testing.T) {
	prop := func(val uint32, seed uint32) bool {
		p := &Plan{Mode: InjectOnce, TargetDyn: 1, BitSeed: uint64(seed)}
		v := interp.Scalar(ir.I32, uint64(val))
		out := p.handle(v, 1, 0)
		diff := out.Bits[0] ^ v.Bits[0]
		// Exactly one bit set in the diff, inside the width.
		return diff != 0 && diff&(diff-1) == 0 && diff <= 1<<31
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanMaskedLaneSkipsInjection(t *testing.T) {
	p := &Plan{Mode: InjectOnce, TargetDyn: 1, BitSeed: 3}
	v := interp.FloatValue(ir.F32, 2)
	out := p.handle(v, 0, 0) // inactive: not a site, no flip
	if out.Bits[0] != v.Bits[0] || p.Injected {
		t.Fatal("inactive lane was injected")
	}
	out = p.handle(v, 1, 1) // first live site gets the flip
	if out.Bits[0] == v.Bits[0] || !p.Injected {
		t.Fatal("first live site not injected")
	}
}

func TestAttachRuntimeRegistersAllInjectDecls(t *testing.T) {
	m := ir.NewModule("t")
	m.AddFunc(ir.NewDecl("injectFaultFloatTy", ir.F32, ir.F32, ir.I32, ir.I32))
	m.AddFunc(ir.NewDecl("injectFaultIntTy", ir.I32, ir.I32, ir.I32, ir.I32))
	f := ir.NewFunc("f", ir.F32, []*ir.Type{ir.F32}, []string{"x"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	r := bu.Call(m.Func("injectFaultFloatTy"), "r",
		f.Params[0], ir.ConstInt(ir.I32, 1), ir.ConstInt(ir.I32, 0))
	bu.Ret(r)
	it, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Mode: InjectOnce, TargetDyn: 1, BitSeed: 31}
	AttachRuntime(it, plan)
	got, tr := it.Run("f", interp.FloatValue(ir.F32, 1))
	if tr != nil {
		t.Fatal(tr)
	}
	if got.Float() != -1 { // bit 31 of f32(1.0) is the sign
		t.Fatalf("injected value = %v, want -1", got.Float())
	}
}
