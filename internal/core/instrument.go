package core

import (
	"fmt"

	"vulfi/internal/ir"
	"vulfi/internal/passes"
)

// LaneSite is one runtime fault site: a (site, lane) pair. The runtime
// site ID indexes this table.
type LaneSite struct {
	ID   int
	Site *Site
	Lane int
}

// Instrumentation is the result of instrumenting a module: the lane-site
// table whose IDs the inserted injectFault* calls carry.
type Instrumentation struct {
	Sites     []*Site
	LaneSites []LaneSite
	Category  passes.Category
	// WholeRegister is the ablation mode treating a vector L-value as a
	// single fault site instead of Vl lane sites.
	WholeRegister bool
	// MaskOblivious is the ablation mode that ignores execution masks
	// when counting dynamic sites (every lane is always live).
	MaskOblivious bool
}

// InstrumentPass wraps instrumentation as a module pass.
type InstrumentPass struct {
	Category passes.Category
	// WholeRegister / MaskOblivious select the DESIGN.md ablation modes.
	WholeRegister bool
	MaskOblivious bool
	// Out receives the instrumentation table after Run.
	Out *Instrumentation
}

// Name implements passes.Pass.
func (p *InstrumentPass) Name() string {
	return "vulfi-instrument-" + p.Category.String()
}

// Run implements passes.Pass.
func (p *InstrumentPass) Run(m *ir.Module) error {
	sites := SelectSites(EnumerateSites(m, nil), p.Category)
	inst := &Instrumentation{
		Sites:         sites,
		WholeRegister: p.WholeRegister,
		MaskOblivious: p.MaskOblivious,
	}
	if err := inst.run(m); err != nil {
		return err
	}
	inst.Category = p.Category
	if p.Out != nil {
		*p.Out = *inst
	}
	return nil
}

// Instrument rewrites the module so every lane of every selected site
// flows through a runtime injectFault* call, following the paper's
// Figure 4 workflow: clone the value, extract each scalar element,
// pass it (with its execution-mask element) to the runtime API, insert
// the result back, and redirect all users to the instrumented clone.
func Instrument(m *ir.Module, sites []*Site) (*Instrumentation, error) {
	inst := &Instrumentation{Sites: sites}
	if err := inst.run(m); err != nil {
		return nil, err
	}
	return inst, nil
}

func (inst *Instrumentation) run(m *ir.Module) error {
	for _, s := range inst.Sites {
		if err := inst.instrumentSite(m, s); err != nil {
			return fmt.Errorf("site %d (%s): %w", s.ID, s.Instr, err)
		}
	}
	return nil
}

func (inst *Instrumentation) newLaneSite(s *Site, lane int) *ir.Const {
	id := len(inst.LaneSites)
	inst.LaneSites = append(inst.LaneSites, LaneSite{ID: id, Site: s, Lane: lane})
	return ir.ConstInt(ir.I32, int64(id))
}

func (inst *Instrumentation) instrumentSite(m *ir.Module, s *Site) error {
	v := s.Value()
	ty := v.Type()

	// Pick the insertion position: before the store for stored-value
	// targets; otherwise right after the defining instruction (after the
	// phi section when the L-value is a phi).
	var bu *ir.Builder
	if s.ValueOperand >= 0 {
		bu = ir.NewBuilderBefore(s.Instr)
	} else if s.Instr.Op == ir.OpPhi {
		blk := s.Instr.Parent
		ph := blk.Phis()
		lastPhi := ph[len(ph)-1]
		bu = ir.NewBuilderAfter(lastPhi)
	} else {
		bu = ir.NewBuilderAfter(s.Instr)
	}

	var maskVal ir.Value
	if s.MaskOperand >= 0 {
		maskVal = s.Instr.Operand(s.MaskOperand)
	}

	created := map[*ir.Instr]bool{}
	track := func(in *ir.Instr) *ir.Instr {
		created[in] = true
		return in
	}

	var result ir.Value
	if !ty.IsVector() || inst.WholeRegister {
		// Scalar site — or the whole-register ablation, where the entire
		// vector register is a single fault site.
		fn := injectDecl(m, ty)
		call := track(bu.Call(fn, fmt.Sprintf("inj_s%d", s.ID),
			v, ir.ConstInt(ir.I32, 1), inst.newLaneSite(s, 0)))
		result = call
	} else {
		cur := v
		for lane := 0; lane < ty.Len; lane++ {
			laneC := ir.ConstInt(ir.I32, int64(lane))
			ext := track(bu.ExtractElement(cur, laneC, fmt.Sprintf("ext%d", lane)))
			var active ir.Value = ir.ConstInt(ir.I32, 1)
			if maskVal != nil && !inst.MaskOblivious {
				extm := track(bu.ExtractElement(maskVal, laneC,
					fmt.Sprintf("extmask%d", lane)))
				neg := track(bu.ICmp(ir.IntSLT, extm,
					ir.ConstInt(maskVal.Type().Elem, 0), fmt.Sprintf("actcmp%d", lane)))
				active = track(bu.Cast(ir.OpZExt, neg, ir.I32,
					fmt.Sprintf("act%d", lane)))
			}
			fn := injectDecl(m, ty.Elem)
			inj := track(bu.Call(fn, fmt.Sprintf("inj%d", lane),
				ext, active, inst.newLaneSite(s, lane)))
			cur = track(bu.InsertElement(cur, inj, laneC, fmt.Sprintf("ins%d", lane)))
		}
		result = cur
	}

	// Redirect users to the instrumented clone (skipping the
	// instrumentation chain itself).
	if s.ValueOperand >= 0 {
		s.Instr.SetOperand(s.ValueOperand, result)
	} else {
		s.Instr.ReplaceUsesExcept(result, created)
	}
	return nil
}

// injectDecl returns (declaring on first use) the runtime injection API
// function for scalar type ty: T injectFault<Ty>(T value, i32 active,
// i32 siteID). Names follow the paper's Figure 5.
func injectDecl(m *ir.Module, ty *ir.Type) *ir.Func {
	name := injectName(ty)
	if f := m.Func(name); f != nil {
		return f
	}
	f := ir.NewDecl(name, ty, ty, ir.I32, ir.I32)
	m.AddFunc(f)
	return f
}

func injectName(ty *ir.Type) string {
	switch ty {
	case ir.F32:
		return "injectFaultFloatTy"
	case ir.F64:
		return "injectFaultDoubleTy"
	case ir.I32:
		return "injectFaultIntTy"
	case ir.I64:
		return "injectFaultLongTy"
	case ir.I16:
		return "injectFaultShortTy"
	case ir.I8:
		return "injectFaultCharTy"
	case ir.I1:
		return "injectFaultBoolTy"
	}
	if ty.IsPointer() {
		return "injectFaultPtrTy." + ty.Elem.String()
	}
	if ty.IsVector() {
		// Whole-register ablation mode.
		return fmt.Sprintf("injectFaultVecTy.v%d%s", ty.Len, ty.Elem)
	}
	panic("core: no injection runtime for type " + ty.String())
}
