// Package core implements VULFI, the paper's vector-oriented fault
// injector: enumeration of fault sites over IR (treating each scalar
// element of a vector L-value as a unique fault site), category-based
// site selection via forward-slice analysis, the Figure 4/5
// extract–inject–insert instrumentation rewrite, and the single-bit-flip
// fault-injection runtime (§II-B fault model).
package core

import (
	"strings"

	"vulfi/internal/ir"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// Site is one instruction-level fault-injection target. A vector site
// expands to Lanes lane-sites at instrumentation time, each with its own
// runtime site ID (§II-B: "each of its scalar elements is considered a
// unique fault site").
type Site struct {
	// ID is the instruction-level index in enumeration order.
	ID int
	// Instr is the instruction carrying the target value.
	Instr *ir.Instr
	// ValueOperand is the operand index of the targeted value for
	// store-like instructions, or -1 when the L-value is targeted.
	ValueOperand int
	// MaskOperand is the operand index of the execution mask for masked
	// vector intrinsics, or -1 (unmasked: every lane is a live site).
	MaskOperand int
	// Flags is the forward-slice classification of the site.
	Flags passes.SliceFlags
}

// Value returns the targeted IR value.
func (s *Site) Value() ir.Value {
	if s.ValueOperand >= 0 {
		return s.Instr.Operand(s.ValueOperand)
	}
	return s.Instr
}

// Lanes returns the number of lane-sites this site expands to.
func (s *Site) Lanes() int { return s.Value().Type().Lanes() }

// IsVector reports whether the site's instruction is a vector instruction
// (the paper's definition: at least one vector-typed operand).
func (s *Site) IsVector() bool { return s.Instr.IsVectorInstr() }

// Matches reports whether the site belongs to the category.
func (s *Site) Matches(c passes.Category) bool { return s.Flags.Matches(c) }

// runtimeCall reports whether a call targets the VULFI runtime or the
// language runtime (output, detectors) rather than program computation;
// such calls are never fault sites.
func runtimeCall(in *ir.Instr) bool {
	if in.Op != ir.OpCall {
		return false
	}
	n := in.Callee.Nam
	return strings.HasPrefix(n, "vulfi.") || strings.HasPrefix(n, "injectFault") ||
		strings.HasPrefix(n, "checkInvariants") || strings.HasPrefix(n, "checkUniform")
}

// EnumerateSites walks the given functions (all module definitions when
// funcs is nil) and builds the instruction-level fault-site list:
// every instruction L-value, plus the stored-value operand of stores and
// masked store intrinsics (the paper's store special case).
func EnumerateSites(m *ir.Module, funcs []*ir.Func) []*Site {
	if funcs == nil {
		for _, f := range m.Funcs {
			if !f.IsDecl {
				funcs = append(funcs, f)
			}
		}
	}
	var sites []*Site
	add := func(s *Site) {
		s.ID = len(sites)
		sites = append(sites, s)
	}
	for _, f := range funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if runtimeCall(in) {
					continue
				}
				switch {
				case in.Op == ir.OpStore:
					add(&Site{Instr: in, ValueOperand: 0, MaskOperand: -1,
						Flags: passes.ForwardSlice(in.Operand(0))})
				case in.Op == ir.OpCall:
					mi, masked := isa.MaskedOpInfo(in.Callee.Nam)
					switch {
					case masked && mi.IsStore:
						add(&Site{Instr: in, ValueOperand: mi.ValueOperand,
							MaskOperand: mi.MaskOperand,
							Flags:       passes.ForwardSlice(in.Operand(mi.ValueOperand))})
					case masked:
						add(&Site{Instr: in, ValueOperand: -1,
							MaskOperand: mi.MaskOperand,
							Flags:       passes.ForwardSlice(in)})
					case !in.Ty.IsVoid():
						add(&Site{Instr: in, ValueOperand: -1, MaskOperand: -1,
							Flags: passes.ForwardSlice(in)})
					}
				case !in.Ty.IsVoid():
					add(&Site{Instr: in, ValueOperand: -1, MaskOperand: -1,
						Flags: passes.ForwardSlice(in)})
				}
			}
		}
	}
	return sites
}

// SelectSites filters sites by category (the paper's fault-site selection
// heuristics, §II-C).
func SelectSites(sites []*Site, c passes.Category) []*Site {
	var out []*Site
	for _, s := range sites {
		if s.Matches(c) {
			out = append(out, s)
		}
	}
	return out
}

// CensusRow is the Figure 10 instruction-mix datum for one category.
type CensusRow struct {
	Category    passes.Category
	ScalarSites int
	VectorSites int
}

// Total returns the row's site count.
func (r CensusRow) Total() int { return r.ScalarSites + r.VectorSites }

// VectorFraction returns the vector share of the row (0 when empty).
func (r CensusRow) VectorFraction() float64 {
	if r.Total() == 0 {
		return 0
	}
	return float64(r.VectorSites) / float64(r.Total())
}

// Census computes the scalar/vector instruction mix per fault-site
// category (the data behind Figure 10).
func Census(sites []*Site) []CensusRow {
	rows := make([]CensusRow, len(passes.AllCategories))
	for i, c := range passes.AllCategories {
		rows[i].Category = c
		for _, s := range sites {
			if !s.Matches(c) {
				continue
			}
			if s.IsVector() {
				rows[i].VectorSites++
			} else {
				rows[i].ScalarSites++
			}
		}
	}
	return rows
}
