package core

import (
	"fmt"
	"strings"

	"vulfi/internal/interp"
)

// PlanMode selects what the injection runtime does.
type PlanMode int

const (
	// CountOnly makes the runtime count dynamic fault sites without
	// injecting (the first, golden execution of an experiment).
	CountOnly PlanMode = iota
	// InjectOnce flips a single bit when the TargetDyn-th dynamic fault
	// site executes (the second, faulty execution).
	InjectOnce PlanMode = iota
)

// Plan is the per-execution fault-injection plan: the paper's fault model
// of exactly one bit flip at one dynamic fault site chosen uniformly from
// the N dynamic sites observed in the golden run.
type Plan struct {
	Mode PlanMode
	// TargetDyn is the 1-based dynamic site index to corrupt.
	TargetDyn uint64
	// BitSeed selects the bit position (taken modulo the site's width at
	// injection time, giving a uniform choice over the value's bits).
	BitSeed uint64

	// DynSites counts dynamic fault sites observed so far. Masked-off
	// vector lanes are not counted (§II: the mask decides "whether or not
	// to target a particular vector lane").
	DynSites uint64
	// Visits, when non-nil, receives per-lane-site activation counts:
	// Visits[siteID] is incremented on every live (unmasked) visit of that
	// lane site. Used by atlas profiling runs; nil on the hot experiment
	// path so normal campaigns pay only a nil check.
	Visits []uint64
	// Injected reports whether the flip happened.
	Injected bool
	// Record describes the performed injection.
	Record InjectionRecord
}

// InjectionRecord describes one performed bit flip.
type InjectionRecord struct {
	LaneSiteID int64
	Bit        int
	Width      int
	Before     uint64
	After      uint64
}

// String formats the record.
func (r InjectionRecord) String() string {
	return fmt.Sprintf("site=%d bit=%d/%d %#x->%#x",
		r.LaneSiteID, r.Bit, r.Width, r.Before, r.After)
}

// handle implements the runtime injection API semantics for one call.
func (p *Plan) handle(val interp.Value, active, siteID int64) interp.Value {
	if active == 0 {
		return val // masked-off lane: not a dynamic fault site
	}
	p.DynSites++
	if p.Visits != nil && siteID >= 0 && siteID < int64(len(p.Visits)) {
		p.Visits[siteID]++
	}
	if p.Mode == InjectOnce && !p.Injected && p.DynSites == p.TargetDyn {
		w := val.Ty.ScalarBits()
		bit := int(p.BitSeed % uint64(w))
		// Whole-register ablation passes the full vector through one
		// call; pick the lane from the high seed bits then.
		lane := 0
		if n := len(val.Bits); n > 1 {
			lane = int((p.BitSeed >> 24) % uint64(n))
		}
		out := val.FlipBit(lane, bit)
		p.Injected = true
		p.Record = InjectionRecord{
			LaneSiteID: siteID, Bit: bit, Width: w,
			Before: val.Bits[lane], After: out.Bits[lane],
		}
		return out
	}
	return val
}

// AttachRuntime registers the injectFault* runtime API on an interpreter,
// bound to the given plan. Call once per execution with a fresh plan.
func AttachRuntime(it *interp.Interp, plan *Plan) {
	impl := func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
		active := args[1].Int()
		if active == 0 {
			return args[0], nil // masked-off lane: not a dynamic fault site
		}
		it.CountSiteVisit() // live (unmasked) dynamic fault-site visit
		return plan.handle(args[0], active, args[2].Int()), nil
	}
	for _, f := range it.Mod.Funcs {
		if f.IsDecl && strings.HasPrefix(f.Nam, "injectFault") {
			it.RegisterExtern(f.Nam, impl)
		}
	}
}
