package report

import (
	"fmt"
	"io"

	"vulfi/internal/campaign"
)

// WriteExplanation renders one traced experiment as a human-readable
// narrative: fault site → divergence chain → outcome. The result must
// come from a traced run (vulfi -explain, campaign.ExplainExperiment).
func WriteExplanation(w io.Writer, r *campaign.ExperimentResult) {
	e := r.Explanation
	if e == nil {
		fmt.Fprintln(w, "no explanation recorded (run with tracing enabled)")
		return
	}
	fmt.Fprintf(w, "outcome      %s", e.Outcome)
	if e.Detected {
		fmt.Fprintf(w, "  [detected]")
	}
	fmt.Fprintf(w, "  (input %s, N=%d dynamic sites)\n", r.InputLabel, r.DynSites)

	if s := e.FaultSite; s != nil {
		fmt.Fprintf(w, "fault site   @%s/%s: %s\n", s.Func, s.Block, s.Instr)
		fmt.Fprintf(w, "             lane %d, static category %s (control=%v address=%v)\n",
			s.Lane, s.Category, s.StaticControl, s.StaticAddress)
	} else if r.DynSites == 0 {
		fmt.Fprintln(w, "fault site   none reached dynamically (vacuously benign)")
	}
	if r.Record.Width > 0 {
		fmt.Fprintf(w, "injection    bit %d/%d  %#x -> %#x\n",
			r.Record.Bit, r.Record.Width, r.Record.Before, r.Record.After)
	}

	if !e.Diverged {
		fmt.Fprintf(w, "divergence   none: the flipped bit never surfaced (%d retired instructions identical)\n",
			e.GoldenRetired)
	} else {
		if f := e.First; f != nil {
			fmt.Fprintf(w, "first diverg @%s/%s: %s  (dyn %d, lanes %v)\n",
				f.Func, f.Block, f.Instr, f.Dyn, e.FirstLanes)
		}
		for i, l := range e.Chain {
			fmt.Fprintf(w, "  chain %-2d   %s  lanes %v\n", i+1, l.Ref.Instr, l.Lanes)
			fmt.Fprintf(w, "             golden %s\n", l.Golden)
			fmt.Fprintf(w, "             faulty %s\n", l.Faulty)
		}
		fmt.Fprintf(w, "propagation  depth=%d corrupted values, max lane spread=%d\n",
			e.Depth, e.MaxLaneSpread)
		if e.ControlDivergence {
			fmt.Fprintf(w, "control flow diverged")
			if a := e.ControlDivergedAt; a != nil {
				fmt.Fprintf(w, " at @%s/%s: %s (dyn %d)", a.Func, a.Block, a.Instr, a.Dyn)
			}
			fmt.Fprintf(w, "; %d faulty instructions retired past the aligned window\n",
				e.PostDivergence)
		}
	}
	fmt.Fprintf(w, "slice class  %s (dynamic)", e.SliceClass())
	if s := e.FaultSite; s != nil {
		agree := "agrees with"
		if !dynamicWithinStatic(e.SliceClass(), s.StaticControl, s.StaticAddress) {
			agree = "exceeds"
		}
		fmt.Fprintf(w, " — %s static category %s", agree, s.Category)
	}
	fmt.Fprintln(w)

	switch {
	case e.DetectionDyn > 0 && e.TimeToDetection >= 0:
		fmt.Fprintf(w, "detection    fired at dyn %d (+%d retired instructions after first divergence)\n",
			e.DetectionDyn, e.TimeToDetection)
	case e.Detected:
		fmt.Fprintf(w, "detection    fired at dyn %d\n", e.DetectionDyn)
	default:
		fmt.Fprintln(w, "detection    no detector fired")
	}
	if t := e.Trap; t != nil {
		fmt.Fprintf(w, "trap         %s: %s", t.Kind, t.Msg)
		if t.Func != "" {
			fmt.Fprintf(w, "  @%s/%s: %s (dyn %d)", t.Func, t.Block, t.Instr, t.Dyn)
		}
		fmt.Fprintln(w)
	}
	if e.Truncated {
		fmt.Fprintln(w, "note         trace ring dropped entries; the first divergence may be earlier")
	}
}

// dynamicWithinStatic reports whether the dynamically observed slice
// class is covered by the site's static forward-slice flags (dynamic
// crossings are a subset of static ones except for flows through
// memory, which SSA slicing does not follow).
func dynamicWithinStatic(class string, control, address bool) bool {
	switch class {
	case "data":
		return true
	case "control":
		return control
	case "address":
		return address
	default: // "control+address"
		return control && address
	}
}

// WritePropagation renders a traced study's aggregated propagation
// profile: divergence/crossing counts, depth/spread means, and the
// per-site SDC blame ranking (most SDC-prone sites first).
func WritePropagation(w io.Writer, sr *campaign.StudyResult) {
	p := sr.Propagation
	if p == nil {
		fmt.Fprintln(w, "no propagation profile (run with tracing enabled)")
		return
	}
	fmt.Fprintf(w, "propagation profile: %d traced, %d diverged, %d control-divergent\n",
		p.Traced, p.Diverged, p.ControlDivergence)
	fmt.Fprintf(w, "  crossings: control %d, address %d\n",
		p.CrossedControl, p.CrossedAddress)
	fmt.Fprintf(w, "  depth: mean %.1f max %d    lane spread: mean %.2f max %d\n",
		p.MeanDepth, p.MaxDepth, p.MeanLaneSpread, p.MaxLaneSpread)
	if p.Detections > 0 {
		fmt.Fprintf(w, "  time-to-detection: mean %.1f retired instructions (%d detections)\n",
			p.MeanTimeToDetection, p.Detections)
	}
	if p.Truncated > 0 {
		fmt.Fprintf(w, "  %d experiments truncated by the trace ring\n", p.Truncated)
	}
	if len(p.Blame) == 0 {
		return
	}
	fmt.Fprintln(w, "  blame ranking (by SDC):")
	const maxRows = 10
	for i, b := range p.Blame {
		if i == maxRows {
			fmt.Fprintf(w, "    ... %d more sites\n", len(p.Blame)-maxRows)
			break
		}
		fmt.Fprintf(w, "    %2d. %-60s exp=%-4d SDC=%-4d crash=%-4d benign=%-4d detected=%d\n",
			i+1, b.Site, b.Experiments, b.SDC, b.Crash, b.Benign, b.Detected)
	}
}
