package report

import (
	"fmt"
	"io"
	"sort"

	"vulfi/internal/obs"
)

// WriteTimeline renders the span timeline's text digest — trace
// identity, per-phase wall totals, per-lane utilization and the slowest
// experiments — the at-a-glance version of the Perfetto view the
// trace-event export opens.
func WriteTimeline(w io.Writer, tl *obs.Timeline) {
	fmt.Fprintf(w, "timeline: trace %s  %d spans  wall %.1f ms\n",
		tl.TraceID, len(tl.Spans), float64(tl.WallNS)/1e6)

	type agg struct {
		n   int
		dur int64
	}
	phases := map[string]*agg{}
	laneBusy := map[int]int64{}
	var experiments []obs.Span
	for _, s := range tl.Spans {
		a := phases[s.Name]
		if a == nil {
			a = &agg{}
			phases[s.Name] = a
		}
		a.n++
		a.dur += s.DurNS
		if s.Name == "experiment" {
			experiments = append(experiments, s)
			laneBusy[s.Lane] += s.DurNS
		}
	}

	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "phase totals:\n")
	for _, n := range names {
		a := phases[n]
		fmt.Fprintf(w, "    %-12s %6d spans %10.1f ms\n",
			n, a.n, float64(a.dur)/1e6)
	}

	if len(laneBusy) > 0 && tl.WallNS > 0 {
		lanes := make([]int, 0, len(laneBusy))
		for l := range laneBusy {
			lanes = append(lanes, l)
		}
		sort.Ints(lanes)
		fmt.Fprintf(w, "lane utilization (experiment time / study wall):\n")
		for _, l := range lanes {
			name := fmt.Sprintf("lane %d", l)
			if l >= 0 && l < len(tl.Lanes) {
				name = tl.Lanes[l]
			}
			fmt.Fprintf(w, "    %-10s %5.1f%%\n",
				name, 100*float64(laneBusy[l])/float64(tl.WallNS))
		}
	}

	sort.Slice(experiments, func(i, j int) bool {
		return experiments[i].DurNS > experiments[j].DurNS
	})
	const maxSlow = 5
	if len(experiments) > 0 {
		fmt.Fprintf(w, "slowest experiments:\n")
		for i, s := range experiments {
			if i == maxSlow {
				break
			}
			fmt.Fprintf(w, "    %2d. index %-6s seed %-12s %8.2f ms  %s\n",
				i+1, s.Attrs["index"], s.Attrs["seed"],
				float64(s.DurNS)/1e6, s.Attrs["outcome"])
		}
	}
}
