package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vulfi/internal/obs"
)

// fleetGroups counts the worker lane groups of a fleet-merged timeline
// (0 when tl is a plain single-node timeline): lanes after the
// "coordinator" lane are named "<worker> control" / "<worker> worker N"
// by obs.MergeShards, and each distinct <worker> prefix is one group.
func fleetGroups(lanes []string) int {
	if len(lanes) == 0 || lanes[0] != "coordinator" {
		return 0
	}
	groups := map[string]bool{}
	for _, name := range lanes[1:] {
		base := name
		if i := strings.LastIndex(base, " worker "); i >= 0 {
			base = base[:i]
		} else if s, ok := strings.CutSuffix(base, " control"); ok {
			base = s
		}
		groups[base] = true
	}
	return len(groups)
}

// WriteTimeline renders the span timeline's text digest — trace
// identity, per-phase wall totals, per-lane utilization and the slowest
// experiments — the at-a-glance version of the Perfetto view the
// trace-event export opens. A fleet-merged timeline (lane 0 named
// "coordinator", worker lanes prefixed with their worker's name) gets
// an extra line counting its lane groups.
func WriteTimeline(w io.Writer, tl *obs.Timeline) {
	fmt.Fprintf(w, "timeline: trace %s  %d spans  wall %.1f ms\n",
		tl.TraceID, len(tl.Spans), float64(tl.WallNS)/1e6)
	if groups := fleetGroups(tl.Lanes); groups > 0 {
		fmt.Fprintf(w, "fleet: coordinator + %d worker lane group(s)\n", groups)
	}

	type agg struct {
		n   int
		dur int64
	}
	phases := map[string]*agg{}
	laneBusy := map[int]int64{}
	var experiments []obs.Span
	for _, s := range tl.Spans {
		a := phases[s.Name]
		if a == nil {
			a = &agg{}
			phases[s.Name] = a
		}
		a.n++
		a.dur += s.DurNS
		if s.Name == "experiment" {
			experiments = append(experiments, s)
			laneBusy[s.Lane] += s.DurNS
		}
	}

	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "phase totals:\n")
	for _, n := range names {
		a := phases[n]
		fmt.Fprintf(w, "    %-12s %6d spans %10.1f ms\n",
			n, a.n, float64(a.dur)/1e6)
	}

	if len(laneBusy) > 0 && tl.WallNS > 0 {
		lanes := make([]int, 0, len(laneBusy))
		width := 10
		for l := range laneBusy {
			lanes = append(lanes, l)
			if l >= 0 && l < len(tl.Lanes) && len(tl.Lanes[l]) > width {
				width = len(tl.Lanes[l])
			}
		}
		sort.Ints(lanes)
		fmt.Fprintf(w, "lane utilization (experiment time / study wall):\n")
		for _, l := range lanes {
			name := fmt.Sprintf("lane %d", l)
			if l >= 0 && l < len(tl.Lanes) {
				name = tl.Lanes[l]
			}
			fmt.Fprintf(w, "    %-*s %5.1f%%\n",
				width, name, 100*float64(laneBusy[l])/float64(tl.WallNS))
		}
	}

	sort.Slice(experiments, func(i, j int) bool {
		return experiments[i].DurNS > experiments[j].DurNS
	})
	const maxSlow = 5
	if len(experiments) > 0 {
		fmt.Fprintf(w, "slowest experiments:\n")
		for i, s := range experiments {
			if i == maxSlow {
				break
			}
			fmt.Fprintf(w, "    %2d. index %-6s seed %-12s %8.2f ms  %s\n",
				i+1, s.Attrs["index"], s.Attrs["seed"],
				float64(s.DurNS)/1e6, s.Attrs["outcome"])
		}
	}
}
