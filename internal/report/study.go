package report

import (
	"fmt"
	"io"

	"vulfi/internal/atlas"
	"vulfi/internal/campaign"
)

// WriteStudy renders a completed study as the CLI's text summary:
// optional per-campaign rows, the site census, outcome rates with the
// paper's 95% margin, detector stats when the study ran detectors, and
// the propagation profile when it was traced. One renderer serves
// cmd/vulfi and the golden-file tests pinning its format.
func WriteStudy(w io.Writer, sr *campaign.StudyResult, verbose bool) {
	if verbose {
		for i, c := range sr.Campaigns {
			fmt.Fprintf(w, "  campaign %2d: SDC %5.1f%%  Benign %5.1f%%  Crash %5.1f%%  detected %d\n",
				i+1, 100*c.SDCRate(), 100*c.BenignRate(), 100*c.CrashRate(), c.Detected)
		}
	}
	t := sr.Totals
	fmt.Fprintf(w, "static sites: %d (%d lane sites)\n", sr.StaticSites, sr.LaneSites)
	fmt.Fprintf(w, "mean golden dynamic instructions: %.0f\n", sr.MeanGoldenDynInstrs)
	fmt.Fprintf(w, "SDC    %6.2f%%  (±%.2f%% at 95%%, near-normal=%v)\n",
		100*sr.MeanSDC, 100*sr.MarginOfError, sr.NearNormal)
	fmt.Fprintf(w, "Benign %6.2f%%\n", 100*t.BenignRate())
	fmt.Fprintf(w, "Crash  %6.2f%%  (%d hangs)\n", 100*t.CrashRate(), t.Hang)
	if sr.Cfg.Detectors {
		fmt.Fprintf(w, "detector fired in %d experiments; SDC detection rate %.2f%%\n",
			t.Detected, 100*t.SDCDetectionRate())
	}
	if sr.Propagation != nil {
		WritePropagation(w, sr)
	}
	if len(sr.Sites) > 0 {
		WriteAtlas(w, atlas.New(sr))
	}
	if sr.HotProfile != nil {
		WriteProfile(w, sr.HotProfile)
	}
}

// WriteAtlas renders the per-site atlas as text: the attribution
// summary plus the most SDC-prone sites with their Wilson intervals.
func WriteAtlas(w io.Writer, a *atlas.Atlas) {
	fmt.Fprintf(w, "resiliency atlas: %d sites, %d/%d experiments attributed\n",
		len(a.Rows), a.Attributed, a.Experiments)
	const maxRows = 10
	for i, r := range a.Rows {
		if i == maxRows {
			fmt.Fprintf(w, "    ... %d more sites\n", len(a.Rows)-maxRows)
			break
		}
		fmt.Fprintf(w, "    %2d. %-60s %-15s inj=%-4d SDC %5.1f%% [%5.1f%%,%5.1f%%] act=%d\n",
			i+1, r.Key, r.Category, r.Injections,
			100*r.SDCRate.Rate, 100*r.SDCRate.Lo, 100*r.SDCRate.Hi,
			r.Activations)
	}
}

// WriteHistory renders recorded history entries, newest last, as an
// aligned table (the `vulfi history list` view).
func WriteHistory(w io.Writer, entries []atlas.Entry) {
	if len(entries) == 0 {
		fmt.Fprintln(w, "history is empty")
		return
	}
	fmt.Fprintf(w, "%4s  %-20s  %-32s  %9s  %9s  %9s  %8s  %s\n",
		"#", "time", "cell", "sdc", "crash", "detected", "exp/s", "build")
	for i, e := range entries {
		build := e.Build
		if build == "" {
			build = "-"
		}
		fmt.Fprintf(w, "%4d  %-20s  %-32s  %8.2f%%  %8.2f%%  %8.2f%%  %8.1f  %s\n",
			i+1, e.Time, e.Name(),
			100*rateOf(e.SDC, e.Total), 100*rateOf(e.Crash, e.Total),
			100*rateOf(e.Detected, e.Total), e.ExpPerSec, build)
	}
}

// WriteDiff renders a regression-gate comparison: the per-class table,
// significant per-site deltas, and the verdict line.
func WriteDiff(w io.Writer, d *atlas.Diff) {
	if d.Mismatch != "" {
		fmt.Fprintf(w, "warning: %s\n", d.Mismatch)
	}
	fmt.Fprintf(w, "%-10s %10s %10s %8s  %s\n", "class", "baseline", "candidate", "z", "verdict")
	for _, c := range d.Classes {
		verdict := ""
		switch {
		case c.Regression:
			verdict = "REGRESSION"
		case c.Significant:
			verdict = "significant"
		}
		fmt.Fprintf(w, "%-10s %9.2f%% %9.2f%% %8.2f  %s\n",
			c.Class, 100*c.BaseRate, 100*c.CandRate, c.Z, verdict)
	}
	for _, s := range d.Sites {
		verdict := "improved"
		if s.Regression {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(w, "site %-55s %6.1f%% -> %6.1f%%  z=%.2f  %s\n",
			s.Key, 100*s.BaseRate, 100*s.CandRate, s.Z, verdict)
	}
	if regs := d.Regressions(); len(regs) > 0 {
		fmt.Fprintf(w, "FAIL: %d regression(s) at |z| >= %.2f\n", len(regs), d.Threshold)
	} else {
		fmt.Fprintf(w, "PASS: no significant regression at |z| >= %.2f\n", d.Threshold)
	}
}

func rateOf(x, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(x) / float64(n)
}
