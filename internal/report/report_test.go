package report

import (
	"bytes"
	"strings"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/isa"
)

func tinyOptions() Options {
	o := Defaults()
	o.Experiments = 5
	o.Campaigns = 2
	o.MicroExperiments = 10
	o.Scale = benchmarks.ScaleTest
	o.Benchmarks = []string{"Blackscholes"}
	o.ISAs = []*isa.ISA{isa.AVX}
	return o
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"TABLE I", "Blackscholes", "AVX"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table1 output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "SSE") {
		t.Error("ISA filter ignored")
	}
}

func TestFig10(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig10(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"FIGURE 10", "pure-data", "control", "address",
		"Averages across benchmarks"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig10 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig11(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig11(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"FIGURE 11", "SDC", "Benign", "Crash", "±MoE"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig11 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig12(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig12(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"FIGURE 12", "VectorCopy", "DotProduct",
		"VectorSum", "SDC Detection Rate"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig12 output missing %q:\n%s", frag, out)
		}
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"per-lane", "whole-register", "mask-aware",
		"mask-oblivious", "exit-only", "every-iteration"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Ablations output missing %q:\n%s", frag, out)
		}
	}
}
