package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtension(t *testing.T) {
	o := tinyOptions()
	var buf bytes.Buffer
	if err := Extension(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"EXTENSIONS", "broadcast detector",
		"AVX512", "foreach-only", "+broadcast"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Extension output missing %q:\n%s", frag, out)
		}
	}
}
