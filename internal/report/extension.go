package report

import (
	"fmt"
	"io"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// Extension runs the studies that go beyond the paper's evaluation:
//
//	(a) the §III-B uniform-broadcast detector (the paper sketches the
//	    invariant and defers the implementation) — measured as the
//	    detection-rate uplift over the foreach-invariant detector alone;
//	(b) the mask-loop monotonicity detector on a divergent varying-while
//	    workload (Mandelbrot);
//	(c) the AVX512 target (gang 16, natively predicated) as the "multiple
//	    vector formats" extensibility claim, on the vector benchmarks.
func Extension(w io.Writer, o Options) error {
	fmt.Fprintln(w, "EXTENSIONS (beyond the paper's evaluation)")

	fmt.Fprintln(w, "\n(a) §III-B uniform-broadcast detector uplift (control faults):")
	for _, b := range []*benchmarks.Benchmark{
		benchmarks.VectorCopy, benchmarks.Jacobi, benchmarks.Chebyshev,
	} {
		var rates [2]float64
		var fired [2]int
		for i, broadcast := range []bool{false, true} {
			sr, err := o.runStudy(campaign.Config{
				Benchmark: b, ISA: isa.AVX, Category: passes.Control,
				Scale: o.Scale, Experiments: o.MicroExperiments, Campaigns: 1,
				Seed: o.Seed, Workers: o.Workers,
				Detectors: true, BroadcastDetector: broadcast,
			})
			if err != nil {
				return err
			}
			rates[i] = sr.Totals.SDCDetectionRate()
			fired[i] = sr.Totals.Detected
		}
		fmt.Fprintf(w, "  %-12s foreach-only: detection %5.1f%% (fired %d)   +broadcast: %5.1f%% (fired %d)\n",
			b.Name, 100*rates[0], fired[0], 100*rates[1], fired[1])
	}

	fmt.Fprintln(w, "\n(b) Mask-loop monotonicity detector (Mandelbrot, control faults):")
	for _, maskDet := range []bool{false, true} {
		sr, err := o.runStudy(campaign.Config{
			Benchmark: benchmarks.Mandelbrot, ISA: isa.AVX,
			Category: passes.Control, Scale: o.Scale,
			Experiments: o.MicroExperiments / 2, Campaigns: 1,
			Seed: o.Seed, Workers: o.Workers,
			Detectors: true, MaskLoopDetector: maskDet,
		})
		if err != nil {
			return err
		}
		mode := "foreach-only   "
		if maskDet {
			mode = "+mask-monotonic"
		}
		fmt.Fprintf(w, "  %s  SDC %5.1f%%  detection %5.1f%% (fired %d)\n",
			mode, 100*sr.Totals.SDCRate(), 100*sr.Totals.SDCDetectionRate(),
			sr.Totals.Detected)
	}

	fmt.Fprintln(w, "\n(c) AVX512 target (gang 16) on the micro-benchmarks, control faults:")
	for _, b := range benchmarks.Micro() {
		for _, target := range []*isa.ISA{isa.AVX, isa.AVX512} {
			sr, err := o.runStudy(campaign.Config{
				Benchmark: b, ISA: target, Category: passes.Control,
				Scale: o.Scale, Experiments: o.MicroExperiments / 2, Campaigns: 1,
				Seed: o.Seed, Workers: o.Workers, Detectors: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s %-7s lane-sites=%4d  SDC %5.1f%%  Crash %5.1f%%  detection %5.1f%%\n",
				b.Name, target.Name, sr.LaneSites,
				100*sr.Totals.SDCRate(), 100*sr.Totals.CrashRate(),
				100*sr.Totals.SDCDetectionRate())
		}
	}
	return nil
}
