package report

import (
	"fmt"
	"io"

	"vulfi/internal/profile"
)

// WriteProfile renders the execution profile as the CLI's text
// observatory: the ranked per-opcode table (whose count column totals
// the interpreter's aggregate DynInstrs), the superinstruction
// candidate pairs, the hottest static sites, and the campaign phase
// breakdown with the study's throughput.
func WriteProfile(w io.Writer, p *profile.Profile) {
	fmt.Fprintf(w, "execution profile: %d dynamic instrs (%d vector) over %d runs\n",
		p.TotalDyn, p.TotalVector, p.Runs)
	if p.ExpPerSec > 0 {
		fmt.Fprintf(w, "throughput: %.1f experiments/s over %.1f ms\n",
			p.ExpPerSec, float64(p.WallNS)/1e6)
	}

	const maxOps = 12
	fmt.Fprintf(w, "hot opcodes:\n")
	for i, o := range p.Ops {
		if i == maxOps {
			fmt.Fprintf(w, "    ... %d more opcodes\n", len(p.Ops)-maxOps)
			break
		}
		fmt.Fprintf(w, "    %2d. %-16s %12d  %5.1f%% dyn  %5.1f%% time  vector=%d\n",
			i+1, o.Op, o.Count, o.CountPct, o.TimePct, o.Vector)
	}

	const maxPairs = 8
	if len(p.Pairs) > 0 {
		fmt.Fprintf(w, "superinstruction candidates (opcode pairs):\n")
		for i, pr := range p.Pairs {
			if i == maxPairs {
				break
			}
			fmt.Fprintf(w, "    %2d. %-16s -> %-16s %12d\n",
				i+1, pr.First, pr.Second, pr.Count)
		}
	}

	const maxSites = 10
	if len(p.Sites) > 0 {
		fmt.Fprintf(w, "hot sites:\n")
		for i, s := range p.Sites {
			if i == maxSites {
				fmt.Fprintf(w, "    ... %d more sites\n", len(p.Sites)-maxSites)
				break
			}
			fmt.Fprintf(w, "    %2d. %-60s %12d\n", i+1, s.Site, s.Count)
		}
	}

	if len(p.Phases) > 0 {
		fmt.Fprintf(w, "phases:\n")
		for _, ph := range p.Phases {
			fmt.Fprintf(w, "    %-8s %10.1f ms", ph.Phase, float64(ph.WallNS)/1e6)
			if ph.Dyn > 0 {
				fmt.Fprintf(w, "  %12d instrs", ph.Dyn)
			}
			fmt.Fprintln(w)
		}
	}
}
