package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vulfi/internal/atlas"
	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
	"vulfi/internal/profile"
	"vulfi/internal/trace"
)

// Regenerate the golden files with:
//
//	go test ./internal/report/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenStudy is a fully deterministic synthetic study: every field a
// renderer touches is pinned, wall times are zero, and the binary is
// unstamped under `go test`, so the output is byte-stable.
func goldenStudy() *campaign.StudyResult {
	sr := &campaign.StudyResult{}
	sr.Cfg.Benchmark = benchmarks.VectorCopy
	sr.Cfg.ISA = isa.AVX
	sr.Cfg.Category = passes.PureData
	sr.Cfg.Campaigns, sr.Cfg.Experiments = 2, 10
	sr.Cfg.Seed = 1
	sr.Cfg.Detectors = true
	sr.StaticSites, sr.LaneSites = 3, 9
	sr.MeanGoldenDynInstrs = 1234

	c1 := campaign.CampaignResult{Experiments: 10, SDC: 4, Benign: 5,
		Crash: 1, Detected: 3, SDCDetected: 2}
	c2 := campaign.CampaignResult{Experiments: 10, SDC: 6, Benign: 3,
		Crash: 1, Hang: 1, Detected: 4, SDCDetected: 3}
	sr.Campaigns = []campaign.CampaignResult{c1, c2}
	sr.Totals = campaign.CampaignResult{Experiments: 20, SDC: 10, Benign: 8,
		Crash: 2, Hang: 1, Detected: 7, SDCDetected: 5}
	sr.SDCRates = []float64{0.4, 0.6}
	sr.MeanSDC = 0.5
	sr.MarginOfError = 0.03
	sr.NearNormal = true

	sr.Propagation = &trace.Summary{
		Traced: 20, Diverged: 12, ControlDivergence: 3,
		CrossedControl: 4, CrossedAddress: 2,
		MeanDepth: 5.5, MaxDepth: 17, MeanLaneSpread: 1.25, MaxLaneSpread: 4,
		Detections: 7, MeanTimeToDetection: 42.5,
		Blame: []trace.BlameEntry{
			{Site: "@kernel/loop: %v = fmul", Experiments: 8, SDC: 6, Crash: 1, Benign: 1, Detected: 4},
			{Site: "@kernel/entry: %v = add", Experiments: 7, SDC: 3, Benign: 4, Detected: 2},
		},
	}
	sr.Sites = []campaign.SiteTally{
		{Site: 0, Key: "@kernel/loop: %v = fmul", Func: "kernel", Block: "loop",
			Instr: "%v = fmul", Category: "pure-data", Lanes: 4,
			Activations: 320, Injections: 8, SDC: 6, Benign: 1, Crash: 1, Detected: 4},
		{Site: 1, Key: "@kernel/entry: %v = add", Func: "kernel", Block: "entry",
			Instr: "%v = add", Category: "pure-data", Lanes: 4,
			Activations: 80, Injections: 7, SDC: 3, Benign: 4, Detected: 2},
		{Site: 2, Key: "@kernel/exit: %p = getelementptr", Func: "kernel", Block: "exit",
			Instr: "%p = getelementptr", Category: "address", Lanes: 1,
			Activations: 20, Injections: 5, SDC: 1, Benign: 3, Crash: 1, Hang: 1, Detected: 1},
	}
	return sr
}

func TestGoldenWriteStudy(t *testing.T) {
	sr := goldenStudy()
	var buf bytes.Buffer
	WriteStudy(&buf, sr, true)
	checkGolden(t, "study.txt", buf.Bytes())
}

func TestGoldenWritePropagation(t *testing.T) {
	sr := goldenStudy()
	var buf bytes.Buffer
	WritePropagation(&buf, sr)
	checkGolden(t, "propagation.txt", buf.Bytes())
}

func TestGoldenStudyJSON(t *testing.T) {
	sr := goldenStudy()
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "study.json", buf.Bytes())
}

func TestGoldenAtlasCSV(t *testing.T) {
	a := atlas.New(goldenStudy())
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "atlas.csv", buf.Bytes())
}

func TestGoldenAtlasJSON(t *testing.T) {
	a := atlas.New(goldenStudy())
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "atlas.json", buf.Bytes())
}

func TestGoldenDiff(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	base := atlas.NewEntry(goldenStudy(), t0)
	worse := goldenStudy()
	worse.Totals.SDC, worse.Totals.Benign = 18, 0
	cand := atlas.NewEntry(worse, t0)
	var buf bytes.Buffer
	WriteDiff(&buf, atlas.Compare(&base, &cand, 1.959963984540054))
	checkGolden(t, "diff.txt", buf.Bytes())
}

func TestGoldenWriteProfile(t *testing.T) {
	p := &profile.Profile{
		Runs: 40, Experiments: 20, TotalDyn: 9000, TotalVector: 2400,
		WallNS: 250e6, ExpPerSec: 80,
		Ops: []profile.OpRow{
			{Op: "fmul", Count: 4000, Vector: 2000, CountPct: 44.4, TimePct: 52.1},
			{Op: "add", Count: 3000, Vector: 400, CountPct: 33.3, TimePct: 21.9},
			{Op: "br", Count: 2000, CountPct: 22.2, TimePct: 26.0},
		},
		Pairs: []profile.PairRow{
			{First: "fmul", Second: "add", Count: 3500},
			{First: "add", Second: "br", Count: 1900},
		},
		Sites: []profile.SiteRow{
			{Site: "@kernel/loop: %v = fmul", Count: 4000, TimeNS: 130e6},
			{Site: "@kernel/entry: %v = add", Count: 3000, TimeNS: 55e6},
		},
		Phases: []profile.PhaseRow{
			{Phase: "compile", WallNS: 3e6},
			{Phase: "golden", WallNS: 100e6, Dyn: 4500},
			{Phase: "faulty", WallNS: 120e6, Dyn: 4500},
			{Phase: "compare", WallNS: 27e6},
		},
	}
	var buf bytes.Buffer
	WriteProfile(&buf, p)
	checkGolden(t, "profile.txt", buf.Bytes())
}
