// Package report regenerates the paper's tables and figures as text:
// Table I (benchmarks and dynamic instruction counts), Figure 10
// (scalar/vector instruction mix per fault-site category), Figure 11
// (SDC/Benign/Crash rates per benchmark × category × ISA), and Figure 12
// (detector efficacy and overhead on the micro-benchmarks), plus the
// DESIGN.md ablations.
package report

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/isa"
	"vulfi/internal/lang"
	"vulfi/internal/passes"
	"vulfi/internal/telemetry"
)

// Options scales the studies.
type Options struct {
	// Experiments per campaign and campaigns per cell (Fig 11).
	Experiments int
	Campaigns   int
	// MicroExperiments for the Fig 12 detector study (paper: 2000).
	MicroExperiments int
	Scale            benchmarks.Scale
	Seed             int64
	Workers          int
	// Inputs is the input-pool size K threaded into every study cell:
	// experiment i draws input i mod K and golden runs are memoized
	// (0 = a fresh input per experiment, no cache).
	Inputs int
	// Backend is the execution backend threaded into every study cell:
	// "" or "tree" for the reference interpreter, "vm" for the compiled
	// bytecode backend (identical results, faster).
	Backend string
	// Benchmarks filters to the named subset (nil = all).
	Benchmarks []string
	// ISAs filters targets (nil = AVX + SSE).
	ISAs []*isa.ISA

	// Metrics receives study telemetry (phase histograms, outcome
	// counters). Nil records to the process-wide default registry.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives structured study/campaign/experiment
	// spans as JSONL.
	Events *telemetry.EventWriter
	// Progress, when non-nil, renders a live per-cell progress line
	// (counts, exp/s, ETA) to the writer — typically os.Stderr.
	Progress io.Writer
	// Context, when non-nil, cancels in-flight studies cooperatively
	// (between experiments). Nil means run to completion.
	Context context.Context
}

// ctx resolves the options' context (Background when unconfigured).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// runStudy threads the options' telemetry sinks into one study cell and
// runs it, rendering live progress when configured.
func (o Options) runStudy(cfg campaign.Config) (*campaign.StudyResult, error) {
	cfg.Metrics = o.Metrics
	cfg.Events = o.Events
	cfg.Inputs = o.Inputs
	cfg.Backend = o.Backend
	if o.Progress != nil {
		pr := telemetry.NewProgress(o.Progress, cfg.String(),
			cfg.Campaigns*cfg.Experiments)
		cfg.OnExperiment = func(r *campaign.ExperimentResult) {
			pr.Observe(r.Outcome.String(), r.Detected)
		}
		defer pr.Finish()
	}
	return campaign.RunStudy(o.ctx(), cfg)
}

// Defaults returns a laptop-scale configuration; Full returns the
// paper-scale one (20 campaigns × 100 experiments; 2000 micro runs).
func Defaults() Options {
	return Options{
		Experiments: 50, Campaigns: 5, MicroExperiments: 400,
		Scale: benchmarks.ScaleDefault, Seed: 20160516,
	}
}

// Full returns the paper-scale options (§IV-D: 9 × 2 × 3 × 2000 =
// 108,000 experiments; §IV-E: 2000 per micro-benchmark per category).
func Full() Options {
	o := Defaults()
	o.Experiments = 100
	o.Campaigns = 20
	o.MicroExperiments = 2000
	return o
}

func (o Options) isas() []*isa.ISA {
	if len(o.ISAs) > 0 {
		return o.ISAs
	}
	return isa.All
}

func (o Options) studyBenchmarks() []*benchmarks.Benchmark {
	all := benchmarks.Study()
	if len(o.Benchmarks) == 0 {
		return all
	}
	var out []*benchmarks.Benchmark
	for _, b := range all {
		for _, n := range o.Benchmarks {
			if b.Name == n {
				out = append(out, b)
			}
		}
	}
	return out
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Table1 regenerates Table I: benchmark list, language, inputs, and
// average dynamic instruction count per ISA.
func Table1(w io.Writer, o Options) error {
	fmt.Fprintln(w, "TABLE I: Benchmarks used in the fault injection study")
	fmt.Fprintln(w, "(dynamic instruction counts are simulator-scale; the paper's run at native scale into the millions)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Suite\tBenchmark\tTest Input\tTarget\tAvg Dynamic Instr Count")
	for _, b := range o.studyBenchmarks() {
		for _, target := range o.isas() {
			d, err := campaign.DynCount(b, target, o.Scale, o.Seed, 5)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.0f\n",
				b.Suite, b.Name, b.InputDesc, target.Name, d)
		}
	}
	return tw.Flush()
}

// Fig10 regenerates Figure 10: composition of vector and scalar
// instructions among fault sites, per benchmark × category × ISA.
func Fig10(w io.Writer, o Options) error {
	fmt.Fprintln(w, "FIGURE 10: Composition of vector and scalar instructions per fault-site category")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tISA\tCategory\tScalar\tVector\tVector %")
	type agg struct{ vec, tot int }
	perCat := map[passes.Category]*agg{}
	for _, c := range passes.AllCategories {
		perCat[c] = &agg{}
	}
	for _, b := range o.studyBenchmarks() {
		prog, err := lang.Compile(b.Source)
		if err != nil {
			return err
		}
		for _, target := range o.isas() {
			res, err := codegen.Compile(prog, target, b.Name)
			if err != nil {
				return err
			}
			sites := core.EnumerateSites(res.Module, nil)
			for _, row := range core.Census(sites) {
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\n",
					b.Name, target.Name, row.Category,
					row.ScalarSites, row.VectorSites, pct(row.VectorFraction()))
				perCat[row.Category].vec += row.VectorSites
				perCat[row.Category].tot += row.Total()
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nAverages across benchmarks (paper: pure-data 67%, control 43% vector):")
	for _, c := range passes.AllCategories {
		a := perCat[c]
		if a.tot > 0 {
			fmt.Fprintf(w, "  %-10s %s vector\n", c, pct(float64(a.vec)/float64(a.tot)))
		}
	}
	return nil
}

// Fig11 regenerates Figure 11: SDC/Benign/Crash rates for every
// benchmark × category × ISA, with the §IV-D statistical qualification.
func Fig11(w io.Writer, o Options) error {
	fmt.Fprintf(w, "FIGURE 11: Fault injection outcomes (%d campaigns x %d experiments per cell)\n",
		o.Campaigns, o.Experiments)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tISA\tCategory\tSDC\tBenign\tCrash\t±MoE(SDC)\tnormal\tlane sites")
	for _, b := range o.studyBenchmarks() {
		for _, target := range o.isas() {
			for _, cat := range passes.AllCategories {
				sr, err := o.runStudy(campaign.Config{
					Benchmark: b, ISA: target, Category: cat, Scale: o.Scale,
					Experiments: o.Experiments, Campaigns: o.Campaigns,
					Seed: o.Seed, Workers: o.Workers,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%v\t%d\n",
					b.Name, target.Name, cat,
					pct(sr.Totals.SDCRate()), pct(sr.Totals.BenignRate()),
					pct(sr.Totals.CrashRate()), pct(sr.MarginOfError),
					sr.NearNormal, sr.LaneSites)
			}
		}
	}
	return tw.Flush()
}

// Fig12 regenerates Figure 12: the §IV-E detector study on the three
// micro-benchmarks — average overhead, SDC rate, and SDC detection rate
// per fault-site category.
func Fig12(w io.Writer, o Options) error {
	fmt.Fprintf(w, "FIGURE 12: foreach-invariant detector study (%d experiments per cell)\n",
		o.MicroExperiments)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Micro-benchmark\tCategory\tAvg Overhead(dyn)\tAvg Overhead(wall)\tSDC\tSDC Detection Rate")
	target := isa.AVX
	for _, b := range benchmarks.Micro() {
		oh, err := campaign.MeasureOverhead(b, target, o.Scale,
			passes.Control, false, o.Seed, 100)
		if err != nil {
			return err
		}
		for _, cat := range passes.AllCategories {
			sr, err := o.runStudy(campaign.Config{
				Benchmark: b, ISA: target, Category: cat, Scale: o.Scale,
				Experiments: o.MicroExperiments, Campaigns: 1,
				Seed: o.Seed, Workers: o.Workers, Detectors: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
				b.Name, cat, pct(oh.DynOverhead()), pct(oh.WallOverhead()),
				pct(sr.Totals.SDCRate()), pct(sr.Totals.SDCDetectionRate()))
		}
	}
	return tw.Flush()
}

// Ablations runs the DESIGN.md design-choice studies: per-lane vs
// whole-register sites, mask-aware vs mask-oblivious accounting, and
// exit-only vs per-iteration detector placement.
func Ablations(w io.Writer, o Options) error {
	fmt.Fprintln(w, "ABLATIONS")
	b := benchmarks.VectorCopy
	target := isa.AVX

	fmt.Fprintln(w, "\n(a) Per-lane vs whole-register fault sites (vector copy, pure-data):")
	for _, whole := range []bool{false, true} {
		sr, err := o.runStudy(campaign.Config{
			Benchmark: b, ISA: target, Category: passes.PureData, Scale: o.Scale,
			Experiments: o.MicroExperiments, Campaigns: 1, Seed: o.Seed,
			Workers: o.Workers, WholeRegisterSites: whole,
		})
		if err != nil {
			return err
		}
		mode := "per-lane      "
		if whole {
			mode = "whole-register"
		}
		fmt.Fprintf(w, "  %s  lane-sites=%4d  SDC=%s Benign=%s Crash=%s\n",
			mode, sr.LaneSites, pct(sr.Totals.SDCRate()),
			pct(sr.Totals.BenignRate()), pct(sr.Totals.CrashRate()))
	}

	fmt.Fprintln(w, "\n(b) Mask-aware vs mask-oblivious lane accounting (vector copy, pure-data):")
	fmt.Fprintln(w, "    (test-scale input with a gang remainder, so the partial body runs)")
	for _, obl := range []bool{false, true} {
		p, err := campaign.Prepare(campaign.Config{
			Benchmark: b, ISA: target, Category: passes.PureData,
			Scale: benchmarks.ScaleTest, // n=13/24: forces masked tail lanes
			Seed:  o.Seed, MaskOblivious: obl,
		})
		if err != nil {
			return err
		}
		r, err := p.RunExperiment(o.ctx(), o.Seed)
		if err != nil {
			return err
		}
		mode := "mask-aware    "
		if obl {
			mode = "mask-oblivious"
		}
		fmt.Fprintf(w, "  %s  dynamic sites N=%d (input %s)\n",
			mode, r.DynSites, r.InputLabel)
	}

	fmt.Fprintln(w, "\n(c) Detector placement: exit-only (paper) vs every-iteration:")
	for _, every := range []bool{false, true} {
		oh, err := campaign.MeasureOverhead(b, target, o.Scale,
			passes.Control, every, o.Seed, 100)
		if err != nil {
			return err
		}
		mode := "exit-only      "
		if every {
			mode = "every-iteration"
		}
		fmt.Fprintf(w, "  %s  dyn overhead=%s wall overhead=%s\n",
			mode, pct(oh.DynOverhead()), pct(oh.WallOverhead()))
	}
	return nil
}
