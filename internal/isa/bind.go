package isa

import (
	"strings"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// maskActive reports whether a mask lane payload marks the lane active
// (high bit of the lane's width set).
func maskActive(bits uint64, width int) bool {
	return bits&(1<<uint(width-1)) != 0
}

// Bind registers architectural implementations for every ISA intrinsic
// declared in the interpreter's module: masked loads/stores, gathers,
// scatters and movmsk. Inactive lanes perform no memory access, which is
// what makes the partial foreach body safe at array tails.
func Bind(it *interp.Interp) {
	for _, f := range it.Mod.Funcs {
		if !f.IsDecl {
			continue
		}
		name := f.Nam
		switch {
		case strings.Contains(name, ".maskload."):
			elem := f.RetType().Elem
			it.RegisterExtern(name, maskLoadImpl(elem, f.RetType()))
		case strings.Contains(name, ".maskstore."):
			elem := f.Sig.Params[2].Elem
			it.RegisterExtern(name, maskStoreImpl(elem))
		case strings.Contains(name, ".movmsk."):
			it.RegisterExtern(name, movMskImpl)
		case strings.Contains(name, ".gather."):
			elem := f.RetType().Elem
			it.RegisterExtern(name, gatherImpl(elem, f.RetType()))
		case strings.Contains(name, ".scatter."):
			elem := f.Sig.Params[3].Elem
			it.RegisterExtern(name, scatterImpl(elem))
		}
	}
}

func maskLoadImpl(elem *ir.Type, ret *ir.Type) interp.ExternFn {
	es := uint64(elem.ByteSize())
	w := elem.ScalarBits()
	return func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
		base, mask := args[0].Uint(), args[1]
		out := interp.Zero(ret)
		for i := range mask.Bits {
			if !maskActive(mask.Bits[i], w) {
				continue // inactive lanes load zero, no access
			}
			v, tr := it.Mem.LoadScalar(elem, base+uint64(i)*es)
			if tr != nil {
				return interp.Value{}, tr
			}
			out.Bits[i] = v
		}
		return out, nil
	}
}

func maskStoreImpl(elem *ir.Type) interp.ExternFn {
	es := uint64(elem.ByteSize())
	w := elem.ScalarBits()
	return func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
		base, mask, val := args[0].Uint(), args[1], args[2]
		for i := range mask.Bits {
			if !maskActive(mask.Bits[i], w) {
				continue
			}
			if tr := it.Mem.StoreScalar(elem, base+uint64(i)*es, val.Bits[i]); tr != nil {
				return interp.Value{}, tr
			}
		}
		return interp.Value{}, nil
	}
}

func movMskImpl(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
	mask := args[0]
	w := mask.Ty.Scalar().Bits
	var out uint64
	for i := range mask.Bits {
		if maskActive(mask.Bits[i], w) {
			out |= 1 << uint(i)
		}
	}
	return interp.IntValue(ir.I32, int64(out)), nil
}

func gatherImpl(elem *ir.Type, ret *ir.Type) interp.ExternFn {
	es := uint64(elem.ByteSize())
	w := elem.ScalarBits()
	return func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
		base, idx, mask := args[0].Uint(), args[1], args[2]
		out := interp.Zero(ret)
		for i := range mask.Bits {
			if !maskActive(mask.Bits[i], w) {
				continue
			}
			addr := base + uint64(idx.LaneInt(i))*es
			v, tr := it.Mem.LoadScalar(elem, addr)
			if tr != nil {
				return interp.Value{}, tr
			}
			out.Bits[i] = v
		}
		return out, nil
	}
}

func scatterImpl(elem *ir.Type) interp.ExternFn {
	es := uint64(elem.ByteSize())
	w := elem.ScalarBits()
	return func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
		base, idx, mask, val := args[0].Uint(), args[1], args[2], args[3]
		for i := range mask.Bits {
			if !maskActive(mask.Bits[i], w) {
				continue
			}
			addr := base + uint64(idx.LaneInt(i))*es
			if tr := it.Mem.StoreScalar(elem, addr, val.Bits[i]); tr != nil {
				return interp.Value{}, tr
			}
		}
		return interp.Value{}, nil
	}
}
