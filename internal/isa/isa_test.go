package isa

import (
	"testing"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

func TestLanes(t *testing.T) {
	cases := []struct {
		isa  *ISA
		elem *ir.Type
		want int
	}{
		{AVX, ir.F32, 8}, {AVX, ir.I32, 8}, {AVX, ir.F64, 4}, {AVX, ir.I64, 4},
		{SSE, ir.F32, 4}, {SSE, ir.I32, 4}, {SSE, ir.F64, 2},
	}
	for _, c := range cases {
		if got := c.isa.Lanes(c.elem); got != c.want {
			t.Errorf("%s.Lanes(%s) = %d, want %d", c.isa, c.elem, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("AVX") != AVX || ByName("SSE") != SSE || ByName("NEON") != nil {
		t.Error("ByName lookup wrong")
	}
}

func TestIntrinsicNames(t *testing.T) {
	// AVX masked float ops use the genuine x86 names from the paper.
	if got := AVX.MaskLoadName(ir.F32); got != "llvm.x86.avx.maskload.ps.256" {
		t.Errorf("AVX f32 maskload = %q", got)
	}
	if got := AVX.MaskStoreName(ir.F32); got != "llvm.x86.avx.maskstore.ps.256" {
		t.Errorf("AVX f32 maskstore = %q", got)
	}
	if got := AVX.MaskLoadName(ir.I32); got != "llvm.x86.avx2.maskload.d.256" {
		t.Errorf("AVX i32 maskload = %q", got)
	}
	// SSE has no masked memory ops; the per-lane pseudo-intrinsics stand in.
	if got := SSE.MaskLoadName(ir.F32); got != "llvm.vulfi.sse.maskload.ps" {
		t.Errorf("SSE f32 maskload = %q", got)
	}
	if AVX.MovMskName() != "llvm.x86.avx.movmsk.ps.256" ||
		SSE.MovMskName() != "llvm.x86.sse.movmsk.ps" {
		t.Error("movmsk names wrong")
	}
}

func TestMaskedOpInfo(t *testing.T) {
	mi, ok := MaskedOpInfo("llvm.x86.avx.maskload.ps.256")
	if !ok || mi.MaskOperand != 1 || mi.IsStore {
		t.Errorf("maskload info = %+v %v", mi, ok)
	}
	mi, ok = MaskedOpInfo("llvm.x86.avx.maskstore.ps.256")
	if !ok || mi.MaskOperand != 1 || !mi.IsStore || mi.ValueOperand != 2 {
		t.Errorf("maskstore info = %+v %v", mi, ok)
	}
	mi, ok = MaskedOpInfo("llvm.vulfi.avx.gather.d")
	if !ok || mi.MaskOperand != 2 || mi.IsStore {
		t.Errorf("gather info = %+v %v", mi, ok)
	}
	mi, ok = MaskedOpInfo("llvm.vulfi.avx.scatter.ps")
	if !ok || !mi.IsStore || mi.ValueOperand != 3 {
		t.Errorf("scatter info = %+v %v", mi, ok)
	}
	if _, ok := MaskedOpInfo("llvm.sqrt.v8f32"); ok {
		t.Error("sqrt misclassified as masked op")
	}
}

// buildMaskedModule declares masked intrinsics and a function exercising
// a masked load + store pair.
func buildMaskedModule(t *testing.T) (*ir.Module, *Intrinsics) {
	t.Helper()
	m := ir.NewModule("isa")
	x := &Intrinsics{ISA: AVX, Mod: m}
	f := ir.NewFunc("f", ir.Vec(ir.F32, 8),
		[]*ir.Type{ir.Ptr(ir.F32), ir.Ptr(ir.F32), ir.Vec(ir.I32, 8)},
		[]string{"src", "dst", "mask"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	ld := bu.Call(x.MaskLoad(ir.F32, 8), "ld", f.Params[0], f.Params[2])
	bu.Call(x.MaskStore(ir.F32, 8), "", f.Params[1], f.Params[2], ld)
	bu.Ret(ld)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m, x
}

func TestMaskedLoadStoreSemantics(t *testing.T) {
	m, _ := buildMaskedModule(t)
	it, err := interp.New(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	Bind(it)

	src, _ := it.Mem.Alloc(32)
	dst, _ := it.Mem.Alloc(32)
	for i := 0; i < 8; i++ {
		fv := interp.FloatValue(ir.F32, float64(i+1))
		it.Mem.StoreScalar(ir.F32, src+uint64(i)*4, fv.Uint())
		it.Mem.StoreScalar(ir.F32, dst+uint64(i)*4,
			interp.FloatValue(ir.F32, -1).Uint())
	}
	// Activate lanes 0..4 only (high bit convention).
	mask := interp.Zero(ir.Vec(ir.I32, 8))
	for i := 0; i < 5; i++ {
		mask.Bits[i] = 0xFFFFFFFF
	}
	got, tr := it.Run("f",
		interp.PtrValue(ir.Ptr(ir.F32), src),
		interp.PtrValue(ir.Ptr(ir.F32), dst), mask)
	if tr != nil {
		t.Fatal(tr)
	}
	for i := 0; i < 8; i++ {
		want := float64(i + 1)
		if i >= 5 {
			want = 0 // inactive lanes load zero
		}
		if got.LaneFloat(i) != want {
			t.Fatalf("loaded lane %d = %v, want %v", i, got.LaneFloat(i), want)
		}
		stored, _ := it.Mem.LoadScalar(ir.F32, dst+uint64(i)*4)
		wantStored := want
		if i >= 5 {
			wantStored = -1 // inactive lanes must not be stored
		}
		if interp.Scalar(ir.F32, stored).Float() != wantStored {
			t.Fatalf("stored lane %d = %v, want %v", i,
				interp.Scalar(ir.F32, stored).Float(), wantStored)
		}
	}
}

// TestMaskedLoadAtArrayTail is the property the partial foreach body
// depends on: inactive lanes perform no memory access, so a masked load
// touching the end of an allocation does not fault.
func TestMaskedLoadAtArrayTail(t *testing.T) {
	m, _ := buildMaskedModule(t)
	it, _ := interp.New(m, interp.Options{})
	Bind(it)
	src, _ := it.Mem.Alloc(12) // room for exactly 3 floats (16 after alignment)
	dst, _ := it.Mem.Alloc(32)
	mask := interp.Zero(ir.Vec(ir.I32, 8))
	for i := 0; i < 3; i++ {
		mask.Bits[i] = 0xFFFFFFFF
	}
	if _, tr := it.Run("f",
		interp.PtrValue(ir.Ptr(ir.F32), src),
		interp.PtrValue(ir.Ptr(ir.F32), dst), mask); tr != nil {
		t.Fatalf("masked tail access trapped: %v", tr)
	}
	// An all-on mask must fault (the load would run off the segment).
	for i := range mask.Bits {
		mask.Bits[i] = 0xFFFFFFFF
	}
	if _, tr := it.Run("f",
		interp.PtrValue(ir.Ptr(ir.F32), src),
		interp.PtrValue(ir.Ptr(ir.F32), dst), mask); tr == nil {
		t.Fatal("unmasked overrun did not trap")
	}
}

func TestMovMsk(t *testing.T) {
	m := ir.NewModule("mm")
	x := &Intrinsics{ISA: AVX, Mod: m}
	f := ir.NewFunc("f", ir.I32, []*ir.Type{ir.Vec(ir.I32, 8)}, []string{"m"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	r := bu.Call(x.MovMsk(8), "r", f.Params[0])
	bu.Ret(r)
	it, _ := interp.New(m, interp.Options{})
	Bind(it)
	mask := interp.Zero(ir.Vec(ir.I32, 8))
	mask.Bits[1] = 0x80000000
	mask.Bits[4] = 0xFFFFFFFF
	mask.Bits[6] = 0x7FFFFFFF // high bit clear: inactive
	got, tr := it.Run("f", mask)
	if tr != nil {
		t.Fatal(tr)
	}
	if got.Int() != (1<<1)|(1<<4) {
		t.Fatalf("movmsk = %#x", got.Int())
	}
}

func TestGatherScatter(t *testing.T) {
	m := ir.NewModule("gs")
	x := &Intrinsics{ISA: AVX, Mod: m}
	f := ir.NewFunc("f", ir.Vec(ir.I32, 8),
		[]*ir.Type{ir.Ptr(ir.I32), ir.Vec(ir.I32, 8), ir.Vec(ir.I32, 8)},
		[]string{"base", "idx", "mask"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	g := bu.Call(x.Gather(ir.I32, 8), "g", f.Params[0], f.Params[1], f.Params[2])
	doubled := bu.Add(g, g, "d")
	bu.Call(x.Scatter(ir.I32, 8), "", f.Params[0], f.Params[1], f.Params[2], doubled)
	bu.Ret(g)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	it, _ := interp.New(m, interp.Options{})
	Bind(it)
	base, _ := it.Mem.Alloc(64)
	for i := 0; i < 16; i++ {
		it.Mem.StoreScalar(ir.I32, base+uint64(i)*4, uint64(i*10))
	}
	idx := interp.Zero(ir.Vec(ir.I32, 8))
	mask := interp.Zero(ir.Vec(ir.I32, 8))
	for i := 0; i < 8; i++ {
		idx.SetLaneInt(i, int64(15-i*2)) // strided, descending
		mask.Bits[i] = 0xFFFFFFFF
	}
	mask.Bits[3] = 0 // one inactive lane
	got, tr := it.Run("f",
		interp.PtrValue(ir.Ptr(ir.I32), base), idx, mask)
	if tr != nil {
		t.Fatal(tr)
	}
	for i := 0; i < 8; i++ {
		want := int64((15 - i*2) * 10)
		if i == 3 {
			want = 0
		}
		if got.LaneInt(i) != want {
			t.Fatalf("gather lane %d = %d, want %d", i, got.LaneInt(i), want)
		}
	}
	// Scatter doubled values back; inactive lane 3's slot is untouched.
	for i := 0; i < 8; i++ {
		cell, _ := it.Mem.LoadScalar(ir.I32, base+uint64(15-i*2)*4)
		want := int64((15 - i*2) * 20)
		if i == 3 {
			want = int64((15 - i*2) * 10)
		}
		if int64(int32(cell)) != want {
			t.Fatalf("scatter cell for lane %d = %d, want %d", i, int32(cell), want)
		}
	}
}

func TestMaskTypeWidths(t *testing.T) {
	m := ir.NewModule("mt")
	x := &Intrinsics{ISA: AVX, Mod: m}
	if x.MaskType(ir.F32, 8) != ir.Vec(ir.I32, 8) {
		t.Error("f32 mask type wrong")
	}
	if x.MaskType(ir.F64, 8) != ir.Vec(ir.I64, 8) {
		t.Error("f64 mask type wrong (double-pumped gang)")
	}
}

func TestAVX512Extension(t *testing.T) {
	if AVX512.Lanes(ir.F32) != 16 || AVX512.Lanes(ir.F64) != 8 {
		t.Error("AVX512 lane counts wrong")
	}
	if ByName("AVX512") != AVX512 {
		t.Error("ByName should resolve the extension ISA")
	}
	if got := AVX512.MaskLoadName(ir.F32); got != "llvm.x86.avx512.maskload.ps.512" {
		t.Errorf("AVX512 maskload name = %q", got)
	}
	// The paper's study set stays AVX+SSE; the extension set adds AVX512.
	if len(All) != 2 || len(Extended) != 3 {
		t.Error("ISA sets wrong")
	}
}
