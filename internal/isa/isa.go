// Package isa describes the target vector instruction sets (Intel AVX and
// SSE) at the level the paper needs: vector widths, the inventory of
// masked vector intrinsics (VULFI's "inbuilt list of x86 intrinsics, which
// classifies whether any given intrinsic performs a masked vector
// operation"), and interpreter bindings giving each intrinsic its
// architectural semantics.
//
// Masks follow AVX convention: a mask is a <N x i32> vector and a lane is
// active iff the high bit of its mask element is set (the code generator
// produces such masks by sign-extending <N x i1> predicates).
package isa

import (
	"fmt"

	"vulfi/internal/ir"
)

// ISA describes one target vector instruction set.
type ISA struct {
	// Name is "AVX" or "SSE".
	Name string
	// VectorBits is the vector register width (AVX: 256, SSE: 128).
	VectorBits int
}

// Supported targets. The paper evaluates AVX and SSE4; AVX512 is the
// "easily extended to support multiple vector formats" extension the
// paper anticipates — a 512-bit target whose masked operations are native
// (every memory intrinsic is predicated, as with AVX-512 k-registers).
var (
	AVX    = &ISA{Name: "AVX", VectorBits: 256}
	SSE    = &ISA{Name: "SSE", VectorBits: 128}
	AVX512 = &ISA{Name: "AVX512", VectorBits: 512}
)

// All lists the ISAs of the paper's study, in the paper's order.
var All = []*ISA{AVX, SSE}

// Extended lists every supported ISA including the AVX512 extension.
var Extended = []*ISA{AVX, SSE, AVX512}

// ByName returns the ISA with the given name, or nil.
func ByName(name string) *ISA {
	for _, a := range Extended {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Lanes returns the number of lanes a vector of the given element type
// has on this ISA (the paper's Vl): 8 for 32-bit lanes on AVX, 4 on SSE.
func (a *ISA) Lanes(elem *ir.Type) int {
	return a.VectorBits / elem.ScalarBits()
}

// String returns the ISA name.
func (a *ISA) String() string { return a.Name }

// maskSuffix maps an element type to the x86 intrinsic suffix.
func maskSuffix(elem *ir.Type) string {
	switch elem {
	case ir.F32:
		return "ps"
	case ir.F64:
		return "pd"
	case ir.I32:
		return "d"
	case ir.I64:
		return "q"
	}
	panic("isa: no masked intrinsic suffix for " + elem.String())
}

// MaskLoadName returns the masked-load intrinsic name for elem on this
// ISA. AVX uses the genuine x86 intrinsic names from the paper's Figure 5;
// SSE4 has no masked loads, so (as ISPC does) masked memory operations are
// lowered to a per-lane pseudo-intrinsic, named under llvm.vulfi.sse.*.
func (a *ISA) MaskLoadName(elem *ir.Type) string {
	sfx := maskSuffix(elem)
	switch a {
	case AVX:
		if elem.IsFloat() {
			return fmt.Sprintf("llvm.x86.avx.maskload.%s.256", sfx)
		}
		return fmt.Sprintf("llvm.x86.avx2.maskload.%s.256", sfx)
	case AVX512:
		return fmt.Sprintf("llvm.x86.avx512.maskload.%s.512", sfx)
	}
	return fmt.Sprintf("llvm.vulfi.sse.maskload.%s", sfx)
}

// MaskStoreName returns the masked-store intrinsic name for elem.
func (a *ISA) MaskStoreName(elem *ir.Type) string {
	sfx := maskSuffix(elem)
	switch a {
	case AVX:
		if elem.IsFloat() {
			return fmt.Sprintf("llvm.x86.avx.maskstore.%s.256", sfx)
		}
		return fmt.Sprintf("llvm.x86.avx2.maskstore.%s.256", sfx)
	case AVX512:
		return fmt.Sprintf("llvm.x86.avx512.maskstore.%s.512", sfx)
	}
	return fmt.Sprintf("llvm.vulfi.sse.maskstore.%s", sfx)
}

// MovMskName returns the mask-extraction intrinsic (lane high bits to an
// integer bitmask), used to test "any lane active".
func (a *ISA) MovMskName() string {
	switch a {
	case AVX:
		return "llvm.x86.avx.movmsk.ps.256"
	case AVX512:
		return "llvm.x86.avx512.movmsk.ps.512"
	}
	return "llvm.x86.sse.movmsk.ps"
}

// GatherName returns the masked-gather intrinsic name for elem. AVX2 has
// hardware gathers; SSE lowers gathers per lane. Both are modeled by one
// pseudo-intrinsic family with per-lane semantics.
func (a *ISA) GatherName(elem *ir.Type) string {
	return fmt.Sprintf("llvm.vulfi.%s.gather.%s", lower(a.Name), maskSuffix(elem))
}

// ScatterName returns the masked-scatter intrinsic name for elem.
func (a *ISA) ScatterName(elem *ir.Type) string {
	return fmt.Sprintf("llvm.vulfi.%s.scatter.%s", lower(a.Name), maskSuffix(elem))
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
