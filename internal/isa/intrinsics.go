package isa

import (
	"strings"

	"vulfi/internal/ir"
)

// Intrinsics declares ISA intrinsics inside one module on demand.
type Intrinsics struct {
	ISA *ISA
	Mod *ir.Module
}

// MaskType returns the execution-mask vector type matching a data element
// type at the given lane count: an integer vector of the same lane width,
// where a lane is active iff its high bit is set (AVX convention). The
// lane count is the gang size, which for 64-bit elements means the
// operation is double-pumped over two physical registers.
func (x *Intrinsics) MaskType(elem *ir.Type, lanes int) *ir.Type {
	w := elem.ScalarBits()
	var mi *ir.Type
	switch w {
	case 32:
		mi = ir.I32
	case 64:
		mi = ir.I64
	default:
		panic("isa: unsupported masked element width")
	}
	return ir.Vec(mi, lanes)
}

func (x *Intrinsics) getOrDecl(name string, ret *ir.Type, params ...*ir.Type) *ir.Func {
	if f := x.Mod.Func(name); f != nil {
		return f
	}
	f := ir.NewDecl(name, ret, params...)
	x.Mod.AddFunc(f)
	return f
}

// MaskLoad returns (declaring if needed) the masked vector load intrinsic
// for elem at gang size n: (elem* addr, mask) -> <N x elem>. Inactive
// lanes load zero and perform no memory access.
func (x *Intrinsics) MaskLoad(elem *ir.Type, n int) *ir.Func {
	return x.getOrDecl(x.ISA.MaskLoadName(elem),
		ir.Vec(elem, n), ir.Ptr(elem), x.MaskType(elem, n))
}

// MaskStore returns the masked vector store intrinsic for elem:
// (elem* addr, mask, <N x elem> value) -> void.
func (x *Intrinsics) MaskStore(elem *ir.Type, n int) *ir.Func {
	return x.getOrDecl(x.ISA.MaskStoreName(elem),
		ir.Void, ir.Ptr(elem), x.MaskType(elem, n), ir.Vec(elem, n))
}

// MovMsk returns the mask-extraction intrinsic: (<N x i32> mask) -> i32
// bitmask of lane high bits.
func (x *Intrinsics) MovMsk(n int) *ir.Func {
	return x.getOrDecl(x.ISA.MovMskName(), ir.I32, ir.Vec(ir.I32, n))
}

// Gather returns the masked gather intrinsic for elem:
// (elem* base, <N x i32> index, mask) -> <N x elem>.
func (x *Intrinsics) Gather(elem *ir.Type, n int) *ir.Func {
	return x.getOrDecl(x.ISA.GatherName(elem),
		ir.Vec(elem, n), ir.Ptr(elem), ir.Vec(ir.I32, n), x.MaskType(elem, n))
}

// Scatter returns the masked scatter intrinsic for elem:
// (elem* base, <N x i32> index, mask, <N x elem> value) -> void.
func (x *Intrinsics) Scatter(elem *ir.Type, n int) *ir.Func {
	return x.getOrDecl(x.ISA.ScatterName(elem),
		ir.Void, ir.Ptr(elem), ir.Vec(ir.I32, n), x.MaskType(elem, n), ir.Vec(elem, n))
}

// MathUnary returns an llvm.<op>.<type> unary math intrinsic declaration
// (e.g. llvm.sqrt.v8f32); the interpreter resolves these generically.
func (x *Intrinsics) MathUnary(op string, ty *ir.Type) *ir.Func {
	return x.getOrDecl("llvm."+op+"."+typeSuffix(ty), ty, ty)
}

// MathBinary returns an llvm.<op>.<type> binary math intrinsic.
func (x *Intrinsics) MathBinary(op string, ty *ir.Type) *ir.Func {
	return x.getOrDecl("llvm."+op+"."+typeSuffix(ty), ty, ty, ty)
}

func typeSuffix(ty *ir.Type) string {
	s := ty.Scalar()
	var base string
	switch s {
	case ir.F32:
		base = "f32"
	case ir.F64:
		base = "f64"
	case ir.I32:
		base = "i32"
	case ir.I64:
		base = "i64"
	default:
		panic("isa: no intrinsic type suffix for " + ty.String())
	}
	if ty.IsVector() {
		return "v" + itoa(ty.Len) + base
	}
	return base
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// MaskInfo describes how an intrinsic call interacts with the execution
// mask: which operand carries the mask and, for store-like operations,
// which operand carries the stored value (the paper's fault model targets
// the stored value of a store before the store happens).
type MaskInfo struct {
	// MaskOperand is the operand index of the execution mask.
	MaskOperand int
	// ValueOperand is the index of the stored-value operand for
	// store-like intrinsics, or -1 for load-like ones (whose L-value is
	// the injection target).
	ValueOperand int
	// IsStore marks store-like intrinsics.
	IsStore bool
}

// MaskedOpInfo reports whether the named intrinsic performs a masked
// vector operation, and if so how its operands are laid out. This is the
// inbuilt intrinsic classification list from §II-D of the paper.
func MaskedOpInfo(name string) (MaskInfo, bool) {
	switch {
	case strings.Contains(name, ".maskload."):
		return MaskInfo{MaskOperand: 1, ValueOperand: -1}, true
	case strings.Contains(name, ".maskstore."):
		return MaskInfo{MaskOperand: 1, ValueOperand: 2, IsStore: true}, true
	case strings.Contains(name, ".gather."):
		return MaskInfo{MaskOperand: 2, ValueOperand: -1}, true
	case strings.Contains(name, ".scatter."):
		return MaskInfo{MaskOperand: 2, ValueOperand: 3, IsStore: true}, true
	}
	return MaskInfo{}, false
}
