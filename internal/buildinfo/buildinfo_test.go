package buildinfo

import (
	"strings"
	"testing"
)

// Test binaries are never VCS-stamped, so this exercises the unstamped
// degradation path: Revision is empty (keeping omitempty JSON fields
// deterministic) and String still identifies the module and toolchain.
func TestUnstampedBinary(t *testing.T) {
	if rev := Revision(); rev != "" {
		// Not fatal — a build system could stamp test binaries — but the
		// format contract still holds.
		if strings.ContainsAny(rev, " \t\n") {
			t.Errorf("Revision() = %q contains whitespace", rev)
		}
	}
	s := String()
	if !strings.HasPrefix(s, "vulfi") {
		t.Errorf("String() = %q, want vulfi prefix", s)
	}
	if strings.ContainsRune(s, '\n') {
		t.Errorf("String() = %q must be one line", s)
	}
}
