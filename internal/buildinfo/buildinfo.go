// Package buildinfo stamps build provenance on everything the system
// emits: the -version flag of every CLI, the study JSON export, the
// vulfid API headers and the atlas history store all carry the VCS
// revision (plus a dirty bit) of the binary that produced them, so any
// recorded result is attributable to a commit.
//
// The data comes from debug.ReadBuildInfo, which the Go toolchain
// stamps automatically when a main package is built inside a VCS
// checkout. Test binaries and `go run` outside a checkout carry no VCS
// settings; everything here degrades to empty strings then, and JSON
// fields using Revision are omitempty so deterministic golden files
// stay deterministic.
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// info is the resolved provenance, read once.
type info struct {
	version  string // main module version ("(devel)" for local builds)
	goVers   string
	revision string // full VCS hash, "" when unstamped
	dirty    bool
	time     string // commit time, RFC3339, "" when unstamped
}

var resolve = sync.OnceValue(func() info {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info{}
	}
	in := info{version: bi.Main.Version, goVers: bi.GoVersion}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			in.revision = s.Value
		case "vcs.modified":
			in.dirty = s.Value == "true"
		case "vcs.time":
			in.time = s.Value
		}
	}
	return in
})

// Revision returns the short (12-hex) VCS revision of the running
// binary, suffixed with "-dirty" when the working tree was modified at
// build time. It returns "" for unstamped binaries (tests, builds
// outside a checkout), so callers can use it in omitempty JSON fields.
func Revision() string {
	in := resolve()
	if in.revision == "" {
		return ""
	}
	r := in.revision
	if len(r) > 12 {
		r = r[:12]
	}
	if in.dirty {
		r += "-dirty"
	}
	return r
}

// String returns the one-line human form printed by every CLI's
// -version flag: module version, Go toolchain, and — when stamped —
// the revision and commit time.
func String() string {
	in := resolve()
	s := "vulfi"
	if in.version != "" {
		s += " " + in.version
	}
	if in.goVers != "" {
		s += " " + in.goVers
	}
	if rev := Revision(); rev != "" {
		s += " commit " + rev
		if in.time != "" {
			s += " (" + in.time + ")"
		}
	}
	return s
}
