package server

import (
	"context"
	"errors"
	"runtime"
	"time"

	"vulfi/internal/campaign"
)

// runner is one scheduler goroutine: it pulls jobs off the queue and
// runs them to completion (or interruption) on the campaign worker pool.
// The number of runners bounds how many studies execute concurrently;
// each study parallelizes internally, so the default is 1.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		job, ok := s.q.Pop()
		if !ok {
			return
		}
		s.mx.queueDepth.Set(int64(s.q.Len()))
		if s.baseCtx.Err() != nil {
			// Draining: leave the job queued in its journal (no terminal
			// record), so the next daemon resumes it.
			s.logf("drain: leaving job %s for restart", job.ID)
			continue
		}
		if job.Spec.Shards > 1 {
			s.runShardedJob(job)
		} else {
			s.runJob(job)
		}
	}
}

// runJob executes one job under a cancellable context, checkpointing
// every experiment through the job journal.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.setRunning(cancel) {
		return // cancelled while queued
	}
	s.mx.running.Add(1)
	defer s.mx.running.Add(-1)
	start := time.Now()

	cfg, err := job.Spec.Config()
	if err != nil {
		// Validated at submission; only a spec journaled by a newer
		// daemon version can fail here.
		s.mx.failed.Inc()
		job.finish(StateFailed, err.Error(), nil)
		return
	}
	cfg.Metrics = job.reg
	cfg.OnResult = job.onResult

	// Stall watchdog: the pool reports starts, finishes and interpreter
	// heartbeats; a ticker flags stragglers. The watchdog wrap sits
	// INSIDE the test throttle below, so an injected inter-experiment
	// sleep never reads as a stalled experiment.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	wd := newWatchdog(job.Spec, workers, s.opts)
	job.setWatchdog(wd)
	cfg.OnStart = wd.onStart
	if inject := s.opts.stallInject; inject != nil {
		cfg.OnStart = func(index, worker int) {
			wd.onStart(index, worker)
			inject(index)
		}
	}
	cfg.Heartbeat = wd.heartbeat
	{
		inner := cfg.OnResult
		cfg.OnResult = func(i int, seed int64, r *campaign.ExperimentResult) {
			var site string
			if r.DynSites > 0 {
				site = r.Record.String()
			}
			wd.onFinish(i, r.Wall, site)
			inner(i, seed, r)
		}
	}
	tick := s.opts.WatchdogTick
	if tick <= 0 {
		tick = defaultWatchdogTick
	}
	wdDone := make(chan struct{})
	defer close(wdDone)
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-wdDone:
				return
			case <-t.C:
				for _, r := range wd.check() {
					job.reg.Counter("watchdog.stalls").Inc()
					job.broadcast("stall", r)
					s.logf("watchdog: job %s experiment %d stalled on worker %d (%.1fs > %.1fs, alive=%v)",
						job.ID, r.Index, r.Worker,
						float64(r.ElapsedNS)/1e9, float64(r.ThresholdNS)/1e9,
						r.WorkerAlive)
				}
			}
		}
	}()

	if d := s.opts.expThrottle; d > 0 {
		inner := cfg.OnResult
		cfg.OnResult = func(i int, seed int64, r *campaign.ExperimentResult) {
			inner(i, seed, r)
			time.Sleep(d)
		}
	}
	cfg.Completed = job.completedSnapshot()

	sr, err := campaign.RunStudy(ctx, cfg)
	s.mx.jobWall.Since(start)
	switch {
	case err == nil:
		s.mx.completed.Inc()
		job.finish(StateDone, "", marshalStudy(sr))
		// Shard jobs running on a worker are fragments of someone else's
		// study; only whole studies belong in the history trend store.
		if job.Spec.ShardEnd == 0 {
			s.recordHistory(job, sr)
		}
	case errors.Is(err, context.Canceled) && job.cancelRequested():
		s.mx.cancelled.Inc()
		job.finish(StateCancelled, "", nil)
	case s.baseCtx.Err() != nil:
		// Daemon drain: in-flight experiments finished and were
		// journaled; mark the interruption (non-terminal) and leave the
		// job for the next daemon.
		job.finish(StateInterrupted, "", nil)
		s.logf("drain: job %s interrupted at %d/%d experiments",
			job.ID, job.Status().Done, job.Status().Total)
	default:
		s.mx.failed.Inc()
		job.finish(StateFailed, err.Error(), nil)
	}
}
