package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerProfileEndpoint drives GET /v1/jobs/{id}/profile: a
// profiled job's hot-opcode data, the 409 paths for unprofiled and
// unfinished jobs, and the journal round-trip — after a daemon restart
// the resumed job serves byte-identical profile data, because the
// endpoint reads the journaled study result rather than process state.
func TestServerProfileEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{JournalDir: dir})
	ts := httptest.NewServer(s.Handler())

	get := func(base, path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, raw
	}

	spec := testSpec()
	spec.Profile = true
	resp, raw := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)

	code, first := get(ts.URL, "/v1/jobs/"+st.ID+"/profile")
	if code != http.StatusOK {
		t.Fatalf("profile: %d: %s", code, first)
	}
	body := first
	var payload struct {
		ID  string `json:"id"`
		Hot struct {
			TotalDyn uint64 `json:"total_dyn"`
			Ops      []struct {
				Op    string `json:"op"`
				Count uint64 `json:"count"`
			} `json:"ops"`
			Sites []json.RawMessage `json:"sites"`
		} `json:"hot_profile"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("payload: %v\n%s", err, body)
	}
	if payload.ID != st.ID || payload.Hot.TotalDyn == 0 ||
		len(payload.Hot.Ops) == 0 || len(payload.Hot.Sites) == 0 {
		t.Fatalf("profile payload wrong: %s", body)
	}
	var opSum uint64
	for _, o := range payload.Hot.Ops {
		opSum += o.Count
	}
	if opSum != payload.Hot.TotalDyn {
		t.Fatalf("served op table sums to %d, want total_dyn %d",
			opSum, payload.Hot.TotalDyn)
	}

	// An unprofiled job is a 409 naming the fix.
	resp, raw = postJob(t, ts.URL, testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit unprofiled: %s: %s", resp.Status, raw)
	}
	var st2 Status
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st2.ID, StateDone)
	if code, body = get(ts.URL, "/v1/jobs/"+st2.ID+"/profile"); code != http.StatusConflict ||
		!strings.Contains(string(body), "profile") {
		t.Fatalf("unprofiled job: %d, want 409: %s", code, body)
	}

	// Unknown jobs are 404s.
	if code, _ = get(ts.URL, "/v1/jobs/jnope/profile"); code != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", code)
	}

	// Restart the daemon over the same journal: the profile must
	// round-trip byte-identically through the journaled result.
	ts.Close()
	drain(t, s)
	s2 := newTestServer(t, Options{JournalDir: dir})
	defer drain(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, body2 := get(ts2.URL, "/v1/jobs/"+st.ID+"/profile")
	if code != http.StatusOK {
		t.Fatalf("profile after restart: %d: %s", code, body2)
	}
	if !bytes.Equal(first, body2) {
		t.Fatalf("profile changed across restart:\nbefore: %s\nafter:  %s",
			first, body2)
	}
}
