package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerExplainEndpoint drives GET /v1/jobs/{id}/explain: the
// study-level propagation profile of a traced job, the per-experiment
// deterministic re-explain (?index=N), and the 409/400 error paths.
func TestServerExplainEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, raw
	}

	// A traced job: the finished study carries a propagation profile.
	spec := testSpec()
	spec.Trace = true
	resp, raw := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)

	code, body := get("/v1/jobs/" + st.ID + "/explain")
	if code != http.StatusOK {
		t.Fatalf("explain profile: %d: %s", code, body)
	}
	var profile struct {
		ID          string `json:"id"`
		Propagation struct {
			Traced int `json:"traced"`
		} `json:"propagation"`
	}
	if err := json.Unmarshal(body, &profile); err != nil {
		t.Fatalf("profile payload: %v\n%s", err, body)
	}
	if profile.ID != st.ID || profile.Propagation.Traced == 0 {
		t.Fatalf("profile payload wrong: %s", body)
	}

	// Per-experiment explanation, available for any job state.
	code, body = get("/v1/jobs/" + st.ID + "/explain?index=0")
	if code != http.StatusOK {
		t.Fatalf("explain index 0: %d: %s", code, body)
	}
	var exp struct {
		Index       int             `json:"index"`
		Seed        int64           `json:"seed"`
		Outcome     string          `json:"outcome"`
		Explanation json.RawMessage `json:"explanation"`
	}
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatalf("explanation payload: %v\n%s", err, body)
	}
	if exp.Outcome == "" || len(exp.Explanation) == 0 ||
		string(exp.Explanation) == "null" {
		t.Fatalf("explanation payload wrong: %s", body)
	}

	// Out-of-range and malformed indices are 400s.
	for _, q := range []string{"?index=-1", "?index=9999", "?index=x"} {
		if code, body = get("/v1/jobs/" + st.ID + "/explain" + q); code != http.StatusBadRequest {
			t.Fatalf("explain %s: %d, want 400: %s", q, code, body)
		}
	}

	// An untraced job has no profile (409), but ?index=N still works:
	// the deterministic re-run forces tracing on.
	resp, raw = postJob(t, ts.URL, testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit untraced: %s: %s", resp.Status, raw)
	}
	var st2 Status
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st2.ID, StateDone)
	if code, body = get("/v1/jobs/" + st2.ID + "/explain"); code != http.StatusConflict ||
		!strings.Contains(string(body), "not traced") {
		t.Fatalf("untraced profile: %d, want 409: %s", code, body)
	}
	if code, _ = get("/v1/jobs/" + st2.ID + "/explain?index=1"); code != http.StatusOK {
		t.Fatalf("untraced explain index: %d, want 200", code)
	}

	// Unknown jobs are 404s.
	if code, _ = get("/v1/jobs/jnope/explain"); code != http.StatusNotFound {
		t.Fatalf("missing job explain: %d, want 404", code)
	}
}
