package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"vulfi/internal/api"
)

// coordOptions are the fast-poll coordinator settings every test here
// uses: harvest aggressively so shard completion is noticed in
// milliseconds, not the production 2s.
func coordOptions() Options {
	return Options{Coordinator: true, HarvestEvery: 20 * time.Millisecond}
}

// startWorker brings up a normal (non-coordinator) vulfid behind an
// httptest listener and returns it with its URL. The caller owns both
// shutdowns; tests that kill a worker mid-study close ts first.
func startWorker(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	w := newTestServer(t, opts)
	ts := httptest.NewServer(w.Handler())
	return w, ts
}

// register adds a worker URL to a coordinator's fleet over the real
// endpoint, asserting the round trip.
func register(t *testing.T, coordURL, workerURL string) {
	t.Helper()
	body, _ := json.Marshal(api.WorkerRegistration{URL: workerURL})
	resp, err := http.Post(coordURL+"/v1/workers", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("register %s: %s: %s", workerURL, resp.Status, raw)
	}
}

// stripVolatile decodes a study result and drops the fields that
// legitimately differ between executions of identical work: wall-time
// aggregates (different clocks) and the build stamp. Everything else —
// outcomes, statistics, site tallies — must match exactly.
func stripVolatile(t *testing.T, result json.RawMessage) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(result, &m); err != nil {
		t.Fatalf("result is not a study: %v", err)
	}
	for _, k := range []string{
		"wall_total_ns", "wall_min_ns", "wall_mean_ns", "wall_max_ns", "build",
	} {
		delete(m, k)
	}
	return m
}

// runToDone submits a spec and waits for completion, returning the
// final status.
func runToDone(t *testing.T, s *Server, spec Spec) Status {
	t.Helper()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return waitState(t, s, job.ID, StateDone)
}

// TestCoordinatorShardedStudy is the tentpole invariant end to end: a
// job sharded across two real worker daemons must produce exactly the
// single-node study — statistics, campaign rates and atlas site
// tallies — with only the wall clocks differing. The same coordinator
// runs the unsharded reference, so both paths share one journal dir,
// registry style and code version.
func TestCoordinatorShardedStudy(t *testing.T) {
	c := newTestServer(t, coordOptions())
	defer drain(t, c)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	for i := 0; i < 2; i++ {
		w, wts := startWorker(t, Options{})
		defer drain(t, w)
		defer wts.Close()
		register(t, cts.URL, wts.URL)
	}

	spec := testSpec()
	spec.Atlas = true
	ref := runToDone(t, c, spec)

	sharded := spec
	sharded.Shards = 3
	got := runToDone(t, c, sharded)

	want := stripVolatile(t, ref.Result)
	have := stripVolatile(t, got.Result)
	if !reflect.DeepEqual(have, want) {
		t.Fatalf("sharded study diverged from single-node:\nsharded: %v\nsingle:  %v",
			have, want)
	}
	if _, ok := have["sites"]; !ok {
		t.Fatal("merged study lost its atlas site tallies")
	}

	// The fleet view records the work.
	resp, err := http.Get(cts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet api.WorkersResponse
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if !fleet.Coordinator || len(fleet.Workers) != 2 {
		t.Fatalf("fleet view = %+v, want coordinator with 2 workers", fleet)
	}
	completed := 0
	for _, w := range fleet.Workers {
		completed += w.Completed
	}
	if completed == 0 {
		t.Fatal("no worker completed a shard")
	}
}

// TestCoordinatorLocalFallback: a coordinator with an empty fleet must
// still finish a sharded job — shards degrade to local execution — and
// the merged result still matches single-node.
func TestCoordinatorLocalFallback(t *testing.T) {
	c := newTestServer(t, coordOptions())
	defer drain(t, c)

	spec := testSpec()
	ref := runToDone(t, c, spec)

	sharded := spec
	sharded.Shards = 2
	got := runToDone(t, c, sharded)
	if !reflect.DeepEqual(stripVolatile(t, got.Result), stripVolatile(t, ref.Result)) {
		t.Fatal("locally executed sharded study diverged from single-node")
	}
}

// TestCoordinatorWorkerKilledMidStudy: killing a worker's listener
// while it holds shards must not lose the study — the coordinator
// declares it unreachable after consecutive poll failures, re-plans
// the unharvested remainder, and finishes elsewhere with the same
// result.
func TestCoordinatorWorkerKilledMidStudy(t *testing.T) {
	c := newTestServer(t, coordOptions())
	defer drain(t, c)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	// The doomed worker executes slowly, so it is guaranteed to be
	// mid-shard when its listener dies.
	slow, slowTS := startWorker(t, Options{expThrottle: 30 * time.Millisecond})
	defer drain(t, slow)
	register(t, cts.URL, slowTS.URL)

	spec := testSpec()
	ref := runToDone(t, c, spec)

	sharded := spec
	sharded.Shards = 2
	job, err := c.Submit(sharded)
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker make some progress, then kill its listener.
	deadline := time.Now().Add(time.Minute)
	for c.Job(job.ID).Status().Done == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	slowTS.Close()

	got := waitState(t, c, job.ID, StateDone)
	if !reflect.DeepEqual(stripVolatile(t, got.Result), stripVolatile(t, ref.Result)) {
		t.Fatal("study with a killed worker diverged from single-node")
	}
}

// TestCoordinatorRestartResumesShardedJob: draining a coordinator
// mid-sharded-study and restarting on the same journal must resume the
// job from its harvested triples and finish with the single-node
// result — the crash-safety contract extended to the coordinator role.
func TestCoordinatorRestartResumesShardedJob(t *testing.T) {
	dir := t.TempDir()

	ref := func() Status {
		c := newTestServer(t, coordOptions())
		defer drain(t, c)
		return runToDone(t, c, testSpec())
	}()

	opts := coordOptions()
	opts.JournalDir = dir
	opts.expThrottle = 20 * time.Millisecond // shards run locally, slowly
	c1 := newTestServer(t, opts)

	sharded := testSpec()
	sharded.Shards = 2
	job, err := c1.Submit(sharded)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for c1.Job(job.ID).Status().Done == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	drain(t, c1)

	st := c1.Job(job.ID).Status()
	if terminalState(st.State) {
		t.Fatalf("job finished (%s) before the coordinator drained; raise the throttle", st.State)
	}
	if st.Done == 0 {
		t.Fatal("nothing harvested before drain")
	}

	opts2 := coordOptions()
	opts2.JournalDir = dir
	c2 := newTestServer(t, opts2)
	defer drain(t, c2)
	got := waitState(t, c2, job.ID, StateDone)
	if got.Done != got.Total {
		t.Fatalf("resumed job: %d/%d experiments", got.Done, got.Total)
	}
	if !reflect.DeepEqual(stripVolatile(t, got.Result), stripVolatile(t, ref.Result)) {
		t.Fatal("coordinator-resumed sharded study diverged from single-node")
	}
}

// TestShardSpecRejection: the routing knob is validated at submission
// with descriptive errors — sharding without a coordinator, negative
// counts, combining with an explicit range or with per-execution
// features.
func TestShardSpecRejection(t *testing.T) {
	plain := newTestServer(t, Options{})
	defer drain(t, plain)
	coord := newTestServer(t, coordOptions())
	defer drain(t, coord)

	cases := []struct {
		name   string
		s      *Server
		mutate func(*Spec)
		want   string
	}{
		{"no-coordinator", plain, func(s *Spec) { s.Shards = 2 }, "-coordinator"},
		{"negative", coord, func(s *Spec) { s.Shards = -1 }, "non-negative"},
		{"explicit-range", coord, func(s *Spec) { s.Shards = 2; s.ShardStart = 1; s.ShardEnd = 3 }, "shard_start"},
		{"trace", coord, func(s *Spec) { s.Shards = 2; s.Trace = true }, "trace"},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mutate(&spec)
		_, err := tc.s.Submit(spec)
		if err == nil {
			t.Errorf("%s: submission accepted, want rejection", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Timeline and profile are no longer rejected on sharded jobs: the
	// coordinator harvests and merges them (1.7).
	for _, knob := range []func(*Spec){
		func(s *Spec) { s.Timeline = true },
		func(s *Spec) { s.Profile = true },
	} {
		spec := testSpec()
		spec.Shards = 2
		knob(&spec)
		job, err := coord.Submit(spec)
		if err != nil {
			t.Fatalf("sharded observability submission rejected: %v", err)
		}
		waitState(t, coord, job.ID, StateDone)
	}
}

// TestExperimentsEndpoint: the harvest feed serves checkpointed
// triples with schedule-derived seeds and honors the range filter.
func TestExperimentsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec()
	st := runToDone(t, s, spec)

	get := func(q string) api.ExperimentsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/experiments" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("experiments%s: %s: %s", q, resp.Status, raw)
		}
		var out api.ExperimentsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := get("")
	if len(all.Experiments) != spec.Total() {
		t.Fatalf("full feed has %d triples, want %d", len(all.Experiments), spec.Total())
	}
	for i, rec := range all.Experiments {
		if rec.Index != i {
			t.Fatalf("feed out of order: position %d holds index %d", i, rec.Index)
		}
		if want := experimentSeed(spec.Seed, rec.Index); rec.Seed != want {
			t.Errorf("index %d: seed %d, want %d", rec.Index, rec.Seed, want)
		}
		if rec.Result == nil {
			t.Errorf("index %d: nil result", rec.Index)
		}
	}
	ranged := get("?from=2&to=5")
	if len(ranged.Experiments) != 3 || ranged.Experiments[0].Index != 2 {
		t.Fatalf("ranged feed = %d triples starting at %d, want 3 starting at 2",
			len(ranged.Experiments), ranged.Experiments[0].Index)
	}
}

// TestAuthRequired: with API keys configured, every /v1 route demands
// a key (401 + WWW-Authenticate), all three presentation forms work,
// and the job is attributed to the key's tenant. The dashboard and
// health endpoints stay open.
func TestAuthRequired(t *testing.T) {
	s := newTestServer(t, Options{
		APIKeys: map[string]string{"sesame": "acme", "tops3cret": "globex"},
	})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJob(t, ts.URL, testSpec())
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless submit: %s: %s", resp.Status, raw)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate")
	}
	if resp.Header.Get("Vulfid-Api-Version") != APIVersion {
		t.Error("401 response is missing the API version stamp")
	}

	for _, open := range []string{"/healthz", "/dashboard"} {
		r, err := http.Get(ts.URL + open)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: %s without a key, want 200", open, r.Status)
		}
	}

	body, _ := json.Marshal(testSpec())
	present := map[string]func(*http.Request){
		"bearer": func(r *http.Request) { r.Header.Set("Authorization", "Bearer sesame") },
		"header": func(r *http.Request) { r.Header.Set("X-Api-Key", "sesame") },
		"query":  func(r *http.Request) { r.URL.RawQuery = "key=sesame" },
	}
	for name, decorate := range present {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		decorate(req)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted || err != nil {
			t.Fatalf("%s key: %s (%v)", name, r.Status, err)
		}
		if st.Tenant != "acme" {
			t.Errorf("%s key: job attributed to %q, want acme", name, st.Tenant)
		}
		waitState(t, s, st.ID, StateDone)
	}
}

// TestTenantQuota: a tenant at its quota gets 429 + Retry-After while
// another tenant still submits freely; quota frees up when a job ends.
func TestTenantQuota(t *testing.T) {
	s := newTestServer(t, Options{
		APIKeys:     map[string]string{"a-key": "acme", "g-key": "globex"},
		TenantQuota: 1,
		expThrottle: 20 * time.Millisecond,
	})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(key string) (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(testSpec())
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, raw
	}

	first, raw := submit("a-key")
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s: %s", first.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	over, raw := submit("a-key")
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %s: %s", over.Status, raw)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(raw), "quota") {
		t.Errorf("429 body %q does not mention the quota", raw)
	}

	if other, raw := submit("g-key"); other.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant blocked by acme's quota: %s: %s", other.Status, raw)
	}

	// Once the first job finishes, the tenant can submit again.
	waitState(t, s, st.ID, StateDone)
	again, raw := submit("a-key")
	if again.StatusCode != http.StatusAccepted {
		t.Fatalf("post-completion submit: %s: %s", again.Status, raw)
	}
}

// TestWorkerRegistrationErrors: registering against a non-coordinator
// is a 409 naming the fix; a registration without a URL is a 400. The
// fleet endpoint still answers on plain daemons (coordinator: false).
func TestWorkerRegistrationErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(api.WorkerRegistration{URL: "http://127.0.0.1:1"})
	resp, err := http.Post(ts.URL+"/v1/workers", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(raw), "-coordinator") {
		t.Fatalf("register on plain daemon: %s: %s", resp.Status, raw)
	}

	r, err := http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var fleet api.WorkersResponse
	err = json.NewDecoder(r.Body).Decode(&fleet)
	r.Body.Close()
	if err != nil || fleet.Coordinator || len(fleet.Workers) != 0 {
		t.Fatalf("plain daemon fleet view = %+v (err %v)", fleet, err)
	}

	c := newTestServer(t, coordOptions())
	defer drain(t, c)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()
	resp2, err := http.Post(cts.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"name":"nameless"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw2), "url") {
		t.Fatalf("url-less registration: %s: %s", resp2.Status, raw2)
	}
}
