package server

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/client"
)

// The fleet is the coordinator's worker registry. Liveness reuses the
// experiment watchdog's idiom — a beat counter plus a freshness
// timestamp: every POST /v1/workers (registration and heartbeat are
// the same idempotent call) bumps the worker's beats and LastSeen, and
// a worker whose last beat is older than the TTL stops being
// schedulable until it beats again. A shard failure zeroes LastSeen on
// the spot, so the registration loop doubles as the recovery probe.

// workerEntry is one registered worker plus its scheduling state.
type workerEntry struct {
	api.Worker
	cl   *client.Client
	busy bool
}

type fleet struct {
	mu  sync.Mutex
	ttl time.Duration
	// mk builds the API client for a newly registered worker URL.
	mk    func(url string) *client.Client
	byURL map[string]*workerEntry
}

func newFleet(ttl time.Duration, mk func(url string) *client.Client) *fleet {
	if ttl <= 0 {
		ttl = defaultWorkerTTL
	}
	return &fleet{ttl: ttl, mk: mk, byURL: map[string]*workerEntry{}}
}

// newWorkerID returns a random 12-hex-digit worker id.
func newWorkerID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "wunidentified"
	}
	return "w" + hex.EncodeToString(b[:])
}

// normalizeWorkerURL applies the client package's base normalization so
// "host:port" and "http://host:port/" key the same registry slot.
func normalizeWorkerURL(u string) string {
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

// upsert registers a worker or refreshes its heartbeat, returning the
// resulting fleet view of it.
func (f *fleet) upsert(reg api.WorkerRegistration) api.Worker {
	url := normalizeWorkerURL(reg.URL)
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.byURL[url]
	if w == nil {
		w = &workerEntry{
			Worker: api.Worker{ID: newWorkerID(), URL: url, Registered: time.Now()},
			cl:     f.mk(url),
		}
		f.byURL[url] = w
	}
	if reg.Name != "" {
		w.Name = reg.Name
	}
	w.Beats++
	w.LastSeen = time.Now()
	return f.view(w)
}

// alive reports whether the worker's last beat is within the TTL
// (mu held).
func (f *fleet) alive(w *workerEntry) bool {
	return !w.LastSeen.IsZero() && time.Since(w.LastSeen) < f.ttl
}

// view renders the wire form of a worker (mu held).
func (f *fleet) view(w *workerEntry) api.Worker {
	v := w.Worker
	if f.alive(w) {
		v.State = "alive"
	} else {
		v.State = "lost"
	}
	v.Busy = w.busy
	return v
}

// name returns a worker's display name — the registered name when it
// has one, the URL otherwise. This is the key harvest checkpoints,
// fleet events and the /v1/fleet aggregation all share, so a worker's
// throughput history stays attached to it across re-registrations.
// Locked because upsert rewrites Name on every heartbeat.
func (f *fleet) name(w *workerEntry) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w.Name != "" {
		return w.Name
	}
	return w.URL
}

// list returns the fleet view, sorted by URL for stable output.
func (f *fleet) list() []api.Worker {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]api.Worker, 0, len(f.byURL))
	for _, w := range f.byURL {
		out = append(out, f.view(w))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].URL < out[k].URL })
	return out
}

// acquire leases the least-loaded alive, idle worker for one shard
// (nil when none is available right now — the scheduler falls back or
// waits for a heartbeat).
func (f *fleet) acquire() *workerEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best *workerEntry
	for _, w := range f.byURL {
		if w.busy || !f.alive(w) {
			continue
		}
		if best == nil || w.Assigned < best.Assigned ||
			(w.Assigned == best.Assigned && w.URL < best.URL) {
			best = w
		}
	}
	if best != nil {
		best.busy = true
		best.Assigned++
	}
	return best
}

// release returns a leased worker. A failure marks it lost — it stops
// being schedulable until its heartbeat loop revives it — so one dead
// worker can't keep absorbing reassigned shards.
func (f *fleet) release(w *workerEntry, failed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w.busy = false
	if failed {
		w.Failures++
		w.LastSeen = time.Time{}
	} else {
		w.Completed++
	}
}
