package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"vulfi/internal/campaign"
	"vulfi/internal/core"
	"vulfi/internal/interp"
)

func testSpec() Spec {
	return Spec{
		Benchmark: "VectorCopy", ISA: "AVX", Category: "control",
		Scale: "test", Experiments: 5, Campaigns: 2, Seed: 1,
	}
}

func sampleResult() *campaign.ExperimentResult {
	return &campaign.ExperimentResult{
		Outcome: campaign.OutcomeSDC, Detected: true,
		Record:   core.InjectionRecord{LaneSiteID: 7, Bit: 3, Width: 32, Before: 1, After: 9},
		DynSites: 42, GoldenDynInstrs: 1234, InputLabel: "n=13",
		Wall: 5 * time.Millisecond, FaultyWall: 2 * time.Millisecond,
		Trap: &interp.Trap{Kind: interp.TrapBudget, Msg: "budget"},
		Hang: true,
	}
}

// TestJournalRoundTrip: every record kind must survive write → replay
// bit-for-bit, including the full experiment result (the resume path
// depends on it).
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	j.Submit("j0001", spec)
	want := sampleResult()
	j.Experiment(0, 101, want)
	j.Experiment(3, 104, sampleResult())
	j.State(StateRunning, "", nil)
	j.State(StateDone, "", []byte(`{"sdc":1}`))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rp.ID != "j0001" || rp.Spec != spec {
		t.Fatalf("replayed identity %q %+v", rp.ID, rp.Spec)
	}
	if !rp.Terminal() || rp.State != StateDone || string(rp.Study) != `{"sdc":1}` {
		t.Fatalf("replayed state %q study %s", rp.State, rp.Study)
	}
	if len(rp.Completed) != 2 {
		t.Fatalf("replayed %d experiments, want 2", len(rp.Completed))
	}
	got := rp.Completed[0]
	if got.Outcome != want.Outcome || got.Record != want.Record ||
		got.DynSites != want.DynSites || got.Wall != want.Wall ||
		got.GoldenDynInstrs != want.GoldenDynInstrs ||
		got.InputLabel != want.InputLabel || !got.Hang ||
		got.Trap == nil || got.Trap.Kind != want.Trap.Kind {
		t.Fatalf("experiment result did not round-trip:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestJournalTruncatedTail: a crash can cut the final line mid-write;
// replay must keep everything before it and flag the truncation.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Submit("j0002", testSpec())
	j.Experiment(1, 102, sampleResult())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"exp","i":2,"se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rp, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated: %v", err)
	}
	if !rp.Truncated {
		t.Fatal("truncation not reported")
	}
	if len(rp.Completed) != 1 || rp.Completed[1] == nil {
		t.Fatalf("intact prefix lost: %+v", rp.Completed)
	}
	if rp.Terminal() {
		t.Fatal("truncated journal must resume, not terminate")
	}
}

// TestJournalCorruptMiddle: damage that is not a crash-truncated tail is
// an error, not something to silently skip.
func TestJournalCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Submit("j0003", testSpec())
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("{corrupt}\n")
	f.WriteString(`{"t":"state","state":"running"}` + "\n")
	f.Close()
	if _, err := ReplayJournal(path); err == nil {
		t.Fatal("mid-journal corruption must fail replay")
	}
}

// TestScanJournalsSkipsDamaged: one bad journal must not block a daemon
// restart; the damaged callback reports it.
func TestScanJournalsSkipsDamaged(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalPath(dir, "jgood"), false)
	if err != nil {
		t.Fatal(err)
	}
	j.Submit("jgood", testSpec())
	j.Close()
	// No submit record at all: damaged.
	if err := os.WriteFile(JournalPath(dir, "jbad"),
		[]byte(`{"t":"state","state":"running"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var damaged []string
	rps, err := ScanJournals(dir, func(path string, _ error) {
		damaged = append(damaged, filepath.Base(path))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rps) != 1 || rps[0].ID != "jgood" {
		t.Fatalf("scan returned %d replays", len(rps))
	}
	if len(damaged) != 1 || damaged[0] != "jbad.jsonl" {
		t.Fatalf("damaged callback got %v", damaged)
	}
}
