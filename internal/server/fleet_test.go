package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/obs"
	"vulfi/internal/profile"
)

// registerNamed registers a worker with a display name, so the fleet
// observatory tests can assert lane-group and metrics naming.
func registerNamed(t *testing.T, coordURL, workerURL, name string) {
	t.Helper()
	body, _ := json.Marshal(api.WorkerRegistration{URL: workerURL, Name: name})
	resp, err := http.Post(coordURL+"/v1/workers", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("register %s: %s: %s", workerURL, resp.Status, raw)
	}
}

// decodeObservability pulls the timeline and hot profile out of a
// finished job's study result.
func decodeObservability(t *testing.T, result json.RawMessage) (*obs.Timeline, *profile.Profile) {
	t.Helper()
	var out struct {
		Timeline   *obs.Timeline    `json:"timeline"`
		HotProfile *profile.Profile `json:"hot_profile"`
	}
	if err := json.Unmarshal(result, &out); err != nil {
		t.Fatalf("study result: %v", err)
	}
	return out.Timeline, out.HotProfile
}

// stripObservability is stripVolatile plus the observability artifacts
// themselves — used when comparing a fleet-merged study's *triple*
// statistics against single-node (the artifacts are compared
// field-by-field separately, since their wall-clock content legitimately
// differs).
func stripObservability(t *testing.T, result json.RawMessage) map[string]any {
	t.Helper()
	m := stripVolatile(t, result)
	delete(m, "timeline")
	delete(m, "hot_profile")
	return m
}

// profileCountsEqual compares the exactly-composing fields of a merged
// fleet profile against the single-node reference: grand totals,
// per-opcode counts and vector tallies, and the hot-site ranking. This
// is the acceptance criterion "merged hot-profile per-opcode totals
// equal single-node" — wall-time fields are excluded by contract.
func profileCountsEqual(t *testing.T, got, want *profile.Profile) {
	t.Helper()
	if got.Runs != want.Runs || got.Experiments != want.Experiments {
		t.Errorf("runs/experiments = %d/%d, want %d/%d",
			got.Runs, got.Experiments, want.Runs, want.Experiments)
	}
	if got.TotalDyn != want.TotalDyn {
		t.Errorf("TotalDyn = %d, want %d", got.TotalDyn, want.TotalDyn)
	}
	if got.TotalVector != want.TotalVector {
		t.Errorf("TotalVector = %d, want %d", got.TotalVector, want.TotalVector)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("op table: %d rows, want %d", len(got.Ops), len(want.Ops))
	}
	for i := range got.Ops {
		g, w := got.Ops[i], want.Ops[i]
		if g.Op != w.Op || g.Count != w.Count || g.Vector != w.Vector {
			t.Errorf("op row %d: %s count=%d vector=%d, want %s count=%d vector=%d",
				i, g.Op, g.Count, g.Vector, w.Op, w.Count, w.Vector)
		}
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("site table: %d rows, want %d", len(got.Sites), len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i].Site != want.Sites[i].Site || got.Sites[i].Count != want.Sites[i].Count {
			t.Errorf("site row %d: %s count=%d, want %s count=%d",
				i, got.Sites[i].Site, got.Sites[i].Count,
				want.Sites[i].Site, want.Sites[i].Count)
		}
	}
}

// checkProfileInternalConsistency pins the DynInstrs accounting
// identity on a merged profile: the op table, the uncapped stacks and
// (when uncapped) the site ranking all sum to TotalDyn. This is the
// invariant that must survive even adversity runs where some shard's
// observability was lost with its worker.
func checkProfileInternalConsistency(t *testing.T, p *profile.Profile) {
	t.Helper()
	if p == nil {
		t.Fatal("no merged profile")
	}
	var opSum, stackSum uint64
	for _, o := range p.Ops {
		opSum += o.Count
	}
	for _, s := range p.Stacks {
		stackSum += s.Count
	}
	if opSum != p.TotalDyn {
		t.Errorf("op counts sum to %d, want TotalDyn %d", opSum, p.TotalDyn)
	}
	if stackSum != p.TotalDyn {
		t.Errorf("stack counts sum to %d, want TotalDyn %d", stackSum, p.TotalDyn)
	}
}

// checkFleetTimeline asserts the merged timeline's fleet shape: lane 0
// is the coordinator lane, every expected worker owns a lane group, and
// the span set forms one tree joinable by ID — each shard's study root
// hanging off the coordinator dispatch span its traceparent named.
func checkFleetTimeline(t *testing.T, tl *obs.Timeline, workers ...string) {
	t.Helper()
	if tl == nil {
		t.Fatal("no merged timeline")
	}
	if len(tl.Lanes) == 0 || tl.Lanes[0] != "coordinator" {
		t.Fatalf("lane 0 = %v, want coordinator", tl.Lanes)
	}
	for _, w := range workers {
		found := false
		for _, lane := range tl.Lanes[1:] {
			if strings.HasPrefix(lane, w+" ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no lane group for worker %q in %v", w, tl.Lanes)
		}
	}
	parent := map[string]bool{}
	for _, s := range tl.Spans {
		parent[s.ID] = true
	}
	shardRoots := 0
	for _, s := range tl.Spans {
		if s.Parent != "" && !parent[s.Parent] {
			t.Errorf("span %s (%s) has unmerged parent %s", s.ID, s.Name, s.Parent)
		}
		if strings.HasPrefix(s.Name, "study[") {
			shardRoots++
			if s.Parent == "" {
				t.Errorf("shard root %s (%s) is unparented — traceparent not propagated",
					s.ID, s.Name)
			}
		}
	}
	if shardRoots == 0 {
		t.Error("merged timeline has no shard study roots")
	}
}

// TestFleetObservatoryEndToEnd is the tentpole acceptance path: a job
// sharded across two named workers with timeline and profile on
// produces (a) the same triple statistics as single-node, (b) a merged
// hot profile whose count fields equal the single-node profile, (c) one
// fleet-wide trace with a coordinator lane plus one lane group per
// worker, exportable as Perfetto trace-event JSON, and (d) a /v1/fleet
// view crediting both workers with harvested work.
func TestFleetObservatoryEndToEnd(t *testing.T) {
	c := newTestServer(t, coordOptions())
	defer drain(t, c)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	workers := []string{"w1", "w2"}
	for _, name := range workers {
		w, wts := startWorker(t, Options{})
		defer drain(t, w)
		defer wts.Close()
		registerNamed(t, cts.URL, wts.URL, name)
	}

	spec := testSpec()
	spec.Timeline = true
	spec.Profile = true
	ref := runToDone(t, c, spec)
	refTL, refProf := decodeObservability(t, ref.Result)
	if refTL == nil || refProf == nil {
		t.Fatal("single-node reference lost its observability artifacts")
	}

	sharded := spec
	sharded.Shards = 3
	got := runToDone(t, c, sharded)

	// (a) Triple statistics are byte-identical to single-node once the
	// volatile and observability fields are stripped.
	if !reflect.DeepEqual(stripObservability(t, got.Result), stripObservability(t, ref.Result)) {
		t.Fatal("sharded observability study diverged from single-node on triple statistics")
	}

	gotTL, gotProf := decodeObservability(t, got.Result)

	// (b) The merged profile reproduces single-node count-for-count.
	profileCountsEqual(t, gotProf, refProf)
	checkProfileInternalConsistency(t, gotProf)

	// (c) The merged timeline is fleet-shaped and joinable.
	checkFleetTimeline(t, gotTL, workers...)
	if gotTL.TraceID != refTL.TraceID {
		t.Errorf("fleet trace ID %s, want the deterministic single-node identity %s",
			gotTL.TraceID, refTL.TraceID)
	}

	// The HTTP surface serves both artifacts: profile as JSON, timeline
	// as Perfetto trace-event JSON with the fleet lanes as thread names.
	resp, err := http.Get(cts.URL + "/v1/jobs/" + got.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	var profBody struct {
		HotProfile *profile.Profile `json:"hot_profile"`
	}
	err = json.NewDecoder(resp.Body).Decode(&profBody)
	resp.Body.Close()
	if err != nil || profBody.HotProfile == nil {
		t.Fatalf("GET /profile on sharded job: %v (profile %v)", err, profBody.HotProfile)
	}
	profileCountsEqual(t, profBody.HotProfile, refProf)

	resp, err = http.Get(cts.URL + "/v1/jobs/" + got.ID + "/timeline?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tf)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	laneNames := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if n, ok := ev.Args["name"].(string); ok {
				laneNames[n] = true
			}
		}
	}
	if !laneNames["coordinator"] {
		t.Errorf("trace export lanes %v lack the coordinator lane", laneNames)
	}

	// (d) /v1/fleet credits both workers.
	resp, err = http.Get(cts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fleet api.FleetResponse
	err = json.NewDecoder(resp.Body).Decode(&fleet)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.Coordinator {
		t.Error("/v1/fleet does not identify the coordinator")
	}
	byName := map[string]api.FleetWorkerStats{}
	for _, w := range fleet.Workers {
		byName[w.Worker] = w
	}
	for _, name := range workers {
		st, ok := byName[name]
		if !ok {
			t.Errorf("/v1/fleet is missing worker %q: %+v", name, fleet.Workers)
			continue
		}
		if st.Harvested == 0 {
			t.Errorf("worker %q credited with 0 harvested experiments", name)
		}
		if st.ExpPerSec <= 0 {
			t.Errorf("worker %q has exp/s %f, want > 0", name, st.ExpPerSec)
		}
	}

	// A plain worker daemon answers /v1/fleet too, as a non-coordinator.
	w, wts := startWorker(t, Options{})
	defer drain(t, w)
	defer wts.Close()
	resp, err = http.Get(wts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var plain api.FleetResponse
	err = json.NewDecoder(resp.Body).Decode(&plain)
	resp.Body.Close()
	if err != nil || plain.Coordinator {
		t.Errorf("plain daemon /v1/fleet = %+v (err %v), want coordinator:false", plain, err)
	}
}

// TestFleetEventsAndCounters: killing a worker mid-sharded-study emits
// "fleet" SSE events (worker_lost, then reassigned for the re-planned
// remainder), bumps the coordinator telemetry counters, and lands
// incident checkpoints in the /v1/fleet aggregation — while the merged
// observability artifacts stay well-formed with the totals invariant
// intact (the dead worker's artifacts are gone; its triples are not).
func TestFleetEventsAndCounters(t *testing.T) {
	c := newTestServer(t, coordOptions())
	defer drain(t, c)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	slow, slowTS := startWorker(t, Options{expThrottle: 30 * time.Millisecond})
	defer drain(t, slow)
	registerNamed(t, cts.URL, slowTS.URL, "doomed")

	sharded := testSpec()
	sharded.Shards = 2
	sharded.Timeline = true
	sharded.Profile = true
	job, err := c.Submit(sharded)
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := c.Job(job.ID).Subscribe()
	defer cancel()

	deadline := time.Now().Add(time.Minute)
	for c.Job(job.ID).Status().Done == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	slowTS.Close()

	// The subscription channel closes at the terminal state; collect the
	// fleet events seen on the way there.
	var fleetEvents []api.FleetEvent
	for ev := range events {
		if ev.Type != "fleet" {
			continue
		}
		var fe api.FleetEvent
		if err := json.Unmarshal(ev.Data, &fe); err != nil {
			t.Fatalf("fleet event payload: %v", err)
		}
		fleetEvents = append(fleetEvents, fe)
	}
	got := waitState(t, c, job.ID, StateDone)

	kinds := map[string]int{}
	for _, fe := range fleetEvents {
		kinds[fe.Type]++
		if fe.Worker != "doomed" {
			t.Errorf("fleet event %+v names worker %q, want doomed", fe, fe.Worker)
		}
	}
	if kinds["worker_lost"] == 0 {
		t.Errorf("no worker_lost fleet event (saw %v)", kinds)
	}
	if kinds["reassigned"] == 0 {
		t.Errorf("no reassigned fleet event (saw %v)", kinds)
	}

	if n := c.Registry().Counter("coordinator.workers_lost").Value(); n == 0 {
		t.Error("coordinator.workers_lost counter not bumped")
	}
	if n := c.Registry().Counter("coordinator.reassigned").Value(); n == 0 {
		t.Error("coordinator.reassigned counter not bumped")
	}

	fleet := c.fleetStats(time.Now())
	if fleet.WorkersLost == 0 || fleet.Reassigned == 0 {
		t.Errorf("/v1/fleet incident totals = %d lost / %d reassigned, want both > 0",
			fleet.WorkersLost, fleet.Reassigned)
	}

	// The merged artifacts survived the loss: the dead worker's timeline
	// and profile are unharvestable, but what merged is well-formed and
	// internally consistent.
	tl, prof := decodeObservability(t, got.Result)
	checkFleetTimeline(t, tl)
	checkProfileInternalConsistency(t, prof)
	if prof.TotalDyn == 0 {
		t.Error("merged profile counted nothing")
	}
}

// TestFleetHarvestJournalRoundTrip: harvest checkpoints — including the
// per-worker observed throughput data (n triples over ns) and fleet
// incident markers — and harvested shard observability survive journal
// write → replay, which is what lets a restarted coordinator keep its
// fleet metrics history.
func TestFleetHarvestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Submit("j0004", testSpec())
	at := time.Date(2026, 8, 9, 10, 11, 12, 0, time.UTC)
	checkpoints := []HarvestCheckpoint{
		{Worker: "w1", N: 7, NS: int64(350 * time.Millisecond), At: at},
		{Worker: "w2", N: 3, NS: int64(120 * time.Millisecond), At: at.Add(time.Second)},
		{Worker: "w1", Event: "worker_lost", At: at.Add(2 * time.Second)},
		{Worker: "w1", Event: "reassigned", At: at.Add(2 * time.Second)},
	}
	for _, c := range checkpoints {
		j.Harvest(c)
	}
	tl := &obs.Timeline{
		TraceID: "aa", Root: "bb", Start: at, WallNS: 5,
		Workers: 1, Lanes: []string{"control"},
		Spans: []obs.Span{{Name: "study[0,3)", ID: "bb", StartNS: 0, DurNS: 5}},
	}
	hp := &profile.Profile{Runs: 3, TotalDyn: 42,
		Ops: []profile.OpRow{{Op: "add", Count: 42}}}
	j.Obs("w2", tl, hp)
	j.Obs("w1", nil, hp) // profile-only job: timeline side absent
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp.Harvests, checkpoints) {
		t.Fatalf("harvest checkpoints did not round-trip:\nwant %+v\ngot  %+v",
			checkpoints, rp.Harvests)
	}
	if len(rp.ShardObs) != 2 {
		t.Fatalf("replayed %d shard obs records, want 2", len(rp.ShardObs))
	}
	if o := rp.ShardObs[0]; o.Worker != "w2" || o.Timeline == nil ||
		o.Timeline.Root != "bb" || o.Profile == nil || o.Profile.TotalDyn != 42 {
		t.Fatalf("shard obs 0 did not round-trip: %+v", o)
	}
	if o := rp.ShardObs[1]; o.Worker != "w1" || o.Timeline != nil || o.Profile == nil {
		t.Fatalf("shard obs 1 did not round-trip: %+v", o)
	}
}

// TestCoordinatorRestartKeepsFleetObservability: draining a coordinator
// mid-sharded-study (timeline and profile on) and restarting on the
// same journal must finish with identical triple statistics, well-formed
// merged observability artifacts, and the pre-drain fleet metrics
// history replayed from the journal. Duplicate triples and replayed
// observability after the restart must not corrupt the merge (the
// addShardObs root-dedupe path).
func TestCoordinatorRestartKeepsFleetObservability(t *testing.T) {
	dir := t.TempDir()

	ref := func() Status {
		c := newTestServer(t, coordOptions())
		defer drain(t, c)
		spec := testSpec()
		spec.Timeline = true
		spec.Profile = true
		return runToDone(t, c, spec)
	}()

	opts := coordOptions()
	opts.JournalDir = dir
	opts.expThrottle = 20 * time.Millisecond // shards run locally, slowly
	c1 := newTestServer(t, opts)

	sharded := testSpec()
	sharded.Shards = 2
	sharded.Timeline = true
	sharded.Profile = true
	job, err := c1.Submit(sharded)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for c1.Job(job.ID).Status().Done == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	drain(t, c1)
	if terminalState(c1.Job(job.ID).Status().State) {
		t.Fatal("job finished before the coordinator drained; raise the throttle")
	}

	opts2 := coordOptions()
	opts2.JournalDir = dir
	c2 := newTestServer(t, opts2)
	defer drain(t, c2)
	got := waitState(t, c2, job.ID, StateDone)

	if !reflect.DeepEqual(stripObservability(t, got.Result), stripObservability(t, ref.Result)) {
		t.Fatal("restarted sharded observability study diverged from single-node on triple statistics")
	}
	tl, prof := decodeObservability(t, got.Result)
	checkFleetTimeline(t, tl)
	checkProfileInternalConsistency(t, prof)

	// No shard timeline was merged twice: study roots are unique.
	roots := map[string]int{}
	for _, s := range tl.Spans {
		if strings.HasPrefix(s.Name, "study[") {
			roots[s.ID]++
		}
	}
	for id, n := range roots {
		if n > 1 {
			t.Errorf("shard root %s merged %d times", id, n)
		}
	}

	// The restarted coordinator kept (and extended) the fleet metrics
	// history: the journaled checkpoints credit the local lane.
	fleet := c2.fleetStats(time.Now())
	found := false
	for _, w := range fleet.Workers {
		if w.Worker == "local" && w.Harvested > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("restarted /v1/fleet lost the harvest history: %+v", fleet.Workers)
	}
}

// TestFleetStatsAggregation: the /v1/fleet aggregation arithmetic —
// per-worker triples-per-second from journaled checkpoints, harvest
// lag against now, incident totals — on a job constructed directly.
func TestFleetStatsAggregation(t *testing.T) {
	s := newTestServer(t, coordOptions())
	defer drain(t, s)

	job, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)

	now := time.Now()
	j := s.Job(job.ID)
	j.noteHarvest(HarvestCheckpoint{Worker: "w1", N: 30, NS: int64(2 * time.Second), At: now.Add(-10 * time.Second)})
	j.noteHarvest(HarvestCheckpoint{Worker: "w1", N: 10, NS: int64(2 * time.Second), At: now.Add(-4 * time.Second)})
	j.noteHarvest(HarvestCheckpoint{Worker: "w1", Event: "worker_lost"})
	j.noteHarvest(HarvestCheckpoint{Worker: "w1", Event: "reassigned"})

	fleet := s.fleetStats(now)
	if fleet.WorkersLost != 1 || fleet.Reassigned != 1 {
		t.Errorf("incidents = %d lost / %d reassigned, want 1/1",
			fleet.WorkersLost, fleet.Reassigned)
	}
	var w1 *api.FleetWorkerStats
	for i := range fleet.Workers {
		if fleet.Workers[i].Worker == "w1" {
			w1 = &fleet.Workers[i]
		}
	}
	if w1 == nil {
		t.Fatalf("checkpoint-only worker w1 missing from %+v", fleet.Workers)
	}
	if w1.Harvested != 40 {
		t.Errorf("Harvested = %d, want 40", w1.Harvested)
	}
	// 40 triples over 4s of observed worker wall time.
	if w1.ExpPerSec < 9.9 || w1.ExpPerSec > 10.1 {
		t.Errorf("ExpPerSec = %f, want ~10", w1.ExpPerSec)
	}
	if lag := time.Duration(w1.HarvestLagNS); lag < 3*time.Second || lag > 5*time.Second {
		t.Errorf("HarvestLagNS = %s, want ~4s", lag)
	}
}
