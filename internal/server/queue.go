package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by TryPush when the queue is at capacity;
// the HTTP layer maps it to 429 + Retry-After (backpressure, not
// failure — the client owns the retry).
var ErrQueueFull = errors.New("job queue full")

// jobQueue is a bounded FIFO of pending jobs. The capacity bounds HTTP
// submissions only: Push (used for journal-resumed jobs at startup)
// always succeeds, so a restart can never drop checkpointed work no
// matter how small the queue is.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	cap    int
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	if capacity <= 0 {
		capacity = 64
	}
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// TryPush enqueues a job, failing with ErrQueueFull at capacity.
func (q *jobQueue) TryPush(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("job queue closed")
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// Push enqueues unconditionally (resumed jobs bypass the capacity).
func (q *jobQueue) Push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, j)
	q.cond.Signal()
}

// Pop blocks until a job is available or the queue closes (ok=false).
func (q *jobQueue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

// Len returns the number of queued jobs.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes all blocked Pops; queued items drain normally first.
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
