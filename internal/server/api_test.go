package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAPIVersionHeader: every /v1 response — success or error, any
// route — carries the schema version header.
func TestAPIVersionHeader(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/jobs", "/v1/jobs/nope", "/no/such/route"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Vulfid-Api-Version"); got != APIVersion {
			t.Fatalf("GET %s: Vulfid-Api-Version = %q, want %q", path, got, APIVersion)
		}
	}
}

// TestSubmitUnknownFieldRejected: a typo'd spec field must fail loudly
// with a 400 that names the offending field and quotes the accepted
// schema — never silently run a default study.
func TestSubmitUnknownFieldRejected(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"VectorCopy","isa":"AVX","category":"control","inputz":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s, want 400", resp.Status)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "inputz") {
		t.Fatalf("error %q does not name the unknown field", body.Error)
	}
	if !strings.Contains(body.Error, "inputs") || !strings.Contains(body.Error, "benchmark") {
		t.Fatalf("error %q does not quote the accepted schema", body.Error)
	}
}

// TestSpecFields: the reflected schema matches the documented wire
// fields, so the 400 message can never drift from the struct.
func TestSpecFields(t *testing.T) {
	got := SpecFields()
	want := []string{
		"benchmark", "isa", "category", "scale", "experiments", "campaigns",
		"seed", "workers", "inputs", "detectors", "detector_every_iteration",
		"broadcast_detector", "mask_loop_detector", "whole_register_sites",
		"mask_oblivious", "trace", "atlas", "profile", "backend",
		"timeline", "trace_parent", "shards", "shard_start", "shard_end",
	}
	if len(got) != len(want) {
		t.Fatalf("SpecFields() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SpecFields()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSubmitUnknownBackendRejected: a bogus backend name must fail the
// submit with a descriptive 400 naming the accepted spellings, not
// silently fall back to the tree-walker.
func TestSubmitUnknownBackendRejected(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec()
	spec.Backend = "llvm"
	resp, raw := postJob(t, ts.URL, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend: %s, want 400", resp.Status)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, `"llvm"`) {
		t.Fatalf("error %q does not quote the bad backend", body.Error)
	}
	if !strings.Contains(body.Error, "tree") || !strings.Contains(body.Error, "vm") {
		t.Fatalf("error %q does not list the accepted backends", body.Error)
	}
}

// TestBackendRoundTrip: the backend knob must survive submit → status →
// journal → resumed daemon. The exported study JSON deliberately omits
// the backend (the backends are observably equivalent), so the
// round-trip is pinned on the spec echo and the rehydrated journal.
func TestBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{JournalDir: dir})
	ts := httptest.NewServer(s1.Handler())

	spec := testSpec()
	spec.Backend = "vm"
	resp, raw := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Spec.Backend != "vm" {
		t.Fatalf("status echoed backend = %q, want %q", st.Spec.Backend, "vm")
	}
	waitState(t, s1, st.ID, StateDone)
	ts.Close()
	drain(t, s1)

	// A fresh daemon over the same journal must rehydrate the knob.
	s2 := newTestServer(t, Options{JournalDir: dir})
	defer drain(t, s2)
	job := s2.Job(st.ID)
	if job == nil {
		t.Fatalf("job %s not resumed from journal", st.ID)
	}
	if got := job.Status().Spec.Backend; got != "vm" {
		t.Fatalf("resumed spec backend = %q, want %q", got, "vm")
	}
}

// TestInputsRoundTrip: the inputs knob must survive submit → status →
// journal → resumed daemon, and the finished study must echo it.
func TestInputsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{JournalDir: dir})
	ts := httptest.NewServer(s1.Handler())

	spec := testSpec()
	spec.Inputs = 2
	resp, raw := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Spec.Inputs != 2 {
		t.Fatalf("status echoed inputs = %d, want 2", st.Spec.Inputs)
	}
	final := waitState(t, s1, st.ID, StateDone)
	var study struct {
		Inputs int `json:"inputs"`
	}
	if err := json.Unmarshal(final.Result, &study); err != nil {
		t.Fatal(err)
	}
	if study.Inputs != 2 {
		t.Fatalf("exported study inputs = %d, want 2", study.Inputs)
	}
	ts.Close()
	drain(t, s1)

	// A fresh daemon over the same journal must rehydrate the knob.
	s2 := newTestServer(t, Options{JournalDir: dir})
	defer drain(t, s2)
	job := s2.Job(st.ID)
	if job == nil {
		t.Fatalf("job %s not resumed from journal", st.ID)
	}
	if got := job.Status().Spec.Inputs; got != 2 {
		t.Fatalf("resumed spec inputs = %d, want 2", got)
	}
}
