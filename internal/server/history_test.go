package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"vulfi/internal/atlas"
)

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("GET %s: %v\nbody: %s", url, err, raw)
		}
	}
	return resp
}

// TestHistoryEndpoint: a finished atlas job lands in the history store
// and is served by GET /v1/history — site tallies stripped by default,
// included with ?sites=1, the tail selected with ?limit=N.
func TestHistoryEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{JournalDir: dir})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec()
	spec.Atlas = true
	resp, raw := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)

	var body struct {
		Entries []atlas.Entry `json:"entries"`
	}
	getJSON(t, ts.URL+"/v1/history", &body)
	if len(body.Entries) != 1 {
		t.Fatalf("history has %d entries, want 1", len(body.Entries))
	}
	e := body.Entries[0]
	if e.Job != st.ID {
		t.Fatalf("entry job = %q, want %q", e.Job, st.ID)
	}
	if e.Benchmark != "VectorCopy" || e.ISA != "AVX" || e.Category != "control" {
		t.Fatalf("entry cell = %s/%s/%s", e.Benchmark, e.ISA, e.Category)
	}
	if e.Total != spec.Total() {
		t.Fatalf("entry total = %d, want %d", e.Total, spec.Total())
	}
	if len(e.Sites) != 0 {
		t.Fatalf("sites present without ?sites=1: %d rows", len(e.Sites))
	}

	body.Entries = nil
	getJSON(t, ts.URL+"/v1/history?sites=1", &body)
	if len(body.Entries) != 1 || len(body.Entries[0].Sites) == 0 {
		t.Fatalf("?sites=1 did not include site tallies: %+v", body.Entries)
	}

	// The store itself (what `vulfi diff` reads) must carry the tallies.
	stored, err := atlas.ReadHistory(filepath.Join(dir, "history.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || len(stored[0].Sites) == 0 {
		t.Fatalf("on-disk history missing site tallies: %+v", stored)
	}
	if got := s.Registry().Counter("atlas.history.appends").Value(); got != 1 {
		t.Fatalf("atlas.history.appends = %d, want 1", got)
	}

	body.Entries = []atlas.Entry{{Job: "sentinel"}}
	getJSON(t, ts.URL+"/v1/history?limit=0", &body)
	if len(body.Entries) != 0 {
		t.Fatalf("?limit=0 returned %d entries, want 0", len(body.Entries))
	}
	body.Entries = nil
	getJSON(t, ts.URL+"/v1/history?limit=5", &body)
	if len(body.Entries) != 1 {
		t.Fatalf("?limit=5 returned %d entries, want 1", len(body.Entries))
	}
	if resp := getJSON(t, ts.URL+"/v1/history?limit=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?limit=-1: %s, want 400", resp.Status)
	}
	if resp := getJSON(t, ts.URL+"/v1/history?limit=x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?limit=x: %s, want 400", resp.Status)
	}
}

// TestHistoryDisabled: HistoryPath "none" turns the store off — no file,
// and the endpoint answers 404.
func TestHistoryDisabled(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{JournalDir: dir, HistoryPath: "none"})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := getJSON(t, ts.URL+"/v1/history", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled history: %s, want 404", resp.Status)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "history.jsonl")); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "history.jsonl")); len(m) != 0 {
		t.Fatalf("history file created despite HistoryPath=none: %v", m)
	}
}

// TestDashboardAndBuildHeader: GET /dashboard serves the embedded
// single-file page, and every response carries Vulfid-Build.
func TestDashboardAndBuildHeader(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /dashboard: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q, want text/html", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(page)
	for _, want := range []string{"vulfid dashboard", "/v1/jobs", "/v1/history", "EventSource"} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard HTML missing %q", want)
		}
	}
	// Self-contained: no external scripts, styles or hosts.
	for _, banned := range []string{"http://", "https://", "src=\"", "<link"} {
		if strings.Contains(html, banned) {
			t.Fatalf("dashboard HTML references external asset: %q", banned)
		}
	}

	for _, path := range []string{"/dashboard", "/v1/jobs", "/no/such/route"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Vulfid-Build") == "" {
			t.Fatalf("GET %s: missing Vulfid-Build header", path)
		}
	}
}
