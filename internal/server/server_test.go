package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"vulfi/internal/campaign"
)

// quiet discards server logs during tests.
func quiet(string, ...any) {}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.JournalDir == "" {
		opts.JournalDir = t.TempDir()
	}
	if opts.Logf == nil {
		opts.Logf = quiet
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitState polls until the job reaches want (or any terminal state,
// reported as a failure if it is not want).
func waitState(t *testing.T, s *Server, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		job := s.Job(id)
		if job == nil {
			t.Fatalf("job %s disappeared", id)
		}
		st := job.Status()
		if st.State == want {
			return st
		}
		if terminalState(st.State) {
			t.Fatalf("job %s reached %q (error %q), want %q",
				id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return Status{}
}

func postJob(t *testing.T, url string, spec Spec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestServerEndToEnd drives the whole HTTP surface on one tiny study:
// submit (202), status polling to "done", result payload, job listing,
// per-job and process metrics, SSE replay of a finished job, and spec
// validation (400).
func TestServerEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJob(t, ts.URL, testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total != testSpec().Total() {
		t.Fatalf("submit returned %+v", st)
	}

	final := waitState(t, s, st.ID, StateDone)
	if final.Done != final.Total || len(final.Result) == 0 {
		t.Fatalf("done job: %d/%d experiments, result %d bytes",
			final.Done, final.Total, len(final.Result))
	}
	var study struct {
		SDC, Benign, Crash int
		Campaigns          int `json:"campaigns"`
	}
	if err := json.Unmarshal(final.Result, &study); err != nil {
		t.Fatalf("result is not a study: %v", err)
	}
	if study.SDC+study.Benign+study.Crash != final.Total {
		t.Fatalf("study outcomes %d+%d+%d don't cover %d experiments",
			study.SDC, study.Benign, study.Crash, final.Total)
	}

	// GET one job over HTTP agrees with the in-process status.
	hresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var got Status
	if err := json.Unmarshal(hraw, &got); err != nil {
		t.Fatal(err)
	}
	// The wire form is re-indented, so compare the payloads semantically.
	var wantStudy, gotStudy any
	if err := json.Unmarshal(final.Result, &wantStudy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.Result, &gotStudy); err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || !reflect.DeepEqual(wantStudy, gotStudy) {
		t.Fatalf("HTTP status %q disagrees with job state", got.State)
	}

	// Listings stay light: no result payload.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	lraw, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if !strings.Contains(string(lraw), st.ID) ||
		strings.Contains(string(lraw), `"result"`) {
		t.Fatalf("listing: %s", lraw)
	}

	// Metrics: the process registry counts the job, the per-job registry
	// carries campaign phase instruments.
	for path, want := range map[string]string{
		"/metrics":                       "server_jobs_submitted_total 1",
		"/v1/jobs/" + st.ID + "/metrics": "campaign_experiments_total",
		"/v1/jobs/" + st.ID + "/events":  `"state":"done"`,
		"/healthz":                       "ok",
	} {
		mresp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		mraw, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if mresp.StatusCode != http.StatusOK || !strings.Contains(string(mraw), want) {
			t.Fatalf("GET %s: %s\n%s", path, mresp.Status, mraw)
		}
	}

	// Validation failures are 400s, not jobs.
	for _, bad := range []Spec{
		{Benchmark: "NoSuchBenchmark", ISA: "AVX", Category: "control"},
		{Benchmark: "VectorCopy", ISA: "AVX", Category: "sideways"},
	} {
		resp, _ := postJob(t, ts.URL, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %+v accepted: %s", bad, resp.Status)
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/jnope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %s", resp.Status)
	} else {
		resp.Body.Close()
	}
}

// TestServerBackpressureAndCancel: with one runner and a single queue
// slot, a long job occupies the runner, a second fills the queue, and a
// third submission is rejected with 429 + Retry-After. Cancelling then
// works on both a queued and a running job.
func TestServerBackpressureAndCancel(t *testing.T) {
	s := newTestServer(t, Options{QueueSize: 1, Runners: 1})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Slow enough that it is still running when we cancel it below.
	slow := Spec{
		Benchmark: "Blackscholes", ISA: "AVX", Category: "control",
		Experiments: 100, Campaigns: 20, Seed: 7, Workers: 1,
	}
	_, raw := postJob(t, ts.URL, slow)
	var running Status
	if err := json.Unmarshal(raw, &running); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)

	_, raw = postJob(t, ts.URL, testSpec())
	var queued Status
	if err := json.Unmarshal(raw, &queued); err != nil {
		t.Fatal(err)
	}

	resp, raw := postJob(t, ts.URL, testSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %s: %s, want 429", resp.Status, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	del := func(id string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Queued job: cancelled on the spot, never runs.
	if resp := del(queued.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: %s", resp.Status)
	}
	if st := waitState(t, s, queued.ID, StateCancelled); st.Done != 0 {
		t.Fatalf("cancelled-while-queued job ran %d experiments", st.Done)
	}
	// Running job: cooperative, reaches cancelled without finishing.
	if resp := del(running.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: %s", resp.Status)
	}
	if st := waitState(t, s, running.ID, StateCancelled); st.Done >= st.Total {
		t.Fatalf("cancelled job ran all %d experiments", st.Total)
	}
	// Cancelling a terminal job conflicts.
	if resp := del(running.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %s, want 409", resp.Status)
	}
}

// stripWall removes the wall-clock fields — the only part of a study
// export that legitimately differs between an uninterrupted run and an
// interrupted-then-resumed one.
func stripWall(t *testing.T, study json.RawMessage) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(study, &m); err != nil {
		t.Fatalf("bad study payload: %v", err)
	}
	for _, k := range []string{
		"wall_total_ns", "wall_min_ns", "wall_mean_ns", "wall_max_ns",
	} {
		delete(m, k)
	}
	return m
}

// TestServerDrainResumeIdentical is the acceptance criterion in-process:
// interrupt a daemon mid-study (graceful drain, as SIGTERM triggers), a
// fresh daemon over the same journal directory must resume the job from
// its checkpoints, and the final StudyResult — SDC/Benign/Crash counts,
// per-campaign rates and confidence interval — must be identical to the
// same spec run uninterrupted.
func TestServerDrainResumeIdentical(t *testing.T) {
	spec := Spec{
		Benchmark: "Blackscholes", ISA: "AVX", Category: "control",
		Experiments: 10, Campaigns: 20, Seed: 99, Workers: 1,
	}

	// Uninterrupted reference, straight on the campaign layer.
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	refCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ref, err := campaign.RunStudy(refCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := stripWall(t, marshalStudy(ref))

	dir := t.TempDir()
	// Throttle the first daemon's experiments so the 200-experiment
	// study reliably outlasts the drain below regardless of machine
	// speed (10ms × 200 ≈ 2s floor; the drain lands within tens of ms).
	// The resumed daemon runs unthrottled.
	s1 := newTestServer(t, Options{JournalDir: dir, expThrottle: 10 * time.Millisecond})
	job, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Tail live progress and pull the plug after a few checkpoints.
	ch, unsub := job.Subscribe()
	experiments := 0
	deadline := time.After(2 * time.Minute)
	for experiments < 1 {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("job finished before it could be interrupted; grow the spec")
			}
			if ev.Type == "experiment" {
				experiments++
			}
		case <-deadline:
			t.Fatal("no experiment events")
		}
	}
	unsub()
	drain(t, s1)

	st := job.Status()
	if terminalState(st.State) {
		t.Fatalf("drained mid-run job is %q, want non-terminal", st.State)
	}
	if st.Done == 0 || st.Done >= st.Total {
		t.Fatalf("interrupted at %d/%d experiments, want strictly between",
			st.Done, st.Total)
	}
	t.Logf("interrupted at %d/%d experiments", st.Done, st.Total)

	// Second daemon lifetime over the same journal directory.
	s2 := newTestServer(t, Options{JournalDir: dir})
	defer drain(t, s2)
	resumed := s2.Job(job.ID)
	if resumed == nil {
		t.Fatal("job not found after restart")
	}
	if st := resumed.Status(); !st.Resumed || st.Done == 0 {
		t.Fatalf("restarted job %+v not marked resumed with checkpoints", st)
	}
	final := waitState(t, s2, job.ID, StateDone)
	if final.Done != final.Total {
		t.Fatalf("resumed job finished at %d/%d", final.Done, final.Total)
	}
	got := stripWall(t, final.Result)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed study differs from uninterrupted run:\nwant %v\ngot  %v",
			want, got)
	}
}

// TestServerResumeSkipsTerminalJobs: finished jobs survive a restart for
// status queries but are not re-queued or re-run.
func TestServerResumeSkipsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{JournalDir: dir})
	job, err := s1.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s1, job.ID, StateDone)
	drain(t, s1)

	s2 := newTestServer(t, Options{JournalDir: dir})
	defer drain(t, s2)
	kept := s2.Job(job.ID)
	if kept == nil {
		t.Fatal("terminal job forgotten after restart")
	}
	st := kept.Status()
	if st.State != StateDone || !bytes.Equal(st.Result, final.Result) {
		t.Fatalf("terminal job replayed as %q with different result", st.State)
	}
	if got := s2.mx.resumed.Value(); got != 0 {
		t.Fatalf("terminal job counted as resumed (%d)", got)
	}
}
