package server

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// watchdog defaults: an experiment is declared stalled when its age
// exceeds max(StallFactor × rolling P99 wall, StallMin), once at least
// StallMinSamples experiments have completed (before that the P99 is
// noise). The ticker re-evaluates inflight experiments every
// WatchdogTick.
const (
	defaultStallFactor     = 4
	defaultStallMinSamples = 8
	defaultWatchdogTick    = time.Second
	defaultStallMin        = 250 * time.Millisecond
)

// StallReport describes one straggler the watchdog flagged: an
// experiment whose wall time exceeded the stall threshold. It carries a
// self-contained repro bundle — everything needed to replay exactly
// that experiment offline — and is back-filled with the injected site
// and final state if the experiment eventually completes (Completed
// false with WorkerAlive true usually means a slow experiment, not a
// wedged worker).
type StallReport struct {
	// Index is the study-order experiment index; Seed its deterministic
	// fault seed (campaign.Config.ExperimentSeed(Index)).
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Worker is the pool lane that ran the experiment.
	Worker int `json:"worker"`
	// ElapsedNS is the experiment's age when flagged; P99NS and
	// ThresholdNS snapshot the rolling P99 and the derived threshold at
	// that moment.
	ElapsedNS   int64 `json:"elapsed_ns"`
	P99NS       int64 `json:"p99_ns"`
	ThresholdNS int64 `json:"threshold_ns"`
	// WorkerAlive reports whether the worker's interpreter heartbeat
	// advanced during the tick that flagged the stall — distinguishing a
	// long-running experiment (alive) from a wedged worker (not).
	WorkerAlive bool `json:"worker_alive"`
	// Completed flips to true — and Site/WallNS are back-filled — if the
	// straggler eventually finishes.
	Completed bool   `json:"completed"`
	Site      string `json:"site,omitempty"`
	WallNS    int64  `json:"wall_ns,omitempty"`
	// Repro replays exactly this experiment.
	Repro ReproBundle `json:"repro"`
}

// ReproBundle is a self-contained recipe for replaying one flagged
// experiment: the job's spec plus the experiment index (the seed is
// derived, but carried for eyeballing). Command is a copy-pasteable
// vulfi invocation that runs the single experiment deterministically.
type ReproBundle struct {
	Spec    Spec   `json:"spec"`
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Command string `json:"command"`
}

// inflight tracks one experiment currently executing on a worker.
type inflight struct {
	index   int
	worker  int
	started time.Time
	// beatAtFlag snapshots the worker's heartbeat counter when the
	// experiment was last inspected, so the next tick can tell whether
	// the interpreter advanced.
	beatSeen uint64
}

// watchdog watches one running job for stalled experiments. The
// campaign pool reports experiment starts (OnStart), completions
// (wrapped around OnResult) and interpreter liveness (Heartbeat); a
// ticker goroutine owned by the scheduler calls check() periodically.
//
// All exported methods are safe for concurrent use. The heartbeat path
// is a single atomic increment — it is called from inside the
// interpreter's budget check (every phi block), so anything heavier
// would show up as study overhead.
type watchdog struct {
	spec  Spec
	total int

	// beats[w] counts interpreter budget-check pulses on worker w.
	beats []atomic.Uint64

	mu       sync.Mutex
	inflight map[int]*inflight // keyed by experiment index
	walls    []int64           // ring of completed experiment walls (ns)
	next     int               // ring write cursor
	filled   bool              // ring has wrapped
	samples  int               // completions observed
	flagged  map[int]int       // index -> position in reports
	reports  []*StallReport

	stalls atomic.Int64 // total stalls flagged (watchdog.stalls metric)

	factor     float64
	minSamples int
	stallMin   time.Duration
	now        func() time.Time
}

// wallRing bounds the rolling-percentile window: big enough that one
// P99 estimate is stable, small enough that copy+sort per tick is
// negligible next to an experiment's wall time.
const wallRing = 512

func newWatchdog(spec Spec, workers int, opts Options) *watchdog {
	w := &watchdog{
		spec:       spec,
		total:      spec.Total(),
		beats:      make([]atomic.Uint64, workers),
		inflight:   make(map[int]*inflight),
		walls:      make([]int64, wallRing),
		flagged:    make(map[int]int),
		factor:     opts.StallFactor,
		minSamples: opts.StallMinSamples,
		stallMin:   opts.StallMin,
		now:        time.Now,
	}
	if w.factor <= 0 {
		w.factor = defaultStallFactor
	}
	if w.minSamples <= 0 {
		w.minSamples = defaultStallMinSamples
	}
	if w.stallMin <= 0 {
		w.stallMin = defaultStallMin
	}
	return w
}

// onStart records that experiment index began executing on worker.
func (w *watchdog) onStart(index, worker int) {
	start := w.now()
	var seen uint64
	if worker >= 0 && worker < len(w.beats) {
		seen = w.beats[worker].Load()
	}
	w.mu.Lock()
	w.inflight[index] = &inflight{
		index: index, worker: worker, started: start, beatSeen: seen,
	}
	w.mu.Unlock()
}

// onFinish records that experiment index completed with the given wall
// time and (when site attribution is available) injected site. If the
// experiment had been flagged as a straggler its report is back-filled.
func (w *watchdog) onFinish(index int, wall time.Duration, site string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.inflight, index)
	w.walls[w.next] = int64(wall)
	w.next = (w.next + 1) % len(w.walls)
	if w.next == 0 {
		w.filled = true
	}
	w.samples++
	if pos, ok := w.flagged[index]; ok {
		r := w.reports[pos]
		r.Completed = true
		r.Site = site
		r.WallNS = int64(wall)
	}
}

// heartbeat is the campaign.Config.Heartbeat hook: one atomic add per
// interpreter budget check.
func (w *watchdog) heartbeat(worker int) {
	if worker >= 0 && worker < len(w.beats) {
		w.beats[worker].Add(1)
	}
}

// p99Locked returns the rolling P99 of completed experiment walls.
// Caller holds w.mu.
func (w *watchdog) p99Locked() int64 {
	n := w.next
	if w.filled {
		n = len(w.walls)
	}
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, w.walls[:n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(n*99)/100]
}

// check inspects every inflight experiment and flags new stragglers,
// returning the freshly flagged reports (empty most ticks). The
// scheduler broadcasts each as an SSE "stall" event and bumps the
// job's watchdog.stalls counter.
func (w *watchdog) check() []*StallReport {
	now := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.samples < w.minSamples {
		return nil
	}
	p99 := w.p99Locked()
	threshold := int64(float64(p99) * w.factor)
	if min := int64(w.stallMin); threshold < min {
		threshold = min
	}
	var fresh []*StallReport
	for idx, in := range w.inflight {
		if _, done := w.flagged[idx]; done {
			continue
		}
		elapsed := now.Sub(in.started).Nanoseconds()
		if elapsed <= threshold {
			continue
		}
		alive := false
		if in.worker >= 0 && in.worker < len(w.beats) {
			cur := w.beats[in.worker].Load()
			alive = cur != in.beatSeen
			in.beatSeen = cur
		}
		seed := experimentSeed(w.spec.Seed, idx)
		r := &StallReport{
			Index: idx, Seed: seed, Worker: in.worker,
			ElapsedNS: elapsed, P99NS: p99, ThresholdNS: threshold,
			WorkerAlive: alive,
			Repro:       reproBundle(w.spec, idx, seed),
		}
		w.flagged[idx] = len(w.reports)
		w.reports = append(w.reports, r)
		w.stalls.Add(1)
		fresh = append(fresh, r)
	}
	return fresh
}

// snapshot returns a copy of every stall report so far plus the
// per-worker heartbeat counters, for GET /v1/jobs/{id}/timeline.
func (w *watchdog) snapshot() ([]StallReport, []uint64) {
	beats := make([]uint64, len(w.beats))
	for i := range w.beats {
		beats[i] = w.beats[i].Load()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]StallReport, len(w.reports))
	for i, r := range w.reports {
		out[i] = *r
	}
	return out, beats
}

// experimentSeed mirrors campaign.Config.ExperimentSeed so a repro
// bundle is self-describing without a resolved Config (which needs the
// benchmark registry). The formula is pinned by the campaign tests.
func experimentSeed(studySeed int64, i int) int64 {
	return studySeed + int64(i)*0x9E3779B9 + 1
}

// reproBundle builds the self-contained replay recipe for one
// experiment. The authoritative form is Spec+Index: resolve the spec to
// a campaign.Config and run the experiment at that schedule index —
// both the fault seed and the input-pool draw are index-derived, so the
// replay is exact. Command is the same recipe as a copy-pasteable CLI
// invocation (`vulfi -explain N` runs exactly one schedule index).
func reproBundle(spec Spec, index int, seed int64) ReproBundle {
	cmd := "vulfi -benchmark " + spec.Benchmark +
		" -isa " + spec.ISA +
		" -category " + spec.Category
	if strings.EqualFold(spec.Scale, "large") {
		cmd += " -large"
	}
	if spec.Experiments > 0 {
		cmd += " -experiments " + strconv.Itoa(spec.Experiments)
	}
	if spec.Campaigns > 0 {
		cmd += " -campaigns " + strconv.Itoa(spec.Campaigns)
	}
	cmd += " -seed " + strconv.FormatInt(spec.Seed, 10)
	if spec.Inputs > 0 {
		cmd += " -inputs " + strconv.Itoa(spec.Inputs)
	}
	if spec.Backend != "" {
		cmd += " -backend " + spec.Backend
	}
	if spec.Detectors {
		cmd += " -detectors"
	}
	cmd += " -explain " + strconv.Itoa(index)
	return ReproBundle{Spec: spec, Index: index, Seed: seed, Command: cmd}
}
