package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/atlas"
	"vulfi/internal/buildinfo"
	"vulfi/internal/campaign"
	"vulfi/internal/client"
	"vulfi/internal/obs"
	"vulfi/internal/telemetry"
)

// Options configure a campaign server.
type Options struct {
	// JournalDir holds one JSONL journal per job (created if missing).
	JournalDir string
	// QueueSize bounds pending jobs; submissions beyond it get 429 +
	// Retry-After. Default 64.
	QueueSize int
	// Runners is the number of concurrently executing jobs (each one
	// parallelizes internally on the campaign worker pool). Default 1.
	Runners int
	// Fsync makes the journal fdatasync every record (power-loss
	// durability; process-crash durability needs no fsync).
	Fsync bool
	// Registry receives server-level telemetry (queue depth, job
	// counters, job wall-time histogram) and backs /metrics. Default: a
	// fresh registry.
	Registry *telemetry.Registry
	// Logf logs operational messages (default log.Printf).
	Logf func(format string, args ...any)
	// HistoryPath is the study-history JSONL file every completed job is
	// appended to (GET /v1/history, the dashboard trends, `vulfi diff`).
	// Empty defaults to JournalDir/history.jsonl; "none" disables the
	// store.
	HistoryPath string

	// KeepAlive is the idle interval after which the SSE stream
	// (GET /v1/jobs/{id}/events) emits a ": keep-alive" comment, so
	// proxies and NAT boxes don't reap quiet connections while a long
	// experiment runs. Default 15s; negative disables.
	KeepAlive time.Duration

	// Watchdog thresholds: an inflight experiment is flagged as stalled
	// when its age exceeds max(StallFactor × rolling-P99 experiment
	// wall, StallMin), evaluated every WatchdogTick once StallMinSamples
	// experiments have completed. Zero values take the defaults
	// (4×, 250ms, 1s, 8).
	StallFactor     float64
	StallMin        time.Duration
	WatchdogTick    time.Duration
	StallMinSamples int

	// Coordinator enables the shard scheduler: jobs submitted with
	// "shards": N > 1 are split into experiment-index ranges and
	// dispatched to the registered worker fleet (POST /v1/workers)
	// instead of the local campaign pool. Without it such submissions
	// are rejected with a descriptive 400.
	Coordinator bool
	// FleetKey is the API key the coordinator presents to its workers
	// (set it when the workers run with -api-key themselves).
	FleetKey string
	// WorkerTTL is how stale a worker's last heartbeat may be before it
	// stops being schedulable. Default 15s.
	WorkerTTL time.Duration
	// HarvestEvery is the coordinator's shard poll interval: how often
	// each worker is asked for status and newly checkpointed
	// experiments. Default 2s.
	HarvestEvery time.Duration

	// APIKeys maps accepted API keys to tenant labels. Non-empty turns
	// authentication on: every /v1 request must present a configured key
	// (Authorization: Bearer, X-Api-Key, or ?key=) or gets a 401.
	APIKeys map[string]string
	// TenantQuota bounds each tenant's queued-plus-running jobs;
	// submissions beyond it get 429 + Retry-After. Zero means unlimited.
	TenantQuota int

	// expThrottle pauses after every checkpointed experiment. Test-only:
	// it pins a study's minimum wall time so drain/cancel tests can
	// interrupt mid-run deterministically on arbitrarily fast machines.
	expThrottle time.Duration
	// stallInject runs at the start of each experiment, on the worker
	// goroutine. Test-only: sleeping inside it for a chosen index forges
	// a straggler so watchdog tests are deterministic.
	stallInject func(index int)
}

// serverMetrics caches the server's instruments.
type serverMetrics struct {
	submitted, rejected, completed, failed, cancelled, resumed *telemetry.Counter
	queueDepth, running                                        *telemetry.Gauge
	jobWall                                                    *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		submitted:  reg.Counter("server.jobs.submitted"),
		rejected:   reg.Counter("server.jobs.rejected"),
		completed:  reg.Counter("server.jobs.completed"),
		failed:     reg.Counter("server.jobs.failed"),
		cancelled:  reg.Counter("server.jobs.cancelled"),
		resumed:    reg.Counter("server.jobs.resumed"),
		queueDepth: reg.Gauge("server.queue.depth"),
		running:    reg.Gauge("server.jobs.running"),
		jobWall:    reg.Histogram("server.job.wall"),
	}
}

// Server is the vulfid campaign service: HTTP API + bounded queue +
// scheduler + journal-backed resume.
type Server struct {
	opts Options
	reg  *telemetry.Registry
	mx   serverMetrics
	q    *jobQueue

	// history is the append handle on the study-history store (nil when
	// disabled); historyPath is its resolved location.
	history     *atlas.History
	historyPath string

	// fleet is the worker registry (nil unless Options.Coordinator).
	fleet *fleet

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	draining bool
}

// New builds a server, replays the journal directory (re-queueing every
// unfinished job with its completed experiments as a checkpoint), and
// starts the runner pool. Call Drain to stop it.
func New(opts Options) (*Server, error) {
	if opts.JournalDir == "" {
		return nil, fmt.Errorf("server: JournalDir is required")
	}
	if err := os.MkdirAll(opts.JournalDir, 0o755); err != nil {
		return nil, err
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Runners <= 0 {
		opts.Runners = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts: opts, reg: opts.Registry, mx: newServerMetrics(opts.Registry),
		q: newJobQueue(opts.QueueSize), baseCtx: ctx, stop: cancel,
		jobs: map[string]*Job{},
	}
	if opts.Coordinator {
		s.fleet = newFleet(opts.WorkerTTL, func(url string) *client.Client {
			return client.New(url, client.WithAPIKey(opts.FleetKey))
		})
	}
	switch opts.HistoryPath {
	case "none":
	default:
		s.historyPath = opts.HistoryPath
		if s.historyPath == "" {
			s.historyPath = filepath.Join(opts.JournalDir, "history.jsonl")
		}
		h, err := atlas.OpenHistory(s.historyPath)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("history: %w", err)
		}
		s.history = h
	}
	if err := s.resume(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < opts.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) { s.opts.Logf(format, args...) }

// Registry returns the server-level telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// resume replays every journal under JournalDir: terminal jobs are kept
// for status queries; unfinished ones are re-queued with their
// checkpoints, ahead of any new submissions.
func (s *Server) resume() error {
	replays, err := ScanJournals(s.opts.JournalDir, func(path string, err error) {
		s.logf("resume: skipping damaged journal %s: %v", path, err)
	})
	if err != nil {
		return err
	}
	// Deterministic re-queue order regardless of directory iteration.
	sort.Slice(replays, func(i, k int) bool { return replays[i].ID < replays[k].ID })
	for _, rp := range replays {
		path := JournalPath(s.opts.JournalDir, rp.ID)
		var journal *Journal
		if !rp.Terminal() {
			if journal, err = OpenJournal(path, s.opts.Fsync); err != nil {
				s.logf("resume: cannot reopen journal %s: %v", path, err)
				continue
			}
		}
		job := resumedJob(rp, journal)
		s.mu.Lock()
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.mu.Unlock()
		if !rp.Terminal() {
			s.mx.resumed.Inc()
			s.q.Push(job)
			s.logf("resume: job %s re-queued with %d/%d experiments checkpointed",
				job.ID, len(rp.Completed), job.Spec.Total())
		}
	}
	s.mx.queueDepth.Set(int64(s.q.Len()))
	return nil
}

// Drain gracefully stops the server: no new submissions, cooperative
// cancellation of running jobs (in-flight experiments finish and are
// journaled), queued jobs left journaled for the next daemon. It waits
// for the runners until ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stop()
	s.q.Close()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Close journals of anything not finished (queued or interrupted).
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, job := range s.jobs {
		if job.journal != nil {
			_ = job.journal.Close()
		}
	}
	if s.history != nil {
		_ = s.history.Close()
	}
	return nil
}

// recordHistory appends a finished job's study to the history store.
func (s *Server) recordHistory(job *Job, sr *campaign.StudyResult) {
	if s.history == nil {
		return
	}
	e := atlas.NewEntry(sr, time.Now())
	e.Job = job.ID
	if err := s.history.Append(e); err != nil {
		s.reg.Counter("atlas.history.errors").Inc()
		s.logf("history: append for job %s failed: %v", job.ID, err)
		return
	}
	s.reg.Counter("atlas.history.appends").Inc()
}

// newJobID returns a random 12-hex-digit job id.
func newJobID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// ErrTenantQuota rejects a submission because the authenticated tenant
// already has Options.TenantQuota jobs queued or running (HTTP 429).
var ErrTenantQuota = errors.New("tenant job quota exceeded")

// checkShardSpec validates the coordinator-routing knobs of a spec —
// the ones Spec.Config deliberately ignores because they never reach a
// campaign.
func (s *Server) checkShardSpec(spec Spec) error {
	switch {
	case spec.Shards < 0:
		return fmt.Errorf("shards must be non-negative (got %d)", spec.Shards)
	case spec.Shards <= 1:
		return nil
	case !s.opts.Coordinator:
		return fmt.Errorf("shards: %d requires a coordinator; this vulfid runs jobs locally (start it with -coordinator)", spec.Shards)
	case spec.ShardStart != 0 || spec.ShardEnd != 0:
		return fmt.Errorf("shards cannot be combined with an explicit shard_start/shard_end range")
	case spec.Trace:
		// Timeline and profile are fleet-mergeable (the coordinator
		// harvests each shard's artifacts and serves the merge); the
		// divergence trace is not — its rings attach to fresh local
		// executions, and a half-trace would be a lie.
		return fmt.Errorf("sharded jobs do not support trace (divergence rings attach to fresh local executions; timeline and profile are supported)")
	}
	return nil
}

// activeJobs counts a tenant's queued-plus-running jobs.
func (s *Server) activeJobs(tenant string) int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.Tenant() == tenant {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	n := 0
	for _, j := range jobs {
		switch j.State() {
		case StateQueued, StateRunning:
			n++
		}
	}
	return n
}

// Submit validates a spec, journals it and enqueues the job. It is the
// programmatic form of POST /v1/jobs (ErrQueueFull → backpressure).
func (s *Server) Submit(spec Spec) (*Job, error) {
	return s.SubmitAs(spec, "")
}

// SubmitAs is Submit attributed to an authenticated tenant: the job
// carries the tenant label (journaled, so quotas survive restarts) and
// counts against Options.TenantQuota (ErrTenantQuota → 429).
func (s *Server) SubmitAs(spec Spec, tenant string) (*Job, error) {
	if err := s.checkShardSpec(spec); err != nil {
		return nil, err
	}
	if _, err := spec.Config(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return nil, fmt.Errorf("server is draining")
	}
	if q := s.opts.TenantQuota; q > 0 && s.activeJobs(tenant) >= q {
		s.mx.rejected.Inc()
		return nil, fmt.Errorf("tenant %q has %d active jobs: %w", tenant, q, ErrTenantQuota)
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	journal, err := OpenJournal(JournalPath(s.opts.JournalDir, id), s.opts.Fsync)
	if err != nil {
		return nil, err
	}
	job := newJob(id, spec, journal)
	job.tenant = tenant
	journal.SubmitAs(id, spec, tenant)
	if err := journal.Err(); err != nil {
		_ = journal.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := s.q.TryPush(job); err != nil {
		_ = journal.Close()
		_ = os.Remove(JournalPath(s.opts.JournalDir, id))
		s.mx.rejected.Inc()
		return nil, err
	}
	s.mu.Lock()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.mx.submitted.Inc()
	s.mx.queueDepth.Set(int64(s.q.Len()))
	return job, nil
}

// Job looks a job up by id.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// retryAfterSeconds estimates when queue capacity will free up: the mean
// completed-job wall time (floor 1s), defaulting to 15s before any job
// has finished.
func (s *Server) retryAfterSeconds() int {
	snap := s.mx.jobWall.Snapshot()
	if snap.Count == 0 {
		return 15
	}
	mean := time.Duration(int64(snap.Sum) / int64(snap.Count))
	secs := int(mean / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Handler returns the full HTTP API: the /v1 job routes plus the
// telemetry endpoints (/metrics, /debug/vars, /debug/pprof) for the
// server registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /v1/jobs/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/history", s.handleHistory)
	mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /dashboard", s.handleDashboard)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/", telemetry.Handler(s.reg))
	// Auth sits inside the version stamp: a 401 still tells the client
	// which wire schema it is talking to.
	inner := s.withAuth(mux)
	// Stamp every response with the wire-schema version and the binary's
	// build revision so clients can detect drift without parsing bodies.
	build := buildinfo.Revision()
	if build == "" {
		build = "unknown"
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Vulfid-Api-Version", APIVersion)
		w.Header().Set("Vulfid-Build", build)
		inner.ServeHTTP(w, r)
	})
}

// handleHistory serves the study-history store. Per-site tallies are
// stripped by default to keep the trend payload light; ?sites=1 keeps
// them, and ?limit=N returns only the newest N entries.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, "history store is disabled")
		return
	}
	entries, err := atlas.ReadHistory(s.historyPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "history: %v", err)
		return
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		if n < len(entries) {
			entries = entries[len(entries)-n:]
		}
	}
	if r.URL.Query().Get("sites") != "1" {
		for i := range entries {
			entries[i].Sites = nil
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": entries})
}

// handleDashboard serves the embedded single-file dashboard: live job
// progress over the SSE stream plus historical trend sparklines from
// /v1/history. No external assets, so it works air-gapped.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(dashboardHTML)
}

// Serve binds addr (":0" allowed) and serves the API until Drain.
func (s *Server) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// Unknown fields get the accepted schema quoted back, so a typo'd
		// knob is a descriptive 400 rather than a silently default study.
		if f, ok := strings.CutPrefix(err.Error(), "json: unknown field "); ok {
			writeError(w, http.StatusBadRequest,
				"bad spec: unknown field %s; the spec accepts: %s",
				f, strings.Join(SpecFields(), ", "))
			return
		}
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	// W3C trace-context propagation: a client that traces its own side
	// sends a standard traceparent header; the study's spans then nest
	// under the client's root span. The spec field wins when both are
	// present (an explicit knob beats ambient context).
	if tp := r.Header.Get("traceparent"); tp != "" && spec.TraceParent == "" {
		spec.TraceParent = tp
	}
	job, err := s.SubmitAs(spec, Tenant(r.Context()))
	switch {
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleExperiments serves a job's checkpointed (index, seed, result)
// triples — the harvest feed a coordinator polls to pull shard results
// off its workers, usable at any job state. ?from=&to= restrict to an
// index range (half-open; to <= 0 means unbounded).
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	from, to := 0, 0
	for name, dst := range map[string]*int{"from": &from, "to": &to} {
		if q := r.URL.Query().Get(name); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "%s must be a non-negative integer", name)
				return
			}
			*dst = n
		}
	}
	writeJSON(w, http.StatusOK, api.ExperimentsResponse{
		ID: job.ID, Experiments: job.experimentRecords(from, to),
	})
}

// handleWorkerRegister registers a worker vulfid with the coordinator
// (or refreshes its heartbeat — the call is idempotent and workers
// repeat it on a timer).
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeError(w, http.StatusConflict,
			"not a coordinator (start vulfid with -coordinator to accept workers)")
		return
	}
	var reg api.WorkerRegistration
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, "bad registration: %v", err)
		return
	}
	if reg.URL == "" {
		writeError(w, http.StatusBadRequest, "bad registration: url is required")
		return
	}
	writeJSON(w, http.StatusOK, s.fleet.upsert(reg))
}

// handleWorkers serves the fleet view for the dashboard and `vulfi`.
func (s *Server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	resp := api.WorkersResponse{Coordinator: s.fleet != nil}
	if s.fleet != nil {
		resp.Workers = s.fleet.list()
	}
	if resp.Workers == nil {
		resp.Workers = []api.Worker{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFleet serves the fleet metrics view: per-worker throughput and
// harvest lag aggregated over every job's harvest checkpoints (which
// are journaled, so the history survives coordinator restarts), joined
// with the live worker registry, plus the coordinator's incident and
// stall tallies.
func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetStats(time.Now()))
}

func (s *Server) fleetStats(now time.Time) api.FleetResponse {
	resp := api.FleetResponse{
		Coordinator: s.fleet != nil, Workers: []api.FleetWorkerStats{},
	}
	type acc struct {
		n    int
		ns   int64
		last time.Time
	}
	byWorker := map[string]*acc{}
	var extra []string // checkpoint-only workers, first-seen order
	for _, job := range s.Jobs() {
		for _, c := range job.harvestSnapshot() {
			switch c.Event {
			case "reassigned":
				resp.Reassigned++
				continue
			case "worker_lost":
				resp.WorkersLost++
				continue
			}
			a := byWorker[c.Worker]
			if a == nil {
				a = &acc{}
				byWorker[c.Worker] = a
				extra = append(extra, c.Worker)
			}
			a.n += c.N
			a.ns += c.NS
			if c.At.After(a.last) {
				a.last = c.At
			}
		}
		if wd := job.Watchdog(); wd != nil {
			stalls, _ := wd.snapshot()
			resp.Stalls += int64(len(stalls))
		}
	}
	stats := func(name string) api.FleetWorkerStats {
		st := api.FleetWorkerStats{Worker: name}
		if a := byWorker[name]; a != nil {
			st.Harvested = a.n
			if a.ns > 0 {
				st.ExpPerSec = float64(a.n) / (float64(a.ns) / float64(time.Second))
			}
			if !a.last.IsZero() {
				st.HarvestLagNS = now.Sub(a.last).Nanoseconds()
			}
			delete(byWorker, name)
		}
		return st
	}
	if s.fleet != nil {
		for _, v := range s.fleet.list() {
			name := v.Name
			if name == "" {
				name = v.URL
			}
			st := stats(name)
			st.URL, st.State = v.URL, v.State
			st.Assigned, st.Completed, st.Failures = v.Assigned, v.Completed, v.Failures
			resp.Workers = append(resp.Workers, st)
		}
	}
	// Workers that only exist in checkpoint history: departed fleet
	// members whose registration aged out, and the coordinator's own
	// "local" fallback lane.
	for _, name := range extra {
		if _, ok := byWorker[name]; ok {
			resp.Workers = append(resp.Workers, stats(name))
		}
	}
	return resp
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Result = nil // keep listings light; fetch one job for the study
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) *Job {
	job := s.Job(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	}
	return job
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.jobOr404(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	if !job.RequestCancel() {
		writeError(w, http.StatusConflict, "job %s already %s", job.ID, job.State())
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleExplain serves propagation explanations for a job. Without a
// query it returns the finished study's aggregated propagation profile
// (requires the job to have been submitted with "trace": true). With
// ?index=N it deterministically re-runs that single experiment of the
// job's seed schedule with tracing forced on and returns the full
// fault→divergence→outcome explanation — this works at any job state,
// since the schedule depends only on the spec.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	if q := r.URL.Query().Get("index"); q != "" {
		index, err := strconv.Atoi(q)
		if err != nil || index < 0 || index >= job.Spec.Total() {
			writeError(w, http.StatusBadRequest,
				"index must be an integer in [0,%d)", job.Spec.Total())
			return
		}
		// Spec.Config is already normalized (Validate applies the paper
		// defaults), so the index range matches Spec.Total.
		cfg, err := job.Spec.Config()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		res, err := campaign.ExplainExperiment(r.Context(), cfg, index)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "explain: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id": job.ID, "index": index, "seed": cfg.ExperimentSeed(index),
			"outcome": res.Outcome.String(), "detected": res.Detected,
			"explanation": res.Explanation,
		})
		return
	}

	st := job.Status()
	if len(st.Result) == 0 {
		writeError(w, http.StatusConflict,
			"job %s is %s: no study result yet (use ?index=N for a single experiment)",
			job.ID, st.State)
		return
	}
	var result struct {
		Propagation json.RawMessage `json:"propagation"`
	}
	if err := json.Unmarshal(st.Result, &result); err != nil || len(result.Propagation) == 0 {
		writeError(w, http.StatusConflict,
			"job %s was not traced; submit with \"trace\": true or use ?index=N", job.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": job.ID, "propagation": result.Propagation,
	})
}

// handleProfile serves a finished job's execution profile — the
// "hot_profile" object of its journaled study result, so the data
// round-trips through the journal and survives daemon restarts. 409
// until the job has a result, and for jobs submitted without
// "profile": true.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	st := job.Status()
	if len(st.Result) == 0 {
		writeError(w, http.StatusConflict,
			"job %s is %s: no study result yet", job.ID, st.State)
		return
	}
	var result struct {
		HotProfile json.RawMessage `json:"hot_profile"`
	}
	if err := json.Unmarshal(st.Result, &result); err != nil || len(result.HotProfile) == 0 {
		writeError(w, http.StatusConflict,
			"job %s was not profiled; submit with \"profile\": true", job.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": job.ID, "hot_profile": result.HotProfile,
	})
}

// handleTimeline serves a job's span timeline and live watchdog status.
//
// The default response carries the "timeline" object of the journaled
// study result (present once the job finishes, if it was submitted with
// "timeline": true) plus the watchdog view — every stall report so far
// and the per-worker interpreter heartbeat counters — which is live at
// any state, so a stuck job can be inspected while it runs.
//
// ?format=trace instead re-exports the finished timeline as Chrome
// trace-event JSON (load in Perfetto or chrome://tracing): one lane per
// worker, spans carrying seed/site/outcome args. 409 until the timeline
// exists.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	st := job.Status()
	var timeline json.RawMessage
	if len(st.Result) > 0 {
		var result struct {
			Timeline json.RawMessage `json:"timeline"`
		}
		if err := json.Unmarshal(st.Result, &result); err == nil {
			timeline = result.Timeline
		}
	}

	if r.URL.Query().Get("format") == "trace" {
		if len(timeline) == 0 {
			writeError(w, http.StatusConflict,
				"job %s has no timeline yet (state %s); submit with \"timeline\": true",
				job.ID, st.State)
			return
		}
		var tl obs.Timeline
		if err := json.Unmarshal(timeline, &tl); err != nil {
			writeError(w, http.StatusInternalServerError, "timeline: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tl.WriteTraceEvents(w); err != nil {
			s.logf("timeline: trace export for job %s failed: %v", job.ID, err)
		}
		return
	}

	resp := map[string]any{"id": job.ID, "state": st.State}
	if len(timeline) > 0 {
		resp["timeline"] = timeline
	}
	if wd := job.Watchdog(); wd != nil {
		stalls, beats := wd.snapshot()
		resp["watchdog"] = map[string]any{
			"stalls":     stalls,
			"heartbeats": beats,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = job.Registry().WriteProm(w)
}

// handleEvents streams job progress as Server-Sent Events: a "state"
// snapshot on connect, one "experiment" event per completed experiment,
// "stall" events when the watchdog flags a straggler, "state" events on
// transitions, and a final "state" with the result when the job ends.
// While the stream is idle — a long experiment, a quiet queue — it
// emits a ": keep-alive" SSE comment every Options.KeepAlive, so
// proxies and NAT boxes don't reap the connection between events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(typ string, data json.RawMessage) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	snapshot := func() bool {
		raw, err := json.Marshal(job.Status())
		return err == nil && send("state", raw)
	}
	keepAlive := s.opts.KeepAlive
	if keepAlive == 0 {
		keepAlive = 15 * time.Second
	}
	var tick <-chan time.Time
	if keepAlive > 0 {
		t := time.NewTicker(keepAlive)
		defer t.Stop()
		tick = t.C
	}
	ch, cancel := job.Subscribe()
	defer cancel()
	if !snapshot() {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Terminal: emit the authoritative final status (the
				// buffered terminal event may have been dropped).
				snapshot()
				return
			}
			if !send(ev.Type, ev.Data) {
				return
			}
		case <-tick:
			// Comment line: ignored by EventSource parsers, but traffic
			// on the wire for anything timing out idle connections.
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
