package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"vulfi/internal/campaign"
	"vulfi/internal/obs"
	"vulfi/internal/profile"
)

// The journal is the daemon's crash-safety mechanism: one append-only
// JSONL file per job under the journal directory, named <id>.jsonl.
// Five record kinds appear in order:
//
//	{"t":"submit","id":...,"spec":{...}}        exactly once, first line
//	{"t":"exp","i":N,"seed":S,"r":{...}}        one per completed experiment
//	{"t":"harvest","worker":...,"n":N,"ns":E}   coordinator only: one per
//	                                            harvest poll that pulled
//	                                            new triples (and per fleet
//	                                            incident, with an "event")
//	{"t":"obs","worker":...,"tl":...,"hp":...}  coordinator only: one per
//	                                            finished shard whose
//	                                            timeline/profile was
//	                                            harvested
//	{"t":"state","state":...}                   state transitions; a
//	                                            terminal one ends the job
//
// Terminal states are "done" (with the serialized study), "failed" and
// "cancelled". The non-terminal "interrupted" marker is written on
// graceful drain; a journal whose last state is non-terminal is resumed
// on restart: the replayed "exp" records become Config.Completed and the
// deterministic per-index seed schedule re-runs only the missing
// indices, reproducing the uninterrupted study's statistics exactly.
//
// Each record is written with a single write(2) call so a crash can at
// worst truncate the final line; Replay tolerates (and reports) a
// truncated tail and ignores it.

// journalRecord is one line of a job journal.
type journalRecord struct {
	T string `json:"t"`

	// submit fields. Tenant rides in the submit record so per-tenant
	// quotas survive daemon restarts.
	ID     string `json:"id,omitempty"`
	Spec   *Spec  `json:"spec,omitempty"`
	Tenant string `json:"tenant,omitempty"`

	// exp fields. Index uses a pointer so index 0 survives omitempty.
	Index  *int                       `json:"i,omitempty"`
	Seed   int64                      `json:"seed,omitempty"`
	Result *campaign.ExperimentResult `json:"r,omitempty"`

	// harvest fields (Worker is shared with "obs" records): one
	// coordinator harvest checkpoint — N new triples pulled from Worker
	// over NS nanoseconds of worker wall time, stamped At. Event marks
	// fleet incidents ("reassigned", "worker_lost") journaled through
	// the same channel so the fleet metrics view survives restarts.
	Worker string     `json:"worker,omitempty"`
	N      int        `json:"n,omitempty"`
	NS     int64      `json:"ns,omitempty"`
	At     *time.Time `json:"at,omitempty"`
	Event  string     `json:"event,omitempty"`

	// obs fields: a finished shard's harvested observability.
	Timeline *obs.Timeline    `json:"tl,omitempty"`
	Profile  *profile.Profile `json:"hp,omitempty"`

	// state fields.
	State string          `json:"state,omitempty"`
	Error string          `json:"error,omitempty"`
	Study json.RawMessage `json:"study,omitempty"`
}

// Journal appends records for one job. Safe for concurrent use (the
// campaign worker pool checkpoints from many goroutines).
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	fsync  bool
	closed bool
	err    error
}

// JournalPath returns the journal file of a job id under dir.
func JournalPath(dir, id string) string {
	return filepath.Join(dir, id+".jsonl")
}

// OpenJournal opens (creating if needed) a job journal for appending.
// When fsync is set every record is fdatasync'd — surviving power loss
// instead of just process death, at a per-experiment cost.
func OpenJournal(path string, fsync bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, fsync: fsync}, nil
}

// append marshals and writes one record as a single line. Errors are
// sticky: after the first failure the journal stops writing and Err
// reports it (a checkpoint hook must not take down the study).
func (j *Journal) append(rec journalRecord) {
	line, err := json.Marshal(rec)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.err = err
		return
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			j.err = err
		}
	}
}

// Submit records the job's identity and spec (the journal's first line).
func (j *Journal) Submit(id string, spec Spec) {
	j.SubmitAs(id, spec, "")
}

// SubmitAs is Submit with the authenticated tenant recorded alongside
// the spec.
func (j *Journal) SubmitAs(id string, spec Spec, tenant string) {
	j.append(journalRecord{T: "submit", ID: id, Spec: &spec, Tenant: tenant})
}

// Experiment checkpoints one completed experiment.
func (j *Journal) Experiment(index int, seed int64, r *campaign.ExperimentResult) {
	j.append(journalRecord{T: "exp", Index: &index, Seed: seed, Result: r})
}

// Harvest checkpoints one coordinator harvest observation: n new triples
// pulled from worker over ns nanoseconds (or, with n == 0, a fleet
// incident tagged by event). The per-worker throughput history this
// accumulates is what GET /v1/fleet aggregates — and journaling it next
// to the experiment checkpoints is what lets a restarted coordinator
// keep that history.
func (j *Journal) Harvest(c HarvestCheckpoint) {
	at := c.At
	j.append(journalRecord{
		T: "harvest", Worker: c.Worker, N: c.N, NS: c.NS, At: &at,
		Event: c.Event,
	})
}

// Obs records a finished shard's harvested observability (either part
// may be nil when the job only asked for the other).
func (j *Journal) Obs(worker string, tl *obs.Timeline, hp *profile.Profile) {
	j.append(journalRecord{T: "obs", Worker: worker, Timeline: tl, Profile: hp})
}

// State records a state transition. study (may be nil) is the serialized
// final result for the "done" state; errMsg annotates "failed".
func (j *Journal) State(state, errMsg string, study json.RawMessage) {
	j.append(journalRecord{T: "state", State: state, Error: errMsg, Study: study})
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close syncs and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// HarvestCheckpoint is one replayed (or live) coordinator harvest
// observation: N new triples from Worker over NS nanoseconds, stamped
// At. N == 0 records carry a fleet incident in Event instead.
type HarvestCheckpoint struct {
	Worker string
	N      int
	NS     int64
	At     time.Time
	Event  string
}

// ShardObs is one shard's harvested observability: the worker that ran
// it plus whichever of timeline and profile the job asked for.
type ShardObs struct {
	Worker   string
	Timeline *obs.Timeline
	Profile  *profile.Profile
}

// Replay is the reconstructed state of one journaled job.
type Replay struct {
	ID        string
	Spec      Spec
	Tenant    string
	Completed map[int]*campaign.ExperimentResult
	// Harvests/ShardObs replay the coordinator's harvest checkpoints and
	// harvested shard observability (empty for plain jobs).
	Harvests []HarvestCheckpoint
	ShardObs []ShardObs
	// State is the last recorded state ("" when only the submit record
	// exists — the job never started).
	State string
	Error string
	Study json.RawMessage
	// Truncated reports a partial final line (in-flight write at crash
	// time); the line is ignored.
	Truncated bool
}

// Terminal reports whether the replayed job finished for good.
func (r *Replay) Terminal() bool { return terminalState(r.State) }

// ReplayJournal reads a job journal back. Unknown record kinds are
// skipped (forward compatibility); a truncated or corrupt final line is
// tolerated; corruption anywhere else is an error.
func ReplayJournal(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rp := &Replay{Completed: map[int]*campaign.ExperimentResult{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// A corrupt line followed by more lines is real damage, not
			// a crash-truncated tail.
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("%s: corrupt journal line: %w", path, err)
			rp.Truncated = true
			continue
		}
		switch rec.T {
		case "submit":
			rp.ID, rp.Spec, rp.Tenant = rec.ID, *rec.Spec, rec.Tenant
		case "exp":
			if rec.Index != nil && rec.Result != nil {
				rp.Completed[*rec.Index] = rec.Result
			}
		case "harvest":
			c := HarvestCheckpoint{
				Worker: rec.Worker, N: rec.N, NS: rec.NS, Event: rec.Event,
			}
			if rec.At != nil {
				c.At = *rec.At
			}
			rp.Harvests = append(rp.Harvests, c)
		case "obs":
			rp.ShardObs = append(rp.ShardObs, ShardObs{
				Worker: rec.Worker, Timeline: rec.Timeline, Profile: rec.Profile,
			})
		case "state":
			rp.State, rp.Error = rec.State, rec.Error
			if len(rec.Study) > 0 {
				rp.Study = rec.Study
			}
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("%s: journal line too long", path)
		}
		return nil, err
	}
	if rp.ID == "" {
		return nil, fmt.Errorf("%s: journal has no submit record", path)
	}
	return rp, nil
}

// ScanJournals replays every job journal under dir, in name order.
// Unreadable files are reported through damaged and skipped, so one bad
// journal cannot block a daemon restart.
func ScanJournals(dir string, damaged func(path string, err error)) ([]*Replay, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*Replay
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".jsonl") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		rp, err := ReplayJournal(path)
		if err != nil {
			if damaged != nil {
				damaged(path, err)
			}
			continue
		}
		out = append(out, rp)
	}
	return out, nil
}

var _ io.Closer = (*Journal)(nil)
