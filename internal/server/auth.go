package server

import (
	"context"
	"net/http"
	"strings"
)

// Multi-tenant authentication: when Options.APIKeys is non-empty every
// /v1 request must present one of the configured keys, and the key's
// tenant label is attached to the request context — submissions are
// attributed to it and counted against Options.TenantQuota. Everything
// outside /v1 (dashboard, healthz, telemetry) stays open: the
// dashboard itself forwards its key to the /v1 calls it makes.

type tenantCtxKey struct{}

// Tenant returns the tenant authenticated on this request ("" when the
// daemon runs without API keys).
func Tenant(ctx context.Context) string {
	t, _ := ctx.Value(tenantCtxKey{}).(string)
	return t
}

// requestKey extracts the presented API key: "Authorization: Bearer",
// the X-Api-Key header, or the ?key= query parameter — the last for
// EventSource and dashboard fetches, which cannot set headers.
func requestKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return key
		}
	}
	if key := r.Header.Get("X-Api-Key"); key != "" {
		return key
	}
	return r.URL.Query().Get("key")
}

// withAuth gates /v1 behind the configured API keys. A no-op when none
// are configured.
func (s *Server) withAuth(next http.Handler) http.Handler {
	if len(s.opts.APIKeys) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		key := requestKey(r)
		tenant, ok := "", false
		if key != "" {
			tenant, ok = s.opts.APIKeys[key]
		}
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="vulfid"`)
			writeError(w, http.StatusUnauthorized, "missing or invalid API key")
			return
		}
		next.ServeHTTP(w, r.WithContext(
			context.WithValue(r.Context(), tenantCtxKey{}, tenant)))
	})
}
