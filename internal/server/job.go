package server

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"sync"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/campaign"
	"vulfi/internal/telemetry"
)

// Event is one live progress notification, streamed to SSE subscribers.
type Event struct {
	// Type is "experiment" (one completed experiment) or "state" (a job
	// state transition, terminal ones carrying the final status).
	Type string
	Data json.RawMessage
}

// Job is one submitted study: its spec, lifecycle state, progress
// counters, checkpoint journal and live subscribers.
type Job struct {
	ID   string
	Spec Spec

	// tenant is the authenticated tenant that submitted the job (set
	// once at construction/resume, before the job is published).
	tenant string

	mu        sync.Mutex
	state     string
	errMsg    string
	resumed   bool
	cancelled bool // user asked for cancellation
	created   time.Time
	started   time.Time
	finished  time.Time

	total, done                  int
	sdc, benign, crash, detected int

	completed map[int]*campaign.ExperimentResult
	result    json.RawMessage // serialized StudyResult once done
	cancel    context.CancelFunc

	// harvests/shardObs are the coordinator's journaled fleet
	// observability: per-worker harvest throughput checkpoints and the
	// timeline/profile snapshots harvested from finished shards. Empty
	// for plain (unsharded) jobs.
	harvests []HarvestCheckpoint
	shardObs []ShardObs

	journal *Journal
	reg     *telemetry.Registry
	subs    map[chan Event]bool

	// wd is the stall watchdog, set for the duration of the run (nil
	// for queued and never-run jobs; kept after finish so stall reports
	// outlive the run).
	wd *watchdog
}

func newJob(id string, spec Spec, journal *Journal) *Job {
	return &Job{
		ID: id, Spec: spec, state: StateQueued, created: time.Now(),
		total: spec.Total(), completed: map[int]*campaign.ExperimentResult{},
		journal: journal, reg: telemetry.NewRegistry(),
		subs: map[chan Event]bool{},
	}
}

// resumedJob rebuilds a job from a journal replay: completed experiments
// become the study's Completed checkpoint, progress counters are
// restored, and terminal jobs keep their serialized result so status
// queries survive restarts.
func resumedJob(rp *Replay, journal *Journal) *Job {
	j := newJob(rp.ID, rp.Spec, journal)
	j.tenant = rp.Tenant
	j.completed = rp.Completed
	j.harvests = rp.Harvests
	j.shardObs = rp.ShardObs
	for _, r := range rp.Completed {
		j.note(r)
	}
	if rp.Terminal() {
		j.state, j.errMsg, j.result = rp.State, rp.Error, rp.Study
	} else {
		j.resumed = len(rp.Completed) > 0 || rp.State != ""
	}
	return j
}

// note folds one experiment result into the progress counters (mu held
// or single-threaded construction).
func (j *Job) note(r *campaign.ExperimentResult) {
	j.done++
	switch r.Outcome {
	case campaign.OutcomeSDC:
		j.sdc++
	case campaign.OutcomeBenign:
		j.benign++
	case campaign.OutcomeCrash:
		j.crash++
	}
	if r.Detected {
		j.detected++
	}
}

// Registry exposes the job's private telemetry registry (campaign phase
// histograms and outcome counters land here).
func (j *Job) Registry() *telemetry.Registry { return j.reg }

// setWatchdog attaches the run's stall watchdog.
func (j *Job) setWatchdog(wd *watchdog) {
	j.mu.Lock()
	j.wd = wd
	j.mu.Unlock()
}

// Watchdog returns the job's stall watchdog (nil if the job never ran).
func (j *Job) Watchdog() *watchdog {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wd
}

// Tenant returns the authenticated tenant that submitted the job.
func (j *Job) Tenant() string { return j.tenant }

// Status snapshots the job as its wire form (GET /v1/jobs/{id}).
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Resumed: j.resumed, Spec: j.Spec,
		Tenant:  j.tenant,
		Created: j.created, Done: j.done, Total: j.total,
		SDC: j.sdc, Benign: j.benign, Crash: j.crash, Detected: j.detected,
		Error: j.errMsg, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// onResult is the campaign checkpoint hook: journal first (crash
// safety), then update progress, record the triple for harvesting
// (GET /v1/jobs/{id}/experiments) and notify subscribers. Called from
// worker goroutines.
func (j *Job) onResult(index int, seed int64, r *campaign.ExperimentResult) {
	j.journal.Experiment(index, seed, r)
	j.mu.Lock()
	j.completed[index] = r
	j.note(r)
	ev := api.ExperimentEvent{
		Index: index, Seed: seed, Outcome: r.Outcome.String(),
		Detected: r.Detected, Done: j.done, Total: j.total,
	}
	j.mu.Unlock()
	j.broadcast("experiment", ev)
}

// addHarvested folds one shard-harvested experiment into the job:
// journal (crash safety — a restarted coordinator replays these
// triples instead of re-fetching them), progress counters, harvest
// store and live broadcast. Indices already present — a reassigned
// shard re-harvesting its overlap — are dropped without journaling
// twice; the return value reports whether the triple was new.
func (j *Job) addHarvested(index int, seed int64, r *campaign.ExperimentResult) bool {
	if r == nil {
		return false
	}
	j.mu.Lock()
	if j.completed[index] != nil {
		j.mu.Unlock()
		return false
	}
	// Journal under mu so the dedupe check and the journal append are
	// atomic (the journal's own lock is a leaf; this order is the same
	// one onResult-then-broadcast takes).
	j.journal.Experiment(index, seed, r)
	j.completed[index] = r
	j.note(r)
	ev := api.ExperimentEvent{
		Index: index, Seed: seed, Outcome: r.Outcome.String(),
		Detected: r.Detected, Done: j.done, Total: j.total,
	}
	j.mu.Unlock()
	j.broadcast("experiment", ev)
	return true
}

// noteHarvest journals and records one coordinator harvest checkpoint
// (journal-first, like every other durable record).
func (j *Job) noteHarvest(c HarvestCheckpoint) {
	if c.At.IsZero() {
		c.At = time.Now()
	}
	j.mu.Lock()
	j.journal.Harvest(c)
	j.harvests = append(j.harvests, c)
	j.mu.Unlock()
}

// harvestSnapshot copies the job's harvest checkpoints (the /v1/fleet
// aggregation input).
func (j *Job) harvestSnapshot() []HarvestCheckpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]HarvestCheckpoint(nil), j.harvests...)
}

// addShardObs journals and records one finished shard's harvested
// observability. A duplicate (same timeline root, from a coordinator
// restart replaying an already-journaled shard) is dropped without
// journaling twice.
func (j *Job) addShardObs(o ShardObs) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if o.Timeline != nil {
		for _, have := range j.shardObs {
			if have.Timeline != nil && have.Timeline.Root == o.Timeline.Root {
				return
			}
		}
	}
	j.journal.Obs(o.Worker, o.Timeline, o.Profile)
	j.shardObs = append(j.shardObs, o)
}

// shardObsSnapshot copies the harvested shard observability — the merge
// input for the fleet timeline and profile.
func (j *Job) shardObsSnapshot() []ShardObs {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]ShardObs(nil), j.shardObs...)
}

// completedSnapshot copies the job's checkpointed triples — the merge
// input for a sharded job, and the Completed map handed to RunStudy.
func (j *Job) completedSnapshot() map[int]*campaign.ExperimentResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[int]*campaign.ExperimentResult, len(j.completed))
	for i, r := range j.completed {
		out[i] = r
	}
	return out
}

// experimentRecords returns the checkpointed triples with indices in
// [from, to) (to <= 0 means no upper bound), sorted by index. Seeds
// are recomputed from the deterministic schedule, which is what makes
// the triples portable across daemons.
func (j *Job) experimentRecords(from, to int) []api.ExperimentRecord {
	j.mu.Lock()
	idxs := make([]int, 0, len(j.completed))
	for i := range j.completed {
		if i < from || (to > 0 && i >= to) {
			continue
		}
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]api.ExperimentRecord, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, api.ExperimentRecord{
			Index: i, Seed: experimentSeed(j.Spec.Seed, i), Result: j.completed[i],
		})
	}
	j.mu.Unlock()
	return out
}

// broadcast serializes data and fans it out to subscribers without
// blocking: a slow consumer drops events (the SSE handler re-snapshots
// on terminal states, so nothing user-visible is lost for good).
func (j *Job) broadcast(typ string, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		return
	}
	ev := Event{Type: typ, Data: raw}
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe registers a live event channel; the returned cancel
// unregisters it. The channel closes when the job reaches a terminal
// state.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	j.mu.Lock()
	terminal := terminalState(j.state)
	if !terminal {
		j.subs[ch] = true
	}
	j.mu.Unlock()
	if terminal {
		close(ch)
		return ch, func() {}
	}
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			j.mu.Lock()
			still := j.subs[ch]
			delete(j.subs, ch)
			j.mu.Unlock()
			if still {
				close(ch)
			}
		})
	}
	return ch, cancel
}

// setRunning transitions queued → running (returns false if the job was
// cancelled while queued and must be skipped).
func (j *Job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	j.journal.State(StateRunning, "", nil)
	j.broadcast("state", j.Status())
	return true
}

// finish moves the job to a terminal or interrupted state, journals it,
// notifies subscribers and closes their channels (terminal only).
func (j *Job) finish(state, errMsg string, result json.RawMessage) {
	j.mu.Lock()
	j.state, j.errMsg = state, errMsg
	if result != nil {
		j.result = result
	}
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	j.journal.State(state, errMsg, result)
	j.broadcast("state", j.Status())
	if terminalState(state) {
		j.mu.Lock()
		subs := j.subs
		j.subs = map[chan Event]bool{}
		j.mu.Unlock()
		for ch := range subs {
			close(ch)
		}
	}
}

// RequestCancel asks the job to stop: a queued job is cancelled on the
// spot; a running one gets its context cancelled and finishes
// cooperatively after in-flight experiments complete. Returns false for
// jobs already in a terminal state.
func (j *Job) RequestCancel() bool {
	j.mu.Lock()
	switch {
	case terminalState(j.state):
		j.mu.Unlock()
		return false
	case j.state == StateQueued:
		j.cancelled = true
		j.mu.Unlock()
		j.finish(StateCancelled, "", nil)
		return true
	default:
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
}

// cancelRequested reports whether RequestCancel was called.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// marshalStudy serializes a finished study compactly — journal records
// must stay single-line JSONL, so the indented WriteJSON form is
// re-compacted before embedding.
func marshalStudy(sr *campaign.StudyResult) json.RawMessage {
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		return nil
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		return nil
	}
	return compact.Bytes()
}
