package server

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"time"

	"vulfi/internal/campaign"
	"vulfi/internal/telemetry"
)

// Job states. A job moves queued → running → {done, failed, cancelled};
// cancellation can also hit a queued job directly. A drained daemon
// leaves its unfinished jobs journaled as "interrupted" (non-terminal)
// and the next daemon re-queues them with the completed experiments
// replayed.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// Event is one live progress notification, streamed to SSE subscribers.
type Event struct {
	// Type is "experiment" (one completed experiment) or "state" (a job
	// state transition, terminal ones carrying the final status).
	Type string
	Data json.RawMessage
}

// Job is one submitted study: its spec, lifecycle state, progress
// counters, checkpoint journal and live subscribers.
type Job struct {
	ID   string
	Spec Spec

	mu        sync.Mutex
	state     string
	errMsg    string
	resumed   bool
	cancelled bool // user asked for cancellation
	created   time.Time
	started   time.Time
	finished  time.Time

	total, done                  int
	sdc, benign, crash, detected int

	completed map[int]*campaign.ExperimentResult
	result    json.RawMessage // serialized StudyResult once done
	cancel    context.CancelFunc

	journal *Journal
	reg     *telemetry.Registry
	subs    map[chan Event]bool

	// wd is the stall watchdog, set for the duration of the run (nil
	// for queued and never-run jobs; kept after finish so stall reports
	// outlive the run).
	wd *watchdog
}

func newJob(id string, spec Spec, journal *Journal) *Job {
	return &Job{
		ID: id, Spec: spec, state: StateQueued, created: time.Now(),
		total: spec.Total(), completed: map[int]*campaign.ExperimentResult{},
		journal: journal, reg: telemetry.NewRegistry(),
		subs: map[chan Event]bool{},
	}
}

// resumedJob rebuilds a job from a journal replay: completed experiments
// become the study's Completed checkpoint, progress counters are
// restored, and terminal jobs keep their serialized result so status
// queries survive restarts.
func resumedJob(rp *Replay, journal *Journal) *Job {
	j := newJob(rp.ID, rp.Spec, journal)
	j.completed = rp.Completed
	for _, r := range rp.Completed {
		j.note(r)
	}
	if rp.Terminal() {
		j.state, j.errMsg, j.result = rp.State, rp.Error, rp.Study
	} else {
		j.resumed = len(rp.Completed) > 0 || rp.State != ""
	}
	return j
}

// note folds one experiment result into the progress counters (mu held
// or single-threaded construction).
func (j *Job) note(r *campaign.ExperimentResult) {
	j.done++
	switch r.Outcome {
	case campaign.OutcomeSDC:
		j.sdc++
	case campaign.OutcomeBenign:
		j.benign++
	case campaign.OutcomeCrash:
		j.crash++
	}
	if r.Detected {
		j.detected++
	}
}

// Registry exposes the job's private telemetry registry (campaign phase
// histograms and outcome counters land here).
func (j *Job) Registry() *telemetry.Registry { return j.reg }

// setWatchdog attaches the run's stall watchdog.
func (j *Job) setWatchdog(wd *watchdog) {
	j.mu.Lock()
	j.wd = wd
	j.mu.Unlock()
}

// Watchdog returns the job's stall watchdog (nil if the job never ran).
func (j *Job) Watchdog() *watchdog {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wd
}

// Status is the wire form of a job's state (GET /v1/jobs/{id}).
type Status struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Resumed bool   `json:"resumed,omitempty"`
	Spec    Spec   `json:"spec"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	Done     int `json:"done"`
	Total    int `json:"total"`
	SDC      int `json:"sdc"`
	Benign   int `json:"benign"`
	Crash    int `json:"crash"`
	Detected int `json:"detected"`

	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Resumed: j.resumed, Spec: j.Spec,
		Created: j.created, Done: j.done, Total: j.total,
		SDC: j.sdc, Benign: j.benign, Crash: j.crash, Detected: j.detected,
		Error: j.errMsg, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// experimentEvent is the SSE payload for one completed experiment.
type experimentEvent struct {
	Index    int    `json:"index"`
	Seed     int64  `json:"seed"`
	Outcome  string `json:"outcome"`
	Detected bool   `json:"detected"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
}

// onResult is the campaign checkpoint hook: journal first (crash
// safety), then update progress and notify subscribers. Called from
// worker goroutines.
func (j *Job) onResult(index int, seed int64, r *campaign.ExperimentResult) {
	j.journal.Experiment(index, seed, r)
	j.mu.Lock()
	j.note(r)
	ev := experimentEvent{
		Index: index, Seed: seed, Outcome: r.Outcome.String(),
		Detected: r.Detected, Done: j.done, Total: j.total,
	}
	j.mu.Unlock()
	j.broadcast("experiment", ev)
}

// broadcast serializes data and fans it out to subscribers without
// blocking: a slow consumer drops events (the SSE handler re-snapshots
// on terminal states, so nothing user-visible is lost for good).
func (j *Job) broadcast(typ string, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		return
	}
	ev := Event{Type: typ, Data: raw}
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe registers a live event channel; the returned cancel
// unregisters it. The channel closes when the job reaches a terminal
// state.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	j.mu.Lock()
	terminal := terminalState(j.state)
	if !terminal {
		j.subs[ch] = true
	}
	j.mu.Unlock()
	if terminal {
		close(ch)
		return ch, func() {}
	}
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			j.mu.Lock()
			still := j.subs[ch]
			delete(j.subs, ch)
			j.mu.Unlock()
			if still {
				close(ch)
			}
		})
	}
	return ch, cancel
}

// setRunning transitions queued → running (returns false if the job was
// cancelled while queued and must be skipped).
func (j *Job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	j.journal.State(StateRunning, "", nil)
	j.broadcast("state", j.Status())
	return true
}

// finish moves the job to a terminal or interrupted state, journals it,
// notifies subscribers and closes their channels (terminal only).
func (j *Job) finish(state, errMsg string, result json.RawMessage) {
	j.mu.Lock()
	j.state, j.errMsg = state, errMsg
	if result != nil {
		j.result = result
	}
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	j.journal.State(state, errMsg, result)
	j.broadcast("state", j.Status())
	if terminalState(state) {
		j.mu.Lock()
		subs := j.subs
		j.subs = map[chan Event]bool{}
		j.mu.Unlock()
		for ch := range subs {
			close(ch)
		}
	}
}

// RequestCancel asks the job to stop: a queued job is cancelled on the
// spot; a running one gets its context cancelled and finishes
// cooperatively after in-flight experiments complete. Returns false for
// jobs already in a terminal state.
func (j *Job) RequestCancel() bool {
	j.mu.Lock()
	switch {
	case terminalState(j.state):
		j.mu.Unlock()
		return false
	case j.state == StateQueued:
		j.cancelled = true
		j.mu.Unlock()
		j.finish(StateCancelled, "", nil)
		return true
	default:
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
}

// cancelRequested reports whether RequestCancel was called.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// marshalStudy serializes a finished study compactly — journal records
// must stay single-line JSONL, so the indented WriteJSON form is
// re-compacted before embedding.
func marshalStudy(sr *campaign.StudyResult) json.RawMessage {
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		return nil
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		return nil
	}
	return compact.Bytes()
}
