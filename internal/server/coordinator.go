package server

import (
	"context"
	"fmt"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/campaign"
)

// Coordinator mode: a job submitted with "shards": N > 1 is not run on
// the local campaign pool. Instead the deterministic experiment-index
// schedule is split into contiguous range shards, each shard is
// dispatched to a registered worker vulfid as a normal job whose spec
// carries shard_start/shard_end, and the worker's checkpointed
// (index, seed, result) triples are harvested over
// GET /v1/jobs/{id}/experiments into the coordinator's own journal as
// they appear. A shard is nothing but a range filter over the same
// schedule every single-node run uses, and a harvested triple is
// byte-identical to a locally executed one — so when every index has a
// triple, one merge-only RunStudy (fully populated Completed map, zero
// fresh executions) reproduces the single-node aggregation exactly:
// campaign grouping, WallMin/WallMax folding, statistics, atlas site
// tallies, history entry.
//
// Failure handling falls out of the same journal the drain/resume path
// uses: a worker that dies mid-shard leaves its harvested prefix in
// the coordinator's journal, the unharvested remainder is re-planned
// as fresh ranges and handed to another worker (or run locally when
// the fleet is empty), and a restarted coordinator resumes the whole
// sharded job from its journal like any other interrupted job.

const (
	defaultWorkerTTL    = 15 * time.Second
	defaultHarvestEvery = 2 * time.Second
	// workerMisses is how many consecutive failed polls (status or
	// harvest) declare a worker unreachable and trigger reassignment.
	workerMisses = 3
)

// shardRange is a half-open range [lo, hi) of experiment indices.
type shardRange struct{ lo, hi int }

func (r shardRange) size() int { return r.hi - r.lo }

// missingWithin returns the maximal contiguous runs of indices inside
// within that have no checkpointed result yet.
func (j *Job) missingWithin(within shardRange) []shardRange {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []shardRange
	run := -1
	for i := within.lo; i < within.hi; i++ {
		if j.completed[i] != nil {
			if run >= 0 {
				out = append(out, shardRange{run, i})
				run = -1
			}
			continue
		}
		if run < 0 {
			run = i
		}
	}
	if run >= 0 {
		out = append(out, shardRange{run, within.hi})
	}
	return out
}

// planShards splits the missing runs into about n similarly sized
// ranges: a fresh study yields n contiguous slices of [0, total); a
// resumed job's scattered gaps keep their natural run boundaries, with
// the largest runs split until at least n shards exist (or nothing is
// left to split). Sorted by start index for deterministic dispatch.
func planShards(runs []shardRange, n int) []shardRange {
	out := append([]shardRange(nil), runs...)
	for len(out) > 0 && len(out) < n {
		li := 0
		for i, r := range out {
			if r.size() > out[li].size() {
				li = i
			}
		}
		if out[li].size() < 2 {
			break
		}
		r := out[li]
		mid := r.lo + r.size()/2
		out[li] = shardRange{r.lo, mid}
		out = append(out, shardRange{mid, r.hi})
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].lo < out[k-1].lo; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

func (s *Server) workerTTL() time.Duration {
	if s.opts.WorkerTTL > 0 {
		return s.opts.WorkerTTL
	}
	return defaultWorkerTTL
}

func (s *Server) harvestEvery() time.Duration {
	if s.opts.HarvestEvery > 0 {
		return s.opts.HarvestEvery
	}
	return defaultHarvestEvery
}

// runShardedJob is the coordinator's counterpart of runJob: it drives
// one sharded job from planning through dispatch, harvest,
// reassignment and the final merge.
func (s *Server) runShardedJob(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.setRunning(cancel) {
		return // cancelled while queued
	}
	s.mx.running.Add(1)
	defer s.mx.running.Add(-1)
	start := time.Now()

	full := shardRange{0, job.Spec.ScheduleTotal()}
	pending := planShards(job.missingWithin(full), job.Spec.Shards)
	s.logf("coordinator: job %s planned %d shards over %d missing experiments",
		job.ID, len(pending), job.Spec.Total()-job.Status().Done)

	type shardDone struct {
		r      shardRange
		worker string
		err    error
	}
	results := make(chan shardDone)
	inflight := 0
	failures := 0
	// A sharded job that keeps failing must converge on an answer, not
	// spin: after this many shard failures the job fails for good. The
	// local fallback makes genuine progress in the meantime, so the cap
	// only triggers on systematically failing specs or fleets.
	maxFailures := 2*len(pending) + 8
	var lastErr error

	launch := func(r shardRange, w *workerEntry) {
		inflight++
		name := "local"
		if w != nil {
			name = w.URL
		}
		job.broadcast("shard", api.ShardEvent{
			Lo: r.lo, Hi: r.hi, Worker: name, State: "assigned",
			Done: job.Status().Done, Total: job.Status().Total,
		})
		go func() {
			var err error
			if w != nil {
				err = s.runShardOnWorker(ctx, job, w, r)
				s.fleet.release(w, err != nil && ctx.Err() == nil)
			} else {
				err = s.runShardLocally(ctx, job, r)
			}
			results <- shardDone{r: r, worker: name, err: err}
		}()
	}

	for (len(pending) > 0 || inflight > 0) && ctx.Err() == nil && failures <= maxFailures {
		handed := false
		for len(pending) > 0 {
			w := s.fleet.acquire()
			if w == nil {
				break
			}
			r := pending[0]
			pending = pending[1:]
			launch(r, w)
			handed = true
		}
		if len(pending) > 0 && inflight == 0 {
			// No reachable worker and nothing in flight: run the next shard
			// on the coordinator itself, so a coordinator with no fleet
			// degrades to a single node instead of stalling.
			r := pending[0]
			pending = pending[1:]
			launch(r, nil)
			handed = true
		}
		if handed {
			continue
		}
		select {
		case d := <-results:
			inflight--
			switch {
			case d.err == nil:
				job.broadcast("shard", api.ShardEvent{
					Lo: d.r.lo, Hi: d.r.hi, Worker: d.worker, State: "done",
					Done: job.Status().Done, Total: job.Status().Total,
				})
			case ctx.Err() != nil:
				// Cancelled or draining; the terminal switch below decides.
			default:
				failures++
				lastErr = d.err
				left := job.missingWithin(d.r)
				s.logf("coordinator: job %s shard [%d,%d) on %s failed (%v); re-planning %d ranges",
					job.ID, d.r.lo, d.r.hi, d.worker, d.err, len(left))
				job.broadcast("shard", api.ShardEvent{
					Lo: d.r.lo, Hi: d.r.hi, Worker: d.worker, State: "failed",
					Done: job.Status().Done, Total: job.Status().Total,
				})
				pending = append(pending, left...)
			}
		case <-time.After(s.harvestEvery()):
			// Idle poll: a worker may have registered or come back alive
			// since the last hand-out attempt.
		case <-ctx.Done():
		}
	}
	// Let in-flight shard runners unwind (they observe ctx promptly);
	// their results still dedupe through addHarvested.
	for inflight > 0 {
		<-results
		inflight--
	}

	s.mx.jobWall.Since(start)
	missing := job.missingWithin(full)
	switch {
	case ctx.Err() == nil && len(missing) == 0:
		sr, err := s.mergeShards(ctx, job)
		if err != nil {
			s.mx.failed.Inc()
			job.finish(StateFailed, fmt.Sprintf("merge: %v", err), nil)
			return
		}
		s.mx.completed.Inc()
		job.finish(StateDone, "", marshalStudy(sr))
		s.recordHistory(job, sr)
	case job.cancelRequested():
		s.mx.cancelled.Inc()
		job.finish(StateCancelled, "", nil)
	case s.baseCtx.Err() != nil:
		// Coordinator drain: harvested triples are journaled; the next
		// daemon resumes the job and re-plans only the missing ranges.
		job.finish(StateInterrupted, "", nil)
		s.logf("drain: job %s interrupted at %d/%d experiments",
			job.ID, job.Status().Done, job.Status().Total)
	default:
		s.mx.failed.Inc()
		job.finish(StateFailed, fmt.Sprintf("sharding failed after %d shard failures: %v",
			failures, lastErr), nil)
	}
}

// shardSpec derives the spec dispatched to a worker for one range:
// same study knobs, the shard range set, and the coordinator-side
// concerns stripped — the worker must not recurse into sharding, and
// atlas attribution is a merge-time output (computing partial tallies
// on workers would waste golden re-runs on data the merge recomputes).
func shardSpec(spec Spec, r shardRange) Spec {
	spec.Shards = 0
	spec.ShardStart, spec.ShardEnd = r.lo, r.hi
	spec.Atlas = false
	return spec
}

// runShardOnWorker submits one shard to a worker and polls it to
// completion, harvesting checkpointed triples into the coordinator's
// journal every HarvestEvery. A worker that fails workerMisses
// consecutive polls is declared unreachable (the shard's unharvested
// remainder gets reassigned); a worker that drains mid-shard keeps the
// job journaled, so the poll loop just keeps watching until its
// restarted daemon resumes and finishes the shard job.
func (s *Server) runShardOnWorker(ctx context.Context, job *Job, w *workerEntry, r shardRange) error {
	st, err := w.cl.Submit(ctx, shardSpec(job.Spec, r))
	if err != nil {
		return fmt.Errorf("submit shard: %w", err)
	}
	shardID := st.ID
	done := false
	defer func() {
		if done {
			return
		}
		// Reassignment or coordinator shutdown: don't leave an orphaned
		// shard burning the worker (background context — ctx is dead).
		cctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_, _ = w.cl.Cancel(cctx, shardID)
	}()

	harvest := func() error {
		recs, err := w.cl.Experiments(ctx, shardID, r.lo, r.hi)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			job.addHarvested(rec.Index, rec.Seed, rec.Result)
		}
		return nil
	}

	tick := time.NewTicker(s.harvestEvery())
	defer tick.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		st, err := w.cl.Status(ctx, shardID)
		if err == nil {
			err = harvest()
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if misses++; misses >= workerMisses {
				return fmt.Errorf("worker %s unreachable: %w", w.URL, err)
			}
			continue
		}
		misses = 0
		switch st.State {
		case StateDone:
			if left := job.missingWithin(r); len(left) > 0 {
				return fmt.Errorf("worker %s finished shard [%d,%d) with %d ranges unharvested",
					w.URL, r.lo, r.hi, len(left))
			}
			done = true
			return nil
		case StateFailed:
			return fmt.Errorf("worker %s shard [%d,%d): %s", w.URL, r.lo, r.hi, st.Error)
		case StateCancelled:
			return fmt.Errorf("worker %s shard [%d,%d) was cancelled on the worker",
				w.URL, r.lo, r.hi)
		}
		// queued, running or interrupted (worker draining — its restart
		// resumes the shard from its own journal): keep polling.
	}
}

// runShardLocally executes one shard on the coordinator's own campaign
// pool — the no-fleet fallback. Results flow through addHarvested like
// remote triples, so journal, counters and SSE progress are uniform.
func (s *Server) runShardLocally(ctx context.Context, job *Job, r shardRange) error {
	cfg, err := shardSpec(job.Spec, r).Config()
	if err != nil {
		return err
	}
	cfg.Metrics = job.reg
	cfg.OnResult = func(i int, seed int64, res *campaign.ExperimentResult) {
		job.addHarvested(i, seed, res)
	}
	if d := s.opts.expThrottle; d > 0 {
		inner := cfg.OnResult
		cfg.OnResult = func(i int, seed int64, res *campaign.ExperimentResult) {
			inner(i, seed, res)
			time.Sleep(d)
		}
	}
	cfg.Completed = job.completedSnapshot()
	_, err = campaign.RunStudy(ctx, cfg)
	return err
}

// mergeShards replays every harvested triple through one merge-only
// RunStudy: the Completed map is fully populated, so zero experiments
// execute and the aggregation — campaign grouping, WallMin/WallMax
// folding, statistics, atlas site tallies — is the single-node code
// path over the single-node inputs. That is what makes the merged
// study byte-identical to an unsharded run of the same spec: even the
// exported wall fields derive from the per-experiment triples, not
// from this run's clock.
func (s *Server) mergeShards(ctx context.Context, job *Job) (*campaign.StudyResult, error) {
	cfg, err := job.Spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Metrics = job.reg
	cfg.Completed = job.completedSnapshot()
	return campaign.RunStudy(ctx, cfg)
}
