package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"vulfi/internal/api"
	"vulfi/internal/campaign"
	"vulfi/internal/obs"
	"vulfi/internal/profile"
)

// Coordinator mode: a job submitted with "shards": N > 1 is not run on
// the local campaign pool. Instead the deterministic experiment-index
// schedule is split into contiguous range shards, each shard is
// dispatched to a registered worker vulfid as a normal job whose spec
// carries shard_start/shard_end, and the worker's checkpointed
// (index, seed, result) triples are harvested over
// GET /v1/jobs/{id}/experiments into the coordinator's own journal as
// they appear. A shard is nothing but a range filter over the same
// schedule every single-node run uses, and a harvested triple is
// byte-identical to a locally executed one — so when every index has a
// triple, one merge-only RunStudy (fully populated Completed map, zero
// fresh executions) reproduces the single-node aggregation exactly:
// campaign grouping, WallMin/WallMax folding, statistics, atlas site
// tallies, history entry.
//
// Failure handling falls out of the same journal the drain/resume path
// uses: a worker that dies mid-shard leaves its harvested prefix in
// the coordinator's journal, the unharvested remainder is re-planned
// as fresh ranges and handed to another worker (or run locally when
// the fleet is empty), and a restarted coordinator resumes the whole
// sharded job from its journal like any other interrupted job.

const (
	defaultWorkerTTL    = 15 * time.Second
	defaultHarvestEvery = 2 * time.Second
	// workerMisses is how many consecutive failed polls (status or
	// harvest) declare a worker unreachable and trigger reassignment.
	workerMisses = 3
)

// shardRange is a half-open range [lo, hi) of experiment indices.
type shardRange struct{ lo, hi int }

func (r shardRange) size() int { return r.hi - r.lo }

// missingWithin returns the maximal contiguous runs of indices inside
// within that have no checkpointed result yet.
func (j *Job) missingWithin(within shardRange) []shardRange {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []shardRange
	run := -1
	for i := within.lo; i < within.hi; i++ {
		if j.completed[i] != nil {
			if run >= 0 {
				out = append(out, shardRange{run, i})
				run = -1
			}
			continue
		}
		if run < 0 {
			run = i
		}
	}
	if run >= 0 {
		out = append(out, shardRange{run, within.hi})
	}
	return out
}

// planShards splits the missing runs into about n similarly sized
// ranges: a fresh study yields n contiguous slices of [0, total); a
// resumed job's scattered gaps keep their natural run boundaries, with
// the largest runs split until at least n shards exist (or nothing is
// left to split). Sorted by start index for deterministic dispatch.
func planShards(runs []shardRange, n int) []shardRange {
	out := append([]shardRange(nil), runs...)
	for len(out) > 0 && len(out) < n {
		li := 0
		for i, r := range out {
			if r.size() > out[li].size() {
				li = i
			}
		}
		if out[li].size() < 2 {
			break
		}
		r := out[li]
		mid := r.lo + r.size()/2
		out[li] = shardRange{r.lo, mid}
		out = append(out, shardRange{mid, r.hi})
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].lo < out[k-1].lo; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

func (s *Server) workerTTL() time.Duration {
	if s.opts.WorkerTTL > 0 {
		return s.opts.WorkerTTL
	}
	return defaultWorkerTTL
}

func (s *Server) harvestEvery() time.Duration {
	if s.opts.HarvestEvery > 0 {
		return s.opts.HarvestEvery
	}
	return defaultHarvestEvery
}

// coordObs records the coordinator's own side of a timeline-enabled
// sharded job — the dispatch/harvest/merge spans that become lane 0
// ("coordinator") of the fleet timeline. Its trace identity is exactly
// the one a single-node run of the spec would derive (or the one the
// submitting client sent via traceparent), and each shard's dispatched
// spec carries a traceparent naming that shard's coordinator span, so
// the worker's study root nests under it — MergeRemote's causality
// seam, one level deeper. nil when the job is untraced; all methods are
// nil-safe.
type coordObs struct {
	col   *obs.Collector
	tid   string
	seed  int64
	epoch time.Time
	attrs map[string]string
}

func newCoordObs(job *Job, epoch time.Time) *coordObs {
	if !job.Spec.Timeline {
		return nil
	}
	cfg, err := job.Spec.Config()
	if err != nil {
		return nil // Submit already validated; unreachable in practice
	}
	var tid, parent string
	if job.Spec.TraceParent != "" {
		tid, parent, _ = obs.ParseTraceparent(job.Spec.TraceParent)
	}
	if tid == "" {
		tid = obs.DeriveTraceID(fmt.Sprintf("%s seed=%d", cfg.String(), cfg.Seed))
	}
	root := obs.DeriveSpanID(tid, "study", cfg.Seed)
	backend := cfg.Backend
	if backend == "" {
		backend = "tree"
	}
	return &coordObs{
		col:   obs.NewCollector(tid, root, parent, 0, epoch),
		tid:   tid,
		seed:  cfg.Seed,
		epoch: epoch,
		attrs: map[string]string{
			"benchmark":   cfg.Benchmark.Name,
			"isa":         cfg.ISA.Name,
			"category":    cfg.Category.String(),
			"backend":     backend,
			"seed":        strconv.FormatInt(cfg.Seed, 10),
			"experiments": strconv.Itoa(job.Spec.ScheduleTotal()),
			"shards":      strconv.Itoa(job.Spec.Shards),
		},
	}
}

// shardSpanID derives the deterministic coordinator span ID for one
// shard range; reassigned attempts of the same range share it, exactly
// like a golden cache refill repeats its span identity.
func (co *coordObs) shardSpanID(r shardRange) string {
	return obs.DeriveSpanID(co.tid, fmt.Sprintf("shard[%d,%d)", r.lo, r.hi), co.seed)
}

// traceparent renders the traceparent the dispatched shard spec carries
// ("" when the job is untraced).
func (co *coordObs) traceparent(r shardRange) string {
	if co == nil {
		return ""
	}
	return obs.FormatTraceparent(co.tid, co.shardSpanID(r))
}

// shardSpan records one shard attempt's dispatch-to-completion window
// on the coordinator lane.
func (co *coordObs) shardSpan(r shardRange, worker, state string, start time.Time, dur time.Duration) {
	if co == nil {
		return
	}
	co.col.Ctl(fmt.Sprintf("shard[%d,%d)", r.lo, r.hi), co.shardSpanID(r),
		co.col.Root(), start, dur,
		map[string]string{
			"lo": strconv.Itoa(r.lo), "hi": strconv.Itoa(r.hi),
			"worker": worker, "state": state,
		})
}

// span records a named singleton coordinator span (e.g. "merge").
func (co *coordObs) span(name string, start time.Time, dur time.Duration) {
	if co == nil {
		return
	}
	co.col.Ctl(name, obs.DeriveSpanID(co.tid, name, co.seed), co.col.Root(),
		start, dur, nil)
}

// finish closes the coordinator's root study span and returns its
// timeline, ready for obs.MergeShards.
func (co *coordObs) finish(wall time.Duration) *obs.Timeline {
	co.col.Ctl("study", co.col.Root(), co.col.Parent(), co.epoch, wall, co.attrs)
	return co.col.Finish(wall)
}

// runShardedJob is the coordinator's counterpart of runJob: it drives
// one sharded job from planning through dispatch, harvest,
// reassignment and the final merge.
func (s *Server) runShardedJob(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.setRunning(cancel) {
		return // cancelled while queued
	}
	s.mx.running.Add(1)
	defer s.mx.running.Add(-1)
	start := time.Now()

	full := shardRange{0, job.Spec.ScheduleTotal()}
	pending := planShards(job.missingWithin(full), job.Spec.Shards)
	s.logf("coordinator: job %s planned %d shards over %d missing experiments",
		job.ID, len(pending), job.Spec.Total()-job.Status().Done)
	co := newCoordObs(job, start)

	type shardDone struct {
		r      shardRange
		worker string
		err    error
	}
	results := make(chan shardDone)
	inflight := 0
	failures := 0
	// A sharded job that keeps failing must converge on an answer, not
	// spin: after this many shard failures the job fails for good. The
	// local fallback makes genuine progress in the meantime, so the cap
	// only triggers on systematically failing specs or fleets.
	maxFailures := 2*len(pending) + 8
	var lastErr error

	launch := func(r shardRange, w *workerEntry) {
		inflight++
		name := "local"
		if w != nil {
			// Display name throughout: shard/fleet events, harvest
			// checkpoints and the coordinator's shard spans must agree on
			// the worker's identity or /v1/fleet double-counts it.
			name = s.fleet.name(w)
		}
		job.broadcast("shard", api.ShardEvent{
			Lo: r.lo, Hi: r.hi, Worker: name, State: "assigned",
			Done: job.Status().Done, Total: job.Status().Total,
		})
		tp := co.traceparent(r)
		go func() {
			shStart := time.Now()
			var err error
			if w != nil {
				err = s.runShardOnWorker(ctx, job, w, r, tp)
				s.fleet.release(w, err != nil && ctx.Err() == nil)
			} else {
				err = s.runShardLocally(ctx, job, r, tp)
			}
			state := "done"
			if err != nil {
				state = "failed"
			}
			co.shardSpan(r, name, state, shStart, time.Since(shStart))
			results <- shardDone{r: r, worker: name, err: err}
		}()
	}

	for (len(pending) > 0 || inflight > 0) && ctx.Err() == nil && failures <= maxFailures {
		handed := false
		for len(pending) > 0 {
			w := s.fleet.acquire()
			if w == nil {
				break
			}
			r := pending[0]
			pending = pending[1:]
			launch(r, w)
			handed = true
		}
		if len(pending) > 0 && inflight == 0 {
			// No reachable worker and nothing in flight: run the next shard
			// on the coordinator itself, so a coordinator with no fleet
			// degrades to a single node instead of stalling.
			r := pending[0]
			pending = pending[1:]
			launch(r, nil)
			handed = true
		}
		if handed {
			continue
		}
		select {
		case d := <-results:
			inflight--
			switch {
			case d.err == nil:
				job.broadcast("shard", api.ShardEvent{
					Lo: d.r.lo, Hi: d.r.hi, Worker: d.worker, State: "done",
					Done: job.Status().Done, Total: job.Status().Total,
				})
			case ctx.Err() != nil:
				// Cancelled or draining; the terminal switch below decides.
			default:
				failures++
				lastErr = d.err
				left := job.missingWithin(d.r)
				s.logf("coordinator: job %s shard [%d,%d) on %s failed (%v); re-planning %d ranges",
					job.ID, d.r.lo, d.r.hi, d.worker, d.err, len(left))
				job.broadcast("shard", api.ShardEvent{
					Lo: d.r.lo, Hi: d.r.hi, Worker: d.worker, State: "failed",
					Done: job.Status().Done, Total: job.Status().Total,
				})
				// Fleet incidents become "fleet" SSE events, telemetry
				// counters and journaled checkpoints — one signal, three
				// consumers (live watchers, scrapers, /v1/fleet across
				// restarts).
				if d.worker != "local" {
					s.reg.Counter("coordinator.workers_lost").Inc()
					job.noteHarvest(HarvestCheckpoint{Worker: d.worker, Event: "worker_lost"})
					job.broadcast("fleet", api.FleetEvent{
						Type: "worker_lost", Worker: d.worker,
						Lo: d.r.lo, Hi: d.r.hi, Error: d.err.Error(),
					})
				}
				if len(left) > 0 {
					s.reg.Counter("coordinator.reassigned").Inc()
					job.noteHarvest(HarvestCheckpoint{Worker: d.worker, Event: "reassigned"})
					job.broadcast("fleet", api.FleetEvent{
						Type: "reassigned", Worker: d.worker,
						Lo: left[0].lo, Hi: left[len(left)-1].hi,
					})
				}
				pending = append(pending, left...)
			}
		case <-time.After(s.harvestEvery()):
			// Idle poll: a worker may have registered or come back alive
			// since the last hand-out attempt.
		case <-ctx.Done():
		}
	}
	// Let in-flight shard runners unwind (they observe ctx promptly);
	// their results still dedupe through addHarvested.
	for inflight > 0 {
		<-results
		inflight--
	}

	s.mx.jobWall.Since(start)
	missing := job.missingWithin(full)
	switch {
	case ctx.Err() == nil && len(missing) == 0:
		sr, err := s.mergeShards(ctx, job, co)
		if err != nil {
			s.mx.failed.Inc()
			job.finish(StateFailed, fmt.Sprintf("merge: %v", err), nil)
			return
		}
		s.mx.completed.Inc()
		job.finish(StateDone, "", marshalStudy(sr))
		s.recordHistory(job, sr)
	case job.cancelRequested():
		s.mx.cancelled.Inc()
		job.finish(StateCancelled, "", nil)
	case s.baseCtx.Err() != nil:
		// Coordinator drain: harvested triples are journaled; the next
		// daemon resumes the job and re-plans only the missing ranges.
		job.finish(StateInterrupted, "", nil)
		s.logf("drain: job %s interrupted at %d/%d experiments",
			job.ID, job.Status().Done, job.Status().Total)
	default:
		s.mx.failed.Inc()
		job.finish(StateFailed, fmt.Sprintf("sharding failed after %d shard failures: %v",
			failures, lastErr), nil)
	}
}

// shardSpec derives the spec dispatched to a worker for one range:
// same study knobs, the shard range set, and the coordinator-side
// concerns stripped — the worker must not recurse into sharding, and
// atlas attribution is a merge-time output (computing partial tallies
// on workers would waste golden re-runs on data the merge recomputes).
// tp, when non-empty, is the coordinator's per-shard traceparent: the
// shard's study root then nests under the coordinator's span for that
// range, which is what keeps the merged fleet trace joinable by span
// ID.
func shardSpec(spec Spec, r shardRange, tp string) Spec {
	spec.Shards = 0
	spec.ShardStart, spec.ShardEnd = r.lo, r.hi
	spec.Atlas = false
	if tp != "" {
		spec.TraceParent = tp
	}
	return spec
}

// runShardOnWorker submits one shard to a worker and polls it to
// completion, harvesting checkpointed triples into the coordinator's
// journal every HarvestEvery. A worker that fails workerMisses
// consecutive polls is declared unreachable (the shard's unharvested
// remainder gets reassigned); a worker that drains mid-shard keeps the
// job journaled, so the poll loop just keeps watching until its
// restarted daemon resumes and finishes the shard job.
func (s *Server) runShardOnWorker(ctx context.Context, job *Job, w *workerEntry, r shardRange, tp string) error {
	st, err := w.cl.Submit(ctx, shardSpec(job.Spec, r, tp))
	if err != nil {
		return fmt.Errorf("submit shard: %w", err)
	}
	shardID := st.ID
	worker := s.fleet.name(w)
	done := false
	defer func() {
		if done {
			return
		}
		// Reassignment or coordinator shutdown: don't leave an orphaned
		// shard burning the worker (background context — ctx is dead).
		cctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_, _ = w.cl.Cancel(cctx, shardID)
	}()

	lastHarvest := time.Now()
	harvest := func() error {
		recs, err := w.cl.Experiments(ctx, shardID, r.lo, r.hi)
		if err != nil {
			return err
		}
		fresh := 0
		for _, rec := range recs {
			if job.addHarvested(rec.Index, rec.Seed, rec.Result) {
				fresh++
			}
		}
		if fresh > 0 {
			now := time.Now()
			job.noteHarvest(HarvestCheckpoint{
				Worker: worker, N: fresh,
				NS: now.Sub(lastHarvest).Nanoseconds(), At: now,
			})
			lastHarvest = now
		}
		return nil
	}

	tick := time.NewTicker(s.harvestEvery())
	defer tick.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		st, err := w.cl.Status(ctx, shardID)
		if err == nil {
			err = harvest()
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if misses++; misses >= workerMisses {
				return fmt.Errorf("worker %s unreachable: %w", w.URL, err)
			}
			continue
		}
		misses = 0
		switch st.State {
		case StateDone:
			if left := job.missingWithin(r); len(left) > 0 {
				return fmt.Errorf("worker %s finished shard [%d,%d) with %d ranges unharvested",
					w.URL, r.lo, r.hi, len(left))
			}
			// Observability harvest rides the same misses budget as the
			// triple polls: a worker that vanishes between its last triple
			// and this fetch is still "unreachable", and the remainder (the
			// obs, not any triples) is simply lost — the merge tolerates
			// missing shard obs.
			if o, ferr := s.harvestShardObs(ctx, job, w, worker, shardID); ferr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if misses++; misses >= workerMisses {
					return fmt.Errorf("worker %s unreachable harvesting observability: %w", w.URL, ferr)
				}
				continue
			} else if o != nil {
				job.addShardObs(*o)
			}
			done = true
			return nil
		case StateFailed:
			return fmt.Errorf("worker %s shard [%d,%d): %s", w.URL, r.lo, r.hi, st.Error)
		case StateCancelled:
			return fmt.Errorf("worker %s shard [%d,%d) was cancelled on the worker",
				w.URL, r.lo, r.hi)
		}
		// queued, running or interrupted (worker draining — its restart
		// resumes the shard from its own journal): keep polling.
	}
}

// harvestShardObs pulls a finished shard's timeline and profile from
// its worker (whichever the job asked for). Returns (nil, nil) when the
// job wants neither.
func (s *Server) harvestShardObs(ctx context.Context, job *Job, w *workerEntry, worker, shardID string) (*ShardObs, error) {
	if !job.Spec.Timeline && !job.Spec.Profile {
		return nil, nil
	}
	o := ShardObs{Worker: worker}
	if job.Spec.Timeline {
		tl, err := w.cl.Timeline(ctx, shardID)
		if err != nil {
			return nil, fmt.Errorf("timeline: %w", err)
		}
		o.Timeline = tl
	}
	if job.Spec.Profile {
		raw, err := w.cl.Profile(ctx, shardID)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if len(raw) > 0 {
			var hp profile.Profile
			if err := json.Unmarshal(raw, &hp); err != nil {
				return nil, fmt.Errorf("profile: %w", err)
			}
			o.Profile = &hp
		}
	}
	return &o, nil
}

// runShardLocally executes one shard on the coordinator's own campaign
// pool — the no-fleet fallback. Results flow through addHarvested like
// remote triples, so journal, counters and SSE progress are uniform,
// and the shard's observability lands in addShardObs exactly as a
// harvested worker's would.
func (s *Server) runShardLocally(ctx context.Context, job *Job, r shardRange, tp string) error {
	spec := shardSpec(job.Spec, r, tp)
	cfg, err := spec.Config()
	if err != nil {
		return err
	}
	cfg.Metrics = job.reg
	var fresh int64
	cfg.OnResult = func(i int, seed int64, res *campaign.ExperimentResult) {
		if job.addHarvested(i, seed, res) {
			atomic.AddInt64(&fresh, 1)
		}
	}
	if d := s.opts.expThrottle; d > 0 {
		inner := cfg.OnResult
		cfg.OnResult = func(i int, seed int64, res *campaign.ExperimentResult) {
			inner(i, seed, res)
			time.Sleep(d)
		}
	}
	cfg.Completed = job.completedSnapshot()
	start := time.Now()
	sr, err := campaign.RunStudy(ctx, cfg)
	if err != nil {
		return err
	}
	if n := atomic.LoadInt64(&fresh); n > 0 {
		now := time.Now()
		job.noteHarvest(HarvestCheckpoint{
			Worker: "local", N: int(n),
			NS: now.Sub(start).Nanoseconds(), At: now,
		})
	}
	if job.Spec.Timeline || job.Spec.Profile {
		job.addShardObs(ShardObs{
			Worker: "local", Timeline: sr.Timeline, Profile: sr.HotProfile,
		})
	}
	return nil
}

// mergeShards replays every harvested triple through one merge-only
// RunStudy: the Completed map is fully populated, so zero experiments
// execute and the aggregation — campaign grouping, WallMin/WallMax
// folding, statistics, atlas site tallies — is the single-node code
// path over the single-node inputs. That is what makes the merged
// study byte-identical to an unsharded run of the same spec: even the
// exported wall fields derive from the per-experiment triples, not
// from this run's clock.
//
// Observability merges separately from the triples: the merge-only
// RunStudy runs with timeline and profile stripped (a merge pass
// executes nothing, so its own profile would be empty and its timeline
// a lie), and the harvested shard artifacts are folded in afterwards —
// profiles summed exactly over their uncapped stack rows, timelines
// re-anchored under the coordinator's dispatch/harvest span tree.
func (s *Server) mergeShards(ctx context.Context, job *Job, co *coordObs) (*campaign.StudyResult, error) {
	cfg, err := job.Spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Timeline, cfg.Profile, cfg.TraceParent = false, false, ""
	cfg.Metrics = job.reg
	cfg.Completed = job.completedSnapshot()
	mergeStart := time.Now()
	sr, err := campaign.RunStudy(ctx, cfg)
	if err != nil {
		return nil, err
	}
	parts := job.shardObsSnapshot()
	if job.Spec.Profile {
		var profs []*profile.Profile
		for _, o := range parts {
			profs = append(profs, o.Profile)
		}
		sr.HotProfile = profile.Merge(profs...)
	}
	if co != nil {
		co.span("merge", mergeStart, time.Since(mergeStart))
		var shards []obs.ShardTimeline
		for _, o := range parts {
			if o.Timeline != nil {
				shards = append(shards, obs.ShardTimeline{Worker: o.Worker, Timeline: o.Timeline})
			}
		}
		sr.Timeline = obs.MergeShards(co.finish(time.Since(co.epoch)), shards)
	}
	return sr, nil
}
