package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vulfi/internal/campaign"
	"vulfi/internal/obs"
)

// TestTimelineTraceParentRoundTrip pins the full remote-tracing path at
// the HTTP layer: a client that traces its own side submits a job with
// a W3C traceparent header, and the finished study's timeline must
// adopt the client's trace ID and parent its root span under the
// client's span — one coherent trace across the process boundary.
func TestTimelineTraceParentRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clientTrace := obs.DeriveTraceID("vulfi-remote-test")
	clientSpan := obs.DeriveSpanID(clientTrace, "vulfi-remote", 1)

	spec := testSpec()
	spec.Timeline = true
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceparent(clientTrace, clientSpan))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	// The header landed in the journaled spec, so tracing context
	// survives daemon restarts like every other knob.
	if st.Spec.TraceParent == "" {
		t.Fatal("traceparent header not copied into the spec")
	}
	waitState(t, s, st.ID, StateDone)

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: %s: %s", resp.Status, raw)
	}
	var tr struct {
		Timeline *obs.Timeline `json:"timeline"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Timeline == nil {
		t.Fatalf("no timeline in response: %s", raw)
	}
	if tr.Timeline.TraceID != clientTrace {
		t.Fatalf("server trace ID %s, want the client's %s",
			tr.Timeline.TraceID, clientTrace)
	}
	if tr.Timeline.Parent != clientSpan {
		t.Fatalf("timeline parent %q, want client span %s",
			tr.Timeline.Parent, clientSpan)
	}
	rooted := false
	for _, sp := range tr.Timeline.Spans {
		if sp.ID == tr.Timeline.Root {
			rooted = sp.Parent == clientSpan
		}
	}
	if !rooted {
		t.Fatal("study root span is not parented under the client span")
	}

	// ?format=trace re-exports as Chrome trace-event JSON.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/timeline?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace export: %s: %s", resp.Status, raw)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace export is not trace-event JSON: %v", err)
	}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace export has no complete (ph=X) events")
	}
}

// TestTimelineNotTraced: ?format=trace on an untraced job is a 409, and
// the default response still serves the watchdog view.
func TestTimelineNotTraced(t *testing.T) {
	s := newTestServer(t, Options{})
	defer drain(t, s)
	job, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/timeline?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace export of untraced job: %s, want 409", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status view: %s: %s", resp.Status, raw)
	}
	var tr struct {
		Timeline json.RawMessage `json:"timeline"`
		Watchdog *struct {
			Stalls     []StallReport `json:"stalls"`
			Heartbeats []uint64      `json:"heartbeats"`
		} `json:"watchdog"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Timeline) != 0 {
		t.Fatalf("untraced job served a timeline: %s", tr.Timeline)
	}
	if tr.Watchdog == nil {
		t.Fatalf("no watchdog view in response: %s", raw)
	}
	beat := uint64(0)
	for _, b := range tr.Watchdog.Heartbeats {
		beat += b
	}
	if beat == 0 {
		t.Fatal("no interpreter heartbeats recorded for a completed job")
	}
}

// TestWatchdogStallRepro forges a straggler (a test-only injected sleep
// at one experiment index) and pins the whole watchdog path: the stall
// is flagged with the right index, the watchdog.stalls counter bumps,
// the report is back-filled when the straggler finishes, and its repro
// bundle replays the exact experiment deterministically.
func TestWatchdogStallRepro(t *testing.T) {
	const stallIdx = 6
	s := newTestServer(t, Options{
		WatchdogTick:    5 * time.Millisecond,
		StallMin:        30 * time.Millisecond,
		StallMinSamples: 4,
		StallFactor:     2,
		stallInject: func(index int) {
			if index == stallIdx {
				time.Sleep(300 * time.Millisecond)
			}
		},
	})
	defer drain(t, s)

	spec := testSpec()
	spec.Workers = 2
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)

	wd := job.Watchdog()
	if wd == nil {
		t.Fatal("finished job has no watchdog")
	}
	stalls, beats := wd.snapshot()
	if len(stalls) == 0 {
		t.Fatal("injected 300ms straggler was never flagged")
	}
	var report *StallReport
	for i := range stalls {
		if stalls[i].Index == stallIdx {
			report = &stalls[i]
		}
	}
	if report == nil {
		t.Fatalf("no stall report for index %d: %+v", stallIdx, stalls)
	}
	if got := job.Registry().Counter("watchdog.stalls").Value(); got == 0 {
		t.Fatal("watchdog.stalls counter not bumped")
	}
	if !report.Completed {
		t.Fatal("straggler finished but its report was not back-filled")
	}
	if report.ElapsedNS <= report.ThresholdNS || report.ThresholdNS <= 0 {
		t.Fatalf("implausible stall report: elapsed %d, threshold %d",
			report.ElapsedNS, report.ThresholdNS)
	}
	if report.Worker < 0 || report.Worker >= len(beats) {
		t.Fatalf("stall worker %d out of range [0,%d)", report.Worker, len(beats))
	}

	// The repro bundle is self-contained: resolving its spec and running
	// its index replays the flagged experiment exactly.
	b := report.Repro
	if b.Spec.Benchmark != spec.Benchmark || b.Index != stallIdx {
		t.Fatalf("repro bundle %+v does not match the stalled experiment", b)
	}
	if !strings.Contains(b.Command, fmt.Sprintf("-explain %d", stallIdx)) {
		t.Fatalf("repro command %q does not pin the experiment index", b.Command)
	}
	replay := func() *campaign.ExperimentResult {
		cfg, err := b.Spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		if got := cfg.ExperimentSeed(b.Index); got != b.Seed {
			t.Fatalf("bundle seed %d, schedule says %d", b.Seed, got)
		}
		p, err := campaign.Prepare(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.RunExperimentAt(context.Background(), b.Index)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := replay(), replay()
	if r1.Outcome != r2.Outcome || r1.Detected != r2.Detected ||
		r1.Record != r2.Record {
		t.Fatalf("repro replay diverged:\n1: %+v %+v\n2: %+v %+v",
			r1.Outcome, r1.Record, r2.Outcome, r2.Record)
	}
}

// TestEventsKeepAlive: while the SSE stream is quiet — here, a worker
// wedged at experiment 0, so no progress events flow and a slow
// consumer would otherwise see a silent connection — the handler must
// emit ": keep-alive" comments so intermediaries keep the stream open.
func TestEventsKeepAlive(t *testing.T) {
	s := newTestServer(t, Options{
		KeepAlive: 20 * time.Millisecond,
		stallInject: func(index int) {
			if index == 0 {
				time.Sleep(400 * time.Millisecond)
			}
		},
	})
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec()
	spec.Workers = 1 // everything queues behind the wedged experiment 0
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/jobs/"+job.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var stream []byte
	buf := make([]byte, 4096)
	for !bytes.Contains(stream, []byte(": keep-alive")) {
		n, err := resp.Body.Read(buf)
		stream = append(stream, buf[:n]...)
		if err != nil {
			t.Fatalf("stream ended without a keep-alive (%v): %q", err, stream)
		}
	}
	waitState(t, s, job.ID, StateDone)
}
