package server

import _ "embed"

// dashboardHTML is the self-contained GET /dashboard page: vanilla
// inline JS polling /v1/jobs, tailing the newest running job's SSE
// stream, and rendering /v1/history trends as inline-SVG sparklines.
//
//go:embed dashboard.html
var dashboardHTML []byte
