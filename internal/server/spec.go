// Package server turns the one-shot campaign CLIs into a long-lived
// study service: an HTTP/JSON API over a bounded job queue, a scheduler
// that runs study cells on the campaign worker pool, and a crash-safe
// JSONL journal that checkpoints every completed experiment so an
// interrupted daemon resumes incomplete jobs on restart with identical
// statistics (the per-index seed schedule is deterministic). Started as
// a coordinator, the same daemon instead splits sharded jobs across a
// registered worker fleet and merges the results byte-identically to a
// single-node run (coordinator.go).
//
// API surface (all under /v1; 401 when API keys are configured and the
// request carries none of them):
//
//	POST   /v1/jobs          submit a study spec  (202, or 429 when the
//	                         queue or the tenant's quota is full)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}         status + result when finished
//	GET    /v1/jobs/{id}/events  live progress as Server-Sent Events
//	GET    /v1/jobs/{id}/metrics per-job Prometheus metrics
//	GET    /v1/jobs/{id}/explain propagation profile, or ?index=N for one
//	                             experiment's divergence explanation
//	GET    /v1/jobs/{id}/profile the finished job's execution profile
//	GET    /v1/jobs/{id}/timeline span timeline (?format=trace for Chrome
//	                             trace events) plus live watchdog status
//	GET    /v1/jobs/{id}/experiments checkpointed (index, seed, result)
//	                             triples (?from=&to= bound the range)
//	DELETE /v1/jobs/{id}         cancel (cooperative, between experiments)
//	POST   /v1/workers       register a worker vulfid (idempotent; the
//	                         re-post is the heartbeat)
//	GET    /v1/workers       the coordinator's fleet view
//	GET    /v1/fleet         fleet metrics: per-worker harvest rates,
//	                         lag, reassignment/loss/stall counters
//
// plus the process-wide /metrics, /debug/vars and /debug/pprof endpoints
// from the telemetry package.
//
// The wire types themselves — Spec, Status, the lifecycle states, the
// worker-fleet records — live in the versioned internal/api package,
// shared with the typed internal/client; the aliases below keep the
// historical server.Spec spelling working for in-process users.
package server

import "vulfi/internal/api"

// APIVersion identifies the wire schema of the /v1 API (see
// api.APIVersion for the changelog).
const APIVersion = api.APIVersion

// Wire types, re-exported from the versioned schema package.
type (
	Spec   = api.Spec
	Status = api.Status
)

// Job lifecycle states (see the api package for semantics).
const (
	StateQueued      = api.StateQueued
	StateRunning     = api.StateRunning
	StateDone        = api.StateDone
	StateFailed      = api.StateFailed
	StateCancelled   = api.StateCancelled
	StateInterrupted = api.StateInterrupted
)

// Parsers and schema introspection, re-exported for the CLIs.
var (
	SpecFields    = api.SpecFields
	ParseCategory = api.ParseCategory
	ParseScale    = api.ParseScale
	ParseBackend  = api.ParseBackend
)

func terminalState(s string) bool { return api.TerminalState(s) }
