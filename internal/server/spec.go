// Package server turns the one-shot campaign CLIs into a long-lived
// study service: an HTTP/JSON API over a bounded job queue, a scheduler
// that runs study cells on the campaign worker pool, and a crash-safe
// JSONL journal that checkpoints every completed experiment so an
// interrupted daemon resumes incomplete jobs on restart with identical
// statistics (the per-index seed schedule is deterministic).
//
// API surface (all under /v1):
//
//	POST   /v1/jobs          submit a study spec  (202, or 429 when full)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}         status + result when finished
//	GET    /v1/jobs/{id}/events  live progress as Server-Sent Events
//	GET    /v1/jobs/{id}/metrics per-job Prometheus metrics
//	GET    /v1/jobs/{id}/explain propagation profile, or ?index=N for one
//	                             experiment's divergence explanation
//	GET    /v1/jobs/{id}/profile the finished job's execution profile
//	GET    /v1/jobs/{id}/timeline span timeline (?format=trace for Chrome
//	                             trace events) plus live watchdog status
//	DELETE /v1/jobs/{id}         cancel (cooperative, between experiments)
//
// plus the process-wide /metrics, /debug/vars and /debug/pprof endpoints
// from the telemetry package.
package server

import (
	"fmt"
	"reflect"
	"strings"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// APIVersion identifies the wire schema of the /v1 API. Every response
// carries it in the Vulfid-Api-Version header, so clients can detect
// schema drift without parsing bodies. Bumped when the request or
// response schema changes in a way a client could observe (1.1 added
// the "inputs" pool knob and the version header itself; 1.2 added the
// "atlas" spec knob, GET /v1/history, GET /dashboard and the
// Vulfid-Build header; 1.3 added the "profile" spec knob and
// GET /v1/jobs/{id}/profile; 1.4 added the "backend" spec knob; 1.5
// added the "timeline" and "trace_parent" spec knobs — the latter also
// accepted as a W3C traceparent request header on POST /v1/jobs —
// GET /v1/jobs/{id}/timeline and the watchdog "stall" SSE event).
const APIVersion = "1.5"

// Spec is the wire form of one study cell: the JSON body of POST
// /v1/jobs. Zero-valued counts inherit the paper's defaults (100
// experiments × 20 campaigns).
//
// # Request schema (POST /v1/jobs)
//
// Unknown fields are rejected with a descriptive 400, so typos never
// silently run a default study. All fields below are optional except
// benchmark, isa and category:
//
//	{
//	  "benchmark": "Blackscholes",      // required; see `vulfi -list`
//	  "isa": "AVX",                     // required; "AVX" or "SSE"
//	  "category": "pure-data",          // required; "pure-data", "control", "address"
//	  "scale": "default",               // "test", "default", "large"
//	  "experiments": 100,               // per campaign; 0 = paper default 100
//	  "campaigns": 20,                  // 0 = paper default 20
//	  "seed": 1,                        // study seed (deterministic schedule)
//	  "workers": 0,                     // experiment parallelism; 0 = GOMAXPROCS
//	  "inputs": 0,                      // input-pool size K; see Spec.Inputs
//	  "detectors": false,               // §III foreach-invariant detectors
//	  "detector_every_iteration": false,
//	  "broadcast_detector": false,
//	  "mask_loop_detector": false,
//	  "whole_register_sites": false,
//	  "mask_oblivious": false,
//	  "trace": false,                   // divergence tracing (disables golden cache)
//	  "atlas": false,                   // per-static-site outcome attribution
//	  "profile": false,                 // execution profiler (hot_profile in the result)
//	  "backend": "tree",                // execution backend: "tree" or "vm"
//	  "timeline": false,                // span tracing (timeline in the result)
//	  "trace_parent": ""                // W3C traceparent to nest the study under
//	}
//
// # Response schema
//
// Every /v1 response is JSON, stamped with the Vulfid-Api-Version
// header. Errors are {"error": "..."} with a 4xx/5xx status. POST
// /v1/jobs answers 202 with the job status (429 + Retry-After when the
// queue is full):
//
//	{
//	  "id": "j0123456789ab",
//	  "state": "queued",                // queued|running|done|failed|cancelled
//	  "spec": { ... },                  // the submitted spec, echoed
//	  "total": 2000,                    // experiments after defaults
//	  "completed": 0,                   // experiments finished so far
//	  "error": "...",                   // failed jobs only
//	  "result": { ... }                 // finished jobs: the exported study JSON
//	}
//
// GET /v1/jobs lists {"jobs": [status...]} without results; GET
// /v1/jobs/{id} returns one full status; DELETE cancels; the /events,
// /metrics and /explain sub-resources are documented on their handlers.
type Spec struct {
	Benchmark string `json:"benchmark"`
	ISA       string `json:"isa"`
	Category  string `json:"category"`
	// Scale is "test", "default" (empty) or "large".
	Scale       string `json:"scale,omitempty"`
	Experiments int    `json:"experiments,omitempty"`
	Campaigns   int    `json:"campaigns,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	// Workers bounds the job's experiment parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Inputs is the input-pool size K: experiment i draws its program
	// input from a pool of K seeds (i mod K), enabling golden-run
	// memoization. 0 = a fresh input per experiment (no cache); 1 = the
	// paper-faithful fixed-input mode. Rides through the journal, so
	// resumed jobs keep their pool.
	Inputs int `json:"inputs,omitempty"`

	Detectors              bool `json:"detectors,omitempty"`
	DetectorEveryIteration bool `json:"detector_every_iteration,omitempty"`
	BroadcastDetector      bool `json:"broadcast_detector,omitempty"`
	MaskLoopDetector       bool `json:"mask_loop_detector,omitempty"`
	WholeRegisterSites     bool `json:"whole_register_sites,omitempty"`
	MaskOblivious          bool `json:"mask_oblivious,omitempty"`

	// Trace enables golden-vs-faulty divergence tracing: the finished
	// study carries a propagation profile (GET /v1/jobs/{id}/explain) and
	// the per-job registry gains trace.* metrics. Tracing bypasses the
	// golden-run cache (divergence analysis needs a live golden ring).
	Trace bool `json:"trace,omitempty"`

	// Atlas enables per-static-site outcome attribution: the finished
	// study's JSON carries a "sites" tally table, and the job's history
	// entry records it for longitudinal comparison (vulfi diff).
	Atlas bool `json:"atlas,omitempty"`

	// Profile enables the execution profiler: the finished study's JSON
	// carries a "hot_profile" object (hot opcodes, opcode pairs, hot
	// sites, phase breakdown, exp/s timeline), also served standalone at
	// GET /v1/jobs/{id}/profile. Profiling timestamps every interpreted
	// instruction, so profiled wall times are not comparable to
	// unprofiled runs.
	Profile bool `json:"profile,omitempty"`

	// Backend selects the execution backend: "tree" (or empty) runs the
	// reference tree-walking interpreter, "vm" the compiled bytecode
	// backend. The backends produce byte-identical results (the
	// differential suite pins outcomes, counts, traps and study JSON),
	// so the knob only affects throughput. Rides through the journal,
	// so resumed jobs keep their backend.
	Backend string `json:"backend,omitempty"`

	// Timeline enables hierarchical span tracing: the finished study's
	// JSON carries a "timeline" object (per-worker span lanes, Chrome
	// trace-event exportable), served at GET /v1/jobs/{id}/timeline.
	// Rides through the journal, so resumed jobs keep tracing — and a
	// resumed study's timeline spans only its freshly executed tail.
	Timeline bool `json:"timeline,omitempty"`

	// TraceParent, when set, is a W3C trace-context traceparent header
	// value ("00-<32hex>-<16hex>-01"): the study adopts its trace ID and
	// nests its root span under the given span, so a remote client's
	// trace parents the server-side spans. POST /v1/jobs also accepts a
	// "traceparent" request header, copied here when this field is
	// empty. Malformed values are rejected with a descriptive 400.
	TraceParent string `json:"trace_parent,omitempty"`
}

// SpecFields returns the spec's JSON field names in declaration order —
// the accepted request schema, quoted back to clients that send an
// unknown field.
func SpecFields() []string {
	t := reflect.TypeOf(Spec{})
	out := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			out = append(out, name)
		}
	}
	return out
}

// ParseCategory resolves the CLI/API spelling of a fault-site category.
func ParseCategory(name string) (passes.Category, error) {
	switch strings.ToLower(name) {
	case "pure-data", "puredata", "data":
		return passes.PureData, nil
	case "control", "ctrl":
		return passes.Control, nil
	case "address", "addr":
		return passes.Address, nil
	}
	return 0, fmt.Errorf("unknown category %q (pure-data, control, address)", name)
}

// ParseScale resolves the wire spelling of an input-size regime.
func ParseScale(name string) (benchmarks.Scale, error) {
	switch strings.ToLower(name) {
	case "", "default":
		return benchmarks.ScaleDefault, nil
	case "test", "small":
		return benchmarks.ScaleTest, nil
	case "large":
		return benchmarks.ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test, default, large)", name)
}

// ParseBackend resolves the CLI/API spelling of an execution backend.
func ParseBackend(name string) (string, error) {
	switch strings.ToLower(name) {
	case "", "tree", "interp", "interpreter":
		if name == "" {
			return "", nil
		}
		return "tree", nil
	case "vm", "bytecode":
		return "vm", nil
	}
	return "", fmt.Errorf("unknown backend %q (tree, vm)", name)
}

// Config resolves the spec's name fields and validates the result via
// campaign.Config.Validate — the same gate the CLIs and the root vulfi
// package use — returning a runnable, normalized study configuration
// (telemetry sinks and checkpoint hooks unset).
func (s Spec) Config() (campaign.Config, error) {
	var cfg campaign.Config
	b := benchmarks.ByName(s.Benchmark)
	if b == nil {
		return cfg, fmt.Errorf("unknown benchmark %q", s.Benchmark)
	}
	target := isa.ByName(strings.ToUpper(s.ISA))
	if target == nil {
		return cfg, fmt.Errorf("unknown ISA %q (AVX, SSE)", s.ISA)
	}
	cat, err := ParseCategory(s.Category)
	if err != nil {
		return cfg, err
	}
	scale, err := ParseScale(s.Scale)
	if err != nil {
		return cfg, err
	}
	backend, err := ParseBackend(s.Backend)
	if err != nil {
		return cfg, err
	}
	cfg = campaign.Config{
		Benchmark: b, ISA: target, Category: cat, Scale: scale,
		Experiments: s.Experiments, Campaigns: s.Campaigns,
		Seed: s.Seed, Workers: s.Workers, Inputs: s.Inputs,
		Detectors:              s.Detectors,
		DetectorEveryIteration: s.DetectorEveryIteration,
		BroadcastDetector:      s.BroadcastDetector,
		MaskLoopDetector:       s.MaskLoopDetector,
		WholeRegisterSites:     s.WholeRegisterSites,
		MaskOblivious:          s.MaskOblivious,
		Trace:                  s.Trace,
		Atlas:                  s.Atlas,
		Profile:                s.Profile,
		Backend:                backend,
		Timeline:               s.Timeline,
		TraceParent:            s.TraceParent,
	}
	if err := cfg.Validate(); err != nil {
		return campaign.Config{}, err
	}
	return cfg, nil
}

// Total returns the job's experiment count after applying the paper
// defaults RunStudy would apply.
func (s Spec) Total() int {
	e, c := s.Experiments, s.Campaigns
	if e <= 0 {
		e = 100
	}
	if c <= 0 {
		c = 20
	}
	return e * c
}
