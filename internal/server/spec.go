// Package server turns the one-shot campaign CLIs into a long-lived
// study service: an HTTP/JSON API over a bounded job queue, a scheduler
// that runs study cells on the campaign worker pool, and a crash-safe
// JSONL journal that checkpoints every completed experiment so an
// interrupted daemon resumes incomplete jobs on restart with identical
// statistics (the per-index seed schedule is deterministic).
//
// API surface (all under /v1):
//
//	POST   /v1/jobs          submit a study spec  (202, or 429 when full)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}         status + result when finished
//	GET    /v1/jobs/{id}/events  live progress as Server-Sent Events
//	GET    /v1/jobs/{id}/metrics per-job Prometheus metrics
//	GET    /v1/jobs/{id}/explain propagation profile, or ?index=N for one
//	                             experiment's divergence explanation
//	DELETE /v1/jobs/{id}         cancel (cooperative, between experiments)
//
// plus the process-wide /metrics, /debug/vars and /debug/pprof endpoints
// from the telemetry package.
package server

import (
	"fmt"
	"strings"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// Spec is the wire form of one study cell: the JSON body of POST
// /v1/jobs. Zero-valued counts inherit the paper's defaults (100
// experiments × 20 campaigns).
type Spec struct {
	Benchmark string `json:"benchmark"`
	ISA       string `json:"isa"`
	Category  string `json:"category"`
	// Scale is "test", "default" (empty) or "large".
	Scale       string `json:"scale,omitempty"`
	Experiments int    `json:"experiments,omitempty"`
	Campaigns   int    `json:"campaigns,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	// Workers bounds the job's experiment parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	Detectors              bool `json:"detectors,omitempty"`
	DetectorEveryIteration bool `json:"detector_every_iteration,omitempty"`
	BroadcastDetector      bool `json:"broadcast_detector,omitempty"`
	MaskLoopDetector       bool `json:"mask_loop_detector,omitempty"`
	WholeRegisterSites     bool `json:"whole_register_sites,omitempty"`
	MaskOblivious          bool `json:"mask_oblivious,omitempty"`

	// Trace enables golden-vs-faulty divergence tracing: the finished
	// study carries a propagation profile (GET /v1/jobs/{id}/explain) and
	// the per-job registry gains trace.* metrics.
	Trace bool `json:"trace,omitempty"`
}

// ParseCategory resolves the CLI/API spelling of a fault-site category.
func ParseCategory(name string) (passes.Category, error) {
	switch strings.ToLower(name) {
	case "pure-data", "puredata", "data":
		return passes.PureData, nil
	case "control", "ctrl":
		return passes.Control, nil
	case "address", "addr":
		return passes.Address, nil
	}
	return 0, fmt.Errorf("unknown category %q (pure-data, control, address)", name)
}

// ParseScale resolves the wire spelling of an input-size regime.
func ParseScale(name string) (benchmarks.Scale, error) {
	switch strings.ToLower(name) {
	case "", "default":
		return benchmarks.ScaleDefault, nil
	case "test", "small":
		return benchmarks.ScaleTest, nil
	case "large":
		return benchmarks.ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q (test, default, large)", name)
}

// Config validates the spec and resolves it into a runnable study
// configuration (telemetry sinks and checkpoint hooks unset).
func (s Spec) Config() (campaign.Config, error) {
	var cfg campaign.Config
	b := benchmarks.ByName(s.Benchmark)
	if b == nil {
		return cfg, fmt.Errorf("unknown benchmark %q", s.Benchmark)
	}
	target := isa.ByName(strings.ToUpper(s.ISA))
	if target == nil {
		return cfg, fmt.Errorf("unknown ISA %q (AVX, SSE)", s.ISA)
	}
	cat, err := ParseCategory(s.Category)
	if err != nil {
		return cfg, err
	}
	scale, err := ParseScale(s.Scale)
	if err != nil {
		return cfg, err
	}
	if s.Experiments < 0 || s.Campaigns < 0 {
		return cfg, fmt.Errorf("experiments and campaigns must be non-negative")
	}
	return campaign.Config{
		Benchmark: b, ISA: target, Category: cat, Scale: scale,
		Experiments: s.Experiments, Campaigns: s.Campaigns,
		Seed: s.Seed, Workers: s.Workers,
		Detectors:              s.Detectors,
		DetectorEveryIteration: s.DetectorEveryIteration,
		BroadcastDetector:      s.BroadcastDetector,
		MaskLoopDetector:       s.MaskLoopDetector,
		WholeRegisterSites:     s.WholeRegisterSites,
		MaskOblivious:          s.MaskOblivious,
		Trace:                  s.Trace,
	}, nil
}

// Total returns the job's experiment count after applying the paper
// defaults RunStudy would apply.
func (s Spec) Total() int {
	e, c := s.Experiments, s.Campaigns
	if e <= 0 {
		e = 100
	}
	if c <= 0 {
		c = 20
	}
	return e * c
}
