// Fault-injection tests for the §III detectors: these drive whole
// campaign experiments (hence the external test package — campaign
// imports detect) and check that when a detector fires under an
// injected fault, the experiment lands in the expected outcome class.
package detect_test

import (
	"context"
	"math/rand"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/campaign"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// uniformScaleBench broadcasts the uniform scale factor into the vector
// loop (the Figure 9 pattern the §III-B checker guards).
var uniformScaleBench = &benchmarks.Benchmark{
	Name:  "UniformScale",
	Suite: "Test",
	Entry: "scale",
	Source: `
export void scale(uniform float a[], uniform int n, uniform float s) {
	foreach (i = 0 ... n) {
		a[i] = a[i] * s;
	}
}
`,
	InputDesc: "n=64 random floats",
	Setup: func(x *exec.Instance, rng *rand.Rand, _ benchmarks.Scale) (*benchmarks.RunSpec, error) {
		const n = 64
		data := make([]float32, n)
		for i := range data {
			data[i] = rng.Float32()
		}
		addr, err := x.AllocF32(data)
		if err != nil {
			return nil, err
		}
		return &benchmarks.RunSpec{
			Args: []interp.Value{
				exec.PtrArgF32(addr), exec.I32Arg(n), exec.F32Arg(1.5),
			},
			Outputs: []benchmarks.Region{{Addr: addr, Size: 4 * n}},
			Label:   "n=64",
		}, nil
	},
}

// scanDetections runs experiments over the deterministic seed schedule
// until it has seen at least want detections (or the schedule ends) and
// returns the detected results.
func scanDetections(t *testing.T, cfg campaign.Config, want int) []*campaign.ExperimentResult {
	t.Helper()
	p, err := campaign.Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var detected []*campaign.ExperimentResult
	for i := 0; i < cfg.Experiments*cfg.Campaigns && len(detected) < want; i++ {
		r, err := p.RunExperiment(context.Background(), cfg.ExperimentSeed(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Detected {
			// A detector may only fire when an injection actually
			// happened: healthy runs have no false positives.
			if r.Record.Width == 0 {
				t.Fatalf("seed %d: detection without a performed injection",
					cfg.ExperimentSeed(i))
			}
			detected = append(detected, r)
		}
	}
	if len(detected) == 0 {
		t.Fatalf("no detections in %d experiments", cfg.Experiments*cfg.Campaigns)
	}
	return detected
}

// TestMaskLoopDetectorUnderFaults injects control-category faults into
// Mandelbrot's divergent varying-while loop and checks the
// mask-monotonicity detector fires. The expected outcome class here is
// Benign: the only non-monotonic transition a single flip can make is
// re-raising a retired mask lane (an i1 going 0→1), which the detector
// flags while the mask-aware execution semantics keep the output intact
// — the detected-but-benign class of the paper's taxonomy.
func TestMaskLoopDetectorUnderFaults(t *testing.T) {
	cfg := campaign.Config{
		Benchmark:        benchmarks.Mandelbrot,
		ISA:              isa.AVX,
		Category:         passes.Control,
		Scale:            benchmarks.ScaleTest,
		Experiments:      40,
		Campaigns:        1,
		Seed:             7,
		Detectors:        true,
		MaskLoopDetector: true,
	}
	for _, r := range scanDetections(t, cfg, 1) {
		// A mask-loop detection comes from a flipped mask lane: a
		// single-bit (i1) injection.
		if r.Record.Width != 1 {
			t.Fatalf("mask-loop detection from a %d-bit site, want an i1 mask lane (record %+v)",
				r.Record.Width, r.Record)
		}
		if r.Outcome != campaign.OutcomeBenign {
			t.Fatalf("re-raised mask lane classified %s, want Benign (record %+v)",
				r.Outcome, r.Record)
		}
	}
}

// TestBroadcastDetectorUnderFaults injects pure-data faults into a
// kernel whose scale factor is a uniform broadcast and checks the
// §III-B lane-equality detector fires on corrupted broadcast lanes.
func TestBroadcastDetectorUnderFaults(t *testing.T) {
	cfg := campaign.Config{
		Benchmark:         uniformScaleBench,
		ISA:               isa.AVX,
		Category:          passes.PureData,
		Scale:             benchmarks.ScaleTest,
		Experiments:       200,
		Campaigns:         1,
		Seed:              11,
		Detectors:         true,
		BroadcastDetector: true,
	}
	detected := scanDetections(t, cfg, 3)
	sdc := 0
	for _, r := range detected {
		if r.Outcome == campaign.OutcomeSDC {
			sdc++
		}
	}
	// A corrupted broadcast lane multiplies into the output array, so
	// detections overwhelmingly classify SDC (a 1-ulp corruption can
	// still round away into Benign — the detector fires on lane
	// inequality, not on eventual output damage).
	if sdc == 0 {
		t.Fatalf("no detected experiment classified SDC (detected %d)", len(detected))
	}
}
