package detect

import (
	"fmt"
	"strings"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// CheckMaskMonotonicName is the runtime API verifying mask-loop
// monotonicity.
const CheckMaskMonotonicName = "checkMaskLoopMonotonic"

// MaskMonotonicityPass synthesizes a third compilation-aware detector in
// the spirit the paper's conclusion anticipates ("we have barely
// scratched the possibility-space of exploiting compilation-aware
// detectors"): the code generator guarantees that in a varying-while
// mask loop, the live mask only ever *loses* lanes — a lane that exits
// the loop can never re-activate. A bit flip in the mask-carrying
// registers breaks that monotonicity, so the pass inserts
//
//	call @checkMaskLoopMonotonic(<Vl x i1> loopmask, <Vl x i1> livemask)
//
// into each mask-loop header, flagging any lane set in livemask but
// clear in loopmask (live ⊄ loop ⇒ corrupted mask).
type MaskMonotonicityPass struct {
	// Inserted lists the synthesized detectors after Run.
	Inserted []InsertedDetector
}

// Name implements passes.Pass.
func (p *MaskMonotonicityPass) Name() string { return "detect-mask-monotonicity" }

// isMaskLoopHeader matches the code generator's "vwhile.cond" blocks.
func isMaskLoopHeader(name string) bool {
	return name == "vwhile.cond" || strings.HasPrefix(name, "vwhile.cond.")
}

// Run implements passes.Pass.
func (p *MaskMonotonicityPass) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		var headers []*ir.Block
		for _, b := range f.Blocks {
			if isMaskLoopHeader(b.Nam) {
				headers = append(headers, b)
			}
		}
		for _, h := range headers {
			loopMask, liveMask, err := discoverMaskLoop(h)
			if err != nil {
				return err
			}
			decl := maskMonotonicDecl(m, loopMask.Type())
			bu := ir.NewBuilderBefore(h.Terminator())
			bu.Call(decl, "", loopMask, liveMask)
			p.Inserted = append(p.Inserted, InsertedDetector{
				Func: f, Block: h, Kind: "mask-monotonicity",
			})
		}
	}
	return nil
}

// discoverMaskLoop extracts the loop-mask phi and the live mask from a
// vwhile header: the header ends in `condbr (any), body, exit` where
// `any` tests the movmsk of the live mask, and the live mask is the AND
// of the loop-mask phi with the iteration's condition.
func discoverMaskLoop(h *ir.Block) (ir.Value, ir.Value, error) {
	var loopMask *ir.Instr
	for _, phi := range h.Phis() {
		t := phi.Type()
		if t.IsVector() && t.Elem == ir.I1 {
			loopMask = phi
			break
		}
	}
	if loopMask == nil {
		return nil, nil, fmt.Errorf("detect: %s has no mask phi", h.Nam)
	}
	var liveMask *ir.Instr
	for _, in := range h.Instrs {
		if in.Op == ir.OpAnd && in.Ty.IsVector() && in.Ty.Elem == ir.I1 {
			liveMask = in
		}
	}
	if liveMask == nil {
		return nil, nil, fmt.Errorf("detect: %s has no live-mask and", h.Nam)
	}
	return loopMask, liveMask, nil
}

func maskMonotonicDecl(m *ir.Module, maskTy *ir.Type) *ir.Func {
	name := fmt.Sprintf("%s.v%di1", CheckMaskMonotonicName, maskTy.Len)
	if f := m.Func(name); f != nil {
		return f
	}
	f := ir.NewDecl(name, ir.Void, maskTy, maskTy)
	m.AddFunc(f)
	return f
}

// checkMaskMonotonicImpl flags lanes live without being in the loop mask.
func checkMaskMonotonicImpl(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
	loop, live := args[0], args[1]
	for i := range live.Bits {
		if live.Bits[i]&1 != 0 && loop.Bits[i]&1 == 0 {
			it.Detect(fmt.Sprintf(
				"mask loop monotonicity violated: lane %d live outside the loop mask", i))
			break
		}
	}
	return interp.Value{}, nil
}
