// Package detect synthesizes the paper's compilation-aware error
// detectors:
//
//   - §III-A: foreach loop invariants. The code generator guarantees that
//     on exit from foreach_full_body the loop counter satisfies
//     new_counter ≥ start, new_counter ≤ aligned_end and
//     (new_counter - start) % Vl == 0 (Figure 8; the paper states the
//     start = 0 case). The pass inserts a
//     foreach_fullbody_check_invariants block calling the runtime
//     detector API on the loop-exit edge only, for low overhead.
//   - §III-B: uniform-broadcast lane equality. Every Figure 9 broadcast
//     (insertelement into undef + zero-mask shufflevector) must have all
//     lanes equal; an XOR-style lane comparison checks it. The paper
//     leaves this detector as future work; it is implemented here.
//
// Both detectors are structural: they rediscover the code generator's
// patterns from the IR by block/value naming and instruction shape, the
// way the paper's prototype keys off ISPC's documented lowering.
package detect

import (
	"fmt"
	"strings"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// CheckInvariantsName is the runtime detector API called on foreach exit.
const CheckInvariantsName = "checkInvariantsForeachFullBody"

// CheckBlockName is the paper's name for the inserted detector block.
const CheckBlockName = "foreach_fullbody_check_invariants"

// InsertedDetector describes one synthesized detector site.
type InsertedDetector struct {
	Func  *ir.Func
	Block *ir.Block
	Kind  string
}

// ForeachInvariantPass inserts the §III-A invariant checks.
type ForeachInvariantPass struct {
	// EveryIteration moves the check into the loop latch (ablation of the
	// paper's exit-only placement; higher overhead, earlier detection).
	EveryIteration bool
	// Inserted lists the synthesized detectors after Run.
	Inserted []InsertedDetector
}

// Name implements passes.Pass.
func (p *ForeachInvariantPass) Name() string { return "detect-foreach-invariants" }

// foreachLoop is the rediscovered structure of one lowered foreach.
type foreachLoop struct {
	header     *ir.Block
	latch      *ir.Block
	exit       *ir.Block
	newCounter ir.Value
	alignedEnd ir.Value
	start      ir.Value
	vl         int64
}

// isForeachHeader matches "foreach_full_body" and "foreach_full_body.N"
// but not ".lr.ph" / ".exit" satellites.
func isForeachHeader(name string) bool {
	if name == "foreach_full_body" {
		return true
	}
	rest, ok := strings.CutPrefix(name, "foreach_full_body.")
	if !ok || rest == "" {
		return false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return false
		}
	}
	return true
}

// discoverForeach rediscovers the Figure 7 structure around a header.
func discoverForeach(f *ir.Func, header *ir.Block) (*foreachLoop, error) {
	// The latch is the block whose conditional back edge targets the
	// header; for a straight-line foreach body it is the header itself.
	var latch *ir.Block
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t != nil && t.Op == ir.OpCondBr && t.Succs[0] == header {
			latch = b
			break
		}
	}
	if latch == nil {
		return nil, fmt.Errorf("no latch found for %s", header.Nam)
	}
	condbr := latch.Terminator()
	exitCond, ok := condbr.Operand(0).(*ir.Instr)
	if !ok || exitCond.Op != ir.OpICmp {
		return nil, fmt.Errorf("latch of %s has no icmp exit condition", header.Nam)
	}
	lp := &foreachLoop{
		header:     header,
		latch:      latch,
		exit:       condbr.Succs[1],
		newCounter: exitCond.Operand(0),
		alignedEnd: exitCond.Operand(1),
	}
	nc, ok := lp.newCounter.(*ir.Instr)
	if !ok || nc.Op != ir.OpAdd {
		return nil, fmt.Errorf("new_counter of %s is not an add", header.Nam)
	}
	step, ok := nc.Operand(1).(*ir.Const)
	if !ok {
		return nil, fmt.Errorf("loop step of %s is not constant", header.Nam)
	}
	lp.vl = step.Int()

	// The counter phi: its non-latch incoming is the loop start value.
	counter, ok := nc.Operand(0).(*ir.Instr)
	if !ok || counter.Op != ir.OpPhi {
		return nil, fmt.Errorf("counter of %s is not a phi", header.Nam)
	}
	for i, pred := range counter.Succs {
		if pred != latch {
			lp.start = counter.Operand(i)
		}
	}
	if lp.start == nil {
		return nil, fmt.Errorf("no start value for %s", header.Nam)
	}
	return lp, nil
}

// Run implements passes.Pass.
func (p *ForeachInvariantPass) Run(m *ir.Module) error {
	decl := checkDecl(m)
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		// Collect headers first; insertion mutates the block list.
		var headers []*ir.Block
		for _, b := range f.Blocks {
			if isForeachHeader(b.Nam) {
				headers = append(headers, b)
			}
		}
		for _, h := range headers {
			lp, err := discoverForeach(f, h)
			if err != nil {
				return err
			}
			target := lp.exit
			if p.EveryIteration {
				target = lp.latch
			}
			bu := ir.NewBuilderBefore(target.Terminator())
			bu.Call(decl, "", lp.newCounter, lp.alignedEnd, lp.start,
				ir.ConstInt(ir.I32, lp.vl))
			if !p.EveryIteration {
				target.Nam = uniqueBlockName(f, CheckBlockName)
			}
			p.Inserted = append(p.Inserted, InsertedDetector{
				Func: f, Block: target, Kind: "foreach-invariants",
			})
		}
	}
	return nil
}

func uniqueBlockName(f *ir.Func, base string) string {
	name := base
	for i := 2; f.BlockByName(name) != nil; i++ {
		name = fmt.Sprintf("%s.%d", base, i)
	}
	return name
}

func checkDecl(m *ir.Module) *ir.Func {
	if f := m.Func(CheckInvariantsName); f != nil {
		return f
	}
	f := ir.NewDecl(CheckInvariantsName, ir.Void, ir.I32, ir.I32, ir.I32, ir.I32)
	m.AddFunc(f)
	return f
}

// AttachRuntime registers the detector runtime API implementations:
// the Figure 8 invariant checks and the broadcast lane-equality check.
// Violations are recorded on the interpreter's Detections list; execution
// continues (the detector flags, it does not abort).
func AttachRuntime(it *interp.Interp) {
	it.RegisterExtern(CheckInvariantsName,
		func(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
			nc, ae, start, vl := args[0].Int(), args[1].Int(), args[2].Int(), args[3].Int()
			switch {
			case nc < start:
				it.Detect(fmt.Sprintf(
					"foreach invariant 1 violated: new_counter %d < start %d", nc, start))
			case nc > ae:
				it.Detect(fmt.Sprintf(
					"foreach invariant 2 violated: new_counter %d > aligned_end %d", nc, ae))
			case vl != 0 && (nc-start)%vl != 0:
				it.Detect(fmt.Sprintf(
					"foreach invariant 3 violated: (new_counter %d - start %d) %% %d != 0",
					nc, start, vl))
			}
			return interp.Value{}, nil
		})
	for _, f := range it.Mod.Funcs {
		if !f.IsDecl {
			continue
		}
		switch {
		case strings.HasPrefix(f.Nam, CheckBroadcastPrefix):
			it.RegisterExtern(f.Nam, checkBroadcastImpl)
		case strings.HasPrefix(f.Nam, CheckMaskMonotonicName):
			it.RegisterExtern(f.Nam, checkMaskMonotonicImpl)
		}
	}
}
