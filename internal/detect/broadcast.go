package detect

import (
	"fmt"

	"vulfi/internal/interp"
	"vulfi/internal/ir"
)

// CheckBroadcastPrefix prefixes the typed broadcast-check runtime API.
const CheckBroadcastPrefix = "checkUniformBroadcast"

// UniformBroadcastPass implements the §III-B detector the paper sketches
// as future work: every uniform value broadcast to a vector register via
// the Figure 9 pattern must have all lanes equal, which an XOR-style lane
// comparison verifies cheaply. The pass inserts a check immediately after
// each broadcast; when VULFI instrumentation runs afterwards, the check's
// operand is redirected to the instrumented clone, so injected lane
// corruption is visible to the detector.
type UniformBroadcastPass struct {
	// Inserted lists the synthesized detectors after Run.
	Inserted []InsertedDetector
}

// Name implements passes.Pass.
func (p *UniformBroadcastPass) Name() string { return "detect-uniform-broadcast" }

// isBroadcast matches the Figure 9 pattern: shufflevector with an
// all-zero mask whose first operand is insertelement into undef at lane 0.
func isBroadcast(in *ir.Instr) bool {
	if in.Op != ir.OpShuffleVector {
		return false
	}
	for _, mi := range in.ShuffleMask {
		if mi != 0 {
			return false
		}
	}
	init, ok := in.Operand(0).(*ir.Instr)
	if !ok || init.Op != ir.OpInsertElement {
		return false
	}
	base, ok := init.Operand(0).(*ir.Const)
	if !ok || !base.Undef {
		return false
	}
	idx, ok := init.Operand(2).(*ir.Const)
	return ok && idx.Int() == 0
}

// Run implements passes.Pass.
func (p *UniformBroadcastPass) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		var targets []*ir.Instr
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if isBroadcast(in) {
					targets = append(targets, in)
				}
			}
		}
		for _, in := range targets {
			decl := broadcastDecl(m, in.Ty)
			bu := ir.NewBuilderAfter(in)
			bu.Call(decl, "", in)
			p.Inserted = append(p.Inserted, InsertedDetector{
				Func: f, Block: in.Parent, Kind: "uniform-broadcast",
			})
		}
	}
	return nil
}

func broadcastDecl(m *ir.Module, vec *ir.Type) *ir.Func {
	name := fmt.Sprintf("%s.v%d%s", CheckBroadcastPrefix, vec.Len, elemSuffix(vec.Elem))
	if f := m.Func(name); f != nil {
		return f
	}
	f := ir.NewDecl(name, ir.Void, vec)
	m.AddFunc(f)
	return f
}

func elemSuffix(elem *ir.Type) string {
	switch elem {
	case ir.F32:
		return "f32"
	case ir.F64:
		return "f64"
	}
	return elem.String()
}

// checkBroadcastImpl verifies all lanes carry identical bit patterns.
func checkBroadcastImpl(it *interp.Interp, args []interp.Value) (interp.Value, *interp.Trap) {
	v := args[0]
	var x uint64
	for i := 1; i < len(v.Bits); i++ {
		x |= v.Bits[i] ^ v.Bits[0]
	}
	if x != 0 {
		it.Detect(fmt.Sprintf(
			"uniform broadcast lanes diverge: %s", v))
	}
	return interp.Value{}, nil
}
