package detect

import (
	"strings"
	"testing"

	"vulfi/internal/codegen"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/ir"
	"vulfi/internal/isa"
)

const vcopySrc = `
export void vcopy(uniform int a1[], uniform int a2[], uniform int n) {
	foreach (i = 0 ... n) {
		a2[i] = a1[i];
	}
}
`

func compileVCopy(t *testing.T) *codegen.Result {
	t.Helper()
	res, err := codegen.CompileSource(vcopySrc, isa.AVX, "vcopy")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForeachInvariantInsertion(t *testing.T) {
	res := compileVCopy(t)
	p := &ForeachInvariantPass{}
	if err := p.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	if len(p.Inserted) != 1 {
		t.Fatalf("inserted %d detectors, want 1", len(p.Inserted))
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatalf("module invalid after detector insertion: %v", err)
	}
	f := res.Module.Func("vcopy")
	blk := f.BlockByName(CheckBlockName)
	if blk == nil {
		t.Fatalf("no %s block (paper Figure 7)", CheckBlockName)
	}
	text := f.String()
	if !strings.Contains(text,
		"call void @checkInvariantsForeachFullBody(i32 %new_counter, i32 %aligned_end") {
		t.Errorf("detector call missing or malformed:\n%s", text)
	}
	// The detector block sits on the full-body exit edge.
	if len(blk.Succs()) != 1 || blk.Succs()[0].Nam != "partial_inner_all_outer" {
		t.Errorf("detector block edges wrong: %v", blk.Succs())
	}
}

func TestForeachInvariantEveryIterationPlacement(t *testing.T) {
	res := compileVCopy(t)
	p := &ForeachInvariantPass{EveryIteration: true}
	if err := p.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	f := res.Module.Func("vcopy")
	// The check call must live in the loop body (the latch), not the exit.
	latch := f.BlockByName("foreach_full_body")
	found := false
	for _, in := range latch.Instrs {
		if in.Op == ir.OpCall && in.Callee.Nam == CheckInvariantsName {
			found = true
		}
	}
	if !found {
		t.Fatal("every-iteration placement did not put the check in the latch")
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorRuntimeChecks(t *testing.T) {
	m := ir.NewModule("t")
	decl := checkDecl(m)
	f := ir.NewFunc("f", ir.Void, []*ir.Type{ir.I32, ir.I32, ir.I32, ir.I32},
		[]string{"nc", "ae", "st", "vl"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	bu.Call(decl, "", f.Params[0], f.Params[1], f.Params[2], f.Params[3])
	bu.Ret(nil)

	run := func(nc, ae, start, vl int64) []string {
		it, _ := interp.New(m, interp.Options{})
		AttachRuntime(it)
		_, tr := it.Run("f", interp.IntValue(ir.I32, nc), interp.IntValue(ir.I32, ae),
			interp.IntValue(ir.I32, start), interp.IntValue(ir.I32, vl))
		if tr != nil {
			t.Fatal(tr)
		}
		return it.Detections
	}

	if d := run(16, 16, 0, 8); len(d) != 0 {
		t.Fatalf("healthy exit flagged: %v", d)
	}
	if d := run(-8, 16, 0, 8); len(d) != 1 || !strings.Contains(d[0], "invariant 1") {
		t.Fatalf("invariant 1 not caught: %v", d)
	}
	if d := run(24, 16, 0, 8); len(d) != 1 || !strings.Contains(d[0], "invariant 2") {
		t.Fatalf("invariant 2 not caught: %v", d)
	}
	if d := run(13, 16, 0, 8); len(d) != 1 || !strings.Contains(d[0], "invariant 3") {
		t.Fatalf("invariant 3 not caught: %v", d)
	}
	// Non-zero start: (nc - start) % vl is the generalized invariant.
	if d := run(17, 17, 1, 8); len(d) != 0 {
		t.Fatalf("healthy non-zero-start exit flagged: %v", d)
	}
}

// TestForeachDetectorEndToEnd forces a corrupted new_counter through an
// actual execution and expects the inserted detector to flag it.
func TestForeachDetectorEndToEnd(t *testing.T) {
	res := compileVCopy(t)
	p := &ForeachInvariantPass{}
	if err := p.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	// Corrupt the loop bound check by rewriting new_counter's step from
	// +8 to +7 (simulating a control-site fault with a persistent echo):
	// the loop then exits with (new_counter - start) % 8 != 0.
	f := res.Module.Func("vcopy")
	var newCounter *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Nam == "new_counter" {
				newCounter = in
			}
		}
	}
	if newCounter == nil {
		t.Fatal("no new_counter")
	}
	newCounter.SetOperand(1, ir.ConstInt(ir.I32, 7))

	x, err := exec.NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	AttachRuntime(x.It)
	a1, _ := x.AllocI32(make([]int32, 64))
	a2, _ := x.AllocI32(make([]int32, 64))
	if _, tr := x.CallExport("vcopy", exec.PtrArgI32(a1), exec.PtrArgI32(a2),
		exec.I32Arg(17)); tr != nil {
		t.Fatal(tr)
	}
	if len(x.It.Detections) == 0 {
		t.Fatal("corrupted loop step not detected")
	}
}

const uniformScaleSrc = `
export void scale(uniform float a[], uniform int n, uniform float s) {
	foreach (i = 0 ... n) {
		a[i] = a[i] * s;
	}
}
`

func TestUniformBroadcastPassFindsFigure9(t *testing.T) {
	res, err := codegen.CompileSource(uniformScaleSrc, isa.AVX, "scale")
	if err != nil {
		t.Fatal(err)
	}
	p := &UniformBroadcastPass{}
	if err := p.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	if len(p.Inserted) == 0 {
		t.Fatal("no broadcast detectors inserted")
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatal(err)
	}
	text := res.Module.Func("scale").String()
	if !strings.Contains(text, "call void @checkUniformBroadcast.v8f32") {
		t.Errorf("broadcast check call missing:\n%s", text)
	}
}

func TestBroadcastCheckRuntime(t *testing.T) {
	m := ir.NewModule("t")
	vt := ir.Vec(ir.F32, 8)
	decl := broadcastDecl(m, vt)
	f := ir.NewFunc("f", ir.Void, []*ir.Type{vt}, []string{"v"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	bu.Call(decl, "", f.Params[0])
	bu.Ret(nil)

	it, _ := interp.New(m, interp.Options{})
	AttachRuntime(it)
	ok := interp.ConstValue(ir.ConstSplat(8, ir.ConstFloat(ir.F32, 3)))
	if _, tr := it.Run("f", ok); tr != nil {
		t.Fatal(tr)
	}
	if len(it.Detections) != 0 {
		t.Fatalf("uniform lanes flagged: %v", it.Detections)
	}
	bad := ok.Clone()
	bad.Bits[5] ^= 1 << 20
	if _, tr := it.Run("f", bad); tr != nil {
		t.Fatal(tr)
	}
	if len(it.Detections) != 1 {
		t.Fatalf("diverged lane not flagged: %v", it.Detections)
	}
}

func TestIsForeachHeader(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"foreach_full_body", true},
		{"foreach_full_body.2", true},
		{"foreach_full_body.13", true},
		{"foreach_full_body.lr.ph", false},
		{"foreach_full_body.exit", false},
		{"partial_inner_only", false},
		{"foreach_full_body.", false},
	}
	for _, c := range cases {
		if got := isForeachHeader(c.name); got != c.want {
			t.Errorf("isForeachHeader(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestDetectorThenInstrumentOrder: the §III-B checker reads the value the
// VULFI instrumentation later redirects, so injected lane corruption on a
// broadcast is visible to the detector (the pass-ordering contract).
func TestBroadcastDetectorSeesInstrumentedValue(t *testing.T) {
	res, err := codegen.CompileSource(uniformScaleSrc, isa.AVX, "scale")
	if err != nil {
		t.Fatal(err)
	}
	bp := &UniformBroadcastPass{}
	if err := bp.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	text := res.Module.Func("scale").String()
	// The check consumes the broadcast SSA value by name.
	if !strings.Contains(text, "@checkUniformBroadcast.v8f32(<8 x float> %s_broadcast)") {
		t.Skipf("broadcast value named differently:\n%s", text)
	}
}

const maskLoopSrc = `
export void halver(uniform float a[], uniform int n) {
	foreach (i = 0 ... n) {
		varying float v = a[i];
		while (v > 1.0) {
			v = v / 2.0;
		}
		a[i] = v;
	}
}
`

func TestMaskMonotonicityInsertion(t *testing.T) {
	res, err := codegen.CompileSource(maskLoopSrc, isa.AVX, "halver")
	if err != nil {
		t.Fatal(err)
	}
	p := &MaskMonotonicityPass{}
	if err := p.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	// The foreach body instantiates twice (full + partial), so two mask
	// loops get detectors.
	if len(p.Inserted) != 2 {
		t.Fatalf("inserted %d detectors, want 2", len(p.Inserted))
	}
	if err := res.Module.Verify(); err != nil {
		t.Fatal(err)
	}
	text := res.Module.Func("halver").String()
	if !strings.Contains(text, "call void @checkMaskLoopMonotonic.v8i1(<8 x i1> %loopmask, <8 x i1> %livemask)") {
		t.Errorf("mask monotonicity check missing:\n%s", text)
	}

	// A healthy run never fires the detector.
	x, err := exec.NewInstance(res, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	AttachRuntime(x.It)
	a, _ := x.AllocF32([]float32{8, 0.5, 64, 3, 2, 1, 100, 7, 9, 0.25, 33})
	if _, tr := x.CallExport("halver", exec.PtrArgF32(a), exec.I32Arg(11)); tr != nil {
		t.Fatal(tr)
	}
	if len(x.It.Detections) != 0 {
		t.Fatalf("healthy mask loop flagged: %v", x.It.Detections)
	}
}

func TestMaskMonotonicityRuntime(t *testing.T) {
	m := ir.NewModule("t")
	mt := ir.Vec(ir.I1, 8)
	decl := maskMonotonicDecl(m, mt)
	f := ir.NewFunc("f", ir.Void, []*ir.Type{mt, mt}, []string{"loop", "live"})
	m.AddFunc(f)
	bu := ir.NewBuilder(f.NewBlock("entry"))
	bu.Call(decl, "", f.Params[0], f.Params[1])
	bu.Ret(nil)

	run := func(loop, live []uint64) int {
		it, _ := interp.New(m, interp.Options{})
		AttachRuntime(it)
		lv := interp.Value{Ty: mt, Bits: loop}
		vv := interp.Value{Ty: mt, Bits: live}
		if _, tr := it.Run("f", lv, vv); tr != nil {
			t.Fatal(tr)
		}
		return len(it.Detections)
	}
	// live ⊆ loop: fine.
	if run([]uint64{1, 1, 1, 0, 0, 0, 0, 0}, []uint64{1, 0, 1, 0, 0, 0, 0, 0}) != 0 {
		t.Fatal("subset live mask flagged")
	}
	// lane 3 live but not in the loop mask: corrupted.
	if run([]uint64{1, 1, 1, 0, 0, 0, 0, 0}, []uint64{1, 0, 1, 1, 0, 0, 0, 0}) != 1 {
		t.Fatal("reactivated lane not flagged")
	}
}
