package campaign

import (
	"fmt"

	"vulfi/internal/benchmarks"
	"vulfi/internal/obs"
	"vulfi/internal/passes"
)

// Validate normalizes the configuration in place — applying the paper's
// defaults for unset counts (100 experiments × 20 campaigns) — and
// reports the first invalid field. It is the single gate every entry
// point shares: the root vulfi package, RunStudy/Prepare, the CLIs and
// the vulfid service all funnel their configurations through it, so a
// spec rejected in one place is rejected identically everywhere.
func (c *Config) Validate() error {
	if c.Benchmark == nil {
		return fmt.Errorf("campaign: Benchmark is required")
	}
	if c.ISA == nil {
		return fmt.Errorf("campaign: ISA is required")
	}
	if c.Category < passes.PureData || c.Category > passes.Address {
		return fmt.Errorf("campaign: unknown category %d", c.Category)
	}
	if c.Scale < benchmarks.ScaleTest || c.Scale > benchmarks.ScaleLarge {
		return fmt.Errorf("campaign: unknown scale %d", c.Scale)
	}
	if c.Experiments < 0 {
		return fmt.Errorf("campaign: Experiments must be non-negative (got %d)", c.Experiments)
	}
	if c.Campaigns < 0 {
		return fmt.Errorf("campaign: Campaigns must be non-negative (got %d)", c.Campaigns)
	}
	if c.Workers < 0 {
		return fmt.Errorf("campaign: Workers must be non-negative (got %d)", c.Workers)
	}
	if c.Inputs < 0 {
		return fmt.Errorf("campaign: Inputs must be non-negative (got %d)", c.Inputs)
	}
	if c.TraceCap < 0 {
		return fmt.Errorf("campaign: TraceCap must be non-negative (got %d)", c.TraceCap)
	}
	switch c.Backend {
	case "", "tree", "vm":
	default:
		return fmt.Errorf("campaign: unknown backend %q (tree, vm)", c.Backend)
	}
	if c.TraceParent != "" {
		if _, _, err := obs.ParseTraceparent(c.TraceParent); err != nil {
			return fmt.Errorf("campaign: TraceParent: %v", err)
		}
	}
	if c.Experiments == 0 {
		c.Experiments = 100
	}
	if c.Campaigns == 0 {
		c.Campaigns = 20
	}
	// The shard range is checked against the normalized counts: a spec
	// that says nothing about counts still shards over the defaulted
	// 100×20 schedule.
	if c.ShardStart < 0 || c.ShardEnd < 0 {
		return fmt.Errorf("campaign: shard range must be non-negative (got [%d,%d))",
			c.ShardStart, c.ShardEnd)
	}
	if c.ShardEnd == 0 && c.ShardStart > 0 {
		return fmt.Errorf("campaign: ShardStart %d without ShardEnd", c.ShardStart)
	}
	if c.ShardEnd > 0 {
		if c.ShardStart >= c.ShardEnd {
			return fmt.Errorf("campaign: empty shard range [%d,%d)", c.ShardStart, c.ShardEnd)
		}
		if total := c.Campaigns * c.Experiments; c.ShardEnd > total {
			return fmt.Errorf("campaign: ShardEnd %d exceeds the %d-experiment schedule",
				c.ShardEnd, total)
		}
	}
	return nil
}
