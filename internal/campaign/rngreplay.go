package campaign

import "math/rand"

// The paired-execution strategy generates the same benchmark input
// twice per experiment: once for the golden instance and once for the
// faulty one, from two rand.Rands seeded identically. Seeding a
// math/rand source is the expensive part (it initializes a 607-word
// lagged-Fibonacci state), and at bytecode-backend throughputs it
// dominates the experiment loop. recSource/replaySource split the pair:
// the golden setup records every value it draws from a genuinely seeded
// source, and the faulty setup replays that recording verbatim. The
// replayed stream is bit-identical to a fresh source's — both backends,
// the committed golden files and resume byte-identity are unaffected —
// because rand.Rand derives all its outputs from Source64.Uint64 and
// the recording captures exactly those words.

// recSource is a rand.Source64 that records every drawn word so a
// replaySource can reproduce the stream without re-seeding.
type recSource struct {
	src   rand.Source64
	draws []uint64
}

// newRecSource returns a recording source seeded with seed, or nil if
// the runtime's source does not expose Source64 (callers then fall back
// to plain re-seeding).
func newRecSource(seed int64) *recSource {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		return nil
	}
	return &recSource{src: src}
}

func (s *recSource) Uint64() uint64 {
	v := s.src.Uint64()
	s.draws = append(s.draws, v)
	return v
}

func (s *recSource) Int63() int64 { return int64(s.Uint64() & (1<<63 - 1)) }

func (s *recSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = s.draws[:0]
}

// replaySource replays a recSource's recording. If a replay outruns the
// recording (the two setups disagreeing on draw count would be a
// benchmark bug, but correctness must not depend on that), it seeds a
// real source, fast-forwards past the replayed prefix and continues
// from the authentic stream.
type replaySource struct {
	draws []uint64
	i     int
	seed  int64
	src   rand.Source64
}

func (s *replaySource) Uint64() uint64 {
	if s.i < len(s.draws) {
		v := s.draws[s.i]
		s.i++
		return v
	}
	if s.src == nil {
		src, ok := rand.NewSource(s.seed).(rand.Source64)
		if !ok {
			panic("campaign: replay source without Source64 runtime")
		}
		s.src = src
		for j := 0; j < s.i; j++ {
			s.src.Uint64()
		}
	}
	s.i++
	return s.src.Uint64()
}

func (s *replaySource) Int63() int64 { return int64(s.Uint64() & (1<<63 - 1)) }

func (s *replaySource) Seed(int64) { panic("campaign: replay source is read-only") }
