package campaign

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
	"vulfi/internal/telemetry"
)

// TestAtlasTallies: the per-site atlas must conserve the study's outcome
// totals — every attributed injection lands in exactly one row, and the
// row outcome splits sum back to the study totals minus unattributed
// (vacuous) experiments.
func TestAtlasTallies(t *testing.T) {
	cfg := smallCfg(benchmarks.Blackscholes, passes.PureData)
	cfg.Atlas = true
	cfg.Inputs = 2
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg

	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Sites) == 0 {
		t.Fatal("atlas study produced no site tallies")
	}
	if len(sr.Sites) != sr.StaticSites {
		t.Fatalf("%d tallies for %d static sites", len(sr.Sites), sr.StaticSites)
	}
	var inj, sdc, benign, crash, hang, detected, lanes int
	seen := map[string]bool{}
	for i, s := range sr.Sites {
		if s.Key == "" || s.Func == "" || s.Instr == "" {
			t.Fatalf("tally %d has empty identity: %+v", i, s)
		}
		if seen[s.Key] {
			t.Fatalf("duplicate site key %q", s.Key)
		}
		seen[s.Key] = true
		if i > 0 && sr.Sites[i-1].Site >= s.Site {
			t.Fatalf("tallies not in site-ID order: %d then %d",
				sr.Sites[i-1].Site, s.Site)
		}
		if s.Injections > 0 && s.Activations == 0 {
			t.Errorf("site %s took %d injections but profiled 0 activations",
				s.Key, s.Injections)
		}
		if s.SDC+s.Benign+s.Crash != s.Injections {
			t.Errorf("site %s outcome split %d+%d+%d != %d injections",
				s.Key, s.SDC, s.Benign, s.Crash, s.Injections)
		}
		inj += s.Injections
		sdc += s.SDC
		benign += s.Benign
		crash += s.Crash
		hang += s.Hang
		detected += s.Detected
		lanes += s.Lanes
	}
	if lanes != sr.LaneSites {
		t.Fatalf("tally lanes sum %d, want %d", lanes, sr.LaneSites)
	}
	attributed := int(reg.Counter("atlas.attributed").Value())
	unattributed := int(reg.Counter("atlas.unattributed").Value())
	if inj != attributed {
		t.Fatalf("injections sum %d, attributed counter %d", inj, attributed)
	}
	if attributed+unattributed != sr.Totals.Experiments {
		t.Fatalf("attributed %d + unattributed %d != %d experiments",
			attributed, unattributed, sr.Totals.Experiments)
	}
	// Attributed outcomes are the study totals minus the vacuous (never
	// injected) experiments, which are all benign by construction.
	if sdc != sr.Totals.SDC || crash != sr.Totals.Crash || hang != sr.Totals.Hang {
		t.Fatalf("atlas sdc/crash/hang %d/%d/%d, study %d/%d/%d",
			sdc, crash, hang, sr.Totals.SDC, sr.Totals.Crash, sr.Totals.Hang)
	}
	// Every unattributed experiment (vacuous or target never reached) is
	// benign by construction, so benign rows + unattributed must equal
	// the study's benign total.
	if benign+unattributed != sr.Totals.Benign {
		t.Fatalf("atlas benign %d + unattributed %d != study benign %d",
			benign, unattributed, sr.Totals.Benign)
	}
	if got := int(reg.Counter("atlas.sites").Value()); got != len(sr.Sites) {
		t.Fatalf("atlas.sites counter %d, want %d", got, len(sr.Sites))
	}
}

// TestAtlasCategoryAgreement: under a control-category study every
// atlas row must carry a control-side Figure 2 tag — the tallies and
// the static classifier must never disagree about what was injected.
func TestAtlasCategoryAgreement(t *testing.T) {
	cfg := smallCfg(benchmarks.Blackscholes, passes.Control)
	cfg.Atlas = true
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Sites) == 0 {
		t.Fatal("control study produced no site tallies")
	}
	for _, s := range sr.Sites {
		if s.Category != "control" && s.Category != "control+address" {
			t.Errorf("control-category study tallied site %s as %q",
				s.Key, s.Category)
		}
	}
}

// TestAtlasResumeEquivalence: checkpointing an atlas study and resuming
// it through Cfg.Completed must reproduce the uninterrupted study's
// JSON — site tallies included — byte for byte. Attribution reads only
// the replayed results and deterministic profiling runs, so nothing may
// drift.
func TestAtlasResumeEquivalence(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Atlas = true
	cfg.Inputs = 2

	var mu sync.Mutex
	checkpoints := map[int]*ExperimentResult{}
	cfg.OnResult = func(i int, seed int64, r *ExperimentResult) {
		mu.Lock()
		defer mu.Unlock()
		checkpoints[i] = r
	}
	full, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Sites) == 0 {
		t.Fatal("atlas study produced no site tallies")
	}

	resumedCfg := cfg
	resumedCfg.OnResult = nil
	resumedCfg.Completed = map[int]*ExperimentResult{}
	total := cfg.Campaigns * cfg.Experiments
	for i := 0; i < total/2; i++ {
		resumedCfg.Completed[i] = checkpoints[i]
	}
	resumed, err := RunStudy(context.Background(), resumedCfg)
	if err != nil {
		t.Fatal(err)
	}

	got, want := studyBytes(t, resumed), studyBytes(t, full)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed atlas study diverged:\nresumed: %s\nfull:    %s", got, want)
	}
}
