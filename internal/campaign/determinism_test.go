package campaign

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/exec"
	"vulfi/internal/passes"
)

// TestStudyDeterministicAcrossWorkers: the worker pool must not change
// results — experiments are indexed, not racing. Two runs of the same
// study with different parallelism must agree exactly.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *StudyResult {
		cfg := smallCfg(benchmarks.Blackscholes, passes.Control)
		cfg.Workers = workers
		sr, err := RunStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a := run(1)
	b := run(8)
	// Wall-clock fields are the one legitimately non-deterministic part
	// of a result; zero them before the exact comparison.
	at, bt := a.Totals, b.Totals
	at.WallTotal, at.WallMin, at.WallMax = 0, 0, 0
	bt.WallTotal, bt.WallMin, bt.WallMax = 0, 0, 0
	if at != bt {
		t.Fatalf("worker count changed results:\n1 worker: %+v\n8 workers: %+v",
			at, bt)
	}
	for i := range a.SDCRates {
		if a.SDCRates[i] != b.SDCRates[i] {
			t.Fatalf("campaign %d rate differs: %v vs %v",
				i, a.SDCRates[i], b.SDCRates[i])
		}
	}
}

// TestStudySeedSensitivity: different seeds must (generally) pick
// different dynamic sites; identical seeds must reproduce bit-identical
// injection records.
func TestStudySeedSensitivity(t *testing.T) {
	p, err := Prepare(smallCfg(benchmarks.VectorCopy, passes.PureData))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.RunExperiment(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := p.RunExperiment(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Record != r1again.Record {
		t.Fatal("same seed produced different injections")
	}
	differ := false
	for s := int64(2); s < 10; s++ {
		r, err := p.RunExperiment(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Record != r1.Record {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("eight different seeds all chose the same injection")
	}
}

// TestStudyCancelAndResume: cancelling mid-study must return promptly
// with ctx.Err(), checkpoint exactly the completed (index, seed, result)
// triples through OnResult, and a resumed run seeded with those
// checkpoints must reproduce the uninterrupted study bit-for-bit
// (wall-clock aside — the one legitimately non-deterministic part).
func TestStudyCancelAndResume(t *testing.T) {
	cfg := smallCfg(benchmarks.Blackscholes, passes.Control)
	cfg.Workers = 4

	// Uninterrupted reference run.
	ref, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 5 completed experiments.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	journal := map[int]*ExperimentResult{}
	seeds := map[int]int64{}
	icfg := cfg
	icfg.OnResult = func(i int, seed int64, r *ExperimentResult) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := journal[i]; dup {
			t.Errorf("experiment %d checkpointed twice", i)
		}
		journal[i], seeds[i] = r, seed
		if len(journal) == 5 {
			cancel()
		}
	}
	start := time.Now()
	if _, err := RunStudy(ctx, icfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled study returned %v, want context.Canceled", err)
	}
	if wait := time.Since(start); wait > 30*time.Second {
		t.Fatalf("cancellation took %s, not prompt", wait)
	}
	mu.Lock()
	total := cfg.Campaigns * cfg.Experiments
	if len(journal) < 5 || len(journal) >= total {
		t.Fatalf("journaled %d experiments, want >=5 and < %d", len(journal), total)
	}
	// The checkpoint must carry exactly the deterministic seed schedule.
	for i, seed := range seeds {
		if want := cfg.ExperimentSeed(i); seed != want {
			t.Fatalf("experiment %d journaled seed %d, want %d", i, seed, want)
		}
	}
	completed := make(map[int]*ExperimentResult, len(journal))
	for i, r := range journal {
		completed[i] = r
	}
	mu.Unlock()

	// Resume: replay the checkpoints, run only the rest.
	rcfg := cfg
	rcfg.Completed = completed
	reran := 0
	rcfg.OnResult = func(i int, _ int64, _ *ExperimentResult) {
		mu.Lock()
		defer mu.Unlock()
		if _, was := completed[i]; was {
			t.Errorf("experiment %d re-ran despite checkpoint", i)
		}
		reran++
	}
	res, err := RunStudy(context.Background(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := total - len(completed); reran != want {
		t.Fatalf("resume re-ran %d experiments, want %d", reran, want)
	}

	// Normalize the two legitimately differing parts before the exact
	// comparison: wall-clock times, and the Cfg echo (the resumed config
	// carries checkpoint hooks, which are not statistics).
	normalize := func(sr *StudyResult) {
		sr.Cfg = Config{}
		sr.Wall = 0
		sr.Totals.WallTotal, sr.Totals.WallMin, sr.Totals.WallMax = 0, 0, 0
		for i := range sr.Campaigns {
			sr.Campaigns[i].WallTotal, sr.Campaigns[i].WallMin,
				sr.Campaigns[i].WallMax = 0, 0, 0
		}
	}
	normalize(ref)
	normalize(res)
	if !reflect.DeepEqual(ref, res) {
		t.Fatalf("resumed study differs from uninterrupted run:\nref: %+v\nres: %+v",
			ref, res)
	}
}

// TestStudyEarlyAbort: the first failing experiment must stop dispatch
// instead of running the remaining hundreds to completion.
func TestStudyEarlyAbort(t *testing.T) {
	var attempts atomic.Int64
	failing := &benchmarks.Benchmark{
		Name:   "FailingSetup",
		Suite:  "Test",
		Entry:  benchmarks.VectorCopy.Entry,
		Source: benchmarks.VectorCopy.Source,
		Setup: func(x *exec.Instance, rng *rand.Rand, scale benchmarks.Scale) (*benchmarks.RunSpec, error) {
			attempts.Add(1)
			return nil, errors.New("synthetic setup failure")
		},
	}
	cfg := smallCfg(failing, passes.PureData)
	cfg.Experiments, cfg.Campaigns, cfg.Workers = 100, 5, 4
	_, err := RunStudy(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "synthetic setup failure") {
		t.Fatalf("study error = %v, want the setup failure", err)
	}
	// Every experiment calls Setup once before failing; without early
	// abort all 500 would run. Allow the in-flight window (one per
	// worker) plus the unbuffered-channel handoff.
	if n := attempts.Load(); n > int64(cfg.Workers*2+2) {
		t.Fatalf("%d experiments attempted after first failure, want early abort", n)
	}
}

// TestWallAggregationExcludesUntimed: the documented merge rule — only
// timed experiments (Wall > 0) participate in WallMin/WallMax, so
// results merged from a pre-timing serialization neither drag the min to
// zero nor leave it stale.
func TestWallAggregationExcludesUntimed(t *testing.T) {
	var c CampaignResult
	c.add(&ExperimentResult{Wall: 40 * time.Millisecond})
	c.add(&ExperimentResult{Wall: 0}) // untimed: excluded from min/max
	c.add(&ExperimentResult{Wall: 10 * time.Millisecond})
	if c.WallMin != 10*time.Millisecond || c.WallMax != 40*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want 10ms/40ms", c.WallMin, c.WallMax)
	}
	if c.WallTotal != 50*time.Millisecond {
		t.Fatalf("total = %v, want 50ms (untimed still counts as zero)", c.WallTotal)
	}

	// Untimed-first: the first timed experiment must establish the min.
	var u CampaignResult
	u.add(&ExperimentResult{Wall: 0})
	u.add(&ExperimentResult{Wall: 20 * time.Millisecond})
	if u.WallMin != 20*time.Millisecond {
		t.Fatalf("untimed-first min = %v, want 20ms", u.WallMin)
	}

	// Merging an all-untimed campaign changes nothing.
	merged := c
	var untimed CampaignResult
	untimed.add(&ExperimentResult{Wall: 0})
	merged.merge(untimed)
	if merged.WallMin != 10*time.Millisecond || merged.WallMax != 40*time.Millisecond {
		t.Fatalf("merge with untimed campaign moved min/max: %v/%v",
			merged.WallMin, merged.WallMax)
	}
	// Merging a timed campaign applies min/max normally.
	var timed CampaignResult
	timed.add(&ExperimentResult{Wall: 5 * time.Millisecond})
	merged.merge(timed)
	if merged.WallMin != 5*time.Millisecond || merged.WallMax != 40*time.Millisecond {
		t.Fatalf("merge with timed campaign: min/max = %v/%v, want 5ms/40ms",
			merged.WallMin, merged.WallMax)
	}
	if merged.Experiments != 5 {
		t.Fatalf("experiments = %d, want 5", merged.Experiments)
	}
}

// TestHangClassifiedAsCrash: force an experiment whose faulty run loops
// past its budget by corrupting the loop-exit compare... statistically:
// run many control-category experiments on Chebyshev and accept if any
// hang was observed OR all outcomes are well-formed (hangs are rare but
// the path must not crash the driver).
func TestHangHandling(t *testing.T) {
	p, err := Prepare(smallCfg(benchmarks.Chebyshev, passes.Control))
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 30; s++ {
		r, err := p.RunExperiment(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Hang && r.Outcome != OutcomeCrash {
			t.Fatal("hang not classified as crash")
		}
	}
}
