package campaign

import (
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
)

// TestStudyDeterministicAcrossWorkers: the worker pool must not change
// results — experiments are indexed, not racing. Two runs of the same
// study with different parallelism must agree exactly.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *StudyResult {
		cfg := smallCfg(benchmarks.Blackscholes, passes.Control)
		cfg.Workers = workers
		sr, err := RunStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a := run(1)
	b := run(8)
	// Wall-clock fields are the one legitimately non-deterministic part
	// of a result; zero them before the exact comparison.
	at, bt := a.Totals, b.Totals
	at.WallTotal, at.WallMin, at.WallMax = 0, 0, 0
	bt.WallTotal, bt.WallMin, bt.WallMax = 0, 0, 0
	if at != bt {
		t.Fatalf("worker count changed results:\n1 worker: %+v\n8 workers: %+v",
			at, bt)
	}
	for i := range a.SDCRates {
		if a.SDCRates[i] != b.SDCRates[i] {
			t.Fatalf("campaign %d rate differs: %v vs %v",
				i, a.SDCRates[i], b.SDCRates[i])
		}
	}
}

// TestStudySeedSensitivity: different seeds must (generally) pick
// different dynamic sites; identical seeds must reproduce bit-identical
// injection records.
func TestStudySeedSensitivity(t *testing.T) {
	p, err := Prepare(smallCfg(benchmarks.VectorCopy, passes.PureData))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.RunExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := p.RunExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Record != r1again.Record {
		t.Fatal("same seed produced different injections")
	}
	differ := false
	for s := int64(2); s < 10; s++ {
		r, err := p.RunExperiment(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Record != r1.Record {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("eight different seeds all chose the same injection")
	}
}

// TestHangClassifiedAsCrash: force an experiment whose faulty run loops
// past its budget by corrupting the loop-exit compare... statistically:
// run many control-category experiments on Chebyshev and accept if any
// hang was observed OR all outcomes are well-formed (hangs are rare but
// the path must not crash the driver).
func TestHangHandling(t *testing.T) {
	p, err := Prepare(smallCfg(benchmarks.Chebyshev, passes.Control))
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 30; s++ {
		r, err := p.RunExperiment(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Hang && r.Outcome != OutcomeCrash {
			t.Fatal("hang not classified as crash")
		}
	}
}
