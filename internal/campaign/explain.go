package campaign

import (
	"context"
	"fmt"

	"vulfi/internal/core"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/trace"
)

// explain assembles an experiment's divergence explanation: the raw ring
// diff annotated with the fault-site identity, outcome, detector timing,
// and crash provenance.
func (p *Prepared) explain(golden, faulty *trace.Ring, r *ExperimentResult,
	xf *exec.Instance, ftr *interp.Trap) *trace.Explanation {
	e := trace.Analyze(golden, faulty)
	e.Outcome = r.Outcome.String()
	e.Detected = r.Detected
	// Width==0 means the injection never fired (target site unreached);
	// a zero record must not blame lane site 0.
	if r.Record.Width > 0 {
		if id := r.Record.LaneSiteID; id >= 0 && id < int64(len(p.Inst.LaneSites)) {
			e.FaultSite = p.siteRef(p.Inst.LaneSites[id])
		}
	}
	if dyns := xf.It.DetectionDyns; len(dyns) > 0 {
		e.NoteDetection(dyns[0])
	}
	if ftr != nil {
		e.Trap = &trace.TrapRef{
			Kind: ftr.Kind.String(), Msg: ftr.Msg,
			Func: ftr.Func, Block: ftr.Block, Instr: ftr.Instr, Dyn: ftr.Dyn,
		}
	}
	return e
}

// siteRef converts a lane site into its JSON-safe reference, carrying
// the static slice flags and the category the study enumerated under.
func (p *Prepared) siteRef(ls core.LaneSite) *trace.SiteRef {
	s := ls.Site
	ref := &trace.SiteRef{
		SiteID: s.ID, Lane: ls.Lane,
		Instr:         s.Instr.String(),
		Category:      p.Cfg.Category.String(),
		StaticControl: s.Flags.Control,
		StaticAddress: s.Flags.Address,
	}
	if b := s.Instr.Parent; b != nil {
		ref.Block = b.Nam
		if b.Func != nil {
			ref.Func = b.Func.Nam
		}
	}
	return ref
}

// ExplainExperiment prepares the cell with tracing forced on and runs
// the single experiment at the given index of the study's deterministic
// seed schedule, returning its result with the attached explanation. It
// is the engine behind `vulfi -explain` and the service's
// GET /v1/jobs/{id}/explain?index=N endpoint.
func ExplainExperiment(ctx context.Context, cfg Config, index int) (*ExperimentResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if index < 0 || index >= cfg.Experiments*cfg.Campaigns {
		return nil, fmt.Errorf("experiment index %d out of range [0,%d)",
			index, cfg.Experiments*cfg.Campaigns)
	}
	// Tracing forces the golden-cache bypass, so the explanation always
	// analyzes a live golden ring even on cached studies.
	cfg.Trace = true
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunExperimentAt(ctx, index)
}
