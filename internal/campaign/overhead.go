package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"vulfi/internal/benchmarks"
	"vulfi/internal/codegen"
	"vulfi/internal/core"
	"vulfi/internal/detect"
	"vulfi/internal/exec"
	"vulfi/internal/interp"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// OverheadResult measures the cost of the synthesized detector blocks
// (Figure 12's "Avg. Overhead"): the paper compares runtimes of the
// instrumented binary with and without the detector block inserted. The
// interpreter gives both a deterministic dynamic-instruction overhead and
// a wall-clock overhead.
type OverheadResult struct {
	Benchmark string
	ISA       string
	Runs      int

	BaseDynInstrs float64
	DetDynInstrs  float64
	BaseWall      time.Duration
	DetWall       time.Duration
}

// DynOverhead is the relative dynamic-instruction overhead.
func (o OverheadResult) DynOverhead() float64 {
	if o.BaseDynInstrs == 0 {
		return 0
	}
	return o.DetDynInstrs/o.BaseDynInstrs - 1
}

// WallOverhead is the relative wall-clock overhead.
func (o OverheadResult) WallOverhead() float64 {
	if o.BaseWall == 0 {
		return 0
	}
	return float64(o.DetWall)/float64(o.BaseWall) - 1
}

// MeasureOverhead runs the benchmark `runs` times with and without the
// detector blocks (both variants instrumented in CountOnly mode, like
// the paper's measurement on instrumented binaries) and reports the
// averages.
func MeasureOverhead(b *benchmarks.Benchmark, target *isa.ISA,
	scale benchmarks.Scale, category passes.Category,
	everyIteration bool, seed int64, runs int) (*OverheadResult, error) {

	build := func(withDetector bool) (*Prepared, error) {
		res, err := codegen.Compile(compileProgram(b), target, b.Name)
		if err != nil {
			return nil, err
		}
		pm := &passes.Manager{Verify: true}
		if withDetector {
			pm.Add(&detect.ForeachInvariantPass{EveryIteration: everyIteration})
		}
		inst := &core.Instrumentation{}
		pm.Add(&core.InstrumentPass{Category: category, Out: inst})
		if err := pm.Run(res.Module); err != nil {
			return nil, err
		}
		cfg := Config{Benchmark: b, ISA: target, Category: category, Scale: scale}
		return &Prepared{Cfg: cfg, Res: res, Inst: inst}, nil
	}

	base, err := build(false)
	if err != nil {
		return nil, err
	}
	det, err := build(true)
	if err != nil {
		return nil, err
	}

	out := &OverheadResult{Benchmark: b.Name, ISA: target.Name, Runs: runs}
	measure := func(p *Prepared) (float64, time.Duration, error) {
		var dyn float64
		var wall time.Duration
		// Warm-up pass excluded from timing (allocator and cache effects
		// otherwise dominate small kernels).
		for i := -1; i < runs; i++ {
			plan := &core.Plan{Mode: core.CountOnly}
			x, err := p.newInstance(plan, 0)
			if err != nil {
				return 0, 0, err
			}
			spec, err := b.Setup(x, rand.New(rand.NewSource(seed+int64(i))), scale)
			if err != nil {
				return 0, 0, err
			}
			start := time.Now()
			if _, tr := x.CallExport(b.Entry, spec.Args...); tr != nil {
				return 0, 0, fmt.Errorf("overhead run trapped: %w", tr)
			}
			if i >= 0 {
				wall += time.Since(start)
				dyn += float64(x.It.DynInstrs)
			}
		}
		return dyn / float64(runs), wall / time.Duration(runs), nil
	}
	if out.BaseDynInstrs, out.BaseWall, err = measure(base); err != nil {
		return nil, err
	}
	if out.DetDynInstrs, out.DetWall, err = measure(det); err != nil {
		return nil, err
	}
	return out, nil
}

// DynCount measures the average dynamic instruction count of the
// *uninstrumented* benchmark over `samples` randomly drawn inputs — the
// Table I per-benchmark figure.
func DynCount(b *benchmarks.Benchmark, target *isa.ISA,
	scale benchmarks.Scale, seed int64, samples int) (float64, error) {
	res, err := codegen.Compile(compileProgram(b), target, b.Name)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i := 0; i < samples; i++ {
		x, err := newCleanInstance(res)
		if err != nil {
			return 0, err
		}
		spec, err := b.Setup(x, rand.New(rand.NewSource(seed+int64(i))), scale)
		if err != nil {
			return 0, err
		}
		if _, tr := x.CallExport(b.Entry, spec.Args...); tr != nil {
			return 0, fmt.Errorf("%s: clean run trapped: %w", b.Name, tr)
		}
		sum += float64(x.It.DynInstrs)
	}
	return sum / float64(samples), nil
}

func newCleanInstance(res *codegen.Result) (*exec.Instance, error) {
	return exec.NewInstance(res, interp.Options{})
}
