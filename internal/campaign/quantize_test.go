package campaign

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func f32bytes(vs ...float32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func f32sOf(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func TestQuantizeF32(t *testing.T) {
	in := f32bytes(0.12345, -0.9999, 1.00004, 0)
	got := f32sOf(quantizeF32(in, 1e-3))
	want := []float32{0.123, -1.0, 1.0, 0}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Errorf("quantized[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuantizeCanonicalizesNaN(t *testing.T) {
	a := quantizeF32(f32bytes(float32(math.NaN())), 1e-3)
	nanBits := math.Float32bits(float32(math.NaN())) | 1 // a different NaN payload
	raw := make([]byte, 4)
	binary.LittleEndian.PutUint32(raw, nanBits)
	b := quantizeF32(raw, 1e-3)
	if string(a) != string(b) {
		t.Error("NaN payloads not canonicalized")
	}
}

// Property: quantization is idempotent and values within step/2 of a grid
// point map to that point.
func TestQuantizeIdempotentProperty(t *testing.T) {
	prop := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		if math.Abs(float64(v)) > 1e6 {
			return true // avoid float32 grid aliasing at huge magnitudes
		}
		once := quantizeF32(f32bytes(v), 1e-3)
		twice := quantizeF32(once, 1e-3)
		return string(once) == string(twice)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOutcomeAccounting(t *testing.T) {
	var c CampaignResult
	c.add(&ExperimentResult{Outcome: OutcomeSDC, Detected: true, DynSites: 5})
	c.add(&ExperimentResult{Outcome: OutcomeSDC, DynSites: 5})
	c.add(&ExperimentResult{Outcome: OutcomeBenign, DynSites: 5})
	c.add(&ExperimentResult{Outcome: OutcomeCrash, Hang: true, DynSites: 5})
	c.add(&ExperimentResult{Outcome: OutcomeBenign, DynSites: 0})

	if c.Experiments != 5 || c.SDC != 2 || c.Benign != 2 || c.Crash != 1 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if c.Hang != 1 || c.Detected != 1 || c.SDCDetected != 1 || c.NoSites != 1 {
		t.Fatalf("aux counts wrong: %+v", c)
	}
	if c.SDCRate() != 0.4 || c.CrashRate() != 0.2 {
		t.Fatalf("rates wrong: %v %v", c.SDCRate(), c.CrashRate())
	}
	if c.SDCDetectionRate() != 0.5 {
		t.Fatalf("detection rate = %v", c.SDCDetectionRate())
	}

	var m CampaignResult
	m.merge(c)
	m.merge(c)
	if m.Experiments != 10 || m.SDC != 4 {
		t.Fatalf("merge wrong: %+v", m)
	}
}

func TestOutcomeNames(t *testing.T) {
	if OutcomeSDC.String() != "SDC" || OutcomeBenign.String() != "Benign" ||
		OutcomeCrash.String() != "Crash" {
		t.Error("outcome names wrong")
	}
}
