package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// This file is the backend-equivalence contract: the vm backend is only
// allowed to exist because every observable of a study — outcomes,
// dynamic counts, trap provenance, injection records, exported JSON,
// explanations, profiles, resume — is byte-identical to the reference
// tree-walker. The exported study JSON deliberately carries no backend
// field, so byte-equality here is the proof that the knob is purely a
// throughput choice.

// TestBackendDifferentialAllBenchmarks runs a small study of every
// benchmark on both ISAs under both backends and requires the scrubbed
// study exports to be byte-identical. Control faults make the faulty
// runs take wrong branches, so this sweep also exercises traps, hangs
// and the budget guard under the vm backend.
func TestBackendDifferentialAllBenchmarks(t *testing.T) {
	for _, b := range benchmarks.All() {
		for _, target := range isa.All {
			b, target := b, target
			t.Run(b.Name+"/"+target.Name, func(t *testing.T) {
				cfg := smallCfg(b, passes.Control)
				cfg.ISA = target
				cfg.Experiments = 6
				cfg.Campaigns = 2

				vmCfg := cfg
				vmCfg.Backend = "vm"
				p, err := Prepare(vmCfg)
				if err != nil {
					t.Fatal(err)
				}
				if p.vmProg == nil || p.vmProg.NumCompiled() == 0 {
					t.Fatal("vm backend prepared without a compiled program")
				}
				vmSR, err := p.RunStudy(context.Background())
				if err != nil {
					t.Fatal(err)
				}

				treeCfg := cfg
				treeCfg.Backend = "tree"
				treeSR, err := RunStudy(context.Background(), treeCfg)
				if err != nil {
					t.Fatal(err)
				}

				got, want := studyBytes(t, vmSR), studyBytes(t, treeSR)
				if !bytes.Equal(got, want) {
					t.Fatalf("vm study diverged from tree-walker:\nvm:   %s\ntree: %s",
						got, want)
				}
			})
		}
	}
}

// TestBackendPerExperimentEquality compares individual experiments
// field by field — outcome, detection, hang, the full trap provenance
// (kind, message, function, block, instruction, dynamic index), the
// injection record and the golden counters — across backends, on both a
// data and a control cell.
func TestBackendPerExperimentEquality(t *testing.T) {
	cells := []struct {
		name string
		cat  passes.Category
	}{
		{"pure-data", passes.PureData},
		{"control", passes.Control},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			cfg := smallCfg(benchmarks.Blackscholes, cell.cat)

			treeCfg := cfg
			treeCfg.Backend = "tree"
			pt, err := Prepare(treeCfg)
			if err != nil {
				t.Fatal(err)
			}
			vmCfg := cfg
			vmCfg.Backend = "vm"
			pv, err := Prepare(vmCfg)
			if err != nil {
				t.Fatal(err)
			}

			for i := 0; i < cfg.Experiments; i++ {
				rt, err := pt.RunExperimentAt(context.Background(), i)
				if err != nil {
					t.Fatal(err)
				}
				rv, err := pv.RunExperimentAt(context.Background(), i)
				if err != nil {
					t.Fatal(err)
				}
				if rt.Outcome != rv.Outcome || rt.Detected != rv.Detected || rt.Hang != rv.Hang {
					t.Fatalf("experiment %d: tree (%v det=%v hang=%v) vs vm (%v det=%v hang=%v)",
						i, rt.Outcome, rt.Detected, rt.Hang, rv.Outcome, rv.Detected, rv.Hang)
				}
				if (rt.Trap == nil) != (rv.Trap == nil) {
					t.Fatalf("experiment %d: trap presence differs: tree %v, vm %v",
						i, rt.Trap, rv.Trap)
				}
				if rt.Trap != nil && *rt.Trap != *rv.Trap {
					t.Fatalf("experiment %d: trap provenance differs:\ntree: %+v\nvm:   %+v",
						i, *rt.Trap, *rv.Trap)
				}
				if rt.Record != rv.Record {
					t.Fatalf("experiment %d: injection record differs: tree %v, vm %v",
						i, rt.Record, rv.Record)
				}
				if rt.DynSites != rv.DynSites || rt.GoldenDynInstrs != rv.GoldenDynInstrs {
					t.Fatalf("experiment %d: golden counters differ: tree (%d sites, %d dyn) vm (%d sites, %d dyn)",
						i, rt.DynSites, rt.GoldenDynInstrs, rv.DynSites, rv.GoldenDynInstrs)
				}
				if rt.InputLabel != rv.InputLabel {
					t.Fatalf("experiment %d: input label differs: %q vs %q",
						i, rt.InputLabel, rv.InputLabel)
				}
			}
		})
	}
}

// TestBackendResumeByteIdentity: checkpointing a vm-backend study and
// resuming it (replaying the first half through Cfg.Completed, as the
// vulfid journal does) must reproduce the uninterrupted vm study — and
// the uninterrupted tree study — byte-for-byte.
func TestBackendResumeByteIdentity(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Inputs = 2
	cfg.Backend = "vm"

	var mu sync.Mutex
	checkpoints := map[int]*ExperimentResult{}
	icfg := cfg
	icfg.OnResult = func(i int, _ int64, r *ExperimentResult) {
		mu.Lock()
		defer mu.Unlock()
		checkpoints[i] = r
	}
	full, err := RunStudy(context.Background(), icfg)
	if err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Completed = map[int]*ExperimentResult{}
	total := cfg.Campaigns * cfg.Experiments
	for i := 0; i < total/2; i++ {
		rcfg.Completed[i] = checkpoints[i]
	}
	resumed, err := RunStudy(context.Background(), rcfg)
	if err != nil {
		t.Fatal(err)
	}

	treeCfg := cfg
	treeCfg.Backend = "tree"
	tree, err := RunStudy(context.Background(), treeCfg)
	if err != nil {
		t.Fatal(err)
	}

	fullJSON := studyBytes(t, full)
	if got := studyBytes(t, resumed); !bytes.Equal(got, fullJSON) {
		t.Fatalf("resumed vm study diverged from uninterrupted vm study:\nresumed: %s\nfull:    %s",
			got, fullJSON)
	}
	if want := studyBytes(t, tree); !bytes.Equal(fullJSON, want) {
		t.Fatalf("vm study diverged from tree-walker:\nvm:   %s\ntree: %s",
			fullJSON, want)
	}
}

// TestBackendExplainEquivalence: -explain runs with tracing on, so the
// vm backend must feed the divergence analyzer the same retirement
// stream — the whole explanation (fault, divergence chain, outcome)
// must round-trip identically.
func TestBackendExplainEquivalence(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Trace = true

	for _, index := range []int{0, 3, 7} {
		treeCfg := cfg
		treeCfg.Backend = "tree"
		rt, err := ExplainExperiment(context.Background(), treeCfg, index)
		if err != nil {
			t.Fatal(err)
		}
		vmCfg := cfg
		vmCfg.Backend = "vm"
		rv, err := ExplainExperiment(context.Background(), vmCfg, index)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Outcome != rv.Outcome || rt.Detected != rv.Detected {
			t.Fatalf("explain %d: outcome differs: tree (%v det=%v) vm (%v det=%v)",
				index, rt.Outcome, rt.Detected, rv.Outcome, rv.Detected)
		}
		tj, err := json.Marshal(rt.Explanation)
		if err != nil {
			t.Fatal(err)
		}
		vj, err := json.Marshal(rv.Explanation)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tj, vj) {
			t.Fatalf("explain %d: explanation differs:\ntree: %s\nvm:   %s", index, tj, vj)
		}
	}
}

// TestBackendProfileCountsEqual: with profiling on, the vm backend's
// fused superinstructions report constituents through AccountFused, so
// the count side of the profile — opcode table, digram miner, sites,
// phase dyn totals — must be identical to the tree-walker's. Only wall
// time may differ.
func TestBackendProfileCountsEqual(t *testing.T) {
	run := func(backend string) []byte {
		cfg := profCfg()
		cfg.Backend = backend
		sr, err := RunStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sr.HotProfile == nil {
			t.Fatal("Profile on but HotProfile nil")
		}
		stripProfileTimes(sr.HotProfile)
		j, err := json.Marshal(sr.HotProfile)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	tree, vm := run("tree"), run("vm")
	if !bytes.Equal(tree, vm) {
		t.Fatalf("profile counts diverge across backends:\ntree: %s\nvm:   %s", tree, vm)
	}
}
