package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"vulfi/internal/buildinfo"
	"vulfi/internal/obs"
	"vulfi/internal/profile"
	"vulfi/internal/trace"
)

// studyJSON is the serialized form of a StudyResult.
type studyJSON struct {
	// Build is the VCS revision of the binary that produced the study
	// (buildinfo.Revision). Empty — and absent — for unstamped binaries
	// such as test runs, keeping golden files deterministic.
	Build       string  `json:"build,omitempty"`
	Benchmark   string  `json:"benchmark"`
	ISA         string  `json:"isa"`
	Category    string  `json:"category"`
	Experiments int     `json:"experiments_per_campaign"`
	Campaigns   int     `json:"campaigns"`
	Seed        int64   `json:"seed"`
	Inputs      int     `json:"inputs"`
	Detectors   bool    `json:"detectors"`
	StaticSites int     `json:"static_sites"`
	LaneSites   int     `json:"lane_sites"`
	MeanDyn     float64 `json:"mean_golden_dyn_instrs"`

	SDC         int `json:"sdc"`
	Benign      int `json:"benign"`
	Crash       int `json:"crash"`
	Hang        int `json:"hang"`
	Detected    int `json:"detected"`
	SDCDetected int `json:"sdc_detected"`
	NoSites     int `json:"no_sites"`

	MeanSDC       float64   `json:"mean_sdc_rate"`
	MarginOfError float64   `json:"margin_of_error_95"`
	NearNormal    bool      `json:"near_normal"`
	CampaignSDC   []float64 `json:"campaign_sdc_rates"`

	// Per-experiment wall-time aggregates over the whole study, so
	// exported studies carry their cost profile.
	WallTotalNS int64 `json:"wall_total_ns"`
	WallMinNS   int64 `json:"wall_min_ns"`
	WallMeanNS  int64 `json:"wall_mean_ns"`
	WallMaxNS   int64 `json:"wall_max_ns"`

	// Propagation is the aggregated fault-propagation profile (present
	// only when the study ran with tracing enabled).
	Propagation *trace.Summary `json:"propagation,omitempty"`

	// Sites is the per-static-site atlas (present only when the study ran
	// with Config.Atlas).
	Sites []SiteTally `json:"sites,omitempty"`

	// HotProfile is the execution profile (present only when the study
	// ran with Config.Profile); omitted, the export is byte-identical to
	// a profiler-unaware build's.
	HotProfile *profile.Profile `json:"hot_profile,omitempty"`

	// Timeline is the span timeline (present only when the study ran
	// with Config.Timeline); omitted, the export is byte-identical to a
	// timeline-unaware build's.
	Timeline *obs.Timeline `json:"timeline,omitempty"`
}

func (sr *StudyResult) toJSON() studyJSON {
	return studyJSON{
		Build:       buildinfo.Revision(),
		Benchmark:   sr.Cfg.Benchmark.Name,
		ISA:         sr.Cfg.ISA.Name,
		Category:    sr.Cfg.Category.String(),
		Experiments: sr.Cfg.Experiments,
		Campaigns:   sr.Cfg.Campaigns,
		Seed:        sr.Cfg.Seed,
		Inputs:      sr.Cfg.Inputs,
		Detectors:   sr.Cfg.Detectors,
		StaticSites: sr.StaticSites,
		LaneSites:   sr.LaneSites,
		MeanDyn:     sr.MeanGoldenDynInstrs,
		SDC:         sr.Totals.SDC,
		Benign:      sr.Totals.Benign,
		Crash:       sr.Totals.Crash,
		Hang:        sr.Totals.Hang,
		Detected:    sr.Totals.Detected,
		SDCDetected: sr.Totals.SDCDetected,
		NoSites:     sr.Totals.NoSites,
		MeanSDC:     sr.MeanSDC, MarginOfError: finiteOr(sr.MarginOfError, -1),
		NearNormal: sr.NearNormal, CampaignSDC: sr.SDCRates,
		WallTotalNS: int64(sr.Totals.WallTotal),
		WallMinNS:   int64(sr.Totals.WallMin),
		WallMeanNS:  int64(sr.Totals.WallMean()),
		WallMaxNS:   int64(sr.Totals.WallMax),
		Propagation: sr.Propagation,
		Sites:       sr.Sites,
		HotProfile:  sr.HotProfile,
		Timeline:    sr.Timeline,
	}
}

// finiteOr replaces non-finite values (e.g. the +Inf margin of a
// single-campaign study) with a sentinel JSON can carry.
func finiteOr(v, sentinel float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return sentinel
	}
	return v
}

// WriteJSON serializes the study (one indented JSON object).
func (sr *StudyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sr.toJSON())
}

// CSVHeader is the column list WriteCSVRow emits, suitable for
// aggregating many study cells into one table.
var CSVHeader = []string{
	"benchmark", "isa", "category", "campaigns", "experiments", "inputs",
	"static_sites", "lane_sites", "sdc", "benign", "crash", "hang",
	"detected", "sdc_detected", "sdc_rate", "benign_rate", "crash_rate",
	"sdc_detection_rate", "margin_of_error_95", "near_normal",
	"mean_golden_dyn_instrs",
	"wall_total_ns", "wall_min_ns", "wall_mean_ns", "wall_max_ns",
}

// WriteCSVHeader emits the header row.
func WriteCSVHeader(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVRow appends this study as one CSV row.
func (sr *StudyResult) WriteCSVRow(w io.Writer) error {
	t := sr.Totals
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	row := []string{
		sr.Cfg.Benchmark.Name, sr.Cfg.ISA.Name, sr.Cfg.Category.String(),
		strconv.Itoa(sr.Cfg.Campaigns), strconv.Itoa(sr.Cfg.Experiments),
		strconv.Itoa(sr.Cfg.Inputs),
		strconv.Itoa(sr.StaticSites), strconv.Itoa(sr.LaneSites),
		strconv.Itoa(t.SDC), strconv.Itoa(t.Benign), strconv.Itoa(t.Crash),
		strconv.Itoa(t.Hang), strconv.Itoa(t.Detected), strconv.Itoa(t.SDCDetected),
		f(t.SDCRate()), f(t.BenignRate()), f(t.CrashRate()),
		f(t.SDCDetectionRate()), f(finiteOr(sr.MarginOfError, -1)),
		fmt.Sprint(sr.NearNormal), f(sr.MeanGoldenDynInstrs),
		strconv.FormatInt(int64(t.WallTotal), 10),
		strconv.FormatInt(int64(t.WallMin), 10),
		strconv.FormatInt(int64(t.WallMean()), 10),
		strconv.FormatInt(int64(t.WallMax), 10),
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(row); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
