package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
)

// collectShard runs cfg restricted to [lo, hi) and returns the triples
// it checkpointed, asserting every executed index stayed in range.
func collectShard(t *testing.T, cfg Config, lo, hi int) map[int]*ExperimentResult {
	t.Helper()
	cfg.ShardStart, cfg.ShardEnd = lo, hi
	var mu sync.Mutex
	got := map[int]*ExperimentResult{}
	cfg.OnResult = func(i int, seed int64, r *ExperimentResult) {
		mu.Lock()
		defer mu.Unlock()
		if i < lo || i >= hi {
			t.Errorf("shard [%d,%d) executed out-of-range experiment %d", lo, hi, i)
		}
		got[i] = r
	}
	if _, err := RunStudy(context.Background(), cfg); err != nil {
		t.Fatalf("shard [%d,%d): %v", lo, hi, err)
	}
	return got
}

// TestShardRangeRestrictsExecution: a shard config executes exactly its
// half-open index range, nothing else.
func TestShardRangeRestrictsExecution(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	total := cfg.Campaigns * cfg.Experiments
	got := collectShard(t, cfg, 3, 11)
	if len(got) != 8 {
		t.Fatalf("shard [3,11) checkpointed %d experiments, want 8", len(got))
	}
	for i := 3; i < 11; i++ {
		if got[i] == nil {
			t.Errorf("shard [3,11) missing experiment %d", i)
		}
	}
	// A shard fully outside the schedule is legal at the campaign layer
	// only via validation bounds; the last in-range slice works too.
	edge := collectShard(t, cfg, total-2, total)
	if len(edge) != 2 {
		t.Fatalf("tail shard checkpointed %d experiments, want 2", len(edge))
	}
}

// TestShardMergeEquivalence is the distributed-campaign invariant: the
// union of N disjoint shard runs, merged through one Completed-map
// replay of the unsharded config, must reproduce the single-node
// study's JSON byte for byte (wall fields scrubbed — they measure this
// machine's clock, the one thing sharding legitimately changes).
// Atlas site tallies ride along: attribution reads only replayed
// results plus deterministic profiling runs.
func TestShardMergeEquivalence(t *testing.T) {
	base := smallCfg(benchmarks.Blackscholes, passes.Control)
	base.Atlas = true
	base.Inputs = 2
	total := base.Campaigns * base.Experiments

	full, err := RunStudy(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := studyBytes(t, full)

	for _, shards := range []int{1, 2, 7} {
		merged := map[int]*ExperimentResult{}
		per := (total + shards - 1) / shards
		for lo := 0; lo < total; lo += per {
			hi := lo + per
			if hi > total {
				hi = total
			}
			for i, r := range collectShard(t, base, lo, hi) {
				merged[i] = r
			}
		}
		if len(merged) != total {
			t.Fatalf("%d shards: union has %d/%d experiments", shards, len(merged), total)
		}
		mergeCfg := base
		mergeCfg.Completed = merged
		sr, err := RunStudy(context.Background(), mergeCfg)
		if err != nil {
			t.Fatalf("%d shards: merge: %v", shards, err)
		}
		if got := studyBytes(t, sr); !bytes.Equal(got, want) {
			t.Fatalf("%d shards: merged study diverged:\nmerged: %s\nfull:   %s",
				shards, got, want)
		}
	}
}

// TestShardRangeValidation: the shard range is validated against the
// (defaulted) schedule with descriptive errors.
func TestShardRangeValidation(t *testing.T) {
	base := smallCfg(benchmarks.VectorCopy, passes.PureData)
	total := base.Campaigns * base.Experiments
	cases := []struct {
		lo, hi int
		want   string // substring of the error; "" = valid
	}{
		{0, 0, ""},
		{0, total, ""},
		{total - 1, total, ""},
		{-1, 5, "non-negative"},
		{3, 0, "without ShardEnd"},
		{5, 5, "empty shard range"},
		{7, 3, "empty shard range"},
		{0, total + 1, "exceeds"},
	}
	for _, tc := range cases {
		cfg := base
		cfg.ShardStart, cfg.ShardEnd = tc.lo, tc.hi
		err := cfg.Validate()
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("range [%d,%d): unexpected error %v", tc.lo, tc.hi, err)
		case tc.want != "" && err == nil:
			t.Errorf("range [%d,%d): error missing (want %q)", tc.lo, tc.hi, tc.want)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("range [%d,%d): error %q does not mention %q", tc.lo, tc.hi, err, tc.want)
		}
	}
}
