package campaign

import (
	"context"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

// The tests in this file turn the paper's qualitative §IV claims into
// executable assertions at reduced experiment counts. They use fixed
// seeds and generous margins so they are deterministic and robust, while
// still failing if a code change inverts one of the reproduced shapes.

func shapeStudy(t *testing.T, b *benchmarks.Benchmark, cat passes.Category,
	detectors bool) *StudyResult {
	t.Helper()
	sr, err := RunStudy(context.Background(), Config{
		Benchmark: b, ISA: isa.AVX, Category: cat,
		Scale: benchmarks.ScaleDefault, Experiments: 60, Campaigns: 1,
		Seed: 20160516, Detectors: detectors,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// §IV-D: "the address fault site category results in the most number of
// program crashes."
func TestShapeAddressCrashesMost(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign shape test")
	}
	b := benchmarks.Blackscholes
	crash := map[passes.Category]float64{}
	for _, cat := range passes.AllCategories {
		crash[cat] = shapeStudy(t, b, cat, false).Totals.CrashRate()
	}
	if crash[passes.Address] <= crash[passes.PureData] ||
		crash[passes.Address] <= crash[passes.Control] {
		t.Fatalf("address faults should crash most: %v", crash)
	}
}

// §IV-D: Swaptions is among the most resilient benchmarks; Stencil among
// the most SDC-prone (pure-data category, where the site populations are
// dominated by the kernels' data flow).
func TestShapeSwaptionsMostResilient(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign shape test")
	}
	sw := shapeStudy(t, benchmarks.Swaptions, passes.PureData, false)
	st := shapeStudy(t, benchmarks.Stencil, passes.PureData, false)
	if sw.Totals.SDCRate() >= st.Totals.SDCRate() {
		t.Fatalf("swaptions (%.2f) should have lower pure-data SDC than stencil (%.2f)",
			sw.Totals.SDCRate(), st.Totals.SDCRate())
	}
}

// §IV-E: "no SDCs are detected when pure-data sites are targeted" —
// across all three micro-benchmarks.
func TestShapePureDataNeverDetected(t *testing.T) {
	for _, b := range benchmarks.Micro() {
		sr := shapeStudy(t, b, passes.PureData, true)
		if sr.Totals.Detected != 0 {
			t.Fatalf("%s: pure-data faults fired the detector %d times",
				b.Name, sr.Totals.Detected)
		}
	}
}

// §IV-E: control faults lead to the highest SDC rates among the
// detector-relevant categories, and a substantial share of control SDCs
// is detected by the foreach invariants.
func TestShapeControlDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign shape test")
	}
	b := benchmarks.VectorCopy
	ctrl := shapeStudy(t, b, passes.Control, true)
	addr := shapeStudy(t, b, passes.Address, true)
	if ctrl.Totals.SDCRate() <= addr.Totals.SDCRate() {
		t.Fatalf("control SDC (%.2f) should exceed address SDC (%.2f)",
			ctrl.Totals.SDCRate(), addr.Totals.SDCRate())
	}
	if ctrl.Totals.SDCDetectionRate() < 0.15 {
		t.Fatalf("control SDC detection rate too low: %.2f",
			ctrl.Totals.SDCDetectionRate())
	}
}

// §II: the mask-aware injector must see strictly fewer dynamic sites
// than a mask-oblivious one when the partial body executes.
func TestShapeMaskAwareness(t *testing.T) {
	dyn := func(obl bool) uint64 {
		p, err := Prepare(Config{
			Benchmark: benchmarks.VectorCopy, ISA: isa.AVX,
			Category: passes.PureData, Scale: benchmarks.ScaleTest,
			Seed: 7, MaskOblivious: obl,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.RunExperiment(context.Background(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return r.DynSites
	}
	aware, oblivious := dyn(false), dyn(true)
	if aware >= oblivious {
		t.Fatalf("mask-aware N=%d should be below mask-oblivious N=%d",
			aware, oblivious)
	}
}
