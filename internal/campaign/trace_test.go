package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
)

// tracedCfg is the acceptance-criteria cell: VectorCopy × AVX ×
// pure-data with divergence tracing on.
func tracedCfg() Config {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Trace = true
	cfg.Campaigns = 1
	cfg.Experiments = 30
	return cfg
}

// firstSDCIndex scans the deterministic seed schedule for the first
// experiment classified SDC whose injection actually fired.
func firstSDCIndex(t *testing.T, cfg Config) (int, *ExperimentResult) {
	t.Helper()
	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Experiments*cfg.Campaigns; i++ {
		r, err := p.RunExperiment(context.Background(), cfg.ExperimentSeed(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome == OutcomeSDC && r.Record.Width > 0 {
			return i, r
		}
	}
	t.Fatal("no SDC experiment in the scanned seed schedule")
	return 0, nil
}

// isFaultSiteOrSuccessor reports whether the first-divergence
// instruction is the fault site itself or one of its def-use successors
// introduced by instrumentation (%ext<lane> → %inj<lane> → %ins<lane>,
// or %inj_s<id> for scalar sites). The injection call carries its lane
// site ID as the final argument, which ties it to the experiment's
// injection record.
func isFaultSiteOrSuccessor(instr, site string, laneSiteID int64) bool {
	if instr == site {
		return true
	}
	name, _, ok := strings.Cut(instr, " = ")
	if !ok {
		return false
	}
	switch {
	case strings.HasPrefix(name, "%inj"):
		return strings.Contains(instr, fmt.Sprintf("i32 %d)", laneSiteID))
	case strings.HasPrefix(name, "%ext"), strings.HasPrefix(name, "%ins"):
		return true
	}
	return false
}

// TestExplainSDCAcceptance is the PR's acceptance criterion: for a
// deterministic seeded SDC experiment, the reported first divergence is
// the fault site (or a def-use successor of it), and the dynamic slice
// class agrees with the static category the site was enumerated under.
func TestExplainSDCAcceptance(t *testing.T) {
	cfg := tracedCfg()
	_, r := firstSDCIndex(t, cfg)
	e := r.Explanation
	if e == nil {
		t.Fatal("traced SDC experiment has no explanation")
	}
	if !e.Diverged || e.First == nil {
		t.Fatalf("SDC must diverge with a first-divergence point: %+v", e)
	}
	if e.FaultSite == nil {
		t.Fatal("performed injection must stamp the fault site")
	}
	if e.First.Func != e.FaultSite.Func {
		t.Fatalf("first divergence in %q, fault site in %q",
			e.First.Func, e.FaultSite.Func)
	}
	if !isFaultSiteOrSuccessor(e.First.Instr, e.FaultSite.Instr, r.Record.LaneSiteID) {
		t.Fatalf("first divergence %q is neither the fault site %q (lane site %d) nor its instrumentation successor",
			e.First.Instr, e.FaultSite.Instr, r.Record.LaneSiteID)
	}
	if e.Depth == 0 || e.MaxLaneSpread == 0 {
		t.Fatalf("SDC with divergence must have depth/spread > 0: depth=%d spread=%d",
			e.Depth, e.MaxLaneSpread)
	}
	// A pure-data VectorCopy corruption flows straight to the stored
	// output: the dynamic slice class must agree with the static
	// category (no control or address crossing).
	if got := e.SliceClass(); got != "data" {
		t.Fatalf("SliceClass = %q, want data (static category %s)",
			got, cfg.Category)
	}
	if e.ControlDivergence {
		t.Fatal("pure-data VectorCopy SDC must not diverge in control flow")
	}
	if e.Outcome != "SDC" {
		t.Fatalf("explanation outcome = %q, want SDC", e.Outcome)
	}
}

// TestExplainExperimentDeterministic re-explains the same experiment
// index twice and requires byte-identical explanations.
func TestExplainExperimentDeterministic(t *testing.T) {
	cfg := tracedCfg()
	idx, _ := firstSDCIndex(t, cfg)
	run := func() []byte {
		r, err := ExplainExperiment(context.Background(), cfg, idx)
		if err != nil {
			t.Fatal(err)
		}
		if r.Explanation == nil {
			t.Fatal("ExplainExperiment returned no explanation")
		}
		raw, err := json.Marshal(r.Explanation)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("explanation not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestExplainExperimentIndexRange(t *testing.T) {
	cfg := tracedCfg()
	if _, err := ExplainExperiment(context.Background(), cfg, -1); err == nil {
		t.Fatal("negative index must error")
	}
	if _, err := ExplainExperiment(context.Background(), cfg,
		cfg.Experiments*cfg.Campaigns); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

// TestStudyPropagationProfile runs a traced study end to end and checks
// the aggregated propagation profile and its JSON export.
func TestStudyPropagationProfile(t *testing.T) {
	cfg := tracedCfg()
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Propagation == nil {
		t.Fatal("traced study has no propagation summary")
	}
	if sr.Propagation.Traced != cfg.Experiments*cfg.Campaigns-sr.Totals.NoSites {
		t.Fatalf("Traced = %d, want %d (experiments minus vacuous)",
			sr.Propagation.Traced, cfg.Experiments*cfg.Campaigns-sr.Totals.NoSites)
	}
	if sr.Totals.SDC > 0 && len(sr.Propagation.Blame) == 0 {
		t.Fatal("study with SDCs has an empty blame ranking")
	}
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"propagation"`) {
		t.Fatal("WriteJSON output missing the propagation profile")
	}
}

// TestUntracedStudyHasNoProfile guards the default path: without
// Config.Trace no explanations or profile are produced.
func TestUntracedStudyHasNoProfile(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Propagation != nil {
		t.Fatal("untraced study produced a propagation summary")
	}
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"propagation"`) {
		t.Fatal("untraced WriteJSON output contains propagation")
	}
}
