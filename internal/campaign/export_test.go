package campaign

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
)

func runTinyStudy(t *testing.T) *StudyResult {
	t.Helper()
	sr, err := RunStudy(context.Background(), smallCfg(benchmarks.VectorCopy, passes.Control))
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestWriteJSON(t *testing.T) {
	sr := runTinyStudy(t)
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["benchmark"] != "VectorCopy" || decoded["isa"] != "AVX" {
		t.Fatalf("identity fields wrong: %v", decoded)
	}
	if decoded["category"] != "control" {
		t.Fatalf("category = %v", decoded["category"])
	}
	rates, ok := decoded["campaign_sdc_rates"].([]any)
	if !ok || len(rates) != 2 {
		t.Fatalf("campaign rates wrong: %v", decoded["campaign_sdc_rates"])
	}
	sdc := decoded["sdc"].(float64)
	benign := decoded["benign"].(float64)
	crash := decoded["crash"].(float64)
	if int(sdc+benign+crash) != sr.Totals.Experiments {
		t.Fatal("serialized outcomes do not partition")
	}
}

func TestWriteCSV(t *testing.T) {
	sr := runTinyStudy(t)
	var buf bytes.Buffer
	if err := WriteCSVHeader(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sr.WriteCSVRow(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("rows = %d", len(recs))
	}
	if len(recs[0]) != len(CSVHeader) || len(recs[1]) != len(CSVHeader) {
		t.Fatal("column count mismatch")
	}
	if recs[1][0] != "VectorCopy" || recs[1][2] != "control" {
		t.Fatalf("row identity wrong: %v", recs[1])
	}
}
