package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vulfi/internal/obs"
	"vulfi/internal/profile"
	"vulfi/internal/stats"
	"vulfi/internal/telemetry"
	"vulfi/internal/trace"
)

// CampaignResult aggregates one campaign of experiments (paper: 100).
type CampaignResult struct {
	Experiments int
	SDC         int
	Benign      int
	Crash       int
	// Hang is the budget-exceeded subset of Crash.
	Hang int
	// Detected counts experiments where a synthesized detector fired.
	Detected int
	// SDCDetected counts SDC experiments flagged by a detector (the
	// Figure 12 "SDC detection" numerator).
	SDCDetected int
	// NoSites counts vacuous experiments (no dynamic site in category).
	NoSites int

	// WallTotal/WallMin/WallMax aggregate per-experiment wall times;
	// WallMean derives the average. Only timed experiments (Wall > 0)
	// participate in the min/max: untimed results — e.g. merged from a
	// pre-timing serialization — never drag WallMin to zero or leave it
	// stale. All three are zero when no timed experiment was observed.
	WallTotal time.Duration
	WallMin   time.Duration
	WallMax   time.Duration
}

// WallMean returns the average experiment wall time.
func (c *CampaignResult) WallMean() time.Duration {
	if c.Experiments == 0 {
		return 0
	}
	return c.WallTotal / time.Duration(c.Experiments)
}

func (c *CampaignResult) add(r *ExperimentResult) {
	c.WallTotal += r.Wall
	if r.Wall > 0 {
		if c.WallMin == 0 || r.Wall < c.WallMin {
			c.WallMin = r.Wall
		}
		if r.Wall > c.WallMax {
			c.WallMax = r.Wall
		}
	}
	c.Experiments++
	switch r.Outcome {
	case OutcomeSDC:
		c.SDC++
		if r.Detected {
			c.SDCDetected++
		}
	case OutcomeBenign:
		c.Benign++
	case OutcomeCrash:
		c.Crash++
		if r.Hang {
			c.Hang++
		}
	}
	if r.Detected {
		c.Detected++
	}
	if r.DynSites == 0 {
		c.NoSites++
	}
}

func (c *CampaignResult) merge(o CampaignResult) {
	if o.WallMin > 0 && (c.WallMin == 0 || o.WallMin < c.WallMin) {
		c.WallMin = o.WallMin
	}
	if o.WallMax > c.WallMax {
		c.WallMax = o.WallMax
	}
	c.WallTotal += o.WallTotal
	c.Experiments += o.Experiments
	c.SDC += o.SDC
	c.Benign += o.Benign
	c.Crash += o.Crash
	c.Hang += o.Hang
	c.Detected += o.Detected
	c.SDCDetected += o.SDCDetected
	c.NoSites += o.NoSites
}

func rate(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// SDCRate returns the campaign's SDC fraction.
func (c *CampaignResult) SDCRate() float64 { return rate(c.SDC, c.Experiments) }

// BenignRate returns the campaign's benign fraction.
func (c *CampaignResult) BenignRate() float64 { return rate(c.Benign, c.Experiments) }

// CrashRate returns the campaign's crash fraction.
func (c *CampaignResult) CrashRate() float64 { return rate(c.Crash, c.Experiments) }

// SDCDetectionRate returns the fraction of SDCs flagged by detectors.
func (c *CampaignResult) SDCDetectionRate() float64 { return rate(c.SDCDetected, c.SDC) }

// StudyResult is a fully qualified study: all campaigns of one cell plus
// the paper's statistical summary.
type StudyResult struct {
	Cfg       Config
	Campaigns []CampaignResult
	Totals    CampaignResult

	// SDCRates are the per-campaign SDC rates (the random sample whose
	// distribution the paper qualifies).
	SDCRates []float64
	// MeanSDC and MarginOfError are the 95%-confidence summary.
	MeanSDC       float64
	MarginOfError float64
	// NearNormal reports the paper's normality criterion on the sample.
	NearNormal bool

	// StaticSites / LaneSites describe the instrumented module.
	StaticSites int
	LaneSites   int
	// MeanGoldenDynInstrs is the average golden-run dynamic instruction
	// count (Table I's per-benchmark figure).
	MeanGoldenDynInstrs float64

	// Wall is the study's total wall-clock time (prepare excluded).
	Wall time.Duration

	// Propagation is the study's aggregated fault-propagation profile
	// (nil unless Cfg.Trace was set).
	Propagation *trace.Summary

	// Sites is the per-static-site atlas (nil unless Cfg.Atlas was set):
	// one tally per instrumented site, lanes folded, injections attributed
	// through each experiment's InjectionRecord.
	Sites []SiteTally

	// HotProfile is the study's execution profile (nil unless
	// Cfg.Profile was set): hot opcodes, opcode pairs, hot sites, phase
	// breakdown, exp/s timeline.
	HotProfile *profile.Profile

	// Timeline is the study's merged span timeline (nil unless
	// Cfg.Timeline was set): the hierarchical span tree per worker
	// lane, exportable as JSONL or Chrome trace-event JSON. Resumed
	// studies span only the freshly executed tail — replayed
	// checkpoint entries never re-execute and record no spans.
	Timeline *obs.Timeline
}

// ExperimentSeed returns the deterministic seed of experiment index i
// under this configuration. The schedule depends only on Cfg.Seed and
// the index, so a checkpointed study can be resumed by replaying the
// completed indices and re-running the rest with identical seeds.
func (c Config) ExperimentSeed(i int) int64 {
	return c.Seed + int64(i)*0x9E3779B9 + 1
}

// InputSeed returns the seed that generates experiment i's program
// input. Without an input pool (Inputs <= 0) it equals ExperimentSeed(i)
// — every experiment draws its own input, the historical behavior. With
// Inputs = K > 0 experiment i draws from a pool of K seeds (index
// i mod K), so pool seed j generates exactly the input experiment j
// would have drawn uncached. The pool schedule depends only on Seed and
// K, never on the experiment count, so resumed studies see identical
// inputs.
func (c Config) InputSeed(i int) int64 {
	if c.Inputs <= 0 {
		return c.ExperimentSeed(i)
	}
	return c.ExperimentSeed(i % c.Inputs)
}

// RunStudy prepares the cell and runs Campaigns × Experiments paired
// experiments on a worker pool, grouping results into campaigns.
// Cancelling ctx stops the study cooperatively between experiments.
func RunStudy(ctx context.Context, cfg Config) (*StudyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunStudy(ctx)
}

// RunStudy runs the configured number of campaigns on a prepared cell.
// When the cell carries an event sink it emits one span per experiment,
// per campaign, and for the whole study; OnExperiment fires after every
// completed experiment for live progress and OnResult checkpoints each
// freshly executed (index, seed, result) triple.
//
// Cancellation is cooperative between experiments: in-flight experiments
// finish (and are reported through OnResult/OnExperiment), no further
// experiments start, and RunStudy returns ctx.Err(). Likewise the first
// experiment error stops dispatch instead of wasting the rest of the
// study. Indices present in Cfg.Completed are not re-run; their recorded
// results are merged verbatim.
func (p *Prepared) RunStudy(ctx context.Context) (*StudyResult, error) {
	cfg := p.Cfg
	start := time.Now()
	if p.prof != nil {
		p.prof.StartTimeline(start)
	}
	total := cfg.Campaigns * cfg.Experiments
	results := make([]*ExperimentResult, total)
	errs := make([]error, total)
	for i, r := range cfg.Completed {
		if i >= 0 && i < total && r != nil {
			results[i] = r
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	inflight := p.reg.Gauge("campaign.workers")
	inflight.Add(int64(workers))
	defer inflight.Add(-int64(workers))
	var wg sync.WaitGroup
	work := make(chan int)
	// abort closes on the first experiment error so the dispatcher stops
	// handing out work instead of running the study to completion.
	abort := make(chan struct{})
	var abortOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := p.workerCtx(w)
			for i := range work {
				seed := cfg.ExperimentSeed(i)
				if cfg.OnStart != nil {
					cfg.OnStart(i, w)
				}
				if wc != nil {
					wc.index = i
				}
				r, err := p.runExperimentOn(ctx, i, wc)
				results[i], errs[i] = r, err
				if err != nil {
					abortOnce.Do(func() { close(abort) })
					continue
				}
				if cfg.Events != nil {
					cfg.Events.Emit(experimentSpan(cfg, i, seed, r))
				}
				if cfg.OnResult != nil {
					cfg.OnResult(i, seed, r)
				}
				if cfg.OnExperiment != nil {
					cfg.OnExperiment(r)
				}
			}
		}(w)
	}
	// A shard runs only its index range; everything else executes the
	// full schedule. Checkpoint replay above is range-oblivious on
	// purpose: a merge-only run (fully populated Completed, no range)
	// aggregates every replayed triple without executing anything.
	lo, hi := 0, total
	if cfg.ShardEnd > 0 {
		lo, hi = cfg.ShardStart, cfg.ShardEnd
	}
dispatch:
	for i := lo; i < hi; i++ {
		if results[i] != nil {
			continue // replayed from a checkpoint
		}
		select {
		case work <- i:
		case <-abort:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment %d: %w", i, err)
		}
	}

	sr := &StudyResult{
		Cfg:         cfg,
		StaticSites: len(p.Inst.Sites),
		LaneSites:   len(p.Inst.LaneSites),
	}
	var dynSum float64
	present := 0
	for c := 0; c < cfg.Campaigns; c++ {
		var cr CampaignResult
		for e := 0; e < cfg.Experiments; e++ {
			r := results[c*cfg.Experiments+e]
			if r == nil {
				continue // outside the shard range
			}
			present++
			cr.add(r)
			dynSum += float64(r.GoldenDynInstrs)
		}
		sr.Campaigns = append(sr.Campaigns, cr)
		sr.Totals.merge(cr)
		sr.SDCRates = append(sr.SDCRates, cr.SDCRate())
		if cfg.Events != nil {
			cfg.Events.Emit(campaignSpan(cfg, c, cr))
		}
	}
	sr.MeanSDC = stats.Mean(sr.SDCRates)
	sr.MarginOfError = stats.MarginOfError95(sr.SDCRates)
	sr.NearNormal = stats.NearNormal(sr.SDCRates)
	// Mean over the experiments that actually have results: identical
	// to /total for full runs, range-sized for shards.
	if present > 0 {
		sr.MeanGoldenDynInstrs = dynSum / float64(present)
	}
	if p.Profile != nil {
		sr.Propagation = p.Profile.Summary()
	}
	if cfg.Atlas {
		tallies, err := p.siteTallies(results)
		if err != nil {
			return nil, fmt.Errorf("atlas attribution: %w", err)
		}
		sr.Sites = tallies
	}
	if p.prof != nil {
		sr.HotProfile = p.prof.Snapshot()
	}
	sr.Wall = time.Since(start)
	if p.obs != nil {
		p.obs.Ctl(studyRootName(cfg), p.obs.Root(), p.obs.Parent(), start, sr.Wall,
			studyAttrs(cfg, total))
		sr.Timeline = p.obs.Finish(sr.Wall)
	}
	if cfg.Events != nil {
		cfg.Events.Emit(studySpan(sr))
	}
	return sr, nil
}

// experimentSpan serializes one completed experiment as a telemetry
// event, carrying the seed so any single experiment can be replayed.
func experimentSpan(cfg Config, index int, seed int64, r *ExperimentResult) telemetry.Event {
	fields := map[string]any{
		"index":             index,
		"seed":              seed,
		"outcome":           r.Outcome.String(),
		"detected":          r.Detected,
		"hang":              r.Hang,
		"dyn_sites":         r.DynSites,
		"golden_dyn_instrs": r.GoldenDynInstrs,
		"input":             r.InputLabel,
		"faulty_wall_ns":    int64(r.FaultyWall),
	}
	if r.DynSites > 0 {
		fields["injection"] = r.Record.String()
	}
	if r.Trap != nil {
		fields["trap"] = r.Trap.Error()
		if at := r.Trap.At(); at != "" {
			fields["trap_site"] = at
		}
	}
	if e := r.Explanation; e != nil {
		fields["slice_class"] = e.SliceClass()
		fields["depth"] = e.Depth
	}
	return telemetry.Event{
		Type: "experiment", Name: cfg.String(),
		DurNS: int64(r.Wall), Fields: fields,
	}
}

// campaignSpan summarizes one campaign (the paper's unit of statistical
// sampling) as a telemetry event.
func campaignSpan(cfg Config, index int, cr CampaignResult) telemetry.Event {
	return telemetry.Event{
		Type: "campaign", Name: cfg.String(), DurNS: int64(cr.WallTotal),
		Fields: map[string]any{
			"index":        index,
			"experiments":  cr.Experiments,
			"sdc":          cr.SDC,
			"benign":       cr.Benign,
			"crash":        cr.Crash,
			"hang":         cr.Hang,
			"detected":     cr.Detected,
			"sdc_rate":     cr.SDCRate(),
			"wall_min_ns":  int64(cr.WallMin),
			"wall_mean_ns": int64(cr.WallMean()),
			"wall_max_ns":  int64(cr.WallMax),
		},
	}
}

// studySpan serializes the qualified study summary, including enough of
// the configuration (seed, scale, detector flags) to rerun the cell.
func studySpan(sr *StudyResult) telemetry.Event {
	cfg := sr.Cfg
	return telemetry.Event{
		Type: "study", Name: cfg.String(), DurNS: int64(sr.Wall),
		Fields: map[string]any{
			"benchmark":     cfg.Benchmark.Name,
			"isa":           cfg.ISA.Name,
			"category":      cfg.Category.String(),
			"campaigns":     cfg.Campaigns,
			"experiments":   cfg.Experiments,
			"seed":          cfg.Seed,
			"detectors":     cfg.Detectors,
			"static_sites":  sr.StaticSites,
			"lane_sites":    sr.LaneSites,
			"sdc":           sr.Totals.SDC,
			"benign":        sr.Totals.Benign,
			"crash":         sr.Totals.Crash,
			"mean_sdc_rate": sr.MeanSDC,
			// finiteOr: a single-campaign margin is +Inf, which JSON
			// cannot carry.
			"margin_of_error": finiteOr(sr.MarginOfError, -1),
			"near_normal":     sr.NearNormal,
		},
	}
}
