package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"vulfi/internal/stats"
)

// CampaignResult aggregates one campaign of experiments (paper: 100).
type CampaignResult struct {
	Experiments int
	SDC         int
	Benign      int
	Crash       int
	// Hang is the budget-exceeded subset of Crash.
	Hang int
	// Detected counts experiments where a synthesized detector fired.
	Detected int
	// SDCDetected counts SDC experiments flagged by a detector (the
	// Figure 12 "SDC detection" numerator).
	SDCDetected int
	// NoSites counts vacuous experiments (no dynamic site in category).
	NoSites int
}

func (c *CampaignResult) add(r *ExperimentResult) {
	c.Experiments++
	switch r.Outcome {
	case OutcomeSDC:
		c.SDC++
		if r.Detected {
			c.SDCDetected++
		}
	case OutcomeBenign:
		c.Benign++
	case OutcomeCrash:
		c.Crash++
		if r.Hang {
			c.Hang++
		}
	}
	if r.Detected {
		c.Detected++
	}
	if r.DynSites == 0 {
		c.NoSites++
	}
}

func (c *CampaignResult) merge(o CampaignResult) {
	c.Experiments += o.Experiments
	c.SDC += o.SDC
	c.Benign += o.Benign
	c.Crash += o.Crash
	c.Hang += o.Hang
	c.Detected += o.Detected
	c.SDCDetected += o.SDCDetected
	c.NoSites += o.NoSites
}

func rate(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// SDCRate returns the campaign's SDC fraction.
func (c *CampaignResult) SDCRate() float64 { return rate(c.SDC, c.Experiments) }

// BenignRate returns the campaign's benign fraction.
func (c *CampaignResult) BenignRate() float64 { return rate(c.Benign, c.Experiments) }

// CrashRate returns the campaign's crash fraction.
func (c *CampaignResult) CrashRate() float64 { return rate(c.Crash, c.Experiments) }

// SDCDetectionRate returns the fraction of SDCs flagged by detectors.
func (c *CampaignResult) SDCDetectionRate() float64 { return rate(c.SDCDetected, c.SDC) }

// StudyResult is a fully qualified study: all campaigns of one cell plus
// the paper's statistical summary.
type StudyResult struct {
	Cfg       Config
	Campaigns []CampaignResult
	Totals    CampaignResult

	// SDCRates are the per-campaign SDC rates (the random sample whose
	// distribution the paper qualifies).
	SDCRates []float64
	// MeanSDC and MarginOfError are the 95%-confidence summary.
	MeanSDC       float64
	MarginOfError float64
	// NearNormal reports the paper's normality criterion on the sample.
	NearNormal bool

	// StaticSites / LaneSites describe the instrumented module.
	StaticSites int
	LaneSites   int
	// MeanGoldenDynInstrs is the average golden-run dynamic instruction
	// count (Table I's per-benchmark figure).
	MeanGoldenDynInstrs float64
}

// RunStudy prepares the cell and runs Campaigns × Experiments paired
// experiments on a worker pool, grouping results into campaigns.
func RunStudy(cfg Config) (*StudyResult, error) {
	if cfg.Experiments <= 0 {
		cfg.Experiments = 100
	}
	if cfg.Campaigns <= 0 {
		cfg.Campaigns = 20
	}
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunStudy()
}

// RunStudy runs the configured number of campaigns on a prepared cell.
func (p *Prepared) RunStudy() (*StudyResult, error) {
	cfg := p.Cfg
	total := cfg.Campaigns * cfg.Experiments
	results := make([]*ExperimentResult, total)
	errs := make([]error, total)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				seed := cfg.Seed + int64(i)*0x9E3779B9 + 1
				results[i], errs[i] = p.RunExperiment(seed)
			}
		}()
	}
	for i := 0; i < total; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment %d: %w", i, err)
		}
	}

	sr := &StudyResult{
		Cfg:         cfg,
		StaticSites: len(p.Inst.Sites),
		LaneSites:   len(p.Inst.LaneSites),
	}
	var dynSum float64
	for c := 0; c < cfg.Campaigns; c++ {
		var cr CampaignResult
		for e := 0; e < cfg.Experiments; e++ {
			r := results[c*cfg.Experiments+e]
			cr.add(r)
			dynSum += float64(r.GoldenDynInstrs)
		}
		sr.Campaigns = append(sr.Campaigns, cr)
		sr.Totals.merge(cr)
		sr.SDCRates = append(sr.SDCRates, cr.SDCRate())
	}
	sr.MeanSDC = stats.Mean(sr.SDCRates)
	sr.MarginOfError = stats.MarginOfError95(sr.SDCRates)
	sr.NearNormal = stats.NearNormal(sr.SDCRates)
	sr.MeanGoldenDynInstrs = dynSum / float64(total)
	return sr, nil
}
