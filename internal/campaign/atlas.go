package campaign

import (
	"math/rand"

	"vulfi/internal/core"
)

// atlasProfileInputs caps how many pool inputs the activation-profiling
// pass replays. Activation counts are a per-input property; averaging a
// bounded prefix of the deterministic pool keeps profiling cost constant
// while still covering input-dependent control flow.
const atlasProfileInputs = 16

// SiteTally is one static fault site's row in the resiliency atlas: the
// site's identity (canonical key plus its Figure 2 category tag), how
// often it was dynamically live, and how the experiments that hit it
// ended. Tallies ride the study JSON export and the history store.
type SiteTally struct {
	// Site is the static site ID within the instrumented module.
	Site int `json:"site"`
	// Key is the canonical "@func/block: instr" spelling shared with the
	// trace blame ranking (trace.SiteKey).
	Key   string `json:"key"`
	Func  string `json:"func"`
	Block string `json:"block"`
	Instr string `json:"instr"`
	// Category is the site's Figure 2 tag derived from its static slice
	// flags: "control", "address", "control+address" or "pure-data".
	Category string `json:"category"`
	// Lanes is the number of runtime lane sites folded into this row.
	Lanes int `json:"lanes"`
	// Activations counts live (unmasked) dynamic visits of the site's
	// lanes summed over the profiling pass's golden runs.
	Activations uint64 `json:"activations"`
	// Injections counts experiments whose bit flip landed on this site;
	// the outcome fields split them by how those experiments ended.
	Injections int `json:"injections"`
	SDC        int `json:"sdc"`
	Benign     int `json:"benign"`
	Crash      int `json:"crash"`
	Hang       int `json:"hang"`
	Detected   int `json:"detected"`
}

// Figure2Tag names the Figure 2 instruction category of a site with the
// given static slice flags. A site on both the control and address
// slices is tagged with the combined form; a site on neither is
// pure-data.
func Figure2Tag(control, address bool) string {
	switch {
	case control && address:
		return "control+address"
	case control:
		return "control"
	case address:
		return "address"
	default:
		return "pure-data"
	}
}

// profileVisits runs deterministic golden executions with per-lane-site
// activation counting enabled and returns the summed visit counts,
// indexed by lane-site ID. It replays the first min(Inputs, 16) pool
// inputs (or the single input of experiment 0 when the study has no
// pool), so the counts depend only on the configuration — a resumed
// study re-profiles to identical numbers.
func (p *Prepared) profileVisits() ([]uint64, error) {
	visits := make([]uint64, len(p.Inst.LaneSites))
	n := 1
	if p.Cfg.Inputs > 0 {
		n = p.Cfg.Inputs
		if n > atlasProfileInputs {
			n = atlasProfileInputs
		}
	}
	for j := 0; j < n; j++ {
		plan := &core.Plan{Mode: core.CountOnly, Visits: visits}
		x, err := p.newInstance(plan, 0)
		if err != nil {
			return nil, err
		}
		spec, err := p.Cfg.Benchmark.Setup(x,
			rand.New(rand.NewSource(p.Cfg.InputSeed(j))), p.Cfg.Scale)
		if err != nil {
			return nil, err
		}
		if _, tr := p.observe(x, spec); tr != nil {
			return nil, tr
		}
		p.release(x)
	}
	return visits, nil
}

// siteTallies builds the per-static-site atlas rows from a completed
// study's experiment results: one row per instrumented static site (in
// site-ID order), lanes folded together, with injections attributed
// through each result's InjectionRecord. The attribution is a pure
// function of the results slice, which checkpoint replay restores
// verbatim, so resumed studies tally identically.
func (p *Prepared) siteTallies(results []*ExperimentResult) ([]SiteTally, error) {
	visits, err := p.profileVisits()
	if err != nil {
		return nil, err
	}
	tallies := make([]SiteTally, len(p.Inst.Sites))
	bySite := make(map[int]*SiteTally, len(p.Inst.Sites))
	for i, s := range p.Inst.Sites {
		ref := p.siteRef(core.LaneSite{Site: s})
		tallies[i] = SiteTally{
			Site: s.ID, Key: ref.Key(),
			Func: ref.Func, Block: ref.Block, Instr: ref.Instr,
			Category: Figure2Tag(s.Flags.Control, s.Flags.Address),
		}
		bySite[s.ID] = &tallies[i]
	}
	for _, ls := range p.Inst.LaneSites {
		if t := bySite[ls.Site.ID]; t != nil {
			t.Lanes++
			t.Activations += visits[ls.ID]
		}
	}
	attributed := p.reg.Counter("atlas.attributed")
	unattributed := p.reg.Counter("atlas.unattributed")
	for _, r := range results {
		if r == nil {
			continue
		}
		// Width==0 means the injection never fired (vacuous experiment or
		// unreached target); such experiments have no site to blame.
		if r.Record.Width == 0 {
			unattributed.Inc()
			continue
		}
		id := r.Record.LaneSiteID
		if id < 0 || id >= int64(len(p.Inst.LaneSites)) {
			unattributed.Inc()
			continue
		}
		t := bySite[p.Inst.LaneSites[id].Site.ID]
		if t == nil {
			unattributed.Inc()
			continue
		}
		attributed.Inc()
		t.Injections++
		switch r.Outcome {
		case OutcomeSDC:
			t.SDC++
		case OutcomeBenign:
			t.Benign++
		case OutcomeCrash:
			t.Crash++
			if r.Hang {
				t.Hang++
			}
		}
		if r.Detected {
			t.Detected++
		}
	}
	p.reg.Counter("atlas.sites").Add(uint64(len(tallies)))
	return tallies, nil
}
