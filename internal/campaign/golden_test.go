package campaign

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/passes"
	"vulfi/internal/telemetry"
)

// scrubWall zeroes the wall-clock fields of a study result — the only
// legitimately nondeterministic part of an export — so two runs can be
// compared byte-for-byte through WriteJSON.
func scrubWall(sr *StudyResult) {
	sr.Wall = 0
	sr.Totals.WallTotal, sr.Totals.WallMin, sr.Totals.WallMax = 0, 0, 0
	for i := range sr.Campaigns {
		c := &sr.Campaigns[i]
		c.WallTotal, c.WallMin, c.WallMax = 0, 0, 0
	}
}

func studyBytes(t *testing.T, sr *StudyResult) []byte {
	t.Helper()
	scrubWall(sr)
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenCacheEquivalence is the tentpole invariant: a cached study
// must be observationally identical to the same study run without the
// cache. The uncached reference is the same prepared cell with its
// cache knocked out, so both runs share the Inputs-driven seed
// schedule and differ only in golden-run memoization.
func TestGoldenCacheEquivalence(t *testing.T) {
	cfg := smallCfg(benchmarks.Blackscholes, passes.Control)
	cfg.Inputs = 4

	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	cached, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("cache.hits").Value(); hits == 0 {
		t.Fatal("cached study recorded no cache hits")
	}
	if misses := reg.Counter("cache.misses").Value(); misses > uint64(cfg.Inputs) {
		t.Fatalf("%d golden executions for a pool of %d inputs", misses, cfg.Inputs)
	}

	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.golden = nil // same schedule, no memoization
	uncached, err := p.RunStudy(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	got, want := studyBytes(t, cached), studyBytes(t, uncached)
	if !bytes.Equal(got, want) {
		t.Fatalf("cached study diverged from uncached reference:\ncached:  %s\nuncached: %s",
			got, want)
	}
}

// TestGoldenCacheResumeEquivalence: checkpointing a cached study and
// resuming it (replaying the first half through Cfg.Completed, exactly
// as the vulfid journal does) must reproduce the uninterrupted study
// byte-for-byte.
func TestGoldenCacheResumeEquivalence(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Inputs = 2

	var mu sync.Mutex
	checkpoints := map[int]*ExperimentResult{}
	cfg.OnResult = func(i int, seed int64, r *ExperimentResult) {
		mu.Lock()
		defer mu.Unlock()
		checkpoints[i] = r
	}
	full, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	resumedCfg := cfg
	resumedCfg.OnResult = nil
	resumedCfg.Completed = map[int]*ExperimentResult{}
	total := cfg.Campaigns * cfg.Experiments
	for i := 0; i < total/2; i++ {
		resumedCfg.Completed[i] = checkpoints[i]
	}
	resumed, err := RunStudy(context.Background(), resumedCfg)
	if err != nil {
		t.Fatal(err)
	}

	got, want := studyBytes(t, resumed), studyBytes(t, full)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed cached study diverged:\nresumed: %s\nfull:    %s", got, want)
	}
}

// TestInputPoolSchedule: with Inputs = K the study cycles through K
// program inputs — experiment i and experiment i+K must see the same
// input, and the pool must contain exactly K distinct inputs.
func TestInputPoolSchedule(t *testing.T) {
	const k = 3
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Inputs = k
	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, 3*k)
	for i := range labels {
		r, err := p.RunExperimentAt(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		labels[i] = r.InputLabel
	}
	distinct := map[string]bool{}
	for i, l := range labels {
		distinct[l] = true
		if want := labels[i%k]; l != want {
			t.Fatalf("experiment %d input %q, want pool slot %d input %q", i, l, i%k, want)
		}
	}
	// Labels encode the drawn input (e.g. its size), so distinct pool
	// seeds may collide on a label — but there can never be more labels
	// than pool slots.
	if len(distinct) > k {
		t.Fatalf("pool of %d produced %d distinct inputs: %v", k, len(distinct), distinct)
	}

	// And the pool draws the same inputs the uncached schedule would:
	// pool seed j is experiment j's own input seed.
	if got, want := cfg.InputSeed(k+1), cfg.ExperimentSeed(1); got != want {
		t.Fatalf("InputSeed(%d) = %d, want ExperimentSeed(1) = %d", k+1, got, want)
	}
}

// TestGoldenCacheLRUBounds: the cache never holds more completed
// entries than its capacity, evictions are counted, and the resident
// byte footprint tracks the surviving entries.
func TestGoldenCacheLRUBounds(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newGoldenCache(2, reg)
	for seed := int64(0); seed < 5; seed++ {
		run := &goldenRun{Out: []byte{byte(seed)}, DynSites: 1}
		if _, err := c.get(seed, func() (*goldenRun, error) { return run, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.items); n > 2 {
		t.Fatalf("%d resident entries, cap 2", n)
	}
	if ev := reg.Counter("cache.evictions").Value(); ev != 3 {
		t.Fatalf("evictions = %d, want 3", ev)
	}
	if got := reg.Gauge("cache.entries").Value(); got != int64(len(c.items)) {
		t.Fatalf("entries gauge %d, want %d", got, len(c.items))
	}
	if got := reg.Gauge("cache.bytes").Value(); got != int64(len(c.items)) {
		t.Fatalf("bytes gauge %d, want %d (1 byte per resident entry)", got, len(c.items))
	}

	// A failed fill must not stick: the next get for that seed re-runs.
	wantErr := fmt.Errorf("boom")
	if _, err := c.get(99, func() (*goldenRun, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	ran := false
	if _, err := c.get(99, func() (*goldenRun, error) {
		ran = true
		return &goldenRun{Out: []byte{1}}, nil
	}); err != nil || !ran {
		t.Fatalf("retry after failed fill: ran=%v err=%v", ran, err)
	}
}

// TestGoldenCacheSingleflight: concurrent misses on one seed must run
// the fill exactly once, with every waiter receiving the leader's
// result. Run under -race this also proves the cache's happens-before
// edges.
func TestGoldenCacheSingleflight(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newGoldenCache(4, reg)
	var fills atomic.Int64
	gate := make(chan struct{})
	want := &goldenRun{Out: []byte("golden"), DynSites: 7}

	const waiters = 16
	var wg sync.WaitGroup
	runs := make([]*goldenRun, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, err := c.get(42, func() (*goldenRun, error) {
				fills.Add(1)
				<-gate // hold the flight open until everyone has joined
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			runs[i] = run
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	for i, run := range runs {
		if run != want {
			t.Fatalf("waiter %d got %p, want the leader's %p", i, run, want)
		}
	}
	if hits := reg.Counter("cache.hits").Value(); hits != waiters-1 {
		t.Fatalf("hits = %d, want %d", hits, waiters-1)
	}
}

// TestConfigValidate: one validation gate serves every entry point, so
// its rejections and defaults are pinned here.
func TestConfigValidate(t *testing.T) {
	valid := smallCfg(benchmarks.VectorCopy, passes.PureData)
	bad := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no benchmark", func(c *Config) { c.Benchmark = nil }},
		{"no isa", func(c *Config) { c.ISA = nil }},
		{"bad category", func(c *Config) { c.Category = passes.Address + 1 }},
		{"bad scale", func(c *Config) { c.Scale = benchmarks.ScaleLarge + 1 }},
		{"negative experiments", func(c *Config) { c.Experiments = -1 }},
		{"negative campaigns", func(c *Config) { c.Campaigns = -5 }},
		{"negative workers", func(c *Config) { c.Workers = -2 }},
		{"negative inputs", func(c *Config) { c.Inputs = -1 }},
		{"negative trace cap", func(c *Config) { c.TraceCap = -1; c.Trace = true }},
	}
	for _, tc := range bad {
		cfg := valid
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}

	// Zero counts normalize to the paper's defaults.
	cfg := valid
	cfg.Experiments, cfg.Campaigns = 0, 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Experiments != 100 || cfg.Campaigns != 20 {
		t.Fatalf("defaults = %d×%d, want 100×20", cfg.Experiments, cfg.Campaigns)
	}
}

// TestTraceBypassesCache: tracing needs a live golden ring per
// experiment, so a traced cell must not construct the cache even when
// an input pool is configured.
func TestTraceBypassesCache(t *testing.T) {
	cfg := smallCfg(benchmarks.VectorCopy, passes.PureData)
	cfg.Inputs = 4
	cfg.Trace = true
	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.golden != nil {
		t.Fatal("traced cell built a golden cache; tracing must bypass it")
	}
	r, err := p.RunExperimentAt(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.DynSites > 0 && r.Explanation == nil {
		t.Fatal("traced experiment carried no explanation")
	}
}
