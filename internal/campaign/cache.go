package campaign

import (
	"sync"

	"vulfi/internal/benchmarks"
	"vulfi/internal/lang"
)

type langProgram = lang.Program

var (
	progMu    sync.Mutex
	progCache = map[*benchmarks.Benchmark]*lang.Program{}
)

// compileProgram parses and checks a benchmark source once per process;
// the checked program is immutable and shared across ISA compilations.
func compileProgram(b *benchmarks.Benchmark) *lang.Program {
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[b]; ok {
		return p
	}
	p, err := lang.Compile(b.Source)
	if err != nil {
		// Benchmark sources are part of the library; failing to compile
		// one is a programming error, not a runtime condition.
		panic("benchmark " + b.Name + " does not compile: " + err.Error())
	}
	progCache[b] = p
	return p
}
