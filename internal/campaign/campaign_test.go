package campaign

import (
	"context"
	"strings"
	"testing"

	"vulfi/internal/benchmarks"
	"vulfi/internal/isa"
	"vulfi/internal/passes"
)

func smallCfg(b *benchmarks.Benchmark, cat passes.Category) Config {
	return Config{
		Benchmark:   b,
		ISA:         isa.AVX,
		Category:    cat,
		Scale:       benchmarks.ScaleTest,
		Experiments: 10,
		Campaigns:   2,
		Seed:        1,
		Detectors:   true,
	}
}

func TestStudyVectorCopy(t *testing.T) {
	for _, cat := range passes.AllCategories {
		t.Run(cat.String(), func(t *testing.T) {
			sr, err := RunStudy(context.Background(), smallCfg(benchmarks.VectorCopy, cat))
			if err != nil {
				t.Fatal(err)
			}
			if sr.Totals.Experiments != 20 {
				t.Fatalf("experiments = %d, want 20", sr.Totals.Experiments)
			}
			if sr.LaneSites == 0 {
				t.Fatal("no lane sites instrumented")
			}
			if sr.Totals.SDC+sr.Totals.Benign+sr.Totals.Crash != 20 {
				t.Fatal("outcomes do not partition the experiments")
			}
			if sr.Totals.NoSites == 20 {
				t.Fatal("every experiment was vacuous: no dynamic sites reached")
			}
		})
	}
}

// TestInjectionActuallyHappens verifies that most experiments reach the
// chosen dynamic site and perform the flip.
func TestInjectionActuallyHappens(t *testing.T) {
	p, err := Prepare(smallCfg(benchmarks.VectorCopy, passes.PureData))
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for i := int64(0); i < 20; i++ {
		r, err := p.RunExperiment(context.Background(), 100+i)
		if err != nil {
			t.Fatal(err)
		}
		if r.Record.Width > 0 {
			injected++
			if r.Record.Before == r.Record.After {
				t.Fatalf("recorded injection did not change the value: %+v", r.Record)
			}
		}
	}
	if injected == 0 {
		t.Fatal("no experiment performed an injection")
	}
}

// TestExperimentDeterminism re-runs the same seed and expects identical
// outcome and injection record.
func TestExperimentDeterminism(t *testing.T) {
	p, err := Prepare(smallCfg(benchmarks.DotProduct, passes.Control))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.RunExperiment(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunExperiment(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.Record != b.Record || a.DynSites != b.DynSites {
		t.Fatalf("non-deterministic experiment: %+v vs %+v", a, b)
	}
}

// TestControlFaultsCauseMoreDamage is the paper's central qualitative
// claim on the micro-benchmarks (§IV-E): pure-data faults on vector copy
// never produce *detectable-by-invariant* SDCs, while control faults
// produce high SDC rates.
func TestPureDataSitesNeverFireForeachDetector(t *testing.T) {
	sr, err := RunStudy(context.Background(), smallCfg(benchmarks.VectorCopy, passes.PureData))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Totals.Detected != 0 {
		t.Fatalf("pure-data faults fired the foreach invariant detector %d times",
			sr.Totals.Detected)
	}
}

func TestOverheadMeasurement(t *testing.T) {
	o, err := MeasureOverhead(benchmarks.VectorCopy, isa.AVX,
		benchmarks.ScaleTest, passes.Control, false, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.DetDynInstrs <= o.BaseDynInstrs {
		t.Fatalf("detector variant should execute more instructions: base=%v det=%v",
			o.BaseDynInstrs, o.DetDynInstrs)
	}
	if o.DynOverhead() > 0.5 {
		t.Fatalf("exit-only detector overhead suspiciously high: %v", o.DynOverhead())
	}
}

func TestDynCount(t *testing.T) {
	d, err := DynCount(benchmarks.Stencil, isa.SSE, benchmarks.ScaleTest, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no dynamic instructions counted")
	}
}

// TestMaskLoopDetectorConfig exercises the extension detector through the
// campaign configuration on the divergent Mandelbrot workload.
func TestMaskLoopDetectorConfig(t *testing.T) {
	cfg := smallCfg(benchmarks.Mandelbrot, passes.Control)
	cfg.MaskLoopDetector = true
	sr, err := RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Totals.Experiments != 20 {
		t.Fatalf("experiments = %d", sr.Totals.Experiments)
	}
	// The pass must have been applied: the module declares the runtime.
	p, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range p.Res.Module.Funcs {
		if f.IsDecl && strings.HasPrefix(f.Nam, "checkMaskLoopMonotonic") {
			found = true
		}
	}
	if !found {
		t.Fatal("mask-loop detector runtime not declared")
	}
}
